#!/bin/sh
# Tier-1 gate: formatting, vet, build, and the race-sensitive test
# packages (the obs registry/tracer/analyzer, the concurrent AKB loop, and
# the parallel experiment harness in eval).
# Tier-2 gate: run a tiny seeded experiment serially twice and once with
# four workers, and require `knowtrans obs diff -strict` to report zero
# regressions across all three (the determinism gate), byte-identical
# rendered tables between the serial and parallel runs, and the trace
# analyzer's self-time accounting to cover the root span. A chaos gate then
# re-runs the experiment through the fault-injection chain: at rate 0 the
# tables must stay byte-identical to the unwrapped run, and at a 30% seeded
# fault rate the run must complete exit 0 with injection metrics recorded.
# Finally a serve gate runs `knowtrans serve -selftest` with tracing and
# the access log armed: a 64-concurrent seeded load over 4 adapters through
# the real HTTP path must return zero non-2xx, echo every client
# traceparent, answer byte-identically to the direct Adapted.Predict path,
# coalesce every adapter's cold start to exactly one Transfer, and record
# the run in BENCH_serve.json. The telemetry it leaves behind is then
# audited: every 2xx predict produced exactly one access-log line carrying
# a trace ID, every serve.batch span links at least one request span, and
# `obs trace -trace-id` reconstructs the slowest request's end-to-end path.
# `obs trace` on a missing file must exit 2 with usage, not panic or pass.
# A profiling gate then audits the resource telemetry the same selftest
# left behind (it runs under -sample with a whole-run -cpuprofile): the
# runtime timeline must summarize cleanly under `obs prof -gate` (no
# goroutine leak, no unbounded heap growth), self-diff to zero regressions,
# and fail (exit 1) against a doctored timeline with inflated goroutine and
# heap readings — the perf-regression sentinel. The CPU profile must be
# valid pprof, BENCH_serve.json (schema 4) must carry the resources
# section, and `obs diff` must accept serve docs: clean on self, exit 1
# when bytes/op is doctored 10x.
# A batching gate then sweeps the batched forward's configurations: pinned
# -serial-predict, -max-batch 1 (degenerate single-request batches), and a
# 30% seeded fault rate must all pass the selftest (answer mismatches are
# fatal inside it at any fault rate), and a warm batched run must allocate
# strictly fewer bytes per request than the warm serial oracle. Finally an
# allocation gate runs the ServePredict benchmark pair, requires the
# batched forward to be >= 2x faster than the serial loop, and diffs the
# measured ns/bytes/allocs per op against the committed BENCH_allocs.json
# baseline via `knowtrans obs diff`.
# A cluster gate then runs `knowtrans route -selftest`: a 3-backend fleet
# with one backend SIGKILLed mid-load must serve every request (zero
# non-2xx, byte-identical answers), record hedges and failovers, eject the
# corpse, rebalance its keys, and drain the survivors clean on SIGTERM;
# the recorded BENCH_cluster.json is diffed against the committed baseline.
# Finally a jobs gate runs `knowtrans job -selftest` under a 30% seeded
# fault rate: dry-run planning must be byte-deterministic, a multi-shard
# bulk job SIGKILLed mid-flight must resume from its checkpoint log with
# zero duplicated Transfers and produce output byte-identical to an
# uninterrupted same-seed run, a torn checkpoint tail must be tolerated,
# every /v1/* error body must be the canonical error envelope (also
# enforced statically: no raw http.Error in the serving packages), and the
# recorded BENCH_jobs.json is diffed against the committed baseline.
# Run from anywhere inside the repo; exits non-zero on first failure.
set -eu
cd "$(dirname "$0")/.."

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "gofmt: files need formatting:" >&2
	echo "$fmt" >&2
	exit 1
fi

go vet ./...
go build ./...
go test -race ./internal/obs/... ./internal/akb/... ./internal/eval/... \
	./internal/faults/... ./internal/resilience/... ./internal/serve/... \
	./internal/cluster/... ./internal/jobs/...
echo "check.sh: tier-1 gates passed"

# --- tier-2: telemetry determinism gate ------------------------------------
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/knowtrans" ./cmd/knowtrans
"$tmp/knowtrans" experiment table6 -scale 0.05 -seed 7 -workers 1 \
	-bench "$tmp/a.json" -trace "$tmp/a.jsonl" >"$tmp/a.out"
"$tmp/knowtrans" experiment table6 -scale 0.05 -seed 7 -workers 1 \
	-bench "$tmp/b.json" >/dev/null
"$tmp/knowtrans" experiment table6 -scale 0.05 -seed 7 -workers 4 \
	-bench "$tmp/p.json" -trace "$tmp/p.jsonl" >"$tmp/p.out"

# Identical seeds must produce identical metrics (wall time is exempt):
# serial vs serial, and serial vs four workers.
for other in b p; do
	"$tmp/knowtrans" obs diff "$tmp/a.json" "$tmp/$other.json" -strict >/dev/null || {
		echo "check.sh: determinism gate failed — obs diff a vs $other found changes:" >&2
		"$tmp/knowtrans" obs diff "$tmp/a.json" "$tmp/$other.json" -strict >&2 || true
		exit 1
	}
done

# The rendered tables must be byte-identical too. Only the wall-time
# trailer "(table6 in ...)" and the "wrote BENCH..." line vary per run.
sed -e '/^(/d' -e '/^wrote /d' "$tmp/a.out" >"$tmp/a.flat"
sed -e '/^(/d' -e '/^wrote /d' "$tmp/p.out" >"$tmp/p.flat"
cmp -s "$tmp/a.flat" "$tmp/p.flat" || {
	echo "check.sh: parallel run rendered different tables than serial:" >&2
	diff "$tmp/a.flat" "$tmp/p.flat" >&2 || true
	exit 1
}

# The analyzer's per-stage self times must account for the root span's
# duration (the ISSUE's 5% acceptance bound). A serial trace has one
# timeline, so coverage is bounded both ways; a parallel trace holds
# overlapping worker spans whose self times sum past the root's wall time,
# so only the lower bound applies there.
coverage=$("$tmp/knowtrans" obs trace "$tmp/a.jsonl" | sed -n 's/^self-time coverage: \([0-9.]*\)%.*/\1/p')
if [ -z "$coverage" ]; then
	echo "check.sh: obs trace printed no coverage line for serial run" >&2
	exit 1
fi
ok=$(awk -v c="$coverage" 'BEGIN { print (c >= 95.0 && c <= 105.0) ? 1 : 0 }')
if [ "$ok" != 1 ]; then
	echo "check.sh: serial self-time coverage $coverage% outside [95,105]" >&2
	exit 1
fi
pcov=$("$tmp/knowtrans" obs trace "$tmp/p.jsonl" | sed -n 's/^self-time coverage: \([0-9.]*\)%.*/\1/p')
if [ -z "$pcov" ]; then
	echo "check.sh: obs trace printed no coverage line for parallel run" >&2
	exit 1
fi
ok=$(awk -v c="$pcov" 'BEGIN { print (c >= 95.0) ? 1 : 0 }')
if [ "$ok" != 1 ]; then
	echo "check.sh: parallel self-time coverage $pcov% below 95" >&2
	exit 1
fi
echo "check.sh: tier-2 determinism gate passed (coverage serial $coverage%, 4 workers $pcov%)"

# --- tier-2: chaos gate ------------------------------------------------------
# Rate 0 arms the whole injector → resilient-client chain with zero
# injections: the rendered tables must stay byte-identical to the unwrapped
# serial run above.
"$tmp/knowtrans" experiment table6 -scale 0.05 -seed 7 -workers 4 \
	-faults rate=0,seed=9 -bench "$tmp/f0.json" >"$tmp/f0.out"
sed -e '/^(/d' -e '/^wrote /d' "$tmp/f0.out" >"$tmp/f0.flat"
cmp -s "$tmp/a.flat" "$tmp/f0.flat" || {
	echo "check.sh: rate-0 fault chain changed the rendered tables:" >&2
	diff "$tmp/a.flat" "$tmp/f0.flat" >&2 || true
	exit 1
}

# A 30% seeded fault rate must complete every cell (exit 0 — graceful
# degradation, never a panic) and the injection/resilience metrics must
# actually appear in the metrics snapshot.
"$tmp/knowtrans" experiment table6 -scale 0.05 -seed 7 -workers 4 \
	-faults rate=0.3,seed=9 -metrics "$tmp/chaos.json" >/dev/null || {
	echo "check.sh: chaos run (30% faults) failed" >&2
	exit 1
}
grep -q '"faults.injected"' "$tmp/chaos.json" || {
	echo "check.sh: chaos run recorded no faults.injected metric" >&2
	exit 1
}
echo "check.sh: tier-2 chaos gate passed"

# --- tier-2: serve gate ------------------------------------------------------
# The selftest drives a seeded load through the full HTTP path and exits
# non-zero itself on any answer mismatch vs the direct path, any non-2xx
# at fault rate 0, or any adapter whose cold starts did not coalesce to
# exactly one Transfer. We additionally require the perf record to exist
# and to have actually measured the load.
"$tmp/knowtrans" serve -selftest -scale 0.05 -seed 7 \
	-selftest-requests 256 -selftest-concurrency 64 -selftest-adapters 4 \
	-bench "$tmp/serve.json" -trace "$tmp/serve.jsonl" \
	-sample 10ms -timeline "$tmp/serve.runtime.jsonl" \
	-cpuprofile "$tmp/serve.cpu.pprof" \
	-access-log "$tmp/access.log" >"$tmp/serve.out" || {
	echo "check.sh: serve selftest failed:" >&2
	cat "$tmp/serve.out" >&2
	exit 1
}
[ -s "$tmp/serve.json" ] || {
	echo "check.sh: serve selftest wrote no BENCH_serve.json" >&2
	exit 1
}
grep -q '"requests": 256' "$tmp/serve.json" || {
	echo "check.sh: BENCH_serve.json did not record the 256-request load" >&2
	exit 1
}

# Access log: the selftest passed, so all 256 predicts were 2xx — each must
# have produced exactly one log line, and every line must carry a trace ID.
lines=$(grep -c '"msg":"request"' "$tmp/access.log" || true)
if [ "$lines" != 256 ]; then
	echo "check.sh: access log has $lines request lines, want 256" >&2
	exit 1
fi
traced=$(grep '"msg":"request"' "$tmp/access.log" | grep -c '"trace":"[0-9a-f]' || true)
if [ "$traced" != 256 ]; then
	echo "check.sh: only $traced/256 access-log lines carry a trace ID" >&2
	exit 1
fi

# Span stream: batching ran, and every serve.batch span links the request
# spans it served (the handle that makes shared work attributable).
batches=$(grep -c '"name":"serve.batch"' "$tmp/serve.jsonl" || true)
if [ "$batches" = 0 ]; then
	echo "check.sh: selftest trace recorded no serve.batch spans" >&2
	exit 1
fi
linked=$(grep '"name":"serve.batch"' "$tmp/serve.jsonl" | grep -c '"links":\[' || true)
if [ "$linked" != "$batches" ]; then
	echo "check.sh: only $linked/$batches serve.batch spans carry request links" >&2
	exit 1
fi

# End-to-end reconstruction: pull the slowest request's trace ID the
# selftest printed and require `obs trace -trace-id` to reassemble its path
# — the request span plus the linked batch that actually served it.
sample=$(sed -n 's/^selftest: slowest request trace \([0-9a-f]*\).*/\1/p' "$tmp/serve.out")
if [ -z "$sample" ]; then
	echo "check.sh: selftest printed no sample trace ID" >&2
	exit 1
fi
"$tmp/knowtrans" obs trace "$tmp/serve.jsonl" -trace-id "$sample" >"$tmp/path.out" || {
	echo "check.sh: obs trace -trace-id $sample failed" >&2
	exit 1
}
for want in serve.request serve.batch; do
	grep -q "$want" "$tmp/path.out" || {
		echo "check.sh: obs trace -trace-id reconstruction lacks $want:" >&2
		cat "$tmp/path.out" >&2
		exit 1
	}
done

# A missing trace file is an operator mistake: exit 2 with usage, never a
# panic and never a success.
rc=0
"$tmp/knowtrans" obs trace "$tmp/no-such-trace.jsonl" >/dev/null 2>&1 || rc=$?
if [ "$rc" != 2 ]; then
	echo "check.sh: obs trace on a missing file exited $rc, want 2" >&2
	exit 1
fi
echo "check.sh: tier-2 serve gate passed"

# --- tier-2: profiling gate --------------------------------------------------
# The selftest above ran under the runtime sampler with a whole-run CPU
# profile; audit what it left behind.
[ -s "$tmp/serve.runtime.jsonl" ] || {
	echo "check.sh: sampler wrote no runtime timeline" >&2
	exit 1
}

# The timeline must summarize cleanly: no goroutine leak, no unbounded
# heap growth in a healthy selftest.
"$tmp/knowtrans" obs prof "$tmp/serve.runtime.jsonl" -gate >"$tmp/prof.out" || {
	echo "check.sh: obs prof -gate flagged the healthy selftest:" >&2
	cat "$tmp/prof.out" >&2
	exit 1
}
grep -q 'runtime timeline:' "$tmp/prof.out" || {
	echo "check.sh: obs prof printed no summary:" >&2
	cat "$tmp/prof.out" >&2
	exit 1
}

# Sentinel, negative control: a timeline diffed against itself has zero
# budget regressions.
"$tmp/knowtrans" obs prof "$tmp/serve.runtime.jsonl" \
	-diff "$tmp/serve.runtime.jsonl" >/dev/null || {
	echo "check.sh: obs prof self-diff reported regressions" >&2
	exit 1
}

# Sentinel, positive control: doctor the timeline (goroutine and heap
# readings inflated by a leading digit, ~10-90x) and require the diff
# against the real baseline to exit 1.
sed -e 's/"goroutines":\([0-9]\)/"goroutines":9\1/' \
	-e 's/"heap_live_bytes":\([0-9]\)/"heap_live_bytes":9\1/' \
	"$tmp/serve.runtime.jsonl" >"$tmp/doctored.runtime.jsonl"
rc=0
"$tmp/knowtrans" obs prof "$tmp/doctored.runtime.jsonl" \
	-diff "$tmp/serve.runtime.jsonl" >/dev/null 2>&1 || rc=$?
if [ "$rc" != 1 ]; then
	echo "check.sh: obs prof -diff on doctored timeline exited $rc, want 1" >&2
	exit 1
fi

# The whole-run CPU profile must be valid pprof (label-propagation down to
# the adapter is pinned by unit tests; a live profile's sample mix is
# load-dependent and not asserted here).
[ -s "$tmp/serve.cpu.pprof" ] || {
	echo "check.sh: selftest wrote no CPU profile" >&2
	exit 1
}
go tool pprof -raw "$tmp/serve.cpu.pprof" >/dev/null 2>&1 || {
	echo "check.sh: serve.cpu.pprof is not a valid profile" >&2
	exit 1
}

# BENCH_serve.json schema 4 carries the resources section, and obs diff
# understands serve docs: clean against itself, exit 1 when bytes/op is
# doctored an order of magnitude worse.
grep -q '"schema_version": 4' "$tmp/serve.json" || {
	echo "check.sh: BENCH_serve.json is not schema 4" >&2
	exit 1
}
grep -q '"bytes_per_op"' "$tmp/serve.json" || {
	echo "check.sh: BENCH_serve.json lacks the resources section" >&2
	exit 1
}
"$tmp/knowtrans" obs diff "$tmp/serve.json" "$tmp/serve.json" >/dev/null || {
	echo "check.sh: obs diff on identical serve docs reported regressions" >&2
	exit 1
}
sed -e 's/"bytes_per_op": \([0-9]\)/"bytes_per_op": 9\1/' \
	-e 's/"allocs_per_op": \([0-9]\)/"allocs_per_op": 9\1/' \
	"$tmp/serve.json" >"$tmp/serve.doctored.json"
rc=0
"$tmp/knowtrans" obs diff "$tmp/serve.json" "$tmp/serve.doctored.json" \
	-rel-tol 0.5 >/dev/null 2>&1 || rc=$?
if [ "$rc" != 1 ]; then
	echo "check.sh: obs diff on doctored serve doc exited $rc, want 1" >&2
	exit 1
fi

# A missing timeline is an operator mistake: exit 2 with usage.
rc=0
"$tmp/knowtrans" obs prof "$tmp/no-such-timeline.jsonl" >/dev/null 2>&1 || rc=$?
if [ "$rc" != 2 ]; then
	echo "check.sh: obs prof on a missing file exited $rc, want 2" >&2
	exit 1
fi
echo "check.sh: tier-2 profiling gate passed"

# --- tier-2: batching gate ---------------------------------------------------
# The batched forward must answer byte-identically to the direct path in
# every configuration the batcher can reach. The selftest makes answer
# mismatches fatal at any fault rate, so each PASS below is an equivalence
# proof for its configuration; the main serve gate above already covered
# the default batched configuration, and its verdicts pin that every
# drained batch rode the batched forward.

# Degenerate batches: -max-batch 1 drains single-request batches through
# the same batched entry point.
"$tmp/knowtrans" serve -selftest -scale 0.05 -seed 7 \
	-selftest-requests 128 -selftest-concurrency 32 -selftest-adapters 2 \
	-max-batch 1 -bench "$tmp/serve.mb1.json" >"$tmp/serve.mb1.out" || {
	echo "check.sh: serve selftest with -max-batch 1 failed:" >&2
	cat "$tmp/serve.mb1.out" >&2
	exit 1
}

# Chaos: a 30% seeded fault rate must degrade availability, never
# correctness — the served answers still match the equally-faulted direct
# path and cold starts still coalesce.
"$tmp/knowtrans" serve -selftest -scale 0.05 -seed 7 \
	-selftest-requests 128 -selftest-concurrency 32 -selftest-adapters 2 \
	-faults rate=0.3,seed=9 -bench "$tmp/serve.chaos.json" >"$tmp/serve.chaos.out" || {
	echo "check.sh: serve selftest under 30% faults failed:" >&2
	cat "$tmp/serve.chaos.out" >&2
	exit 1
}

# Warm pair: pre-warming the adapters takes cold-start Transfers out of
# the measured bracket, so the per-request allocation numbers compare the
# serving paths themselves. The batched path must allocate strictly fewer
# bytes per request than the serial oracle.
"$tmp/knowtrans" serve -selftest -scale 0.05 -seed 7 -selftest-warm \
	-serial-predict -bench "$tmp/serve.warm-serial.json" >"$tmp/serve.ws.out" || {
	echo "check.sh: warm serial selftest failed:" >&2
	cat "$tmp/serve.ws.out" >&2
	exit 1
}
"$tmp/knowtrans" serve -selftest -scale 0.05 -seed 7 -selftest-warm \
	-bench "$tmp/serve.warm.json" >"$tmp/serve.wb.out" || {
	echo "check.sh: warm batched selftest failed:" >&2
	cat "$tmp/serve.wb.out" >&2
	exit 1
}
grep -q '"warmed": true' "$tmp/serve.warm.json" || {
	echo "check.sh: warm run's BENCH_serve.json does not record warmed: true" >&2
	exit 1
}
bser=$(sed -n 's/^ *"bytes_per_op": \([0-9.eE+-]*\),\{0,1\}$/\1/p' "$tmp/serve.warm-serial.json" | head -1)
bbat=$(sed -n 's/^ *"bytes_per_op": \([0-9.eE+-]*\),\{0,1\}$/\1/p' "$tmp/serve.warm.json" | head -1)
if [ -z "$bser" ] || [ -z "$bbat" ]; then
	echo "check.sh: warm serve docs lack bytes_per_op (serial '$bser', batched '$bbat')" >&2
	exit 1
fi
ok=$(awk -v s="$bser" -v b="$bbat" 'BEGIN { print (b < s) ? 1 : 0 }')
if [ "$ok" != 1 ]; then
	echo "check.sh: warm batched run allocates $bbat B/op, not below serial's $bser" >&2
	exit 1
fi
echo "check.sh: tier-2 batching gate passed (warm B/op: batched $bbat vs serial $bser)"

# --- tier-2: allocation gate -------------------------------------------------
# The ServePredict benchmark pair answers the same 8-instance micro-batch
# through the batched forward and the serial loop. The batched side must be
# at least 2x faster, and the measured time/bytes/allocs per op must stay
# within tolerance of the committed BENCH_allocs.json baseline (the rel-tol
# absorbs machine-to-machine time variance; the 2x ratio gate is
# machine-independent).
go test -run '^$' -bench 'ServePredict' -benchmem . >"$tmp/bench.out" || {
	echo "check.sh: ServePredict benchmarks failed:" >&2
	cat "$tmp/bench.out" >&2
	exit 1
}
awk '
	$1 ~ /^BenchmarkServePredict(-|$)/       { bt=$3; bb=$5; ba=$7 }
	$1 ~ /^BenchmarkServePredictSerial(-|$)/ { st=$3; sb=$5; sa=$7 }
	END {
		if (bt == "" || st == "") { print "missing benchmark lines" > "/dev/stderr"; exit 1 }
		printf "{\n  \"schema_version\": 1,\n  \"report\": {\n"
		printf "    \"batched_time_ns\": %s,\n    \"batched_bytes_per_op\": %s,\n    \"batched_allocs_per_op\": %s,\n", bt, bb, ba
		printf "    \"serial_time_ns\": %s,\n    \"serial_bytes_per_op\": %s,\n    \"serial_allocs_per_op\": %s,\n", st, sb, sa
		printf "    \"batch_speedup_x\": %.3f\n  }\n}\n", st / bt
	}
' "$tmp/bench.out" >"$tmp/allocs.json" || {
	echo "check.sh: could not parse benchmark output:" >&2
	cat "$tmp/bench.out" >&2
	exit 1
}
speedup=$(sed -n 's/^ *"batch_speedup_x": \([0-9.]*\).*/\1/p' "$tmp/allocs.json")
ok=$(awk -v x="$speedup" 'BEGIN { print (x >= 2.0) ? 1 : 0 }')
if [ "$ok" != 1 ]; then
	echo "check.sh: batched forward is only ${speedup}x the serial loop, want >= 2x:" >&2
	cat "$tmp/bench.out" >&2
	exit 1
fi
"$tmp/knowtrans" obs diff BENCH_allocs.json "$tmp/allocs.json" -rel-tol 0.5 >/dev/null || {
	echo "check.sh: allocation gate regressed vs committed BENCH_allocs.json:" >&2
	"$tmp/knowtrans" obs diff BENCH_allocs.json "$tmp/allocs.json" -rel-tol 0.5 >&2 || true
	exit 1
}
echo "check.sh: tier-2 allocation gate passed (batched ${speedup}x serial)"

# --- tier-2: cluster gate ----------------------------------------------------
# The sharded serving tier's chaos drill: `route -selftest` spawns a
# 3-backend fleet as subprocesses, drives two 256-request 64-concurrent
# seeded load phases through two router replicas (one hedging, one
# failover-only), SIGKILLs one backend a quarter of the way into the
# second phase, and itself exits non-zero unless every request succeeded
# with answers byte-identical to the direct path, hedges AND failovers
# were recorded, the corpse was ejected by the health probes, its keys
# were re-served by replicas, and the surviving backends drained clean
# (exit 0) on SIGTERM. check.sh additionally pins the zero-failure
# verdicts in the written record and diffs its latency/throughput profile
# against the committed baseline (generous tolerance: a degraded-phase
# profile depends on kill timing).
"$tmp/knowtrans" route -selftest -scale 0.05 -seed 7 \
	-selftest-requests 256 -selftest-concurrency 64 -selftest-adapters 4 \
	-faults rate=0.3,seed=9 -bench "$tmp/cluster.json" >"$tmp/cluster.out" || {
	echo "check.sh: route selftest failed:" >&2
	cat "$tmp/cluster.out" >&2
	exit 1
}
[ -s "$tmp/cluster.json" ] || {
	echo "check.sh: route selftest wrote no BENCH_cluster.json" >&2
	exit 1
}
for want in '"non_2xx": 0' '"mismatches": 0' '"requests": 512'; do
	grep -q "$want" "$tmp/cluster.json" || {
		echo "check.sh: BENCH_cluster.json lacks $want" >&2
		cat "$tmp/cluster.json" >&2
		exit 1
	}
done
hedges=$(sed -n 's/^ *"hedges": \([0-9]*\),\{0,1\}$/\1/p' "$tmp/cluster.json")
failovers=$(sed -n 's/^ *"failovers": \([0-9]*\),\{0,1\}$/\1/p' "$tmp/cluster.json")
if [ -z "$hedges" ] || [ "$hedges" = 0 ] || [ -z "$failovers" ] || [ "$failovers" = 0 ]; then
	echo "check.sh: BENCH_cluster.json records hedges='$hedges' failovers='$failovers', want both > 0" >&2
	exit 1
fi
"$tmp/knowtrans" obs diff BENCH_cluster.json "$tmp/cluster.json" -rel-tol 1.0 >/dev/null || {
	echo "check.sh: cluster gate regressed vs committed BENCH_cluster.json:" >&2
	"$tmp/knowtrans" obs diff BENCH_cluster.json "$tmp/cluster.json" -rel-tol 1.0 >&2 || true
	exit 1
}
echo "check.sh: tier-2 cluster gate passed ($hedges hedges, $failovers failovers, 0 failed requests)"

# --- tier-2: jobs gate -------------------------------------------------------
# The bulk tier's crash-recovery drill: `job -selftest` spawns a 2-backend
# fleet, runs a 64-row 8-shard job uninterrupted, runs the same rows as a
# subprocess that SIGKILLs itself after 2 fsynced shard commits, tears the
# checkpoint tail the way a second mid-append kill would, resumes, and
# itself exits non-zero unless the resumed output is byte-identical to the
# uninterrupted run with zero duplicated Transfers anywhere in the fleet,
# zero lost rows (retries absorb the 30% fault rate), and a canonical
# error envelope on the probe. check.sh pins those verdicts in the written
# record — the 0/1 verdict fields sit inside obs diff's tolerance, so a
# flip to 0 must fail here, not there — and re-plans the kept spec twice
# to pin dry-run determinism from the CLI surface.
"$tmp/knowtrans" job -selftest -scale 0.05 -seed 7 \
	-faults rate=0.3,seed=9 -bench "$tmp/jobs.json" \
	-workdir "$tmp/jobswork" >"$tmp/jobs.out" || {
	echo "check.sh: job selftest failed:" >&2
	cat "$tmp/jobs.out" >&2
	exit 1
}
grep -q 'error envelope ok' "$tmp/jobs.out" || {
	echo "check.sh: job selftest never probed the error envelope" >&2
	exit 1
}
[ -s "$tmp/jobs.json" ] || {
	echo "check.sh: job selftest wrote no BENCH_jobs.json" >&2
	exit 1
}
for want in '"byte_identical": 1' '"plan_deterministic": 1' \
	'"duplicate_transfers": 0' '"row_failures": 0' \
	'"truncated_tail_recovered": 1'; do
	grep -q "$want" "$tmp/jobs.json" || {
		echo "check.sh: BENCH_jobs.json lacks $want" >&2
		cat "$tmp/jobs.json" >&2
		exit 1
	}
done

# Dry-run determinism from the CLI: the same spec must render the same
# plan bytes on every invocation (no timestamps, no map ordering).
"$tmp/knowtrans" job plan -spec "$tmp/jobswork/specA.json" >"$tmp/plan1.out"
"$tmp/knowtrans" job plan -spec "$tmp/jobswork/specA.json" >"$tmp/plan2.out"
cmp -s "$tmp/plan1.out" "$tmp/plan2.out" || {
	echo "check.sh: job plan rendered different bytes across invocations:" >&2
	diff "$tmp/plan1.out" "$tmp/plan2.out" >&2 || true
	exit 1
}

# Envelope enforcement, statically: the serving packages must route every
# HTTP error through the envelope writer, never raw http.Error.
if grep -rn 'http\.Error(' internal/serve internal/cluster internal/jobs; then
	echo "check.sh: raw http.Error in a serving package — use serve.WriteError" >&2
	exit 1
fi

"$tmp/knowtrans" obs diff BENCH_jobs.json "$tmp/jobs.json" -rel-tol 1.0 >/dev/null || {
	echo "check.sh: jobs gate regressed vs committed BENCH_jobs.json:" >&2
	"$tmp/knowtrans" obs diff BENCH_jobs.json "$tmp/jobs.json" -rel-tol 1.0 >&2 || true
	exit 1
}
echo "check.sh: tier-2 jobs gate passed (kill/resume byte-identical, 0 duplicated transfers)"
echo "check.sh: all gates passed"
