#!/bin/sh
# Tier-1 gate: formatting, vet, build, and the race-sensitive test
# packages (the obs registry/tracer/analyzer and the concurrent AKB loop).
# Tier-2 gate: run a tiny seeded experiment twice and require `knowtrans
# obs diff -strict` to report zero regressions (the determinism gate), and
# require the trace analyzer's self-time accounting to cover the root span.
# Run from anywhere inside the repo; exits non-zero on first failure.
set -eu
cd "$(dirname "$0")/.."

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "gofmt: files need formatting:" >&2
	echo "$fmt" >&2
	exit 1
fi

go vet ./...
go build ./...
go test -race ./internal/obs/... ./internal/akb/...
echo "check.sh: tier-1 gates passed"

# --- tier-2: telemetry determinism gate ------------------------------------
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/knowtrans" ./cmd/knowtrans
"$tmp/knowtrans" experiment table6 -scale 0.05 -seed 7 \
	-bench "$tmp/a.json" -trace "$tmp/a.jsonl" >/dev/null
"$tmp/knowtrans" experiment table6 -scale 0.05 -seed 7 \
	-bench "$tmp/b.json" >/dev/null

# Identical seeds must produce identical metrics (wall time is exempt).
"$tmp/knowtrans" obs diff "$tmp/a.json" "$tmp/b.json" -strict >/dev/null || {
	echo "check.sh: determinism gate failed — obs diff found changes:" >&2
	"$tmp/knowtrans" obs diff "$tmp/a.json" "$tmp/b.json" -strict >&2 || true
	exit 1
}

# The analyzer's per-stage self times must account for the root span's
# duration (the ISSUE's 5% acceptance bound).
coverage=$("$tmp/knowtrans" obs trace "$tmp/a.jsonl" | sed -n 's/^self-time coverage: \([0-9.]*\)%.*/\1/p')
if [ -z "$coverage" ]; then
	echo "check.sh: obs trace printed no coverage line" >&2
	exit 1
fi
ok=$(awk -v c="$coverage" 'BEGIN { print (c >= 95.0 && c <= 105.0) ? 1 : 0 }')
if [ "$ok" != 1 ]; then
	echo "check.sh: self-time coverage $coverage% outside [95,105]" >&2
	exit 1
fi
echo "check.sh: tier-2 determinism gate passed (coverage $coverage%)"
echo "check.sh: all gates passed"
