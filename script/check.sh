#!/bin/sh
# Tier-1 gate: formatting, vet, build, and the race-sensitive test
# packages (the obs registry/tracer and the concurrent AKB loop).
# Run from anywhere inside the repo; exits non-zero on first failure.
set -eu
cd "$(dirname "$0")/.."

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "gofmt: files need formatting:" >&2
	echo "$fmt" >&2
	exit 1
fi

go vet ./...
go build ./...
go test -race ./internal/obs/... ./internal/akb/...
echo "check.sh: all gates passed"
