// Command dpgen generates the synthetic datasets of the reproduction to
// disk as JSON (the dataio format), for inspection or for use outside the
// harness.
//
// Usage:
//
//	dpgen -out ./datasets [-scale 0.15] [-seed 1] [-which downstream|upstream|all]
//	dpgen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/datagen"
	"repro/internal/dataio"
	"repro/internal/tasks"
)

func main() {
	out := flag.String("out", "./datasets", "output directory")
	scale := flag.Float64("scale", 0.15, "dataset scale relative to paper sizes (0,1]")
	seed := flag.Int64("seed", 1, "random seed")
	which := flag.String("which", "all", "downstream, upstream, or all")
	list := flag.Bool("list", false, "list dataset keys and exit")
	flag.Parse()

	if *list {
		fmt.Println("downstream:")
		for _, k := range datagen.DownstreamKeys() {
			fmt.Println("  " + k)
		}
		fmt.Println("upstream:")
		for _, k := range datagen.UpstreamKeys() {
			fmt.Println("  " + k)
		}
		return
	}

	var bundles []*datagen.Bundle
	if *which == "downstream" || *which == "all" {
		bundles = append(bundles, datagen.Downstream(*seed, *scale)...)
	}
	if *which == "upstream" || *which == "all" {
		bundles = append(bundles, datagen.Upstream(*seed, *scale)...)
	}
	if len(bundles) == 0 {
		fmt.Fprintf(os.Stderr, "unknown -which %q\n", *which)
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, b := range bundles {
		path := filepath.Join(*out, strings.ReplaceAll(b.Key(), "/", "_")+".json")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		err = dataio.EncodeJSON(b.DS, tasks.RenderKnowledgeText(b.Seed), f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (train=%d test=%d)\n", path, len(b.DS.Train), len(b.DS.Test))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpgen:", err)
	os.Exit(1)
}
