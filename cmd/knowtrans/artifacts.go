package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/eval"
	"repro/internal/lora"
	"repro/internal/model"
	"repro/internal/skc"
)

// The build subcommand trains the upstream DP-LLM and extracts the SKC
// patch library once, persisting both to disk so later transfers (or other
// tools) can reuse them without retraining:
//
//	knowtrans build -artifacts ./artifacts [-scale 0.15] [-seed 1]
//
// Artifacts layout: upstream-7B.gob (model snapshot) plus one
// patch-<task>-<dataset>.gob per upstream dataset.
func runBuild(args []string) {
	fs := newFlagSet("build")
	dir := fs.String("artifacts", "./artifacts", "output directory")
	scale := fs.Float64("scale", 0.15, "dataset scale")
	seed := fs.Int64("seed", 1, "random seed")
	of := addObsFlags(fs)
	parseOrExit(fs, args)
	rec, finish, err := of.setup()
	if err != nil {
		fatal(err)
	}
	rec.SeedTraceIDs(*seed)
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}
	z := eval.NewZoo(*seed, *scale)
	z.Rec = rec
	fmt.Println("training upstream DP-LLM (base pretraining + multi-task SFT)...")
	up := z.Upstream(eval.Size7B)
	blob, err := up.Export().Encode()
	if err != nil {
		fatal(err)
	}
	path := filepath.Join(*dir, "upstream-7B.gob")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d KiB)\n", path, len(blob)/1024)

	fmt.Println("extracting knowledge patches...")
	for _, ns := range z.Patches(eval.Size7B) {
		blob, err := ns.Snap.Encode()
		if err != nil {
			fatal(err)
		}
		name := "patch-" + strings.ReplaceAll(ns.Name, "/", "-") + ".gob"
		p := filepath.Join(*dir, name)
		if err := os.WriteFile(p, blob, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d KiB)\n", p, len(blob)/1024)
	}
	if err := finish(); err != nil {
		fatal(err)
	}
}

// loadArtifacts restores an upstream model and patch library written by
// runBuild. Returns (nil, nil, nil) when the directory has no artifacts.
func loadArtifacts(dir string) (*model.Model, []*skc.NamedSnapshot, error) {
	blob, err := os.ReadFile(filepath.Join(dir, "upstream-7B.gob"))
	if os.IsNotExist(err) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	snap, err := model.DecodeSnapshot(blob)
	if err != nil {
		return nil, nil, err
	}
	m := model.New(snap.Cfg)
	if err := m.LoadSnapshot(snap); err != nil {
		return nil, nil, err
	}
	matches, err := filepath.Glob(filepath.Join(dir, "patch-*.gob"))
	if err != nil {
		return nil, nil, err
	}
	var snaps []*skc.NamedSnapshot
	for _, p := range matches {
		blob, err := os.ReadFile(p)
		if err != nil {
			return nil, nil, err
		}
		s, err := lora.DecodeSnapshot(blob)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", p, err)
		}
		snaps = append(snaps, &skc.NamedSnapshot{Name: s.Name, Snap: s})
	}
	return m, snaps, nil
}

// fatal aborts the process, first flushing any active trace/metrics
// recording so a failed run still leaves an analyzable record on disk.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "knowtrans:", err)
	runObsCleanup()
	os.Exit(1)
}
