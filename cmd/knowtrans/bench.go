package main

import (
	"encoding/json"
	"os"
	"time"

	"repro/internal/eval"
	"repro/internal/obs/analyze"
)

// The BENCH_run.json document types live in internal/obs/analyze so the
// `knowtrans obs diff` gate and other tooling can load run records without
// importing the CLI; this package keeps the writer side.
type (
	// BenchExperiment is the machine-readable record of one experiment run.
	BenchExperiment = analyze.BenchExperiment
	// BenchRun is the top-level BENCH_run.json document.
	BenchRun = analyze.BenchRun
)

// benchRecord summarizes one finished experiment table.
func benchRecord(t *eval.Table, wall time.Duration, scale float64, reps int, seed int64) BenchExperiment {
	be := BenchExperiment{
		ID:          t.ID,
		Title:       t.Title,
		WallSeconds: wall.Seconds(),
		Scale:       scale,
		Reps:        reps,
		Seed:        seed,
		Metrics:     map[string]float64{},
	}
	for _, r := range t.Rows {
		if !r.IsAverage {
			be.Rows++
		}
	}
	for _, c := range t.Columns {
		be.Metrics[c] = t.Average(c)
	}
	return be
}

// writeBenchRun writes the run record as indented JSON.
func writeBenchRun(path string, run *BenchRun) error {
	run.SchemaVersion = 1
	run.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	var total float64
	for _, e := range run.Experiments {
		total += e.WallSeconds
	}
	run.TotalSeconds = total
	blob, err := json.MarshalIndent(run, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}
