package main

import (
	"encoding/json"
	"os"
	"time"

	"repro/internal/eval"
)

// BenchExperiment is the machine-readable record of one experiment run,
// the unit of the repository's bench trajectory (BENCH_run.json).
type BenchExperiment struct {
	ID          string  `json:"id"`
	Title       string  `json:"title"`
	WallSeconds float64 `json:"wall_seconds"`
	Scale       float64 `json:"scale"`
	Reps        int     `json:"reps"`
	Seed        int64   `json:"seed"`
	Rows        int     `json:"rows"`
	// Metrics holds the per-column averages of the rendered table — the
	// headline numbers (method scores, costs, round curves) in a form a
	// tracking script can diff across runs without parsing tables.
	Metrics map[string]float64 `json:"metrics"`
}

// BenchRun is the top-level BENCH_run.json document.
type BenchRun struct {
	SchemaVersion int               `json:"schema_version"`
	GeneratedAt   string            `json:"generated_at"`
	Experiments   []BenchExperiment `json:"experiments"`
	TotalSeconds  float64           `json:"total_wall_seconds"`
}

// benchRecord summarizes one finished experiment table.
func benchRecord(t *eval.Table, wall time.Duration, scale float64, reps int, seed int64) BenchExperiment {
	be := BenchExperiment{
		ID:          t.ID,
		Title:       t.Title,
		WallSeconds: wall.Seconds(),
		Scale:       scale,
		Reps:        reps,
		Seed:        seed,
		Metrics:     map[string]float64{},
	}
	for _, r := range t.Rows {
		if !r.IsAverage {
			be.Rows++
		}
	}
	for _, c := range t.Columns {
		be.Metrics[c] = t.Average(c)
	}
	return be
}

// writeBenchRun writes the run record as indented JSON.
func writeBenchRun(path string, run *BenchRun) error {
	run.SchemaVersion = 1
	run.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	var total float64
	for _, e := range run.Experiments {
		total += e.WallSeconds
	}
	run.TotalSeconds = total
	blob, err := json.MarshalIndent(run, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}
