package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registered on the default mux served by -pprof
	"os"

	"repro/internal/obs"
)

// obsFlags are the observability options shared by every subcommand:
//
//	-trace FILE.jsonl   span trace of the run (Transfer → SKC → AKB tree)
//	-metrics FILE.json  counters/gauges/histogram summaries at exit
//	-pprof ADDR         serve net/http/pprof on ADDR (e.g. localhost:6060)
//
// With none set, the pipeline runs through a nil recorder at zero cost.
type obsFlags struct {
	trace   string
	metrics string
	pprof   string
}

func addObsFlags(fs *flag.FlagSet) *obsFlags {
	o := &obsFlags{}
	fs.StringVar(&o.trace, "trace", "", "write a JSONL span trace to `file`")
	fs.StringVar(&o.metrics, "metrics", "", "write a metrics JSON snapshot to `file` at exit")
	fs.StringVar(&o.pprof, "pprof", "", "serve net/http/pprof on `addr` (e.g. localhost:6060)")
	return o
}

// setup builds the recorder the flags ask for. The returned finish func
// flushes and closes everything and must run before exit (it is safe to
// call when no flag was set).
func (o *obsFlags) setup() (*obs.Recorder, func() error, error) {
	if o.pprof != "" {
		go func() {
			if err := http.ListenAndServe(o.pprof, nil); err != nil {
				fmt.Fprintf(os.Stderr, "knowtrans: pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", o.pprof)
	}
	if o.trace == "" && o.metrics == "" {
		return nil, func() error { return nil }, nil
	}

	var tracer *obs.Tracer
	var traceFile *os.File
	if o.trace != "" {
		f, err := os.Create(o.trace)
		if err != nil {
			return nil, nil, fmt.Errorf("open trace file: %w", err)
		}
		traceFile = f
		tracer = obs.NewTracer(f)
	}
	// The registry exists whenever any observability is on: spans and
	// metrics come from the same instrumentation points, and a trace-only
	// run still benefits from counters being cheap.
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(reg, tracer)

	finish := func() error {
		var firstErr error
		if o.metrics != "" {
			f, err := os.Create(o.metrics)
			if err != nil {
				firstErr = fmt.Errorf("open metrics file: %w", err)
			} else {
				if err := reg.WriteJSON(f); err != nil && firstErr == nil {
					firstErr = fmt.Errorf("write metrics: %w", err)
				}
				if err := f.Close(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
		if traceFile != nil {
			if err := tracer.Err(); err != nil && firstErr == nil {
				firstErr = err
			}
			if err := traceFile.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	return rec, finish, nil
}
