package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	rtpprof "runtime/pprof"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/profile"
)

// obsFlags are the observability options shared by every subcommand:
//
//	-trace FILE.jsonl   span trace of the run (Transfer → SKC → AKB tree)
//	-metrics FILE.json  counters/gauges/histogram summaries at exit
//	-pprof ADDR         serve net/http/pprof, /metrics (Prometheus text
//	                    exposition, re-rendered on every scrape), and
//	                    /metrics.json on ADDR (dedicated mux; bind failure
//	                    is a startup error, shutdown is graceful at exit)
//	-sample D           poll runtime/metrics every D into the metrics
//	                    registry and a JSONL timeline (0 disables)
//	-timeline FILE      where -sample writes the timeline (default: next
//	                    to the trace file, else runtime.jsonl)
//	-cpuprofile FILE    whole-run CPU profile
//	-memprofile FILE    heap profile written at exit
//	-profdir DIR        slow-request-triggered CPU/heap captures (serve)
//
// With none set, the pipeline runs through a nil recorder at zero cost.
type obsFlags struct {
	trace      string
	metrics    string
	pprof      string
	sample     time.Duration
	timeline   string
	cpuprofile string
	memprofile string
	profdir    string

	// sampler / trigger are populated by setup for subcommands that thread
	// them further (serve wires both into its Options).
	sampler *profile.Sampler
	trigger *profile.Trigger
}

func addObsFlags(fs *flag.FlagSet) *obsFlags {
	o := &obsFlags{}
	fs.StringVar(&o.trace, "trace", "", "write a JSONL span trace to `file`")
	fs.StringVar(&o.metrics, "metrics", "", "write a metrics JSON snapshot to `file` at exit")
	fs.StringVar(&o.pprof, "pprof", "", "serve pprof + live /metrics on `addr` (e.g. localhost:6060)")
	fs.DurationVar(&o.sample, "sample", 0, "poll runtime/metrics every `interval` into the registry and a JSONL timeline (0 disables)")
	fs.StringVar(&o.timeline, "timeline", "", "runtime timeline `file` for -sample (default: TRACE.runtime.jsonl, else runtime.jsonl)")
	fs.StringVar(&o.cpuprofile, "cpuprofile", "", "write a whole-run CPU profile to `file`")
	fs.StringVar(&o.memprofile, "memprofile", "", "write a heap profile to `file` at exit")
	fs.StringVar(&o.profdir, "profdir", "", "write slow-request-triggered CPU/heap captures under `dir`")
	return o
}

// obsCleanup is the registered finish func of the active obsFlags setup;
// fatal() runs it so an aborting run still flushes its trace and metrics
// to disk (the analyzer tolerates the truncated tail a hard kill leaves,
// but an error exit shouldn't need that tolerance).
var (
	obsCleanupMu sync.Mutex
	obsCleanup   func() error
)

func runObsCleanup() {
	obsCleanupMu.Lock()
	f := obsCleanup
	obsCleanup = nil
	obsCleanupMu.Unlock()
	if f == nil {
		return
	}
	if err := f(); err != nil {
		fmt.Fprintf(os.Stderr, "knowtrans: observability shutdown: %v\n", err)
	}
}

// timelinePath resolves where the -sample timeline goes: an explicit
// -timeline wins, otherwise it lands next to the trace file, otherwise
// runtime.jsonl in the working directory.
func (o *obsFlags) timelinePath() string {
	if o.timeline != "" {
		return o.timeline
	}
	if o.trace != "" {
		return o.trace + ".runtime.jsonl"
	}
	return "runtime.jsonl"
}

// enabled reports whether any observability flag asked for anything.
func (o *obsFlags) enabled() bool {
	return o.trace != "" || o.metrics != "" || o.pprof != "" ||
		o.sample > 0 || o.cpuprofile != "" || o.memprofile != "" || o.profdir != ""
}

// setup builds the recorder the flags ask for. The returned finish func
// flushes and closes everything — sampler, profiles, metrics, tracer, and
// the pprof server — runs at most once (fatal() triggers it on the error
// path too), and must run before exit; it is safe to call when no flag
// was set.
func (o *obsFlags) setup() (*obs.Recorder, func() error, error) {
	if !o.enabled() {
		return nil, func() error { return nil }, nil
	}

	var tracer *obs.Tracer
	if o.trace != "" {
		f, err := os.Create(o.trace)
		if err != nil {
			return nil, nil, fmt.Errorf("open trace file: %w", err)
		}
		tracer = obs.NewTracer(f)
	}
	// The registry exists whenever any observability is on: spans and
	// metrics come from the same instrumentation points, a trace-only run
	// still benefits from counters being cheap, and the live /metrics
	// endpoint needs something to render even when nothing is written at
	// exit.
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(reg, tracer)

	// Whole-run CPU profile: started before anything interesting runs,
	// stopped in finish. Triggered captures tolerate the profiler being
	// owned for the whole run (they keep the heap half).
	var cpuFile *os.File
	if o.cpuprofile != "" {
		f, err := os.Create(o.cpuprofile)
		if err != nil {
			return nil, nil, fmt.Errorf("open cpu profile: %w", err)
		}
		if err := rtpprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("start cpu profile: %w", err)
		}
		cpuFile = f
	}

	// Continuous runtime sampling: registry gauges plus the JSONL timeline
	// `knowtrans obs prof` consumes.
	var timelineFile *os.File
	if o.sample > 0 {
		f, err := os.Create(o.timelinePath())
		if err != nil {
			if cpuFile != nil {
				rtpprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, nil, fmt.Errorf("open runtime timeline: %w", err)
		}
		timelineFile = f
		o.sampler = profile.Start(profile.Config{Interval: o.sample, Rec: rec, W: f})
	}

	if o.profdir != "" {
		if err := os.MkdirAll(o.profdir, 0o755); err != nil {
			return nil, nil, fmt.Errorf("create profile dir: %w", err)
		}
		o.trigger = &profile.Trigger{Dir: o.profdir, Rec: rec}
	}

	// The live telemetry endpoint gets its own mux — registering pprof on
	// the global default mux would leak handlers into every http.Handler
	// the process serves — and binds synchronously so a bad -pprof addr is
	// a startup error, not a lost stderr line after the run is underway.
	var pprofSrv *http.Server
	if o.pprof != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", netpprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
		// /metrics and /metrics.json snapshot the registry per scrape, so a
		// long `knowtrans experiment` run can be watched while it executes.
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", obs.PromContentType)
			if err := obs.WritePrometheus(w, reg.Snapshot()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := reg.WriteJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		ln, err := net.Listen("tcp", o.pprof)
		if err != nil {
			o.sampler.Stop()
			if timelineFile != nil {
				timelineFile.Close()
			}
			if cpuFile != nil {
				rtpprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, nil, fmt.Errorf("bind pprof server: %w", err)
		}
		pprofSrv = &http.Server{Handler: mux}
		go func() {
			if err := pprofSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "knowtrans: pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "telemetry on http://%s: /debug/pprof/ /metrics /metrics.json\n", ln.Addr())
	}

	var once sync.Once
	finish := func() error {
		var firstErr error
		keep := func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		once.Do(func() {
			// Order matters: stop the sampler first (its final sample is the
			// timeline's last row), then the profiles, then the snapshots the
			// sampler fed, then the tracer, then the live endpoint.
			o.sampler.Stop()
			keep(o.sampler.Err())
			if timelineFile != nil {
				keep(timelineFile.Close())
			}
			if cpuFile != nil {
				rtpprof.StopCPUProfile()
				keep(cpuFile.Close())
			}
			if o.memprofile != "" {
				f, err := os.Create(o.memprofile)
				if err != nil {
					keep(fmt.Errorf("open mem profile: %w", err))
				} else {
					keep(profile.WriteHeap(f))
					keep(f.Close())
				}
			}
			if o.metrics != "" {
				f, err := os.Create(o.metrics)
				if err != nil {
					keep(fmt.Errorf("open metrics file: %w", err))
				} else {
					keep(reg.WriteJSON(f))
					keep(f.Close())
				}
			}
			// Close flushes the JSONL tail and surfaces any write error the
			// tracer swallowed mid-run.
			keep(tracer.Close())
			if pprofSrv != nil {
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				keep(pprofSrv.Shutdown(ctx))
				cancel()
			}
		})
		return firstErr
	}
	obsCleanupMu.Lock()
	obsCleanup = finish
	obsCleanupMu.Unlock()
	return rec, finish, nil
}
