package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registered on the default mux served by -pprof
	"os"
	"sync"

	"repro/internal/obs"
)

// obsFlags are the observability options shared by every subcommand:
//
//	-trace FILE.jsonl   span trace of the run (Transfer → SKC → AKB tree)
//	-metrics FILE.json  counters/gauges/histogram summaries at exit
//	-pprof ADDR         serve net/http/pprof, /metrics (Prometheus text
//	                    exposition, re-rendered on every scrape), and
//	                    /metrics.json on ADDR
//
// With none set, the pipeline runs through a nil recorder at zero cost.
type obsFlags struct {
	trace   string
	metrics string
	pprof   string
}

func addObsFlags(fs *flag.FlagSet) *obsFlags {
	o := &obsFlags{}
	fs.StringVar(&o.trace, "trace", "", "write a JSONL span trace to `file`")
	fs.StringVar(&o.metrics, "metrics", "", "write a metrics JSON snapshot to `file` at exit")
	fs.StringVar(&o.pprof, "pprof", "", "serve pprof + live /metrics on `addr` (e.g. localhost:6060)")
	return o
}

// obsCleanup is the registered finish func of the active obsFlags setup;
// fatal() runs it so an aborting run still flushes its trace and metrics
// to disk (the analyzer tolerates the truncated tail a hard kill leaves,
// but an error exit shouldn't need that tolerance).
var (
	obsCleanupMu sync.Mutex
	obsCleanup   func() error
)

func runObsCleanup() {
	obsCleanupMu.Lock()
	f := obsCleanup
	obsCleanup = nil
	obsCleanupMu.Unlock()
	if f == nil {
		return
	}
	if err := f(); err != nil {
		fmt.Fprintf(os.Stderr, "knowtrans: observability shutdown: %v\n", err)
	}
}

// setup builds the recorder the flags ask for. The returned finish func
// flushes and closes everything, runs at most once (fatal() triggers it on
// the error path too), and must run before exit; it is safe to call when
// no flag was set.
func (o *obsFlags) setup() (*obs.Recorder, func() error, error) {
	if o.trace == "" && o.metrics == "" && o.pprof == "" {
		return nil, func() error { return nil }, nil
	}

	var tracer *obs.Tracer
	if o.trace != "" {
		f, err := os.Create(o.trace)
		if err != nil {
			return nil, nil, fmt.Errorf("open trace file: %w", err)
		}
		tracer = obs.NewTracer(f)
	}
	// The registry exists whenever any observability is on: spans and
	// metrics come from the same instrumentation points, a trace-only run
	// still benefits from counters being cheap, and the live /metrics
	// endpoint needs something to render even when nothing is written at
	// exit.
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(reg, tracer)

	if o.pprof != "" {
		// /metrics and /metrics.json snapshot the registry per scrape, so a
		// long `knowtrans experiment` run can be watched while it executes.
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", obs.PromContentType)
			if err := obs.WritePrometheus(w, reg.Snapshot()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		http.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := reg.WriteJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
		go func() {
			if err := http.ListenAndServe(o.pprof, nil); err != nil {
				fmt.Fprintf(os.Stderr, "knowtrans: pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "telemetry on http://%s: /debug/pprof/ /metrics /metrics.json\n", o.pprof)
	}

	var once sync.Once
	finish := func() error {
		var firstErr error
		once.Do(func() {
			if o.metrics != "" {
				f, err := os.Create(o.metrics)
				if err != nil {
					firstErr = fmt.Errorf("open metrics file: %w", err)
				} else {
					if err := reg.WriteJSON(f); err != nil && firstErr == nil {
						firstErr = fmt.Errorf("write metrics: %w", err)
					}
					if err := f.Close(); err != nil && firstErr == nil {
						firstErr = err
					}
				}
			}
			// Close flushes the JSONL tail and surfaces any write error the
			// tracer swallowed mid-run.
			if err := tracer.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		})
		return firstErr
	}
	obsCleanupMu.Lock()
	obsCleanup = finish
	obsCleanupMu.Unlock()
	return rec, finish, nil
}
