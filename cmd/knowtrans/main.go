// Command knowtrans is the experiment driver of the KnowTrans
// reproduction. It can run any paper experiment by id, train the upstream
// artifacts, or transfer the model to a single dataset and print the
// searched knowledge.
//
// Usage:
//
//	knowtrans experiment <id> [-scale 0.15] [-reps 3] [-seed 1] [-workers N]
//	knowtrans experiment all
//	knowtrans list
//	knowtrans transfer -dataset EM/Walmart-Amazon [-scale 0.15] [-seed 1]
//
// Experiment ids: table1 table2 table3 table4 table5 table6 table7 fig4
// fig5 fig6 fig7 (see DESIGN.md for the mapping to the paper).
//
// Every subcommand accepts the observability flags -trace FILE.jsonl,
// -metrics FILE.json, -pprof ADDR, and the profiling family -sample,
// -timeline, -cpuprofile, -memprofile, -profdir (see internal/obs,
// internal/obs/profile, and the "Observability" and "Profiling & resource
// accounting" sections of DESIGN.md). `knowtrans experiment` also writes
// a machine-readable BENCH_run.json run record (-bench to rename,
// -bench "" to disable) and accepts -faults to run the grid under seeded
// chaos injection on the oracle path (see internal/faults and the
// "Resilience & chaos testing" section of DESIGN.md).
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/faults"
	"repro/internal/lora"
	"repro/internal/oracle"
	"repro/internal/tasks"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		for _, e := range eval.FullRegistry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
	case "experiment":
		runExperiment(os.Args[2:])
	case "build":
		runBuild(os.Args[2:])
	case "transfer":
		runTransfer(os.Args[2:])
	case "serve":
		runServe(os.Args[2:])
	case "route":
		runRoute(os.Args[2:])
	case "job":
		runJob(os.Args[2:])
	case "obs":
		runObs(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "knowtrans: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  knowtrans list
  knowtrans experiment <id|all> [-scale S] [-reps N] [-seed K] [-workers W]
                       [-bench FILE.json] [-faults rate=R,seed=S[,kinds=a+b]] [obs flags]
  knowtrans build [-artifacts DIR] [-scale S] [-seed K] [obs flags]
  knowtrans transfer -dataset <task/name> [-artifacts DIR] [-scale S] [-seed K] [obs flags]
  knowtrans serve [-addr HOST:PORT] [-scale S] [-seed K] [-max-adapters N] [-max-batch N]
                  [-batch-wait D] [-timeout D] [-faults SPEC] [-access-log FILE|-]
                  [-slow D] [obs flags]
  knowtrans serve -selftest [-selftest-requests N] [-selftest-concurrency N]
                  [-selftest-adapters N] [-bench BENCH_serve.json]
  knowtrans route -backends URL,URL,... [-addr HOST:PORT] [-replication N]
                  [-probe-interval D] [-fail-threshold N] [-hedge-delay D]
                  [-retry-budget N] [-drain-timeout D] [obs flags]
  knowtrans route -selftest [-selftest-backends N] [-selftest-requests N]
                  [-selftest-concurrency N] [-selftest-adapters N] [-scale S]
                  [-faults SPEC] [-bench BENCH_cluster.json]
  knowtrans job [run|plan|resume] -spec FILE.{json,yaml} [-backends URL,URL]
                [-replication N] [-checkpoint DIR] [-dry-run] [-scale S]
                [-seed K] [-faults SPEC] [obs flags]
  knowtrans job -selftest [-selftest-backends N] [-selftest-rows N]
                [-selftest-shards N] [-selftest-kill-after N] [-scale S]
                [-faults SPEC] [-bench BENCH_jobs.json] [-workdir DIR]
  knowtrans obs trace FILE.jsonl [-top N] [-json] [-trace-id ID] [-follow]
  knowtrans obs top [-url URL] [-interval D] [-n N] [-once]
  knowtrans obs diff A.json B.json [-rel-tol F] [-strict] [-json]
  knowtrans obs prof TIMELINE.jsonl [-windows N] [-gate] [-diff BASELINE.jsonl] [-json]

observability flags (any subcommand):
  -trace FILE.jsonl   write a span trace (Transfer → SKC stages → AKB iterations)
  -metrics FILE.json  write counters/gauges/latency histograms at exit
  -pprof ADDR         serve net/http/pprof plus live /metrics (Prometheus
                      text) and /metrics.json on ADDR while the run executes
  -sample D           poll runtime/metrics every D into the registry and a
                      JSONL timeline for knowtrans obs prof
  -timeline FILE      where -sample writes the timeline (default: next to
                      the trace file, else runtime.jsonl)
  -cpuprofile FILE    whole-run CPU profile (pprof-labeled by route/key/
                      batch/phase/cell)
  -memprofile FILE    heap profile written at exit
  -profdir DIR        slow-request-triggered CPU/heap captures (serve)`)
}

// newFlagSet returns a flag set that reports parse errors to the caller
// instead of exiting behind its back (flag.ExitOnError made the error
// branches below unreachable and skipped the usage text).
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	return fs
}

// parseOrExit parses args, printing the subcommand's defaults plus the
// global usage and exiting 2 on error.
func parseOrExit(fs *flag.FlagSet, args []string) {
	if err := fs.Parse(args); err != nil {
		usage()
		os.Exit(2)
	}
}

func runExperiment(args []string) {
	fs := newFlagSet("experiment")
	scale := fs.Float64("scale", 0.15, "dataset scale relative to paper sizes (0,1]")
	reps := fs.Int("reps", 1, "repetitions to average over (paper: 3)")
	seed := fs.Int64("seed", 1, "master random seed")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0),
		"experiment cell workers (1 = serial; results are identical at any count)")
	benchPath := fs.String("bench", "BENCH_run.json", "write a machine-readable run record to `file` (empty to disable)")
	faultSpec := fs.String("faults", "",
		"inject oracle faults, `spec` rate=R,seed=S[,kinds=a+b][,latency=D] (chaos testing; see internal/faults)")
	of := addObsFlags(fs)
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "knowtrans: experiment needs an id (or `all`)")
		usage()
		os.Exit(2)
	}
	id := args[0]
	parseOrExit(fs, args[1:])
	rec, finish, err := of.setup()
	if err != nil {
		fatal(err)
	}
	rec.SeedTraceIDs(*seed)
	z := eval.NewZoo(*seed, *scale)
	z.Rec = rec
	z.Workers = *workers
	if *faultSpec != "" {
		fcfg, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			fatal(err)
		}
		z.Faults = &fcfg
	}

	bench := &BenchRun{}
	run := func(e eval.Experiment) {
		// Each experiment runs under one root span so `knowtrans obs trace`
		// can account every stage's self time against a single wall-time
		// denominator.
		expRec, expSpan := rec.StartSpan("experiment")
		expSpan.SetAttr("id", e.ID)
		expSpan.SetAttr("scale", *scale)
		expSpan.SetAttr("reps", *reps)
		z.Rec = expRec
		start := time.Now()
		t := e.Run(z, *reps)
		wall := time.Since(start)
		expSpan.End()
		z.Rec = rec
		expRec.Event("experiment.done", "id", e.ID, "wall_s", wall.Seconds())
		fmt.Println(t.Render())
		fmt.Printf("(%s in %.1fs, scale=%.2f, reps=%d, seed=%d)\n\n", e.ID, wall.Seconds(), *scale, *reps, *seed)
		bench.Experiments = append(bench.Experiments, benchRecord(t, wall, *scale, *reps, *seed))
	}
	if id == "all" {
		for _, e := range eval.Registry() {
			run(e)
		}
	} else {
		e, ok := eval.ExperimentByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "knowtrans: unknown experiment %q; try `knowtrans list`\n", id)
			os.Exit(2)
		}
		run(e)
	}
	if *benchPath != "" {
		if err := writeBenchRun(*benchPath, bench); err != nil {
			fatal(fmt.Errorf("write bench record: %w", err))
		}
		fmt.Printf("wrote %s (%d experiments)\n", *benchPath, len(bench.Experiments))
	}
	if err := finish(); err != nil {
		fatal(err)
	}
}

func runTransfer(args []string) {
	fs := newFlagSet("transfer")
	dataset := fs.String("dataset", "EM/Walmart-Amazon", "downstream dataset key (task/name)")
	artifacts := fs.String("artifacts", "", "artifact directory written by `knowtrans build` (optional)")
	scale := fs.Float64("scale", 0.15, "dataset scale")
	seed := fs.Int64("seed", 1, "random seed")
	of := addObsFlags(fs)
	parseOrExit(fs, args)
	rec, finish, err := of.setup()
	if err != nil {
		fatal(err)
	}
	rec.SeedTraceIDs(*seed)
	z := eval.NewZoo(*seed, *scale)
	z.Rec = rec
	b, ok := z.FindDownstream(*dataset)
	if !ok {
		fmt.Fprintf(os.Stderr, "knowtrans: unknown dataset %q; valid keys:\n  %s\n",
			*dataset, strings.Join(z.DownstreamKeys(), "\n  "))
		usage()
		os.Exit(2)
	}
	fewshot := b.DS.FewShot(rand.New(rand.NewSource(*seed)), eval.FewShotN)

	fmt.Printf("Transferring Jellyfish-7B to %s with %d labeled examples...\n", *dataset, len(fewshot))
	jelly := z.Method(eval.MethodJellyfish).Adapt(&baselines.AdaptContext{Bundle: b, FewShot: fewshot, Seed: *seed})
	jellyScore := baselines.Evaluate(jelly, b.Kind, b.DS.Test)

	var pred baselines.Predictor
	if *artifacts != "" {
		upstream, snaps, err := loadArtifacts(*artifacts)
		if err != nil {
			fatal(err)
		}
		if upstream == nil {
			fatal(fmt.Errorf("no artifacts in %s; run `knowtrans build` first", *artifacts))
		}
		fmt.Printf("loaded upstream model + %d patches from %s\n", len(snaps), *artifacts)
		upstream.Rec = rec
		kt := core.NewKnowTrans(upstream, snaps,
			core.WithPlainOracle(oracle.New(*seed)),
			core.WithRecorder(rec),
		)
		ad, err := kt.Transfer(context.Background(), b.Kind, fewshot, *seed)
		if err != nil {
			fatal(err)
		}
		pred = ad.Detached()
	} else {
		kt := z.KnowTransMethod(eval.Size7B, true, true, lora.StrategyAdaptive)
		pred = kt.Adapt(&baselines.AdaptContext{Bundle: b, FewShot: fewshot, Seed: *seed})
	}
	ktScore := baselines.Evaluate(pred, b.Kind, b.DS.Test)

	fmt.Printf("\n%-24s %6.2f\n%-24s %6.2f\n", "Jellyfish-7B (few-shot):", jellyScore, "KnowTrans-7B:", ktScore)
	if kc, ok := pred.(interface{ SearchedKnowledge() *tasks.Knowledge }); ok && kc.SearchedKnowledge() != nil {
		fmt.Printf("\nSearched knowledge:\n%s\n", tasks.RenderKnowledgeText(kc.SearchedKnowledge()))
	}
	if err := finish(); err != nil {
		fatal(err)
	}
}
