package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/data"
	"repro/internal/dataio"
	"repro/internal/eval"
	"repro/internal/faults"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/serve"
)

// runJob drives the bulk tier from the command line: `knowtrans job
// run|plan|resume -spec FILE` executes (or previews) one declarative job
// against either an in-process registry or a -backends fleet through the
// cluster router — the same engine POST /v1/jobs runs. With -selftest it
// instead runs the crash-recovery acceptance gate: a multi-shard job
// against a spawned backend fleet, SIGKILLed mid-flight via
// -kill-after-shards, resumed, and gated on byte-identity with an
// uninterrupted same-seed run plus zero duplicated Transfers.
func runJob(args []string) {
	verb := "run"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		verb = args[0]
		args = args[1:]
	}
	switch verb {
	case "run", "plan", "resume":
	default:
		fmt.Fprintf(os.Stderr, "knowtrans: unknown job verb %q (want run|plan|resume)\n", verb)
		usage()
		os.Exit(2)
	}
	fs := newFlagSet("job")
	specPath := fs.String("spec", "", "job spec `file` (JSON or YAML)")
	backendList := fs.String("backends", "", "comma-separated backend URLs; empty runs an in-process registry")
	checkpointDir := fs.String("checkpoint", ".knowtrans-jobs", "checkpoint log `dir` (resume reads it, run appends to it)")
	dryRun := fs.Bool("dry-run", false, "plan only: print the deterministic shard layout and exit 0")
	replication := fs.Int("replication", 2, "with -backends: distinct owners per key")
	scale := fs.Float64("scale", 0.15, "in-process resolver: dataset scale")
	seed := fs.Int64("seed", 1, "in-process resolver: master random seed")
	faultSpec := fs.String("faults", "",
		"in-process resolver: oracle fault `spec` rate=R,seed=S[,kinds=a+b]")
	killAfter := fs.Int("kill-after-shards", 0,
		"SIGKILL this process once N shards have committed (crash-recovery drills; 0 disables)")
	selftest := fs.Bool("selftest", false, "run the kill/resume acceptance gate instead of a job")
	stBackends := fs.Int("selftest-backends", 2, "selftest: backends to spawn")
	stRows := fs.Int("selftest-rows", 64, "selftest: input rows")
	stShards := fs.Int("selftest-shards", 8, "selftest: shards per job")
	stKill := fs.Int("selftest-kill-after", 2, "selftest: SIGKILL the run after this many committed shards")
	benchPath := fs.String("bench", "BENCH_jobs.json", "selftest: write the perf record to `file` (empty to disable)")
	workdir := fs.String("workdir", "", "selftest: keep specs/checkpoints/outputs in this `dir` (default: temp, removed)")
	of := addObsFlags(fs)
	parseOrExit(fs, args)

	rec, finish, err := of.setup()
	if err != nil {
		fatal(err)
	}
	if rec == nil || rec.Metrics == nil {
		var tracer *obs.Tracer
		if rec != nil {
			tracer = rec.Tracer
		}
		rec = obs.NewRecorder(obs.NewRegistry(), tracer)
	}
	rec.SeedTraceIDs(*seed)

	if *selftest {
		if err := runJobSelftest(jobSelftestConfig{
			backends:    *stBackends,
			rows:        *stRows,
			shards:      *stShards,
			killAfter:   *stKill,
			replication: *replication,
			scale:       *scale,
			seed:        *seed,
			faults:      *faultSpec,
			benchPath:   *benchPath,
			workdir:     *workdir,
			rec:         rec,
		}); err != nil {
			if ferr := finish(); ferr != nil {
				fmt.Fprintf(os.Stderr, "knowtrans: observability shutdown: %v\n", ferr)
			}
			fatal(err)
		}
		if err := finish(); err != nil {
			fatal(err)
		}
		return
	}

	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "knowtrans: job needs -spec (or -selftest)")
		usage()
		os.Exit(2)
	}
	sp, err := jobs.ParseSpecFile(*specPath)
	if err != nil {
		fatal(err)
	}

	var res serve.Resolver
	if urls := splitBackends(*backendList); len(urls) > 0 {
		r, err := cluster.New(cluster.Options{
			Backends:    urls,
			Replication: *replication,
			Seed:        *seed,
			Rec:         rec,
		})
		if err != nil {
			fatal(err)
		}
		defer r.Close()
		res = r
	} else {
		z := eval.NewZoo(*seed, *scale)
		z.Rec = rec
		if *faultSpec != "" {
			fcfg, err := faults.ParseSpec(*faultSpec)
			if err != nil {
				fatal(err)
			}
			z.Faults = &fcfg
		}
		res = serve.NewRegistry(zooTransferer(z), serve.Options{Rec: rec})
	}

	eng := &jobs.Engine{Res: res, CheckpointDir: *checkpointDir, Rec: rec}
	if *killAfter > 0 {
		// Crash-recovery plumbing for the selftest and check.sh: die the
		// hard way (no drain, no deferred cleanup) the instant the Nth
		// shard is durable.
		n := *killAfter
		eng.OnCommit = func(_, committed int) {
			if committed >= n {
				syscall.Kill(os.Getpid(), syscall.SIGKILL)
			}
		}
	}

	p, err := eng.Plan(sp)
	if err != nil {
		fatal(err)
	}
	if verb == "plan" || *dryRun {
		var b strings.Builder
		p.Render(&b)
		fmt.Print(b.String())
		if err := finish(); err != nil {
			fatal(err)
		}
		return
	}
	ckptPath := jobs.CheckpointPath(*checkpointDir, p.ID)
	if verb == "resume" {
		if _, err := os.Stat(ckptPath); err != nil {
			fatal(fmt.Errorf("job: nothing to resume: %s has no checkpoint log (%v)", p.ID, err))
		}
	}
	fmt.Printf("job %s: %d rows over %d shards → %s (checkpoint %s)\n",
		p.ID, p.Rows, len(p.Shards), sp.Output.Path, ckptPath)
	result, err := eng.Run(context.Background(), p, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("job %s: done — %d rows in %.2fs (%.0f rows/s), %d shards (%d resumed), %d row failures, %d retries\n",
		result.ID, result.Rows, result.WallS, float64(result.Rows)/result.WallS,
		result.Shards, result.ResumedShards, result.RowFailures, result.Retries)
	fmt.Printf("wrote %s\n", result.Output)
	if err := finish(); err != nil {
		fatal(err)
	}
}

type jobSelftestConfig struct {
	backends    int
	rows        int
	shards      int
	killAfter   int
	replication int
	scale       float64
	seed        int64
	faults      string
	benchPath   string
	workdir     string
	rec         *obs.Recorder
}

// BenchJobs is the BENCH_jobs.json document (schema 1). The "report"
// section holds the numerics `obs diff` gates — job shape, recovery
// outcome verdicts (as 0/1 ints), and throughput; run-volatile evidence
// (kill timing, retry counts) lives in "chaos", which the diff loader
// skips.
type BenchJobs struct {
	SchemaVersion int             `json:"schema_version"`
	GeneratedAt   string          `json:"generated_at"`
	Seed          int64           `json:"seed"`
	Scale         float64         `json:"scale"`
	Faults        string          `json:"faults,omitempty"`
	Adapter       string          `json:"adapter"`
	Backends      int             `json:"backends"`
	Report        *BenchJobsStats `json:"report"`
	Chaos         *BenchJobsChaos `json:"chaos"`
}

// BenchJobsStats is the gated surface of one selftest run.
type BenchJobsStats struct {
	Rows               int     `json:"rows"`
	Shards             int     `json:"shards"`
	ResumedShards      int     `json:"resumed_shards"`
	RowFailures        int     `json:"row_failures"`
	DuplicateTransfers int     `json:"duplicate_transfers"`
	ByteIdentical      int     `json:"byte_identical"`
	PlanDeterministic  int     `json:"plan_deterministic"`
	WallS              float64 `json:"wall_s"`
	RowsPerS           float64 `json:"rows_per_s"`
}

// BenchJobsChaos is the crash-recovery evidence around the SIGKILL.
type BenchJobsChaos struct {
	KilledAfterShards      int   `json:"killed_after_shards"`
	CommittedBeforeKill    int   `json:"committed_before_kill"`
	Retries                int64 `json:"retries"`
	TruncatedTailRecovered int   `json:"truncated_tail_recovered"`
}

// runJobSelftest is the acceptance gate behind `knowtrans job -selftest`:
// plan determinism, a SIGKILL mid-job, a resume that skips every committed
// shard, byte-identity with an uninterrupted run, and zero duplicated
// Transfers across the whole drill.
func runJobSelftest(cfg jobSelftestConfig) error {
	if cfg.killAfter < 1 || cfg.killAfter >= cfg.shards {
		return fmt.Errorf("job: -selftest-kill-after must be in [1,%d)", cfg.shards)
	}
	work := cfg.workdir
	if work == "" {
		var err error
		if work, err = os.MkdirTemp("", "knowtrans-job-selftest-"); err != nil {
			return err
		}
		defer os.RemoveAll(work)
	} else if err := os.MkdirAll(work, 0o755); err != nil {
		return err
	}

	// Build the input: the first downstream dataset's test split, cycled to
	// the requested row count under fresh IDs, in one dpgen-format file.
	ref := eval.NewZoo(cfg.seed, cfg.scale)
	key := ref.DownstreamKeys()[0]
	b, _ := ref.FindDownstream(key)
	task, _, _ := strings.Cut(key, "/")
	ds := &data.Dataset{Name: "bulk", Task: task}
	for i := 0; i < cfg.rows; i++ {
		cp := *b.DS.Test[i%len(b.DS.Test)]
		cp.ID = fmt.Sprintf("bulk-%03d", i)
		ds.Test = append(ds.Test, &cp)
	}
	input := filepath.Join(work, "input.json")
	f, err := os.Create(input)
	if err != nil {
		return err
	}
	if err := dataio.EncodeJSON(ds, "", f); err != nil {
		f.Close()
		return err
	}
	f.Close()

	// Two specs over the same input and adapter, differing only in output
	// path (so they are distinct jobs with distinct checkpoint logs): A
	// runs uninterrupted, B is killed and resumed. Byte-identity of their
	// outputs is the recovery verdict.
	writeSpec := func(name, out string) (string, *jobs.Spec, error) {
		blob := fmt.Sprintf(`{
  "adapter": %q,
  "input": {"path": %q},
  "output": {"path": %q},
  "shards": %d,
  "limits": {"concurrency": 8, "shard_parallelism": 2, "retries": 3, "row_timeout_s": 60}
}`, key, input, out, cfg.shards)
		path := filepath.Join(work, name)
		if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
			return "", nil, err
		}
		sp, err := jobs.ParseSpec([]byte(blob))
		return path, sp, err
	}
	outA := filepath.Join(work, "outA.csv")
	outB := filepath.Join(work, "outB.csv")
	if _, _, err := writeSpec("specA.json", outA); err != nil {
		return err
	}
	specBPath, spB, err := writeSpec("specB.json", outB)
	if err != nil {
		return err
	}
	spA, err := jobs.ParseSpecFile(filepath.Join(work, "specA.json"))
	if err != nil {
		return err
	}

	// Spawn the backend fleet (same recipe as the route selftest: every
	// backend is deterministic in (seed, scale, faults)).
	fmt.Printf("selftest: spawning %d backends (scale=%.2f seed=%d faults=%q)...\n",
		cfg.backends, cfg.scale, cfg.seed, cfg.faults)
	procs := make([]*backendProc, 0, cfg.backends)
	defer func() {
		for _, p := range procs {
			if p.cmd.ProcessState == nil {
				p.cmd.Process.Kill()
				p.cmd.Wait()
			}
		}
	}()
	urls := make([]string, 0, cfg.backends)
	for i := 0; i < cfg.backends; i++ {
		p, err := spawnBackend(cfg.scale, cfg.seed, 4, cfg.faults)
		if err != nil {
			return err
		}
		procs = append(procs, p)
		urls = append(urls, p.url)
	}
	for _, u := range urls {
		if err := waitReady(u, 30*time.Second); err != nil {
			return err
		}
	}
	fmt.Printf("selftest: fleet up: %s\n", strings.Join(urls, " "))

	// Error-envelope probe: a predict for an unknown dataset must come back
	// as the canonical envelope with the right code and retryability.
	if err := probeErrorEnvelope(urls[0]); err != nil {
		return err
	}

	router, err := cluster.New(cluster.Options{
		Backends:    urls,
		Replication: cfg.replication,
		Seed:        cfg.seed,
		Rec:         cfg.rec,
	})
	if err != nil {
		return err
	}
	defer router.Close()

	// Plan determinism: the same spec must render byte-identical plans.
	eng := &jobs.Engine{Res: router, CheckpointDir: filepath.Join(work, "ckptA"), Rec: cfg.rec}
	var renders [2]string
	for i := range renders {
		p, err := eng.Plan(spA)
		if err != nil {
			return err
		}
		var sb strings.Builder
		p.Render(&sb)
		renders[i] = sb.String()
	}
	planDet := 0
	if renders[0] == renders[1] {
		planDet = 1
	} else {
		return fmt.Errorf("job: plan render is not deterministic:\n%s\nvs\n%s", renders[0], renders[1])
	}

	// Job A: uninterrupted reference run through the router.
	fmt.Printf("selftest: job A — %d rows over %d shards, uninterrupted\n", cfg.rows, cfg.shards)
	pA, err := eng.Plan(spA)
	if err != nil {
		return err
	}
	resA, err := eng.Run(context.Background(), pA, nil)
	if err != nil {
		return fmt.Errorf("job: reference run: %w", err)
	}

	// Job B: a subprocess runs the same rows and SIGKILLs itself the
	// instant the Nth shard commits — a real crash, no deferred cleanup.
	ckptB := filepath.Join(work, "ckptB")
	exe, err := os.Executable()
	if err != nil {
		exe = os.Args[0]
	}
	fmt.Printf("selftest: job B — same rows, SIGKILL after %d committed shards\n", cfg.killAfter)
	cmd := exec.Command(exe, "job", "run",
		"-spec", specBPath,
		"-backends", strings.Join(urls, ","),
		"-checkpoint", ckptB,
		"-replication", fmt.Sprintf("%d", cfg.replication),
		"-seed", fmt.Sprintf("%d", cfg.seed),
		"-kill-after-shards", fmt.Sprintf("%d", cfg.killAfter),
	)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err == nil {
		return fmt.Errorf("job: the -kill-after-shards run exited 0; it must die mid-job")
	}
	st, err := jobs.ReadLog(jobs.CheckpointPath(ckptB, spB.ID()))
	if err != nil {
		return fmt.Errorf("job: reading post-kill checkpoint: %w", err)
	}
	committed := len(st.Shards)
	if committed < cfg.killAfter {
		return fmt.Errorf("job: only %d shards survived the kill, want >= %d fsynced commits", committed, cfg.killAfter)
	}
	if committed >= cfg.shards || st.Done {
		return fmt.Errorf("job: the killed run finished all %d shards (done=%v); the kill came too late to prove anything", committed, st.Done)
	}
	fmt.Printf("selftest: killed run left %d/%d committed shards\n", committed, cfg.shards)

	// Tear the checkpoint tail the way a second kill mid-append would, and
	// require recovery to tolerate it.
	cf, err := os.OpenFile(jobs.CheckpointPath(ckptB, spB.ID()), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := cf.WriteString(`{"type":"shard","shard":99,"answers":["torn`); err != nil {
		cf.Close()
		return err
	}
	cf.Close()
	st2, err := jobs.ReadLog(jobs.CheckpointPath(ckptB, spB.ID()))
	if err != nil {
		return fmt.Errorf("job: torn checkpoint tail was not tolerated: %w", err)
	}
	if !st2.Truncated || len(st2.Shards) != committed {
		return fmt.Errorf("job: torn-tail recovery wrong: truncated=%v shards=%d (want %d)", st2.Truncated, len(st2.Shards), committed)
	}

	// Resume in-process: every committed shard must be adopted, none rerun.
	fmt.Printf("selftest: resuming job B from its checkpoint...\n")
	engB := &jobs.Engine{Res: router, CheckpointDir: ckptB, Rec: cfg.rec}
	pB, err := engB.Plan(spB)
	if err != nil {
		return err
	}
	resB, err := engB.Run(context.Background(), pB, nil)
	if err != nil {
		return fmt.Errorf("job: resume: %w", err)
	}
	if resB.ResumedShards != committed {
		return fmt.Errorf("job: resume adopted %d shards, checkpoint held %d", resB.ResumedShards, committed)
	}

	// Byte-identity: the killed-and-resumed output vs the uninterrupted one.
	blobA, err := os.ReadFile(outA)
	if err != nil {
		return err
	}
	blobB, err := os.ReadFile(outB)
	if err != nil {
		return err
	}
	byteIdentical := 0
	if bytes.Equal(blobA, blobB) {
		byteIdentical = 1
	}

	// Duplicate-Transfer audit: ask every backend for its per-key stats;
	// across job A, the killed run, and the resume, no adapter may have
	// been transferred twice anywhere in the fleet.
	duplicates := 0
	for _, u := range urls {
		resp, err := http.Get(u + "/v1/adapters")
		if err != nil {
			return fmt.Errorf("job: adapters probe %s: %w", u, err)
		}
		var ar serve.AdaptersResponse
		err = json.NewDecoder(resp.Body).Decode(&ar)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("job: adapters probe %s: %w", u, err)
		}
		for _, ks := range ar.Adapters {
			if ks.Transfers > 1 {
				duplicates += int(ks.Transfers - 1)
				fmt.Printf("selftest: backend %s transferred %s %d times\n", u, ks.Key, ks.Transfers)
			}
		}
	}

	// Survivoring backends must drain clean on SIGTERM.
	for _, p := range procs {
		if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			return fmt.Errorf("job: SIGTERM %s: %w", p.url, err)
		}
	}
	for _, p := range procs {
		done := make(chan error, 1)
		go func(p *backendProc) { done <- p.cmd.Wait() }(p)
		select {
		case err := <-done:
			if err != nil {
				return fmt.Errorf("job: backend %s did not drain clean: %v", p.url, err)
			}
		case <-time.After(15 * time.Second):
			return fmt.Errorf("job: backend %s still running 15s after SIGTERM", p.url)
		}
	}

	wall := resA.WallS + resB.WallS
	report := &BenchJobsStats{
		Rows:               resB.Rows,
		Shards:             resB.Shards,
		ResumedShards:      resB.ResumedShards,
		RowFailures:        resA.RowFailures + resB.RowFailures,
		DuplicateTransfers: duplicates,
		ByteIdentical:      byteIdentical,
		PlanDeterministic:  planDet,
		WallS:              wall,
	}
	if wall > 0 {
		report.RowsPerS = float64(resA.Rows+resB.Rows) / wall
	}
	chaos := &BenchJobsChaos{
		KilledAfterShards:      cfg.killAfter,
		CommittedBeforeKill:    committed,
		Retries:                resA.Retries + resB.Retries,
		TruncatedTailRecovered: 1,
	}

	fmt.Printf("selftest: %d rows, %d shards, resumed %d, %d row failures, %d duplicate transfers\n",
		report.Rows, report.Shards, report.ResumedShards, report.RowFailures, duplicates)
	fmt.Printf("selftest: byte_identical=%d plan_deterministic=%d (%.2fs wall, %.0f rows/s)\n",
		byteIdentical, planDet, wall, report.RowsPerS)

	if cfg.benchPath != "" {
		doc := &BenchJobs{
			SchemaVersion: 1,
			GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
			Seed:          cfg.seed,
			Scale:         cfg.scale,
			Faults:        cfg.faults,
			Adapter:       key,
			Backends:      cfg.backends,
			Report:        report,
			Chaos:         chaos,
		}
		blob, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.benchPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.benchPath)
	}

	// Verdicts: the recovery story holds or the gate fails.
	if byteIdentical != 1 {
		return fmt.Errorf("job: resumed output differs from the uninterrupted run (%s vs %s)", outB, outA)
	}
	if duplicates != 0 {
		return fmt.Errorf("job: %d duplicated Transfers across the kill/resume drill, want 0", duplicates)
	}
	if report.RowFailures != 0 {
		return fmt.Errorf("job: %d rows were lost, want 0 (retries should absorb transient faults)", report.RowFailures)
	}
	fmt.Println("selftest: PASS")
	return nil
}

// probeErrorEnvelope asserts one backend answers an unknown-dataset
// predict with the canonical error envelope.
func probeErrorEnvelope(url string) error {
	body := `{"adapter":"EM/NoSuchDataset","instance":{"id":"p","candidates":["a","b"]}}`
	resp, err := http.Post(url+"/v1/predict", "application/json", strings.NewReader(body))
	if err != nil {
		return fmt.Errorf("job: envelope probe: %w", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return fmt.Errorf("job: envelope probe: %w", err)
	}
	if resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("job: envelope probe: status %d, want 404 (%s)", resp.StatusCode, buf.String())
	}
	eb, ok := serve.ParseErrorEnvelope(buf.Bytes())
	if !ok || eb.Code != serve.CodeNotFound || eb.Retryable {
		return fmt.Errorf("job: envelope probe: body is not the canonical envelope: %s", buf.String())
	}
	fmt.Printf("selftest: error envelope ok (code=%s retryable=%v)\n", eb.Code, eb.Retryable)
	return nil
}
