package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

// runObsTop is the live operator view: it polls a running server's
// /metrics.json and renders in-flight requests, per-key queue depths, and
// rolling p50/p95 (quantiles over the bucket-count deltas between polls,
// so they describe the last interval, not the process lifetime). When the
// slowest active latency bucket carries a trace-ID exemplar, the view names
// it — the handle to pull with `obs trace -trace-id`.
func runObsTop(args []string) {
	fs := newFlagSet("obs top")
	url := fs.String("url", "http://localhost:8080", "base `URL` of the running server")
	interval := fs.Duration("interval", 2*time.Second, "poll interval")
	n := fs.Int("n", 0, "stop after N refreshes (0 = run until interrupted)")
	once := fs.Bool("once", false, "one refresh, then exit (same as -n 1)")
	parseOrExit(fs, args)
	if *once {
		*n = 1
	}

	client := &http.Client{Timeout: 10 * time.Second}
	fetch := func() (obs.RegistrySnapshot, error) {
		var snap obs.RegistrySnapshot
		resp, err := client.Get(*url + "/metrics.json")
		if err != nil {
			return snap, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return snap, fmt.Errorf("%s/metrics.json: HTTP %d", *url, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			return snap, fmt.Errorf("decode /metrics.json: %w", err)
		}
		return snap, nil
	}

	var prev obs.RegistrySnapshot
	for i := 0; *n <= 0 || i < *n; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		cur, err := fetch()
		if err != nil {
			// A server that is down mid-watch is a finding, not a crash.
			fmt.Fprintf(os.Stderr, "knowtrans: obs top: %v\n", err)
			if i == 0 {
				runObsCleanup()
				os.Exit(1)
			}
			continue
		}
		stats := analyze.BuildTop(prev, cur)
		fmt.Printf("%s  ", time.Now().Format("15:04:05"))
		if err := stats.WriteText(os.Stdout); err != nil {
			fatal(err)
		}
		prev = cur
	}
}
