package main

import (
	"math"
	"testing"
	"time"

	"repro/internal/eval"
)

// TestBenchRecord pins benchRecord's per-column averages against a
// hand-computed table, including the IsAverage row exclusion: the
// synthesized average rows WithAverages appends must contribute neither to
// the metric means nor to the row count.
func TestBenchRecord(t *testing.T) {
	tab := &eval.Table{ID: "tX", Title: "test table", Columns: []string{"M1", "M2"}}
	tab.AddRow("EM", "d1", map[string]float64{"M1": 10, "M2": 1})
	tab.AddRow("DC", "d2", map[string]float64{"M1": 20, "M2": 3})
	tab.AddRow("DC", "d3", map[string]float64{"M1": 60}) // M2 absent: not in its mean
	withAvg := tab.WithAverages()

	// WithAverages appends a DC task average and an overall average; if
	// either leaked into the means below, M1 would shift from 30 (task avg
	// 40, overall avg 30 pull it to 32 when included).
	var avgRows int
	for _, r := range withAvg.Rows {
		if r.IsAverage {
			avgRows++
		}
	}
	if avgRows != 2 {
		t.Fatalf("fixture: %d average rows, want 2", avgRows)
	}

	be := benchRecord(withAvg, 1500*time.Millisecond, 0.15, 2, 7)

	if be.ID != "tX" || be.Title != "test table" {
		t.Errorf("identity = %q/%q", be.ID, be.Title)
	}
	if be.WallSeconds != 1.5 || be.Scale != 0.15 || be.Reps != 2 || be.Seed != 7 {
		t.Errorf("run params = %+v", be)
	}
	if be.Rows != 3 {
		t.Errorf("Rows = %d, want 3 (average rows excluded)", be.Rows)
	}
	// Hand-computed: M1 = (10+20+60)/3 = 30; M2 = (1+3)/2 = 2 (d3 has no M2).
	if got := be.Metrics["M1"]; math.Abs(got-30) > 1e-9 {
		t.Errorf("M1 = %g, want 30", got)
	}
	if got := be.Metrics["M2"]; math.Abs(got-2) > 1e-9 {
		t.Errorf("M2 = %g, want 2", got)
	}
	if len(be.Metrics) != 2 {
		t.Errorf("metrics = %v, want exactly the two columns", be.Metrics)
	}
}
