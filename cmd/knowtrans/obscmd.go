package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/obs/analyze"
)

// The obs subcommand family is the consumption side of the -trace/-metrics
// flags: offline analysis of the JSONL span traces and BENCH_run.json
// documents an instrumented run leaves behind.
//
//	knowtrans obs trace t.jsonl [-top 10] [-json]
//	knowtrans obs diff A.json B.json [-rel-tol F] [-wall-tol F] [-strict] [-verbose] [-json]
func runObs(args []string) {
	if len(args) == 0 {
		obsUsage()
		os.Exit(2)
	}
	switch args[0] {
	case "trace":
		runObsTrace(args[1:])
	case "diff":
		runObsDiff(args[1:])
	case "top":
		runObsTop(args[1:])
	case "prof":
		runObsProf(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "knowtrans: unknown obs subcommand %q\n", args[0])
		obsUsage()
		os.Exit(2)
	}
}

func obsUsage() {
	fmt.Fprintln(os.Stderr, `usage:
  knowtrans obs trace FILE.jsonl [-top N] [-json] [-trace-id ID] [-follow] [-interval D]
      analyze a span trace: per-stage aggregates (count, total/self time,
      p50/p95), the critical path, the slowest spans, and event counts.
      -trace-id reassembles one request's end-to-end path (its spans,
      events, and the shared batch/transfer work linked into it); -follow
      tails the file, re-rendering as new records land
  knowtrans obs top [-url URL] [-interval D] [-n N] [-once]
      live operator view of a running server: polls /metrics.json for
      in-flight requests, per-key queue depths, and rolling p50/p95
  knowtrans obs diff A.json B.json [-rel-tol F] [-wall-tol F] [-strict] [-verbose] [-json]
      compare two BENCH_run.json or BENCH_serve.json documents
      metric-by-metric; exits 1 when any metric regressed beyond the
      relative tolerance
  knowtrans obs prof TIMELINE.jsonl [-windows N] [-json] [-gate] [-diff BASELINE.jsonl] [-rel-tol F]
      summarize a runtime-metrics timeline recorded with -sample: heap
      growth slope, GC pause p50/p95, goroutine-leak detection across
      windows, alloc rate. -gate exits 1 on a suspected leak; -diff
      compares against a baseline timeline and exits 1 on budget
      regression — the perf sentinel`)
}

func runObsTrace(args []string) {
	fs := newFlagSet("obs trace")
	top := fs.Int("top", 10, "slowest-spans entries to report")
	asJSON := fs.Bool("json", false, "emit the report as JSON instead of text")
	traceID := fs.String("trace-id", "", "reassemble one request's end-to-end path by trace `id`")
	follow := fs.Bool("follow", false, "tail the file: re-render as new records land")
	interval := fs.Duration("interval", 500*time.Millisecond, "poll interval in -follow mode")
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		fmt.Fprintln(os.Stderr, "knowtrans: obs trace needs a trace file")
		obsUsage()
		os.Exit(2)
	}
	path := args[0]
	parseOrExit(fs, args[1:])

	load := func() *analyze.Trace {
		tr, err := analyze.LoadFile(path)
		if err != nil {
			// A missing or unreadable trace file is an operator mistake, not a
			// crash: explain, show usage, exit 2 like any other bad invocation.
			fmt.Fprintf(os.Stderr, "knowtrans: %v\n", err)
			obsUsage()
			runObsCleanup()
			os.Exit(2)
		}
		return tr
	}

	render := func(tr *analyze.Trace) error {
		if *traceID != "" {
			p := tr.FilterTrace(*traceID)
			if *asJSON {
				enc := json.NewEncoder(os.Stdout)
				enc.SetIndent("", "  ")
				return enc.Encode(p)
			}
			return p.WriteText(os.Stdout)
		}
		rep := analyze.NewReport(tr, *top)
		if *asJSON {
			return rep.WriteJSON(os.Stdout)
		}
		return rep.WriteText(os.Stdout)
	}

	if !*follow {
		tr := load()
		if err := render(tr); err != nil {
			fatal(err)
		}
		if *traceID != "" && tr.FilterTrace(*traceID).Empty() {
			os.Exit(1)
		}
		return
	}

	// Follow mode: poll the file, re-rendering whenever it grows. LoadFile
	// tolerates a truncated tail, so reading mid-write is safe. With a
	// -trace-id the loop exits once the filtered path is non-empty and has
	// stopped growing (the request completed); without one it tails forever.
	lastCount := -1
	stableFor := 0
	for {
		tr := load()
		n := len(tr.Records)
		if n != lastCount {
			lastCount = n
			stableFor = 0
			if *traceID == "" || !tr.FilterTrace(*traceID).Empty() {
				if err := render(tr); err != nil {
					fatal(err)
				}
			}
		} else {
			stableFor++
		}
		if *traceID != "" && stableFor >= 2 && !tr.FilterTrace(*traceID).Empty() {
			return
		}
		time.Sleep(*interval)
	}
}

// runObsProf summarizes a runtime-metrics timeline (the JSONL the
// -sample flag records) and optionally gates it: -gate fails on the
// timeline's own leak verdicts, -diff fails on budget regressions
// against a baseline timeline.
func runObsProf(args []string) {
	fs := newFlagSet("obs prof")
	windows := fs.Int("windows", 4, "analysis windows for leak detection")
	asJSON := fs.Bool("json", false, "emit the report/diff as JSON instead of text")
	gate := fs.Bool("gate", false, "exit 1 when the timeline shows a goroutine leak or unbounded heap growth")
	baseline := fs.String("diff", "", "baseline timeline `file`; exit 1 on budget regression against it")
	relTol := fs.Float64("rel-tol", 0.25, "relative headroom for -diff budgets")
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		fmt.Fprintln(os.Stderr, "knowtrans: obs prof needs a runtime timeline file")
		obsUsage()
		os.Exit(2)
	}
	path := args[0]
	parseOrExit(fs, args[1:])

	load := func(p string) *analyze.ProfReport {
		rows, err := analyze.LoadTimeline(p)
		if err != nil {
			// Same contract as obs trace: an unreadable input is an operator
			// mistake — explain, show usage, exit 2.
			fmt.Fprintf(os.Stderr, "knowtrans: %v\n", err)
			obsUsage()
			runObsCleanup()
			os.Exit(2)
		}
		return analyze.NewProfReport(rows, *windows)
	}

	rep := load(path)
	if *baseline != "" {
		base := load(*baseline)
		bud := analyze.DefaultProfBudget()
		bud.RelTol = *relTol
		d := analyze.DiffProf(base, rep, bud)
		var err error
		if *asJSON {
			err = d.WriteJSON(os.Stdout)
		} else {
			fmt.Printf("prof diff %s -> %s\n", *baseline, path)
			err = d.WriteText(os.Stdout)
		}
		if err != nil {
			fatal(err)
		}
		if d.HasRegressions() {
			os.Exit(1)
		}
		return
	}

	var err error
	if *asJSON {
		err = rep.WriteJSON(os.Stdout)
	} else {
		err = rep.WriteText(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
	if *gate && rep.Unhealthy() {
		os.Exit(1)
	}
}

func runObsDiff(args []string) {
	fs := newFlagSet("obs diff")
	relTol := fs.Float64("rel-tol", 0, "relative metric change treated as noise (0 = any change counts)")
	wallTol := fs.Float64("wall-tol", 0, "gate wall time when relative increase exceeds this (0 = report only)")
	strict := fs.Bool("strict", false, "any change (including improvements and added metrics) is a regression — the determinism gate")
	verbose := fs.Bool("verbose", false, "also list unchanged metrics and wall-time deltas")
	asJSON := fs.Bool("json", false, "emit the diff as JSON instead of text")
	if len(args) < 2 || strings.HasPrefix(args[0], "-") || strings.HasPrefix(args[1], "-") {
		fmt.Fprintln(os.Stderr, "knowtrans: obs diff needs two BENCH_run.json files")
		obsUsage()
		os.Exit(2)
	}
	pathA, pathB := args[0], args[1]
	parseOrExit(fs, args[2:])
	a, err := analyze.LoadBenchRun(pathA)
	if err != nil {
		fatal(err)
	}
	b, err := analyze.LoadBenchRun(pathB)
	if err != nil {
		fatal(err)
	}
	d := analyze.DiffBenchRuns(a, b, analyze.DiffOptions{
		RelTol:  *relTol,
		WallTol: *wallTol,
		Strict:  *strict,
	})
	if *asJSON {
		err = d.WriteJSON(os.Stdout)
	} else {
		fmt.Printf("diff %s -> %s\n", pathA, pathB)
		err = d.WriteText(os.Stdout, *verbose)
	}
	if err != nil {
		fatal(err)
	}
	if d.HasRegressions() {
		os.Exit(1)
	}
}
