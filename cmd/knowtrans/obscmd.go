package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/obs/analyze"
)

// The obs subcommand family is the consumption side of the -trace/-metrics
// flags: offline analysis of the JSONL span traces and BENCH_run.json
// documents an instrumented run leaves behind.
//
//	knowtrans obs trace t.jsonl [-top 10] [-json]
//	knowtrans obs diff A.json B.json [-rel-tol F] [-wall-tol F] [-strict] [-verbose] [-json]
func runObs(args []string) {
	if len(args) == 0 {
		obsUsage()
		os.Exit(2)
	}
	switch args[0] {
	case "trace":
		runObsTrace(args[1:])
	case "diff":
		runObsDiff(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "knowtrans: unknown obs subcommand %q\n", args[0])
		obsUsage()
		os.Exit(2)
	}
}

func obsUsage() {
	fmt.Fprintln(os.Stderr, `usage:
  knowtrans obs trace FILE.jsonl [-top N] [-json]
      analyze a span trace: per-stage aggregates (count, total/self time,
      p50/p95), the critical path, the slowest spans, and event counts
  knowtrans obs diff A.json B.json [-rel-tol F] [-wall-tol F] [-strict] [-verbose] [-json]
      compare two BENCH_run.json documents metric-by-metric; exits 1 when
      any metric regressed beyond the relative tolerance`)
}

func runObsTrace(args []string) {
	fs := newFlagSet("obs trace")
	top := fs.Int("top", 10, "slowest-spans entries to report")
	asJSON := fs.Bool("json", false, "emit the report as JSON instead of text")
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		fmt.Fprintln(os.Stderr, "knowtrans: obs trace needs a trace file")
		obsUsage()
		os.Exit(2)
	}
	path := args[0]
	parseOrExit(fs, args[1:])
	tr, err := analyze.LoadFile(path)
	if err != nil {
		fatal(err)
	}
	rep := analyze.NewReport(tr, *top)
	if *asJSON {
		err = rep.WriteJSON(os.Stdout)
	} else {
		err = rep.WriteText(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
}

func runObsDiff(args []string) {
	fs := newFlagSet("obs diff")
	relTol := fs.Float64("rel-tol", 0, "relative metric change treated as noise (0 = any change counts)")
	wallTol := fs.Float64("wall-tol", 0, "gate wall time when relative increase exceeds this (0 = report only)")
	strict := fs.Bool("strict", false, "any change (including improvements and added metrics) is a regression — the determinism gate")
	verbose := fs.Bool("verbose", false, "also list unchanged metrics and wall-time deltas")
	asJSON := fs.Bool("json", false, "emit the diff as JSON instead of text")
	if len(args) < 2 || strings.HasPrefix(args[0], "-") || strings.HasPrefix(args[1], "-") {
		fmt.Fprintln(os.Stderr, "knowtrans: obs diff needs two BENCH_run.json files")
		obsUsage()
		os.Exit(2)
	}
	pathA, pathB := args[0], args[1]
	parseOrExit(fs, args[2:])
	a, err := analyze.LoadBenchRun(pathA)
	if err != nil {
		fatal(err)
	}
	b, err := analyze.LoadBenchRun(pathB)
	if err != nil {
		fatal(err)
	}
	d := analyze.DiffBenchRuns(a, b, analyze.DiffOptions{
		RelTol:  *relTol,
		WallTol: *wallTol,
		Strict:  *strict,
	})
	if *asJSON {
		err = d.WriteJSON(os.Stdout)
	} else {
		fmt.Printf("diff %s -> %s\n", pathA, pathB)
		err = d.WriteText(os.Stdout, *verbose)
	}
	if err != nil {
		fatal(err)
	}
	if d.HasRegressions() {
		os.Exit(1)
	}
}
