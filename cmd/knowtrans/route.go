package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/serve"
)

// runRoute starts the sharded serving tier: a consistent-hash router over
// a fleet of `knowtrans serve` backends, exposing the exact same HTTP API
// a single backend does (the router implements serve.Resolver). With
// -selftest it instead spawns its own 3-backend fleet as subprocesses,
// drives a concurrent seeded load through router + fleet, SIGKILLs one
// backend mid-load, and requires zero failed requests, byte-identical
// answers vs the direct path, recorded hedges/failovers, ejection of the
// dead backend, and a clean SIGTERM drain of the survivors. Results land
// in BENCH_cluster.json.
func runRoute(args []string) {
	fs := newFlagSet("route")
	addr := fs.String("addr", "localhost:8090", "router listen address")
	backendList := fs.String("backends", "", "comma-separated backend base URLs, e.g. http://10.0.0.7:8080,http://10.0.0.8:8080")
	replication := fs.Int("replication", 2, "distinct backends owning each key (primary + replicas)")
	vnodes := fs.Int("vnodes", 64, "virtual nodes per backend on the hash ring")
	probeInterval := fs.Duration("probe-interval", 500*time.Millisecond, "base /readyz probe period per backend")
	probeTimeout := fs.Duration("probe-timeout", 2*time.Second, "one health probe's deadline")
	failThreshold := fs.Int("fail-threshold", 2, "consecutive probe failures that eject a backend")
	hedgeDelay := fs.Duration("hedge-delay", 0, "fixed backup-request delay (0 = p95-derived, negative disables hedging)")
	hedgeMin := fs.Duration("hedge-min", time.Millisecond, "lower clamp for the p95-derived hedge delay")
	hedgeMax := fs.Duration("hedge-max", time.Second, "upper clamp for the p95-derived hedge delay")
	retryBudget := fs.Int("retry-budget", 2, "extra attempts (hedges + failovers) per request beyond the first")
	attemptTimeout := fs.Duration("attempt-timeout", 60*time.Second, "one backend HTTP call's deadline")
	reqTimeout := fs.Duration("timeout", 120*time.Second, "per-request deadline at the router")
	maxInflight := fs.Int("max-inflight", 0, "shed predicts with 429 + Retry-After past this many in flight (0 = unlimited)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second,
		"how long SIGTERM waits for in-flight requests before the router exits anyway")
	seed := fs.Int64("seed", 1, "seed for probe jitter (and the selftest's load)")
	jobsDir := fs.String("jobs-dir", "",
		"mount the bulk-job API (POST/GET /v1/jobs) with checkpoint logs in this `dir` (empty disables)")
	maxJobs := fs.Int("max-jobs", 4, "with -jobs-dir: concurrent bulk jobs before 429")
	selftest := fs.Bool("selftest", false, "run the fault-tolerance gate instead of routing forever")
	stBackends := fs.Int("selftest-backends", 3, "selftest: backends to spawn")
	stRequests := fs.Int("selftest-requests", 256, "selftest: predict requests per load phase")
	stConcurrency := fs.Int("selftest-concurrency", 64, "selftest: concurrent in-flight requests")
	stAdapters := fs.Int("selftest-adapters", 4, "selftest: distinct adapters to load")
	scale := fs.Float64("scale", 0.15, "selftest: dataset scale for the spawned backends")
	faultSpec := fs.String("faults", "",
		"selftest: oracle-fault `spec` rate=R,seed=S[,kinds=a+b] forwarded to the spawned backends")
	benchPath := fs.String("bench", "BENCH_cluster.json", "selftest: write the perf record to `file` (empty to disable)")
	of := addObsFlags(fs)
	parseOrExit(fs, args)

	rec, finish, err := of.setup()
	if err != nil {
		fatal(err)
	}
	if rec == nil || rec.Metrics == nil {
		var tracer *obs.Tracer
		if rec != nil {
			tracer = rec.Tracer
		}
		rec = obs.NewRecorder(obs.NewRegistry(), tracer)
	}
	rec.SeedTraceIDs(*seed)

	copts := cluster.Options{
		Replication:    *replication,
		VNodes:         *vnodes,
		ProbeInterval:  *probeInterval,
		ProbeTimeout:   *probeTimeout,
		FailThreshold:  *failThreshold,
		HedgeDelay:     *hedgeDelay,
		HedgeMin:       *hedgeMin,
		HedgeMax:       *hedgeMax,
		RetryBudget:    *retryBudget,
		AttemptTimeout: *attemptTimeout,
		Seed:           *seed,
		Rec:            rec,
	}

	if *selftest {
		if err := runRouteSelftest(routeSelftestConfig{
			backends:    *stBackends,
			requests:    *stRequests,
			concurrency: *stConcurrency,
			adapters:    *stAdapters,
			scale:       *scale,
			seed:        *seed,
			faults:      *faultSpec,
			benchPath:   *benchPath,
			copts:       copts,
			reqTimeout:  *reqTimeout,
		}); err != nil {
			if ferr := finish(); ferr != nil {
				fmt.Fprintf(os.Stderr, "knowtrans: observability shutdown: %v\n", ferr)
			}
			fatal(err)
		}
		if err := finish(); err != nil {
			fatal(err)
		}
		return
	}

	copts.Backends = splitBackends(*backendList)
	if len(copts.Backends) == 0 {
		fmt.Fprintln(os.Stderr, "knowtrans: route needs -backends (or -selftest)")
		usage()
		os.Exit(2)
	}
	r, err := cluster.New(copts)
	if err != nil {
		fatal(err)
	}
	defer r.Close()
	srv := serve.NewServer(r, serve.Options{
		RequestTimeout: *reqTimeout,
		MaxInflight:    *maxInflight,
		Rec:            rec,
		Sampler:        of.sampler,
		Profiles:       of.trigger,
	})
	if *jobsDir != "" {
		jm := jobs.NewManager(r, jobs.ManagerOptions{
			CheckpointDir: *jobsDir,
			MaxActive:     *maxJobs,
			Rec:           rec,
		})
		jobs.NewAPI(jm).Register(srv)
	}
	err = serveWithDrain(*addr, srv, *drainTimeout, func(bound net.Addr) {
		fmt.Printf("knowtrans route on http://%s (%d backends, replication=%d, hedge=%s)\n",
			bound, len(copts.Backends), copts.Replication, hedgeDesc(*hedgeDelay))
		for _, b := range copts.Backends {
			fmt.Printf("  backend %s\n", b)
		}
	})
	if err != nil {
		fatal(err)
	}
	if err := finish(); err != nil {
		fatal(err)
	}
}

func splitBackends(s string) []string {
	var out []string
	for _, b := range strings.Split(s, ",") {
		if b = strings.TrimSpace(b); b != "" {
			out = append(out, b)
		}
	}
	return out
}

func hedgeDesc(d time.Duration) string {
	switch {
	case d < 0:
		return "off"
	case d == 0:
		return "p95-derived"
	default:
		return d.String()
	}
}

type routeSelftestConfig struct {
	backends    int
	requests    int
	concurrency int
	adapters    int
	scale       float64
	seed        int64
	faults      string
	benchPath   string
	copts       cluster.Options
	reqTimeout  time.Duration
}

// BenchCluster is the BENCH_cluster.json document (schema 1). The "report"
// section holds only the stable numerics `obs diff` gates against the
// committed baseline — request/failure counts and the healthy vs degraded
// latency profile. Run-volatile evidence (hedge and failover counts, the
// killed backend, per-backend QPS) lives in "chaos" and "fleet", which the
// diff loader skips.
type BenchCluster struct {
	SchemaVersion int                 `json:"schema_version"`
	GeneratedAt   string              `json:"generated_at"`
	Seed          int64               `json:"seed"`
	Scale         float64             `json:"scale"`
	Faults        string              `json:"faults,omitempty"`
	Backends      int                 `json:"backends"`
	Replication   int                 `json:"replication"`
	HedgeDelayS   float64             `json:"hedge_delay_s"`
	Keys          []string            `json:"keys"`
	Report        *BenchClusterReport `json:"report"`
	Chaos         *BenchClusterChaos  `json:"chaos"`
	Fleet         []BenchClusterNode  `json:"fleet"`
}

// BenchClusterReport is the gated surface: totals across both load phases
// plus each phase's latency profile. "healthy" is the full-fleet phase,
// "degraded" the phase during which one backend was SIGKILLed mid-load.
type BenchClusterReport struct {
	Requests        int     `json:"requests"`
	Non2xx          int     `json:"non_2xx"`
	Mismatches      int     `json:"mismatches"`
	TraceEchoMisses int     `json:"trace_echo_misses"`
	WallS           float64 `json:"wall_s"`
	HealthyP50us    float64 `json:"healthy_p50_us"`
	HealthyP95us    float64 `json:"healthy_p95_us"`
	HealthyP99us    float64 `json:"healthy_p99_us"`
	HealthyRPS      float64 `json:"healthy_rps"`
	DegradedP50us   float64 `json:"degraded_p50_us"`
	DegradedP95us   float64 `json:"degraded_p95_us"`
	DegradedP99us   float64 `json:"degraded_p99_us"`
	DegradedRPS     float64 `json:"degraded_rps"`
}

// BenchClusterChaos is the fault-tolerance evidence: what the router did
// while the fleet degraded.
type BenchClusterChaos struct {
	Hedges          int64   `json:"hedges"`
	HedgeRate       float64 `json:"hedge_rate"`
	Failovers       int64   `json:"failovers"`
	Ejections       int64   `json:"ejections"`
	Rejoins         int64   `json:"rejoins"`
	KilledBackend   string  `json:"killed_backend"`
	KilledAtRequest int     `json:"killed_at_request"`
	RebalancedKeys  int     `json:"rebalanced_keys"`
}

// BenchClusterNode is one backend's share of the load.
type BenchClusterNode struct {
	URL      string  `json:"url"`
	Requests int64   `json:"requests"`
	Failures int64   `json:"failures"`
	QPS      float64 `json:"qps"`
	Healthy  bool    `json:"healthy_at_end"`
}

// backendProc is one spawned `knowtrans serve` subprocess.
type backendProc struct {
	cmd *exec.Cmd
	url string
}

// spawnBackend execs this binary's own serve subcommand on an ephemeral
// port and parses the announced bound address. Each backend gets the same
// (seed, scale, faults), so the fleet is deterministic: any replica
// answers any key byte-identically — the property that makes hedged and
// failed-over answers indistinguishable from primary ones. Shared by the
// route and job selftests.
func spawnBackend(scale float64, seed int64, maxAdapters int, faultSpec string) (*backendProc, error) {
	exe, err := os.Executable()
	if err != nil {
		exe = os.Args[0]
	}
	args := []string{
		"serve", "-addr", "127.0.0.1:0",
		"-scale", fmt.Sprintf("%g", scale),
		"-seed", fmt.Sprintf("%d", seed),
		"-max-adapters", fmt.Sprintf("%d", maxAdapters),
		"-access-log", "",
	}
	if faultSpec != "" {
		args = append(args, "-faults", faultSpec)
	}
	cmd := exec.Command(exe, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	urlc := make(chan string, 1)
	go func() {
		// Parse the announcement line, then keep draining stdout so the
		// child never blocks on a full pipe.
		buf := make([]byte, 4096)
		var acc []byte
		for {
			n, err := stdout.Read(buf)
			if n > 0 {
				acc = append(acc, buf[:n]...)
				if u := parseServeURL(acc); u != "" {
					select {
					case urlc <- u:
					default:
					}
					acc = nil
				}
			}
			if err != nil {
				close(urlc)
				return
			}
		}
	}()
	select {
	case u, ok := <-urlc:
		if !ok || u == "" {
			cmd.Process.Kill()
			cmd.Wait()
			return nil, fmt.Errorf("route: backend exited before announcing its address")
		}
		return &backendProc{cmd: cmd, url: u}, nil
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("route: backend did not announce its address within 30s")
	}
}

// parseServeURL extracts the bound base URL from the serve banner
// ("knowtrans serve on http://127.0.0.1:PORT (...)").
func parseServeURL(out []byte) string {
	s := string(out)
	i := strings.Index(s, "serve on http://")
	if i < 0 {
		return ""
	}
	s = s[i+len("serve on "):]
	if j := strings.IndexAny(s, " \n"); j >= 0 {
		s = s[:j]
	} else {
		return "" // line not complete yet
	}
	return s
}

// waitReady polls a backend's /readyz until it answers 200 or the deadline
// passes.
func waitReady(url string, deadline time.Duration) error {
	end := time.Now().Add(deadline)
	for {
		resp, err := http.Get(url + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(end) {
			if err != nil {
				return fmt.Errorf("route: backend %s never became ready: %v", url, err)
			}
			return fmt.Errorf("route: backend %s never became ready", url)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// runRouteSelftest is the acceptance gate behind `knowtrans route -selftest`:
// spawn a fleet, route a concurrent load through it, murder one backend
// mid-load, and require the client to never notice.
func runRouteSelftest(cfg routeSelftestConfig) error {
	if cfg.backends < 2 {
		return fmt.Errorf("route: -selftest-backends must be >= 2 (replication needs somewhere to go)")
	}

	// Reference answers come from a direct zoo at the same (seed, scale,
	// faults) — the oracle the routed answers must match byte-for-byte no
	// matter which replica served them.
	ref := eval.NewZoo(cfg.seed, cfg.scale)
	keys := ref.DownstreamKeys()
	if cfg.adapters < 1 || cfg.adapters > len(keys) {
		return fmt.Errorf("route: -selftest-adapters must be in [1,%d]", len(keys))
	}
	keys = keys[:cfg.adapters]
	fmt.Printf("selftest: building %d reference adapters (direct path)...\n", len(keys))
	type refProbe struct {
		in   *data.Instance
		want string
	}
	probes := map[string]refProbe{}
	items := make([]serve.LoadItem, 0, cfg.requests)
	perKey := (cfg.requests + len(keys) - 1) / len(keys)
	for _, key := range keys {
		ad, err := ref.TransferDataset(context.Background(), key, eval.Size7B)
		if err != nil {
			return fmt.Errorf("route: reference transfer %s: %w", key, err)
		}
		b, _ := ref.FindDownstream(key)
		for i := 0; i < perKey && len(items) < cfg.requests; i++ {
			in := b.DS.Test[i%len(b.DS.Test)]
			want := ad.Predict(context.Background(), in)
			items = append(items, serve.LoadItem{Key: key, In: serve.WireFrom(in), Want: want})
			if _, ok := probes[key]; !ok {
				probes[key] = refProbe{in: in, want: want}
			}
		}
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })

	// Spawn the fleet.
	fmt.Printf("selftest: spawning %d backends (scale=%.2f seed=%d faults=%q)...\n",
		cfg.backends, cfg.scale, cfg.seed, cfg.faults)
	procs := make([]*backendProc, 0, cfg.backends)
	defer func() {
		for _, p := range procs {
			if p.cmd.ProcessState == nil {
				p.cmd.Process.Kill()
				p.cmd.Wait()
			}
		}
	}()
	urls := make([]string, 0, cfg.backends)
	for i := 0; i < cfg.backends; i++ {
		p, err := spawnBackend(cfg.scale, cfg.seed, cfg.adapters+2, cfg.faults)
		if err != nil {
			return err
		}
		procs = append(procs, p)
		urls = append(urls, p.url)
	}
	for _, u := range urls {
		if err := waitReady(u, 30*time.Second); err != nil {
			return err
		}
	}
	fmt.Printf("selftest: fleet up: %s\n", strings.Join(urls, " "))

	// Two router replicas front the same fleet, one per load phase, each
	// pinning one fault mechanism so the gate can require hard evidence of
	// both. The hedging replica runs a fixed 2ms hedge delay: under this
	// load every request outlives it, so tail hedging provably fires. The
	// failover replica runs with hedging disabled: when the victim dies,
	// the ONLY way its requests can still succeed is the error-triggered
	// failover branch — no timer race can mask it. (With hedging on, the
	// backup is already in flight before the primary's connection error
	// lands, so the failover counter never moves — observed, not
	// hypothesized.) Both probe independently; both must eject the corpse.
	copts := cfg.copts
	copts.Backends = urls
	copts.ProbeInterval = 100 * time.Millisecond
	copts.ProbeTimeout = time.Second
	if copts.HedgeDelay == 0 {
		copts.HedgeDelay = 2 * time.Millisecond
	}
	rHedge, err := cluster.New(copts)
	if err != nil {
		return err
	}
	defer rHedge.Close()
	fopts := copts
	fopts.HedgeDelay = -1 // failover replica: error-triggered retries only
	rFail, err := cluster.New(fopts)
	if err != nil {
		return err
	}
	defer rFail.Close()

	frontRouter := func(r *cluster.Router) (string, func(), error) {
		srv := serve.NewServer(r, serve.Options{RequestTimeout: cfg.reqTimeout, Rec: copts.Rec})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", nil, err
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln) //nolint:errcheck
		return "http://" + ln.Addr().String(), func() { hs.Close() }, nil
	}
	hedgeURL, closeHedge, err := frontRouter(rHedge)
	if err != nil {
		return err
	}
	defer closeHedge()
	failURL, closeFail, err := frontRouter(rFail)
	if err != nil {
		return err
	}
	defer closeFail()

	// Pre-warm every key through the router: Warm fans out to every owner,
	// so replicas are hot before the first hedge or failover needs them.
	fmt.Printf("selftest: pre-warming %d keys across the fleet...\n", len(keys))
	for _, key := range keys {
		if _, err := rHedge.Warm(context.Background(), key); err != nil {
			return fmt.Errorf("route: warm %s: %w", key, err)
		}
	}

	// Phase 1: full fleet, hedging router.
	fmt.Printf("selftest: phase 1 — %d requests, %d concurrent, fleet healthy, hedge delay %s\n",
		len(items), cfg.concurrency, copts.HedgeDelay)
	p1, err := serve.RunLoad(context.Background(), hedgeURL, items, serve.LoadOptions{
		Concurrency: cfg.concurrency,
		TraceSeed:   cfg.seed,
	})
	if err != nil {
		return fmt.Errorf("route: phase-1 load: %w", err)
	}

	// Phase 2: same load through the failover router, and when a quarter
	// of it has completed, SIGKILL the primary owner of the first key — no
	// drain, no goodbye, the way real backends die.
	victim := rFail.Owners(keys[0])[0]
	var victimProc *backendProc
	for _, p := range procs {
		if p.url == victim {
			victimProc = p
		}
	}
	killAt := len(items) / 4
	fmt.Printf("selftest: phase 2 — same load, hedging off, SIGKILL %s after %d requests\n", victim, killAt)
	p2, err := serve.RunLoad(context.Background(), failURL, items, serve.LoadOptions{
		Concurrency: cfg.concurrency,
		TraceSeed:   cfg.seed + 1,
		AtCount:     killAt,
		OnCount: func() {
			victimProc.cmd.Process.Kill()
		},
	})
	if err != nil {
		return fmt.Errorf("route: phase-2 load: %w", err)
	}
	victimProc.cmd.Wait()

	// The probe loops must notice the corpse: poll until both routers have
	// ejected the victim (100ms probes, 2-strike threshold — well under a
	// second).
	deadline := time.Now().Add(10 * time.Second)
	for {
		ejected := true
		for _, r := range []*cluster.Router{rHedge, rFail} {
			st := r.Stats()
			if st.Ejections < 1 {
				ejected = false
			}
			for _, b := range st.Backends {
				if b.URL == victim && b.Healthy {
					ejected = false
				}
			}
		}
		if ejected {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("route: victim %s was never ejected: hedge=%+v fail=%+v",
				victim, rHedge.Stats(), rFail.Stats())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Rebalance: every key the victim owned must now be served by its
	// replica — same answer, no error, straight through the router.
	rebalanced := 0
	for _, key := range keys {
		owned := false
		for _, u := range rFail.Owners(key) {
			if u == victim {
				owned = true
			}
		}
		if !owned {
			continue
		}
		pr := probes[key]
		ans, _, err := rFail.Predict(context.Background(), key, pr.in)
		if err != nil {
			return fmt.Errorf("route: post-ejection predict %s: %w", key, err)
		}
		if ans != pr.want {
			return fmt.Errorf("route: post-ejection predict %s = %q, want %q", key, ans, pr.want)
		}
		rebalanced++
	}

	// Survivors must drain clean on SIGTERM: readiness flips, in-flight
	// work finishes, exit status 0 — the graceful half of membership.
	for _, p := range procs {
		if p == victimProc {
			continue
		}
		if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			return fmt.Errorf("route: SIGTERM %s: %w", p.url, err)
		}
	}
	for _, p := range procs {
		if p == victimProc {
			continue
		}
		done := make(chan error, 1)
		go func(p *backendProc) { done <- p.cmd.Wait() }(p)
		select {
		case err := <-done:
			if err != nil {
				return fmt.Errorf("route: backend %s did not drain clean: %v", p.url, err)
			}
		case <-time.After(15 * time.Second):
			return fmt.Errorf("route: backend %s still running 15s after SIGTERM", p.url)
		}
	}

	stHedge, stFail := rHedge.Stats(), rFail.Stats()
	wall := p1.WallS + p2.WallS
	report := &BenchClusterReport{
		Requests:        p1.Requests + p2.Requests,
		Non2xx:          p1.Non2xx + p2.Non2xx,
		Mismatches:      p1.Mismatches + p2.Mismatches,
		TraceEchoMisses: p1.TraceEchoMisses + p2.TraceEchoMisses,
		WallS:           wall,
		HealthyP50us:    p1.P50us,
		HealthyP95us:    p1.P95us,
		HealthyP99us:    p1.P99us,
		HealthyRPS:      p1.RPS,
		DegradedP50us:   p2.P50us,
		DegradedP95us:   p2.P95us,
		DegradedP99us:   p2.P99us,
		DegradedRPS:     p2.RPS,
	}
	chaos := &BenchClusterChaos{
		Hedges:          stHedge.Hedges,
		Failovers:       stFail.Failovers,
		Ejections:       stFail.Ejections,
		Rejoins:         stFail.Rejoins,
		KilledBackend:   victim,
		KilledAtRequest: killAt,
		RebalancedKeys:  rebalanced,
	}
	if stHedge.Requests > 0 {
		chaos.HedgeRate = float64(stHedge.Hedges) / float64(stHedge.Requests)
	}
	// Per-backend load is the sum across both router replicas — the fleet
	// served both phases.
	fleet := make([]BenchClusterNode, 0, len(stHedge.Backends))
	for i, b := range stHedge.Backends {
		fb := stFail.Backends[i]
		node := BenchClusterNode{
			URL:      b.URL,
			Requests: b.Requests + fb.Requests,
			Failures: b.Failures + fb.Failures,
			Healthy:  b.Healthy && fb.Healthy,
		}
		if wall > 0 {
			node.QPS = float64(node.Requests) / wall
		}
		fleet = append(fleet, node)
	}

	fmt.Printf("selftest: healthy:  %d requests, %.0f req/s, p50 %.1fms p95 %.1fms p99 %.1fms, %d non-2xx\n",
		p1.Requests, p1.RPS, p1.P50us/1e3, p1.P95us/1e3, p1.P99us/1e3, p1.Non2xx)
	fmt.Printf("selftest: degraded: %d requests, %.0f req/s, p50 %.1fms p95 %.1fms p99 %.1fms, %d non-2xx\n",
		p2.Requests, p2.RPS, p2.P50us/1e3, p2.P95us/1e3, p2.P99us/1e3, p2.Non2xx)
	fmt.Printf("selftest: chaos: %d hedges (%.1f%% of %d hedged-phase requests), %d failovers, %d ejections, rebalanced %d keys off %s\n",
		stHedge.Hedges, chaos.HedgeRate*100, stHedge.Requests, stFail.Failovers, stFail.Ejections, rebalanced, victim)
	for _, n := range fleet {
		fmt.Printf("selftest: backend %-28s requests=%d failures=%d qps=%.0f healthy=%v\n",
			n.URL, n.Requests, n.Failures, n.QPS, n.Healthy)
	}

	if cfg.benchPath != "" {
		doc := &BenchCluster{
			SchemaVersion: 1,
			GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
			Seed:          cfg.seed,
			Scale:         cfg.scale,
			Faults:        cfg.faults,
			Backends:      cfg.backends,
			Replication:   copts.Replication,
			HedgeDelayS:   copts.HedgeDelay.Seconds(),
			Keys:          keys,
			Report:        report,
			Chaos:         chaos,
			Fleet:         fleet,
		}
		blob, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.benchPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.benchPath)
	}

	// Verdicts. A client of the routed tier must never see a failure or a
	// divergent answer — not even while a backend is being murdered under
	// it — and the fault machinery must have demonstrably fired.
	if report.Mismatches > 0 {
		return fmt.Errorf("route: %d routed answers diverged from the direct path (first: %s)",
			report.Mismatches, firstError(p1, p2))
	}
	if report.Non2xx > 0 {
		return fmt.Errorf("route: %d failed requests through the router (first: %s)",
			report.Non2xx, firstError(p1, p2))
	}
	if report.TraceEchoMisses > 0 {
		return fmt.Errorf("route: %d responses did not echo the client's traceparent", report.TraceEchoMisses)
	}
	if stHedge.Hedges == 0 {
		return fmt.Errorf("route: no hedges fired (delay %s) — the hedging path went unexercised", copts.HedgeDelay)
	}
	if stFail.Failovers == 0 {
		return fmt.Errorf("route: no failovers recorded despite a SIGKILLed backend")
	}
	if stFail.Ejections == 0 {
		return fmt.Errorf("route: the killed backend was never ejected")
	}
	if rebalanced == 0 {
		return fmt.Errorf("route: victim %s owned no keys — rebalance went unexercised", victim)
	}
	fmt.Println("selftest: PASS")
	return nil
}

func firstError(reports ...*serve.LoadReport) string {
	for _, r := range reports {
		if r.FirstError != "" {
			return r.FirstError
		}
	}
	return "<none recorded>"
}
