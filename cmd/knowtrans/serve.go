package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/faults"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/obs/profile"
	"repro/internal/serve"
)

// runServe starts the inference service: an adapter registry over the
// zoo's TransferDataset, fronted by the HTTP API of internal/serve. With
// -selftest it instead binds an ephemeral port, drives a seeded load
// through the full HTTP path with the configured concurrency, verifies
// byte-identity against the direct Adapted.Predict path, writes
// BENCH_serve.json, and exits non-zero on any failed check.
func runServe(args []string) {
	fs := newFlagSet("serve")
	addr := fs.String("addr", "localhost:8080", "listen address (selftest overrides with an ephemeral port)")
	scale := fs.Float64("scale", 0.15, "dataset scale relative to paper sizes (0,1]")
	seed := fs.Int64("seed", 1, "master random seed (adapters are deterministic in it)")
	maxAdapters := fs.Int("max-adapters", 8, "resident-adapter bound (LRU eviction beyond it)")
	maxBatch := fs.Int("max-batch", 8, "per-adapter micro-batch cap (1 disables batching)")
	maxWait := fs.Duration("batch-wait", 2*time.Millisecond, "how long a non-full batch lingers for stragglers")
	serialPredict := fs.Bool("serial-predict", false,
		"force per-request Predict even for batch-capable adapters (the serial oracle path the batched path is gated against)")
	reqTimeout := fs.Duration("timeout", 60*time.Second, "per-request deadline")
	transferTimeout := fs.Duration("transfer-timeout", 0, "cold-start Transfer bound (0 = unbounded)")
	maxInflight := fs.Int("max-inflight", 0, "shed predicts with 429 + Retry-After past this many in flight (0 = unlimited)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second,
		"how long SIGTERM waits for in-flight requests before the process exits anyway")
	faultSpec := fs.String("faults", "",
		"inject oracle faults during Transfers, `spec` rate=R,seed=S[,kinds=a+b][,latency=D]")
	accessLog := fs.String("access-log", "-",
		"write one JSON access-log line per request to `file` (\"-\" = stderr, empty disables)")
	slowReq := fs.Duration("slow", time.Second, "access-log latency threshold for slow=true + Warn level")
	jobsDir := fs.String("jobs-dir", "",
		"mount the bulk-job API (POST/GET /v1/jobs) with checkpoint logs in this `dir` (empty disables)")
	maxJobs := fs.Int("max-jobs", 4, "with -jobs-dir: concurrent bulk jobs before 429")
	selftest := fs.Bool("selftest", false, "run the load-generator gate instead of serving forever")
	stRequests := fs.Int("selftest-requests", 256, "selftest: total predict requests")
	stConcurrency := fs.Int("selftest-concurrency", 64, "selftest: concurrent in-flight requests")
	stAdapters := fs.Int("selftest-adapters", 4, "selftest: distinct adapters to load")
	stWarm := fs.Bool("selftest-warm", false,
		"selftest: pre-warm all adapters before the timed load, so throughput and bytes/op measure serving cost, not cold starts")
	benchPath := fs.String("bench", "BENCH_serve.json", "selftest: write the perf record to `file` (empty to disable)")
	of := addObsFlags(fs)
	parseOrExit(fs, args)

	rec, finish, err := of.setup()
	if err != nil {
		fatal(err)
	}
	// The service always carries a metrics registry — the /metrics endpoint,
	// the registry counters, and the selftest's batch evidence need one even
	// when no obs flag asked for files.
	if rec == nil || rec.Metrics == nil {
		var tracer *obs.Tracer
		if rec != nil {
			tracer = rec.Tracer
		}
		rec = obs.NewRecorder(obs.NewRegistry(), tracer)
	}
	// Seeded runs mint reproducible trace IDs, so the selftest's per-index
	// client traces and the server's span records line up run over run.
	rec.SeedTraceIDs(*seed)

	var logger *slog.Logger
	switch *accessLog {
	case "":
	case "-":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(fmt.Errorf("open access log: %w", err))
		}
		defer f.Close()
		logger = slog.New(slog.NewJSONHandler(f, nil))
	}

	z := eval.NewZoo(*seed, *scale)
	z.Rec = rec
	if *faultSpec != "" {
		fcfg, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			fatal(err)
		}
		z.Faults = &fcfg
	}

	opts := serve.Options{
		MaxAdapters:     *maxAdapters,
		MaxBatch:        *maxBatch,
		MaxWait:         *maxWait,
		SerialPredict:   *serialPredict,
		RequestTimeout:  *reqTimeout,
		TransferTimeout: *transferTimeout,
		MaxInflight:     *maxInflight,
		Rec:             rec,
		AccessLog:       logger,
		SlowRequest:     *slowReq,
		Sampler:         of.sampler,
		Profiles:        of.trigger,
	}
	reg := serve.NewRegistry(zooTransferer(z), opts)
	srv := serve.NewServer(reg, opts)
	if *jobsDir != "" {
		jm := jobs.NewManager(reg, jobs.ManagerOptions{
			CheckpointDir: *jobsDir,
			MaxActive:     *maxJobs,
			Rec:           rec,
		})
		jobs.NewAPI(jm).Register(srv)
	}

	if *selftest {
		if err := runServeSelftest(z, reg, srv, selftestConfig{
			requests:    *stRequests,
			concurrency: *stConcurrency,
			adapters:    *stAdapters,
			warm:        *stWarm,
			benchPath:   *benchPath,
			seed:        *seed,
			scale:       *scale,
			faults:      *faultSpec,
			opts:        opts,
		}); err != nil {
			if ferr := finish(); ferr != nil {
				fmt.Fprintf(os.Stderr, "knowtrans: observability shutdown: %v\n", ferr)
			}
			fatal(err)
		}
		if err := finish(); err != nil {
			fatal(err)
		}
		return
	}

	err = serveWithDrain(*addr, srv, *drainTimeout, func(bound net.Addr) {
		// The bound address is printed first and alone on its line: the
		// cluster selftest spawns backends on 127.0.0.1:0 and parses this
		// line for the kernel-assigned port.
		fmt.Printf("knowtrans serve on http://%s (scale=%.2f seed=%d max-adapters=%d max-batch=%d batch-wait=%s)\n",
			bound, *scale, *seed, *maxAdapters, *maxBatch, *maxWait)
		endpoints := "endpoints: POST /v1/predict  POST+GET /v1/adapters  GET /healthz /readyz /metrics /metrics.json"
		if *jobsDir != "" {
			endpoints += "  POST+GET /v1/jobs"
		}
		fmt.Println(endpoints)
		fmt.Printf("adapter keys: %d downstream datasets (GET /v1/adapters after a warm, or `knowtrans list`)\n",
			len(z.DownstreamKeys()))
	})
	if err != nil {
		fatal(err)
	}
	if err := finish(); err != nil {
		fatal(err)
	}
}

// serveWithDrain binds addr, announces the bound address, and serves srv
// until a fatal listener error or a shutdown signal. On SIGTERM/SIGINT the
// server drains instead of dying mid-request: /readyz flips to 503 so
// routers stop sending traffic, new predicts are shed, the listener
// closes, and in-flight requests get drainTimeout to finish. A nil return
// means a clean drain — the caller flushes telemetry and exits 0, which is
// what lets an operator (or orchestrator) restart a backend without
// failing a single request.
func serveWithDrain(addr string, srv *serve.Server, drainTimeout time.Duration, announce func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	announce(ln.Addr())
	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("knowtrans: %s — draining (in-flight requests get %s)\n", sig, drainTimeout)
		srv.StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		fmt.Println("knowtrans: drained clean")
		return nil
	}
}

// zooTransferer adapts eval.Zoo.TransferDataset to the registry's seam,
// mapping unknown datasets to the sentinel the HTTP layer turns into 404.
func zooTransferer(z *eval.Zoo) serve.Transferer {
	return func(ctx context.Context, key string) (serve.Adapter, error) {
		ad, err := z.TransferDataset(ctx, key, eval.Size7B)
		if err != nil {
			if errors.Is(err, eval.ErrUnknownDataset) {
				return nil, fmt.Errorf("%w: %v", serve.ErrUnknownKey, err)
			}
			return nil, err
		}
		return ad, nil
	}
}

type selftestConfig struct {
	requests    int
	concurrency int
	adapters    int
	warm        bool
	benchPath   string
	seed        int64
	scale       float64
	faults      string
	opts        serve.Options
}

// BenchServe is the BENCH_serve.json document: the load configuration, the
// latency/throughput report, and the registry's per-key evidence that cold
// starts coalesced. Schema 2 added trace-echo accounting and the
// sample-trace handle to the embedded LoadReport; schema 3 added the
// Resources section (allocation and GC cost of the load run) so `obs diff`
// can gate resource regressions alongside latency ones; schema 4 added the
// Batching section (batch counts, average size, and whether the run was
// pinned to the serial oracle path) so the check.sh perf gate can compare a
// batched run against its -serial-predict baseline.
type BenchServe struct {
	SchemaVersion int                  `json:"schema_version"`
	GeneratedAt   string               `json:"generated_at"`
	Seed          int64                `json:"seed"`
	Scale         float64              `json:"scale"`
	Faults        string               `json:"faults,omitempty"`
	Keys          []string             `json:"keys"`
	Warmed        bool                 `json:"warmed,omitempty"`
	MaxBatch      int                  `json:"max_batch"`
	MaxAdapters   int                  `json:"max_adapters"`
	BatchWaitS    float64              `json:"batch_wait_s"`
	Report        *serve.LoadReport    `json:"report"`
	Resources     *BenchServeResources `json:"resources,omitempty"`
	Batching      *BenchServeBatching  `json:"batching,omitempty"`
	Adapters      []serve.KeyStats     `json:"adapters"`
}

// BenchServeBatching is the selftest's batching evidence, read back from
// the service's own metrics after the load run: how many batches formed,
// how many were answered by the one-pass batched forward (equal to Batches
// on a healthy batched run, zero on a -serial-predict run), and the batch
// size distribution.
type BenchServeBatching struct {
	SerialPredict   bool    `json:"serial_predict"`
	Batches         int64   `json:"batches"`
	BatchedPredicts int64   `json:"batched_predicts"`
	AvgBatchSize    float64 `json:"avg_batch_size"`
	MaxBatchSize    float64 `json:"max_batch_size"`
}

// BenchServeResources is the selftest's resource accounting: runtime
// deltas measured across the load run (reference building excluded), with
// the per-op normalizations the perf sentinel gates.
type BenchServeResources struct {
	AllocBytesTotal   uint64  `json:"alloc_bytes_total"`
	AllocObjectsTotal uint64  `json:"alloc_objects_total"`
	BytesPerOp        float64 `json:"bytes_per_op"`
	AllocsPerOp       float64 `json:"allocs_per_op"`
	GCCycles          uint64  `json:"gc_cycles"`
	GCPauseTotalUS    float64 `json:"gc_pause_total_us"`
	GoroutinesEnd     int64   `json:"goroutines_end"`
	HeapLiveEndBytes  uint64  `json:"heap_live_end_bytes"`
}

// runServeSelftest is the acceptance gate behind `knowtrans serve -selftest`:
// it proves the service sustains the configured concurrency across several
// adapters with coalesced cold starts and answers byte-identical to the
// direct path.
func runServeSelftest(z *eval.Zoo, reg *serve.Registry, srv *serve.Server, cfg selftestConfig) error {
	keys := z.DownstreamKeys()
	if cfg.adapters < 1 || cfg.adapters > len(keys) {
		return fmt.Errorf("serve: -selftest-adapters must be in [1,%d]", len(keys))
	}
	keys = keys[:cfg.adapters]

	// Reference answers come from a second, independent zoo at the same
	// (seed, scale, faults): the direct Adapted.Predict path the served
	// answers must match byte-for-byte.
	fmt.Printf("selftest: building %d reference adapters (direct path)...\n", len(keys))
	ref := eval.NewZoo(z.Seed, z.Scale)
	ref.Faults = z.Faults
	items := make([]serve.LoadItem, 0, cfg.requests)
	perKey := (cfg.requests + len(keys) - 1) / len(keys)
	for _, key := range keys {
		ad, err := ref.TransferDataset(context.Background(), key, eval.Size7B)
		if err != nil {
			return fmt.Errorf("selftest: reference transfer %s: %w", key, err)
		}
		b, _ := ref.FindDownstream(key)
		for i := 0; i < perKey && len(items) < cfg.requests; i++ {
			in := b.DS.Test[i%len(b.DS.Test)]
			items = append(items, serve.LoadItem{
				Key:  key,
				In:   serve.WireFrom(in),
				Want: ad.Predict(context.Background(), in),
			})
		}
	}
	// Interleave the keys so cold starts race each other and hot batches
	// interleave across adapters — the shape heavy multi-tenant traffic has.
	rng := rand.New(rand.NewSource(cfg.seed))
	rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln) //nolint:errcheck
	defer hs.Close()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("selftest: %d requests, %d concurrent, %d adapters via %s\n",
		len(items), cfg.concurrency, len(keys), baseURL)

	// A warm run builds every adapter up front, so the timed bracket below
	// measures pure serving cost — the comparison surface for the batched
	// vs -serial-predict perf gate. Cold-start coalescing is still proven
	// (Transfers stays 1 per key); the default cold run exercises the race.
	if cfg.warm {
		fmt.Printf("selftest: pre-warming %d adapters...\n", len(keys))
		for _, key := range keys {
			if _, err := reg.Warm(context.Background(), key); err != nil {
				return fmt.Errorf("selftest: warm %s: %w", key, err)
			}
		}
	}

	// Resource accounting brackets the load run only: reference-adapter
	// building above is excluded, so bytes/op reflects serving cost.
	statsBefore := profile.ReadStats()
	rep, err := serve.RunLoad(context.Background(), baseURL, items, serve.LoadOptions{
		Concurrency: cfg.concurrency,
		TraceSeed:   cfg.seed,
	})
	statsAfter := profile.ReadStats()
	if err != nil {
		return fmt.Errorf("selftest: load run: %w", err)
	}
	snap := reg.Snapshot()
	// Batching evidence comes from the service's own metrics: the batcher
	// counts every drained batch and every one answered by the one-pass
	// batched forward.
	bat := &BenchServeBatching{SerialPredict: cfg.opts.SerialPredict}
	if cfg.opts.Rec != nil && cfg.opts.Rec.Metrics != nil {
		ms := cfg.opts.Rec.Metrics.Snapshot()
		bat.Batches = ms.Counters["serve.batches"]
		bat.BatchedPredicts = ms.Counters["serve.batched_predicts"]
		if h, ok := ms.Histograms["serve.batch_size"]; ok {
			bat.AvgBatchSize = h.Mean
			bat.MaxBatchSize = h.Max
		}
	}
	rd := statsAfter.Delta(statsBefore)
	res := &BenchServeResources{
		AllocBytesTotal:   rd.AllocBytes,
		AllocObjectsTotal: rd.AllocObjects,
		GCCycles:          rd.GCCycles,
		GCPauseTotalUS:    rd.GCPauseUS,
		GoroutinesEnd:     statsAfter.Goroutines,
		HeapLiveEndBytes:  statsAfter.HeapLiveBytes,
	}
	if rep.Requests > 0 {
		res.BytesPerOp = float64(rd.AllocBytes) / float64(rep.Requests)
		res.AllocsPerOp = float64(rd.AllocObjects) / float64(rep.Requests)
	}

	fmt.Printf("selftest: %d requests in %.2fs — %.0f req/s, p50 %.1fms p95 %.1fms p99 %.1fms\n",
		rep.Requests, rep.WallS, rep.RPS, rep.P50us/1e3, rep.P95us/1e3, rep.P99us/1e3)
	fmt.Printf("selftest: %d non-2xx, %d mismatches, %d cold hits, %d trace-echo misses\n",
		rep.Non2xx, rep.Mismatches, rep.ColdHits, rep.TraceEchoMisses)
	fmt.Printf("selftest: resources: %.0f B/op, %.1f allocs/op, %d gc cycles (%.1fms pause), %d goroutines, heap %.1fMB\n",
		res.BytesPerOp, res.AllocsPerOp, res.GCCycles, res.GCPauseTotalUS/1e3,
		res.GoroutinesEnd, float64(res.HeapLiveEndBytes)/(1<<20))
	fmt.Printf("selftest: batching: %d batches (avg %.1f, max %.0f), %d batched predicts, serial=%v\n",
		bat.Batches, bat.AvgBatchSize, bat.MaxBatchSize, bat.BatchedPredicts, bat.SerialPredict)
	if rep.SampleTrace != "" {
		fmt.Printf("selftest: slowest request trace %s (inspect: knowtrans obs trace FILE.jsonl -trace-id %s)\n",
			rep.SampleTrace, rep.SampleTrace)
	}
	for _, st := range snap {
		fmt.Printf("selftest: adapter %-24s transfers=%d requests=%d hits=%d misses=%d\n",
			st.Key, st.Transfers, st.Requests, st.Hits, st.Misses)
	}

	if cfg.benchPath != "" {
		doc := &BenchServe{
			SchemaVersion: 4,
			GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
			Seed:          cfg.seed,
			Scale:         cfg.scale,
			Faults:        cfg.faults,
			Keys:          keys,
			Warmed:        cfg.warm,
			MaxBatch:      cfg.opts.MaxBatch,
			MaxAdapters:   cfg.opts.MaxAdapters,
			BatchWaitS:    cfg.opts.MaxWait.Seconds(),
			Report:        rep,
			Resources:     res,
			Batching:      bat,
			Adapters:      snap,
		}
		blob, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.benchPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", cfg.benchPath)
	}

	// Verdicts. Mismatches are fatal at any fault rate (the chain is seeded
	// and deterministic, so even chaos runs must match their equally-chaotic
	// reference); availability is only gated when no faults are armed.
	if rep.Mismatches > 0 {
		return fmt.Errorf("selftest: %d served answers diverged from the direct path (first: %s)",
			rep.Mismatches, rep.FirstError)
	}
	if cfg.faults == "" && rep.Non2xx > 0 {
		return fmt.Errorf("selftest: %d non-2xx responses with no faults armed (first: %s)",
			rep.Non2xx, rep.FirstError)
	}
	if rep.TraceEchoMisses > 0 {
		return fmt.Errorf("selftest: %d responses did not echo the client's traceparent (first: %s)",
			rep.TraceEchoMisses, rep.FirstError)
	}
	for _, st := range snap {
		if st.Transfers != 1 {
			return fmt.Errorf("selftest: adapter %s ran %d Transfers; cold starts must coalesce to exactly 1",
				st.Key, st.Transfers)
		}
	}
	// A non-serial run must actually exercise the batched forward (every
	// drained batch rides it — core.Adapted implements BatchPredictor); a
	// -serial-predict run must never touch it.
	if cfg.opts.SerialPredict {
		if bat.BatchedPredicts != 0 {
			return fmt.Errorf("selftest: %d batched predicts under -serial-predict, want 0", bat.BatchedPredicts)
		}
	} else if bat.Batches > 0 && bat.BatchedPredicts != bat.Batches {
		return fmt.Errorf("selftest: %d/%d batches took the batched path; all must", bat.BatchedPredicts, bat.Batches)
	}
	fmt.Println("selftest: PASS")
	return nil
}

// Compile-time statement that the production Adapted model satisfies the
// serving seam.
var _ serve.Adapter = (*core.Adapted)(nil)
