// Error detection on the Beer dataset: the clearest demonstration of the
// dataset-informed knowledge gap. The Beer table hides three latent rules a
// 20-example sample rarely teaches completely:
//
//   - ABV must be a bare decimal in (0, 1): "0.05%" is an error;
//   - IBU must be numeric: "nan" is an error;
//   - city names may be abbreviated ("NYC"-style) — NOT an error — but
//     misspellings are.
//
// The example shows the upstream model missing these cases, then the AKB
// loop discovering the rules from the few-shot data and error feedback.
//
// Run with: go run ./examples/error_detection
package main

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/akb"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/oracle"
	"repro/internal/tasks"
)

func main() {
	const seed = 5
	z := eval.NewZoo(seed, 0.08)
	fmt.Println("== Error detection on Beer: closing the knowledge gap ==")

	beer := z.DownstreamByKey("ED/Beer")
	fewshot := beer.DS.FewShot(rand.New(rand.NewSource(seed)), 20)

	upstream := z.Upstream(eval.Size7B)
	kt := core.NewKnowTrans(upstream, z.Patches(eval.Size7B), core.WithPlainOracle(oracle.New(seed)))
	ad, err := kt.Transfer(context.Background(), tasks.ED, fewshot, seed)
	if err != nil {
		panic(err)
	}

	spec := tasks.SpecFor(tasks.ED)
	fmt.Printf("\nfew-shot fine-tuned (SKC) alone:  %6.2f F1\n",
		akb.Evaluate(ad.Model, spec, beer.DS.Test, nil))
	fmt.Printf("with AKB searched knowledge:      %6.2f F1\n",
		akb.Evaluate(ad.Model, spec, beer.DS.Test, ad.Knowledge))

	if ad.Knowledge != nil {
		fmt.Printf("\nthe knowledge AKB found:\n  %s\n", tasks.RenderKnowledgeText(ad.Knowledge))
	}

	// Walk some interesting test cases: percent ABVs and abbreviated cities.
	fmt.Println("\nspot checks (prediction without knowledge -> with knowledge, gold):")
	shown := 0
	for _, in := range beer.DS.Test {
		interesting := in.Target == "abv" && in.Meta["error_type"] == "abv-percent" ||
			in.Target == "city" && in.GoldText() == tasks.AnswerNo && looksAbbreviated(in.FieldValue("city"))
		if !interesting || shown >= 6 {
			continue
		}
		shown++
		without := ad.Model.PredictWith(spec, in, nil)
		with := ad.Model.PredictWith(spec, in, ad.Knowledge)
		fmt.Printf("  %-22s %-14q  %-3s -> %-3s (gold %s)\n",
			in.Target+":", in.FieldValue(in.Target), without, with, in.GoldText())
	}
	_ = datagen.DownstreamKeys // keep the import explicit about provenance
}

func looksAbbreviated(v string) bool {
	if len(v) == 0 {
		return false
	}
	upper := 0
	for i := 0; i < len(v); i++ {
		if v[i] >= 'A' && v[i] <= 'Z' {
			upper++
		}
	}
	return upper == len(v) || v[len(v)-1] == '.'
}
