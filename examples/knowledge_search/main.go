// Knowledge search, step by step: runs the AKB loop (Algorithm 2) alone on
// the Rayyan error-detection dataset and prints every iteration —
// candidate pool growth, the best validation score per round, the error
// feedback text, and the final searched knowledge — the trace behind
// Fig. 7's curves.
//
// Run with: go run ./examples/knowledge_search
package main

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/akb"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/oracle"
	"repro/internal/tasks"
)

func main() {
	const seed = 3
	z := eval.NewZoo(seed, 0.08)
	fmt.Println("== AKB knowledge search on ED/Rayyan ==")

	b := z.DownstreamByKey("ED/Rayyan")
	fewshot := b.DS.FewShot(rand.New(rand.NewSource(seed)), 20)

	// A fine-tuned model WITHOUT knowledge: the 𝓜' the search queries.
	kt := core.NewKnowTrans(z.Upstream(eval.Size7B), z.Patches(eval.Size7B), core.WithAKB(false))
	ad, err := kt.Transfer(context.Background(), tasks.ED, fewshot, seed)
	if err != nil {
		panic(err)
	}

	probe := b.DS.Test
	if len(probe) > 200 {
		probe = probe[:200]
	}
	cfg := akb.DefaultConfig(seed)
	cfg.Iterations = 5
	gpt := oracle.New(seed)
	res := akb.Search(ad.Model, gpt, tasks.ED, fewshot, probe, cfg)

	fmt.Println("\nsearch trace:")
	for _, s := range res.Steps {
		fmt.Printf("  round %d: pool=%2d  eval=%6.2f  test=%6.2f\n", s.Iter, s.PoolSize, s.EvalScore, s.TestScore)
	}
	if len(res.Feedbacks) > 0 {
		fmt.Printf("\nfirst error feedback from the oracle:\n%s\n", res.Feedbacks[0])
	}
	fmt.Printf("\nfinal knowledge (eval %.2f):\n  %s\n", res.BestScore, tasks.RenderKnowledgeText(res.Best))
	fmt.Printf("\noracle token usage: %d calls, %d input tokens, %d output tokens\n",
		gpt.Tokens.Calls, gpt.Tokens.Input, gpt.Tokens.Output)
	fmt.Printf("\ntest score without knowledge: %6.2f\n", akb.Evaluate(ad.Model, tasks.SpecFor(tasks.ED), b.DS.Test, nil))
	fmt.Printf("test score with knowledge:    %6.2f\n", akb.Evaluate(ad.Model, tasks.SpecFor(tasks.ED), b.DS.Test, res.Best))
}
