// Entity matching walk-through on the Walmart-Amazon-style product dataset:
// builds the pipeline by hand from the internal packages (no eval.Zoo), so
// every stage of Fig. 2 is visible — upstream SFT, cross-model patch
// extraction, λ-weighted fusion, few-shot fine-tuning, and AKB search — and
// prints what the framework actually learned: the fusion weights λ over the
// upstream patch library and the searched knowledge.
//
// Run with: go run ./examples/entity_matching
package main

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/akb"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/model"
	"repro/internal/oracle"
	"repro/internal/skc"
	"repro/internal/tasks"
)

func main() {
	const seed = 11
	fmt.Println("== Entity matching with KnowTrans ==")

	// 1. Base model (the Mistral-7B analogue), pretrained on a general
	//    corpus so it has broad priors but no DP specialization.
	base := model.New(model.Config{Name: "base", Hidden: model.Hidden7B, Seed: seed})
	pretrain := toExamples(datagen.GeneralCorpus(seed, 3000, false))
	ps := base.Params()
	model.Train(base, pretrain, model.TrainConfig{Epochs: 2, LR: 0.02, Clip: 5, Seed: seed}, &ps)

	// 2. Upstream DP-LLM: multi-task SFT over the 12 upstream datasets.
	upstreamData := datagen.Upstream(seed, 0.1)
	upstream := base.Clone()
	var sftExamples []model.TrainExample
	for _, b := range upstreamData {
		sftExamples = append(sftExamples, model.ExamplesFrom(b.Kind, b.DS.Train, nil)...)
	}
	ps = upstream.Params()
	model.Train(upstream, sftExamples, model.TrainConfig{Epochs: 2, LR: 0.01, Clip: 5, Seed: seed + 1}, &ps)
	fmt.Printf("upstream DP-LLM trained on %d examples across %d datasets\n", len(sftExamples), len(upstreamData))

	// 3. SKC stage 1: extract a knowledge patch per upstream dataset from
	//    the BASE model (cross-model low-rank parameterization).
	var sources []skc.Source
	for _, b := range upstreamData {
		sources = append(sources, skc.Source{Name: b.Key(), Examples: model.ExamplesFrom(b.Kind, b.DS.Train, nil)})
	}
	patches := skc.ExtractPatches(base, sources, skc.Options{Seed: seed})
	fmt.Printf("extracted %d knowledge patches\n", len(patches))

	// 4. The novel dataset: Walmart-Amazon product matching, 20 labels.
	wa := datagen.ByKey("EM/Walmart-Amazon", seed, 0.1)
	fewshot := wa.DS.FewShot(rand.New(rand.NewSource(seed)), 20)

	kt := core.NewKnowTrans(upstream, patches, core.WithPlainOracle(oracle.New(seed)))
	ad, err := kt.Transfer(context.Background(), tasks.EM, fewshot, seed)
	if err != nil {
		panic(err)
	}

	// What did SKC decide to reuse? The λ weights tell us which upstream
	// patches contributed; patches whose knowledge conflicts with the
	// downstream rules are pushed down.
	fmt.Println("\nfusion weights λ after few-shot fine-tuning:")
	type wp struct {
		name string
		w    float64
	}
	var all []wp
	for i, w := range ad.Fusion.Weights() {
		all = append(all, wp{patches[i].Name, w})
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].w > all[j].w })
	for _, x := range all {
		fmt.Printf("  λ(%-26s) = %+.3f\n", x.name, x.w)
	}

	// What did AKB discover about the dataset?
	if ad.Knowledge != nil {
		fmt.Printf("\nsearched knowledge (validation score %.1f):\n  %s\n",
			ad.AKBResult.BestScore, tasks.RenderKnowledgeText(ad.Knowledge))
	} else {
		fmt.Println("\nAKB concluded no extra knowledge helps on this dataset")
	}

	// Final comparison on the held-out test set.
	spec := tasks.SpecFor(tasks.EM)
	plain := upstream.Clone()
	tc := model.DefaultTrain(seed)
	tc.Epochs, tc.BatchSize = 10, 4
	pps := plain.Params()
	model.Train(plain, model.ExamplesFrom(tasks.EM, fewshot, nil), tc, &pps)
	fmt.Printf("\n%-30s %6.2f F1\n", "Jellyfish-style few-shot FT:", plain.Evaluate(spec, wa.DS.Test, nil))
	fmt.Printf("%-30s %6.2f F1\n", "KnowTrans:", akb.Evaluate(ad.Model, spec, wa.DS.Test, ad.Knowledge))

	// A peek at one prediction with its knowledge-augmented prompt.
	in := wa.DS.Test[0]
	ex := tasks.BuildExample(spec, in, ad.Knowledge)
	fmt.Printf("\nexample prompt:\n%s\n-> prediction: %s (gold: %s)\n", ex.Prompt, ad.Predict(context.Background(), in), in.GoldText())
}

func toExamples(corpus []datagen.LabeledExample) []model.TrainExample {
	out := make([]model.TrainExample, 0, len(corpus))
	for _, ex := range corpus {
		out = append(out, model.TrainExample{Spec: ex.Kind.Spec(), Instance: ex.Instance, Knowledge: ex.Knowledge})
	}
	return out
}
