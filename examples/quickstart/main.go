// Quickstart: the complete KnowTrans pipeline end to end on one novel
// dataset, at laptop scale.
//
//  1. Pretrain a base DP-LM and turn it into an upstream DP-LLM by
//     multi-task SFT on the 12 upstream datasets (the Jellyfish analogue).
//  2. Extract one LoRA knowledge patch per upstream dataset from the base
//     model (SKC stage 1).
//  3. Transfer to the novel Walmart-Amazon entity-matching dataset with 20
//     labeled examples: SKC fusion + few-shot fine-tuning, then AKB
//     knowledge search.
//  4. Compare against plain few-shot fine-tuning of the upstream model.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/oracle"
	"repro/internal/skc"
	"repro/internal/tasks"
)

func main() {
	const (
		seed  = 7
		scale = 0.08 // fraction of the paper's dataset sizes
	)
	fmt.Println("== KnowTrans quickstart ==")

	// The eval.Zoo builds and caches all shared artifacts; everything it
	// does can also be done by hand with the internal packages (see the
	// other examples).
	z := eval.NewZoo(seed, scale)

	fmt.Println("building base model + upstream DP-LLM (multi-task SFT on 12 upstream datasets)...")
	upstream := z.Upstream(eval.Size7B)

	fmt.Println("extracting 12 upstream knowledge patches (SKC stage 1)...")
	patches := z.Patches(eval.Size7B)
	fmt.Printf("  %d patches extracted, e.g. %q\n", len(patches), patches[0].Name)

	// The novel downstream dataset with 20 labeled examples.
	b := z.DownstreamByKey("EM/Walmart-Amazon")
	fewshot := b.DS.FewShot(rand.New(rand.NewSource(seed)), 20)
	fmt.Printf("downstream: %s (test=%d instances, few-shot=%d)\n", b.Key(), len(b.DS.Test), len(fewshot))

	// Baseline: plain few-shot fine-tuning of the upstream model.
	baseline := fineTune(upstream.Clone(), b.Kind, fewshot, seed)
	baseScore := baseline.Evaluate(tasks.SpecFor(b.Kind), b.DS.Test, nil)

	// KnowTrans: SKC + AKB.
	kt := core.NewKnowTrans(upstream, patches, core.WithPlainOracle(oracle.New(seed)))
	ad, err := kt.Transfer(context.Background(), b.Kind, fewshot, seed)
	if err != nil {
		panic(err)
	}
	ktScore := ad.Evaluate(b.DS.Test)

	fmt.Printf("\n%-34s %6.2f F1\n", "Jellyfish-7B + few-shot FT:", baseScore)
	fmt.Printf("%-34s %6.2f F1\n", "KnowTrans-7B (SKC + AKB):", ktScore)
	if ad.Fusion != nil {
		fmt.Println("\nlearned fusion weights λ (top 4):")
		printTopWeights(ad.Fusion.Weights(), patches, 4)
	}
	if ad.Knowledge != nil {
		fmt.Printf("\nsearched dataset-informed knowledge:\n  %s\n", tasks.RenderKnowledgeText(ad.Knowledge))
	}
}

func fineTune(m *model.Model, kind tasks.Kind, fewshot []*data.Instance, seed int64) *model.Model {
	tc := model.DefaultTrain(seed)
	tc.Epochs = 8
	ps := m.Params()
	model.Train(m, model.ExamplesFrom(kind, fewshot, nil), tc, &ps)
	return m
}

func printTopWeights(weights []float64, patches []*skc.NamedSnapshot, k int) {
	type wp struct {
		name string
		w    float64
	}
	var all []wp
	for i, w := range weights {
		if i < len(patches) {
			all = append(all, wp{patches[i].Name, w})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].w > all[j].w })
	if len(all) > k {
		all = all[:k]
	}
	for _, x := range all {
		fmt.Printf("  λ(%-24s) = %+.3f\n", x.name, x.w)
	}
}
