// Package repro's root benchmark suite regenerates every table and figure
// of the paper's evaluation (run `go test -bench=. -benchmem`), plus
// substrate micro-benchmarks. Each BenchmarkTableN/BenchmarkFigN bench runs
// the corresponding experiment once per iteration at a reduced dataset
// scale; the knowtrans CLI runs the same experiments at any scale.
//
// The heavyweight artifacts (pretrained bases, the upstream DP-LLM, the
// patch library) are built once and shared across benchmarks, exactly as
// the paper trains Jellyfish once and reuses it.
package repro

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/akb"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/lora"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/oracle"
	"repro/internal/tasks"
)

const benchScale = 0.06

var (
	zooOnce sync.Once
	zoo     *eval.Zoo
)

func benchZoo() *eval.Zoo {
	zooOnce.Do(func() { zoo = eval.NewZoo(1, benchScale) })
	return zoo
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	z := benchZoo()
	e, ok := eval.ExperimentByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var out *eval.Table
	for i := 0; i < b.N; i++ {
		out = e.Run(z, 1)
	}
	if out == nil || len(out.Rows) == 0 {
		b.Fatalf("experiment %s produced no rows", id)
	}
	if testing.Verbose() {
		b.Log("\n" + out.Render())
	}
}

// --- One benchmark per paper table/figure ------------------------------------

func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B) { runExperiment(b, "table5") }
func BenchmarkTable6(b *testing.B) { runExperiment(b, "table6") }
func BenchmarkTable7(b *testing.B) { runExperiment(b, "table7") }
func BenchmarkFig4(b *testing.B)   { runExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)   { runExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { runExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { runExperiment(b, "fig7") }

// Reproduction-specific ablations (see internal/eval/ablations.go and the
// design-choice inventory in DESIGN.md).
func BenchmarkAblateSubstrate(b *testing.B) { runExperiment(b, "ablate-substrate") }
func BenchmarkAblateOracle(b *testing.B)    { runExperiment(b, "ablate-oracle") }

// --- Substrate micro-benchmarks ------------------------------------------------

// BenchmarkTrainStep measures one forward+backward pass of the DP-LM on an
// EM example — the unit of all fine-tuning cost.
func BenchmarkTrainStep(b *testing.B) {
	m := model.New(model.Config{Name: "bench", Hidden: model.Hidden7B, Seed: 1})
	bundle := datagen.ByKey("EM/Walmart-Amazon", 1, 0.05)
	ex := tasks.BuildExample(bundle.Spec(), bundle.DS.Train[0], nil)
	ps := m.Params()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps.ZeroGrad()
		m.Step(ex)
	}
}

// BenchmarkInference measures one prediction without patches.
func BenchmarkInference(b *testing.B) {
	m := model.New(model.Config{Name: "bench", Hidden: model.Hidden7B, Seed: 1})
	bundle := datagen.ByKey("EM/Walmart-Amazon", 1, 0.05)
	ex := tasks.BuildExample(bundle.Spec(), bundle.DS.Test[0], nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(ex)
	}
}

// BenchmarkInferenceFused measures one prediction with the full 12-patch
// fusion attached — the marginal cost of SKC at inference time.
func BenchmarkInferenceFused(b *testing.B) {
	m := model.New(model.Config{Name: "bench", Hidden: model.Hidden7B, Seed: 1})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 12; i++ {
		coef := &nn.Scalar{Val: 1.0 / 12}
		lora.Attach(fmt.Sprintf("p%d", i), m.LoraLayers(), lora.DefaultConfig(), coef, rng)
	}
	bundle := datagen.ByKey("EM/Walmart-Amazon", 1, 0.05)
	ex := tasks.BuildExample(bundle.Spec(), bundle.DS.Test[0], nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(ex)
	}
}

// serveBenchInstances builds the fixed micro-batch both ServePredict
// benchmarks answer: 8 test instances of one EM dataset, the serve hot
// path's unit of work at the default MaxBatch.
func serveBenchInstances() (tasks.Spec, []*data.Instance) {
	bundle := datagen.ByKey("EM/Walmart-Amazon", 1, 0.05)
	ins := make([]*data.Instance, 8)
	for i := range ins {
		ins[i] = bundle.DS.Test[i%len(bundle.DS.Test)]
	}
	return bundle.Spec(), ins
}

// BenchmarkServePredict measures the serve hot path's unit of work: one
// micro-batch of 8 predictions answered by the batched forward pass
// (shared candidate encoding, one matmul per layer per batch, pooled
// scratch). Answers are bit-identical to the serial path below; the ratio
// of the two ns/op numbers is the batching speedup check.sh gates on, and
// the -benchmem counters feed the allocation gate via `knowtrans obs diff`.
func BenchmarkServePredict(b *testing.B) {
	m := model.New(model.Config{Name: "bench", Hidden: model.Hidden7B, Seed: 1})
	spec, ins := serveBenchInstances()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictBatchWith(spec, ins, nil)
	}
}

// BenchmarkServePredictSerial answers the same micro-batch one prediction
// at a time — the pre-batching serve path, kept as the benchmark baseline.
func BenchmarkServePredictSerial(b *testing.B) {
	m := model.New(model.Config{Name: "bench", Hidden: model.Hidden7B, Seed: 1})
	spec, ins := serveBenchInstances()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, in := range ins {
			m.PredictWith(spec, in, nil)
		}
	}
}

// BenchmarkFewShotTransfer measures a full SKC+AKB transfer to one dataset
// (excluding the shared artifact builds).
func BenchmarkFewShotTransfer(b *testing.B) {
	z := benchZoo()
	upstream := z.Upstream(eval.Size7B)
	patches := z.Patches(eval.Size7B)
	bundle := z.DownstreamByKey("EM/Walmart-Amazon")
	fewshot := bundle.DS.FewShot(rand.New(rand.NewSource(3)), eval.FewShotN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kt := core.NewKnowTrans(upstream, patches, core.WithPlainOracle(oracle.New(int64(i))))
		if _, err := kt.Transfer(context.Background(), bundle.Kind, fewshot, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAKBSearch measures the AKB loop alone against a fixed model.
func BenchmarkAKBSearch(b *testing.B) {
	z := benchZoo()
	upstream := z.Upstream(eval.Size7B)
	bundle := z.DownstreamByKey("ED/Rayyan")
	fewshot := bundle.DS.FewShot(rand.New(rand.NewSource(4)), eval.FewShotN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		akb.Search(upstream, oracle.New(int64(i)), bundle.Kind, fewshot, nil, akb.DefaultConfig(int64(i)))
	}
}

// BenchmarkDatasetGeneration measures generating the full downstream suite.
func BenchmarkDatasetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		datagen.Downstream(int64(i), benchScale)
	}
}

// BenchmarkNonLLMBaseline measures the classical per-task baselines.
func BenchmarkNonLLMBaseline(b *testing.B) {
	z := benchZoo()
	bundle := z.DownstreamByKey("ED/Beer")
	fewshot := bundle.DS.FewShot(rand.New(rand.NewSource(5)), eval.FewShotN)
	m := baselines.NonLLM{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred := m.Adapt(&baselines.AdaptContext{Bundle: bundle, FewShot: fewshot, Seed: int64(i)})
		baselines.Evaluate(pred, bundle.Kind, bundle.DS.Test)
	}
}
