package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/data"
	"repro/internal/tasks"
)

// diInstance assembles a data-imputation instance: the target attribute is
// present with a missing marker, candidates enumerate plausible values from
// the record context, and gold is the true value (appended when the
// enumerator's recall misses it).
func diInstance(id string, fields []data.Field, target, gold string, cands []string) *data.Instance {
	seen := map[string]bool{}
	var out []string
	for _, c := range append(cands, gold) {
		c = strings.TrimSpace(c)
		lc := strings.ToLower(c)
		if c == "" || seen[lc] {
			continue
		}
		seen[lc] = true
		out = append(out, c)
	}
	goldIdx := -1
	for i, c := range out {
		if strings.EqualFold(c, gold) {
			goldIdx = i
		}
	}
	fields = append(fields, data.Field{Name: target, Value: "nan"})
	return &data.Instance{
		ID:         id,
		Fields:     fields,
		Target:     target,
		Candidates: out,
		Gold:       goldIdx,
	}
}

// brandCandidates enumerates brand-like candidates the way an imputer
// without gold access would: leading words of the product name, capitalized
// description tokens, plus vocabulary distractors.
func brandCandidates(rng *rand.Rand, name, desc string) []string {
	var cands []string
	words := strings.Fields(name)
	for i := 0; i < len(words) && i < 3; i++ {
		cands = append(cands, words[i])
	}
	for _, w := range strings.Fields(desc) {
		if len(w) > 3 && w[0] >= 'A' && w[0] <= 'Z' {
			cands = append(cands, strings.Trim(w, ".,"))
			if len(cands) > 6 {
				break
			}
		}
	}
	for i := 0; i < 2; i++ {
		cands = append(cands, pick(rng, brands))
	}
	cands = append(cands, tasks.AnswerNA)
	return cands
}

// genFlipkartDI: impute the brand of marketplace listings. Planted rules
// (Table VIII): the brand opens the product name ~70% of the time and is
// repeated inside the description otherwise.
func genFlipkartDI(rng *rand.Rand, train, test int) *Bundle {
	ds := &data.Dataset{Name: "Flipkart", Task: string(tasks.DI)}
	for i := 0; i < train+test; i++ {
		p := genProduct(rng)
		var name string
		if maybe(rng, 0.7) {
			name = p.title(rng, false) // brand-first title
		} else {
			// Brand absent from the name; only the description carries it.
			name = strings.Join([]string{p.adj, p.noun, p.model, p.color}, " ")
		}
		desc := fmt.Sprintf("Buy %s %s %s for Rs.%d online. %s %s at best prices with fast delivery.",
			p.brand, p.adj, p.noun, int(p.price*10), p.brand, p.noun)
		fields := []data.Field{
			{Name: "product_name", Value: name},
			{Name: "description", Value: desc},
			{Name: "retail_price", Value: fmt.Sprintf("%d", int(p.price*10))},
		}
		in := diInstance(fmt.Sprintf("Flipkart-%d", i), fields, "brand", p.brand,
			brandCandidates(rng, name, desc))
		if i < train {
			ds.Train = append(ds.Train, in)
		} else {
			ds.Test = append(ds.Test, in)
		}
	}
	return &Bundle{DS: ds, Kind: tasks.DI, Seed: &tasks.Knowledge{
		Text: "Infer the manufacturer of the product from the record.",
	}}
}

// genPhoneDI: unlocked-phone listings where the brand is (almost) always
// the first word of the product name — the Table VIII Phone rule.
func genPhoneDI(rng *rand.Rand, train, test int) *Bundle {
	ds := &data.Dataset{Name: "Phone", Task: string(tasks.DI)}
	for i := 0; i < train+test; i++ {
		p := genProduct(rng)
		name := fmt.Sprintf("%s %s %s %s %s unlocked smartphone", p.brand, p.adj, p.model, p.capacity, p.color)
		if maybe(rng, 0.08) {
			// Rare listings lead with a marketing word instead.
			name = "New " + name
		}
		fields := []data.Field{
			{Name: "product_name", Value: name},
			{Name: "price", Value: priceStr(p.price)},
			{Name: "rating", Value: fmt.Sprintf("%.1f", 2.5+rng.Float64()*2.5)},
		}
		in := diInstance(fmt.Sprintf("Phone-%d", i), fields, "brand", p.brand,
			brandCandidates(rng, name, ""))
		if i < train {
			ds.Train = append(ds.Train, in)
		} else {
			ds.Test = append(ds.Test, in)
		}
	}
	return &Bundle{DS: ds, Kind: tasks.DI, Seed: &tasks.Knowledge{
		Text: "Determine the brand from the product name.",
	}}
}

// genBuyDI (upstream): manufacturer imputation for electronics listings —
// the upstream analog of Flipkart/Phone, which is exactly the transferable
// knowledge SKC's patches should carry downstream.
func genBuyDI(rng *rand.Rand, train, test int) *Bundle {
	ds := &data.Dataset{Name: "Buy", Task: string(tasks.DI)}
	for i := 0; i < train+test; i++ {
		p := genProduct(rng)
		name := p.title(rng, false)
		desc := p.description(rng)
		fields := []data.Field{
			{Name: "name", Value: name},
			{Name: "description", Value: desc},
			{Name: "price", Value: priceStr(p.price)},
		}
		in := diInstance(fmt.Sprintf("Buy-%d", i), fields, "manufacturer", p.brand,
			brandCandidates(rng, name, desc))
		if i < train {
			ds.Train = append(ds.Train, in)
		} else {
			ds.Test = append(ds.Test, in)
		}
	}
	return &Bundle{DS: ds, Kind: tasks.DI, Seed: &tasks.Knowledge{
		Text: "Infer the manufacturer from the product listing.",
	}}
}

// areaCodeOf assigns each city a stable synthetic area code; Restaurant DI's
// planted rule is that the phone's area code identifies the city.
func areaCodeOf(city string) string {
	h := 0
	for _, c := range city {
		h = h*31 + int(c)
	}
	if h < 0 {
		h = -h
	}
	return fmt.Sprintf("%03d", 200+h%700)
}

// genRestaurantDI (upstream): impute the city of a restaurant; the area
// code of the phone number determines it.
func genRestaurantDI(rng *rand.Rand, train, test int) *Bundle {
	ds := &data.Dataset{Name: "Restaurant", Task: string(tasks.DI)}
	for i := 0; i < train+test; i++ {
		city := pick(rng, cities)
		fields := []data.Field{
			{Name: "name", Value: pick(rng, lastNames) + "'s " + pick(rng, restaurantNouns)},
			{Name: "addr", Value: fmt.Sprintf("%d %s St", 10+rng.Intn(990), pick(rng, lastNames))},
			{Name: "phone", Value: phoneNumber(rng, areaCodeOf(city))},
			{Name: "type", Value: pick(rng, cuisines)},
		}
		// Candidates: a handful of cities including the right one.
		cands := []string{city}
		for len(cands) < 6 {
			c := pick(rng, cities)
			dup := false
			for _, e := range cands {
				if e == c {
					dup = true
				}
			}
			if !dup {
				cands = append(cands, c)
			}
		}
		rng.Shuffle(len(cands), func(a, b int) { cands[a], cands[b] = cands[b], cands[a] })
		in := diInstance(fmt.Sprintf("Restaurant-%d", i), fields, "city", city, cands)
		if i < train {
			ds.Train = append(ds.Train, in)
		} else {
			ds.Test = append(ds.Test, in)
		}
	}
	return &Bundle{DS: ds, Kind: tasks.DI, Seed: &tasks.Knowledge{
		Text: "Infer the city of the restaurant from the other attributes.",
	}}
}
