package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/data"
	"repro/internal/tasks"
)

// concept is one latent schema attribute with its surface name variants and
// description variants. Concepts in the same group are semantically related
// but NOT equivalent (start vs end dates, different coding systems) — the
// hard negatives the CMS knowledge in Table VIII warns about.
type concept struct {
	names []string
	descs []string
	group string
}

var medicalConcepts = []concept{
	{[]string{"patient_id", "subject_id", "person_id"},
		[]string{"unique identifier of the patient", "primary key identifying a person receiving care"}, "id"},
	{[]string{"provider_id", "physician_id", "attending_id"},
		[]string{"identifier of the treating clinician", "key of the attending provider"}, "id"},
	{[]string{"birth_date", "dob", "date_of_birth"},
		[]string{"date the patient was born", "patient birth date in YYYY-MM-DD"}, "date"},
	{[]string{"admission_date", "admit_dt", "clm_admsn_dt", "start_date"},
		[]string{"date the stay began", "claim admission date", "start date of the episode"}, "date-start"},
	{[]string{"discharge_date", "disch_dt", "nch_bene_dschrg_dt", "end_date"},
		[]string{"date the stay ended", "discharge date of the beneficiary", "end date of the episode"}, "date-end"},
	{[]string{"diagnosis_code", "icd9_code", "dx_code"},
		[]string{"ICD9 code of the diagnosis", "diagnosis code assigned at discharge"}, "code-dx"},
	{[]string{"procedure_code", "icd9_prcdr_cd", "px_code"},
		[]string{"ICD9 procedure code", "code of the performed procedure"}, "code-px"},
	{[]string{"ethnicity_code", "race_cd", "bene_race_cd"},
		[]string{"coded ethnicity of the patient", "race code of the beneficiary"}, "code-demo"},
	{[]string{"gender", "sex", "bene_sex_ident_cd"},
		[]string{"administrative gender of the patient", "sex identification code"}, "demo"},
	{[]string{"facility_id", "hospital_id", "prvdr_num"},
		[]string{"identifier of the care facility", "provider number of the institution"}, "id-fac"},
	{[]string{"total_charge", "clm_pmt_amt", "claim_amount"},
		[]string{"total amount charged for the claim", "payment amount of the claim"}, "amount"},
	{[]string{"deductible_amount", "nch_bene_ip_ddctbl_amt"},
		[]string{"deductible owed by the beneficiary", "inpatient deductible amount"}, "amount"},
	{[]string{"state_code", "sp_state_code", "prvdr_state_cd"},
		[]string{"state where care was delivered", "state code of the provider"}, "geo"},
	{[]string{"county_code", "bene_county_cd"},
		[]string{"county of residence", "beneficiary county code"}, "geo"},
	{[]string{"drg_code", "clm_drg_cd"},
		[]string{"diagnosis related group of the claim", "DRG code for payment"}, "code-drg"},
	{[]string{"hcpcs_code", "hcpcs_cd", "service_code"},
		[]string{"HCPCS code of the service line", "procedure coding for outpatient services"}, "code-svc"},
}

// smPair renders a schema-matching pair instance.
func smPair(rng *rand.Rand, id string, concepts []concept, positive bool) *data.Instance {
	ci := rng.Intn(len(concepts))
	c := concepts[ci]
	aName := pick(rng, c.names)
	aDesc := pick(rng, c.descs)
	var bName, bDesc string
	if positive {
		bName = pickOther(rng, c.names, aName)
		bDesc = pick(rng, c.descs)
	} else {
		var d concept
		if maybe(rng, 0.6) {
			// Hard negative: same group, different concept (e.g. admission
			// vs discharge date) — textually similar, semantically distinct.
			var candidates []int
			for j, other := range concepts {
				if j != ci && other.group == c.group {
					candidates = append(candidates, j)
				}
			}
			if len(candidates) > 0 {
				d = concepts[candidates[rng.Intn(len(candidates))]]
			} else {
				d = concepts[(ci+1+rng.Intn(len(concepts)-1))%len(concepts)]
			}
		} else {
			d = concepts[(ci+1+rng.Intn(len(concepts)-1))%len(concepts)]
		}
		bName = pick(rng, d.names)
		bDesc = pick(rng, d.descs)
	}
	fields := []data.Field{
		{Entity: "A", Name: "column", Value: aName},
		{Entity: "A", Name: "description", Value: aDesc},
		{Entity: "B", Name: "column", Value: bName},
		{Entity: "B", Name: "description", Value: bDesc},
	}
	gold := 1
	if positive {
		gold = 0
	}
	return &data.Instance{
		ID:         id,
		Fields:     fields,
		Candidates: []string{tasks.AnswerYes, tasks.AnswerNo},
		Gold:       gold,
	}
}

func smDataset(rng *rand.Rand, name string, train, test int, posRate float64, concepts []concept) *data.Dataset {
	ds := &data.Dataset{Name: name, Task: string(tasks.SM)}
	for i := 0; i < train+test; i++ {
		in := smPair(rng, fmt.Sprintf("%s-%d", name, i), concepts, maybe(rng, posRate))
		if i < train {
			ds.Train = append(ds.Train, in)
		} else {
			ds.Test = append(ds.Test, in)
		}
	}
	return ds
}

func genMIMICSM(rng *rand.Rand, train, test int) *Bundle {
	samples, positives, _ := PaperUpstreamSize("SM/MIMIC")
	// The real MIMIC split is extremely imbalanced (11/7000); we keep it
	// rare but learnable.
	rate := float64(positives) / float64(samples) * 20
	ds := smDataset(rng, "MIMIC", train, test, rate, medicalConcepts[:10])
	return &Bundle{DS: ds, Kind: tasks.SM, Seed: &tasks.Knowledge{
		Text: "Decide if the two columns describe the same clinical attribute.",
	}}
}

func genSyntheaSM(rng *rand.Rand, train, test int) *Bundle {
	samples, positives, _ := PaperUpstreamSize("SM/Synthea")
	rate := float64(positives) / float64(samples) * 20
	ds := smDataset(rng, "Synthea", train, test, rate, medicalConcepts[4:])
	return &Bundle{DS: ds, Kind: tasks.SM, Seed: &tasks.Knowledge{
		Text: "Decide if the two columns describe the same attribute of the synthetic health records.",
	}}
}

// genCMSSM (downstream): Medicare claims schema matching, drawing on the
// same clinical concept space as the upstream MIMIC/Synthea datasets — the
// overlap that makes their SKC knowledge patches transferable.
func genCMSSM(rng *rand.Rand, train, test int) *Bundle {
	ds := smDataset(rng, "CMS", train, test, 0.09, medicalConcepts)
	return &Bundle{DS: ds, Kind: tasks.SM, Seed: &tasks.Knowledge{
		Text: "Decide if the two claim columns are semantically equivalent.",
	}}
}
