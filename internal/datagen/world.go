package datagen

// WorldLexicon exposes the generator vocabularies as named categories of
// known surface forms. It models the world knowledge a strong closed-source
// LLM brings to the AKB loop: GPT-4o recognizes that "San Fransico" is a
// misspelled city or that "Amber Lager" is a beer style without being shown
// a dictionary, and the simulated oracle (internal/oracle) gets the same
// power from these lists. Experiment code never reads gold labels from
// here — only surface vocabularies.
func WorldLexicon() map[string][]string {
	lex := map[string][]string{
		"city":     append(append([]string{}, cities...), cityAbbrevs()...),
		"state":    states,
		"style":    beerStyles,
		"brand":    brands,
		"brewery":  breweries,
		"journal":  journalAbbrevs,
		"cuisine":  cuisines,
		"beername": beerNames(),
	}
	return lex
}

func cityAbbrevs() []string {
	var out []string
	for _, c := range cities {
		out = append(out, abbreviate(c))
	}
	return out
}

func beerNames() []string {
	var out []string
	for _, a := range beerNameParts1 {
		for _, b := range beerNameParts2 {
			out = append(out, a+" "+b)
		}
	}
	return out
}
