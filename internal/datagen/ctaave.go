package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/data"
	"repro/internal/tasks"
)

// SOTAB column types, following the schema.org-derived label space the
// paper's CTA knowledge (Table VIII) describes.
var sotabTypes = []string{
	"country", "eventStatus", "eventAttendanceMode", "description",
	"addressLocality", "coordinate", "priceRange", "telephone", "email",
	"date", "organization", "personName", "streetAddress", "postalCode",
	"currency",
}

// sotabValue generates one cell value of the given semantic type.
func sotabValue(rng *rand.Rand, typ string) string {
	switch typ {
	case "country":
		codes := []string{"BE", "FR", "DE", "IT", "NL", "ES", "US", "GB", "JP", "BR"}
		c := pick(rng, codes)
		return c + " " + c // repeated codes, the planted pattern
	case "eventStatus":
		return "https://schema.org/Event" + pick(rng, []string{"Scheduled", "Cancelled", "Postponed", "Rescheduled"})
	case "eventAttendanceMode":
		return "https://schema.org/" + pick(rng, []string{"Offline", "Online", "Mixed"}) + "EventAttendanceMode"
	case "description":
		return fmt.Sprintf("Join us for an evening of %s and %s at the annual %s gathering downtown.",
			pick(rng, []string{"music", "food", "art", "film"}),
			pick(rng, []string{"conversation", "dancing", "tastings", "workshops"}),
			pick(rng, []string{"harvest", "winter", "spring", "summer"}))
	case "addressLocality":
		c := pick(rng, cities)
		if maybe(rng, 0.3) {
			return c + " and " + pick(rng, cities)
		}
		return c
	case "coordinate":
		return fmt.Sprintf("%.4f, %.4f", -90+rng.Float64()*180, -180+rng.Float64()*360)
	case "priceRange":
		return strings.Repeat("$", 1+rng.Intn(4))
	case "telephone":
		return phoneNumber(rng, fmt.Sprintf("%03d", 200+rng.Intn(700)))
	case "email":
		return strings.ToLower(pick(rng, firstNames)) + "." + strings.ToLower(pick(rng, lastNames)) + "@example.com"
	case "date":
		return isoDateStr(rng)
	case "organization":
		return pick(rng, breweries)
	case "personName":
		return personName(rng, 0)
	case "streetAddress":
		return fmt.Sprintf("%d %s %s", 10+rng.Intn(990), pick(rng, lastNames), pick(rng, []string{"St", "Ave", "Blvd", "Rd"}))
	case "postalCode":
		return fmt.Sprintf("%05d", 10000+rng.Intn(89999))
	case "currency":
		return pick(rng, []string{"USD", "EUR", "GBP", "JPY", "CHF"})
	default:
		panic("datagen: unknown SOTAB type " + typ)
	}
}

// genSOTABCTA (downstream, novel task): classify a column given five sample
// values into one of the schema.org-style types.
func genSOTABCTA(rng *rand.Rand, train, test int) *Bundle {
	ds := &data.Dataset{Name: "SOTAB", Task: string(tasks.CTA)}
	for i := 0; i < train+test; i++ {
		typ := pick(rng, sotabTypes)
		var fields []data.Field
		for j := 0; j < 5; j++ {
			fields = append(fields, data.Field{Name: "sample", Value: sotabValue(rng, typ)})
		}
		gold := -1
		for k, t := range sotabTypes {
			if t == typ {
				gold = k
			}
		}
		in := &data.Instance{
			ID:         fmt.Sprintf("SOTAB-%d", i),
			Fields:     fields,
			Candidates: append([]string(nil), sotabTypes...),
			Gold:       gold,
		}
		if i < train {
			ds.Train = append(ds.Train, in)
		} else {
			ds.Test = append(ds.Test, in)
		}
	}
	return &Bundle{DS: ds, Kind: tasks.CTA, Seed: &tasks.Knowledge{
		Text: "Assign the semantic type that best describes the sampled column values.",
	}}
}

// aveAttrs lists the target attributes of the AE-110k-style dataset with a
// generator of (title containing the value, value) or absence.
var aveElectronicsAttrs = []string{"Brand", "Color", "Capacity", "Sport Type", "Feature", "Gender"}

// aveSpanCandidates enumerates extraction candidates: every unigram and
// bigram of the title plus n/a — the ranking realization of span extraction.
func aveSpanCandidates(title string, maxCands int) []string {
	words := strings.Fields(title)
	seen := map[string]bool{}
	var cands []string
	add := func(s string) {
		ls := strings.ToLower(s)
		if s == "" || seen[ls] || len(cands) >= maxCands {
			return
		}
		seen[ls] = true
		cands = append(cands, s)
	}
	for _, w := range words {
		add(strings.Trim(w, ".,"))
	}
	for i := 0; i+1 < len(words); i++ {
		add(strings.Trim(words[i], ".,") + " " + strings.Trim(words[i+1], ".,"))
	}
	add(tasks.AnswerNA)
	return cands
}

func aveInstance(id, title, attr, gold string) *data.Instance {
	cands := aveSpanCandidates(title, 24)
	// Ensure n/a is present even if the candidate cap hit first.
	hasNA := false
	for _, c := range cands {
		if c == tasks.AnswerNA {
			hasNA = true
		}
	}
	if !hasNA {
		cands = append(cands, tasks.AnswerNA)
	}
	goldIdx := -1
	for i, c := range cands {
		if strings.EqualFold(c, gold) {
			goldIdx = i
		}
	}
	if goldIdx < 0 {
		cands = append(cands, gold)
		goldIdx = len(cands) - 1
	}
	return &data.Instance{
		ID:         id,
		Fields:     []data.Field{{Name: "title", Value: title}},
		Target:     attr,
		Candidates: cands,
		Gold:       goldIdx,
		Meta:       map[string]string{"attribute": attr},
	}
}

// genAE110kAVE (downstream, novel task): extract attribute values from
// electronics/apparel product titles.
func genAE110kAVE(rng *rand.Rand, train, test int) *Bundle {
	ds := &data.Dataset{Name: "AE-110k", Task: string(tasks.AVE)}
	for i := 0; i < train+test; i++ {
		attr := pick(rng, aveElectronicsAttrs)
		brand := pick(rng, brands)
		color := pick(rng, colors)
		capacity := pick(rng, capacities)
		sport := pick(rng, sportTypes)
		feature := pick(rng, features)
		gender := pick(rng, genders)
		noun := pick(rng, apparelNouns)

		// Build the title from a subset of attributes; whether the target
		// attribute is present decides between a span gold and n/a.
		parts := []string{brand}
		present := map[string]string{"Brand": brand}
		if maybe(rng, 0.75) {
			parts = append(parts, gender+"'s")
			present["Gender"] = gender
		}
		if maybe(rng, 0.7) {
			parts = append(parts, sport)
			present["Sport Type"] = sport
		}
		if maybe(rng, 0.7) {
			parts = append(parts, feature)
			present["Feature"] = feature
		}
		parts = append(parts, noun)
		if maybe(rng, 0.6) {
			parts = append(parts, color)
			present["Color"] = color
		}
		if maybe(rng, 0.35) {
			parts = append(parts, capacity)
			present["Capacity"] = capacity
		}
		title := strings.Join(parts, " ")
		gold, ok := present[attr]
		if !ok {
			gold = tasks.AnswerNA
		}
		// Gender appears as "Men's" in the title but the expected label is
		// "Men" (the case/format rule of the AE knowledge).
		in := aveInstance(fmt.Sprintf("AE-%d", i), title, attr, gold)
		if i < train {
			ds.Train = append(ds.Train, in)
		} else {
			ds.Test = append(ds.Test, in)
		}
	}
	return &Bundle{DS: ds, Kind: tasks.AVE, Seed: &tasks.Knowledge{
		Text: "Extract the requested attribute value from the product title; answer n/a when absent.",
	}}
}

var oaAttrs = []string{"Flavor", "Scent", "Brand", "Size", "Roast"}

// genOAMineAVE (downstream): grocery/personal-care titles. The planted OA
// rule: descriptive terms (flavors, scents) take precedence over brand
// names when both could answer.
func genOAMineAVE(rng *rand.Rand, train, test int) *Bundle {
	ds := &data.Dataset{Name: "OA-mine", Task: string(tasks.AVE)}
	roasts := []string{"dark roast", "medium roast", "light roast"}
	sizes := []string{"12 oz", "16 oz", "32 oz", "6 pack", "500 ml"}
	for i := 0; i < train+test; i++ {
		attr := pick(rng, oaAttrs)
		brand := pick(rng, brands)
		flavor := pick(rng, flavors)
		scent := pick(rng, scents)
		noun := pick(rng, groceryNouns)
		roast := pick(rng, roasts)
		size := pick(rng, sizes)

		parts := []string{brand}
		present := map[string]string{"Brand": brand}
		isCoffee := noun == "coffee"
		if maybe(rng, 0.65) {
			parts = append(parts, flavor)
			present["Flavor"] = flavor
		}
		if !isCoffee && maybe(rng, 0.4) {
			parts = append(parts, scent)
			present["Scent"] = scent
		}
		if isCoffee && maybe(rng, 0.6) {
			parts = append(parts, roast)
			present["Roast"] = roast
		}
		if maybe(rng, 0.3) {
			parts = append(parts, "decaf")
		}
		parts = append(parts, noun)
		if maybe(rng, 0.55) {
			parts = append(parts, size)
			present["Size"] = size
		}
		title := strings.Join(parts, " ")
		gold, ok := present[attr]
		if !ok {
			gold = tasks.AnswerNA
		}
		in := aveInstance(fmt.Sprintf("OA-%d", i), title, attr, gold)
		if i < train {
			ds.Train = append(ds.Train, in)
		} else {
			ds.Test = append(ds.Test, in)
		}
	}
	return &Bundle{DS: ds, Kind: tasks.AVE, Seed: &tasks.Knowledge{
		Text: "Extract the requested attribute from the grocery product title; answer n/a when absent.",
	}}
}
