// Package datagen synthesizes the 25 datasets of the paper's evaluation:
// the 12 upstream datasets of Table VII (used for upstream multi-task SFT
// and SKC knowledge-patch extraction) and the 13 novel downstream datasets
// of Table I. The originals are public benchmark datasets we cannot ship;
// each generator reproduces the schema, scale, class balance, and — most
// importantly — the latent dataset-informed rules the paper's Appendix
// (Table VIII) documents for each dataset, so the SKC and AKB components
// have real structure to transfer and discover. See DESIGN.md.
//
// All generation is deterministic in the seed.
package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/data"
	"repro/internal/tasks"
)

// Bundle packages a generated dataset with its task kind and the seed
// knowledge its task prompt starts from (the "initial handcrafted knowledge"
// of Section VI-B).
type Bundle struct {
	DS       *data.Dataset
	Kind     tasks.Kind
	Seed     *tasks.Knowledge
	Upstream bool
}

// Key returns the task-qualified dataset name.
func (b *Bundle) Key() string { return b.DS.Key() }

// Spec returns the bundle's task spec.
func (b *Bundle) Spec() tasks.Spec { return tasks.SpecFor(b.Kind) }

// Sizes of the downstream datasets (Table I). Scale (0,1] shrinks them
// proportionally so the full experiment suite stays runnable on a laptop;
// scale=1 reproduces the paper's row counts.
type sizeSpec struct{ train, test int }

var downstreamSizes = map[string]sizeSpec{
	"ED/Flights":        {12256, 2000},
	"ED/Rayyan":         {9000, 2000},
	"ED/Beer":           {10050, 2000},
	"DI/Flipkart":       {11460, 2675},
	"DI/Phone":          {2547, 1194},
	"SM/CMS":            {23068, 2564},
	"EM/Abt-Buy":        {5743, 1916},
	"EM/Walmart-Amazon": {6144, 2049},
	"CTA/SOTAB":         {356, 250},
	"AVE/AE-110k":       {4405, 1495},
	"AVE/OA-mine":       {7360, 2451},
	"DC/Rayyan":         {9000, 2000},
	"DC/Beer":           {10050, 2000},
}

// Upstream dataset sizes (Table VII; #Samples with #Positives).
var upstreamSizes = map[string]struct{ samples, positives int }{
	"ED/Adult":              {1100, 70},
	"ED/Hospital":           {3420, 88},
	"DI/Buy":                {586, 0},
	"DI/Restaurant":         {778, 0},
	"SM/MIMIC":              {7000, 11},
	"SM/Synthea":            {5000, 18},
	"EM/Amazon-Google":      {6874, 699},
	"EM/Beer":               {359, 54},
	"EM/DBLP-ACM":           {5000, 885},
	"EM/DBLP-GoogleScholar": {5000, 924},
	"EM/Fodors-Zagats":      {757, 88},
	"EM/iTunes-Amazon":      {430, 105},
}

// scaled applies the scale factor with a floor so tiny scales keep datasets
// usable.
func scaled(n int, scale float64) int {
	if scale >= 1 {
		return n
	}
	out := int(float64(n) * scale)
	if out < 40 {
		out = 40
	}
	if out > n {
		out = n
	}
	return out
}

// Generator builds one dataset at the given sizes.
type Generator func(rng *rand.Rand, train, test int) *Bundle

// downstreamGenerators maps dataset keys to constructors, in the paper's
// Table I order.
var downstreamOrder = []string{
	"ED/Flights", "ED/Rayyan", "ED/Beer",
	"DI/Flipkart", "DI/Phone",
	"SM/CMS",
	"EM/Abt-Buy", "EM/Walmart-Amazon",
	"CTA/SOTAB",
	"AVE/AE-110k", "AVE/OA-mine",
	"DC/Rayyan", "DC/Beer",
}

var upstreamOrder = []string{
	"ED/Adult", "ED/Hospital",
	"DI/Buy", "DI/Restaurant",
	"SM/MIMIC", "SM/Synthea",
	"EM/Amazon-Google", "EM/Beer", "EM/DBLP-ACM",
	"EM/DBLP-GoogleScholar", "EM/Fodors-Zagats", "EM/iTunes-Amazon",
}

func downstreamGenerator(key string) Generator {
	switch key {
	case "ED/Flights":
		return genFlightsED
	case "ED/Rayyan":
		return genRayyanED
	case "ED/Beer":
		return genBeerED
	case "DI/Flipkart":
		return genFlipkartDI
	case "DI/Phone":
		return genPhoneDI
	case "SM/CMS":
		return genCMSSM
	case "EM/Abt-Buy":
		return genAbtBuyEM
	case "EM/Walmart-Amazon":
		return genWalmartAmazonEM
	case "CTA/SOTAB":
		return genSOTABCTA
	case "AVE/AE-110k":
		return genAE110kAVE
	case "AVE/OA-mine":
		return genOAMineAVE
	case "DC/Rayyan":
		return genRayyanDC
	case "DC/Beer":
		return genBeerDC
	default:
		panic(fmt.Sprintf("datagen: unknown downstream dataset %q", key))
	}
}

func upstreamGenerator(key string) Generator {
	switch key {
	case "ED/Adult":
		return genAdultED
	case "ED/Hospital":
		return genHospitalED
	case "DI/Buy":
		return genBuyDI
	case "DI/Restaurant":
		return genRestaurantDI
	case "SM/MIMIC":
		return genMIMICSM
	case "SM/Synthea":
		return genSyntheaSM
	case "EM/Amazon-Google":
		return genAmazonGoogleEM
	case "EM/Beer":
		return genBeerEM
	case "EM/DBLP-ACM":
		return genDBLPACMEM
	case "EM/DBLP-GoogleScholar":
		return genDBLPScholarEM
	case "EM/Fodors-Zagats":
		return genFodorsZagatsEM
	case "EM/iTunes-Amazon":
		return genITunesAmazonEM
	default:
		panic(fmt.Sprintf("datagen: unknown upstream dataset %q", key))
	}
}

// Downstream generates the 13 novel datasets of Table I at the given scale.
func Downstream(seed int64, scale float64) []*Bundle {
	var out []*Bundle
	for i, key := range downstreamOrder {
		sz := downstreamSizes[key]
		rng := rand.New(rand.NewSource(seed + int64(i)*1009))
		b := downstreamGenerator(key)(rng, scaled(sz.train, scale), scaled(sz.test, scale))
		out = append(out, b)
	}
	return out
}

// Upstream generates the 12 upstream datasets of Table VII at the given
// scale. Upstream bundles carry only Train (they are a training resource);
// a small Test split is still produced for diagnostics.
func Upstream(seed int64, scale float64) []*Bundle {
	var out []*Bundle
	for i, key := range upstreamOrder {
		sz := upstreamSizes[key]
		rng := rand.New(rand.NewSource(seed + 7777 + int64(i)*1013))
		n := scaled(sz.samples, scale)
		b := upstreamGenerator(key)(rng, n, n/10+10)
		b.Upstream = true
		out = append(out, b)
	}
	return out
}

// ByKey generates a single dataset (upstream or downstream) by its
// task-qualified key at the given scale.
func ByKey(key string, seed int64, scale float64) *Bundle {
	for i, k := range downstreamOrder {
		if k == key {
			sz := downstreamSizes[key]
			rng := rand.New(rand.NewSource(seed + int64(i)*1009))
			return downstreamGenerator(key)(rng, scaled(sz.train, scale), scaled(sz.test, scale))
		}
	}
	for i, k := range upstreamOrder {
		if k == key {
			sz := upstreamSizes[key]
			rng := rand.New(rand.NewSource(seed + 7777 + int64(i)*1013))
			n := scaled(sz.samples, scale)
			b := upstreamGenerator(key)(rng, n, n/10+10)
			b.Upstream = true
			return b
		}
	}
	panic(fmt.Sprintf("datagen: unknown dataset %q", key))
}

// DownstreamKeys returns the Table I dataset keys in order.
func DownstreamKeys() []string { return append([]string(nil), downstreamOrder...) }

// UpstreamKeys returns the Table VII dataset keys in order.
func UpstreamKeys() []string { return append([]string(nil), upstreamOrder...) }

// PaperSizes returns the unscaled Table I sizes for a downstream key.
func PaperSizes(key string) (train, test int, ok bool) {
	sz, ok := downstreamSizes[key]
	return sz.train, sz.test, ok
}

// PaperUpstreamSize returns the unscaled Table VII row for an upstream key.
func PaperUpstreamSize(key string) (samples, positives int, ok bool) {
	sz, ok := upstreamSizes[key]
	return sz.samples, sz.positives, ok
}
