package datagen

import (
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/tasks"
)

const testScale = 0.05

func allBundles(t *testing.T) []*Bundle {
	t.Helper()
	return append(Downstream(1, testScale), Upstream(1, testScale)...)
}

func TestEveryDatasetGenerates(t *testing.T) {
	bundles := allBundles(t)
	if len(bundles) != 25 {
		t.Fatalf("expected 25 datasets, got %d", len(bundles))
	}
	for _, b := range bundles {
		if len(b.DS.Train) == 0 || len(b.DS.Test) == 0 {
			t.Errorf("%s: empty split train=%d test=%d", b.Key(), len(b.DS.Train), len(b.DS.Test))
		}
		if b.Seed == nil {
			t.Errorf("%s: missing seed knowledge", b.Key())
		}
	}
}

func TestInstanceWellFormed(t *testing.T) {
	for _, b := range allBundles(t) {
		for _, in := range append(append([]*data.Instance{}, b.DS.Train...), b.DS.Test...) {
			if len(in.Candidates) < 2 {
				t.Fatalf("%s %s: fewer than 2 candidates: %v", b.Key(), in.ID, in.Candidates)
			}
			if in.Gold < 0 || in.Gold >= len(in.Candidates) {
				t.Fatalf("%s %s: gold index %d out of range (%d candidates)", b.Key(), in.ID, in.Gold, len(in.Candidates))
			}
			if in.GoldText() == "" {
				t.Fatalf("%s %s: empty gold text", b.Key(), in.ID)
			}
			if len(in.Fields) == 0 {
				t.Fatalf("%s %s: no fields", b.Key(), in.ID)
			}
			// Candidates must be unique modulo case so prediction is well defined.
			seen := map[string]bool{}
			for _, c := range in.Candidates {
				lc := strings.ToLower(strings.TrimSpace(c))
				if seen[lc] {
					t.Fatalf("%s %s: duplicate candidate %q in %v", b.Key(), in.ID, c, in.Candidates)
				}
				seen[lc] = true
			}
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := Downstream(42, testScale)
	b := Downstream(42, testScale)
	for i := range a {
		if len(a[i].DS.Train) != len(b[i].DS.Train) {
			t.Fatalf("%s: nondeterministic size", a[i].Key())
		}
		for j := range a[i].DS.Train {
			x, y := a[i].DS.Train[j], b[i].DS.Train[j]
			if x.GoldText() != y.GoldText() || len(x.Fields) != len(y.Fields) {
				t.Fatalf("%s[%d]: nondeterministic instance", a[i].Key(), j)
			}
			for f := range x.Fields {
				if x.Fields[f] != y.Fields[f] {
					t.Fatalf("%s[%d]: field mismatch %v vs %v", a[i].Key(), j, x.Fields[f], y.Fields[f])
				}
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := ByKey("EM/Abt-Buy", 1, testScale)
	b := ByKey("EM/Abt-Buy", 2, testScale)
	same := 0
	n := len(a.DS.Train)
	if len(b.DS.Train) < n {
		n = len(b.DS.Train)
	}
	for i := 0; i < n; i++ {
		if data.RenderRecord(a.DS.Train[i].Fields) == data.RenderRecord(b.DS.Train[i].Fields) {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical data")
	}
}

func TestBinaryTasksHaveBothClasses(t *testing.T) {
	for _, b := range allBundles(t) {
		if !b.Kind.IsBinary() {
			continue
		}
		pos, neg := 0, 0
		for _, in := range b.DS.Train {
			if in.GoldText() == tasks.AnswerYes {
				pos++
			} else {
				neg++
			}
		}
		if pos == 0 || neg == 0 {
			t.Errorf("%s: degenerate class balance pos=%d neg=%d", b.Key(), pos, neg)
		}
	}
}

func TestPositiveRatesRoughlyMatchPaper(t *testing.T) {
	// Spot-check that heavily imbalanced upstream datasets stay imbalanced.
	b := ByKey("EM/Amazon-Google", 3, 0.3)
	pos := 0
	for _, in := range b.DS.Train {
		if in.GoldText() == tasks.AnswerYes {
			pos++
		}
	}
	rate := float64(pos) / float64(len(b.DS.Train))
	if rate > 0.3 {
		t.Errorf("Amazon-Google positive rate %v should be low (paper: ~0.10)", rate)
	}
}

func TestBeerEDTraps(t *testing.T) {
	b := ByKey("ED/Beer", 5, 0.3)
	var percentErrors, cleanAbbrevs int
	for _, in := range append(b.DS.Train, b.DS.Test...) {
		if in.Target == "abv" && strings.Contains(in.FieldValue("abv"), "%") {
			percentErrors++
			if in.GoldText() != tasks.AnswerYes {
				t.Fatal("ABV with %% must always be an error (planted rule)")
			}
		}
		if in.Target == "city" && in.GoldText() == tasks.AnswerNo {
			v := in.FieldValue("city")
			if strings.HasSuffix(v, ".") || v == strings.ToUpper(v) {
				cleanAbbrevs++
			}
		}
	}
	if percentErrors == 0 {
		t.Fatal("no ABV-percent errors generated")
	}
	if cleanAbbrevs == 0 {
		t.Fatal("no benign city abbreviations generated (the Beer trap)")
	}
}

func TestRayyanZeroIssueIsValid(t *testing.T) {
	b := ByKey("ED/Rayyan", 6, 0.3)
	zeroClean := 0
	for _, in := range append(b.DS.Train, b.DS.Test...) {
		if in.Target == "article_jissue" && in.FieldValue("article_jissue") == "0" {
			if in.GoldText() != tasks.AnswerNo {
				t.Fatal("issue 0 must be valid (planted trap)")
			}
			zeroClean++
		}
	}
	if zeroClean == 0 {
		t.Fatal("no zero-issue records generated")
	}
}

func TestDCGoldRecoverable(t *testing.T) {
	for _, key := range []string{"DC/Rayyan", "DC/Beer"} {
		b := ByKey(key, 7, testScale)
		for _, in := range b.DS.Train {
			if in.Gold < 0 {
				t.Fatalf("%s %s: gold missing from candidates", key, in.ID)
			}
			// Missing-valued targets must expect the -1 convention.
			if tasks.IsMissingValue(in.FieldValue(in.Target)) && in.GoldText() != "-1" {
				t.Fatalf("%s %s: missing value should expect -1, got %q", key, in.ID, in.GoldText())
			}
		}
	}
}

func TestDIBrandInCandidates(t *testing.T) {
	b := ByKey("DI/Flipkart", 8, testScale)
	for _, in := range b.DS.Train {
		if in.Gold < 0 {
			t.Fatalf("gold brand %q missing from candidates %v", in.GoldText(), in.Candidates)
		}
		// Target field must be masked.
		if in.FieldValue("brand") != "nan" {
			t.Fatalf("DI target should be masked, got %q", in.FieldValue("brand"))
		}
	}
}

func TestCTAUsesFullLabelSpace(t *testing.T) {
	b := ByKey("CTA/SOTAB", 9, 1)
	seen := map[string]bool{}
	for _, in := range b.DS.Train {
		if len(in.Candidates) != len(sotabTypes) {
			t.Fatalf("CTA candidates should be the full label space, got %d", len(in.Candidates))
		}
		seen[in.GoldText()] = true
	}
	if len(seen) < len(sotabTypes)-2 {
		t.Fatalf("train covers only %d of %d types", len(seen), len(sotabTypes))
	}
}

func TestAVEGoldIsSpanOrNA(t *testing.T) {
	for _, key := range []string{"AVE/AE-110k", "AVE/OA-mine"} {
		b := ByKey(key, 10, testScale)
		nas := 0
		for _, in := range b.DS.Train {
			gold := in.GoldText()
			if gold == tasks.AnswerNA {
				nas++
				continue
			}
			title := strings.ToLower(in.FieldValue("title"))
			if !strings.Contains(title, strings.ToLower(gold)) {
				t.Fatalf("%s: gold %q not a span of title %q", key, gold, title)
			}
		}
		if nas == 0 {
			t.Fatalf("%s: no n/a golds generated", key)
		}
	}
}

func TestRestaurantAreaCodeRule(t *testing.T) {
	b := ByKey("DI/Restaurant", 11, testScale)
	for _, in := range b.DS.Train {
		phone := in.FieldValue("phone")
		area := phone[:3]
		if areaCodeOf(in.GoldText()) != area {
			t.Fatalf("area code %s does not encode city %s", area, in.GoldText())
		}
	}
}

func TestGeneralCorpus(t *testing.T) {
	corpus := GeneralCorpus(3, 500, true)
	if len(corpus) != 500 {
		t.Fatalf("corpus size %d", len(corpus))
	}
	kinds := map[tasks.Kind]int{}
	withKnowledge := 0
	for _, ex := range corpus {
		kinds[ex.Kind]++
		if ex.Knowledge != nil {
			withKnowledge++
			if len(ex.Knowledge.Rules) == 0 {
				t.Fatal("rule-following example without rules")
			}
		}
		if ex.Instance.Gold < 0 || ex.Instance.Gold >= len(ex.Instance.Candidates) {
			t.Fatalf("bad gold in general corpus: %+v", ex.Instance)
		}
	}
	for _, k := range []tasks.Kind{tasks.EM, tasks.ED, tasks.AVE, tasks.CTA} {
		if kinds[k] == 0 {
			t.Errorf("general corpus missing kind %s", k)
		}
	}
	if withKnowledge < 50 {
		t.Errorf("too few rule-following examples: %d", withKnowledge)
	}
}

func TestRuleFollowingHintsMostlyCorrect(t *testing.T) {
	corpus := GeneralCorpus(4, 2000, true)
	correct, total := 0, 0
	for _, ex := range corpus {
		if ex.Knowledge == nil {
			continue
		}
		hints := ex.Knowledge.Hints(ex.Instance)
		for k, h := range hints {
			if h > 0 {
				total++
				if k == ex.Instance.Gold {
					correct++
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no firing rules in rule-following data")
	}
	acc := float64(correct) / float64(total)
	if acc < 0.85 || acc > 0.98 {
		t.Fatalf("rule validity should be ~0.92, got %v", acc)
	}
}

func TestByKeyUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown dataset")
		}
	}()
	ByKey("XX/Nothing", 1, 1)
}

func TestPaperSizesExposed(t *testing.T) {
	train, test, ok := PaperSizes("ED/Flights")
	if !ok || train != 12256 || test != 2000 {
		t.Fatalf("PaperSizes wrong: %d/%d/%v", train, test, ok)
	}
	samples, positives, ok := PaperUpstreamSize("SM/MIMIC")
	if !ok || samples != 7000 || positives != 11 {
		t.Fatalf("PaperUpstreamSize wrong: %d/%d/%v", samples, positives, ok)
	}
}
