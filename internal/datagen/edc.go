package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/data"
	"repro/internal/tasks"
)

// record is a clean row plus a chosen target attribute; error injectors
// corrupt the target and remember the clean value.
type record struct {
	fields []data.Field
}

func (r record) value(attr string) string {
	for _, f := range r.fields {
		if f.Name == attr {
			return f.Value
		}
	}
	return ""
}

func (r record) withValue(attr, v string) record {
	out := record{fields: append([]data.Field(nil), r.fields...)}
	for i := range out.fields {
		if out.fields[i].Name == attr {
			out.fields[i].Value = v
		}
	}
	return out
}

// corruption is one injected error: the corrupted value and the latent error
// type (recorded in Meta for diagnostics; never shown to models).
type corruption struct {
	value string
	kind  string
}

// edInstanceFrom builds an ED instance: gold "yes" iff the target value was
// corrupted.
func edInstanceFrom(id string, r record, target string, corrupted bool, kind string) *data.Instance {
	gold := 1
	if corrupted {
		gold = 0
	}
	return &data.Instance{
		ID:         id,
		Fields:     r.fields,
		Target:     target,
		Candidates: []string{tasks.AnswerYes, tasks.AnswerNo},
		Gold:       gold,
		Meta:       map[string]string{"error_type": kind},
	}
}

// edDataset drives an ED generator: cleanGen produces a record and a target
// attribute; corrupt injects an error into the target.
func edDataset(rng *rand.Rand, name string, train, test int, posRate float64,
	cleanGen func(rng *rand.Rand) (record, string),
	corrupt func(rng *rand.Rand, r record, target string) corruption) *data.Dataset {
	ds := &data.Dataset{Name: name, Task: string(tasks.ED)}
	for i := 0; i < train+test; i++ {
		r, target := cleanGen(rng)
		id := fmt.Sprintf("%s-ed-%d", name, i)
		var in *data.Instance
		if maybe(rng, posRate) {
			c := corrupt(rng, r, target)
			in = edInstanceFrom(id, r.withValue(target, c.value), target, true, c.kind)
		} else {
			in = edInstanceFrom(id, r, target, false, "clean")
		}
		if i < train {
			ds.Train = append(ds.Train, in)
		} else {
			ds.Test = append(ds.Test, in)
		}
	}
	return ds
}

// --- Beer (downstream ED + DC) ---------------------------------------------

func cleanBeer(rng *rand.Rand) (record, string) {
	city := pick(rng, cities)
	// Benign variation planted per Table VIII: abbreviations are acceptable,
	// so clean records sometimes carry them and they must NOT be errors.
	if maybe(rng, 0.12) {
		city = abbreviate(city)
	}
	r := record{fields: []data.Field{
		{Name: "beer_name", Value: pick(rng, beerNameParts1) + " " + pick(rng, beerNameParts2)},
		{Name: "brewery_name", Value: pick(rng, breweries)},
		{Name: "style", Value: pick(rng, beerStyles)},
		{Name: "abv", Value: fmt.Sprintf("%.3f", 0.02+rng.Float64()*0.1)},
		{Name: "ibu", Value: fmt.Sprintf("%d", 5+rng.Intn(95))},
		{Name: "city", Value: city},
		{Name: "state", Value: pick(rng, states)},
		{Name: "ounces", Value: pick(rng, []string{"12", "16", "19.2", "32"})},
	}}
	targets := []string{"abv", "ibu", "city", "style", "beer_name"}
	return r, pick(rng, targets)
}

func corruptBeer(rng *rand.Rand, r record, target string) corruption {
	v := r.value(target)
	switch target {
	case "abv":
		if maybe(rng, 0.6) {
			return corruption{v + "%", "abv-percent"} // the no-percent rule
		}
		return corruption{fmt.Sprintf("%.1f", 2+rng.Float64()*60), "abv-range"}
	case "ibu":
		if maybe(rng, 0.7) {
			return corruption{"nan", "missing"}
		}
		return corruption{"-" + v, "ibu-negative"}
	case "city":
		return corruption{typo(rng, v), "city-typo"}
	case "style":
		if maybe(rng, 0.5) {
			return corruption{typo(rng, v), "style-typo"}
		}
		return corruption{"nan", "missing"}
	default: // beer_name
		return corruption{typo(rng, v), "name-typo"}
	}
}

func genBeerED(rng *rand.Rand, train, test int) *Bundle {
	ds := edDataset(rng, "Beer", train, test, 0.28, cleanBeer, corruptBeer)
	return &Bundle{DS: ds, Kind: tasks.ED, Seed: &tasks.Knowledge{
		Text: "Errors may include spelling errors, missing values, or values that don't make sense in context.",
	}}
}

// --- Flights (downstream ED) ------------------------------------------------

func cleanFlight(rng *rand.Rand) (record, string) {
	carrier := pick(rng, []string{"AA", "UA", "DL", "WN", "B6", "AS"})
	r := record{fields: []data.Field{
		{Name: "datasource", Value: pick(rng, []string{"flightview", "flightaware", "airtravelcenter", "orbitz"})},
		{Name: "flight", Value: fmt.Sprintf("%s-%d", carrier, 100+rng.Intn(4900))},
		{Name: "scheduled_departure", Value: ampmTime(rng)},
		{Name: "actual_departure", Value: ampmTime(rng)},
		{Name: "scheduled_arrival", Value: ampmTime(rng)},
		{Name: "actual_arrival", Value: ampmTime(rng)},
	}}
	targets := []string{"scheduled_departure", "actual_departure", "scheduled_arrival", "actual_arrival", "flight"}
	return r, pick(rng, targets)
}

func corruptFlight(rng *rand.Rand, r record, target string) corruption {
	if target == "flight" {
		return corruption{typo(rng, r.value(target)), "flight-typo"}
	}
	switch rng.Intn(3) {
	case 0:
		return corruption{badTime(rng), "time-format"} // 24h format, planted format rule
	case 1:
		return corruption{"nan", "missing"}
	default:
		// Dropped meridiem marker — still a format error.
		v := r.value(target)
		v = strings.ReplaceAll(strings.ReplaceAll(v, " a.m.", ""), " p.m.", "")
		return corruption{v, "time-no-meridiem"}
	}
}

func genFlightsED(rng *rand.Rand, train, test int) *Bundle {
	ds := edDataset(rng, "Flights", train, test, 0.3, cleanFlight, corruptFlight)
	return &Bundle{DS: ds, Kind: tasks.ED, Seed: &tasks.Knowledge{
		Text: "Errors may include spelling errors, missing values, inconsistencies, or values that don't make sense.",
	}}
}

// --- Rayyan (downstream ED + DC) ---------------------------------------------

var journalAbbrevs = []string{
	"J Data Eng", "Proc VLDB", "Trans Knowl Eng", "Inf Syst J", "Data Min Rev",
	"J Mach Learn Res", "Comput Surv", "Database Lett", "Knowl Inf Syst", "Big Data J",
}

func cleanRayyan(rng *rand.Rand) (record, string) {
	issue := fmt.Sprintf("%d", rng.Intn(13)) // 0 is VALID (planted trap)
	volume := fmt.Sprintf("%d", rng.Intn(40))
	r := record{fields: []data.Field{
		{Name: "article_title", Value: fmt.Sprintf(pick(rng, paperPatterns), pick(rng, paperTopics))},
		{Name: "journal_abbreviation", Value: pick(rng, journalAbbrevs)},
		{Name: "article_jcreated_at", Value: isoDateStr(rng)},
		{Name: "article_jissue", Value: issue},
		{Name: "article_jvolumn", Value: volume},
		{Name: "journal_issn", Value: issn(rng)},
		{Name: "article_pagination", Value: fmt.Sprintf("%d-%d", 1+rng.Intn(400), 401+rng.Intn(300))},
	}}
	targets := []string{"article_jcreated_at", "journal_issn", "journal_abbreviation", "article_title", "article_jissue"}
	return r, pick(rng, targets)
}

func corruptRayyan(rng *rand.Rand, r record, target string) corruption {
	v := r.value(target)
	switch target {
	case "article_jcreated_at":
		if maybe(rng, 0.7) {
			// Same date re-rendered as "4/3/15" (planted format rule), so a
			// cleaner can recover the ISO form from the dirty value.
			return corruption{isoToSlash(v), "date-format"}
		}
		return corruption{"nan", "missing"}
	case "journal_issn":
		if maybe(rng, 0.5) {
			return corruption{strings.ReplaceAll(v, "-", ""), "issn-format"}
		}
		return corruption{v[:len(v)-1], "issn-truncated"}
	case "journal_abbreviation":
		return corruption{typo(rng, v), "abbrev-typo"}
	case "article_title":
		return corruption{"nan", "missing"}
	default: // article_jissue — the only true error here is a non-numeric mess
		return corruption{"vol." + v, "issue-format"}
	}
}

func genRayyanED(rng *rand.Rand, train, test int) *Bundle {
	ds := edDataset(rng, "Rayyan", train, test, 0.27, cleanRayyan, corruptRayyan)
	return &Bundle{DS: ds, Kind: tasks.ED, Seed: &tasks.Knowledge{
		Text: "Errors may include spelling errors, missing values, or format violations.",
	}}
}

// --- Upstream ED: Adult, Hospital -------------------------------------------

func genAdultED(rng *rand.Rand, train, test int) *Bundle {
	workclasses := []string{"private", "self-emp", "federal-gov", "state-gov", "local-gov"}
	educations := []string{"bachelors", "hs-grad", "masters", "doctorate", "some-college", "assoc"}
	occupations := []string{"tech-support", "sales", "exec-managerial", "craft-repair", "farming", "clerical"}
	cleanGen := func(rng *rand.Rand) (record, string) {
		r := record{fields: []data.Field{
			{Name: "age", Value: fmt.Sprintf("%d", 18+rng.Intn(60))},
			{Name: "workclass", Value: pick(rng, workclasses)},
			{Name: "education", Value: pick(rng, educations)},
			{Name: "occupation", Value: pick(rng, occupations)},
			{Name: "hours_per_week", Value: fmt.Sprintf("%d", 10+rng.Intn(60))},
			{Name: "income", Value: pick(rng, []string{"<=50K", ">50K"})},
		}}
		return r, pick(rng, []string{"age", "workclass", "education", "hours_per_week"})
	}
	corrupt := func(rng *rand.Rand, r record, target string) corruption {
		v := r.value(target)
		switch target {
		case "age":
			if maybe(rng, 0.5) {
				return corruption{fmt.Sprintf("-%d", 1+rng.Intn(40)), "age-negative"}
			}
			return corruption{fmt.Sprintf("%d", 150+rng.Intn(400)), "age-range"}
		case "hours_per_week":
			return corruption{"nan", "missing"}
		default:
			return corruption{typo(rng, v), "categorical-typo"}
		}
	}
	samples, positives, _ := PaperUpstreamSize("ED/Adult")
	ds := edDataset(rng, "Adult", train, test, float64(positives)/float64(samples), cleanGen, corrupt)
	return &Bundle{DS: ds, Kind: tasks.ED, Seed: &tasks.Knowledge{
		Text: "Errors include out-of-range numbers, typos in categories, and missing values.",
	}}
}

func genHospitalED(rng *rand.Rand, train, test int) *Bundle {
	conditions := []string{"heart attack", "pneumonia", "heart failure", "surgical infection"}
	cleanGen := func(rng *rand.Rand) (record, string) {
		city := pick(rng, cities)
		r := record{fields: []data.Field{
			{Name: "provider_number", Value: fmt.Sprintf("%05d", 10000+rng.Intn(89999))},
			{Name: "name", Value: city + " " + pick(rng, []string{"general hospital", "medical center", "regional clinic"})},
			{Name: "city", Value: city},
			{Name: "state", Value: pick(rng, states)},
			{Name: "zip", Value: fmt.Sprintf("%05d", 10000+rng.Intn(89999))},
			{Name: "phone", Value: phoneNumber(rng, fmt.Sprintf("%03d", 200+rng.Intn(700)))},
			{Name: "condition", Value: pick(rng, conditions)},
		}}
		return r, pick(rng, []string{"name", "city", "zip", "phone", "condition"})
	}
	corrupt := func(rng *rand.Rand, r record, target string) corruption {
		v := r.value(target)
		switch target {
		case "zip":
			return corruption{v[:3], "zip-truncated"}
		case "phone":
			return corruption{strings.ReplaceAll(v, "-", ""), "phone-format"}
		default:
			return corruption{typo(rng, v), "text-typo"}
		}
	}
	samples, positives, _ := PaperUpstreamSize("ED/Hospital")
	ds := edDataset(rng, "Hospital", train, test, float64(positives)/float64(samples), cleanGen, corrupt)
	return &Bundle{DS: ds, Kind: tasks.ED, Seed: &tasks.Knowledge{
		Text: "Errors are mostly injected typos in text fields and malformed identifiers.",
	}}
}

// --- DC: Rayyan, Beer --------------------------------------------------------

// dcProposals enumerates candidate corrections for a corrupted value, the
// way repair systems like Baran propose fixes: invertible transforms of the
// dirty value plus dictionary lookups from the column's clean-value pool.
// The gold correction is appended if the proposals missed it (recall of the
// proposal engine is near-perfect on the planted error taxonomy; the append
// keeps the dataset well-posed either way).
func dcProposals(rng *rand.Rand, dirty, gold string, dict []string) ([]string, int) {
	seen := map[string]bool{}
	var out []string
	add := func(v string) {
		v = strings.TrimSpace(v)
		if v == "" || seen[strings.ToLower(v)] {
			return
		}
		seen[strings.ToLower(v)] = true
		out = append(out, v)
	}
	if strings.Contains(dirty, "%") {
		add(strings.ReplaceAll(dirty, "%", ""))
	}
	if iso, ok := tryDateISO(dirty); ok {
		add(iso)
	}
	// Strip stray symbols (negative signs, punctuation) from numeric-ish
	// values: "-45" → "45".
	{
		var sb strings.Builder
		for _, r := range dirty {
			if r == ' ' || r == '.' || (r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') {
				sb.WriteRune(r)
			}
		}
		if s := strings.TrimSpace(sb.String()); s != "" && s != dirty {
			add(s)
		}
	}
	// Dictionary spell-fixes: closest two entries.
	type cand struct {
		w string
		d int
	}
	var close []cand
	for _, w := range dict {
		d := editDist(strings.ToLower(dirty), strings.ToLower(w))
		if d > 0 && d <= 3 {
			close = append(close, cand{w, d})
		}
	}
	for i := 0; i < len(close); i++ {
		for j := i + 1; j < len(close); j++ {
			if close[j].d < close[i].d {
				close[i], close[j] = close[j], close[i]
			}
		}
	}
	for i := 0; i < len(close) && i < 2; i++ {
		add(close[i].w)
	}
	add("-1")
	add(tasks.AnswerNA)
	// Distractors from the dictionary.
	for i := 0; i < 3 && len(dict) > 0; i++ {
		add(dict[rng.Intn(len(dict))])
	}
	add(gold)
	goldIdx := -1
	for i, c := range out {
		if strings.EqualFold(c, gold) {
			goldIdx = i
		}
	}
	return out, goldIdx
}

// isoToSlash re-renders "2015-04-03" as "4/3/15"; malformed input is
// returned unchanged.
func isoToSlash(v string) string {
	if len(v) != 10 || v[4] != '-' || v[7] != '-' {
		return v
	}
	y := v[2:4]
	m := strings.TrimPrefix(v[5:7], "0")
	d := strings.TrimPrefix(v[8:10], "0")
	return m + "/" + d + "/" + y
}

func tryDateISO(v string) (string, bool) {
	parts := strings.Split(strings.TrimSpace(v), "/")
	if len(parts) != 3 {
		return "", false
	}
	var nums [3]int
	for i, p := range parts {
		n := 0
		if p == "" {
			return "", false
		}
		for _, c := range p {
			if c < '0' || c > '9' {
				return "", false
			}
			n = n*10 + int(c-'0')
		}
		nums[i] = n
	}
	m, d, y := nums[0], nums[1], nums[2]
	if m < 1 || m > 12 || d < 1 || d > 31 {
		return "", false
	}
	if y < 100 {
		// Standard two-digit-year pivot: 70–99 → 1900s, 00–69 → 2000s.
		if y >= 70 {
			y += 1900
		} else {
			y += 2000
		}
	}
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d), true
}

// editDist duplicates the tasks package's Levenshtein for proposal ranking
// without exporting an internal detail from tasks.
func editDist(a, b string) int {
	if len(a) > 32 || len(b) > 32 {
		if a == b {
			return 0
		}
		return 33
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1
			if cur[j-1]+1 < m {
				m = cur[j-1] + 1
			}
			if prev[j-1]+cost < m {
				m = prev[j-1] + cost
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// dcDataset builds a data-cleaning dataset from the same record pipeline as
// its ED sibling: every instance has a corrupted target, the gold answer is
// the clean value, candidates come from the proposal engine.
func dcDataset(rng *rand.Rand, name string, train, test int,
	cleanGen func(rng *rand.Rand) (record, string),
	corrupt func(rng *rand.Rand, r record, target string) corruption,
	dictFor func(attr string) []string) *data.Dataset {
	ds := &data.Dataset{Name: name, Task: string(tasks.DC)}
	for i := 0; i < train+test; i++ {
		r, target := cleanGen(rng)
		gold := r.value(target)
		c := corrupt(rng, r, target)
		if tasks.IsMissingValue(c.value) {
			// Dataset convention (and the planted Rayyan rule the paper's
			// searched knowledge documents): when the value is missing and
			// cannot be inferred, the expected correction is "-1".
			gold = "-1"
		}
		dirty := r.withValue(target, c.value)
		cands, goldIdx := dcProposals(rng, c.value, gold, dictFor(target))
		in := &data.Instance{
			ID:         fmt.Sprintf("%s-dc-%d", name, i),
			Fields:     dirty.fields,
			Target:     target,
			Candidates: cands,
			Gold:       goldIdx,
			Meta:       map[string]string{"error_type": c.kind},
		}
		if i < train {
			ds.Train = append(ds.Train, in)
		} else {
			ds.Test = append(ds.Test, in)
		}
	}
	return ds
}

func genBeerDC(rng *rand.Rand, train, test int) *Bundle {
	dictFor := func(attr string) []string {
		switch attr {
		case "city":
			return cities
		case "style":
			return beerStyles
		case "beer_name":
			var names []string
			for _, a := range beerNameParts1 {
				for _, b := range beerNameParts2 {
					names = append(names, a+" "+b)
				}
			}
			return names
		default:
			return nil
		}
	}
	ds := dcDataset(rng, "Beer", train, test, cleanBeer, corruptBeer, dictFor)
	return &Bundle{DS: ds, Kind: tasks.DC, Seed: &tasks.Knowledge{
		Text: "Correct the erroneous value using the other attributes of the record.",
	}}
}

func genRayyanDC(rng *rand.Rand, train, test int) *Bundle {
	dictFor := func(attr string) []string {
		if attr == "journal_abbreviation" {
			return journalAbbrevs
		}
		return nil
	}
	ds := dcDataset(rng, "Rayyan", train, test, cleanRayyan, corruptRayyan, dictFor)
	return &Bundle{DS: ds, Kind: tasks.DC, Seed: &tasks.Knowledge{
		Text: "Correct the erroneous value; use -1 when no value can be inferred.",
	}}
}
