package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/data"
	"repro/internal/tasks"
)

// LabeledExample is one pretraining example: an instance with the task it
// belongs to and the knowledge (if any) active in its prompt.
type LabeledExample struct {
	Kind      tasks.Kind
	Instance  *data.Instance
	Knowledge *tasks.Knowledge
}

// GeneralCorpus synthesizes the broad "pre-training" mixture that stands in
// for web-scale pretraining + generic instruction tuning (see DESIGN.md):
//
//   - generic entity matching across domains (alignment priors),
//   - instruction/rule-following examples where only the stated rule
//     identifies the answer (teaches the trust head that stated knowledge
//     is worth following — the analog of instruction tuning),
//   - generic span extraction over attribute vocabularies,
//   - generic value-type classification (CTA world knowledge),
//
// and, only when rich is set (the GPT tiers, whose instruction tuning is
// far broader than a raw 7B base model's):
//
//   - generic error-spotting (missing values and typos are suspicious),
//   - generic value correction (zero-shot repair priors).
//
// The mixture deliberately contains none of the downstream datasets' quirky
// format rules; those remain dataset-informed gaps for AKB to close.
func GeneralCorpus(seed int64, n int, rich bool) []LabeledExample {
	rng := rand.New(rand.NewSource(seed))
	var out []LabeledExample
	for i := 0; i < n; i++ {
		r := rng.Float64()
		if rich {
			switch {
			case r < 0.28:
				out = append(out, genericMatch(rng, i))
			case r < 0.52:
				out = append(out, ruleFollowing(rng, i))
			case r < 0.64:
				out = append(out, genericErrorSpot(rng, i))
			case r < 0.76:
				out = append(out, genericExtract(rng, i))
			case r < 0.88:
				out = append(out, genericCorrection(rng, i))
			default:
				out = append(out, genericTypeClass(rng, i))
			}
			continue
		}
		switch {
		case r < 0.35:
			out = append(out, genericMatch(rng, i))
		case r < 0.65:
			out = append(out, ruleFollowing(rng, i))
		case r < 0.85:
			out = append(out, genericExtract(rng, i))
		default:
			out = append(out, genericTypeClass(rng, i))
		}
	}
	return out
}

// TableCorpus is the TableLLaMA-style pretraining mixture: table tasks only,
// no instruction/rule-following tuning — a generalist that reads tables but
// was never aligned to follow stated DP knowledge.
func TableCorpus(seed int64, n int) []LabeledExample {
	rng := rand.New(rand.NewSource(seed))
	var out []LabeledExample
	for i := 0; i < n; i++ {
		switch r := rng.Float64(); {
		case r < 0.5:
			out = append(out, genericMatch(rng, i))
		case r < 0.8:
			out = append(out, genericTypeClass(rng, i))
		default:
			out = append(out, genericExtract(rng, i))
		}
	}
	return out
}

// genericCorrection teaches zero-shot repair priors: among candidate fixes
// for a corrupted value, prefer the one that looks like the clean form
// (symbols stripped, dictionary spelling, -1 for missing) — the "common
// sense" that lets an instruction-tuned LLM clean data it never trained on.
func genericCorrection(rng *rand.Rand, i int) LabeledExample {
	word := pick(rng, cities)
	attr := pick(rng, []string{"name", "label", "city", "category"})
	var dirty, gold string
	switch rng.Intn(3) {
	case 0: // stray symbol
		dirty, gold = word+"%", word
	case 1: // typo vs dictionary
		dirty, gold = typo(rng, word), word
	default: // missing
		dirty, gold = "nan", "-1"
	}
	cands := []string{gold, pick(rng, cities), "-1", tasks.AnswerNA, dirty}
	seen := map[string]bool{}
	var uniq []string
	goldIdx := -1
	for _, c := range cands {
		lc := strings.ToLower(c)
		if seen[lc] {
			continue
		}
		seen[lc] = true
		if strings.EqualFold(c, gold) {
			goldIdx = len(uniq)
		}
		uniq = append(uniq, c)
	}
	return LabeledExample{Kind: tasks.DC, Instance: &data.Instance{
		ID: fmt.Sprintf("gen-dc-%d", i),
		Fields: []data.Field{
			{Name: attr, Value: dirty},
			{Name: "context", Value: pick(rng, cities) + " " + pick(rng, cuisines)},
		},
		Target:     attr,
		Candidates: uniq,
		Gold:       goldIdx,
	}}
}

func genericMatch(rng *rand.Rand, i int) LabeledExample {
	id := fmt.Sprintf("gen-match-%d", i)
	pos := maybe(rng, 0.4)
	var in *data.Instance
	switch rng.Intn(3) {
	case 0:
		render := func(p product, variant bool) []data.Field {
			return []data.Field{
				{Name: "title", Value: p.title(rng, variant)},
				{Name: "price", Value: priceStr(p.price * (0.9 + rng.Float64()*0.2))},
			}
		}
		in = emPair(rng, render, id, pos)
	case 1:
		p := genPaper(rng)
		a := p.fields(rng, false)
		b := p.fields(rng, true)
		if !pos {
			q := genPaper(rng)
			b = q.fields(rng, true)
		}
		in = pairInstance(id, a, b, pos)
	default:
		name := pick(rng, lastNames) + "'s " + pick(rng, restaurantNouns)
		city := pick(rng, cities)
		a := []data.Field{{Name: "name", Value: name}, {Name: "city", Value: city}}
		b := []data.Field{{Name: "name", Value: strings.ToLower(name)}, {Name: "city", Value: city}}
		if !pos {
			b = []data.Field{
				{Name: "name", Value: pick(rng, lastNames) + "'s " + pick(rng, restaurantNouns)},
				{Name: "city", Value: pick(rng, cities)},
			}
		}
		in = pairInstance(id, a, b, pos)
	}
	return LabeledExample{Kind: tasks.EM, Instance: in}
}

// ruleFollowing creates examples where only the stated rule identifies the
// answer. The value vocabulary is deliberately small and labels are random,
// so content features actively mislead (they correlate with other examples'
// labels): cross-entropy then has to grow the trust head until stated rules
// dominate content — the instruction-override behaviour instruction tuning
// gives real LLMs. Rules are right 92% of the time, so trust stays strong
// but not absolute.
func ruleFollowing(rng *rand.Rand, i int) LabeledExample {
	tok := fmt.Sprintf("%c%c%d", 'a'+rng.Intn(6), 'a'+rng.Intn(6), rng.Intn(40))
	gold := rng.Intn(2)
	in := &data.Instance{
		ID:         fmt.Sprintf("gen-rule-%d", i),
		Fields:     []data.Field{{Name: "value", Value: tok}},
		Target:     "value",
		Candidates: []string{tasks.AnswerYes, tasks.AnswerNo},
		Gold:       gold,
	}
	ruleAnswer := in.Candidates[gold]
	if !maybe(rng, 0.92) {
		ruleAnswer = in.Candidates[1-gold]
	}
	k := &tasks.Knowledge{
		Text: fmt.Sprintf("When the value contains %q the answer is %s.", tok[:2], ruleAnswer),
		Rules: []tasks.Rule{{
			Cond:   tasks.Condition{Pred: tasks.PredContains, Attr: "value", Arg: tok[:2]},
			Answer: tasks.Answer{Literal: ruleAnswer},
			Weight: 1,
		}},
	}
	return LabeledExample{Kind: tasks.ED, Instance: in, Knowledge: k}
}

// genericErrorSpot teaches the generic priors every data professional has:
// missing markers and gross typos in otherwise clean columns are errors.
func genericErrorSpot(rng *rand.Rand, i int) LabeledExample {
	word := pick(rng, cities)
	attr := pick(rng, []string{"label", "category", "city", "name"})
	val := word
	gold := 1
	if maybe(rng, 0.4) {
		gold = 0
		if maybe(rng, 0.5) {
			val = "nan"
		} else {
			val = typo(rng, word)
			// Give context so the typo is detectable: a sibling field with
			// the clean spelling.
			return LabeledExample{Kind: tasks.ED, Instance: &data.Instance{
				ID: fmt.Sprintf("gen-ed-%d", i),
				Fields: []data.Field{
					{Name: attr, Value: val},
					{Name: "reference", Value: word},
				},
				Target:     attr,
				Candidates: []string{tasks.AnswerYes, tasks.AnswerNo},
				Gold:       gold,
			}}
		}
	}
	return LabeledExample{Kind: tasks.ED, Instance: &data.Instance{
		ID: fmt.Sprintf("gen-ed-%d", i),
		Fields: []data.Field{
			{Name: attr, Value: val},
			{Name: "reference", Value: word},
		},
		Target:     attr,
		Candidates: []string{tasks.AnswerYes, tasks.AnswerNo},
		Gold:       gold,
	}}
}

// genericExtract teaches attribute-vocabulary associations: colors answer
// color questions, brands answer brand questions, and so on.
func genericExtract(rng *rand.Rand, i int) LabeledExample {
	brand := pick(rng, brands)
	color := pick(rng, colors)
	noun := pick(rng, electronicNouns)
	size := pick(rng, capacities)
	title := strings.Join([]string{brand, color, noun, size}, " ")
	attr, gold := "Brand", brand
	switch rng.Intn(3) {
	case 1:
		attr, gold = "Color", color
	case 2:
		attr, gold = "Capacity", size
	}
	if maybe(rng, 0.15) {
		// Absent attribute → n/a.
		title = strings.Join([]string{brand, noun}, " ")
		if attr != "Brand" {
			gold = tasks.AnswerNA
		}
	}
	return LabeledExample{Kind: tasks.AVE, Instance: aveInstance(fmt.Sprintf("gen-ave-%d", i), title, attr, gold)}
}

// genericTypeClass teaches broad value-type recognition with label names
// that overlap the SOTAB space only partially (shared tokens transfer,
// exact label strings differ).
func genericTypeClass(rng *rand.Rand, i int) LabeledExample {
	types := []string{"email", "telephone", "date", "postalCode", "personName", "organization", "currency", "streetAddress"}
	typ := pick(rng, types)
	var fields []data.Field
	for j := 0; j < 4; j++ {
		fields = append(fields, data.Field{Name: "sample", Value: sotabValue(rng, typ)})
	}
	gold := -1
	for k, t := range types {
		if t == typ {
			gold = k
		}
	}
	return LabeledExample{Kind: tasks.CTA, Instance: &data.Instance{
		ID:         fmt.Sprintf("gen-cta-%d", i),
		Fields:     fields,
		Candidates: types,
		Gold:       gold,
	}}
}
