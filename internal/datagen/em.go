package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/data"
	"repro/internal/tasks"
)

// pairInstance assembles a two-entity instance with yes/no candidates.
func pairInstance(id string, a, b []data.Field, match bool) *data.Instance {
	fields := make([]data.Field, 0, len(a)+len(b))
	for _, f := range a {
		f.Entity = "A"
		fields = append(fields, f)
	}
	for _, f := range b {
		f.Entity = "B"
		fields = append(fields, f)
	}
	gold := 1
	if match {
		gold = 0
	}
	return &data.Instance{
		ID:         id,
		Fields:     fields,
		Candidates: []string{tasks.AnswerYes, tasks.AnswerNo},
		Gold:       gold,
	}
}

// product is the latent entity behind the product EM/DI/AVE datasets.
type product struct {
	brand    string
	noun     string
	adj      string
	model    string
	color    string
	capacity string
	price    float64
}

func genProduct(rng *rand.Rand) product {
	return product{
		brand:    pick(rng, brands),
		noun:     pick(rng, electronicNouns),
		adj:      pick(rng, adjectives),
		model:    modelNumber(rng),
		color:    pick(rng, colors),
		capacity: pick(rng, capacities),
		price:    10 + rng.Float64()*990,
	}
}

// title renders the product; variant=true produces the "other catalog"
// surface form: reordered words, color synonyms, occasionally dropped
// attributes — the same entity described differently.
func (p product) title(rng *rand.Rand, variant bool) string {
	color := p.color
	if variant {
		if syn, ok := colorSynonyms[color]; ok && maybe(rng, 0.5) {
			color = syn
		}
	}
	parts := []string{p.brand, p.noun, p.adj, p.model}
	if maybe(rng, 0.7) {
		parts = append(parts, color)
	}
	if maybe(rng, 0.5) {
		parts = append(parts, p.capacity)
	}
	if variant {
		// Reorder noun/adj and sometimes lowercase the brand.
		parts = []string{p.brand, p.adj, p.noun, p.model}
		if maybe(rng, 0.5) {
			parts[0] = strings.ToLower(parts[0])
		}
		if maybe(rng, 0.6) {
			parts = append(parts, color)
		}
		if maybe(rng, 0.4) {
			parts = append(parts, p.capacity)
		}
	}
	return strings.Join(parts, " ")
}

func (p product) description(rng *rand.Rand) string {
	templates := []string{
		"Buy %s %s %s online at the best price. Genuine %s products only.",
		"The %s %s %s combines everyday reliability with premium design.",
		"%s presents the %s %s, engineered for performance.",
	}
	t := pick(rng, templates)
	if strings.Count(t, "%s") == 4 {
		return fmt.Sprintf(t, p.brand, p.adj, p.noun, p.brand)
	}
	return fmt.Sprintf(t, p.brand, p.adj, p.noun)
}

func priceStr(price float64) string { return fmt.Sprintf("%.2f", price) }

// emPair builds one EM pair for product datasets. Positives are two surface
// forms of the same product (price jitter, missing descriptions, synonyms);
// hard negatives share brand and noun but differ in model number — the
// planted rule that model numbers are the primary identifiers (Table VIII,
// Abt-Buy / Walmart-Amazon knowledge).
func emPair(rng *rand.Rand, render func(p product, variant bool) []data.Field, id string, positive bool) *data.Instance {
	p := genProduct(rng)
	if positive {
		return pairInstance(id, render(p, false), render(p, true), true)
	}
	q := p
	if maybe(rng, 0.6) {
		// Hard negative: same brand/noun family, different model.
		q.model = modelNumber(rng)
		q.adj = pickOther(rng, adjectives, p.adj)
		q.price = p.price * (0.8 + rng.Float64()*0.4)
		if maybe(rng, 0.7) {
			q.capacity = pickOther(rng, capacities, p.capacity)
		}
	} else {
		q = genProduct(rng)
	}
	return pairInstance(id, render(p, false), render(q, true), false)
}

// buildPairDataset generates a matching dataset with the given positive rate.
func buildPairDataset(rng *rand.Rand, name string, kind tasks.Kind, train, test int, posRate float64,
	gen func(rng *rand.Rand, id string, positive bool) *data.Instance) *data.Dataset {
	ds := &data.Dataset{Name: name, Task: string(kind)}
	for i := 0; i < train+test; i++ {
		in := gen(rng, fmt.Sprintf("%s-%d", name, i), maybe(rng, posRate))
		if i < train {
			ds.Train = append(ds.Train, in)
		} else {
			ds.Test = append(ds.Test, in)
		}
	}
	return ds
}

// --- Downstream EM ---------------------------------------------------------

// genAbtBuyEM: products with name/description/price only (no structured
// brand or model attributes — the model number hides inside the name, which
// is why the paper's searched knowledge stresses implicit matching).
func genAbtBuyEM(rng *rand.Rand, train, test int) *Bundle {
	render := func(p product, variant bool) []data.Field {
		desc := p.description(rng)
		if variant && maybe(rng, 0.35) {
			desc = "nan" // planted: incomplete data must not imply non-match
		}
		return []data.Field{
			{Name: "name", Value: p.title(rng, variant)},
			{Name: "description", Value: desc},
			{Name: "price", Value: priceStr(p.price * (0.85 + rng.Float64()*0.3))},
		}
	}
	ds := buildPairDataset(rng, "Abt-Buy", tasks.EM, train, test, 0.22,
		func(rng *rand.Rand, id string, pos bool) *data.Instance { return emPair(rng, render, id, pos) })
	return &Bundle{DS: ds, Kind: tasks.EM, Seed: &tasks.Knowledge{
		Text: "Determine whether the two products are the same.",
	}}
}

// genWalmartAmazonEM: structured product records with a modelno attribute,
// nan-heavy descriptions, and freely differing prices (Table VIII knowledge:
// model numbers and capacity decide; nan descriptions are uninformative).
func genWalmartAmazonEM(rng *rand.Rand, train, test int) *Bundle {
	render := func(p product, variant bool) []data.Field {
		desc := p.description(rng)
		if maybe(rng, 0.45) {
			desc = "nan"
		}
		modelno := p.model
		if variant && maybe(rng, 0.15) {
			modelno = strings.ToLower(p.model)
		}
		return []data.Field{
			{Name: "title", Value: p.title(rng, variant)},
			{Name: "brand", Value: p.brand},
			{Name: "modelno", Value: modelno},
			{Name: "price", Value: priceStr(p.price * (0.7 + rng.Float64()*0.6))},
			{Name: "description", Value: desc},
		}
	}
	ds := buildPairDataset(rng, "Walmart-Amazon", tasks.EM, train, test, 0.2,
		func(rng *rand.Rand, id string, pos bool) *data.Instance { return emPair(rng, render, id, pos) })
	return &Bundle{DS: ds, Kind: tasks.EM, Seed: &tasks.Knowledge{
		Text: "Determine whether the two products are the same.",
	}}
}

// --- Upstream EM -----------------------------------------------------------

func genAmazonGoogleEM(rng *rand.Rand, train, test int) *Bundle {
	render := func(p product, variant bool) []data.Field {
		return []data.Field{
			{Name: "title", Value: p.title(rng, variant)},
			{Name: "manufacturer", Value: p.brand},
			{Name: "price", Value: priceStr(p.price * (0.8 + rng.Float64()*0.4))},
		}
	}
	_, positives, _ := PaperUpstreamSize("EM/Amazon-Google")
	samples, _, _ := PaperUpstreamSize("EM/Amazon-Google")
	posRate := float64(positives) / float64(samples)
	ds := buildPairDataset(rng, "Amazon-Google", tasks.EM, train, test, posRate,
		func(rng *rand.Rand, id string, pos bool) *data.Instance { return emPair(rng, render, id, pos) })
	return &Bundle{DS: ds, Kind: tasks.EM, Seed: &tasks.Knowledge{
		Text: "Determine whether the two software product listings are the same.",
	}}
}

func genBeerEM(rng *rand.Rand, train, test int) *Bundle {
	gen := func(rng *rand.Rand, id string, pos bool) *data.Instance {
		name := pick(rng, beerNameParts1) + " " + pick(rng, beerNameParts2)
		brewery := pick(rng, breweries)
		style := pick(rng, beerStyles)
		abv := 0.03 + rng.Float64()*0.09
		a := []data.Field{
			{Name: "beer_name", Value: name},
			{Name: "brewery", Value: brewery},
			{Name: "style", Value: style},
			{Name: "abv", Value: fmt.Sprintf("%.2f", abv)},
		}
		var b []data.Field
		if pos {
			n2 := name
			if maybe(rng, 0.4) {
				n2 = strings.ToLower(name)
			}
			br2 := brewery
			if maybe(rng, 0.3) {
				br2 = abbreviate(brewery)
			}
			b = []data.Field{
				{Name: "beer_name", Value: n2},
				{Name: "brewery", Value: br2},
				{Name: "style", Value: style},
				{Name: "abv", Value: fmt.Sprintf("%.2f", abv+(rng.Float64()-0.5)*0.004)},
			}
		} else {
			n2 := pick(rng, beerNameParts1) + " " + pick(rng, beerNameParts2)
			br2 := brewery
			if maybe(rng, 0.5) {
				br2 = pickOther(rng, breweries, brewery)
			}
			b = []data.Field{
				{Name: "beer_name", Value: n2},
				{Name: "brewery", Value: br2},
				{Name: "style", Value: pick(rng, beerStyles)},
				{Name: "abv", Value: fmt.Sprintf("%.2f", 0.03+rng.Float64()*0.09)},
			}
		}
		return pairInstance(id, a, b, pos)
	}
	ds := buildPairDataset(rng, "Beer", tasks.EM, train, test, 0.15, gen)
	return &Bundle{DS: ds, Kind: tasks.EM, Seed: &tasks.Knowledge{
		Text: "Determine whether the two beers are the same.",
	}}
}

// paper is the latent entity behind the bibliography EM datasets.
type paper struct {
	title   string
	authors []string
	venue   string
	year    int
}

func genPaper(rng *rand.Rand) paper {
	n := 2 + rng.Intn(3)
	var authors []string
	for i := 0; i < n; i++ {
		authors = append(authors, personName(rng, 0))
	}
	return paper{
		title:   fmt.Sprintf(pick(rng, paperPatterns), pick(rng, paperTopics)),
		authors: authors,
		venue:   pick(rng, venues),
		year:    2000 + rng.Intn(24),
	}
}

func (p paper) fields(rng *rand.Rand, noisy bool) []data.Field {
	title := p.title
	authors := strings.Join(p.authors, ", ")
	venue := p.venue
	year := fmt.Sprintf("%d", p.year)
	if noisy {
		if maybe(rng, 0.5) {
			title = strings.ToLower(title)
		}
		if maybe(rng, 0.5) {
			var initials []string
			for _, a := range p.authors {
				parts := strings.Fields(a)
				initials = append(initials, parts[0][:1]+". "+parts[len(parts)-1])
			}
			authors = strings.Join(initials, ", ")
		}
		if maybe(rng, 0.5) {
			venue = venueLong[p.venue]
		}
		if maybe(rng, 0.25) {
			year = "nan"
		}
	}
	return []data.Field{
		{Name: "title", Value: title},
		{Name: "authors", Value: authors},
		{Name: "venue", Value: venue},
		{Name: "year", Value: year},
	}
}

func genBibEM(rng *rand.Rand, name string, train, test int, posRate float64, noisy bool) *Bundle {
	gen := func(rng *rand.Rand, id string, pos bool) *data.Instance {
		p := genPaper(rng)
		a := p.fields(rng, false)
		var b []data.Field
		if pos {
			b = p.fields(rng, noisy)
		} else {
			q := genPaper(rng)
			if maybe(rng, 0.5) {
				// Hard negative: same authors, different paper.
				q.authors = p.authors
				q.venue = p.venue
			}
			b = q.fields(rng, noisy)
		}
		return pairInstance(id, a, b, pos)
	}
	ds := buildPairDataset(rng, name, tasks.EM, train, test, posRate, gen)
	return &Bundle{DS: ds, Kind: tasks.EM, Seed: &tasks.Knowledge{
		Text: "Determine whether the two publication records refer to the same paper.",
	}}
}

func genDBLPACMEM(rng *rand.Rand, train, test int) *Bundle {
	return genBibEM(rng, "DBLP-ACM", train, test, 885.0/5000, false)
}

func genDBLPScholarEM(rng *rand.Rand, train, test int) *Bundle {
	return genBibEM(rng, "DBLP-GoogleScholar", train, test, 924.0/5000, true)
}

func genFodorsZagatsEM(rng *rand.Rand, train, test int) *Bundle {
	gen := func(rng *rand.Rand, id string, pos bool) *data.Instance {
		name := pick(rng, lastNames) + "'s " + pick(rng, restaurantNouns)
		city := pick(rng, cities)
		area := fmt.Sprintf("%03d", 200+rng.Intn(700))
		phone := phoneNumber(rng, area)
		cuisine := pick(rng, cuisines)
		addr := fmt.Sprintf("%d %s St", 10+rng.Intn(990), pick(rng, lastNames))
		a := []data.Field{
			{Name: "name", Value: name}, {Name: "addr", Value: addr},
			{Name: "city", Value: city}, {Name: "phone", Value: phone},
			{Name: "type", Value: cuisine},
		}
		var b []data.Field
		if pos {
			n2 := name
			if maybe(rng, 0.4) {
				n2 = strings.ToLower(strings.ReplaceAll(name, "'s", "s"))
			}
			c2 := cuisine
			if maybe(rng, 0.3) {
				c2 = pickOther(rng, cuisines, cuisine)
			}
			b = []data.Field{
				{Name: "name", Value: n2}, {Name: "addr", Value: addr},
				{Name: "city", Value: city}, {Name: "phone", Value: phone},
				{Name: "type", Value: c2},
			}
		} else {
			b = []data.Field{
				{Name: "name", Value: pick(rng, lastNames) + "'s " + pick(rng, restaurantNouns)},
				{Name: "addr", Value: fmt.Sprintf("%d %s Ave", 10+rng.Intn(990), pick(rng, lastNames))},
				{Name: "city", Value: city},
				{Name: "phone", Value: phoneNumber(rng, area)},
				{Name: "type", Value: pick(rng, cuisines)},
			}
		}
		return pairInstance(id, a, b, pos)
	}
	ds := buildPairDataset(rng, "Fodors-Zagats", tasks.EM, train, test, 88.0/757, gen)
	return &Bundle{DS: ds, Kind: tasks.EM, Seed: &tasks.Knowledge{
		Text: "Determine whether the two restaurant records are the same.",
	}}
}

func genITunesAmazonEM(rng *rand.Rand, train, test int) *Bundle {
	gen := func(rng *rand.Rand, id string, pos bool) *data.Instance {
		title := pick(rng, songAdjs) + " " + pick(rng, songNouns)
		artist := pick(rng, artists)
		album := pick(rng, songAdjs) + " " + pick(rng, songNouns) + " LP"
		secs := 150 + rng.Intn(200)
		timeStr := fmt.Sprintf("%d:%02d", secs/60, secs%60)
		price := fmt.Sprintf("$%d.%02d", rng.Intn(2), 29+rng.Intn(70))
		a := []data.Field{
			{Name: "song_title", Value: title}, {Name: "artist", Value: artist},
			{Name: "album", Value: album}, {Name: "time", Value: timeStr},
			{Name: "price", Value: price},
		}
		var b []data.Field
		if pos {
			t2 := title
			if maybe(rng, 0.4) {
				t2 = title + " (Remastered)"
			}
			b = []data.Field{
				{Name: "song_title", Value: t2}, {Name: "artist", Value: artist},
				{Name: "album", Value: album}, {Name: "time", Value: timeStr},
				{Name: "price", Value: fmt.Sprintf("$%d.%02d", rng.Intn(2), 29+rng.Intn(70))},
			}
		} else {
			t2 := pick(rng, songAdjs) + " " + pick(rng, songNouns)
			ar2 := artist
			if maybe(rng, 0.4) {
				ar2 = pickOther(rng, artists, artist)
			}
			b = []data.Field{
				{Name: "song_title", Value: t2}, {Name: "artist", Value: ar2},
				{Name: "album", Value: album}, {Name: "time", Value: fmt.Sprintf("%d:%02d", 2+rng.Intn(4), rng.Intn(60))},
				{Name: "price", Value: price},
			}
		}
		return pairInstance(id, a, b, pos)
	}
	ds := buildPairDataset(rng, "iTunes-Amazon", tasks.EM, train, test, 105.0/430, gen)
	return &Bundle{DS: ds, Kind: tasks.EM, Seed: &tasks.Knowledge{
		Text: "Determine whether the two songs are the same.",
	}}
}
