package datagen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Shared vocabulary pools. All names are synthetic; overlaps with real-world
// brands are coincidental. The pools are deliberately large enough that
// 20-shot samples cannot cover them — the source of the dataset-informed
// knowledge gap the AKB component closes.

var brands = []string{
	"Acmetron", "Nexavo", "Briston", "Veltek", "Orburn", "Quantal", "Zephyrix",
	"Lumenor", "Cravex", "Polarion", "Mistvale", "Trinketbag", "Frenemy",
	"Gildway", "Harvex", "Ionica", "Jovanti", "Kelpro", "Lyrano", "Morvath",
	"Nimbusi", "Ostrix", "Pellador", "Quorvex", "Ravella", "Solvane",
	"Tavrick", "Ulmeric", "Vandor", "Wexley", "Xandrel", "Yolvia", "Zumetra",
	"Aldervane", "Bexley", "Corvani", "Drayton", "Elmworth", "Fandrel", "Grenlow",
}

var electronicNouns = []string{
	"smartphone", "blender", "headphones", "router", "monitor", "keyboard",
	"speaker", "tablet", "charger", "camera", "printer", "projector",
	"microwave", "vacuum", "toaster", "television", "soundbar", "drone",
}

var colors = []string{"black", "white", "silver", "red", "blue", "green", "gold", "gray", "purple", "teal"}

var colorSynonyms = map[string]string{
	"gray": "grey", "gold": "golden", "red": "crimson", "blue": "navy",
}

var capacities = []string{"16GB", "32GB", "64GB", "128GB", "256GB", "512GB", "1TB"}

var adjectives = []string{"pro", "max", "lite", "plus", "ultra", "mini", "classic", "prime", "neo", "air"}

var cities = []string{
	"Springfield", "Rivertown", "Lakewood", "Fairview", "Greenville",
	"Bristol", "Clinton", "Georgetown", "Madison", "Salem", "Ashland",
	"Burlington", "Dayton", "Franklin", "Milton", "Oxford", "Arlington",
	"Clayton", "Dover", "Hudson", "Jackson", "Kingston", "Lebanon",
	"Manchester", "Newport", "Oakland", "Plymouth", "Quincy", "Riverside",
}

var states = []string{"CA", "NY", "TX", "WA", "OR", "CO", "IL", "MA", "FL", "GA", "OH", "PA", "MI", "NC", "VA", "AZ"}

var beerStyles = []string{
	"American IPA", "Imperial Stout", "Pale Ale", "Pilsner", "Amber Lager",
	"Hefeweizen", "Porter", "Saison", "Brown Ale", "Witbier", "Double IPA",
	"Kolsch", "Gose", "Barleywine", "Cream Ale",
}

var beerNameParts1 = []string{
	"Hop", "Barrel", "Golden", "Midnight", "River", "Iron", "Wild", "Copper",
	"Stone", "Cloud", "Thunder", "Velvet", "Rusty", "Silver", "Smoky",
}

var beerNameParts2 = []string{
	"Storm", "Haze", "Trail", "Fox", "Anchor", "Crown", "Meadow", "Harvest",
	"Ember", "Ridge", "Falcon", "Lantern", "Forge", "Hollow", "Summit",
}

var breweries = []string{
	"Crooked Creek Brewing", "Old Harbor Brewery", "Timberline Ales",
	"Granite Peak Brewing", "Bluebird Brewworks", "Foundry Beer Co",
	"Northgate Brewing", "Cedar and Salt", "Hollow Oak Brewery",
	"Last Light Brewing", "Merchant Brewing Co", "Pinebox Brewery",
}

var flavors = []string{
	"vanilla", "chocolate", "hazelnut", "caramel", "strawberry", "mango",
	"peach", "espresso", "cinnamon", "coconut", "raspberry", "mint",
	"lavender", "honey", "pumpkin spice", "matcha",
}

var scents = []string{"citrus", "rose", "sandalwood", "jasmine", "eucalyptus", "cedar", "bergamot", "vetiver"}

var groceryNouns = []string{"coffee", "tea", "protein bar", "granola", "body wash", "candle", "lotion", "shampoo"}

var sportTypes = []string{"running", "cycling", "yoga", "basketball", "tennis", "hiking", "swimming", "golf"}

var apparelNouns = []string{"shoes", "jacket", "shorts", "leggings", "socks", "cap", "gloves", "hoodie"}

var genders = []string{"Men", "Women", "Unisex"}

var features = []string{"breathable", "waterproof", "lightweight", "insulated", "reflective", "quick-dry"}

var firstNames = []string{
	"Ada", "Boris", "Chen", "Dmitri", "Elena", "Farid", "Grace", "Hiro",
	"Ines", "Jonas", "Karim", "Lena", "Marco", "Nadia", "Omar", "Priya",
	"Quentin", "Rosa", "Sven", "Tara", "Umar", "Vera", "Wei", "Xenia",
}

var lastNames = []string{
	"Albright", "Bergstrom", "Castellanos", "Dunmore", "Eklund", "Farnsworth",
	"Granger", "Holloway", "Ivanov", "Jernigan", "Kowalski", "Lindqvist",
	"Marchetti", "Norwood", "Okafor", "Petrakis", "Quintero", "Rosenthal",
	"Sandoval", "Thackeray", "Ulrich", "Vasquez", "Whitfield", "Yamamoto",
}

var paperTopics = []string{
	"query optimization", "entity resolution", "stream processing",
	"index structures", "transaction management", "data cleaning",
	"schema matching", "graph analytics", "approximate query answering",
	"distributed joins", "crowdsourced labeling", "workload forecasting",
	"cardinality estimation", "materialized views", "provenance tracking",
}

var paperPatterns = []string{
	"Efficient %s in large-scale systems",
	"A survey of %s techniques",
	"Learning-based %s for modern databases",
	"Scalable %s with provable guarantees",
	"Adaptive %s under resource constraints",
	"Towards practical %s",
	"Revisiting %s for analytical workloads",
}

var venues = []string{"SIGMOD", "VLDB", "ICDE", "EDBT", "CIKM", "KDD"}

var venueLong = map[string]string{
	"SIGMOD": "International Conference on Management of Data",
	"VLDB":   "Very Large Data Bases",
	"ICDE":   "International Conference on Data Engineering",
	"EDBT":   "Extending Database Technology",
	"CIKM":   "Conference on Information and Knowledge Management",
	"KDD":    "Knowledge Discovery and Data Mining",
}

var restaurantNouns = []string{
	"Bistro", "Grill", "Kitchen", "Tavern", "Cantina", "Diner", "Trattoria",
	"Brasserie", "Cafe", "Chophouse", "Noodle House", "Steakhouse",
}

var cuisines = []string{"italian", "mexican", "japanese", "american", "thai", "french", "indian", "mediterranean"}

var songAdjs = []string{"Midnight", "Golden", "Broken", "Electric", "Silent", "Neon", "Crimson", "Velvet"}
var songNouns = []string{"Highway", "Hearts", "Echoes", "Rivers", "Shadows", "Summer", "Letters", "Skylines"}
var artists = []string{
	"The Glass Harbors", "Nova Reyes", "Cobalt Drive", "June Atlas",
	"Paper Lanterns", "Miles Quinn", "The Foxgloves", "Stella Marlowe",
}

// pick returns a uniformly random element.
func pick[T any](rng *rand.Rand, xs []T) T { return xs[rng.Intn(len(xs))] }

// pickOther returns a random element different from avoid (by string
// comparison of fmt.Sprint); the slice must contain at least two distinct
// values.
func pickOther[T comparable](rng *rand.Rand, xs []T, avoid T) T {
	for i := 0; i < 64; i++ {
		if x := pick(rng, xs); x != avoid {
			return x
		}
	}
	return xs[0]
}

// typo injects one character-level error (substitution, deletion,
// transposition, or duplication) into a word of s.
func typo(rng *rand.Rand, s string) string {
	rs := []rune(s)
	if len(rs) < 3 {
		return s + "x"
	}
	i := 1 + rng.Intn(len(rs)-2)
	switch rng.Intn(4) {
	case 0: // substitution
		rs[i] = rune('a' + rng.Intn(26))
	case 1: // deletion
		rs = append(rs[:i], rs[i+1:]...)
	case 2: // transposition
		rs[i-1], rs[i] = rs[i], rs[i-1]
	default: // duplication
		rs = append(rs[:i+1], rs[i:]...)
	}
	out := string(rs)
	if out == s {
		return s + "x"
	}
	return out
}

// maybe returns true with probability p.
func maybe(rng *rand.Rand, p float64) bool { return rng.Float64() < p }

// modelNumber generates an alphanumeric model identifier like "BX-2041".
func modelNumber(rng *rand.Rand) string {
	letters := "ABCDEFGHKLMNPRSTVWX"
	return fmt.Sprintf("%c%c-%d",
		letters[rng.Intn(len(letters))],
		letters[rng.Intn(len(letters))],
		100+rng.Intn(9900))
}

// phoneNumber generates a phone number with the given area code.
func phoneNumber(rng *rand.Rand, area string) string {
	return fmt.Sprintf("%s-%03d-%04d", area, 100+rng.Intn(900), rng.Intn(10000))
}

// issn generates a well-formed ISSN.
func issn(rng *rand.Rand) string {
	return fmt.Sprintf("%04d-%04d", rng.Intn(10000), rng.Intn(10000))
}

// isoDate generates an ISO date between 1998 and 2023.
func isoDate(rng *rand.Rand) (y, m, d int) {
	return 1998 + rng.Intn(26), 1 + rng.Intn(12), 1 + rng.Intn(28)
}

func isoDateStr(rng *rand.Rand) string {
	y, m, d := isoDate(rng)
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
}

func slashDateStr(rng *rand.Rand) string {
	y, m, d := isoDate(rng)
	return fmt.Sprintf("%d/%d/%02d", m, d, y%100)
}

// ampmTime renders a flight-style timestamp "7:10 a.m. Dec 1".
func ampmTime(rng *rand.Rand) string {
	months := []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}
	h := 1 + rng.Intn(12)
	mm := rng.Intn(60)
	ampm := "a.m."
	if maybe(rng, 0.5) {
		ampm = "p.m."
	}
	return fmt.Sprintf("%d:%02d %s %s %d", h, mm, ampm, pick(rng, months), 1+rng.Intn(28))
}

// badTime renders a malformed timestamp (24h format, the planted Flights
// format error).
func badTime(rng *rand.Rand) string {
	return fmt.Sprintf("%02d:%02d", rng.Intn(24), rng.Intn(60))
}

// abbreviate shortens a multi-word string to initial fragments ("New York
// City" → "NYC" style) — the benign variation the Beer knowledge says is
// not an error.
func abbreviate(s string) string {
	words := strings.Fields(s)
	if len(words) < 2 {
		if len(s) > 4 {
			return s[:4] + "."
		}
		return s
	}
	var sb strings.Builder
	for _, w := range words {
		sb.WriteByte(w[0])
	}
	return strings.ToUpper(sb.String())
}

// personName renders a random person name; style 0 = "First Last",
// 1 = "F. Last", 2 = "Last, First".
func personName(rng *rand.Rand, style int) string {
	f, l := pick(rng, firstNames), pick(rng, lastNames)
	switch style {
	case 1:
		return f[:1] + ". " + l
	case 2:
		return l + ", " + f
	default:
		return f + " " + l
	}
}
