package text

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello World", []string{"hello", "world"}},
		{"ABV: 0.05%", []string{"abv", ":", "0", ".", "05", "%"}},
		{"model-X100", []string{"model", "-", "x100"}},
		{"", nil},
		{"   ", nil},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestTokenizeCaseInsensitive(t *testing.T) {
	// Restricted to ASCII: Unicode case mapping is not an involution
	// (ϵ → Ε → ε), so the general property does not hold by design.
	f := func(raw []byte) bool {
		bs := make([]byte, len(raw))
		for i, c := range raw {
			bs[i] = c & 0x7f
		}
		s := string(bs)
		a := Tokenize(s)
		b := Tokenize(strings.ToUpper(s))
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewHasherRejectsBadDim(t *testing.T) {
	for _, dim := range []int{0, -4, 3, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewHasher(%d) should panic", dim)
				}
			}()
			NewHasher(dim)
		}()
	}
}

func TestEncodeDeterministic(t *testing.T) {
	h := NewHasher(1 << 10)
	a := h.Encode(Segment{Text: "the quick brown fox", Weight: 1})
	b := h.Encode(Segment{Text: "the quick brown fox", Weight: 1})
	if a.NNZ() != b.NNZ() {
		t.Fatal("same text must produce same encoding")
	}
	for i := range a.Idx {
		if a.Idx[i] != b.Idx[i] || a.Val[i] != b.Val[i] {
			t.Fatal("same text must produce same encoding")
		}
	}
}

func TestEncodeNormalized(t *testing.T) {
	h := NewHasher(1 << 10)
	v := h.Encode(Segment{Text: "some record with several attribute values", Weight: 3})
	if math.Abs(v.Norm()-1) > 1e-9 {
		t.Fatalf("encoded norm = %v, want 1", v.Norm())
	}
}

func TestEncodeIndicesInRange(t *testing.T) {
	h := NewHasher(1 << 8)
	f := func(s string) bool {
		v := h.Encode(Segment{Text: s, Weight: 1})
		for _, idx := range v.Idx {
			if idx < 0 || idx >= 1<<8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Similar texts should have higher cosine similarity than unrelated texts —
// the property the dual encoder relies on.
func TestEncodeSimilarity(t *testing.T) {
	h := NewHasher(DefaultDim)
	a := h.Encode(Segment{Text: "apple iphone 12 pro max 256gb silver", Weight: 1})
	b := h.Encode(Segment{Text: "apple iphone 12 pro 256 gb silver smartphone", Weight: 1})
	c := h.Encode(Segment{Text: "craft beer ipa hoppy bitterness 65 ibu", Weight: 1})
	simAB := a.Dot(b)
	simAC := a.Dot(c)
	if simAB <= simAC {
		t.Fatalf("similar texts cosine %v should exceed unrelated %v", simAB, simAC)
	}
	if simAB < 0.3 {
		t.Fatalf("near-duplicate similarity too low: %v", simAB)
	}
}

func TestFieldFeaturesDistinguishAttributes(t *testing.T) {
	h := NewHasher(DefaultDim)
	a := h.Encode(Segment{Field: "city", Text: "springfield", Weight: 1})
	b := h.Encode(Segment{Field: "name", Text: "springfield", Weight: 1})
	// Shared bare-token features give some overlap but not identity.
	if sim := a.Dot(b); sim > 0.99 {
		t.Fatalf("different fields should encode differently, cosine = %v", sim)
	}
}

func TestCountTokens(t *testing.T) {
	if got := CountTokens(""); got != 0 {
		t.Fatalf("empty = %d tokens", got)
	}
	if got := CountTokens("hello world"); got != 2 {
		t.Fatalf("two words = %d tokens", got)
	}
	// Long words get extra subword tokens.
	long := CountTokens("internationalization")
	if long < 2 {
		t.Fatalf("long word should count as multiple tokens, got %d", long)
	}
	// Monotone in concatenation.
	a, b := "schema matching of columns", "with descriptions"
	if CountTokens(a+" "+b) != CountTokens(a)+CountTokens(b) {
		t.Fatalf("token count should be additive over whitespace concatenation")
	}
}

func TestEmptyEncode(t *testing.T) {
	h := NewHasher(1 << 10)
	v := h.Encode(Segment{Text: "", Weight: 1})
	if v.NNZ() != 0 {
		t.Fatalf("empty text should produce empty vector, nnz=%d", v.NNZ())
	}
	if v.Norm() != 0 {
		t.Fatalf("empty vector norm = %v", v.Norm())
	}
}
