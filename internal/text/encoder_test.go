package text

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// sampleSegs covers every extractor path: bare features, field features,
// isolated features, unicode, punctuation-heavy DP values, long tokens
// (trigrams), and repeated tokens (bigram + duplicate-bucket accumulation).
func sampleSegs() [][]Segment {
	return [][]Segment{
		{{Text: "Sony VAIO PCG-71211M 4.5% ABV", Weight: 1}},
		{{Field: "Title", Text: "canon eos 5d mark III body only", Weight: 1.5}},
		{{Field: "ISSN", Text: "0302-9743", Weight: 0.7}, {Text: "springer verlag", Weight: 0.3}},
		{{Isolated: true, Field: "know", Text: "Answer yes when the ABV values match.", Weight: 0.12}},
		{{Text: "ÅNGSTRÖM Straße 東京都 café", Weight: 1}},
		{{Text: "aaa aaa aaa aaa", Weight: 1}}, // duplicate buckets, order-sensitive sums
		{
			{Field: "description", Text: "a midsize sedan with GPS-NAV-9000 rev2", Weight: 1},
			{Isolated: true, Field: "task", Text: "entity matching", Weight: 0.25},
			{Text: "yes", Weight: 1.5},
		},
		{{Text: "", Weight: 1}},
		{{Field: "x", Text: "!", Weight: 1}},
	}
}

// requireBitIdentical fails unless the two sparse vectors are exactly equal,
// bit for bit.
func requireBitIdentical(t *testing.T, want, got *tensor.Sparse, label string) {
	t.Helper()
	if len(want.Idx) != len(got.Idx) {
		t.Fatalf("%s: nnz %d vs %d", label, len(want.Idx), len(got.Idx))
	}
	for i := range want.Idx {
		if want.Idx[i] != got.Idx[i] {
			t.Fatalf("%s: idx[%d] %d vs %d", label, i, want.Idx[i], got.Idx[i])
		}
		if math.Float64bits(want.Val[i]) != math.Float64bits(got.Val[i]) {
			t.Fatalf("%s: val[%d] %x vs %x", label, i,
				math.Float64bits(want.Val[i]), math.Float64bits(got.Val[i]))
		}
	}
}

// TestEncoderMatchesHasherEncode pins the core contract: the zero-alloc
// Encoder produces bit-identical vectors to the allocating Hasher.Encode.
func TestEncoderMatchesHasherEncode(t *testing.T) {
	h := NewHasher(DefaultDim)
	e := NewEncoder(h)
	var got tensor.Sparse
	for i, segs := range sampleSegs() {
		want := h.Encode(segs...)
		e.EncodeTo(&got, segs)
		requireBitIdentical(t, want, &got, "case "+string(rune('A'+i)))
	}
}

// TestEncoderReuseIsClean checks that state from one EncodeTo call cannot
// leak into the next.
func TestEncoderReuseIsClean(t *testing.T) {
	h := NewHasher(1 << 10)
	e := NewEncoder(h)
	var got tensor.Sparse
	e.EncodeTo(&got, []Segment{{Text: "completely different text first", Weight: 2}})
	segs := []Segment{{Field: "brand", Text: "acme 9000", Weight: 1}}
	e.EncodeTo(&got, segs)
	requireBitIdentical(t, h.Encode(segs...), &got, "after reuse")
}

// TestEncoderZeroAlloc pins the whole point: steady-state serialization on
// the serve path allocates nothing.
func TestEncoderZeroAlloc(t *testing.T) {
	h := NewHasher(DefaultDim)
	e := NewEncoder(h)
	segs := []Segment{
		{Field: "title", Text: "dell latitude e6420 14in notebook refurbished", Weight: 1},
		{Isolated: true, Field: "know", Text: "prefer exact model number matches", Weight: 0.12},
		{Text: "yes", Weight: 1.5},
	}
	var dst tensor.Sparse
	e.EncodeTo(&dst, segs) // warm the buffers
	allocs := testing.AllocsPerRun(100, func() {
		e.EncodeTo(&dst, segs)
	})
	if allocs != 0 {
		t.Fatalf("EncodeTo allocates %.1f objects/op at steady state, want 0", allocs)
	}
}

// FuzzEncoderEquivalence drives arbitrary (field, text, weight, mode) inputs
// through both serializers and requires bit-identical output — the seed
// corpus covers the unicode, punctuation, and invalid-UTF-8 edges.
func FuzzEncoderEquivalence(f *testing.F) {
	f.Add("title", "sony vaio pcg-71211m", 1.0, byte(0))
	f.Add("", "4.5% ABV — draught", 0.5, byte(1))
	f.Add("know", "Answer yes when values match.", 0.12, byte(2))
	f.Add("Straße", "ÅNGSTRÖM 東京都 café", 2.0, byte(1))
	f.Add("b", "\xff\xfe broken utf8 \x80", 1.0, byte(1))
	f.Add("x", "aaaa bbbb aaaa bbbb", -1.5, byte(0))
	f.Add("", "", 0.0, byte(0))
	h := NewHasher(1 << 11)
	f.Fuzz(func(t *testing.T, field, text string, w float64, mode byte) {
		seg := Segment{Field: field, Text: text, Weight: w}
		switch mode % 3 {
		case 0:
			seg.Field = ""
		case 2:
			seg.Isolated = true
		}
		segs := []Segment{seg, {Text: text, Weight: w / 2}}
		e := NewEncoder(h)
		var got tensor.Sparse
		e.EncodeTo(&got, segs)
		want := h.Encode(segs...)
		if len(want.Idx) != len(got.Idx) {
			t.Fatalf("nnz %d vs %d", len(want.Idx), len(got.Idx))
		}
		for i := range want.Idx {
			if want.Idx[i] != got.Idx[i] || math.Float64bits(want.Val[i]) != math.Float64bits(got.Val[i]) {
				t.Fatalf("divergence at %d: (%d,%x) vs (%d,%x)", i,
					want.Idx[i], math.Float64bits(want.Val[i]),
					got.Idx[i], math.Float64bits(got.Val[i]))
			}
		}
	})
}
