package text

import (
	"unicode"
	"unicode/utf8"

	"repro/internal/tensor"
)

// This file is the zero-allocation twin of the Hasher feature extractors.
// Hasher.Encode allocates on every call — a fresh builder map, a token
// string per word, and a concatenated string per n-gram ("u:"+t, "b:"+a+" "+b)
// just to feed FNV. On the serve hot path those concatenations dominate the
// allocation profile, so Encoder streams the same byte sequences through the
// same FNV-1a state instead: hash("u:"+t) == fnvAddBytes(fnvAddString(h,"u:"),t)
// by construction, and feature-emission ORDER is kept identical to the Hasher
// methods so duplicate-bucket float accumulation sums in the same order.
// The result is bit-identical to Hasher.Encode — pinned by the equivalence
// and fuzz tests — with zero steady-state allocations.

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// fnvAddString folds s into an in-flight FNV-1a state.
func fnvAddString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// fnvAddBytes folds p into an in-flight FNV-1a state.
func fnvAddBytes(h uint64, p []byte) uint64 {
	for _, c := range p {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// fnvAddLower folds the UTF-8 encoding of unicode.ToLower of each rune of s
// into the state — equivalent to fnvAddString(h, strings.ToLower(s)) without
// materializing the lowered string.
func fnvAddLower(h uint64, s string) uint64 {
	for _, r := range s {
		r = unicode.ToLower(r)
		if r < utf8.RuneSelf {
			h ^= uint64(byte(r))
			h *= fnvPrime
			continue
		}
		var buf [4]byte
		n := utf8.EncodeRune(buf[:], r)
		h = fnvAddBytes(h, buf[:n])
	}
	return h
}

// addHashed is addFeature after the hash: bucket + sign from a finished
// FNV-1a state.
func (h *Hasher) addHashed(b *tensor.SparseBuilder, hv uint64, w float64) {
	idx := int32(hv & uint64(h.dim-1))
	if hv&(1<<62) != 0 {
		w = -w
	}
	b.Add(idx, w)
}

// addHashedDense is addHashed against the Encoder's dense builder — same
// bucket, same sign flip, different accumulator.
func (h *Hasher) addHashedDense(b *tensor.DenseBuilder, hv uint64, w float64) {
	idx := int32(hv & uint64(h.dim-1))
	if hv&(1<<62) != 0 {
		w = -w
	}
	b.Add(idx, w)
}

// tokSpan is one token as a [lo,hi) byte range into Encoder.low.
type tokSpan struct{ lo, hi int32 }

// Encoder hashes weighted text segments into sparse vectors without
// per-call allocation. It owns a reused lowered-byte buffer, token span
// list, and sparse builder; one Encoder serves one goroutine (on the serve
// path the per-adapter batcher is the serialization point).
type Encoder struct {
	h     *Hasher
	b     *tensor.DenseBuilder
	low   []byte
	spans []tokSpan
}

// NewEncoder returns an Encoder producing vectors bit-identical to h.Encode.
// The dense builder trades 12 bytes per hash dimension of resident scratch
// for map-free accumulation — the right trade for a persistent per-goroutine
// encoder, which is the only way Encoders are used.
func NewEncoder(h *Hasher) *Encoder {
	return &Encoder{h: h, b: tensor.NewDenseBuilder(h.dim)}
}

// EncodeTo builds the normalized sparse encoding of segs into dst, reusing
// dst's backing slices. The output is bit-identical to h.Encode(segs...).
func (e *Encoder) EncodeTo(dst *tensor.Sparse, segs []Segment) {
	for i := range segs {
		seg := &segs[i]
		switch {
		case seg.Isolated:
			e.isolatedFeatures(seg.Field, seg.Text, seg.Weight)
		case seg.Field != "":
			e.fieldFeatures(seg.Field, seg.Text, seg.Weight)
		default:
			e.features(seg.Text, seg.Weight)
		}
	}
	e.b.BuildInto(dst)
	dst.Normalize()
}

// tokenize fills e.low/e.spans with the lowered tokens of s, reproducing
// Tokenize byte for byte: runs of letters/digits form tokens, every other
// non-space rune is a single-rune token. Lowering per rune matches
// strings.ToLower (which is strings.Map(unicode.ToLower, s)).
func (e *Encoder) tokenize(s string) {
	e.low = e.low[:0]
	e.spans = e.spans[:0]
	start := -1
	for _, r := range s {
		r = unicode.ToLower(r)
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			if start < 0 {
				start = len(e.low)
			}
			e.low = utf8.AppendRune(e.low, r)
		case unicode.IsSpace(r):
			if start >= 0 {
				e.spans = append(e.spans, tokSpan{int32(start), int32(len(e.low))})
				start = -1
			}
		default:
			if start >= 0 {
				e.spans = append(e.spans, tokSpan{int32(start), int32(len(e.low))})
				start = -1
			}
			lo := len(e.low)
			e.low = utf8.AppendRune(e.low, r)
			e.spans = append(e.spans, tokSpan{int32(lo), int32(len(e.low))})
		}
	}
	if start >= 0 {
		e.spans = append(e.spans, tokSpan{int32(start), int32(len(e.low))})
	}
}

// tok returns token i's bytes.
func (e *Encoder) tok(i int) []byte {
	sp := e.spans[i]
	return e.low[sp.lo:sp.hi]
}

// features mirrors Hasher.Features: unigrams, adjacent bigrams, character
// trigrams of long tokens — same order, same weights.
func (e *Encoder) features(s string, w float64) {
	e.tokenize(s)
	for i := range e.spans {
		t := e.tok(i)
		e.h.addHashedDense(e.b, fnvAddBytes(fnvAddString(fnvOffset, "u:"), t), w)
		if i > 0 {
			hv := fnvAddBytes(fnvAddString(fnvOffset, "b:"), e.tok(i-1))
			hv = fnvAddString(hv, " ")
			e.h.addHashedDense(e.b, fnvAddBytes(hv, t), w)
		}
		if len(t) > 3 {
			for j := 0; j+3 <= len(t); j++ {
				e.h.addHashedDense(e.b, fnvAddBytes(fnvAddString(fnvOffset, "c:"), t[j:j+3]), w/2)
			}
		}
	}
}

// fieldFeatures mirrors Hasher.FieldFeatures: prefixed unigrams and bigrams
// under "f:"+lower(field)+":", then the bare features at half weight.
func (e *Encoder) fieldFeatures(field, value string, w float64) {
	pre := fnvAddString(fnvOffset, "f:")
	pre = fnvAddLower(pre, field)
	pre = fnvAddString(pre, ":")
	e.tokenize(value)
	for i := range e.spans {
		t := e.tok(i)
		e.h.addHashedDense(e.b, fnvAddBytes(pre, t), w)
		if i > 0 {
			hv := fnvAddBytes(pre, e.tok(i-1))
			hv = fnvAddString(hv, " ")
			e.h.addHashedDense(e.b, fnvAddBytes(hv, t), w)
		}
	}
	e.features(value, w/2)
}

// isolatedFeatures mirrors Hasher.IsolatedFeatures: prefixed unigrams and
// bigrams under "iso:"+ns+":" with no bare tokens.
func (e *Encoder) isolatedFeatures(ns, s string, w float64) {
	pre := fnvAddString(fnvOffset, "iso:")
	pre = fnvAddString(pre, ns)
	pre = fnvAddString(pre, ":")
	e.tokenize(s)
	for i := range e.spans {
		t := e.tok(i)
		e.h.addHashedDense(e.b, fnvAddBytes(pre, t), w)
		if i > 0 {
			hv := fnvAddBytes(pre, e.tok(i-1))
			hv = fnvAddString(hv, " ")
			e.h.addHashedDense(e.b, fnvAddBytes(hv, t), w)
		}
	}
}
