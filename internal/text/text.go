// Package text implements the textual front end of the DP-LM substrate:
// tokenization, character-n-gram and word feature hashing into a fixed
// dimensional sparse space, and token counting for the cost analysis of
// Table III.
//
// The hashing encoder plays the role a transformer's tokenizer + embedding
// layer plays in the paper's models: any string — instructions, knowledge,
// serialized records, candidate answers — becomes a point in the same sparse
// feature space, so prompt edits (such as AKB knowledge insertion) genuinely
// move the model input.
package text

import (
	"strings"
	"unicode"

	"repro/internal/tensor"
)

// DefaultDim is the default hashed feature dimensionality. 2^13 buckets keep
// collisions rare for the few hundred n-grams a DP prompt produces while
// keeping embedding tables small enough for CPU training.
const DefaultDim = 1 << 13

// Hasher maps strings to sparse feature vectors by hashing word unigrams,
// word bigrams and character trigrams into Dim buckets with a sign hash
// (standard feature hashing, Weinberger et al.). The zero value is not
// usable; construct with NewHasher.
type Hasher struct {
	dim int
}

// NewHasher returns a Hasher with the given dimensionality. dim must be a
// positive power of two.
func NewHasher(dim int) *Hasher {
	if dim <= 0 || dim&(dim-1) != 0 {
		panic("text: hasher dim must be a positive power of two")
	}
	return &Hasher{dim: dim}
}

// Dim returns the feature dimensionality.
func (h *Hasher) Dim() int { return h.dim }

// fnv1a is the 64-bit FNV-1a hash, inlined so feature extraction allocates
// nothing per n-gram.
func fnv1a(s string) uint64 {
	return fnvAddString(fnvOffset, s)
}

// addFeature hashes s into the builder with weight w, using one bit of the
// hash as a sign to make hashing approximately inner-product preserving.
func (h *Hasher) addFeature(b *tensor.SparseBuilder, s string, w float64) {
	h.addHashed(b, fnv1a(s), w)
}

// Tokenize lower-cases s and splits it into word tokens. Runs of letters or
// digits form tokens; every other non-space rune becomes a single-rune token
// (punctuation carries signal in DP data — "%" in an ABV value, "-" in an
// ISSN — so it must not be silently dropped).
func Tokenize(s string) []string {
	var toks []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
	}
	for _, r := range strings.ToLower(s) {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			cur.WriteRune(r)
		case unicode.IsSpace(r):
			flush()
		default:
			flush()
			toks = append(toks, string(r))
		}
	}
	flush()
	return toks
}

// Features hashes s into the builder: word unigrams (weight w), adjacent
// word bigrams (weight w), and character trigrams of each word (weight w/2,
// capturing subword structure such as model-number fragments).
func (h *Hasher) Features(b *tensor.SparseBuilder, s string, w float64) {
	toks := Tokenize(s)
	for i, t := range toks {
		h.addFeature(b, "u:"+t, w)
		if i > 0 {
			h.addFeature(b, "b:"+toks[i-1]+" "+t, w)
		}
		if len(t) > 3 {
			for j := 0; j+3 <= len(t); j++ {
				h.addFeature(b, "c:"+t[j:j+3], w/2)
			}
		}
	}
}

// FieldFeatures hashes a (field, value) pair so the same value in different
// attributes produces different features; DP tasks depend on knowing which
// attribute a value sits in.
func (h *Hasher) FieldFeatures(b *tensor.SparseBuilder, field, value string, w float64) {
	toks := Tokenize(value)
	prefix := "f:" + strings.ToLower(field) + ":"
	for i, t := range toks {
		h.addFeature(b, prefix+t, w)
		if i > 0 {
			h.addFeature(b, prefix+toks[i-1]+" "+t, w)
		}
	}
	// Also hash the bare tokens so cross-attribute overlap (e.g. the same
	// model number appearing in two entities' titles) is visible.
	h.Features(b, value, w/2)
}

// IsolatedFeatures hashes text under a dedicated namespace with NO bare
// tokens, so the segment cannot spuriously overlap candidate encodings.
// Knowledge prose uses this: the sentence "answer yes when ..." must shift
// the input representation without directly pumping the "yes" candidate's
// token similarity.
func (h *Hasher) IsolatedFeatures(b *tensor.SparseBuilder, ns, s string, w float64) {
	toks := Tokenize(s)
	prefix := "iso:" + ns + ":"
	for i, t := range toks {
		h.addFeature(b, prefix+t, w)
		if i > 0 {
			h.addFeature(b, prefix+toks[i-1]+" "+t, w)
		}
	}
}

// Encode builds a normalized sparse vector from any number of weighted text
// segments. Use one Segment per prompt part so parts can be weighted
// differently (e.g. knowledge vs record).
func (h *Hasher) Encode(segs ...Segment) *tensor.Sparse {
	b := tensor.NewSparseBuilder()
	for _, seg := range segs {
		switch {
		case seg.Isolated:
			h.IsolatedFeatures(b, seg.Field, seg.Text, seg.Weight)
		case seg.Field != "":
			h.FieldFeatures(b, seg.Field, seg.Text, seg.Weight)
		default:
			h.Features(b, seg.Text, seg.Weight)
		}
	}
	s := b.Build()
	s.Normalize()
	return s
}

// Segment is one weighted piece of text to encode. If Field is non-empty the
// segment is hashed as a (field, value) pair; if Isolated is set it is
// hashed into a private namespace (see IsolatedFeatures).
type Segment struct {
	Field    string
	Text     string
	Weight   float64
	Isolated bool
}

// CountTokens approximates LLM tokenizer counts the way the paper's Table
// III does: one token per word piece, counting words and punctuation runs.
// Empirically this tracks GPT-style BPE counts within ~15% on tabular
// prompts, which is accurate enough for a cost comparison.
func CountTokens(s string) int {
	n := len(Tokenize(s))
	// BPE splits long alphanumeric words; approximate with one extra token
	// per 6 characters beyond the first 6.
	for _, t := range Tokenize(s) {
		if len(t) > 6 {
			n += (len(t) - 1) / 6
		}
	}
	return n
}
