package jobs

import (
	"strings"
	"testing"
)

const jsonSpec = `{
  "adapter": "EM/Walmart-Amazon",
  "input": {"path": "in.json"},
  "output": {"path": "out.csv"}
}`

const yamlSpec = `# same job, YAML spelling
adapter: EM/Walmart-Amazon
input:
  path: in.json
output:
  path: out.csv
`

// Same job again: keys reordered, formats and every default spelled out.
const jsonSpecReordered = `{
  "output": {"format": "csv", "path": "out.csv"},
  "shards": 4,
  "limits": {"row_timeout_s": 120, "concurrency": 8, "shard_parallelism": 2, "retries": 2},
  "input": {"split": "test", "format": "json", "path": "in.json"},
  "adapter": "EM/Walmart-Amazon"
}`

func TestSpecHashStable(t *testing.T) {
	specs := map[string]string{
		"json":           jsonSpec,
		"yaml":           yamlSpec,
		"json-reordered": jsonSpecReordered,
	}
	hashes := map[string]string{}
	for name, blob := range specs {
		sp, err := ParseSpec([]byte(blob))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		hashes[name] = sp.Hash()
		if got := sp.ID(); got != "j"+sp.Hash()[:16] {
			t.Fatalf("%s: ID %q does not match hash %q", name, got, sp.Hash())
		}
	}
	if hashes["json"] != hashes["yaml"] || hashes["json"] != hashes["json-reordered"] {
		t.Fatalf("hash not stable across encodings: %v", hashes)
	}

	// A materially different spec must hash differently.
	other, err := ParseSpec([]byte(strings.Replace(jsonSpec, `"out.csv"`, `"other.csv"`, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if other.Hash() == hashes["json"] {
		t.Fatalf("different specs share hash %s", other.Hash())
	}
}

func TestSpecNormalizeDefaults(t *testing.T) {
	sp, err := ParseSpec([]byte(yamlSpec))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Input.Format != "json" || sp.Input.Split != "test" {
		t.Fatalf("input defaults not applied: %+v", sp.Input)
	}
	if sp.Output.Format != "csv" {
		t.Fatalf("output format not defaulted: %+v", sp.Output)
	}
	if sp.Shards != 4 || sp.Limits.Concurrency != 8 || sp.Limits.ShardParallelism != 2 ||
		sp.Limits.Retries != 2 || sp.Limits.RowTimeoutS != 120 {
		t.Fatalf("defaults not applied: shards=%d limits=%+v", sp.Shards, sp.Limits)
	}
}

func TestSpecNormalizeErrors(t *testing.T) {
	cases := map[string]string{
		"bad adapter":        `{"adapter":"nope","input":{"path":"a.json"},"output":{"path":"o.csv"}}`,
		"missing input":      `{"adapter":"EM/A","output":{"path":"o.csv"}}`,
		"missing output":     `{"adapter":"EM/A","input":{"path":"a.json"}}`,
		"unknown field":      `{"adapter":"EM/A","input":{"path":"a.json"},"output":{"path":"o.csv"},"bogus":1}`,
		"split on csv":       `{"adapter":"EM/A","input":{"path":"a.csv","label":"l","split":"test"},"output":{"path":"o.csv"}}`,
		"kind on json":       `{"adapter":"EM/A","input":{"path":"a.json","kind":"em"},"output":{"path":"o.csv"}}`,
		"em csv sans label":  `{"adapter":"EM/A","input":{"path":"a.csv"},"output":{"path":"o.csv"}}`,
		"bad output format":  `{"adapter":"EM/A","input":{"path":"a.json"},"output":{"path":"o.xml"}}`,
		"negative shards":    `{"adapter":"EM/A","input":{"path":"a.json"},"output":{"path":"o.csv"},"shards":-1}`,
		"csv kind from task": `{"adapter":"TX/A","input":{"path":"a.csv"},"output":{"path":"o.csv"}}`,
	}
	for name, blob := range cases {
		if _, err := ParseSpec([]byte(blob)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

func TestYAMLParser(t *testing.T) {
	sp, err := ParseSpec([]byte(`
# a fuller spelling
adapter: "EM/Walmart-Amazon"
input:
  path: 'in.json'   # quoted path
  split: train
output:
  path: out.jsonl
shards: 8
limits:
  concurrency: 3
  max_row_failures: 2
`))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Input.Split != "train" || sp.Input.Path != "in.json" || sp.Shards != 8 ||
		sp.Output.Format != "jsonl" || sp.Limits.Concurrency != 3 || sp.Limits.MaxRowFailures != 2 {
		t.Fatalf("yaml spec misparsed: %+v", sp)
	}

	bad := map[string]string{
		"tabs":      "adapter: EM/A\n\tinput: x\n",
		"sequence":  "adapter: EM/A\ninput:\n  - a.json\n",
		"duplicate": "adapter: EM/A\nadapter: EM/B\n",
		"no colon":  "adapter EM/A\n",
	}
	for name, blob := range bad {
		if _, err := parseYAML([]byte(blob)); err == nil {
			t.Errorf("%s: yaml parsed without error", name)
		}
	}
}
