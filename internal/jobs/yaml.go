package jobs

import (
	"fmt"
	"strconv"
	"strings"
)

// parseYAML parses the small YAML subset job specs need — nested maps by
// indentation with scalar leaves (plain, single- or double-quoted strings,
// numbers, booleans, null), comments, and blank lines — into the same
// map[string]any shape encoding/json produces, so both formats funnel into
// one decode path. Sequences, anchors, flow style, and multi-document
// streams are out of scope: a spec that needs them should be JSON.
func parseYAML(blob []byte) (map[string]any, error) {
	root := map[string]any{}
	type frame struct {
		indent int
		m      map[string]any
	}
	stack := []frame{{indent: -1, m: root}}
	for ln, raw := range strings.Split(string(blob), "\n") {
		if strings.Contains(raw, "\t") {
			return nil, fmt.Errorf("jobs: yaml line %d: tabs are not allowed for indentation", ln+1)
		}
		trimmed := strings.TrimSpace(raw)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") || trimmed == "---" {
			continue
		}
		indent := len(raw) - len(strings.TrimLeft(raw, " "))
		if strings.HasPrefix(trimmed, "- ") || trimmed == "-" {
			return nil, fmt.Errorf("jobs: yaml line %d: sequences are not supported (use JSON)", ln+1)
		}
		key, rest, ok := strings.Cut(trimmed, ":")
		if !ok || strings.TrimSpace(key) == "" {
			return nil, fmt.Errorf("jobs: yaml line %d: expected `key: value`, got %q", ln+1, trimmed)
		}
		key = strings.Trim(strings.TrimSpace(key), `"'`)
		rest = strings.TrimSpace(rest)

		for len(stack) > 1 && indent <= stack[len(stack)-1].indent {
			stack = stack[:len(stack)-1]
		}
		m := stack[len(stack)-1].m
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("jobs: yaml line %d: duplicate key %q", ln+1, key)
		}
		if rest == "" || strings.HasPrefix(rest, "#") {
			child := map[string]any{}
			m[key] = child
			stack = append(stack, frame{indent: indent, m: child})
			continue
		}
		val, err := yamlScalar(rest)
		if err != nil {
			return nil, fmt.Errorf("jobs: yaml line %d: %w", ln+1, err)
		}
		m[key] = val
	}
	return root, nil
}

// yamlScalar parses one scalar value, stripping a trailing comment from
// unquoted forms.
func yamlScalar(s string) (any, error) {
	switch {
	case strings.HasPrefix(s, `"`):
		end := strings.LastIndex(s, `"`)
		if end == 0 {
			return nil, fmt.Errorf("unterminated double-quoted string %q", s)
		}
		if tail := strings.TrimSpace(s[end+1:]); tail != "" && !strings.HasPrefix(tail, "#") {
			return nil, fmt.Errorf("trailing content after quoted string: %q", s)
		}
		return strconv.Unquote(s[:end+1])
	case strings.HasPrefix(s, `'`):
		end := strings.LastIndex(s, `'`)
		if end == 0 {
			return nil, fmt.Errorf("unterminated single-quoted string %q", s)
		}
		if tail := strings.TrimSpace(s[end+1:]); tail != "" && !strings.HasPrefix(tail, "#") {
			return nil, fmt.Errorf("trailing content after quoted string: %q", s)
		}
		return strings.ReplaceAll(s[1:end], "''", "'"), nil
	}
	if i := strings.Index(s, " #"); i >= 0 {
		s = strings.TrimSpace(s[:i])
	}
	switch s {
	case "true":
		return true, nil
	case "false":
		return false, nil
	case "null", "~":
		return nil, nil
	}
	if n, err := strconv.ParseFloat(s, 64); err == nil {
		return n, nil
	}
	return s, nil
}
