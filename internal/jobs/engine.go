package jobs

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/csv"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/data"
	"repro/internal/dataio"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Engine runs job plans against a Resolver. One engine serves both faces
// of the tier: the Manager wraps it for /v1/jobs, the CLI drives it
// directly. It is stateless between calls — all durable state lives in
// the checkpoint log.
type Engine struct {
	// Res answers rows: the local Registry offline, the cluster Router at
	// fleet scale. Concurrent row predicts through it ride the per-adapter
	// micro-batch loop (the BatchPredictor seam) automatically.
	Res serve.Resolver
	// CheckpointDir holds the per-job checkpoint logs. Required for Run;
	// Plan never touches it.
	CheckpointDir string
	// Rec threads observability through the engine (job.plan / job.shard /
	// job.commit spans, jobs.* metrics). Nil disables it.
	Rec *obs.Recorder
	// OnCommit, when set, observes every durable shard commit with the
	// total committed count (resumed shards included) — the selftest's
	// kill-mid-flight hook.
	OnCommit func(shard, committed int)
}

// ShardRange is one contiguous row range [Start, End) of the input.
type ShardRange struct {
	Index int `json:"index"`
	Start int `json:"start"`
	End   int `json:"end"`
}

// Plan is the resolved form of a spec against its input: rows loaded and
// content-hashed, shard layout fixed. Planning is side-effect free (the
// -dry-run face); the same spec and input always produce the same plan.
type Plan struct {
	Spec           *Spec        `json:"spec"`
	ID             string       `json:"id"`
	SpecHash       string       `json:"spec_hash"`
	InputSHA       string       `json:"input_sha"`
	Rows           int          `json:"rows"`
	Shards         []ShardRange `json:"shards"`
	EstimatedCalls int          `json:"estimated_calls"`

	ins []*data.Instance
}

// Plan loads the spec's input and lays out the shards. Shards are clamped
// to the row count, sized within one row of each other, in input order.
func (e *Engine) Plan(sp *Spec) (*Plan, error) {
	_, span := e.Rec.StartSpan("job.plan")
	defer span.End()
	span.SetAttr("adapter", sp.Adapter)
	ins, sha, err := loadInput(sp)
	if err != nil {
		span.SetAttr("error", true)
		return nil, err
	}
	if len(ins) == 0 {
		span.SetAttr("error", true)
		return nil, fmt.Errorf("jobs: input %s selects no rows", sp.Input.Path)
	}
	shards := sp.Shards
	if shards > len(ins) {
		shards = len(ins)
	}
	p := &Plan{
		Spec:           sp,
		ID:             sp.ID(),
		SpecHash:       sp.Hash(),
		InputSHA:       sha,
		Rows:           len(ins),
		EstimatedCalls: len(ins),
		ins:            ins,
	}
	base, rem := len(ins)/shards, len(ins)%shards
	start := 0
	for i := 0; i < shards; i++ {
		n := base
		if i < rem {
			n++
		}
		p.Shards = append(p.Shards, ShardRange{Index: i, Start: start, End: start + n})
		start += n
	}
	span.SetAttr("rows", p.Rows)
	span.SetAttr("shards", len(p.Shards))
	return p, nil
}

// Render writes the human/diffable dry-run view of a plan: deterministic
// (no timestamps, no absolute state), so the check.sh gate can assert the
// same spec plans byte-identically.
func (p *Plan) Render(w *strings.Builder) {
	fmt.Fprintf(w, "job %s (spec %s)\n", p.ID, p.SpecHash[:16])
	fmt.Fprintf(w, "  adapter:   %s\n", p.Spec.Adapter)
	fmt.Fprintf(w, "  input:     %s (%s, %d rows, sha256 %s)\n", p.Spec.Input.Path, p.Spec.Input.Format, p.Rows, p.InputSHA[:16])
	fmt.Fprintf(w, "  output:    %s (%s)\n", p.Spec.Output.Path, p.Spec.Output.Format)
	fmt.Fprintf(w, "  limits:    concurrency=%d shard_parallelism=%d retries=%d max_row_failures=%d row_timeout_s=%g\n",
		p.Spec.Limits.Concurrency, p.Spec.Limits.ShardParallelism, p.Spec.Limits.Retries,
		p.Spec.Limits.MaxRowFailures, p.Spec.Limits.RowTimeoutS)
	fmt.Fprintf(w, "  estimate:  %d predict calls over %d shards\n", p.EstimatedCalls, len(p.Shards))
	for _, sh := range p.Shards {
		fmt.Fprintf(w, "  shard %3d: rows [%d, %d)\n", sh.Index, sh.Start, sh.End)
	}
}

// loadInput reads the spec's input through internal/dataio and returns the
// instances plus the content hash of the raw file (pinned in the plan
// record: a resume against edited input is an error, not silent skew).
func loadInput(sp *Spec) ([]*data.Instance, string, error) {
	blob, err := os.ReadFile(sp.Input.Path)
	if err != nil {
		return nil, "", fmt.Errorf("jobs: %w", err)
	}
	sum := sha256.Sum256(blob)
	sha := hex.EncodeToString(sum[:])
	var ins []*data.Instance
	switch sp.Input.Format {
	case "json":
		ds, err := dataio.DecodeJSON(bytes.NewReader(blob))
		if err != nil {
			return nil, "", fmt.Errorf("jobs: %w", err)
		}
		switch sp.Input.Split {
		case "train":
			ins = ds.Train
		case "all":
			ins = append(append([]*data.Instance(nil), ds.Train...), ds.Test...)
		default:
			ins = ds.Test
		}
	case "csv":
		name := strings.TrimSuffix(filepath.Base(sp.Input.Path), filepath.Ext(sp.Input.Path))
		t, err := dataio.ReadCSV(name, bytes.NewReader(blob))
		if err != nil {
			return nil, "", fmt.Errorf("jobs: %w", err)
		}
		switch sp.Input.Kind {
		case "em":
			ins, err = dataio.EMInstances(t, sp.Input.Label)
		case "ed":
			ins, err = dataio.EDInstances(t, sp.Input.Target, sp.Input.Label)
		case "di":
			ins, err = dataio.DIInstances(t, sp.Input.Target)
		}
		if err != nil {
			return nil, "", fmt.Errorf("jobs: %w", err)
		}
	default:
		return nil, "", fmt.Errorf("jobs: unknown input format %q", sp.Input.Format)
	}
	for i, in := range ins {
		if len(in.Candidates) == 0 {
			return nil, "", fmt.Errorf("jobs: input row %d (%s) has no candidate answers", i, in.ID)
		}
		if in.ID == "" {
			in.ID = fmt.Sprintf("row-%d", i)
		}
	}
	return ins, sha, nil
}

// Tracker is the live progress of one run, readable concurrently (the
// /v1/jobs/{id} snapshot). Zero value is ready.
type Tracker struct {
	rowsTotal      atomic.Int64
	shardsTotal    atomic.Int64
	rowsDone       atomic.Int64
	shardsDone     atomic.Int64
	shardsResumed  atomic.Int64
	shardsInflight atomic.Int64
	retries        atomic.Int64
	rowFailures    atomic.Int64
}

// Progress is one consistent-enough reading of a Tracker.
type Progress struct {
	Rows          int   `json:"rows"`
	RowsDone      int   `json:"rows_done"`
	Shards        int   `json:"shards"`
	ShardsDone    int   `json:"shards_done"`
	ShardsResumed int   `json:"shards_resumed"`
	Retries       int64 `json:"retries"`
	RowFailures   int64 `json:"row_failures"`
}

// Progress snapshots the tracker.
func (t *Tracker) Progress() Progress {
	return Progress{
		Rows:          int(t.rowsTotal.Load()),
		RowsDone:      int(t.rowsDone.Load()),
		Shards:        int(t.shardsTotal.Load()),
		ShardsDone:    int(t.shardsDone.Load()),
		ShardsResumed: int(t.shardsResumed.Load()),
		Retries:       t.retries.Load(),
		RowFailures:   t.rowFailures.Load(),
	}
}

// Result summarizes one completed run.
type Result struct {
	ID            string  `json:"id"`
	Rows          int     `json:"rows"`
	Shards        int     `json:"shards"`
	ResumedShards int     `json:"resumed_shards"`
	RowFailures   int     `json:"row_failures"`
	Retries       int64   `json:"retries"`
	Output        string  `json:"output"`
	WallS         float64 `json:"wall_s"`
}

// Run executes a plan: committed shards from the checkpoint log are
// adopted verbatim (zero re-predicts, zero duplicate Transfers), pending
// shards fan out under the spec's limits, each committing durably before
// the next resume could see it, and the output is assembled in input
// order — so an interrupted-and-resumed job writes the same bytes an
// uninterrupted one does. The returned error leaves the job resumable.
func (e *Engine) Run(ctx context.Context, p *Plan, tr *Tracker) (*Result, error) {
	if e.CheckpointDir == "" {
		return nil, fmt.Errorf("jobs: engine needs a CheckpointDir")
	}
	if tr == nil {
		tr = &Tracker{}
	}
	tr.rowsTotal.Store(int64(p.Rows))
	tr.shardsTotal.Store(int64(len(p.Shards)))
	start := time.Now()

	path := CheckpointPath(e.CheckpointDir, p.ID)
	st, err := ReadLog(path)
	if err != nil {
		return nil, err
	}
	if st.Plan != nil {
		if st.Plan.SpecHash != p.SpecHash {
			return nil, fmt.Errorf("jobs: checkpoint %s belongs to spec %s, this plan is %s", path, st.Plan.SpecHash[:16], p.SpecHash[:16])
		}
		if st.Plan.InputSHA != p.InputSHA {
			return nil, fmt.Errorf("jobs: input %s changed since the job began (sha %s → %s); resuming would mix epochs",
				p.Spec.Input.Path, st.Plan.InputSHA[:16], p.InputSHA[:16])
		}
		if st.Plan.Rows != p.Rows || st.Plan.Shards != len(p.Shards) {
			return nil, fmt.Errorf("jobs: checkpoint %s plans %d rows / %d shards, this plan has %d / %d",
				path, st.Plan.Rows, st.Plan.Shards, p.Rows, len(p.Shards))
		}
	}
	lg, err := st.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	defer lg.Close()
	if st.Plan == nil {
		if err := lg.Append(&Record{
			V: recordV, Type: recPlan, SpecHash: p.SpecHash, Adapter: p.Spec.Adapter,
			Rows: p.Rows, Shards: len(p.Shards), InputSHA: p.InputSHA,
		}); err != nil {
			return nil, err
		}
	}

	answers := make([]string, p.Rows)
	var pending []ShardRange
	for _, sh := range p.Shards {
		rec, ok := st.Shards[sh.Index]
		if !ok {
			pending = append(pending, sh)
			continue
		}
		if len(rec.Answers) != sh.End-sh.Start {
			return nil, fmt.Errorf("jobs: checkpoint shard %d carries %d answers for %d rows", sh.Index, len(rec.Answers), sh.End-sh.Start)
		}
		copy(answers[sh.Start:sh.End], rec.Answers)
		tr.rowsDone.Add(int64(sh.End - sh.Start))
		tr.shardsDone.Add(1)
		tr.shardsResumed.Add(1)
		tr.rowFailures.Add(int64(rec.Failures))
	}
	resumed := int(tr.shardsResumed.Load())
	var committed atomic.Int64
	committed.Store(int64(resumed))

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		runErr  error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			runErr = err
			cancel()
		})
	}
	sem := make(chan struct{}, p.Spec.Limits.ShardParallelism)
	for _, sh := range pending {
		sh := sh
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-runCtx.Done():
				return
			}
			if err := e.runShard(runCtx, p, sh, answers, tr, lg, &committed); err != nil {
				fail(err)
			}
		}()
	}
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	if !st.Done {
		if err := lg.Append(&Record{Type: recDone, Rows: p.Rows}); err != nil {
			return nil, err
		}
	}
	if err := writeOutput(p.Spec, p.ins, answers); err != nil {
		return nil, err
	}
	e.Rec.Count("jobs.completed", 1)
	return &Result{
		ID:            p.ID,
		Rows:          p.Rows,
		Shards:        len(p.Shards),
		ResumedShards: resumed,
		RowFailures:   int(tr.rowFailures.Load()),
		Retries:       tr.retries.Load(),
		Output:        p.Spec.Output.Path,
		WallS:         time.Since(start).Seconds(),
	}, nil
}

// runShard predicts one shard's rows under the concurrency limit, verifies
// every answer against its row's candidate set, and commits the shard as
// one fsynced checkpoint record. The job.shard span rides the context, so
// serve.batch/cluster.attempt spans below link back to the shard that
// caused them.
func (e *Engine) runShard(ctx context.Context, p *Plan, sh ShardRange, answers []string, tr *Tracker, lg *Log, committed *atomic.Int64) error {
	_, span := e.Rec.StartSpan("job.shard")
	defer span.End()
	span.SetAttr("shard", sh.Index)
	span.SetAttr("rows", sh.End-sh.Start)
	span.SetAttr("key", p.Spec.Adapter)
	sctx := obs.ContextWithSpan(ctx, span)
	e.Rec.SetGauge("jobs.shards_inflight", float64(tr.shardsInflight.Add(1)))
	defer func() {
		e.Rec.SetGauge("jobs.shards_inflight", float64(tr.shardsInflight.Add(-1)))
	}()

	rows := sh.End - sh.Start
	workers := p.Spec.Limits.Concurrency
	if workers > rows {
		workers = rows
	}
	rowCtx, rowCancel := context.WithCancel(sctx)
	defer rowCancel()
	var (
		next          atomic.Int64
		shardRetries  atomic.Int64
		shardFailures atomic.Int64
		werrOnce      sync.Once
		werr          error
		wg            sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= rows || rowCtx.Err() != nil {
					return
				}
				idx := sh.Start + i
				in := p.ins[idx]
				ans, retries, err := e.predictRow(rowCtx, p.Spec, in)
				shardRetries.Add(retries)
				tr.retries.Add(retries)
				if err == nil && !answerValid(ans, in) {
					e.Rec.Count("jobs.verify_failures", 1)
					err = fmt.Errorf("jobs: row %s: answer %q is not among its %d candidates", in.ID, ans, len(in.Candidates))
				}
				if err != nil {
					if rowCtx.Err() != nil {
						return
					}
					total := tr.rowFailures.Add(1)
					shardFailures.Add(1)
					e.Rec.Count("jobs.row_failures", 1)
					if total > int64(p.Spec.Limits.MaxRowFailures) {
						werrOnce.Do(func() {
							werr = fmt.Errorf("jobs: shard %d row %s: %w (row failure %d exceeds budget %d)",
								sh.Index, in.ID, err, total, p.Spec.Limits.MaxRowFailures)
							rowCancel()
						})
						return
					}
					answers[idx] = "" // within budget: an empty answer marks the lost row
				} else {
					answers[idx] = ans
				}
				tr.rowsDone.Add(1)
				e.Rec.Count("jobs.rows_done", 1)
			}
		}()
	}
	wg.Wait()
	if werr != nil {
		span.SetAttr("error", true)
		return werr
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	// Commit: the shard becomes durable in one fsynced append. Everything
	// before this line is repeatable; everything after it never reruns.
	cspan := span.StartChild("job.commit")
	err := lg.Append(&Record{
		Type: recShard, Shard: sh.Index, Rows: rows,
		Answers:  answers[sh.Start:sh.End],
		Failures: int(shardFailures.Load()),
		Retries:  shardRetries.Load(),
	})
	cspan.SetAttr("shard", sh.Index)
	cspan.End()
	if err != nil {
		span.SetAttr("error", true)
		return err
	}
	tr.shardsDone.Add(1)
	e.Rec.Count("jobs.shards_committed", 1)
	n := int(committed.Add(1))
	if e.OnCommit != nil {
		e.OnCommit(sh.Index, n)
	}
	return nil
}

// predictRow answers one row through the resolver, retrying transient
// errors up to the spec's budget with bounded deterministic backoff.
func (e *Engine) predictRow(ctx context.Context, sp *Spec, in *data.Instance) (string, int64, error) {
	attempts := sp.Limits.Retries + 1
	var retries int64
	var lastErr error
	for a := 0; a < attempts; a++ {
		if err := ctx.Err(); err != nil {
			return "", retries, err
		}
		actx := ctx
		cancel := context.CancelFunc(func() {})
		if sp.Limits.RowTimeoutS > 0 {
			actx, cancel = context.WithTimeout(ctx, time.Duration(sp.Limits.RowTimeoutS*float64(time.Second)))
		}
		ans, _, err := e.Res.Predict(actx, sp.Adapter, in)
		cancel()
		if err == nil {
			return ans, retries, nil
		}
		lastErr = err
		if ctx.Err() != nil || !transientErr(err) {
			return "", retries, err
		}
		if a < attempts-1 {
			retries++
			e.Rec.Count("jobs.retries", 1)
			backoff := time.Duration(25<<uint(a)) * time.Millisecond
			if backoff > time.Second {
				backoff = time.Second
			}
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return "", retries, ctx.Err()
			}
		}
	}
	return "", retries, lastErr
}

// transientErr reports whether a predict error is worth retrying: shed
// load, drains, attempt timeouts, and backend 5xx are; bad/unknown keys
// and our own cancellation are not.
func transientErr(err error) bool {
	if errors.Is(err, serve.ErrBadKey) || errors.Is(err, serve.ErrUnknownKey) || errors.Is(err, context.Canceled) {
		return false
	}
	return true
}

// answerValid is the Verify stage: the service ranks candidates, so a
// valid answer must be one of the row's candidates.
func answerValid(ans string, in *data.Instance) bool {
	for _, c := range in.Candidates {
		if c == ans {
			return true
		}
	}
	return false
}

// outputRow is one line of a jsonl sink.
type outputRow struct {
	ID     string `json:"id"`
	Answer string `json:"answer"`
}

// writeOutput assembles the sink in input order and installs it
// atomically (write temp + rename), so a reader never sees a torn file
// and repeated runs produce byte-identical output.
func writeOutput(sp *Spec, ins []*data.Instance, answers []string) error {
	var buf bytes.Buffer
	switch sp.Output.Format {
	case "csv":
		cw := csv.NewWriter(&buf)
		if err := cw.Write([]string{"id", "answer"}); err != nil {
			return fmt.Errorf("jobs: %w", err)
		}
		for i, in := range ins {
			if err := cw.Write([]string{in.ID, answers[i]}); err != nil {
				return fmt.Errorf("jobs: %w", err)
			}
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			return fmt.Errorf("jobs: %w", err)
		}
	case "jsonl":
		for i, in := range ins {
			raw, err := json.Marshal(outputRow{ID: in.ID, Answer: answers[i]})
			if err != nil {
				return fmt.Errorf("jobs: %w", err)
			}
			buf.Write(raw)
			buf.WriteByte('\n')
		}
	default:
		return fmt.Errorf("jobs: unknown output format %q", sp.Output.Format)
	}
	if dir := filepath.Dir(sp.Output.Path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("jobs: %w", err)
		}
	}
	tmp := sp.Output.Path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	if err := os.Rename(tmp, sp.Output.Path); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	return nil
}
