package jobs

import (
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/serve"
)

// API mounts the bulk-job routes on a serve.Server mux:
//
//	POST   /v1/jobs        submit a spec (JSON or YAML body); ?dry_run=1
//	                       plans without running and returns the plan
//	GET    /v1/jobs        list known jobs
//	GET    /v1/jobs/{id}   progress snapshot of one job
//	DELETE /v1/jobs/{id}   cancel one job (checkpoints survive; resubmit
//	                       resumes)
//
// Errors use the same envelope as every other /v1 route.
type API struct {
	m *Manager
}

// maxSpecBytes bounds a submitted spec body.
const maxSpecBytes = 1 << 20

// NewAPI returns the HTTP face over a manager.
func NewAPI(m *Manager) *API {
	return &API{m: m}
}

// SubmitResponse is the POST /v1/jobs body: the job snapshot plus whether
// this request started the run (false: attached to an already running
// duplicate).
type SubmitResponse struct {
	Job     Snapshot `json:"job"`
	Started bool     `json:"started"`
}

// Register mounts the routes through the server's instrumented-route seam,
// so job traffic shows up in serve.requests/serve.request_us and the
// request spans like every other route.
func (a *API) Register(srv *serve.Server) {
	srv.HandleFunc("/v1/jobs", "jobs", a.handleCollection)
	srv.HandleFunc("/v1/jobs/", "jobs", a.handleItem)
}

// handleCollection serves POST (submit / dry-run) and GET (list).
func (a *API) handleCollection(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		serve.WriteJSON(w, http.StatusOK, a.m.List())
	case http.MethodPost:
		blob, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
		if err != nil {
			serve.WriteErrorStatus(w, http.StatusBadRequest, fmt.Sprintf("reading spec body: %v", err))
			return
		}
		if len(blob) > maxSpecBytes {
			serve.WriteErrorStatus(w, http.StatusBadRequest, fmt.Sprintf("spec body exceeds %d bytes", maxSpecBytes))
			return
		}
		sp, err := ParseSpec(blob)
		if err != nil {
			serve.WriteErrorStatus(w, http.StatusBadRequest, err.Error())
			return
		}
		if dr := r.URL.Query().Get("dry_run"); dr == "1" || dr == "true" {
			p, err := a.m.eng.Plan(sp)
			if err != nil {
				serve.WriteErrorStatus(w, http.StatusBadRequest, err.Error())
				return
			}
			serve.WriteJSON(w, http.StatusOK, p)
			return
		}
		snap, started, err := a.m.Submit(sp)
		if err != nil {
			serve.WriteError(w, err)
			return
		}
		status := http.StatusOK
		if started {
			status = http.StatusAccepted
		}
		serve.WriteJSON(w, status, SubmitResponse{Job: snap, Started: started})
	default:
		serve.WriteErrorStatus(w, http.StatusMethodNotAllowed, "GET or POST /v1/jobs only")
	}
}

// handleItem serves GET (snapshot) and DELETE (cancel) on /v1/jobs/{id}.
func (a *API) handleItem(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		serve.WriteErrorStatus(w, http.StatusBadRequest, fmt.Sprintf("bad job id %q", id))
		return
	}
	switch r.Method {
	case http.MethodGet:
		snap, ok := a.m.Get(id)
		if !ok {
			serve.WriteError(w, fmt.Errorf("%w: no job %q", serve.ErrUnknownKey, id))
			return
		}
		serve.WriteJSON(w, http.StatusOK, snap)
	case http.MethodDelete:
		snap, ok := a.m.Cancel(id)
		if !ok {
			serve.WriteError(w, fmt.Errorf("%w: no job %q", serve.ErrUnknownKey, id))
			return
		}
		serve.WriteJSON(w, http.StatusOK, snap)
	default:
		serve.WriteErrorStatus(w, http.StatusMethodNotAllowed, "GET or DELETE /v1/jobs/{id} only")
	}
}
