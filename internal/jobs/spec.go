// Package jobs is the bulk data-preparation tier: a declarative JobSpec
// (JSON or YAML) drives a Plan→Shard→Predict→Verify→Commit pipeline that
// fans contiguous row shards out over the serving tier through the
// serve.Resolver seam — the local Registry for offline runs, the cluster
// Router for fleet-scale ones. An append-only JSONL checkpoint log,
// content-addressed by spec hash, records every committed shard, so a
// SIGKILLed job resumes exactly where it stopped with zero duplicated
// oracle Transfers and byte-identical output. One engine backs both faces:
// POST /v1/jobs on the serve mux (async, progress snapshots, cancel) and
// the `knowtrans job run|plan|resume` CLI.
package jobs

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/serve"
)

// Spec is the declarative description of one bulk job (the dsort idiom:
// the spec says *what*, the engine decides *how*). JSON and YAML are both
// accepted; field names below are the canonical keys in either format.
type Spec struct {
	// Adapter is the task/dataset key the rows are answered under
	// (serve.ValidateKey shape, e.g. "EM/Walmart-Amazon").
	Adapter string `json:"adapter"`
	Input   Input  `json:"input"`
	Output  Output `json:"output"`
	// Shards is how many contiguous row ranges the input is split into
	// (default 4, clamped to the row count). Each shard is the unit of
	// checkpointing: a committed shard is never recomputed on resume.
	Shards int    `json:"shards,omitempty"`
	Limits Limits `json:"limits,omitempty"`
}

// Input names the rows to process, loaded through internal/dataio.
type Input struct {
	Path string `json:"path"`
	// Format is "csv" or "json" (a dpgen/EncodeJSON dataset); default by
	// file extension.
	Format string `json:"format,omitempty"`
	// Kind picks the CSV→instance lifting: "em" (left_*/right_* pair
	// table), "ed" (error detection), or "di" (imputation). Defaults from
	// the adapter's task code when that code is one of those three.
	Kind string `json:"kind,omitempty"`
	// Target is the column under verification (ed) or imputation (di).
	Target string `json:"target,omitempty"`
	// Label is the label column of em/ed CSV tables.
	Label string `json:"label,omitempty"`
	// Split selects rows from a JSON dataset: "test" (default), "train",
	// or "all" (train then test).
	Split string `json:"split,omitempty"`
}

// Output names the sink the answers are written to, one row per input row
// in input order.
type Output struct {
	Path string `json:"path"`
	// Format is "csv" (id,answer with header) or "jsonl" (one
	// {"id","answer"} object per line); default by file extension.
	Format string `json:"format,omitempty"`
}

// Limits are the fault/throughput knobs of one job.
type Limits struct {
	// Concurrency is the number of row predicts in flight per shard
	// (default 8) — concurrent Predicts through one Resolver ride the
	// per-adapter micro-batch loop, so this is also the batch fuel.
	Concurrency int `json:"concurrency,omitempty"`
	// ShardParallelism is how many shards run at once (default 2).
	ShardParallelism int `json:"shard_parallelism,omitempty"`
	// Retries is how many times one row is retried past its first attempt
	// on transient errors — shed load, drains, timeouts, backend 5xx
	// (default 2). Terminal errors (bad/unknown key) are never retried.
	Retries int `json:"retries,omitempty"`
	// MaxRowFailures is how many rows may exhaust their retries or fail
	// verification before the job aborts (default 0: the first lost row
	// kills the job; it stays resumable).
	MaxRowFailures int `json:"max_row_failures,omitempty"`
	// RowTimeoutS bounds one predict attempt in seconds (default 120 —
	// a cold adapter pays a full Transfer on its first predict).
	RowTimeoutS float64 `json:"row_timeout_s,omitempty"`
}

// ParseSpec decodes a JSON or YAML spec (sniffed by first non-space byte)
// and normalizes it: defaults applied, shape validated.
func ParseSpec(blob []byte) (*Spec, error) {
	trimmed := bytes.TrimSpace(blob)
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("jobs: empty spec")
	}
	var sp Spec
	if trimmed[0] == '{' {
		dec := json.NewDecoder(bytes.NewReader(trimmed))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&sp); err != nil {
			return nil, fmt.Errorf("jobs: bad JSON spec: %w", err)
		}
	} else {
		m, err := parseYAML(trimmed)
		if err != nil {
			return nil, err
		}
		// Funnel through the JSON decoder so YAML and JSON share one set
		// of field names, types, and unknown-key errors.
		raw, err := json.Marshal(m)
		if err != nil {
			return nil, fmt.Errorf("jobs: %w", err)
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&sp); err != nil {
			return nil, fmt.Errorf("jobs: bad YAML spec: %w", err)
		}
	}
	if err := sp.Normalize(); err != nil {
		return nil, err
	}
	return &sp, nil
}

// ParseSpecFile reads and parses one spec file.
func ParseSpecFile(path string) (*Spec, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("jobs: %w", err)
	}
	sp, err := ParseSpec(blob)
	if err != nil {
		return nil, fmt.Errorf("jobs: spec %s: %w", path, err)
	}
	return sp, nil
}

// formatFromExt maps a file extension to a format name.
func formatFromExt(path string) string {
	switch strings.ToLower(filepath.Ext(path)) {
	case ".csv":
		return "csv"
	case ".json":
		return "json"
	case ".jsonl", ".ndjson":
		return "jsonl"
	}
	return ""
}

// Normalize applies defaults and validates the spec in place. It is
// idempotent, and Hash is defined over the normalized form — so a spec
// that spells a default out and one that omits it are the same job.
func (s *Spec) Normalize() error {
	if err := serve.ValidateKey(s.Adapter); err != nil {
		return fmt.Errorf("jobs: adapter: %w", err)
	}
	if s.Input.Path == "" {
		return fmt.Errorf("jobs: input.path is required")
	}
	if s.Input.Format == "" {
		s.Input.Format = formatFromExt(s.Input.Path)
	}
	task, _, _ := strings.Cut(s.Adapter, "/")
	switch s.Input.Format {
	case "csv":
		if s.Input.Kind == "" {
			switch strings.ToLower(task) {
			case "em", "ed", "di":
				s.Input.Kind = strings.ToLower(task)
			default:
				return fmt.Errorf("jobs: csv input needs input.kind (em|ed|di); task %q implies none", task)
			}
		}
		switch s.Input.Kind {
		case "em":
			if s.Input.Label == "" {
				return fmt.Errorf("jobs: em csv input needs input.label")
			}
		case "ed":
			if s.Input.Target == "" || s.Input.Label == "" {
				return fmt.Errorf("jobs: ed csv input needs input.target and input.label")
			}
		case "di":
			if s.Input.Target == "" {
				return fmt.Errorf("jobs: di csv input needs input.target")
			}
		default:
			return fmt.Errorf("jobs: unknown input.kind %q (want em|ed|di)", s.Input.Kind)
		}
		if s.Input.Split != "" {
			return fmt.Errorf("jobs: input.split applies to json inputs only")
		}
	case "json":
		if s.Input.Split == "" {
			s.Input.Split = "test"
		}
		switch s.Input.Split {
		case "test", "train", "all":
		default:
			return fmt.Errorf("jobs: unknown input.split %q (want test|train|all)", s.Input.Split)
		}
		if s.Input.Kind != "" || s.Input.Target != "" || s.Input.Label != "" {
			return fmt.Errorf("jobs: input.kind/target/label apply to csv inputs only")
		}
	default:
		return fmt.Errorf("jobs: unknown input format %q for %s (want csv|json)", s.Input.Format, s.Input.Path)
	}
	if s.Output.Path == "" {
		return fmt.Errorf("jobs: output.path is required")
	}
	if s.Output.Format == "" {
		s.Output.Format = formatFromExt(s.Output.Path)
	}
	switch s.Output.Format {
	case "csv", "jsonl":
	default:
		return fmt.Errorf("jobs: unknown output format %q for %s (want csv|jsonl)", s.Output.Format, s.Output.Path)
	}
	if s.Shards == 0 {
		s.Shards = 4
	}
	if s.Shards < 1 {
		return fmt.Errorf("jobs: shards must be >= 1, got %d", s.Shards)
	}
	if s.Limits.Concurrency == 0 {
		s.Limits.Concurrency = 8
	}
	if s.Limits.ShardParallelism == 0 {
		s.Limits.ShardParallelism = 2
	}
	if s.Limits.Retries == 0 {
		s.Limits.Retries = 2
	}
	if s.Limits.RowTimeoutS == 0 {
		s.Limits.RowTimeoutS = 120
	}
	if s.Limits.Concurrency < 1 || s.Limits.ShardParallelism < 1 || s.Limits.Retries < 0 ||
		s.Limits.MaxRowFailures < 0 || s.Limits.RowTimeoutS < 0 {
		return fmt.Errorf("jobs: negative limits: %+v", s.Limits)
	}
	return nil
}

// Hash is the job's content address: sha256 over the canonical JSON of the
// normalized spec. Struct marshaling fixes field order, and Normalize
// fills defaults first, so the hash is stable across JSON vs YAML, key
// reordering, and spelled-out defaults. The checkpoint log is named by it.
func (s *Spec) Hash() string {
	raw, err := json.Marshal(s)
	if err != nil {
		// A Spec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("jobs: marshal spec: %v", err))
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// ID is the short job identifier derived from the hash — what /v1/jobs
// routes and checkpoint filenames use.
func (s *Spec) ID() string {
	return "j" + s.Hash()[:16]
}
