package jobs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeLog(t *testing.T, path string, recs ...*Record) {
	t.Helper()
	st, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	lg, err := st.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	for _, rec := range recs {
		if err := lg.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCheckpointMissingFile(t *testing.T) {
	st, err := ReadLog(filepath.Join(t.TempDir(), "nope.ckpt.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Plan != nil || len(st.Shards) != 0 || st.Done || st.Truncated {
		t.Fatalf("missing file should read as empty state, got %+v", st)
	}
}

func TestCheckpointTruncatedTail(t *testing.T) {
	path := CheckpointPath(t.TempDir(), "jdeadbeef")
	writeLog(t, path,
		&Record{V: recordV, Type: recPlan, SpecHash: "abc", Rows: 8, Shards: 2, InputSHA: "def"},
		&Record{Type: recShard, Shard: 0, Rows: 4, Answers: []string{"a", "b", "c", "d"}},
	)
	// A SIGKILL mid-append leaves an unterminated final line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"shard","shard":1,"answers":["e","f`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st, err := ReadLog(path)
	if err != nil {
		t.Fatalf("torn tail must be tolerated: %v", err)
	}
	if !st.Truncated {
		t.Fatal("Truncated not reported")
	}
	if st.Plan == nil || st.Plan.Rows != 8 {
		t.Fatalf("plan record lost: %+v", st.Plan)
	}
	if len(st.Shards) != 1 || st.Shards[0] == nil {
		t.Fatalf("committed shard lost: %+v", st.Shards)
	}
	if _, ok := st.Shards[1]; ok {
		t.Fatal("torn shard record must not count as committed")
	}

	// Reopening truncates the torn tail away; the next append lands clean.
	lg, err := st.OpenAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Append(&Record{Type: recShard, Shard: 1, Rows: 4, Answers: []string{"e", "f", "g", "h"}}); err != nil {
		t.Fatal(err)
	}
	lg.Close()
	st2, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Truncated {
		t.Fatal("tail should be clean after truncating reopen")
	}
	if len(st2.Shards) != 2 || strings.Join(st2.Shards[1].Answers, "") != "efgh" {
		t.Fatalf("recommitted shard misread: %+v", st2.Shards[1])
	}
}

func TestCheckpointCorruptMidStream(t *testing.T) {
	path := CheckpointPath(t.TempDir(), "jc0ffee")
	if err := os.WriteFile(path, []byte(
		`{"v":1,"type":"plan","rows":4,"shards":1}`+"\n"+
			`not json at all`+"\n"+
			`{"type":"shard","shard":0,"answers":["a"]}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLog(path); err == nil {
		t.Fatal("terminated garbage mid-stream must be a hard error, not tolerated")
	}
}

func TestCheckpointVersionGate(t *testing.T) {
	path := CheckpointPath(t.TempDir(), "jbadver")
	if err := os.WriteFile(path, []byte(`{"v":99,"type":"plan","rows":4,"shards":1}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLog(path); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("want version error, got %v", err)
	}
}
