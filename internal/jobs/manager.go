package jobs

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Job states as reported by /v1/jobs.
const (
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// ManagerOptions configures a Manager.
type ManagerOptions struct {
	// CheckpointDir holds the checkpoint logs (required).
	CheckpointDir string
	// MaxActive bounds concurrently running jobs (default 4); submits past
	// it are shed with serve.ErrOverloaded, which the HTTP layer maps to a
	// retryable 429 envelope.
	MaxActive int
	// Rec threads observability through the engine. Nil disables it.
	Rec *obs.Recorder
}

// Manager runs jobs asynchronously and remembers them by ID: Submit is
// idempotent on the spec hash (re-posting a running job attaches to it;
// re-posting a finished one reruns it, which the checkpoint log turns
// into a no-op resume). It is the state the HTTP face exposes.
type Manager struct {
	eng  *Engine
	opts ManagerOptions

	mu   sync.Mutex
	jobs map[string]*job
}

// job is one tracked run.
type job struct {
	id      string
	spec    *Spec
	tracker *Tracker
	cancel  context.CancelFunc
	started time.Time

	mu     sync.Mutex
	state  string
	result *Result
	err    error
	wallS  float64
}

// Snapshot is the externally visible state of one job — the GET
// /v1/jobs/{id} body.
type Snapshot struct {
	ID            string  `json:"id"`
	Adapter       string  `json:"adapter"`
	State         string  `json:"state"`
	Rows          int     `json:"rows"`
	RowsDone      int     `json:"rows_done"`
	Shards        int     `json:"shards"`
	ShardsDone    int     `json:"shards_done"`
	ShardsResumed int     `json:"shards_resumed"`
	Retries       int64   `json:"retries"`
	RowFailures   int64   `json:"row_failures"`
	Output        string  `json:"output,omitempty"`
	Error         string  `json:"error,omitempty"`
	WallS         float64 `json:"wall_s"`
}

// NewManager returns a manager running jobs against res.
func NewManager(res serve.Resolver, opts ManagerOptions) *Manager {
	if opts.MaxActive == 0 {
		opts.MaxActive = 4
	}
	return &Manager{
		eng:  &Engine{Res: res, CheckpointDir: opts.CheckpointDir, Rec: opts.Rec},
		opts: opts,
		jobs: map[string]*job{},
	}
}

// Submit starts (or attaches to) the job a spec describes. The returned
// bool reports whether a new run was started; false means an already
// running job with the same spec hash was attached instead.
func (m *Manager) Submit(sp *Spec) (Snapshot, bool, error) {
	id := sp.ID()
	m.mu.Lock()
	if j, ok := m.jobs[id]; ok && j.stateNow() == StateRunning {
		m.mu.Unlock()
		return j.snapshot(), false, nil
	}
	active := 0
	for _, j := range m.jobs {
		if j.stateNow() == StateRunning {
			active++
		}
	}
	if active >= m.opts.MaxActive {
		m.mu.Unlock()
		return Snapshot{}, false, fmt.Errorf("%w: %d jobs already running (max %d)", serve.ErrOverloaded, active, m.opts.MaxActive)
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:      id,
		spec:    sp,
		tracker: &Tracker{},
		cancel:  cancel,
		started: time.Now(),
		state:   StateRunning,
	}
	m.jobs[id] = j
	m.mu.Unlock()

	m.opts.Rec.Count("jobs.submitted", 1)
	m.setActiveGauge()
	go m.run(ctx, j)
	return j.snapshot(), true, nil
}

// run plans and executes one job, recording its terminal state.
func (m *Manager) run(ctx context.Context, j *job) {
	defer j.cancel()
	res, err := func() (*Result, error) {
		p, perr := m.eng.Plan(j.spec)
		if perr != nil {
			return nil, perr
		}
		return m.eng.Run(ctx, p, j.tracker)
	}()
	j.mu.Lock()
	j.wallS = time.Since(j.started).Seconds()
	switch {
	case err == nil:
		j.state = StateDone
		j.result = res
	case ctx.Err() != nil:
		j.state = StateCanceled
		j.err = err
	default:
		j.state = StateFailed
		j.err = err
	}
	state := j.state
	j.mu.Unlock()
	switch state {
	case StateDone:
		m.opts.Rec.Count("jobs.completed_async", 1)
	case StateCanceled:
		m.opts.Rec.Count("jobs.canceled", 1)
	default:
		m.opts.Rec.Count("jobs.failed", 1)
	}
	m.setActiveGauge()
}

// Get returns the snapshot of one job by ID.
func (m *Manager) Get(id string) (Snapshot, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Snapshot{}, false
	}
	return j.snapshot(), true
}

// List returns every tracked job, ordered by ID (deterministic output).
func (m *Manager) List() []Snapshot {
	m.mu.Lock()
	out := make([]Snapshot, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j.snapshot())
	}
	m.mu.Unlock()
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].ID < out[k-1].ID; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// Cancel stops a running job (its checkpoint log keeps the committed
// shards, so a later submit resumes it). Canceling a finished job is a
// no-op; an unknown ID reports false.
func (m *Manager) Cancel(id string) (Snapshot, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return Snapshot{}, false
	}
	j.cancel()
	return j.snapshot(), true
}

// setActiveGauge publishes the running-job count.
func (m *Manager) setActiveGauge() {
	m.mu.Lock()
	active := 0
	for _, j := range m.jobs {
		if j.stateNow() == StateRunning {
			active++
		}
	}
	m.mu.Unlock()
	m.opts.Rec.SetGauge("jobs.active", float64(active))
}

// stateNow reads the job's state under its lock.
func (j *job) stateNow() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// snapshot assembles the externally visible view of the job.
func (j *job) snapshot() Snapshot {
	pr := j.tracker.Progress()
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Snapshot{
		ID:            j.id,
		Adapter:       j.spec.Adapter,
		State:         j.state,
		Rows:          pr.Rows,
		RowsDone:      pr.RowsDone,
		Shards:        pr.Shards,
		ShardsDone:    pr.ShardsDone,
		ShardsResumed: pr.ShardsResumed,
		Retries:       pr.Retries,
		RowFailures:   pr.RowFailures,
		WallS:         j.wallS,
	}
	if j.state == StateRunning {
		s.WallS = time.Since(j.started).Seconds()
	}
	if j.result != nil {
		s.Output = j.result.Output
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	return s
}
