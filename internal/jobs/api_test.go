package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/serve"
)

func newJobServer(t *testing.T, res serve.Resolver, dir string) (*httptest.Server, *Manager) {
	t.Helper()
	m := NewManager(res, ManagerOptions{CheckpointDir: filepath.Join(dir, "ckpt")})
	srv := serve.NewServer(res, serve.Options{})
	NewAPI(m).Register(srv)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, m
}

func doReq(t *testing.T, method, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, blob
}

func TestJobsHTTPLifecycle(t *testing.T) {
	dir := t.TempDir()
	input := writeInput(t, dir, 8)
	out := filepath.Join(dir, "out.csv")
	ts, _ := newJobServer(t, newFakeResolver(), dir)

	specYAML := fmt.Sprintf("adapter: EM/Walmart-Amazon\ninput:\n  path: %s\noutput:\n  path: %s\nshards: 2\n", input, out)

	// Dry run plans without running: 200, a plan body, no job created.
	resp, blob := doReq(t, http.MethodPost, ts.URL+"/v1/jobs?dry_run=1", []byte(specYAML))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dry run: %d %s", resp.StatusCode, blob)
	}
	var plan Plan
	if err := json.Unmarshal(blob, &plan); err != nil {
		t.Fatal(err)
	}
	if plan.Rows != 8 || len(plan.Shards) != 2 {
		t.Fatalf("dry-run plan: %+v", plan)
	}
	if resp, blob = doReq(t, http.MethodGet, ts.URL+"/v1/jobs", nil); string(blob) == "" || resp.StatusCode != http.StatusOK {
		t.Fatalf("list: %d %s", resp.StatusCode, blob)
	}
	var list []Snapshot
	if err := json.Unmarshal(blob, &list); err != nil || len(list) != 0 {
		t.Fatalf("dry run must not create a job: %s (%v)", blob, err)
	}

	// Submit: 202, then poll to done.
	resp, blob = doReq(t, http.MethodPost, ts.URL+"/v1/jobs", []byte(specYAML))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, blob)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(blob, &sub); err != nil {
		t.Fatal(err)
	}
	if !sub.Started || sub.Job.ID == "" {
		t.Fatalf("submit response: %+v", sub)
	}

	var snap Snapshot
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, blob = doReq(t, http.MethodGet, ts.URL+"/v1/jobs/"+sub.Job.ID, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll: %d %s", resp.StatusCode, blob)
		}
		if err := json.Unmarshal(blob, &snap); err != nil {
			t.Fatal(err)
		}
		if snap.State != StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still running: %+v", snap)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if snap.State != StateDone || snap.RowsDone != 8 || snap.ShardsDone != 2 {
		t.Fatalf("job did not finish cleanly: %+v", snap)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("output missing: %v", err)
	}

	// Re-submitting the done job reruns it; the checkpoint makes that a
	// pure resume (all shards adopted).
	resp, blob = doReq(t, http.MethodPost, ts.URL+"/v1/jobs", []byte(specYAML))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit: %d %s", resp.StatusCode, blob)
	}
}

func TestJobsHTTPErrors(t *testing.T) {
	dir := t.TempDir()
	ts, _ := newJobServer(t, newFakeResolver(), dir)

	cases := []struct {
		name   string
		method string
		path   string
		body   []byte
		want   int
	}{
		{"bad spec", http.MethodPost, "/v1/jobs", []byte("{nope"), http.StatusBadRequest},
		{"yaml sequence", http.MethodPost, "/v1/jobs", []byte("adapter:\n  - EM/A\n"), http.StatusBadRequest},
		{"collection put", http.MethodPut, "/v1/jobs", nil, http.StatusMethodNotAllowed},
		{"unknown get", http.MethodGet, "/v1/jobs/jdeadbeefdeadbeef", nil, http.StatusNotFound},
		{"unknown cancel", http.MethodDelete, "/v1/jobs/jdeadbeefdeadbeef", nil, http.StatusNotFound},
		{"bad id", http.MethodGet, "/v1/jobs/a/b", nil, http.StatusBadRequest},
		{"item post", http.MethodPost, "/v1/jobs/jdeadbeefdeadbeef", nil, http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		resp, blob := doReq(t, tc.method, ts.URL+tc.path, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, blob)
			continue
		}
		eb, ok := serve.ParseErrorEnvelope(blob)
		if !ok || eb.Code != serve.ErrorCode(tc.want) || eb.Retryable != serve.ErrorRetryable(tc.want) {
			t.Errorf("%s: body is not the canonical envelope: %s", tc.name, blob)
		}
	}
}
