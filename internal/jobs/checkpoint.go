package jobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// The checkpoint log is an append-only JSONL file, one record per line,
// named by the spec hash (job-<id>.ckpt.jsonl): a "plan" record first
// (pinning spec hash, input content hash, and shard layout), one "shard"
// record per committed shard carrying its answers, and a final "done"
// record. Appends are fsynced, so a record that made it to the log
// survives a SIGKILL; a record torn mid-write is dropped on the next open,
// exactly the tolerance obs/analyze gives trace files.
const (
	recordV  = 1
	recPlan  = "plan"
	recShard = "shard"
	recDone  = "done"
	ckptExt  = ".ckpt.jsonl"
	ckptPref = "job-"
)

// Record is one line of the checkpoint log; Type says which fields are
// meaningful (plan: V/SpecHash/Adapter/Rows/Shards/InputSHA; shard:
// Shard/Rows/Answers/Failures/Retries; done: Rows).
type Record struct {
	V        int      `json:"v,omitempty"`
	Type     string   `json:"type"`
	SpecHash string   `json:"spec_hash,omitempty"`
	Adapter  string   `json:"adapter,omitempty"`
	Rows     int      `json:"rows,omitempty"`
	Shards   int      `json:"shards,omitempty"`
	InputSHA string   `json:"input_sha,omitempty"`
	Shard    int      `json:"shard"`
	Answers  []string `json:"answers,omitempty"`
	Failures int      `json:"failures,omitempty"`
	Retries  int64    `json:"retries,omitempty"`
}

// LogState is what a read of the checkpoint log recovered: the plan
// record, every committed shard, and where the valid prefix of the file
// ends (a torn tail past it is dropped when the log is reopened).
type LogState struct {
	Plan   *Record
	Shards map[int]*Record
	Done   bool
	// Truncated reports that the file ended in a partial record — the
	// signature of a write torn by a kill — which was tolerated and will
	// be truncated away by OpenAppend.
	Truncated bool
	validOff  int64
}

// CheckpointPath is the log file for one spec id under dir.
func CheckpointPath(dir, id string) string {
	return filepath.Join(dir, ckptPref+id+ckptExt)
}

// ReadLog recovers the state of a checkpoint log. A missing file is an
// empty state, not an error. The final line is allowed to be a torn,
// unterminated record (dropped, Truncated set); a malformed record
// *before* fully-terminated ones is real corruption and a hard error —
// the same contract analyze.Load applies to trace files.
func ReadLog(path string) (*LogState, error) {
	st := &LogState{Shards: map[int]*Record{}}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return st, nil
	}
	if err != nil {
		return nil, fmt.Errorf("jobs: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var off int64
	line := 0
	for {
		raw, rerr := br.ReadBytes('\n')
		if len(raw) > 0 {
			line++
			if rerr != nil {
				// No trailing newline: the writer terminates every record,
				// so this is a tail torn by a kill. Tolerate and drop it —
				// its shard simply reruns.
				st.Truncated = true
				break
			}
			trimmed := bytes.TrimSpace(raw)
			if len(trimmed) > 0 {
				var rec Record
				if err := json.Unmarshal(trimmed, &rec); err != nil || rec.Type == "" {
					return nil, fmt.Errorf("jobs: checkpoint %s line %d: corrupt record %q", path, line, trimmed)
				}
				switch rec.Type {
				case recPlan:
					if st.Plan != nil {
						return nil, fmt.Errorf("jobs: checkpoint %s line %d: duplicate plan record", path, line)
					}
					if rec.V != recordV {
						return nil, fmt.Errorf("jobs: checkpoint %s: record version %d, this build speaks %d", path, rec.V, recordV)
					}
					st.Plan = &rec
				case recShard:
					st.Shards[rec.Shard] = &rec
				case recDone:
					st.Done = true
				default:
					return nil, fmt.Errorf("jobs: checkpoint %s line %d: unknown record type %q", path, line, rec.Type)
				}
			}
			off += int64(len(raw))
			st.validOff = off
		}
		if rerr != nil {
			if rerr == io.EOF {
				return st, nil
			}
			return nil, fmt.Errorf("jobs: reading %s: %w", path, rerr)
		}
	}
	return st, nil
}

// Log is the append handle over a checkpoint log. Appends are serialized
// and fsynced: once Append returns, the record survives a SIGKILL.
type Log struct {
	mu sync.Mutex
	f  *os.File
}

// OpenAppend opens the log for appending, first truncating away the torn
// tail ReadLog tolerated (so the file is a clean prefix of fully-
// terminated records before anything new lands after it).
func (st *LogState) OpenAppend(path string) (*Log, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("jobs: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: %w", err)
	}
	if err := f.Truncate(st.validOff); err != nil {
		f.Close()
		return nil, fmt.Errorf("jobs: truncating torn tail of %s: %w", path, err)
	}
	if _, err := f.Seek(st.validOff, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("jobs: %w", err)
	}
	return &Log{f: f}, nil
}

// Append writes one record and fsyncs.
func (l *Log) Append(rec *Record) error {
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: marshal checkpoint record: %w", err)
	}
	raw = append(raw, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.Write(raw); err != nil {
		return fmt.Errorf("jobs: appending checkpoint: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("jobs: syncing checkpoint: %w", err)
	}
	return nil
}

// Close closes the log file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}
