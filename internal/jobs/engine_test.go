package jobs

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/data"
	"repro/internal/dataio"
	"repro/internal/serve"
)

// fakeResolver answers each instance with its gold candidate and counts
// predicts per instance ID, so tests can assert zero duplicated work
// across an interrupt + resume.
type fakeResolver struct {
	mu       sync.Mutex
	predicts map[string]int
	failFor  map[string]int // ID → transient failures before success
	answer   func(in *data.Instance) string
}

func newFakeResolver() *fakeResolver {
	return &fakeResolver{predicts: map[string]int{}, failFor: map[string]int{}}
}

func (f *fakeResolver) Predict(_ context.Context, _ string, in *data.Instance) (string, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n := f.failFor[in.ID]; n > 0 {
		f.failFor[in.ID] = n - 1
		return "", false, errors.New("fake transient failure")
	}
	f.predicts[in.ID]++
	if f.answer != nil {
		return f.answer(in), false, nil
	}
	return in.Candidates[in.Gold], false, nil
}

func (f *fakeResolver) Warm(context.Context, string) (bool, error) { return false, nil }
func (f *fakeResolver) Snapshot() []serve.KeyStats                 { return nil }
func (f *fakeResolver) Resident() int                              { return 0 }

func (f *fakeResolver) count(id string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.predicts[id]
}

// writeInput writes an N-row JSON dataset and returns its path.
func writeInput(t *testing.T, dir string, rows int) string {
	t.Helper()
	ds := &data.Dataset{Name: "synthetic", Task: "EM"}
	for i := 0; i < rows; i++ {
		ds.Test = append(ds.Test, &data.Instance{
			ID:         fmt.Sprintf("row-%03d", i),
			Fields:     []data.Field{{Name: "title", Value: fmt.Sprintf("item %d", i)}},
			Candidates: []string{"match", "non-match"},
			Gold:       i % 2,
		})
	}
	path := filepath.Join(dir, "input.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := dataio.EncodeJSON(ds, "", f); err != nil {
		t.Fatal(err)
	}
	return path
}

func testSpec(t *testing.T, input, output string, shards int) *Spec {
	t.Helper()
	sp, err := ParseSpec([]byte(fmt.Sprintf(
		`{"adapter":"EM/Walmart-Amazon","input":{"path":%q},"output":{"path":%q},"shards":%d,"limits":{"shard_parallelism":1,"concurrency":2}}`,
		input, output, shards)))
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestPlanDeterministic(t *testing.T) {
	dir := t.TempDir()
	input := writeInput(t, dir, 10)
	sp := testSpec(t, input, filepath.Join(dir, "out.csv"), 4)
	eng := &Engine{Res: newFakeResolver(), CheckpointDir: dir}

	var renders [2]string
	for i := range renders {
		p, err := eng.Plan(sp)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		p.Render(&b)
		renders[i] = b.String()
	}
	if renders[0] != renders[1] {
		t.Fatalf("plan render not deterministic:\n%s\nvs\n%s", renders[0], renders[1])
	}

	p, _ := eng.Plan(sp)
	// 10 rows over 4 shards: 3,3,2,2 — contiguous, covering, in order.
	if len(p.Shards) != 4 || p.Shards[0].End != 3 || p.Shards[3].Start != 8 || p.Shards[3].End != 10 {
		t.Fatalf("bad shard layout: %+v", p.Shards)
	}
}

func TestRunInterruptResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	input := writeInput(t, dir, 12)

	// Reference: an uninterrupted run of the same rows.
	refRes := newFakeResolver()
	refOut := filepath.Join(dir, "ref.csv")
	refEng := &Engine{Res: refRes, CheckpointDir: filepath.Join(dir, "ckpt-ref")}
	refPlan, err := refEng.Plan(testSpec(t, input, refOut, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := refEng.Run(context.Background(), refPlan, nil); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel as soon as two shards have committed.
	res := newFakeResolver()
	out := filepath.Join(dir, "out.csv")
	sp := testSpec(t, input, out, 4)
	ckpt := filepath.Join(dir, "ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	eng := &Engine{Res: res, CheckpointDir: ckpt, OnCommit: func(_, committed int) {
		if committed >= 2 {
			cancel()
		}
	}}
	p, err := eng.Plan(sp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(ctx, p, nil); err == nil {
		t.Fatal("interrupted run should report an error")
	}
	if _, err := os.Stat(out); !os.IsNotExist(err) {
		t.Fatal("interrupted run must not write output")
	}

	// Resume: committed shards adopted, the rest runs, output appears.
	eng2 := &Engine{Res: res, CheckpointDir: ckpt}
	p2, err := eng2.Plan(sp)
	if err != nil {
		t.Fatal(err)
	}
	tr := &Tracker{}
	result, err := eng2.Run(context.Background(), p2, tr)
	if err != nil {
		t.Fatal(err)
	}
	if result.ResumedShards != 2 {
		t.Fatalf("resumed %d shards, want 2", result.ResumedShards)
	}

	// Zero duplicated predicts: every row answered exactly once across
	// interrupt + resume.
	for i := 0; i < 12; i++ {
		id := fmt.Sprintf("row-%03d", i)
		if n := res.count(id); n != 1 {
			t.Errorf("row %s predicted %d times, want exactly 1", id, n)
		}
	}

	// Byte identity with the uninterrupted run.
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(refOut)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("resumed output differs from uninterrupted run:\n%s\nvs\n%s", got, want)
	}

	// Resubmitting the finished job is a pure resume: no new predicts.
	if _, err := (&Engine{Res: res, CheckpointDir: ckpt}).Run(context.Background(), p2, nil); err != nil {
		t.Fatal(err)
	}
	if n := res.count("row-000"); n != 1 {
		t.Fatalf("rerun of a done job re-predicted rows (%d)", n)
	}
}

func TestRunRetriesTransient(t *testing.T) {
	dir := t.TempDir()
	input := writeInput(t, dir, 4)
	res := newFakeResolver()
	res.failFor["row-001"] = 2 // two transient failures, then success
	sp := testSpec(t, input, filepath.Join(dir, "out.csv"), 2)
	eng := &Engine{Res: res, CheckpointDir: dir}
	p, err := eng.Plan(sp)
	if err != nil {
		t.Fatal(err)
	}
	result, err := eng.Run(context.Background(), p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if result.Retries < 2 {
		t.Fatalf("retries = %d, want >= 2", result.Retries)
	}
	if result.RowFailures != 0 {
		t.Fatalf("row failures = %d, want 0", result.RowFailures)
	}
}

func TestRunFailureBudget(t *testing.T) {
	dir := t.TempDir()
	input := writeInput(t, dir, 4)

	// The resolver answers row-002 with something outside its candidate
	// set, so Verify rejects it every time.
	badAnswer := func(in *data.Instance) string {
		if in.ID == "row-002" {
			return "bogus"
		}
		return in.Candidates[in.Gold]
	}

	// Budget 0: the first lost row kills the job.
	res := newFakeResolver()
	res.answer = badAnswer
	sp := testSpec(t, input, filepath.Join(dir, "out0.csv"), 1)
	eng := &Engine{Res: res, CheckpointDir: filepath.Join(dir, "c0")}
	p, err := eng.Plan(sp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), p, nil); err == nil || !strings.Contains(err.Error(), "candidates") {
		t.Fatalf("want verify failure to abort, got %v", err)
	}

	// Budget 1: the job completes and marks the lost row empty.
	res2 := newFakeResolver()
	res2.answer = badAnswer
	out := filepath.Join(dir, "out1.csv")
	sp2, err := ParseSpec([]byte(fmt.Sprintf(
		`{"adapter":"EM/Walmart-Amazon","input":{"path":%q},"output":{"path":%q},"shards":1,"limits":{"max_row_failures":1,"retries":0}}`,
		input, out)))
	if err != nil {
		t.Fatal(err)
	}
	eng2 := &Engine{Res: res2, CheckpointDir: filepath.Join(dir, "c1")}
	p2, err := eng2.Plan(sp2)
	if err != nil {
		t.Fatal(err)
	}
	result, err := eng2.Run(context.Background(), p2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if result.RowFailures != 1 {
		t.Fatalf("row failures = %d, want 1", result.RowFailures)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), "row-002,\n") {
		t.Fatalf("lost row not marked empty in output:\n%s", blob)
	}
}

func TestRunRejectsChangedInput(t *testing.T) {
	dir := t.TempDir()
	input := writeInput(t, dir, 6)
	out := filepath.Join(dir, "out.csv")
	sp := testSpec(t, input, out, 2)
	res := newFakeResolver()
	eng := &Engine{Res: res, CheckpointDir: dir}
	p, err := eng.Plan(sp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), p, nil); err != nil {
		t.Fatal(err)
	}

	// Rewrite the input with different content; resuming must refuse.
	blob, err := os.ReadFile(input)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(input, []byte(strings.Replace(string(blob), "item 0", "item zero", 1)), 0o644); err != nil {
		t.Fatal(err)
	}
	p2, err := eng.Plan(sp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), p2, nil); err == nil || !strings.Contains(err.Error(), "changed") {
		t.Fatalf("want changed-input refusal, got %v", err)
	}
}
