// Chaos tests: the full oracle chain — real simulated GPT → fault injector
// → resilient client → degradation-aware AKB search — under sustained fault
// rates. These run with -race in tier 1 (script/check.sh); the concurrency
// test exercises the shared-recorder path the parallel experiment harness
// uses.
package faults_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/akb"
	"repro/internal/data"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/resilience"
	"repro/internal/tasks"
)

// chaosInstances is an ED validation set with a learnable but noisy signal
// (percent signs in a numeric column are the errors, with a few flipped
// labels): the real oracle induces non-trivial candidates, yet no candidate
// scores 100, so the search never converges early and every iteration —
// hence many oracle calls — runs.
func chaosInstances(n int) []*data.Instance {
	var out []*data.Instance
	for i := 0; i < n; i++ {
		v, gold := "0.05", 1
		if i%2 == 0 {
			v, gold = "0.05%", 0
		}
		if i%7 == 3 {
			gold = 1 - gold
		}
		out = append(out, &data.Instance{
			Fields:     []data.Field{{Name: "abv", Value: v}},
			Target:     "abv",
			Candidates: []string{tasks.AnswerYes, tasks.AnswerNo},
			Gold:       gold,
		})
	}
	return out
}

// hintPredictor answers with the candidate the knowledge weighs highest —
// enough model for Evaluate to rank candidates.
type hintPredictor struct{}

func (hintPredictor) PredictWith(spec tasks.Spec, in *data.Instance, k *tasks.Knowledge) string {
	hints := k.Hints(in)
	best, bestH := -1, 0.0
	for i, h := range hints {
		if h > bestH {
			best, bestH = i, h
		}
	}
	if best >= 0 {
		return in.Candidates[best]
	}
	return tasks.AnswerNo
}

// chaosChain builds the production fault chain (the same shape
// eval.(*Zoo).fallibleOracle assembles): simulated GPT → injector →
// resilient client with elided sleeps.
func chaosChain(rate float64, seed int64, kinds []faults.Kind, rec *obs.Recorder) (*faults.Injector, akb.FallibleOracle) {
	inj := faults.Wrap(oracle.New(seed+771), faults.Config{Rate: rate, Seed: seed, Kinds: kinds, Rec: rec})
	return inj, resilience.New(inj, resilience.Policy{
		Seed:        seed + 1,
		Sleep:       func(time.Duration) {},
		CallTimeout: -1,
		Rec:         rec,
	})
}

func runChaosSearch(t *testing.T, rate float64, seed int64, rec *obs.Recorder) (*akb.Result, *faults.Injector) {
	t.Helper()
	inj, chain := chaosChain(rate, seed, nil, rec)
	res := akb.SearchFallible(context.Background(), hintPredictor{}, chain,
		tasks.ED, chaosInstances(20), nil, akb.DefaultConfig(seed))
	if res == nil {
		t.Fatalf("seed %d: nil result under faults", seed)
	}
	if res.BestScore < 0 || res.BestScore > 100 || math.IsNaN(res.BestScore) {
		t.Fatalf("seed %d: score %v outside [0,100]", seed, res.BestScore)
	}
	if res.Best != nil {
		for _, r := range res.Best.Rules {
			if math.IsNaN(r.Weight) || math.IsInf(r.Weight, 0) || r.Weight < 0 || r.Weight > 1 {
				t.Fatalf("seed %d: unsanitized weight %v survived to Best", seed, r.Weight)
			}
		}
		if len(res.Best.Text) > akb.MaxKnowledgeText {
			t.Fatalf("seed %d: oversized text survived to Best (%d bytes)", seed, len(res.Best.Text))
		}
	}
	return res, inj
}

// TestChaosSearchSurvives drives full searches at a 30% fault rate across
// many seeds: never a panic, never a nil result, never a malformed winner.
// Degradation is NOT asserted here — at 30% with three attempts per call
// the retry layer absorbs nearly every transient fault, which is the point;
// the dead-oracle test below covers the degradation path.
func TestChaosSearchSurvives(t *testing.T) {
	injected := 0
	for seed := int64(1); seed <= 10; seed++ {
		_, inj := runChaosSearch(t, 0.3, seed, nil)
		injected += len(inj.Schedule())
	}
	if injected == 0 {
		t.Fatal("30% faults over 10 seeds injected nothing — injection not reaching the search")
	}
}

// TestChaosSearchSurvivesConcurrently runs chains in parallel against one
// shared recorder, the shape of a -workers grid under -faults; with -race
// this is the data-race gate on the whole fault path.
func TestChaosSearchSurvivesConcurrently(t *testing.T) {
	rec := obs.NewRecorder(obs.NewRegistry(), nil)
	var wg sync.WaitGroup
	for seed := int64(1); seed <= 4; seed++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			runChaosSearch(t, 0.3, seed, rec)
		}(seed)
	}
	wg.Wait()
	if rec.Metrics.Snapshot().Counters["faults.injected"] == 0 {
		t.Fatal("no injections recorded on the shared registry")
	}
}

// TestChaosSeedReproducible pins determinism end to end: two runs with the
// same fault seed produce the identical fault schedule, the identical
// result, and byte-identical canonical traces.
func TestChaosSeedReproducible(t *testing.T) {
	run := func(seed int64) ([]faults.Injected, *akb.Result, []byte) {
		var buf bytes.Buffer
		tr := obs.NewTracer(&buf)
		rec := obs.NewRecorder(nil, tr)
		inj, chain := chaosChain(0.5, seed, nil, rec)
		cfg := akb.DefaultConfig(seed)
		cfg.Rec = rec
		res := akb.SearchFallible(context.Background(), hintPredictor{}, chain,
			tasks.ED, chaosInstances(20), nil, cfg)
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		recs, err := obs.ReadTrace(&buf)
		if err != nil {
			t.Fatal(err)
		}
		canon, err := json.Marshal(obs.CanonicalTrace(recs))
		if err != nil {
			t.Fatal(err)
		}
		return inj.Schedule(), res, canon
	}
	schedA, resA, traceA := run(3)
	schedB, resB, traceB := run(3)
	if len(schedA) == 0 {
		t.Fatal("rate 0.5 injected nothing")
	}
	if !reflect.DeepEqual(schedA, schedB) {
		t.Fatalf("same seed, different fault schedules:\n%+v\n%+v", schedA, schedB)
	}
	if resA.BestScore != resB.BestScore || resA.DegradedRounds != resB.DegradedRounds ||
		resA.Rejected != resB.Rejected || !reflect.DeepEqual(resA.Best, resB.Best) {
		t.Fatalf("same seed, different results: %+v vs %+v", resA, resB)
	}
	if !bytes.Equal(traceA, traceB) {
		t.Fatalf("same seed, canonical traces differ:\n%s\n%s", traceA, traceB)
	}
	if _, _, traceC := run(4); bytes.Equal(traceA, traceC) {
		t.Fatal("different seeds produced identical canonical traces")
	}
}

// TestChaosDeadOracleDegrades pins the worst case: every call fails
// permanently at the transport. The breaker trips, the search completes,
// and the result owns up to full degradation.
func TestChaosDeadOracleDegrades(t *testing.T) {
	rec := obs.NewRecorder(obs.NewRegistry(), nil)
	_, chain := chaosChain(1, 6, []faults.Kind{faults.KindServerError}, rec)
	cfg := akb.DefaultConfig(6)
	cfg.Rec = rec
	res := akb.SearchFallible(context.Background(), hintPredictor{}, chain,
		tasks.ED, chaosInstances(10), nil, cfg)
	if res == nil || !res.Degraded() {
		t.Fatalf("dead oracle must degrade, got %+v", res)
	}
	if res.Best != nil {
		t.Fatalf("dead oracle cannot have produced knowledge: %+v", res.Best)
	}
	snap := rec.Metrics.Snapshot()
	if snap.Counters["resilience.breaker_trips"] == 0 {
		t.Fatalf("breaker never tripped under a dead oracle: %+v", snap.Counters)
	}
	if snap.Counters["akb.degraded_rounds"] != int64(res.DegradedRounds) {
		t.Fatalf("degraded-round counter (%d) disagrees with the result (%d)",
			snap.Counters["akb.degraded_rounds"], res.DegradedRounds)
	}
}
