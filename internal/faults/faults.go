// Package faults is the deterministic chaos-injection layer of the oracle
// path: it wraps any infallible akb.Oracle in the error-returning
// akb.FallibleOracle interface and injects a seeded, reproducible schedule
// of the failure modes a remote closed-source-LLM API exhibits under load —
// added latency, timeouts, rate limits, transient server errors, and
// empty, truncated, or malformed knowledge candidates.
//
// Determinism is the point: the injector draws every fault decision from
// its own rand.Rand, never from the wrapped oracle's, so (a) the same seed
// produces the same fault schedule call-for-call, making chaos runs
// diffable with `knowtrans obs diff`, and (b) at Rate 0 the wrapped oracle
// sees exactly the call sequence it would have seen unwrapped, byte-
// identical results included. The schedule each injector actually executed
// is recorded and retrievable via Schedule for assertions and offline
// analysis.
package faults

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/akb"
	"repro/internal/obs"
	"repro/internal/tasks"
)

// Kind names one injectable failure mode.
type Kind string

const (
	// KindLatency delays the call by Config.Latency, then lets it succeed.
	KindLatency Kind = "latency"
	// KindTimeout fails the call as a deadline expiry (the error unwraps to
	// context.DeadlineExceeded). Transient: a retry may succeed.
	KindTimeout Kind = "timeout"
	// KindRateLimit fails the call like an HTTP 429. Transient.
	KindRateLimit Kind = "rate-limit"
	// KindServerError fails the call like an HTTP 5xx. Transient.
	KindServerError Kind = "server-error"
	// KindEmpty returns a well-formed but empty response: no candidates
	// from Generate/Refine, an empty string from Feedback. Not an error —
	// this is the "the model returned nothing usable" mode.
	KindEmpty Kind = "empty"
	// KindTruncated returns a response cut off mid-stream: knowledge text
	// sliced, rules dropped, serialization directives lost.
	KindTruncated Kind = "truncated"
	// KindMalformed corrupts the response: NaN rule weights, runaway text —
	// the shapes akb.SanitizeCandidates must catch before Evaluate.
	KindMalformed Kind = "malformed"
)

// AllKinds lists every injectable fault kind, in spec order.
var AllKinds = []Kind{
	KindLatency, KindTimeout, KindRateLimit, KindServerError,
	KindEmpty, KindTruncated, KindMalformed,
}

// Error is an injected call failure.
type Error struct {
	Kind Kind
	Call int // 1-based index of the oracle call that faulted
}

func (e *Error) Error() string {
	return fmt.Sprintf("faults: injected %s (oracle call %d)", e.Kind, e.Call)
}

// Temporary reports whether a retry of the failed call may succeed — true
// for the transport-level faults a resilient client should retry.
func (e *Error) Temporary() bool {
	switch e.Kind {
	case KindTimeout, KindRateLimit, KindServerError:
		return true
	}
	return false
}

// Unwrap lets errors.Is(err, context.DeadlineExceeded) hold for injected
// timeouts, matching how a real client surfaces an expired deadline.
func (e *Error) Unwrap() error {
	if e.Kind == KindTimeout {
		return context.DeadlineExceeded
	}
	return nil
}

// Config parameterizes an Injector.
type Config struct {
	// Rate is the probability in [0, 1] that any single oracle call faults.
	Rate float64
	// Seed drives the fault schedule; same seed, same schedule.
	Seed int64
	// Kinds restricts injection to a subset of fault kinds (nil = AllKinds).
	Kinds []Kind
	// Latency is the delay KindLatency injects (0 disables the sleep, which
	// keeps seeded chaos tests and experiment grids wall-clock fast while
	// still exercising the pass-through path).
	Latency time.Duration
	// Rec, when non-nil, counts injections (faults.injected and
	// faults.injected/<kind>) and emits one faults.inject event per fault.
	Rec *obs.Recorder
}

// Injected is one entry of an injector's executed fault schedule.
type Injected struct {
	Call int    // 1-based oracle call index
	Op   string // generate | feedback | refine
	Kind Kind
}

// Injector wraps an akb.Oracle and implements akb.FallibleOracle with
// fault injection. Safe for concurrent use (a single lock orders the
// schedule), though the intended deployment is one injector per AKB search
// so schedules stay independent of worker interleaving.
type Injector struct {
	inner akb.Oracle
	cfg   Config
	kinds []Kind

	mu       sync.Mutex
	rng      *rand.Rand
	calls    int
	schedule []Injected
}

// Wrap returns an injector around inner. It panics on a Rate outside
// [0, 1] — a misconfigured chaos harness should fail loudly, not inject a
// silently clamped rate.
func Wrap(inner akb.Oracle, cfg Config) *Injector {
	if cfg.Rate < 0 || cfg.Rate > 1 {
		panic(fmt.Sprintf("faults: rate %v outside [0,1]", cfg.Rate))
	}
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		kinds = AllKinds
	}
	return &Injector{
		inner: inner,
		cfg:   cfg,
		kinds: append([]Kind(nil), kinds...),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

var _ akb.FallibleOracle = (*Injector)(nil)

// Calls returns the number of oracle calls seen so far.
func (f *Injector) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// Schedule returns a copy of the executed fault schedule: one entry per
// injected fault, in call order. Two runs with the same seed and the same
// call sequence produce identical schedules.
func (f *Injector) Schedule() []Injected {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Injected(nil), f.schedule...)
}

// draw advances the call counter and decides whether — and which — fault
// this call suffers. The two rng draws happen on every call (even below
// the rate threshold only the first is consumed), keeping the schedule a
// pure function of (seed, call index, rate).
func (f *Injector) draw(op string) (Kind, int, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.cfg.Rate == 0 || f.rng.Float64() >= f.cfg.Rate {
		return "", f.calls, false
	}
	kind := f.kinds[f.rng.Intn(len(f.kinds))]
	f.schedule = append(f.schedule, Injected{Call: f.calls, Op: op, Kind: kind})
	f.cfg.Rec.Count("faults.injected", 1)
	f.cfg.Rec.Count("faults.injected/"+string(kind), 1)
	f.cfg.Rec.Event("faults.inject", "call", f.calls, "op", op, "kind", string(kind))
	return kind, f.calls, true
}

// fail maps an error-kind fault to its injected error; ok=false means the
// kind corrupts the response instead of failing the call.
func fail(kind Kind, call int) (error, bool) {
	switch kind {
	case KindTimeout, KindRateLimit, KindServerError:
		return &Error{Kind: kind, Call: call}, true
	}
	return nil, false
}

func (f *Injector) sleepLatency() {
	if f.cfg.Latency > 0 {
		time.Sleep(f.cfg.Latency)
	}
}

// Generate implements akb.FallibleOracle.
func (f *Injector) Generate(ctx context.Context, req akb.GenerateRequest) ([]*tasks.Knowledge, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	kind, call, faulted := f.draw("generate")
	if faulted {
		if err, ok := fail(kind, call); ok {
			return nil, err
		}
		switch kind {
		case KindLatency:
			f.sleepLatency()
		case KindEmpty:
			// The upstream model still consumed the call (and its rng);
			// only the response is lost.
			f.inner.Generate(req)
			return nil, nil
		case KindTruncated:
			return truncateAll(f.inner.Generate(req)), nil
		case KindMalformed:
			return f.malformAll(f.inner.Generate(req)), nil
		}
	}
	return f.inner.Generate(req), nil
}

// Feedback implements akb.FallibleOracle.
func (f *Injector) Feedback(ctx context.Context, req akb.FeedbackRequest) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	kind, call, faulted := f.draw("feedback")
	if faulted {
		if err, ok := fail(kind, call); ok {
			return "", err
		}
		switch kind {
		case KindLatency:
			f.sleepLatency()
		case KindEmpty:
			f.inner.Feedback(req)
			return "", nil
		case KindTruncated:
			fb := f.inner.Feedback(req)
			return fb[:len(fb)/3], nil
		case KindMalformed:
			f.inner.Feedback(req)
			return strings.Repeat("\x00\xff", 64), nil
		}
	}
	return f.inner.Feedback(req), nil
}

// Refine implements akb.FallibleOracle.
func (f *Injector) Refine(ctx context.Context, req akb.RefineRequest) ([]*tasks.Knowledge, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	kind, call, faulted := f.draw("refine")
	if faulted {
		if err, ok := fail(kind, call); ok {
			return nil, err
		}
		switch kind {
		case KindLatency:
			f.sleepLatency()
		case KindEmpty:
			f.inner.Refine(req)
			return nil, nil
		case KindTruncated:
			return truncateAll(f.inner.Refine(req)), nil
		case KindMalformed:
			return f.malformAll(f.inner.Refine(req)), nil
		}
	}
	return f.inner.Refine(req), nil
}

// TokenCount forwards the wrapped oracle's token meter when it has one, so
// the resilience layer's token budget sees through the injector.
func (f *Injector) TokenCount() (input, output int) {
	if m, ok := f.inner.(interface{ TokenCount() (int, int) }); ok {
		return m.TokenCount()
	}
	return 0, 0
}

// truncateAll simulates a response cut off mid-stream: knowledge text is
// sliced to a third, the tail half of the rules is lost, serialization
// directives are dropped entirely. Corruption happens on clones — the
// wrapped oracle's own objects are never mutated.
func truncateAll(ks []*tasks.Knowledge) []*tasks.Knowledge {
	out := make([]*tasks.Knowledge, 0, len(ks))
	for _, k := range ks {
		if k == nil {
			out = append(out, nil)
			continue
		}
		c := k.Clone()
		c.Text = c.Text[:len(c.Text)/3]
		c.Rules = c.Rules[:len(c.Rules)/2]
		c.Serial = nil
		out = append(out, c)
	}
	return out
}

// malformAll corrupts candidates the way a garbled API response would:
// non-finite and negative rule weights plus runaway text — exactly the
// malformations akb.SanitizeCandidates exists to catch.
func (f *Injector) malformAll(ks []*tasks.Knowledge) []*tasks.Knowledge {
	out := make([]*tasks.Knowledge, 0, len(ks))
	for _, k := range ks {
		if k == nil {
			out = append(out, nil)
			continue
		}
		c := k.Clone()
		if len(c.Rules) > 0 {
			c.Rules[0].Weight = math.NaN()
		}
		if len(c.Rules) > 1 {
			c.Rules[1].Weight = -3
		}
		c.Text = c.Text + strings.Repeat("#", akb.MaxKnowledgeText)
		out = append(out, c)
	}
	return out
}
