package faults

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"time"
)

// ParseSpec parses the compact fault spec the CLI's -faults flag accepts:
//
//	rate=0.3,seed=9[,kinds=timeout+empty+malformed][,latency=5ms]
//
// Keys may appear in any order; unknown keys and out-of-range values are
// errors. kinds is a +-separated subset of AllKinds (omit for all); latency
// only matters when the latency kind can fire. rate=0 is valid and useful:
// the whole resilience chain is exercised with zero injections, which must
// leave every result byte-identical to an unwrapped run.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	seenRate := false
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Config{}, fmt.Errorf("faults: bad spec element %q (want key=value)", part)
		}
		switch key {
		case "rate":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil || r < 0 || r > 1 {
				return Config{}, fmt.Errorf("faults: rate %q must be a number in [0,1]", val)
			}
			cfg.Rate = r
			seenRate = true
		case "seed":
			s, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Config{}, fmt.Errorf("faults: bad seed %q", val)
			}
			cfg.Seed = s
		case "kinds":
			for _, k := range strings.Split(val, "+") {
				kind, err := parseKind(k)
				if err != nil {
					return Config{}, err
				}
				cfg.Kinds = append(cfg.Kinds, kind)
			}
		case "latency":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return Config{}, fmt.Errorf("faults: bad latency %q", val)
			}
			cfg.Latency = d
		default:
			return Config{}, fmt.Errorf("faults: unknown spec key %q", key)
		}
	}
	if !seenRate {
		return Config{}, fmt.Errorf("faults: spec %q needs rate=<0..1>", spec)
	}
	return cfg, nil
}

func parseKind(s string) (Kind, error) {
	for _, k := range AllKinds {
		if string(k) == s {
			return k, nil
		}
	}
	return "", fmt.Errorf("faults: unknown fault kind %q (valid: %s)", s, kindList())
}

func kindList() string {
	names := make([]string, len(AllKinds))
	for i, k := range AllKinds {
		names[i] = string(k)
	}
	return strings.Join(names, ", ")
}

// DeriveSeed folds a per-cell seed into the spec's base seed, so every
// experiment cell gets its own deterministic fault schedule that is
// independent of worker scheduling — the same construction the eval
// harness uses for few-shot sampling (content-addressed, never
// order-addressed).
func DeriveSeed(base, cell int64) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "faults|%d|%d", base, cell)
	return int64(h.Sum64() & 0x7fffffffffffffff)
}
