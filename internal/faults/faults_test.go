package faults

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/akb"
	"repro/internal/tasks"
)

// scriptOracle returns fixed responses and counts calls.
type scriptOracle struct {
	generate, feedback, refine int
}

func knowledgeScript() []*tasks.Knowledge {
	return []*tasks.Knowledge{{
		Text: "first candidate prose, long enough to visibly truncate",
		Rules: []tasks.Rule{
			{Weight: 0.9}, {Weight: 0.8}, {Weight: 0.7},
		},
		Serial: []tasks.SerialDirective{{Action: tasks.ActionIgnore, Attr: "price"}},
	}}
}

func (o *scriptOracle) Generate(akb.GenerateRequest) []*tasks.Knowledge {
	o.generate++
	return knowledgeScript()
}

func (o *scriptOracle) Feedback(akb.FeedbackRequest) string {
	o.feedback++
	return "a feedback string of some length for truncation"
}

func (o *scriptOracle) Refine(akb.RefineRequest) []*tasks.Knowledge {
	o.refine++
	return knowledgeScript()
}

func allCalls(f *Injector, n int) ([][]*tasks.Knowledge, []error) {
	ctx := context.Background()
	var outs [][]*tasks.Knowledge
	var errs []error
	for i := 0; i < n; i++ {
		ks, err := f.Generate(ctx, akb.GenerateRequest{})
		outs, errs = append(outs, ks), append(errs, err)
	}
	return outs, errs
}

func TestRateZeroIsTransparent(t *testing.T) {
	inner := &scriptOracle{}
	f := Wrap(inner, Config{Rate: 0, Seed: 1})
	outs, errs := allCalls(f, 50)
	for i := range outs {
		if errs[i] != nil {
			t.Fatalf("rate 0 injected an error: %v", errs[i])
		}
		if !reflect.DeepEqual(outs[i], knowledgeScript()) {
			t.Fatalf("rate 0 altered a response: %+v", outs[i])
		}
	}
	if inner.generate != 50 {
		t.Fatalf("inner saw %d calls, want 50", inner.generate)
	}
	if len(f.Schedule()) != 0 {
		t.Fatalf("rate 0 produced a schedule: %+v", f.Schedule())
	}
}

func TestScheduleIsSeedDeterministic(t *testing.T) {
	run := func(seed int64) []Injected {
		f := Wrap(&scriptOracle{}, Config{Rate: 0.4, Seed: seed})
		ctx := context.Background()
		for i := 0; i < 30; i++ {
			f.Generate(ctx, akb.GenerateRequest{})
			f.Feedback(ctx, akb.FeedbackRequest{})
			f.Refine(ctx, akb.RefineRequest{})
		}
		return f.Schedule()
	}
	a, b := run(7), run(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules:\n%+v\n%+v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("rate 0.4 over 90 calls injected nothing")
	}
	if c := run(8); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestInjectedErrorSemantics(t *testing.T) {
	for _, kind := range []Kind{KindTimeout, KindRateLimit, KindServerError} {
		f := Wrap(&scriptOracle{}, Config{Rate: 1, Seed: 3, Kinds: []Kind{kind}})
		_, err := f.Generate(context.Background(), akb.GenerateRequest{})
		if err == nil {
			t.Fatalf("%s: no error injected", kind)
		}
		var fe *Error
		if !errors.As(err, &fe) || fe.Kind != kind || !fe.Temporary() {
			t.Fatalf("%s: wrong error %v", kind, err)
		}
		if kind == KindTimeout && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("timeout should unwrap to DeadlineExceeded: %v", err)
		}
	}
}

func TestCorruptionKinds(t *testing.T) {
	inner := &scriptOracle{}
	ctx := context.Background()

	f := Wrap(inner, Config{Rate: 1, Seed: 3, Kinds: []Kind{KindEmpty}})
	ks, err := f.Generate(ctx, akb.GenerateRequest{})
	if err != nil || len(ks) != 0 {
		t.Fatalf("empty fault: ks=%v err=%v", ks, err)
	}
	if inner.generate != 1 {
		t.Fatal("empty fault must still consume the inner call")
	}
	fb, err := f.Feedback(ctx, akb.FeedbackRequest{})
	if err != nil || fb != "" {
		t.Fatalf("empty feedback: %q err=%v", fb, err)
	}

	f = Wrap(inner, Config{Rate: 1, Seed: 3, Kinds: []Kind{KindTruncated}})
	ks, _ = f.Generate(ctx, akb.GenerateRequest{})
	orig := knowledgeScript()[0]
	if len(ks) != 1 || len(ks[0].Text) >= len(orig.Text) || len(ks[0].Rules) >= len(orig.Rules) || ks[0].Serial != nil {
		t.Fatalf("truncation did not shrink the candidate: %+v", ks[0])
	}

	f = Wrap(inner, Config{Rate: 1, Seed: 3, Kinds: []Kind{KindMalformed}})
	ks, _ = f.Generate(ctx, akb.GenerateRequest{})
	if len(ks) != 1 || !math.IsNaN(ks[0].Rules[0].Weight) || ks[0].Rules[1].Weight >= 0 {
		t.Fatalf("malformation missing: %+v", ks[0])
	}
	if len(ks[0].Text) <= akb.MaxKnowledgeText {
		t.Fatalf("malformed text should exceed the sanitizer cap, %d bytes", len(ks[0].Text))
	}
	// And the sanitizer must catch exactly this shape.
	kept, rejected := akb.SanitizeCandidates(ks)
	if rejected != 0 || len(kept) != 1 {
		t.Fatalf("sanitizer rejected a repairable candidate: kept=%d rejected=%d", len(kept), rejected)
	}
	if len(kept[0].Rules) != 1 || kept[0].Rules[0].Weight != 0.7 || len(kept[0].Text) != akb.MaxKnowledgeText {
		t.Fatalf("sanitizer repair wrong: %+v", kept[0])
	}
}

func TestCorruptionClonesNotOriginals(t *testing.T) {
	shared := knowledgeScript()
	inner := &fixedOracle{ks: shared}
	f := Wrap(inner, Config{Rate: 1, Seed: 5, Kinds: []Kind{KindMalformed}})
	f.Generate(context.Background(), akb.GenerateRequest{})
	if math.IsNaN(shared[0].Rules[0].Weight) || len(shared[0].Text) > 100 {
		t.Fatalf("injector mutated the oracle's own candidate: %+v", shared[0])
	}
}

type fixedOracle struct{ ks []*tasks.Knowledge }

func (o *fixedOracle) Generate(akb.GenerateRequest) []*tasks.Knowledge { return o.ks }
func (o *fixedOracle) Feedback(akb.FeedbackRequest) string             { return "fb" }
func (o *fixedOracle) Refine(akb.RefineRequest) []*tasks.Knowledge     { return o.ks }

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("rate=0.3,seed=9,kinds=timeout+empty,latency=5ms")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Rate: 0.3, Seed: 9, Kinds: []Kind{KindTimeout, KindEmpty}, Latency: 5 * time.Millisecond}
	if !reflect.DeepEqual(cfg, want) {
		t.Fatalf("got %+v want %+v", cfg, want)
	}
	if cfg, err = ParseSpec("rate=0"); err != nil || cfg.Rate != 0 {
		t.Fatalf("rate=0 must be a valid spec: %+v %v", cfg, err)
	}
	for _, bad := range []string{
		"", "seed=9", "rate=1.5", "rate=x", "rate=0.1,bogus=1",
		"rate=0.1,kinds=nope", "rate=0.1,latency=-1s", "rate",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("spec %q should not parse", bad)
		}
	}
}

func TestDeriveSeedIndependence(t *testing.T) {
	seen := map[int64]bool{}
	for cell := int64(0); cell < 100; cell++ {
		s := DeriveSeed(9, cell)
		if s < 0 || seen[s] {
			t.Fatalf("derived seed %d (cell %d) negative or colliding", s, cell)
		}
		seen[s] = true
	}
	if DeriveSeed(9, 1) != DeriveSeed(9, 1) {
		t.Fatal("DeriveSeed not deterministic")
	}
}

func TestWrapRejectsBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Wrap accepted rate 2")
		}
	}()
	Wrap(&scriptOracle{}, Config{Rate: 2})
}
