package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestStatusForMapping pins the full error→status table, wrapped and bare:
// the router depends on these statuses to tell terminal client errors
// (never retry) from backend trouble (fail over).
func TestStatusForMapping(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"bad key", ErrBadKey, http.StatusBadRequest},
		{"bad key wrapped", fmt.Errorf("validate: %w", ErrBadKey), http.StatusBadRequest},
		{"empty key", ValidateKey(""), http.StatusBadRequest},
		{"slashless key", ValidateKey("WalmartAmazon"), http.StatusBadRequest},
		{"unknown key", ErrUnknownKey, http.StatusNotFound},
		{"unknown key wrapped", fmt.Errorf("transfer: %w", ErrUnknownKey), http.StatusNotFound},
		{"overloaded", ErrOverloaded, http.StatusTooManyRequests},
		{"overloaded wrapped", fmt.Errorf("%w: 99 in flight", ErrOverloaded), http.StatusTooManyRequests},
		{"draining", ErrDraining, http.StatusServiceUnavailable},
		{"deadline", context.DeadlineExceeded, http.StatusGatewayTimeout},
		{"deadline wrapped", fmt.Errorf("predict: %w", context.DeadlineExceeded), http.StatusGatewayTimeout},
		{"canceled", context.Canceled, 499},
		{"backend failure", errors.New("model exploded"), http.StatusBadGateway},
	}
	for _, tc := range cases {
		if got := statusFor(tc.err); got != tc.want {
			t.Errorf("statusFor(%s) = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestValidateKey(t *testing.T) {
	for _, ok := range []string{"EM/Walmart-Amazon", "ED/hospital", "SM/a"} {
		if err := ValidateKey(ok); err != nil {
			t.Errorf("ValidateKey(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"", "EM", "EM/", "/hospital", "EM/a/b", "/"} {
		err := ValidateKey(bad)
		if !errors.Is(err, ErrBadKey) {
			t.Errorf("ValidateKey(%q) = %v, want ErrBadKey", bad, err)
		}
	}
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestReadyzAndDrain: /readyz is readiness, /healthz is liveness. A drain
// flips readiness (503 + Retry-After) and sheds new predicts the same way
// while liveness stays 200 — exactly what a router needs to stop routing
// to a backend that is shutting down without declaring it dead.
func TestReadyzAndDrain(t *testing.T) {
	reg := NewRegistry(newStubTransferer(0).transfer, Options{})
	s := NewServer(reg, Options{})
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	resp, body := getBody(t, srv.URL+"/readyz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz while serving: %d (%s), want 200", resp.StatusCode, body)
	}
	var rr ReadyResponse
	if err := json.Unmarshal(body, &rr); err != nil || !rr.OK || rr.Draining {
		t.Fatalf("serving readyz body = %s", body)
	}

	s.StartDrain()
	if !s.Draining() {
		t.Fatal("Draining() = false after StartDrain")
	}

	resp, body = getBody(t, srv.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d (%s), want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining readyz carries no Retry-After")
	}
	if err := json.Unmarshal(body, &rr); err != nil || rr.OK || !rr.Draining {
		t.Fatalf("draining readyz body = %s", body)
	}

	// Liveness is unaffected: the process is up, just not accepting.
	resp, body = getBody(t, srv.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: %d, want 200", resp.StatusCode)
	}
	var hr HealthResponse
	if err := json.Unmarshal(body, &hr); err != nil || !hr.OK || !hr.Draining {
		t.Fatalf("draining healthz body = %s", body)
	}

	// New predicts shed 503 + Retry-After.
	presp, pbody := postJSON(t, srv.URL+"/v1/predict", PredictRequest{
		Adapter:  "EM/A",
		Instance: WireInstance{ID: "1", Candidates: []string{"y", "n"}},
	})
	if presp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("predict while draining: %d (%s), want 503", presp.StatusCode, pbody)
	}
	if presp.Header.Get("Retry-After") == "" {
		t.Fatal("shed predict carries no Retry-After")
	}
	// Warm sheds too.
	wresp, _ := postJSON(t, srv.URL+"/v1/adapters", WarmRequest{Key: "EM/B"})
	if wresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("warm while draining: %d, want 503", wresp.StatusCode)
	}
}

// TestOverloadShed: past MaxInflight concurrent requests, predict sheds
// 429 with Retry-After instead of queueing without bound.
func TestOverloadShed(t *testing.T) {
	tr := newStubTransferer(300 * time.Millisecond) // slow cold start holds the slot
	reg := NewRegistry(tr.transfer, Options{})
	s := NewServer(reg, Options{MaxInflight: 1})
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		raw, _ := json.Marshal(PredictRequest{
			Adapter:  "EM/slow",
			Instance: WireInstance{ID: "1", Candidates: []string{"y", "n"}},
		})
		resp, err := http.Post(srv.URL+"/v1/predict", "application/json", bytes.NewReader(raw))
		if err == nil {
			resp.Body.Close()
		}
	}()
	// Wait until the slow request is actually in flight.
	deadline := time.Now().Add(5 * time.Second)
	for s.inflight.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never went in flight")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := postJSON(t, srv.URL+"/v1/predict", PredictRequest{
		Adapter:  "EM/fast",
		Instance: WireInstance{ID: "2", Candidates: []string{"y", "n"}},
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded predict: %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 shed carries no Retry-After")
	}
	wg.Wait()
}
