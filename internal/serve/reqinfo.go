package serve

import (
	"context"
	"sync/atomic"
)

// requestInfo rides the request context from the HTTP handler down through
// the registry into the batcher, carrying back the facts the access log
// wants that only deeper layers know: which adapter key the request
// resolved to, how large the batch that served it was, and how long it sat
// queued. Key is written by the handler goroutine before the batcher can
// see the request and read after it replies, so it needs no atomics; the
// batch fields are written by the batcher goroutine — which may outlive a
// requester that gave up — so they do.
type requestInfo struct {
	key       string
	batchSize atomic.Int64
	queueUS   atomic.Int64
}

type reqInfoKey struct{}

// withRequestInfo stores ri in the context.
func withRequestInfo(ctx context.Context, ri *requestInfo) context.Context {
	return context.WithValue(ctx, reqInfoKey{}, ri)
}

// requestInfoFrom retrieves the request's info carrier, nil when absent
// (e.g. a registry used directly, without the HTTP layer).
func requestInfoFrom(ctx context.Context) *requestInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(*requestInfo)
	return ri
}
