package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// lockedBuffer serializes writes so the slog JSON handler and the test's
// reader never race (run under -race).
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// TestConcurrentTracing is the end-to-end observability gate: 64 concurrent
// predicts over 4 adapters through real HTTP with tracing, metrics, and the
// access log all wired. Every 2xx predict must produce exactly one
// well-formed access-log line carrying its trace ID, every serve.batch span
// must link at least one request span, and both output streams must be
// valid line-JSON (no interleaving corruption).
func TestConcurrentTracing(t *testing.T) {
	traceBuf := &lockedBuffer{}
	logBuf := &lockedBuffer{}
	tracer := obs.NewTracer(traceBuf)
	rec := obs.NewRecorder(obs.NewRegistry(), tracer)
	opts := Options{
		MaxBatch:  8,
		MaxWait:   time.Millisecond,
		Rec:       rec,
		AccessLog: slog.New(slog.NewJSONHandler(logBuf, nil)),
	}
	reg := NewRegistry(newStubTransferer(time.Millisecond).transfer, opts)
	srv := httptest.NewServer(NewServer(reg, opts))
	defer srv.Close()

	keys := []string{"EM/A", "EM/B", "ED/C", "ED/D"}
	var items []LoadItem
	for i := 0; i < 64; i++ {
		key := keys[i%len(keys)]
		id := fmt.Sprint(i)
		items = append(items, LoadItem{
			Key:  key,
			In:   WireInstance{ID: id, Candidates: []string{"yes", "no"}},
			Want: key + ":" + id,
		})
	}
	rep, err := RunLoad(context.Background(), srv.URL, items, LoadOptions{Concurrency: 64, TraceSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Non2xx != 0 || rep.Mismatches != 0 || rep.TraceEchoMisses != 0 {
		t.Fatalf("load report = %+v (first error: %s)", rep, rep.FirstError)
	}
	srv.Close() // drain handlers so every request span and log line has flushed

	// A batch span ends moments *after* its last member's response is
	// delivered, so give the batcher goroutines a beat to flush before
	// freezing the stream. A mid-write read fails ReadTrace and just retries.
	deadline := time.Now().Add(5 * time.Second)
	for {
		recs, err := obs.ReadTrace(bytes.NewReader(traceBuf.Bytes()))
		ok := err == nil
		var nreq, nbat int
		for _, r := range recs {
			switch r.Name {
			case "serve.request":
				nreq++
			case "serve.batch":
				nbat++
			}
		}
		if ok && nreq == len(items) && nbat > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace never settled: err=%v requests=%d batches=%d", err, nreq, nbat)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}

	// Access log: exactly one valid JSON line per request, each with a
	// non-empty trace ID, and the set of trace IDs matches what the load
	// generator sent.
	sentTraces := map[string]bool{}
	ids := obs.NewIDSource(7)
	for i := range items {
		sentTraces[ids.At(uint64(i+1)).String()] = true
	}
	var logLines int
	seenTraces := map[string]bool{}
	sc := bufio.NewScanner(bytes.NewReader(logBuf.Bytes()))
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var entry struct {
			Msg    string `json:"msg"`
			Trace  string `json:"trace"`
			Route  string `json:"route"`
			Status int    `json:"status"`
			Batch  int    `json:"batch"`
			Key    string `json:"key"`
		}
		if err := json.Unmarshal(line, &entry); err != nil {
			t.Fatalf("corrupt access-log line %q: %v", line, err)
		}
		logLines++
		if entry.Msg != "request" || entry.Route != "predict" || entry.Status != 200 {
			t.Fatalf("unexpected access-log entry: %s", line)
		}
		if entry.Trace == "" || !sentTraces[entry.Trace] {
			t.Fatalf("access-log trace %q was never sent", entry.Trace)
		}
		if seenTraces[entry.Trace] {
			t.Fatalf("trace %s logged twice", entry.Trace)
		}
		seenTraces[entry.Trace] = true
		if entry.Batch < 1 {
			t.Fatalf("access-log entry without batch size: %s", line)
		}
		if entry.Key == "" {
			t.Fatalf("access-log entry without adapter key: %s", line)
		}
	}
	if logLines != len(items) {
		t.Fatalf("got %d access-log lines, want exactly %d", logLines, len(items))
	}

	// Trace stream: parses whole (no interleaving corruption), every
	// serve.batch span links >= 1 request span, and every request span is
	// in the trace the client minted for it.
	recs, err := obs.ReadTrace(bytes.NewReader(traceBuf.Bytes()))
	if err != nil {
		t.Fatalf("trace stream corrupt: %v", err)
	}
	var requests, batches int
	for _, r := range recs {
		switch r.Name {
		case "serve.request":
			requests++
			if !sentTraces[r.Trace] {
				t.Fatalf("serve.request span in unexpected trace %q", r.Trace)
			}
			if !r.Remote {
				t.Fatalf("serve.request span not marked remote-parented: %+v", r)
			}
		case "serve.batch":
			batches++
			if len(r.Links) == 0 {
				t.Fatalf("serve.batch span with no request links: %+v", r)
			}
			for _, l := range r.Links {
				if !sentTraces[l.Trace] {
					t.Fatalf("serve.batch links unknown trace %q", l.Trace)
				}
			}
		}
	}
	if requests != len(items) {
		t.Fatalf("got %d serve.request spans, want %d", requests, len(items))
	}
	if batches == 0 {
		t.Fatal("no serve.batch spans recorded")
	}

	// The registry metrics side: inflight settled back to zero and the
	// latency histogram stamped trace-ID exemplars.
	snap := rec.Metrics.Snapshot()
	if v := snap.Gauges["serve.inflight"]; v != 0 {
		t.Fatalf("inflight gauge = %v after drain", v)
	}
	h := snap.Histograms["serve.request_us"]
	var stamped bool
	for _, ex := range h.Exemplars {
		if ex != "" {
			stamped = true
			if !sentTraces[ex] {
				t.Fatalf("exemplar %q is not a sent trace", ex)
			}
		}
	}
	if !stamped {
		t.Fatal("latency histogram carries no trace exemplars")
	}
}

// TestTraceparentEchoWithoutTracer pins the degraded mode: a server with no
// tracer still echoes the caller's traceparent verbatim, so propagation
// stays observable even when tracing is off.
func TestTraceparentEchoWithoutTracer(t *testing.T) {
	srv, _ := newTestServer(t, newStubTransferer(0), Options{})
	body, _ := json.Marshal(PredictRequest{
		Adapter:  "EM/A",
		Instance: WireInstance{ID: "1", Candidates: []string{"y", "n"}},
	})
	hreq, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/predict", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	const tp = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	hreq.Header.Set(obs.TraceparentHeader, tp)
	resp, err := srv.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.TraceparentHeader); got != tp {
		t.Fatalf("echo = %q, want the inbound header verbatim", got)
	}
}
