package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/data"
)

// stubAdapter is a deterministic in-test adapter that also detects
// concurrent Predict calls — the batcher must serialize per-adapter access.
type stubAdapter struct {
	key    string
	delay  time.Duration
	inCall atomic.Int32
	raced  atomic.Bool
}

func (a *stubAdapter) Predict(_ context.Context, in *data.Instance) string {
	if a.inCall.Add(1) != 1 {
		a.raced.Store(true)
	}
	if a.delay > 0 {
		time.Sleep(a.delay)
	}
	a.inCall.Add(-1)
	return a.key + ":" + in.ID
}

// stubTransferer counts builds per key and can be told to stall, fail, or
// panic.
type stubTransferer struct {
	delay time.Duration

	mu       sync.Mutex
	builds   map[string]int
	adapters map[string]*stubAdapter
	panics   map[string]bool
	errs     map[string]error
}

func newStubTransferer(delay time.Duration) *stubTransferer {
	return &stubTransferer{
		delay:    delay,
		builds:   map[string]int{},
		adapters: map[string]*stubAdapter{},
		panics:   map[string]bool{},
		errs:     map[string]error{},
	}
}

func (t *stubTransferer) transfer(_ context.Context, key string) (Adapter, error) {
	t.mu.Lock()
	t.builds[key]++
	shouldPanic := t.panics[key]
	err := t.errs[key]
	t.mu.Unlock()
	if t.delay > 0 {
		time.Sleep(t.delay)
	}
	if shouldPanic {
		panic("transfer exploded")
	}
	if err != nil {
		return nil, err
	}
	ad := &stubAdapter{key: key}
	t.mu.Lock()
	t.adapters[key] = ad
	t.mu.Unlock()
	return ad, nil
}

func (t *stubTransferer) buildCount(key string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.builds[key]
}

func (t *stubTransferer) anyRace() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, a := range t.adapters {
		if a.raced.Load() {
			return true
		}
	}
	return false
}

func inst(id string) *data.Instance {
	return &data.Instance{ID: id, Candidates: []string{"yes", "no"}}
}

// TestColdStartCoalesces is the ISSUE's contention gate: N goroutines
// racing for one cold adapter must trigger exactly one Transfer, and every
// request must be answered by it.
func TestColdStartCoalesces(t *testing.T) {
	tr := newStubTransferer(20 * time.Millisecond)
	r := NewRegistry(tr.transfer, Options{})
	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	answers := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ans, _, err := r.Predict(context.Background(), "EM/A", inst(fmt.Sprint(i)))
			answers[i], errs[i] = ans, err
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if want := "EM/A:" + fmt.Sprint(i); answers[i] != want {
			t.Fatalf("request %d answered %q, want %q", i, answers[i], want)
		}
	}
	if got := tr.buildCount("EM/A"); got != 1 {
		t.Fatalf("%d transfers for one cold key, want exactly 1", got)
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Transfers != 1 {
		t.Fatalf("snapshot = %+v, want one key with Transfers=1", snap)
	}
	if snap[0].Hits+snap[0].Misses != n {
		t.Fatalf("hits+misses = %d, want %d", snap[0].Hits+snap[0].Misses, n)
	}
}

// TestLRUEviction: the bound holds, the least-recently-used key goes first,
// and per-key counters survive eviction.
func TestLRUEviction(t *testing.T) {
	tr := newStubTransferer(0)
	r := NewRegistry(tr.transfer, Options{MaxAdapters: 2})
	ctx := context.Background()
	for _, key := range []string{"A", "B"} {
		if _, _, err := r.Predict(ctx, key, inst("1")); err != nil {
			t.Fatal(err)
		}
	}
	// Touch A so B is the LRU victim when C arrives.
	if _, _, err := r.Predict(ctx, "A", inst("2")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Predict(ctx, "C", inst("1")); err != nil {
		t.Fatal(err)
	}
	if got := r.Resident(); got != 2 {
		t.Fatalf("resident = %d, want 2", got)
	}
	resident := map[string]bool{}
	for _, st := range r.Snapshot() {
		resident[st.Key] = st.Resident
	}
	if !resident["A"] || !resident["C"] || resident["B"] {
		t.Fatalf("resident set = %v, want A and C", resident)
	}
	// A re-request of the evicted key rebuilds it and keeps its history.
	if _, _, err := r.Predict(ctx, "B", inst("3")); err != nil {
		t.Fatal(err)
	}
	if got := tr.buildCount("B"); got != 2 {
		t.Fatalf("B built %d times, want 2 (initial + post-eviction)", got)
	}
	for _, st := range r.Snapshot() {
		if st.Key == "B" && st.Transfers != 2 {
			t.Fatalf("B stats lost across eviction: %+v", st)
		}
	}
}

// TestPanickingTransferFailsWaiters: a Transfer that panics must fail every
// coalesced waiter with an error — and must not wedge the key for later
// requests.
func TestPanickingTransferFailsWaiters(t *testing.T) {
	tr := newStubTransferer(10 * time.Millisecond)
	tr.panics["X"] = true
	r := NewRegistry(tr.transfer, Options{})
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = r.Predict(context.Background(), "X", inst("1"))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("request %d succeeded through a panicking transfer", i)
		}
		if !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("request %d error = %v, want panic report", i, err)
		}
	}
	// The key recovers once the transferer does.
	tr.mu.Lock()
	tr.panics["X"] = false
	tr.mu.Unlock()
	done := make(chan error, 1)
	go func() {
		_, _, err := r.Predict(context.Background(), "X", inst("2"))
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("post-panic predict: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("registry wedged after a panicking transfer")
	}
}

// TestTransferErrorPropagates: unknown keys surface their sentinel to every
// coalesced waiter and are not cached as resident.
func TestTransferErrorPropagates(t *testing.T) {
	tr := newStubTransferer(0)
	tr.errs["nope"] = fmt.Errorf("%w: %q", ErrUnknownKey, "nope")
	r := NewRegistry(tr.transfer, Options{})
	_, _, err := r.Predict(context.Background(), "nope", inst("1"))
	if !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("err = %v, want ErrUnknownKey", err)
	}
	if r.Resident() != 0 {
		t.Fatal("failed transfer left a resident adapter")
	}
	for _, st := range r.Snapshot() {
		if st.Key == "nope" && st.Errors == 0 {
			t.Fatalf("error not counted: %+v", st)
		}
	}
}

// TestCanceledRequestDoesNotCancelTransfer: a waiter whose context dies
// leaves with its context error while the build (owned by another request)
// completes for everyone else.
func TestCanceledRequestDoesNotCancelTransfer(t *testing.T) {
	tr := newStubTransferer(50 * time.Millisecond)
	r := NewRegistry(tr.transfer, Options{})
	// Owner starts the build.
	ownerDone := make(chan error, 1)
	go func() {
		_, _, err := r.Predict(context.Background(), "K", inst("1"))
		ownerDone <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the owner claim the flight
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := r.Predict(ctx, "K", inst("2")); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter err = %v, want context.Canceled", err)
	}
	if err := <-ownerDone; err != nil {
		t.Fatalf("owner failed: %v", err)
	}
	if got := tr.buildCount("K"); got != 1 {
		t.Fatalf("build count = %d, want 1", got)
	}
}

// TestEvictionChurnNeverWedges: ping-ponging more keys than the bound under
// heavy concurrency exercises the eviction/retry race (a request resolving
// an entry that is evicted before it reaches the queue must transparently
// re-resolve). Every request must still be answered, by the right adapter.
func TestEvictionChurnNeverWedges(t *testing.T) {
	tr := newStubTransferer(time.Millisecond)
	r := NewRegistry(tr.transfer, Options{MaxAdapters: 1, MaxBatch: 4, MaxWait: 100 * time.Microsecond})
	keys := []string{"A", "B", "C"}
	const n = 90
	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := keys[i%len(keys)]
			ans, _, err := r.Predict(context.Background(), key, inst(fmt.Sprint(i)))
			if err != nil {
				errCh <- fmt.Errorf("request %d: %w", i, err)
				return
			}
			if want := key + ":" + fmt.Sprint(i); ans != want {
				errCh <- fmt.Errorf("request %d answered %q, want %q", i, ans, want)
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if r.Resident() != 1 {
		t.Fatalf("resident = %d, want the bound 1", r.Resident())
	}
	if tr.anyRace() {
		t.Fatal("concurrent Predict calls reached one adapter; the batcher must serialize")
	}
}
