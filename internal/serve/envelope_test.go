package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/data"
)

// envResolver returns a scripted error per key, so the envelope test can
// reach every branch of statusFor without staging real overload/timeouts.
type envResolver struct {
	errs map[string]error
}

func (f *envResolver) Predict(_ context.Context, key string, _ *data.Instance) (string, bool, error) {
	if err, ok := f.errs[key]; ok {
		return "", false, err
	}
	return "ok", false, nil
}

func (f *envResolver) Warm(_ context.Context, key string) (bool, error) {
	if err, ok := f.errs[key]; ok {
		return false, err
	}
	return true, nil
}

func (f *envResolver) Snapshot() []KeyStats {
	return []KeyStats{{Key: "EM/known", Resident: true, Transfers: 1}}
}

func (f *envResolver) Resident() int { return 1 }

func (f *envResolver) Evict(_ context.Context, key string) (bool, error) {
	if key != "EM/known" {
		return false, fmt.Errorf("%w: no adapter state for %q", ErrUnknownKey, key)
	}
	return true, nil
}

// TestErrorEnvelopeEverywhere asserts the API-redesign contract: every
// error path on the /v1 surface emits the versioned JSON envelope with the
// code and retryable flag implied by its status — no plain-text bodies.
func TestErrorEnvelopeEverywhere(t *testing.T) {
	res := &envResolver{errs: map[string]error{
		"EM/unknown":    fmt.Errorf("%w: %q", ErrUnknownKey, "EM/unknown"),
		"EM/overloaded": fmt.Errorf("%w: shedding", ErrOverloaded),
		"EM/timeout":    fmt.Errorf("transfer: %w", context.DeadlineExceeded),
		"EM/canceled":   context.Canceled,
		"EM/boom":       errors.New("backend exploded"),
	}}
	srv := httptest.NewServer(NewServer(res, Options{}))
	defer srv.Close()
	draining := httptest.NewServer(func() *Server {
		s := NewServer(res, Options{})
		s.StartDrain()
		return s
	}())
	defer draining.Close()

	predict := func(key string) string {
		raw, _ := json.Marshal(PredictRequest{Adapter: key, Instance: WireInstance{Candidates: []string{"y", "n"}}})
		return string(raw)
	}
	cases := []struct {
		name   string
		method string
		url    string
		body   string
		want   int
	}{
		{"predict wrong method", http.MethodGet, srv.URL + "/v1/predict", "", http.StatusMethodNotAllowed},
		{"predict malformed body", http.MethodPost, srv.URL + "/v1/predict", "{nope", http.StatusBadRequest},
		{"predict bad key", http.MethodPost, srv.URL + "/v1/predict", predict("no-slash"), http.StatusBadRequest},
		{"predict no candidates", http.MethodPost, srv.URL + "/v1/predict", `{"adapter":"EM/known","instance":{}}`, http.StatusBadRequest},
		{"predict unknown key", http.MethodPost, srv.URL + "/v1/predict", predict("EM/unknown"), http.StatusNotFound},
		{"predict overloaded", http.MethodPost, srv.URL + "/v1/predict", predict("EM/overloaded"), http.StatusTooManyRequests},
		{"predict timeout", http.MethodPost, srv.URL + "/v1/predict", predict("EM/timeout"), http.StatusGatewayTimeout},
		{"predict canceled", http.MethodPost, srv.URL + "/v1/predict", predict("EM/canceled"), 499},
		{"predict backend error", http.MethodPost, srv.URL + "/v1/predict", predict("EM/boom"), http.StatusBadGateway},
		{"predict while draining", http.MethodPost, draining.URL + "/v1/predict", predict("EM/known"), http.StatusServiceUnavailable},
		{"adapters wrong method", http.MethodDelete, srv.URL + "/v1/adapters", "", http.StatusMethodNotAllowed},
		{"warm malformed body", http.MethodPost, srv.URL + "/v1/adapters", "{nope", http.StatusBadRequest},
		{"warm bad key", http.MethodPost, srv.URL + "/v1/adapters", `{"key":"no-slash"}`, http.StatusBadRequest},
		{"warm unknown key", http.MethodPost, srv.URL + "/v1/adapters", `{"key":"EM/unknown"}`, http.StatusNotFound},
		{"warm while draining", http.MethodPost, draining.URL + "/v1/adapters", `{"key":"EM/known"}`, http.StatusServiceUnavailable},
		{"adapter stats bad key", http.MethodGet, srv.URL + "/v1/adapters/no-slash", "", http.StatusBadRequest},
		{"adapter stats unknown", http.MethodGet, srv.URL + "/v1/adapters/EM/unknown", "", http.StatusNotFound},
		{"adapter key wrong method", http.MethodPut, srv.URL + "/v1/adapters/EM/known", "", http.StatusMethodNotAllowed},
		{"evict bad key", http.MethodDelete, srv.URL + "/v1/adapters/no-slash", "", http.StatusBadRequest},
		{"evict unknown", http.MethodDelete, srv.URL + "/v1/adapters/EM/unknown", "", http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body io.Reader
			if tc.body != "" {
				body = strings.NewReader(tc.body)
			}
			req, err := http.NewRequest(tc.method, tc.url, body)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			payload, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d (%s), want %d", resp.StatusCode, payload, tc.want)
			}
			eb, ok := ParseErrorEnvelope(payload)
			if !ok {
				t.Fatalf("body is not the error envelope: %s", payload)
			}
			if eb.Code != ErrorCode(tc.want) || eb.Retryable != ErrorRetryable(tc.want) || eb.Message == "" {
				t.Fatalf("envelope = %+v, want code=%s retryable=%v and a message",
					eb, ErrorCode(tc.want), ErrorRetryable(tc.want))
			}
			if tc.want == http.StatusTooManyRequests || tc.want == http.StatusServiceUnavailable {
				if resp.Header.Get("Retry-After") == "" {
					t.Fatalf("%d without Retry-After", tc.want)
				}
			}
		})
	}
}

// TestAdapterKeyRoutes exercises the REST-shaped single-key routes over a
// real registry: stats for one key, explicit eviction (counters survive,
// residency drops), and idempotent re-delete.
func TestAdapterKeyRoutes(t *testing.T) {
	srv, reg := newTestServer(t, newStubTransferer(0), Options{})
	if _, body := postJSON(t, srv.URL+"/v1/adapters", WarmRequest{Key: "EM/A"}); reg.Resident() != 1 {
		t.Fatalf("warm failed: %s", body)
	}

	resp, err := http.Get(srv.URL + "/v1/adapters/EM/A")
	if err != nil {
		t.Fatal(err)
	}
	var ks KeyStats
	if err := json.NewDecoder(resp.Body).Decode(&ks); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ks.Key != "EM/A" || !ks.Resident || ks.Transfers != 1 {
		t.Fatalf("single-key stats = %+v (status %d)", ks, resp.StatusCode)
	}

	del := func() EvictResponse {
		req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/adapters/EM/A", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("evict status %d", resp.StatusCode)
		}
		var er EvictResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatal(err)
		}
		return er
	}
	if er := del(); !er.Evicted {
		t.Fatalf("first evict = %+v, want evicted", er)
	}
	if reg.Resident() != 0 {
		t.Fatalf("resident = %d after evict", reg.Resident())
	}
	// Counters survive eviction; the key is now known-but-not-resident.
	if er := del(); er.Evicted {
		t.Fatalf("second evict = %+v, want evicted=false", er)
	}
	resp, err = http.Get(srv.URL + "/v1/adapters/EM/A")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ks); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ks.Resident || ks.Transfers != 1 {
		t.Fatalf("post-evict stats = %+v, want non-resident with 1 transfer", ks)
	}
}
