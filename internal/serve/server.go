package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/obs/profile"
)

// Server is the HTTP face of the service: a mux over a Resolver (the local
// Registry, or internal/cluster's Router) plus the live telemetry
// endpoints. Build one with NewServer and mount it anywhere an
// http.Handler goes (net/http, httptest, ...).
//
//	POST   /v1/predict        {"adapter": "EM/Walmart-Amazon", "instance": {...}}
//	POST   /v1/adapters       {"key": "EM/Walmart-Amazon"}   (warm: trigger a Transfer)
//	GET    /v1/adapters       resolver snapshot (per-key transfers/hits/misses)
//	GET    /v1/adapters/{key} single-key stats (404 envelope on unknown)
//	DELETE /v1/adapters/{key} explicit eviction (retires per-key gauges)
//	GET    /healthz           liveness: process up + build/occupancy context
//	GET    /readyz            readiness: accepting work (503 while draining/unready)
//	GET    /metrics           Prometheus text exposition (when a metrics registry is wired)
//	GET    /metrics.json      the same snapshot as JSON
//
// Every error body on this surface is the versioned JSON envelope
// (ErrorEnvelope); plain-text error responses do not exist here.
type Server struct {
	res      Resolver
	opts     Options
	rec      *obs.Recorder
	mux      *http.ServeMux
	start    time.Time
	revision string
	inflight atomic.Int64
	draining atomic.Bool
}

// NewServer wraps a resolver in the HTTP API. When fronting a local
// Registry, opts should be the options the registry was built with (the
// server applies RequestTimeout and reports the batching knobs on
// /healthz).
func NewServer(res Resolver, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		res:      res,
		opts:     opts,
		rec:      opts.Rec,
		mux:      http.NewServeMux(),
		start:    time.Now(),
		revision: vcsRevision(),
	}
	s.mux.HandleFunc("/v1/predict", s.handlePredict)
	s.mux.HandleFunc("/v1/adapters", s.handleAdapters)
	s.mux.HandleFunc("/v1/adapters/", s.handleAdapterKey)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	if opts.Rec != nil && opts.Rec.Metrics != nil {
		reg := opts.Rec.Metrics
		s.mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", obs.PromContentType)
			if err := obs.WritePrometheus(w, reg.Snapshot()); err != nil {
				WriteErrorStatus(w, http.StatusInternalServerError, err.Error())
			}
		})
		s.mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := reg.WriteJSON(w); err != nil {
				WriteErrorStatus(w, http.StatusInternalServerError, err.Error())
			}
		})
	}
	return s
}

// HandleFunc mounts an extra route on the server's mux under the full
// instrumentation path (traceparent ingest/echo, request span, counters,
// access log, pprof route label) — the seam higher tiers (internal/jobs)
// use to extend the /v1 surface without serve importing them. route is
// the label used on spans and per-route counters.
func (s *Server) HandleFunc(pattern, route string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		s.instrument(route, w, r, func(sw *statusWriter, r *http.Request) { h(sw, r) })
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Resolver returns the resolver the server fronts.
func (s *Server) Resolver() Resolver { return s.res }

// StartDrain flips the server into draining: /readyz reports 503 so
// health-checked routers stop sending, and new predict/warm calls shed
// with 503 + Retry-After while requests already in flight finish. Pair it
// with http.Server.Shutdown for a zero-loss rolling restart.
func (s *Server) StartDrain() {
	if !s.draining.Swap(true) {
		s.rec.SetGauge("serve.draining", 1)
		s.rec.Event("serve.drain")
	}
}

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// WireField / WireInstance are the JSON shape of a data.Instance on the
// predict endpoint. Gold is deliberately absent: the service answers
// questions, it does not score them.
type WireField struct {
	Entity string `json:"entity,omitempty"`
	Name   string `json:"name"`
	Value  string `json:"value"`
}

type WireInstance struct {
	ID         string            `json:"id,omitempty"`
	Fields     []WireField       `json:"fields"`
	Target     string            `json:"target,omitempty"`
	Candidates []string          `json:"candidates,omitempty"`
	Meta       map[string]string `json:"meta,omitempty"`
}

// WireFrom converts a data.Instance to its JSON wire shape. The gold label
// is not carried: callers that know it (the selftest) keep it on their side
// of the wire.
func WireFrom(in *data.Instance) WireInstance {
	wi := WireInstance{
		ID:         in.ID,
		Target:     in.Target,
		Candidates: in.Candidates,
		Meta:       in.Meta,
	}
	for _, f := range in.Fields {
		wi.Fields = append(wi.Fields, WireField{Entity: f.Entity, Name: f.Name, Value: f.Value})
	}
	return wi
}

func (wi *WireInstance) instance() *data.Instance {
	in := &data.Instance{
		ID:         wi.ID,
		Target:     wi.Target,
		Candidates: wi.Candidates,
		Meta:       wi.Meta,
		Gold:       -1, // unknown; the service never sees labels
	}
	for _, f := range wi.Fields {
		in.Fields = append(in.Fields, data.Field{Entity: f.Entity, Name: f.Name, Value: f.Value})
	}
	return in
}

// PredictRequest is the body of POST /v1/predict.
type PredictRequest struct {
	Adapter  string       `json:"adapter"`
	Instance WireInstance `json:"instance"`
}

// PredictResponse is the body of a successful predict call. Cold reports
// that this request found the adapter non-resident and waited on a
// Transfer (its own or a coalesced one).
type PredictResponse struct {
	Adapter string `json:"adapter"`
	Answer  string `json:"answer"`
	Cold    bool   `json:"cold"`
}

// WarmRequest is the body of POST /v1/adapters.
type WarmRequest struct {
	Key string `json:"key"`
}

// WarmResponse reports the outcome of a warm call.
type WarmResponse struct {
	Key  string `json:"key"`
	Cold bool   `json:"cold"`
}

// EvictResponse is the body of DELETE /v1/adapters/{key}. Evicted is
// false when the key is known but nothing was resident to drop.
type EvictResponse struct {
	Key     string `json:"key"`
	Evicted bool   `json:"evicted"`
}

// AdaptersResponse is the body of GET /v1/adapters.
type AdaptersResponse struct {
	Resident int        `json:"resident"`
	Adapters []KeyStats `json:"adapters"`
}

// HealthResponse is the body of GET /healthz: liveness plus enough build
// and occupancy context to identify what is running ("which revision is
// this, how full is it") from one curl.
type HealthResponse struct {
	OK        bool    `json:"ok"`
	Draining  bool    `json:"draining,omitempty"`
	UptimeS   float64 `json:"uptime_s"`
	GoVersion string  `json:"go_version"`
	Revision  string  `json:"revision,omitempty"`
	Resident  int     `json:"resident"`
	MaxBatch  int     `json:"max_batch"`
	MaxWaitS  float64 `json:"max_wait_s"`
	MaxAdapt  int     `json:"max_adapters"`
	// Goroutines / HeapLiveBytes are fresh runtime readings taken at
	// request time; Sampler reports whether continuous sampling is on and
	// how many samples it has taken.
	Goroutines    int64                 `json:"goroutines"`
	HeapLiveBytes uint64                `json:"heap_live_bytes"`
	Sampler       profile.SamplerStatus `json:"sampler"`
}

// ReadyResponse is the body of GET /readyz. Resident rides along so a
// router's periodic probe doubles as a cheap occupancy reading.
type ReadyResponse struct {
	OK       bool   `json:"ok"`
	Draining bool   `json:"draining,omitempty"`
	Reason   string `json:"reason,omitempty"`
	Resident int    `json:"resident"`
}

// vcsRevision extracts the VCS revision stamped into the binary at build
// time (empty for `go test` binaries and builds outside a checkout).
func vcsRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev, dirty string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev == "" {
		return ""
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	return rev + dirty
}

// requestCtx applies the server's per-request deadline on top of the
// client's context.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.opts.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	}
	return r.Context(), func() {}
}

// statusFor maps a resolver/transfer error to an HTTP status: malformed
// keys are a 400 (no resolver anywhere can serve them), unknown keys a
// 404, shed load a 429, a draining server a 503, deadlines are 504, a
// client that went away is 499 (nginx's convention; net/http has no name
// for it), everything else is a 502 from the adaptation backend.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrBadKey):
		return http.StatusBadRequest
	case errors.Is(err, ErrUnknownKey):
		return http.StatusNotFound
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499
	default:
		return http.StatusBadGateway
	}
}

// instrument wraps one handler in the full request-scoped observability
// path: it ingests the W3C `traceparent` header (so the serve.request span
// joins the caller's trace), threads the span and a requestInfo carrier
// through the request context for the registry/batcher to annotate, echoes
// a traceparent back (the server span's context when tracing is on, the
// inbound value verbatim otherwise), and emits counters, an exemplar-stamped
// latency observation, and one structured access-log line per request.
func (s *Server) instrument(route string, w http.ResponseWriter, r *http.Request, h func(w *statusWriter, r *http.Request)) {
	inTP := r.Header.Get(obs.TraceparentHeader)
	var remote obs.SpanContext
	if inTP != "" {
		remote, _ = obs.ParseTraceparent(inTP) // malformed → fresh trace
	}
	_, span := s.rec.StartSpanIn("serve.request", remote)
	span.SetAttr("route", route)
	span.SetAttr("method", r.Method)
	traceID := span.Context().Trace.String()
	if span != nil {
		w.Header().Set(obs.TraceparentHeader, obs.FormatTraceparent(span.Context()))
	} else if inTP != "" {
		// No tracer wired: echo the caller's header verbatim so propagation
		// is still observable end to end.
		w.Header().Set(obs.TraceparentHeader, inTP)
	}

	ri := &requestInfo{}
	ctx := withRequestInfo(r.Context(), ri)
	ctx = obs.ContextWithSpan(ctx, span)

	s.rec.SetGauge("serve.inflight", float64(s.inflight.Add(1)))
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	// The handler runs under a pprof route label, so CPU samples burned
	// anywhere below attribute to the route; the labeled context flows
	// down to the batcher, which stacks key/batch labels on top.
	profile.Do(ctx, func(lctx context.Context) {
		r = r.WithContext(lctx)
		h(sw, r)
	}, profile.LabelRoute, route)
	dur := time.Since(start)
	s.rec.SetGauge("serve.inflight", float64(s.inflight.Add(-1)))

	span.SetAttr("status", sw.status)
	if ri.key != "" {
		span.SetAttr("key", ri.key)
	}
	span.End()
	s.rec.Count("serve.requests", 1)
	s.rec.Count(fmt.Sprintf("serve.requests/%s", route), 1)
	if sw.status >= 400 {
		s.rec.Count("serve.request_errors", 1)
	}
	s.rec.ObserveEx("serve.request_us", float64(dur.Microseconds()), nil, traceID)

	slow := s.opts.SlowRequest > 0 && dur >= s.opts.SlowRequest
	if slow {
		// A slow request pokes the profile trigger (nil-safe, cooldown
		// inside): the capture of the moment it happened lands next to the
		// access-log line that flagged it.
		s.opts.Profiles.Capture(route)
	}

	if s.opts.AccessLog != nil {
		level := slog.LevelInfo
		if slow || sw.status >= 500 {
			level = slog.LevelWarn
		}
		s.opts.AccessLog.LogAttrs(r.Context(), level, "request",
			slog.String("trace", traceID),
			slog.String("route", route),
			slog.String("method", r.Method),
			slog.Int("status", sw.status),
			slog.String("key", ri.key),
			slog.Int64("batch", ri.batchSize.Load()),
			slog.Int64("queue_us", ri.queueUS.Load()),
			slog.Int64("dur_us", dur.Microseconds()),
			slog.Bool("slow", slow),
		)
	}
}

// statusWriter remembers the response code for the span and error counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	s.instrument("predict", w, r, func(w *statusWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			WriteErrorStatus(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		if s.draining.Load() {
			s.rec.Count("serve.shed_draining", 1)
			WriteError(w, ErrDraining)
			return
		}
		if s.opts.MaxInflight > 0 && s.inflight.Load() > int64(s.opts.MaxInflight) {
			s.rec.Count("serve.shed_overload", 1)
			WriteError(w, fmt.Errorf("%w: %d requests in flight", ErrOverloaded, s.inflight.Load()))
			return
		}
		var req PredictRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			WriteErrorStatus(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
			return
		}
		if err := ValidateKey(req.Adapter); err != nil {
			WriteError(w, err)
			return
		}
		if ri := requestInfoFrom(r.Context()); ri != nil {
			ri.key = req.Adapter
		}
		if len(req.Instance.Candidates) == 0 {
			// Prediction ranks candidate answers (DESIGN.md: open-domain tasks
			// are realized as ranking), so an empty set is unanswerable.
			WriteErrorStatus(w, http.StatusBadRequest, "instance needs candidate answers")
			return
		}
		ctx, cancel := s.requestCtx(r)
		defer cancel()
		ans, cold, err := s.res.Predict(ctx, req.Adapter, req.Instance.instance())
		if err != nil {
			WriteError(w, err)
			return
		}
		WriteJSON(w, http.StatusOK, PredictResponse{Adapter: req.Adapter, Answer: ans, Cold: cold})
	})
}

func (s *Server) handleAdapters(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.instrument("adapters", w, r, func(w *statusWriter, r *http.Request) {
			s.writeAdapterStats(w, r, "")
		})
	case http.MethodPost:
		s.instrument("warm", w, r, func(w *statusWriter, r *http.Request) {
			if s.draining.Load() {
				s.rec.Count("serve.shed_draining", 1)
				WriteError(w, ErrDraining)
				return
			}
			var req WarmRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				WriteErrorStatus(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
				return
			}
			if err := ValidateKey(req.Key); err != nil {
				WriteError(w, err)
				return
			}
			if ri := requestInfoFrom(r.Context()); ri != nil {
				ri.key = req.Key
			}
			ctx, cancel := s.requestCtx(r)
			defer cancel()
			cold, err := s.res.Warm(ctx, req.Key)
			if err != nil {
				WriteError(w, err)
				return
			}
			WriteJSON(w, http.StatusOK, WarmResponse{Key: req.Key, Cold: cold})
		})
	default:
		WriteErrorStatus(&statusWriter{ResponseWriter: w}, http.StatusMethodNotAllowed, "GET, POST, or DELETE /v1/adapters/{key} only")
	}
}

// handleAdapterKey serves the REST-shaped single-key routes under
// /v1/adapters/{key} (the key itself contains a slash: task/dataset).
// They share their implementations with the legacy collection routes:
// GET funnels into the same stats writer with a key filter, DELETE is
// explicit eviction through the resolver's optional Evicter.
func (s *Server) handleAdapterKey(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/v1/adapters/")
	switch r.Method {
	case http.MethodGet:
		s.instrument("adapters", w, r, func(w *statusWriter, r *http.Request) {
			s.writeAdapterStats(w, r, key)
		})
	case http.MethodDelete:
		s.instrument("evict", w, r, func(w *statusWriter, r *http.Request) {
			s.evictAdapter(w, r, key)
		})
	default:
		WriteErrorStatus(&statusWriter{ResponseWriter: w}, http.StatusMethodNotAllowed, "GET or DELETE only")
	}
}

// writeAdapterStats renders resolver stats: the full snapshot when key is
// empty (GET /v1/adapters), or one key's entry with a 404 envelope when
// the resolver has never seen it (GET /v1/adapters/{key}).
func (s *Server) writeAdapterStats(w *statusWriter, r *http.Request, key string) {
	if key == "" {
		WriteJSON(w, http.StatusOK, AdaptersResponse{Resident: s.res.Resident(), Adapters: s.res.Snapshot()})
		return
	}
	if err := ValidateKey(key); err != nil {
		WriteError(w, err)
		return
	}
	if ri := requestInfoFrom(r.Context()); ri != nil {
		ri.key = key
	}
	for _, ks := range s.res.Snapshot() {
		if ks.Key == key {
			WriteJSON(w, http.StatusOK, ks)
			return
		}
	}
	WriteError(w, fmt.Errorf("%w: no stats for %q", ErrUnknownKey, key))
}

// evictAdapter serves DELETE /v1/adapters/{key}: drop the resident adapter
// (retiring its per-key gauges, exactly like an LRU eviction) without
// touching its request counters. A key the resolver has never seen is a
// 404; a known key that simply is not resident right now evicts nothing
// and reports evicted=false.
func (s *Server) evictAdapter(w *statusWriter, r *http.Request, key string) {
	if err := ValidateKey(key); err != nil {
		WriteError(w, err)
		return
	}
	if ri := requestInfoFrom(r.Context()); ri != nil {
		ri.key = key
	}
	ev, ok := s.res.(Evicter)
	if !ok {
		WriteErrorStatus(w, http.StatusNotImplemented, "resolver does not support eviction")
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	evicted, err := ev.Evict(ctx, key)
	if err != nil {
		WriteError(w, err)
		return
	}
	WriteJSON(w, http.StatusOK, EvictResponse{Key: key, Evicted: evicted})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.instrument("healthz", w, r, func(w *statusWriter, _ *http.Request) {
		goro, heap := profile.QuickReadings()
		WriteJSON(w, http.StatusOK, HealthResponse{
			OK:            true,
			Draining:      s.draining.Load(),
			UptimeS:       time.Since(s.start).Seconds(),
			GoVersion:     runtime.Version(),
			Revision:      s.revision,
			Resident:      s.res.Resident(),
			MaxBatch:      s.opts.MaxBatch,
			MaxWaitS:      s.opts.MaxWait.Seconds(),
			MaxAdapt:      s.opts.MaxAdapters,
			Goroutines:    goro,
			HeapLiveBytes: heap,
			Sampler:       s.opts.Sampler.Status(),
		})
	})
}

// handleReadyz is the readiness probe: 200 only while the server is
// accepting new work. It diverges from /healthz (pure liveness) exactly
// when a router should stop routing here — during a drain, or when the
// resolver itself reports unready (the cluster router with zero healthy
// backends). 503s carry Retry-After like any other shed response.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.instrument("readyz", w, r, func(w *statusWriter, _ *http.Request) {
		resp := ReadyResponse{OK: true, Resident: s.res.Resident()}
		if s.draining.Load() {
			resp.OK = false
			resp.Draining = true
			resp.Reason = ErrDraining.Error()
		} else if rc, ok := s.res.(ReadyChecker); ok {
			if err := rc.Ready(); err != nil {
				resp.OK = false
				resp.Reason = err.Error()
			}
		}
		if !resp.OK {
			w.Header().Set("Retry-After", "1")
			WriteJSON(w, http.StatusServiceUnavailable, resp)
			return
		}
		WriteJSON(w, http.StatusOK, resp)
	})
}
