// Package serve is the inference service of the reproduction: an HTTP JSON
// API fronting a bounded registry of adapted models. KnowTrans's premise is
// cheap per-dataset adaptation, which in production means many adapted
// variants alive at once behind one endpoint — the multi-adapter serving
// shape of S-LoRA/Punica. The package provides three layers:
//
//   - Registry: a bounded LRU of core.Adapted models keyed by task/dataset,
//     with coalesced cold starts (exactly one Transfer per cold key, however
//     many requests race for it) and panic-safe build slots.
//   - batcher: one micro-batching predict loop per resident adapter, which
//     drains queued requests into batches before touching the model — both
//     an amortization and the serialization the model's scratch buffers
//     require.
//   - Server: the HTTP surface (POST /v1/predict, POST+GET /v1/adapters,
//     /healthz, /metrics) with per-request deadlines.
//
// Everything is instrumented through internal/obs: serve.request /
// serve.transfer / serve.batch spans, queue-depth and batch-size
// histograms, and registry hit/miss/eviction counters.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/obs/profile"
)

// Adapter is what the registry holds per key: the narrow predict face of a
// core.Adapted model (which satisfies it directly). Implementations are not
// required to be safe for concurrent Predict calls — the batcher serializes
// per-adapter access.
type Adapter interface {
	Predict(ctx context.Context, in *data.Instance) string
}

// Transferer builds the adapted model for one registry key ("EM/Walmart-
// Amazon"). The registry guarantees at most one concurrent call per key.
// Implementations signal an unknown key by returning an error wrapping
// ErrUnknownKey, which the HTTP layer maps to 404.
type Transferer func(ctx context.Context, key string) (Adapter, error)

// ErrUnknownKey marks a key no adapter can be built for.
var ErrUnknownKey = errors.New("serve: unknown adapter key")

// errBatcherStopped is the internal retry signal for the eviction race: the
// entry a request resolved was evicted before the request reached its
// queue. The registry re-resolves (rebuilding the adapter if needed).
var errBatcherStopped = errors.New("serve: batcher stopped")

// Options configures a Registry/Server. The zero value is usable; unset
// fields take the defaults documented per field.
type Options struct {
	// MaxAdapters bounds the number of resident adapters (LRU eviction
	// beyond it). Default 8.
	MaxAdapters int
	// MaxBatch is the per-adapter micro-batch cap. Default 8; 1 disables
	// batching (every request is its own batch).
	MaxBatch int
	// MaxWait is how long a non-full batch lingers for stragglers once it
	// holds at least one request, measured from the oldest queued request's
	// arrival. Default 2ms.
	MaxWait time.Duration
	// SerialPredict forces per-request Predict calls even for adapters that
	// implement BatchPredictor. This is the oracle mode: the selftest and the
	// perf gate compare batched output/throughput against it.
	SerialPredict bool
	// RequestTimeout is the per-request deadline the server applies on top
	// of the client's context. Default 60s; negative disables.
	RequestTimeout time.Duration
	// MaxInflight sheds predict requests with 429 + Retry-After once more
	// than this many HTTP requests are in flight. Default 0: unlimited.
	MaxInflight int
	// TransferTimeout bounds one cold-start Transfer. Builds run detached
	// from the triggering request's context (coalesced waiters must not be
	// at the mercy of the first requester's deadline), so this is their
	// only bound. Default 0: unbounded.
	TransferTimeout time.Duration
	// Rec threads observability through the service. Nil disables it at
	// zero cost.
	Rec *obs.Recorder
	// AccessLog receives one structured line per HTTP request (trace ID,
	// route, status, adapter key, batch size, queue wait, latency). Nil
	// disables access logging.
	AccessLog *slog.Logger
	// SlowRequest is the latency beyond which the access-log line is
	// escalated to Warn with slow=true. Default 1s; negative disables the
	// escalation.
	SlowRequest time.Duration
	// Sampler, when set, surfaces runtime-sampling status and current
	// goroutine/heap readings on /healthz. Nil is fine: /healthz then
	// reports sampling disabled with fresh readings.
	Sampler *profile.Sampler
	// Profiles, when set, is poked on slow requests (those past
	// SlowRequest) so "why was that slow" arrives with a CPU+heap capture
	// of the moment it happened. Nil disables triggered captures.
	Profiles *profile.Trigger
}

func (o Options) withDefaults() Options {
	if o.MaxAdapters <= 0 {
		o.MaxAdapters = 8
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 8
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 2 * time.Millisecond
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 60 * time.Second
	}
	if o.SlowRequest == 0 {
		o.SlowRequest = time.Second
	}
	return o
}

// KeyStats are the per-key registry counters, kept across eviction so
// "exactly one Transfer per adapter" stays provable after churn.
type KeyStats struct {
	Key       string `json:"key"`
	Resident  bool   `json:"resident"`
	Loading   bool   `json:"loading"`
	Transfers int64  `json:"transfers"`
	Requests  int64  `json:"requests"`
	Hits      int64  `json:"hits"`
	Misses    int64  `json:"misses"`
	Errors    int64  `json:"errors"`
}

// Registry is the bounded adapter cache: at most MaxAdapters core.Adapted
// models resident at once, least-recently-used evicted first. Concurrent
// requests for a cold key coalesce onto one in-flight Transfer — the same
// publish-and-wake discipline as eval's Zoo.memo, with a closed channel as
// the broadcast so waiters stay responsive to their own context. A build
// slot is released under defer even when the Transfer panics, so a crashed
// build fails its waiters instead of wedging every later request for the
// key.
type Registry struct {
	transfer Transferer
	opts     Options
	rec      *obs.Recorder

	mu       sync.Mutex
	ready    map[string]*entry
	inflight map[string]*flight
	stats    map[string]*KeyStats
	clock    uint64 // LRU tick; monotone under mu
}

type entry struct {
	key     string
	ad      Adapter
	bat     *batcher
	lastUse uint64
}

// flight is one in-progress Transfer; done is closed exactly once after ad/
// err are set and the result (on success) is installed.
type flight struct {
	done chan struct{}
	ad   Adapter
	err  error
}

// NewRegistry builds a registry over a transferer.
// Registry is the local Resolver: the server can front it directly or
// front internal/cluster's Router, which resolves over remote registries.
var _ Resolver = (*Registry)(nil)

func NewRegistry(t Transferer, opts Options) *Registry {
	opts = opts.withDefaults()
	return &Registry{
		transfer: t,
		opts:     opts,
		rec:      opts.Rec,
		ready:    map[string]*entry{},
		inflight: map[string]*flight{},
		stats:    map[string]*KeyStats{},
	}
}

// statLocked returns the per-key counters, creating them on first use.
// Callers hold r.mu.
func (r *Registry) statLocked(key string) *KeyStats {
	s, ok := r.stats[key]
	if !ok {
		s = &KeyStats{Key: key}
		r.stats[key] = s
	}
	return s
}

// Predict answers one instance with the adapter for key, transferring it
// first when cold (cold reports that this request found the adapter
// non-resident). The request rides the adapter's micro-batch loop; if the
// adapter is evicted between resolution and enqueue, the request
// transparently re-resolves.
func (r *Registry) Predict(ctx context.Context, key string, in *data.Instance) (ans string, cold bool, err error) {
	for {
		e, c, err := r.get(ctx, key)
		cold = cold || c
		if err != nil {
			return "", cold, err
		}
		ans, err := e.bat.predict(ctx, in)
		if errors.Is(err, errBatcherStopped) {
			continue
		}
		return ans, cold, err
	}
}

// Warm ensures the adapter for key is resident, reporting whether this call
// had to wait for a Transfer (its own or a coalesced one).
func (r *Registry) Warm(ctx context.Context, key string) (cold bool, err error) {
	_, cold, err = r.get(ctx, key)
	return cold, err
}

// get resolves the resident entry for key, building it when cold. cold
// reports whether this call found the key non-resident (a miss, whether it
// ran the Transfer itself or coalesced onto another request's flight).
func (r *Registry) get(ctx context.Context, key string) (e *entry, cold bool, err error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	first := true
	// classifyLocked accounts the first resolution outcome of this call;
	// retries around eviction races are not re-counted. Callers hold r.mu;
	// the obs counter is atomic, so bumping it under the lock is fine.
	classifyLocked := func(hit bool) {
		if !first {
			return
		}
		first = false
		st := r.statLocked(key)
		st.Requests++
		if hit {
			st.Hits++
			r.rec.Count("serve.registry_hit", 1)
		} else {
			st.Misses++
			r.rec.Count("serve.registry_miss", 1)
			cold = true
		}
	}
	for {
		r.mu.Lock()
		if e, ok := r.ready[key]; ok {
			r.clock++
			e.lastUse = r.clock
			classifyLocked(true)
			r.mu.Unlock()
			return e, cold, nil
		}
		if f, ok := r.inflight[key]; ok {
			classifyLocked(false)
			r.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, cold, ctx.Err()
			}
			if f.err != nil {
				return nil, cold, f.err
			}
			// Installed (or already evicted again): re-resolve.
			continue
		}
		// Miss with no flight: this goroutine owns the build; everyone else
		// arriving before it finishes coalesces onto the flight above.
		f := &flight{done: make(chan struct{})}
		r.inflight[key] = f
		classifyLocked(false)
		r.mu.Unlock()
		r.build(ctx, key, f)
		if f.err != nil {
			return nil, cold, f.err
		}
	}
}

// build runs the Transfer for one flight and publishes the result. It runs
// on the triggering requester's goroutine but under a context detached from
// that request, bounded only by TransferTimeout: coalesced waiters must not
// inherit the first requester's deadline. reqCtx is used for span linkage
// only — the serve.transfer span links the triggering request's span, so a
// request that paid a cold start stays attributable — never for
// cancellation. The slot is released and waiters woken under defer, so a
// panicking Transfer fails its waiters (they see the panic as an error)
// instead of wedging the key.
func (r *Registry) build(reqCtx context.Context, key string, f *flight) {
	bctx := context.Background()
	cancel := context.CancelFunc(func() {})
	if r.opts.TransferTimeout > 0 {
		bctx, cancel = context.WithTimeout(bctx, r.opts.TransferTimeout)
	}
	_, span := r.rec.StartSpan("serve.transfer")
	span.SetAttr("key", key)
	if rs := obs.SpanFromContext(reqCtx); rs != nil {
		span.Link(rs.Context())
	}
	start := time.Now()
	defer func() {
		cancel()
		if p := recover(); p != nil {
			f.err = fmt.Errorf("serve: transfer %q panicked: %v", key, p)
		}
		span.SetAttr("error", f.err != nil)
		span.End()
		r.mu.Lock()
		delete(r.inflight, key)
		st := r.statLocked(key)
		if f.err == nil {
			st.Transfers++
			r.installLocked(key, f.ad)
		} else {
			st.Errors++
		}
		r.mu.Unlock()
		if f.err == nil {
			r.rec.Count("serve.transfers", 1)
			r.rec.Observe("serve.transfer_us", float64(time.Since(start).Microseconds()), nil)
		} else {
			r.rec.Count("serve.transfer_errors", 1)
		}
		close(f.done)
	}()
	// The transfer runs under pprof labels so CPU samples burned on cold
	// starts are attributable to the key that paid for them.
	var ad Adapter
	var err error
	profile.Do(bctx, func(ctx context.Context) {
		ad, err = r.transfer(ctx, key)
	}, profile.LabelKey, key, profile.LabelPhase, "transfer")
	if err == nil && ad == nil {
		err = fmt.Errorf("serve: transferer returned no adapter for %q", key)
	}
	f.ad, f.err = ad, err
}

// installLocked makes an adapter resident and evicts past the LRU bound.
// Callers hold r.mu. Evicted batchers are stopped off the lock — they may
// need to drain queued requests first, and those requests re-resolve.
func (r *Registry) installLocked(key string, ad Adapter) {
	r.clock++
	e := &entry{
		key:     key,
		ad:      ad,
		lastUse: r.clock,
		bat:     newBatcher(key, ad, r.opts.MaxBatch, r.opts.MaxWait, r.opts.SerialPredict, r.rec),
	}
	r.ready[key] = e
	for len(r.ready) > r.opts.MaxAdapters {
		var victim *entry
		for _, cand := range r.ready {
			if victim == nil || cand.lastUse < victim.lastUse {
				victim = cand
			}
		}
		delete(r.ready, victim.key)
		r.statLocked(victim.key) // ensure the row survives for snapshots
		r.rec.Count("serve.registry_eviction", 1)
		go victim.bat.stop()
	}
	r.rec.SetGauge("serve.adapters", float64(len(r.ready)))
}

// Snapshot reports every key the registry has seen, resident or not,
// sorted by key for stable output.
func (r *Registry) Snapshot() []KeyStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]KeyStats, 0, len(r.stats))
	for key, st := range r.stats {
		row := *st
		_, row.Resident = r.ready[key]
		_, row.Loading = r.inflight[key]
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Resident returns the number of resident adapters.
func (r *Registry) Resident() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ready)
}

var _ Evicter = (*Registry)(nil)

// Evict drops key's resident adapter on demand (DELETE /v1/adapters/{key}).
// The per-key counters survive, exactly as they do across LRU eviction, so
// "one Transfer per adapter" stays provable after an explicit drop; a later
// request for the key simply runs a fresh cold start. Reports false for a
// key that is known but not resident, ErrUnknownKey for one never seen.
func (r *Registry) Evict(_ context.Context, key string) (bool, error) {
	if err := ValidateKey(key); err != nil {
		return false, err
	}
	r.mu.Lock()
	e, resident := r.ready[key]
	_, loading := r.inflight[key]
	_, known := r.stats[key]
	if resident {
		delete(r.ready, key)
		r.rec.Count("serve.registry_eviction", 1)
		r.rec.Count("serve.evictions_explicit", 1)
		r.rec.SetGauge("serve.adapters", float64(len(r.ready)))
	}
	r.mu.Unlock()
	if resident {
		// Stop off the lock, as in installLocked: the batcher may need to
		// drain queued requests first (they re-resolve), and stop retires
		// the key's queue-depth gauge.
		e.bat.stop()
	}
	if !resident && !loading && !known {
		return false, fmt.Errorf("%w: no adapter state for %q", ErrUnknownKey, key)
	}
	return resident, nil
}
