package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func newTestServer(t *testing.T, tr *stubTransferer, opts Options) (*httptest.Server, *Registry) {
	t.Helper()
	reg := NewRegistry(tr.transfer, opts)
	srv := httptest.NewServer(NewServer(reg, opts))
	t.Cleanup(srv.Close)
	return srv, reg
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestPredictEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, newStubTransferer(0), Options{})
	resp, body := postJSON(t, srv.URL+"/v1/predict", PredictRequest{
		Adapter:  "EM/A",
		Instance: WireInstance{ID: "7", Candidates: []string{"yes", "no"}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Answer != "EM/A:7" || !pr.Cold {
		t.Fatalf("response = %+v, want cold answer EM/A:7", pr)
	}
	// Second call: warm.
	_, body = postJSON(t, srv.URL+"/v1/predict", PredictRequest{
		Adapter:  "EM/A",
		Instance: WireInstance{ID: "8", Candidates: []string{"yes", "no"}},
	})
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Answer != "EM/A:8" || pr.Cold {
		t.Fatalf("second response = %+v, want warm answer EM/A:8", pr)
	}
}

func TestPredictRejectsBadRequests(t *testing.T) {
	tr := newStubTransferer(0)
	tr.errs["EM/gone"] = fmt.Errorf("%w: %q", ErrUnknownKey, "EM/gone")
	srv, _ := newTestServer(t, tr, Options{})
	cases := []struct {
		name string
		body any
		want int
	}{
		{"missing key", PredictRequest{Instance: WireInstance{Candidates: []string{"a"}}}, http.StatusBadRequest},
		{"keyless task", PredictRequest{Adapter: "EM/", Instance: WireInstance{Candidates: []string{"a"}}}, http.StatusBadRequest},
		{"taskless key", PredictRequest{Adapter: "/Walmart", Instance: WireInstance{Candidates: []string{"a"}}}, http.StatusBadRequest},
		{"no slash", PredictRequest{Adapter: "gone", Instance: WireInstance{Candidates: []string{"a"}}}, http.StatusBadRequest},
		{"no candidates", PredictRequest{Adapter: "EM/A"}, http.StatusBadRequest},
		{"unknown key", PredictRequest{Adapter: "EM/gone", Instance: WireInstance{Candidates: []string{"a"}}}, http.StatusNotFound},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, srv.URL+"/v1/predict", tc.body)
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: status %d (%s), want %d", tc.name, resp.StatusCode, body, tc.want)
		}
		eb, ok := ParseErrorEnvelope(body)
		if !ok || eb.Message == "" || eb.Code != ErrorCode(tc.want) {
			t.Fatalf("%s: error body %q, want envelope with code %s", tc.name, body, ErrorCode(tc.want))
		}
	}
	// Malformed JSON.
	resp, err := http.Post(srv.URL+"/v1/predict", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}
	// Wrong method.
	resp, err = http.Get(srv.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET predict: status %d, want 405", resp.StatusCode)
	}
}

func TestAdaptersEndpoints(t *testing.T) {
	tr := newStubTransferer(0)
	srv, reg := newTestServer(t, tr, Options{})
	// Warm an adapter explicitly.
	resp, body := postJSON(t, srv.URL+"/v1/adapters", WarmRequest{Key: "ED/B"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm status %d: %s", resp.StatusCode, body)
	}
	var wr WarmResponse
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatal(err)
	}
	if !wr.Cold {
		t.Fatalf("first warm = %+v, want cold", wr)
	}
	if reg.Resident() != 1 {
		t.Fatalf("resident = %d after warm", reg.Resident())
	}
	// List.
	lresp, err := http.Get(srv.URL + "/v1/adapters")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var ar AdaptersResponse
	if err := json.NewDecoder(lresp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	if ar.Resident != 1 || len(ar.Adapters) != 1 || ar.Adapters[0].Key != "ED/B" || ar.Adapters[0].Transfers != 1 {
		t.Fatalf("adapters response = %+v", ar)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	mreg := obs.NewRegistry()
	rec := obs.NewRecorder(mreg, nil)
	srv, _ := newTestServer(t, newStubTransferer(0), Options{Rec: rec})
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if !hr.OK || hr.MaxBatch != 8 || hr.MaxAdapt != 8 {
		t.Fatalf("healthz = %+v", hr)
	}
	if hr.GoVersion == "" || hr.UptimeS < 0 {
		t.Fatalf("healthz missing build info: %+v", hr)
	}
	// A predict populates the request counters the /metrics endpoint renders.
	postJSON(t, srv.URL+"/v1/predict", PredictRequest{
		Adapter:  "EM/A",
		Instance: WireInstance{ID: "1", Candidates: []string{"y", "n"}},
	})
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"serve_requests", "serve_registry_miss", "serve_transfers"} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %s:\n%s", want, text)
		}
	}
}

func TestRequestTimeout(t *testing.T) {
	tr := newStubTransferer(200 * time.Millisecond)
	srv, _ := newTestServer(t, tr, Options{RequestTimeout: 20 * time.Millisecond, TransferTimeout: time.Hour})
	resp, body := postJSON(t, srv.URL+"/v1/predict", PredictRequest{
		Adapter:  "EM/slow",
		Instance: WireInstance{ID: "1", Candidates: []string{"y", "n"}},
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, body)
	}
}

func TestRunLoadAgainstServer(t *testing.T) {
	tr := newStubTransferer(time.Millisecond)
	srv, reg := newTestServer(t, tr, Options{MaxBatch: 4, MaxWait: time.Millisecond})
	keys := []string{"EM/A", "EM/B", "ED/C", "ED/D"}
	var items []LoadItem
	for i := 0; i < 128; i++ {
		key := keys[i%len(keys)]
		id := fmt.Sprint(i)
		items = append(items, LoadItem{
			Key:  key,
			In:   WireInstance{ID: id, Candidates: []string{"yes", "no"}},
			Want: key + ":" + id, // the stub's deterministic direct-path answer
		})
	}
	rep, err := RunLoad(context.Background(), srv.URL, items, LoadOptions{Concurrency: 64})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Non2xx != 0 || rep.Mismatches != 0 || rep.TraceEchoMisses != 0 {
		t.Fatalf("report = %+v (first error: %s)", rep, rep.FirstError)
	}
	if rep.SampleTrace == "" {
		t.Fatal("load report carries no sample trace")
	}
	if rep.Requests != 128 || rep.P50us <= 0 || rep.P95us < rep.P50us || rep.RPS <= 0 {
		t.Fatalf("implausible report %+v", rep)
	}
	for _, st := range reg.Snapshot() {
		if st.Transfers != 1 {
			t.Fatalf("key %s transferred %d times under coalesced load, want 1", st.Key, st.Transfers)
		}
	}
}

// TestRunLoadCountsMismatches: the byte-identity check actually fires.
func TestRunLoadCountsMismatches(t *testing.T) {
	srv, _ := newTestServer(t, newStubTransferer(0), Options{})
	items := []LoadItem{{
		Key:  "EM/A",
		In:   WireInstance{ID: "1", Candidates: []string{"yes", "no"}},
		Want: "something else",
	}}
	rep, err := RunLoad(context.Background(), srv.URL, items, LoadOptions{Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mismatches != 1 || rep.FirstError == "" {
		t.Fatalf("report = %+v, want one mismatch", rep)
	}
}
