package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/data"
)

// Resolver is the key→adapter resolution seam the HTTP layer runs on. The
// local Registry implements it by building and caching adapters in-process;
// internal/cluster's Router implements it by consistent-hashing the key
// onto remote backends. Server does not care which it fronts — local and
// remote resolution are one code path.
type Resolver interface {
	// Predict answers one instance under key, reporting whether the call
	// found the adapter cold (waited on a Transfer, its own or coalesced).
	Predict(ctx context.Context, key string, in *data.Instance) (string, bool, error)
	// Warm triggers adaptation for key without a prediction.
	Warm(ctx context.Context, key string) (bool, error)
	// Snapshot returns per-key stats, sorted by key.
	Snapshot() []KeyStats
	// Resident counts adapters resident right now.
	Resident() int
}

// ReadyChecker is optionally implemented by resolvers with a notion of
// downstream readiness. /readyz consults it: the cluster router, for
// instance, is not ready until at least one backend is healthy.
type ReadyChecker interface {
	Ready() error
}

// Evicter is optionally implemented by resolvers that can drop a resident
// adapter on demand. DELETE /v1/adapters/{key} consults it: the local
// Registry drops the entry and retires its per-key gauges (as an LRU
// eviction would); the cluster router fans the eviction to the key's
// owners. Evict reports whether anything was resident; a key the resolver
// has never seen is ErrUnknownKey.
type Evicter interface {
	Evict(ctx context.Context, key string) (bool, error)
}

// Sentinel errors of the serving tier beyond ErrUnknownKey (registry.go).
// statusFor maps them: ErrBadKey → 400, ErrOverloaded → 429 (+Retry-After),
// ErrDraining → 503 (+Retry-After).
var (
	// ErrBadKey marks a syntactically invalid adapter key — the request
	// can never succeed anywhere, so routers must not retry it.
	ErrBadKey = errors.New("serve: invalid adapter key")
	// ErrOverloaded is returned when the server sheds load past its
	// inflight bound; the request may succeed on retry or on a replica.
	ErrOverloaded = errors.New("serve: overloaded")
	// ErrDraining is returned while the server drains for shutdown.
	ErrDraining = errors.New("serve: draining")
)

// ValidateKey checks the "task/dataset" shape of an adapter key without
// consulting any registry: both halves non-empty, exactly one slash. It is
// the shared admission check of router and backend, so a malformed key is
// a 400 at whichever tier sees it first.
func ValidateKey(key string) error {
	if key == "" {
		return fmt.Errorf("%w: empty", ErrBadKey)
	}
	task, dataset, ok := strings.Cut(key, "/")
	if !ok || task == "" || dataset == "" || strings.Contains(dataset, "/") {
		return fmt.Errorf("%w: %q (want task/dataset)", ErrBadKey, key)
	}
	return nil
}
