package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime/pprof"
	"sync"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/obs/profile"
)

func jsonReader(t *testing.T, v any) *bytes.Reader {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(raw)
}

// labelAdapter records the pprof labels visible from inside Predict —
// what CPU samples taken during the call would be attributed with.
type labelAdapter struct {
	mu     sync.Mutex
	labels map[string]string
}

func (a *labelAdapter) Predict(ctx context.Context, in *data.Instance) string {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.labels = map[string]string{}
	for _, k := range []string{profile.LabelRoute, profile.LabelKey, profile.LabelBatch} {
		if v, ok := pprof.Label(ctx, k); ok {
			a.labels[k] = v
		}
	}
	return "ok"
}

func (a *labelAdapter) seen() map[string]string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.labels
}

// TestPredictCarriesPprofLabels pins the cost-attribution contract: by the
// time the adapter's Predict runs, the goroutine carries the handler's
// route label and the batcher's key/batch labels, stacked on one context.
func TestPredictCarriesPprofLabels(t *testing.T) {
	ad := &labelAdapter{}
	reg := NewRegistry(func(_ context.Context, _ string) (Adapter, error) {
		return ad, nil
	}, Options{})
	srv := NewServer(reg, Options{})

	req := httptest.NewRequest(http.MethodPost, "/v1/predict", jsonReader(t, PredictRequest{
		Adapter:  "EM/Walmart-Amazon",
		Instance: WireInstance{ID: "1", Candidates: []string{"y", "n"}},
	}))
	rw := httptest.NewRecorder()
	srv.ServeHTTP(rw, req)
	if rw.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rw.Code, rw.Body.String())
	}
	labels := ad.seen()
	if labels[profile.LabelRoute] != "predict" {
		t.Errorf("route label = %q, want predict (labels %v)", labels[profile.LabelRoute], labels)
	}
	if labels[profile.LabelKey] != "EM/Walmart-Amazon" {
		t.Errorf("key label = %q (labels %v)", labels[profile.LabelKey], labels)
	}
	if labels[profile.LabelBatch] == "" {
		t.Errorf("batch label missing (labels %v)", labels)
	}
}

// TestTransferCarriesPprofLabels pins the cold-start attribution: the
// Transfer itself runs under key + phase=transfer labels.
func TestTransferCarriesPprofLabels(t *testing.T) {
	var key, phase string
	reg := NewRegistry(func(ctx context.Context, k string) (Adapter, error) {
		key, _ = pprof.Label(ctx, profile.LabelKey)
		phase, _ = pprof.Label(ctx, profile.LabelPhase)
		return &stubAdapter{key: k}, nil
	}, Options{})
	if _, err := reg.Warm(context.Background(), "ED/Hospital"); err != nil {
		t.Fatal(err)
	}
	if key != "ED/Hospital" || phase != "transfer" {
		t.Errorf("transfer labels = key %q phase %q", key, phase)
	}
}

// TestHealthzReportsSamplerAndRuntime pins the /healthz satellite: sampler
// status plus fresh goroutine/heap readings, with and without a sampler.
func TestHealthzReportsSamplerAndRuntime(t *testing.T) {
	s := profile.Start(profile.Config{Interval: 2 * time.Millisecond})
	defer s.Stop()
	time.Sleep(6 * time.Millisecond)

	for _, tc := range []struct {
		name    string
		sampler *profile.Sampler
		enabled bool
	}{
		{"with sampler", s, true},
		{"without sampler", nil, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := Options{Sampler: tc.sampler}
			reg := NewRegistry(newStubTransferer(0).transfer, opts)
			srv := NewServer(reg, opts)
			req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
			rw := httptest.NewRecorder()
			srv.ServeHTTP(rw, req)
			var hr HealthResponse
			if err := json.Unmarshal(rw.Body.Bytes(), &hr); err != nil {
				t.Fatal(err)
			}
			if !hr.OK || hr.Goroutines <= 0 || hr.HeapLiveBytes == 0 {
				t.Fatalf("healthz runtime readings implausible: %+v", hr)
			}
			if hr.Sampler.Enabled != tc.enabled {
				t.Errorf("sampler.enabled = %v, want %v", hr.Sampler.Enabled, tc.enabled)
			}
			if tc.enabled && hr.Sampler.Samples < 1 {
				t.Errorf("sampler.samples = %d, want >= 1", hr.Sampler.Samples)
			}
			if hr.Sampler.Goroutines <= 0 || hr.Sampler.HeapLiveBytes == 0 {
				t.Errorf("sampler readings implausible: %+v", hr.Sampler)
			}
		})
	}
}

// TestSlowRequestTriggersCapture pins the slow-path satellite: a request
// past SlowRequest pokes the profile trigger and the capture files land.
func TestSlowRequestTriggersCapture(t *testing.T) {
	dir := t.TempDir()
	mreg := obs.NewRegistry()
	rec := obs.NewRecorder(mreg, nil)
	opts := Options{
		Rec:         rec,
		SlowRequest: time.Nanosecond, // every request is "slow"
		Profiles: &profile.Trigger{
			Dir:         dir,
			CPUDuration: 2 * time.Millisecond,
			Cooldown:    time.Hour,
			Rec:         rec,
		},
	}
	reg := NewRegistry(newStubTransferer(0).transfer, opts)
	srv := NewServer(reg, opts)
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rw := httptest.NewRecorder()
	srv.ServeHTTP(rw, req)

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if mreg.Counter("profile.captures").Value() > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if mreg.Counter("profile.captures").Value() == 0 {
		t.Fatalf("no capture after slow request (errors %d)",
			mreg.Counter("profile.capture_errors").Value())
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Error("capture dir empty")
	}
}
