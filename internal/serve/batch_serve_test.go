package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/obs"
)

// stubBatchAdapter adds a BatchPredictor face to stubAdapter: answers are
// computed by the same formula as serial Predict, the returned slice is
// scratch reused across calls (the contract the batcher must honor), and
// concurrent entry is detected through the embedded inCall/raced pair.
type stubBatchAdapter struct {
	stubAdapter
	batchCalls  atomic.Int32
	serialCalls atomic.Int32
	// wrongLen makes PredictBatch return one answer short — the defensive
	// fallback case.
	wrongLen bool
	ans      []string
}

func (a *stubBatchAdapter) Predict(ctx context.Context, in *data.Instance) string {
	a.serialCalls.Add(1)
	return a.stubAdapter.Predict(ctx, in)
}

func (a *stubBatchAdapter) PredictBatch(_ context.Context, ins []*data.Instance) []string {
	if a.inCall.Add(1) != 1 {
		a.raced.Store(true)
	}
	defer a.inCall.Add(-1)
	a.batchCalls.Add(1)
	if a.delay > 0 {
		time.Sleep(a.delay)
	}
	a.ans = a.ans[:0]
	for _, in := range ins {
		a.ans = append(a.ans, a.key+":"+in.ID)
	}
	if a.wrongLen {
		return a.ans[:len(a.ans)-1]
	}
	return a.ans
}

// stepClock is a deterministic clock for linger tests: the first now() call
// (the request's enqueue stamp) returns base, every later call returns
// base+step — so the drain loop's deadline arithmetic sees exactly step
// elapsed since enqueue, regardless of goroutine interleaving.
type stepClock struct {
	mu    sync.Mutex
	calls int
	base  time.Time
	step  time.Duration
}

func (c *stepClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.calls == 1 {
		return c.base
	}
	return c.base.Add(c.step)
}

// newClockBatcher is newBatcher with an injected clock (set before the loop
// starts, so the loop never races the assignment).
func newClockBatcher(ad Adapter, maxBatch int, maxWait time.Duration, clk func() time.Time) *batcher {
	b := &batcher{
		key:        "K",
		ad:         ad,
		maxBatch:   maxBatch,
		maxWait:    maxWait,
		depthGauge: "serve.queue_depth/K",
		now:        clk,
		wake:       make(chan struct{}, 1),
		stopc:      make(chan struct{}),
		done:       make(chan struct{}),
	}
	go b.run()
	return b
}

// TestLingerAnchorsAtOldestEnqueue is the regression test for the linger
// deadline bug: the straggler wait must be measured from the oldest queued
// request's enqueue, not from linger entry. The fake clock reports that
// more than maxWait already elapsed since the enqueue, so the loop must
// serve immediately — with the old entry-anchored deadline this request
// would sit out the full (here deliberately enormous) maxWait.
func TestLingerAnchorsAtOldestEnqueue(t *testing.T) {
	clk := &stepClock{base: time.Unix(1000, 0), step: 10*time.Second + time.Millisecond}
	b := newClockBatcher(&stubAdapter{key: "K"}, 8, 10*time.Second, clk.now)
	defer b.stop()

	done := make(chan string, 1)
	go func() {
		ans, err := b.predict(context.Background(), inst("1"))
		if err != nil {
			t.Error(err)
		}
		done <- ans
	}()
	select {
	case ans := <-done:
		if ans != "K:1" {
			t.Fatalf("answer %q, want %q", ans, "K:1")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("request stuck in linger despite its enqueue-anchored deadline having passed")
	}
}

// TestLingerStillWaitsWhenFresh is the counterpart: with a frozen clock
// (zero elapsed since enqueue) the loop must still linger, so a second
// request arriving during the wait coalesces into the same batch.
func TestLingerStillWaitsWhenFresh(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(reg, nil)
	frozen := time.Unix(1000, 0)
	ad := &stubBatchAdapter{stubAdapter: stubAdapter{key: "K"}}
	b := newClockBatcher(ad, 8, 300*time.Millisecond, func() time.Time { return frozen })
	b.rec = rec
	defer b.stop()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := b.predict(context.Background(), inst(fmt.Sprint(i))); err != nil {
				t.Error(err)
			}
		}(i)
		time.Sleep(20 * time.Millisecond) // second request lands mid-linger
	}
	wg.Wait()
	if max := reg.Histogram("serve.batch_size", sizeBounds).Snapshot().Max; max < 2 {
		t.Fatalf("max batch size %v; the straggler should have joined the lingering batch", max)
	}
}

// TestLingerTimerReused: the linger timer is allocated once per batcher and
// reused across batches, not once per linger.
func TestLingerTimerReused(t *testing.T) {
	b := newBatcher("K", &stubAdapter{key: "K"}, 2, 50*time.Millisecond, false, nil)
	for i := 0; i < 6; i++ {
		if _, err := b.predict(context.Background(), inst(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	b.stop() // closes done: the loop's timerInits writes are visible now
	if b.timerInits != 1 {
		t.Fatalf("timerInits = %d, want exactly 1 (one reused timer per batcher)", b.timerInits)
	}
}

// TestBatchedPredictMatchesSerialUnderLoad drives 64 concurrent requests
// through two batchers over equivalent adapters — one batched, one pinned
// serial — and requires byte-identical answers, with the batched side never
// touching the serial entry point and vice versa. Run under -race this also
// exercises the depth-gauge-under-mutex and scratch-ownership invariants.
func TestBatchedPredictMatchesSerialUnderLoad(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(reg, nil)
	adB := &stubBatchAdapter{stubAdapter: stubAdapter{key: "K", delay: time.Millisecond}}
	adS := &stubBatchAdapter{stubAdapter: stubAdapter{key: "K", delay: time.Millisecond}}
	bb := newBatcher("K", adB, 8, 2*time.Millisecond, false, rec)
	bs := newBatcher("K", adS, 8, 2*time.Millisecond, true, rec)
	defer bb.stop()
	defer bs.stop()

	const n = 64
	var wg sync.WaitGroup
	errCh := make(chan error, 2*n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := inst(fmt.Sprint(i))
			got, err := bb.predict(context.Background(), in)
			if err != nil {
				errCh <- err
				return
			}
			want, err := bs.predict(context.Background(), in)
			if err != nil {
				errCh <- err
				return
			}
			if got != want {
				errCh <- fmt.Errorf("request %d: batched %q != serial %q", i, got, want)
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if adB.raced.Load() || adS.raced.Load() {
		t.Fatal("concurrent adapter entry: the batcher must serialize per-adapter calls")
	}
	if adB.serialCalls.Load() != 0 {
		t.Fatalf("batched batcher made %d serial Predict calls", adB.serialCalls.Load())
	}
	if adB.batchCalls.Load() == 0 {
		t.Fatal("batched batcher never called PredictBatch")
	}
	if adS.batchCalls.Load() != 0 {
		t.Fatalf("serial-pinned batcher made %d PredictBatch calls", adS.batchCalls.Load())
	}
	if c := reg.Counter("serve.batched_predicts").Value(); c == 0 {
		t.Fatal("serve.batched_predicts counter never incremented")
	}
}

// TestBatchFallsBackOnWrongLength: a BatchPredictor returning the wrong
// number of answers must not corrupt responses — the batch re-runs through
// the serial oracle path.
func TestBatchFallsBackOnWrongLength(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(reg, nil)
	ad := &stubBatchAdapter{stubAdapter: stubAdapter{key: "K"}, wrongLen: true}
	b := newBatcher("K", ad, 4, time.Millisecond, false, rec)
	defer b.stop()

	for i := 0; i < 3; i++ {
		ans, err := b.predict(context.Background(), inst(fmt.Sprint(i)))
		if err != nil {
			t.Fatal(err)
		}
		if want := "K:" + fmt.Sprint(i); ans != want {
			t.Fatalf("answer %q, want %q", ans, want)
		}
	}
	if ad.serialCalls.Load() == 0 {
		t.Fatal("wrong-length batch never fell back to serial Predict")
	}
	if c := reg.Counter("serve.batched_predicts").Value(); c != 0 {
		t.Fatalf("serve.batched_predicts = %d for a misbehaving BatchPredictor, want 0", c)
	}
}

// TestEvictionRetiresDepthGauge is the registry-churn gate: when the LRU
// evicts a key, its per-key queue-depth gauge must disappear from the
// metrics snapshot instead of lingering as a stale series, while the
// surviving key's gauge stays.
func TestEvictionRetiresDepthGauge(t *testing.T) {
	mreg := obs.NewRegistry()
	rec := obs.NewRecorder(mreg, nil)
	tr := newStubTransferer(0)
	reg := NewRegistry(tr.transfer, Options{MaxAdapters: 1, MaxBatch: 2, MaxWait: time.Millisecond, Rec: rec})

	if _, _, err := reg.Predict(context.Background(), "EM/A", inst("1")); err != nil {
		t.Fatal(err)
	}
	if _, ok := mreg.Snapshot().Gauges["serve.queue_depth/EM/A"]; !ok {
		t.Fatal("depth gauge for resident key missing before eviction")
	}
	// Second key evicts the first (MaxAdapters 1); the evicted batcher stops
	// asynchronously, so poll for the gauge to vanish.
	if _, _, err := reg.Predict(context.Background(), "EM/B", inst("1")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := mreg.Snapshot().Gauges["serve.queue_depth/EM/A"]; !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("evicted key's depth gauge still exported")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, ok := mreg.Snapshot().Gauges["serve.queue_depth/EM/B"]; !ok {
		t.Fatal("surviving key's depth gauge missing")
	}
}
