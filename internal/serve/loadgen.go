package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// LoadItem is one request of a load run: the adapter key, the instance,
// and (optionally) the answer the direct Adapted.Predict path produced at
// the same seed — when non-empty, the generator asserts byte-identity.
type LoadItem struct {
	Key  string
	In   WireInstance
	Want string
}

// LoadOptions configures RunLoad.
type LoadOptions struct {
	// Concurrency is the number of in-flight requests the generator keeps
	// open (the ISSUE's acceptance floor is 64). Default 64.
	Concurrency int
	// Timeout bounds one HTTP request. Default 120s (a cold adapter pays
	// for a full Transfer on its first predict).
	Timeout time.Duration
	// TraceSeed seeds the deterministic per-request trace IDs the generator
	// sends as `traceparent` headers (item i gets the i-th ID of the stream,
	// independent of worker scheduling). Zero seeds from the clock — IDs are
	// still sent, just not reproducible across runs.
	TraceSeed int64
	// AtCount/OnCount inject a mid-load event: OnCount fires exactly once,
	// as soon as AtCount requests have completed. The cluster selftest uses
	// it to SIGKILL a backend while the remaining requests are in flight.
	AtCount int
	OnCount func()
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Concurrency <= 0 {
		o.Concurrency = 64
	}
	if o.Timeout <= 0 {
		o.Timeout = 120 * time.Second
	}
	return o
}

// LoadReport summarizes one load run. Latencies are per-request
// microseconds over the full HTTP round trip.
type LoadReport struct {
	Requests    int `json:"requests"`
	Non2xx      int `json:"non_2xx"`
	Mismatches  int `json:"mismatches"`
	ColdHits    int `json:"cold_hits"`
	Concurrency int `json:"concurrency"`
	// TraceEchoMisses counts 2xx responses whose traceparent echo did not
	// carry the trace ID the generator sent — i.e. propagation broke.
	TraceEchoMisses int `json:"trace_echo_misses"`
	// ErrorCodes tallies non-2xx responses by their envelope code;
	// EnvelopeMisses counts non-2xx bodies that were NOT the versioned
	// error envelope — any value above zero is an API-shape regression.
	ErrorCodes     map[string]int `json:"error_codes,omitempty"`
	EnvelopeMisses int            `json:"envelope_misses,omitempty"`
	// SampleTrace is the trace ID of the slowest request of the run: the
	// one to pull first with `knowtrans obs trace -trace-id`.
	SampleTrace string  `json:"sample_trace,omitempty"`
	WallS       float64 `json:"wall_s"`
	RPS         float64 `json:"throughput_rps"`
	P50us       float64 `json:"p50_us"`
	P95us       float64 `json:"p95_us"`
	P99us       float64 `json:"p99_us"`
	MaxUs       float64 `json:"max_us"`

	// FirstError keeps the first failure verbatim for diagnostics.
	FirstError string `json:"first_error,omitempty"`
}

// RunLoad drives items against a running server at baseURL with a fixed
// pool of workers, so up to Concurrency predicts are in flight at once. It
// never aborts on a failed request — failures are counted (Non2xx,
// Mismatches) and the first one is kept verbatim — so a chaos-mode run
// reports degradation instead of dying on it.
func RunLoad(ctx context.Context, baseURL string, items []LoadItem, opts LoadOptions) (*LoadReport, error) {
	opts = opts.withDefaults()
	if len(items) == 0 {
		return nil, fmt.Errorf("serve: load run needs items")
	}
	client := &http.Client{Timeout: opts.Timeout}
	workers := opts.Concurrency
	if workers > len(items) {
		workers = len(items)
	}
	seed := opts.TraceSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	ids := obs.NewIDSource(seed)
	traceFor := func(i int) obs.SpanContext {
		return obs.SpanContext{Trace: ids.At(uint64(i + 1)), Span: ids.SpanIDAt(uint64(i + 1))}
	}

	var (
		next       atomic.Int64
		completed  atomic.Int64
		non2xx     atomic.Int64
		mismatches atomic.Int64
		cold       atomic.Int64
		echoMiss   atomic.Int64

		envMiss atomic.Int64

		mu         sync.Mutex
		latUs      = make([]float64, len(items))
		firstErr   string
		errorCodes map[string]int
	)
	fail := func(msg string) {
		mu.Lock()
		if firstErr == "" {
			firstErr = msg
		}
		mu.Unlock()
	}

	doItem := func(i int) {
		it := items[i]
		body, _ := json.Marshal(PredictRequest{Adapter: it.Key, Instance: it.In})
		t0 := time.Now()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/predict", bytes.NewReader(body))
		if err != nil {
			non2xx.Add(1)
			fail(fmt.Sprintf("build request %d: %v", i, err))
			return
		}
		req.Header.Set("Content-Type", "application/json")
		sent := traceFor(i)
		req.Header.Set(obs.TraceparentHeader, obs.FormatTraceparent(sent))
		resp, err := client.Do(req)
		latUs[i] = float64(time.Since(t0).Microseconds())
		if err != nil {
			non2xx.Add(1)
			fail(fmt.Sprintf("request %d (%s): %v", i, it.Key, err))
			return
		}
		payload, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			non2xx.Add(1)
			if eb, ok := ParseErrorEnvelope(payload); ok {
				mu.Lock()
				if errorCodes == nil {
					errorCodes = map[string]int{}
				}
				errorCodes[eb.Code]++
				mu.Unlock()
				fail(fmt.Sprintf("request %d (%s): HTTP %d [%s, retryable=%v]: %s",
					i, it.Key, resp.StatusCode, eb.Code, eb.Retryable, eb.Message))
			} else {
				envMiss.Add(1)
				fail(fmt.Sprintf("request %d (%s): HTTP %d (not the error envelope): %s",
					i, it.Key, resp.StatusCode, bytes.TrimSpace(payload)))
			}
			return
		}
		if echo, perr := obs.ParseTraceparent(resp.Header.Get(obs.TraceparentHeader)); perr != nil || echo.Trace != sent.Trace {
			echoMiss.Add(1)
			fail(fmt.Sprintf("request %d (%s): traceparent not echoed (sent trace %s, got %q)",
				i, it.Key, sent.Trace, resp.Header.Get(obs.TraceparentHeader)))
		}
		var pr PredictResponse
		if err := json.Unmarshal(payload, &pr); err != nil {
			non2xx.Add(1)
			fail(fmt.Sprintf("request %d (%s): bad response body: %v", i, it.Key, err))
			return
		}
		if pr.Cold {
			cold.Add(1)
		}
		if it.Want != "" && pr.Answer != it.Want {
			mismatches.Add(1)
			fail(fmt.Sprintf("request %d (%s): served %q, direct path produced %q", i, it.Key, pr.Answer, it.Want))
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) || ctx.Err() != nil {
					return
				}
				doItem(i)
				if n := completed.Add(1); opts.OnCount != nil && int(n) == opts.AtCount {
					opts.OnCount()
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	slowest := 0
	for i, l := range latUs {
		if l > latUs[slowest] {
			slowest = i
		}
	}
	sorted := append([]float64(nil), latUs...)
	sort.Float64s(sorted)
	q := func(p float64) float64 {
		if len(sorted) == 0 {
			return 0
		}
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	return &LoadReport{
		Requests:        len(items),
		Non2xx:          int(non2xx.Load()),
		Mismatches:      int(mismatches.Load()),
		ColdHits:        int(cold.Load()),
		Concurrency:     workers,
		TraceEchoMisses: int(echoMiss.Load()),
		ErrorCodes:      errorCodes,
		EnvelopeMisses:  int(envMiss.Load()),
		SampleTrace:     traceFor(slowest).Trace.String(),
		WallS:           wall.Seconds(),
		RPS:             float64(len(items)) / wall.Seconds(),
		P50us:           q(0.50),
		P95us:           q(0.95),
		P99us:           q(0.99),
		MaxUs:           sorted[len(sorted)-1],
		FirstError:      firstErr,
	}, nil
}
