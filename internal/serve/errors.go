package serve

import (
	"encoding/json"
	"net/http"
)

// ErrorEnvelope is the one error body every /v1/* endpoint (and the
// /metrics* 500 paths) speaks: a versioned JSON envelope instead of
// ad-hoc text, so clients, the cluster router, and the load generator
// can branch on a stable machine-readable code while the HTTP status
// mapping (statusFor) stays exactly what it was.
//
//	{"error": {"code": "not_found", "message": "...", "retryable": false}}
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// ErrorBody is the payload inside the envelope. Code is one of the
// errorCode* constants; Retryable tells the caller whether the same
// request may succeed later or on a replica (shed load, drains,
// timeouts, backend 5xx) or can never succeed as written (bad keys,
// unknown keys, malformed bodies).
type ErrorBody struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
}

// Stable error codes, one per status the serving tier emits.
const (
	CodeBadRequest       = "bad_request"        // 400
	CodeNotFound         = "not_found"          // 404
	CodeMethodNotAllowed = "method_not_allowed" // 405
	CodeOverloaded       = "overloaded"         // 429
	CodeCanceled         = "canceled"           // 499
	CodeInternal         = "internal"           // 500
	CodeUpstream         = "upstream"           // 502
	CodeUnavailable      = "unavailable"        // 503 (draining / no healthy backends)
	CodeTimeout          = "timeout"            // 504
)

// ErrorCode maps an HTTP status to its envelope code.
func ErrorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusMethodNotAllowed:
		return CodeMethodNotAllowed
	case http.StatusTooManyRequests:
		return CodeOverloaded
	case 499:
		return CodeCanceled
	case http.StatusInternalServerError:
		return CodeInternal
	case http.StatusServiceUnavailable:
		return CodeUnavailable
	case http.StatusGatewayTimeout:
		return CodeTimeout
	default:
		if status >= 500 {
			return CodeUpstream
		}
		return CodeBadRequest
	}
}

// ErrorRetryable reports whether a status is worth retrying: shed load,
// drains, timeouts, and backend failures are transient; 4xx (and a
// client that hung up, 499) are not.
func ErrorRetryable(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	case 499:
		return false
	}
	return status >= 500
}

// WriteJSON renders one JSON response. Exported so packages extending the
// /v1 surface through Server.HandleFunc (internal/jobs) emit the same
// shapes as the built-in routes.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// WriteError renders err under its statusFor mapping in the versioned
// envelope. Shed responses (429/503) carry a Retry-After so well-behaved
// clients and the cluster router back off instead of hammering a server
// that said "not now".
func WriteError(w http.ResponseWriter, err error) {
	WriteErrorStatus(w, statusFor(err), err.Error())
}

// WriteErrorStatus renders the envelope for an explicit status — the path
// for errors that exist only at the HTTP layer (405s, malformed bodies)
// and have no sentinel error behind them.
func WriteErrorStatus(w http.ResponseWriter, status int, msg string) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	WriteJSON(w, status, ErrorEnvelope{Error: ErrorBody{
		Code:      ErrorCode(status),
		Message:   msg,
		Retryable: ErrorRetryable(status),
	}})
}

// ParseErrorEnvelope decodes an error payload if it is the versioned
// envelope. Callers (RunLoad, the cluster router) use it to surface the
// code and message instead of a raw byte dump.
func ParseErrorEnvelope(payload []byte) (ErrorBody, bool) {
	var env ErrorEnvelope
	if err := json.Unmarshal(payload, &env); err != nil || env.Error.Code == "" {
		return ErrorBody{}, false
	}
	return env.Error, true
}
