package serve

import (
	"context"
	"strconv"
	"sync"
	"time"

	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/obs/profile"
)

// BatchPredictor is the optional batched fast path of an Adapter: answer a
// whole micro-batch in one forward pass. core.Adapted implements it via the
// model's batched forward, which is bit-identical to serial Predict — the
// serve selftest gates on byte-equal answers, so an implementation may only
// provide this if it preserves exact per-request results. The returned slice
// must have one answer per instance; it may be scratch reused across calls
// (the batcher copies answers out before the next call).
type BatchPredictor interface {
	PredictBatch(ctx context.Context, ins []*data.Instance) []string
}

// predictReq is one queued prediction: the instance, the requester's
// context (checked again at serve time so abandoned work is shed), and a
// one-slot reply channel.
type predictReq struct {
	ctx  context.Context
	in   *data.Instance
	resp chan predictResp
	enq  time.Time
}

type predictResp struct {
	ans string
	err error
}

// sizeBounds are the histogram bounds for the small-count distributions of
// the service (queue depth, batch size): roughly 1-1.5-2 steps out to 256,
// where the latency bounds' decade steps would collapse everything into two
// buckets.
var sizeBounds = []float64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256}

// batcher is the per-adapter micro-batching predict loop. Requests enqueue
// under a mutex; a single goroutine drains the queue into batches of at
// most maxBatch, lingering up to maxWait for stragglers once it holds at
// least one request, then answers the whole batch against the model.
// Batching serves two purposes: hot adapters answer the batch in one batched
// forward pass (see BatchPredictor), and — since the underlying model reuses
// scratch buffers and is not safe for concurrent Predict — the loop is also
// the per-adapter serialization point, so the registry can accept unbounded
// request concurrency without data races.
//
// The enqueue path checks the stopped flag under the same mutex that stop
// sets it, so after stop returns no new request can slip into the queue:
// everything queued is failed with errBatcherStopped (the registry's retry
// signal) and later arrivals are refused at the door. The per-key depth
// gauge is written only under that mutex too, which is what lets stop
// retire the gauge without racing a late enqueue's write.
type batcher struct {
	key      string
	ad       Adapter
	maxBatch int
	maxWait  time.Duration
	// serial forces the per-request oracle path even when the adapter
	// implements BatchPredictor (Options.SerialPredict; the perf gate's
	// baseline and the selftest's reference behavior).
	serial bool
	rec    *obs.Recorder
	// depthGauge is the per-key queue depth gauge name, precomputed so the
	// enqueue hot path does no string concatenation.
	depthGauge string
	// now is the clock, injectable for deterministic linger tests.
	now func() time.Time

	mu      sync.Mutex
	queue   []*predictReq
	stopped bool

	// wake (capacity 1) nudges the loop after an enqueue; coalesced wakes
	// are fine because the loop re-reads the queue under the mutex. stopc
	// unblocks the loop's waits on stop; done closes when the loop exits.
	wake  chan struct{}
	stopc chan struct{}
	done  chan struct{}

	// linger timer, allocated once per batcher and reused across batches
	// (Stop+drain+Reset protocol). timerInits counts allocations so the
	// reuse is testable; it is written only by the loop goroutine and read
	// after done closes.
	timer      *time.Timer
	timerInits int

	// serve-loop scratch, reused across batches (single owner: the loop).
	live []*predictReq
	ins  []*data.Instance
}

func newBatcher(key string, ad Adapter, maxBatch int, maxWait time.Duration, serial bool, rec *obs.Recorder) *batcher {
	b := &batcher{
		key:        key,
		ad:         ad,
		maxBatch:   maxBatch,
		maxWait:    maxWait,
		serial:     serial,
		rec:        rec,
		depthGauge: "serve.queue_depth/" + key,
		now:        time.Now,
		wake:       make(chan struct{}, 1),
		stopc:      make(chan struct{}),
		done:       make(chan struct{}),
	}
	go b.run()
	return b
}

// predict enqueues one instance and waits for its batch to be served. A
// stopped batcher (the adapter was evicted) returns errBatcherStopped,
// which Registry.Predict treats as "re-resolve and retry".
func (b *batcher) predict(ctx context.Context, in *data.Instance) (string, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	r := &predictReq{ctx: ctx, in: in, resp: make(chan predictResp, 1), enq: b.now()}
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		return "", errBatcherStopped
	}
	b.queue = append(b.queue, r)
	depth := len(b.queue)
	b.rec.SetGauge(b.depthGauge, float64(depth))
	b.mu.Unlock()
	b.rec.Observe("serve.queue_depth", float64(depth), sizeBounds)
	select {
	case b.wake <- struct{}{}:
	default:
	}
	// The loop owns the request from here: even if this requester gives up,
	// the batch will answer into the buffered resp channel and move on.
	select {
	case resp := <-r.resp:
		return resp.ans, resp.err
	case <-ctx.Done():
		return "", ctx.Err()
	}
}

// stop refuses new requests, fails everything still queued, waits for the
// loop to exit, and retires the per-key depth gauge (an evicted key must
// disappear from /metrics, not linger as a stale series). Queued requesters
// get errBatcherStopped and transparently re-resolve through the registry.
func (b *batcher) stop() {
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
	} else {
		b.stopped = true
		b.mu.Unlock()
		close(b.stopc)
	}
	<-b.done
	// Safe against enqueue races: every gauge write happens under b.mu with
	// stopped false, which happens-before the loop exit observed above.
	b.rec.DeleteGauge(b.depthGauge)
}

// run is the drain loop: wait for work, linger for stragglers, serve the
// batch, repeat until stopped.
func (b *batcher) run() {
	defer close(b.done)
	for {
		b.mu.Lock()
		if b.stopped {
			q := b.queue
			b.queue = nil
			b.mu.Unlock()
			for _, r := range q {
				r.resp <- predictResp{err: errBatcherStopped}
			}
			return
		}
		if len(b.queue) == 0 {
			b.mu.Unlock()
			select {
			case <-b.wake:
			case <-b.stopc:
			}
			continue
		}
		pending := len(b.queue)
		oldest := b.queue[0].enq
		b.mu.Unlock()

		// Linger: a non-full batch waits for stragglers so bursts coalesce.
		// The deadline anchors at the OLDEST queued request's enqueue time,
		// not at linger entry: under back-to-back batches the loop may reach
		// this point long after the request arrived, and re-starting the
		// clock here would stretch the documented maxWait bound into up to
		// 2x tail latency. Singleton traffic pays at most maxWait extra
		// latency; a full batch (or maxBatch 1) goes immediately.
		if pending < b.maxBatch && b.maxBatch > 1 {
			if wait := b.maxWait - b.now().Sub(oldest); wait > 0 {
				b.linger(wait)
			}
		}

		b.mu.Lock()
		n := len(b.queue)
		if n > b.maxBatch {
			n = b.maxBatch
		}
		batch := make([]*predictReq, n)
		copy(batch, b.queue[:n])
		rest := b.queue[n:]
		b.queue = append(b.queue[:0:0], rest...)
		b.rec.SetGauge(b.depthGauge, float64(len(b.queue)))
		b.mu.Unlock()
		b.serve(batch)
	}
}

// linger blocks until the batch fills, wait elapses, or stop. Wake signals
// re-check the queue length under the mutex, so coalesced wakes and spurious
// ones are harmless. The timer is allocated once per batcher and reused with
// the Stop+drain+Reset protocol — one timer per batch on the hot path was
// pure allocation churn.
func (b *batcher) linger(wait time.Duration) {
	if b.timer == nil {
		b.timer = time.NewTimer(wait)
		b.timerInits++
	} else {
		if !b.timer.Stop() {
			select {
			case <-b.timer.C:
			default:
			}
		}
		b.timer.Reset(wait)
	}
	for {
		select {
		case <-b.wake:
			b.mu.Lock()
			full := len(b.queue) >= b.maxBatch || b.stopped
			b.mu.Unlock()
			if full {
				return
			}
		case <-b.timer.C:
			return
		case <-b.stopc:
			return
		}
	}
}

// serve answers one batch. Per-adapter calls are serialized by construction
// (one loop per batcher); requests whose context already expired are shed
// without touching the model. When the adapter implements BatchPredictor
// (and the batcher is not pinned serial), the surviving requests are
// answered by ONE batched forward pass; otherwise — and as the fallback if
// the batched call returns the wrong number of answers — each request runs
// through the serial oracle path.
//
// The serve.batch span lives in its own trace — batching is shared work, so
// it belongs to no single request — and instead *links* every member
// request's span, the OTel link idiom for amortized execution. Each member's
// queue wait is annotated onto its own request span and fed back to the
// access log through the requestInfo carrier, so "my request was slow" and
// "the batch it rode was busy" stay connected.
func (b *batcher) serve(batch []*predictReq) {
	_, span := b.rec.StartSpan("serve.batch")
	span.SetAttr("key", b.key)
	span.SetAttr("size", len(batch))
	start := time.Now()
	b.rec.Observe("serve.batch_size", float64(len(batch)), sizeBounds)
	batchLabel := strconv.Itoa(len(batch))
	live := b.live[:0]
	for _, r := range batch {
		queueUS := b.now().Sub(r.enq).Microseconds()
		b.rec.Observe("serve.queue_us", float64(queueUS), nil)
		if rs := obs.SpanFromContext(r.ctx); rs != nil {
			span.Link(rs.Context())
			rs.SetAttr("queue_us", queueUS)
		}
		if ri := requestInfoFrom(r.ctx); ri != nil {
			ri.batchSize.Store(int64(len(batch)))
			ri.queueUS.Store(queueUS)
		}
		if err := r.ctx.Err(); err != nil {
			r.resp <- predictResp{err: err}
			b.rec.Count("serve.shed", 1)
			continue
		}
		live = append(live, r)
	}
	b.live = live[:0] // retain grown scratch for the next batch
	if bp, ok := b.ad.(BatchPredictor); ok && !b.serial && len(live) > 0 {
		ins := b.ins[:0]
		for _, r := range live {
			ins = append(ins, r.in)
		}
		b.ins = ins[:0]
		ps := span.StartChild("serve.predict")
		ps.SetAttr("size", len(live))
		// One batched forward under pprof labels; the batch runs on behalf
		// of every member, so it is labeled but not cancellable by any
		// single requester (expired members were already shed above).
		var answers []string
		profile.Do(context.Background(), func(ctx context.Context) {
			answers = bp.PredictBatch(ctx, ins)
		}, profile.LabelKey, b.key, profile.LabelBatch, batchLabel)
		ps.End()
		if len(answers) == len(live) {
			b.rec.Count("serve.batched_predicts", 1)
			for i, r := range live {
				r.resp <- predictResp{ans: answers[i]}
			}
			live = live[:0]
		}
	}
	for _, r := range live {
		ps := span.StartChild("serve.predict")
		// Predict runs under pprof labels — key and batch size on top of
		// whatever the request context already carries (route) — so CPU
		// samples attribute to the adapter that burned them. Labeling the
		// request's own ctx keeps its cancellation semantics intact.
		var ans string
		profile.Do(r.ctx, func(ctx context.Context) {
			ans = b.ad.Predict(ctx, r.in)
		}, profile.LabelKey, b.key, profile.LabelBatch, batchLabel)
		ps.End()
		r.resp <- predictResp{ans: ans}
	}
	b.rec.Count("serve.batches", 1)
	b.rec.Observe("serve.batch_us", float64(time.Since(start).Microseconds()), nil)
	span.End()
}
