package serve

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/obs"
)

// queueDepthGauges returns the keys that currently own a
// serve.queue_depth/<key> gauge.
func queueDepthGauges(mreg *obs.Registry) map[string]bool {
	out := map[string]bool{}
	for name := range mreg.Snapshot().Gauges {
		if k, ok := strings.CutPrefix(name, "serve.queue_depth/"); ok {
			out[k] = true
		}
	}
	return out
}

// TestWarmRacesEviction churns Warm/Predict across more keys than the
// registry can hold from 64 goroutines, so warms race predicts race LRU
// evictions (run under -race). Afterwards it asserts the metrics surface
// survived the churn — every queue-depth gauge belongs to a resident key
// (evicted keys must not leak stale series) and every resident key that
// serves traffic has one — and that residency still means exactly one
// Transfer: a re-Warm of a resident key is a no-op, and per-key Transfer
// counts match the stub's build counts (nothing lost, nothing doubled).
func TestWarmRacesEviction(t *testing.T) {
	mreg := obs.NewRegistry()
	rec := obs.NewRecorder(mreg, nil)
	tr := newStubTransferer(0)
	opts := Options{MaxAdapters: 2, MaxBatch: 4, MaxWait: 100 * time.Microsecond, Rec: rec}
	r := NewRegistry(tr.transfer, opts)

	keys := make([]string, 6)
	for i := range keys {
		keys[i] = fmt.Sprintf("EM/K%d", i)
	}

	const goroutines = 64
	const iters = 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				key := keys[rng.Intn(len(keys))]
				if g%2 == 0 {
					if _, err := r.Warm(context.Background(), key); err != nil {
						t.Errorf("Warm(%s): %v", key, err)
						return
					}
				} else {
					in := &data.Instance{ID: fmt.Sprint(i), Candidates: []string{"yes", "no"}, Gold: -1}
					ans, _, err := r.Predict(context.Background(), key, in)
					if err != nil {
						t.Errorf("Predict(%s): %v", key, err)
						return
					}
					if want := key + ":" + in.ID; ans != want {
						t.Errorf("Predict(%s) = %q, want %q", key, ans, want)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if tr.anyRace() {
		t.Fatal("stub adapter saw concurrent Predict calls — batcher serialization broke")
	}

	resident := func() map[string]bool {
		out := map[string]bool{}
		for _, st := range r.Snapshot() {
			if st.Resident {
				out[st.Key] = true
			}
		}
		return out
	}

	// Eviction retires batchers (and their gauges) asynchronously; wait for
	// the gauge set to settle inside the resident set.
	deadline := time.Now().Add(5 * time.Second)
	for {
		stale := false
		res := resident()
		for k := range queueDepthGauges(mreg) {
			if !res[k] {
				stale = true
			}
		}
		if !stale {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stale queue-depth gauges for evicted keys: gauges=%v resident=%v",
				queueDepthGauges(mreg), res)
		}
		time.Sleep(time.Millisecond)
	}

	res := resident()
	if len(res) == 0 || len(res) > opts.MaxAdapters {
		t.Fatalf("resident set %v, want 1..%d keys", res, opts.MaxAdapters)
	}

	// Exactly one Transfer per resident key: a re-Warm is a hit, not a new
	// build, and the registry's Transfer counts agree with the stub's build
	// counts for every key ever touched.
	before := map[string]int64{}
	for _, st := range r.Snapshot() {
		before[st.Key] = st.Transfers
	}
	for k := range res {
		cold, err := r.Warm(context.Background(), k)
		if err != nil {
			t.Fatalf("re-Warm(%s): %v", k, err)
		}
		if cold {
			t.Fatalf("re-Warm(%s) was cold — resident key rebuilt", k)
		}
	}
	for _, st := range r.Snapshot() {
		if st.Transfers != before[st.Key] {
			t.Fatalf("key %s transferred again on re-Warm (%d → %d)", st.Key, before[st.Key], st.Transfers)
		}
		if got := int64(tr.buildCount(st.Key)); got != st.Transfers {
			t.Fatalf("key %s: registry counted %d transfers, stub built %d", st.Key, st.Transfers, got)
		}
	}

	// Every resident key serving traffic owns its gauge again (predict
	// recreates the series), and only resident keys do.
	for k := range res {
		in := &data.Instance{ID: "final", Candidates: []string{"yes", "no"}, Gold: -1}
		if _, _, err := r.Predict(context.Background(), k, in); err != nil {
			t.Fatalf("final Predict(%s): %v", k, err)
		}
	}
	gauges := queueDepthGauges(mreg)
	for k := range res {
		if !gauges[k] {
			t.Fatalf("resident key %s lost its queue-depth gauge: %v", k, gauges)
		}
	}
	for k := range gauges {
		if !res[k] {
			t.Fatalf("non-resident key %s still exports a queue-depth gauge", k)
		}
	}
}
