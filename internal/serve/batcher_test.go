package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestBatchesForm: with a slow adapter and a burst of requests, the loop
// must coalesce waiting requests into multi-request batches (observable in
// the serve.batch_size histogram) and answer all of them correctly.
func TestBatchesForm(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(reg, nil)
	ad := &stubAdapter{key: "K", delay: 2 * time.Millisecond}
	b := newBatcher("K", ad, 8, 50*time.Millisecond, false, rec)
	defer b.stop()

	const n = 32
	var wg sync.WaitGroup
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ans, err := b.predict(context.Background(), inst(fmt.Sprint(i)))
			if err != nil {
				errCh <- err
				return
			}
			if want := "K:" + fmt.Sprint(i); ans != want {
				errCh <- fmt.Errorf("answer %q, want %q", ans, want)
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if ad.raced.Load() {
		t.Fatal("concurrent Predict calls reached the adapter")
	}
	h := reg.Histogram("serve.batch_size", sizeBounds)
	if h.Count() == 0 {
		t.Fatal("no batches recorded")
	}
	snap := h.Snapshot()
	if snap.Max <= 1 {
		t.Fatalf("max batch size %v; a 32-request burst against a 2ms adapter must coalesce", snap.Max)
	}
	if h.Count() >= n {
		t.Fatalf("%d batches for %d requests; batching amortized nothing", h.Count(), n)
	}
}

// TestBatchRespectsCap: no served batch may exceed MaxBatch.
func TestBatchRespectsCap(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(reg, nil)
	ad := &stubAdapter{key: "K", delay: time.Millisecond}
	b := newBatcher("K", ad, 4, 20*time.Millisecond, false, rec)
	defer b.stop()

	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := b.predict(context.Background(), inst(fmt.Sprint(i))); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if max := reg.Histogram("serve.batch_size", sizeBounds).Snapshot().Max; max > 4 {
		t.Fatalf("batch of %v served with MaxBatch 4", max)
	}
}

// TestStopFailsQueued: stopping a batcher fails queued requests with the
// retry sentinel instead of hanging them, and refuses later arrivals.
func TestStopFailsQueued(t *testing.T) {
	ad := &stubAdapter{key: "K", delay: 20 * time.Millisecond}
	b := newBatcher("K", ad, 1, time.Millisecond, false, nil)

	// Occupy the loop with a slow call so the next request queues behind it.
	first := make(chan error, 1)
	go func() {
		_, err := b.predict(context.Background(), inst("0"))
		first <- err
	}()
	time.Sleep(5 * time.Millisecond)
	queued := make(chan error, 1)
	go func() {
		_, err := b.predict(context.Background(), inst("1"))
		queued <- err
	}()
	time.Sleep(5 * time.Millisecond)
	go b.stop()

	if err := <-queued; err != nil && !errors.Is(err, errBatcherStopped) {
		t.Fatalf("queued request err = %v, want nil or errBatcherStopped", err)
	}
	if err := <-first; err != nil && !errors.Is(err, errBatcherStopped) {
		t.Fatalf("in-flight request err = %v, want nil or errBatcherStopped", err)
	}
	if _, err := b.predict(context.Background(), inst("2")); !errors.Is(err, errBatcherStopped) {
		t.Fatalf("post-stop predict err = %v, want errBatcherStopped", err)
	}
}

// TestPredictShedsCanceled: a request whose context dies while queued is
// answered with the context error without touching the model.
func TestPredictShedsCanceled(t *testing.T) {
	ad := &stubAdapter{key: "K", delay: 30 * time.Millisecond}
	b := newBatcher("K", ad, 1, time.Millisecond, false, nil)
	defer b.stop()

	// Head-of-line request keeps the loop busy.
	go b.predict(context.Background(), inst("0")) //nolint:errcheck
	time.Sleep(5 * time.Millisecond)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := b.predict(ctx, inst("1"))
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled request never returned")
	}
}

// TestStopIdempotent: double-stop must not panic or hang.
func TestStopIdempotent(t *testing.T) {
	b := newBatcher("K", &stubAdapter{key: "K"}, 2, time.Millisecond, false, nil)
	done := make(chan struct{})
	go func() {
		b.stop()
		b.stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stop hung")
	}
}
