package resilience

import "sync"

// BreakerConfig parameterizes a Breaker. The zero value gets the same
// defaults as Policy: trip after 5 consecutive failures, reject 3 calls
// while open, close after 2 half-open probe successes. Threshold < 0
// disables the breaker entirely (Allow always admits).
type BreakerConfig struct {
	// Threshold is the run of consecutive failures that trips the breaker
	// open (default 5; <0 disables).
	Threshold int
	// Cooldown is how many short-circuited calls the open breaker rejects
	// before letting a half-open probe through (default 3). Cooling down by
	// call count instead of wall time keeps seeded runs deterministic at
	// any speed.
	Cooldown int
	// Probes is the run of consecutive probe successes that closes a
	// half-open breaker (default 2). Any probe failure reopens it.
	Probes int
	// OnState, when non-nil, observes every state change. OnTrip, when
	// non-nil, fires on each closed/half-open → open transition. Both are
	// invoked with the breaker's lock held and must not call back into it.
	OnState func(State)
	OnTrip  func()
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold == 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 3
	}
	if c.Probes <= 0 {
		c.Probes = 2
	}
	return c
}

// Breaker is a three-state circuit breaker (closed → open on consecutive
// failures → half-open probes → closed), factored out of ResilientOracle
// so the serving tier can run one per backend. Callers bracket each
// protected call with Allow / Success-or-Failure. Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu          sync.Mutex
	state       State
	consecFails int
	cooldown    int // rejected calls remaining before half-open
	probesLeft  int // successes remaining to close from half-open
}

// NewBreaker returns a closed breaker with the given config.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// State returns the current state.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow gates one call. It returns ErrBreakerOpen while the breaker is
// cooling down; once the cooldown is spent the next call is admitted as a
// half-open probe.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cfg.Threshold <= 0 || b.state != StateOpen {
		return nil
	}
	b.cooldown--
	if b.cooldown > 0 {
		return ErrBreakerOpen
	}
	// Cooled down: let this call through as a half-open probe.
	b.setState(StateHalfOpen)
	b.probesLeft = b.cfg.Probes
	return nil
}

// Success records a successful call, resetting the failure run and
// closing the breaker once enough half-open probes have succeeded.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails = 0
	if b.state == StateHalfOpen {
		b.probesLeft--
		if b.probesLeft <= 0 {
			b.setState(StateClosed)
		}
	}
}

// Failure records a failed call. A failed half-open probe reopens the
// breaker immediately; Threshold consecutive failures trip it from closed.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cfg.Threshold <= 0 {
		return
	}
	b.consecFails++
	switch {
	case b.state == StateHalfOpen:
		b.trip()
	case b.state == StateClosed && b.consecFails >= b.cfg.Threshold:
		b.trip()
	}
}

// trip opens the breaker and arms the cooldown (callers hold b.mu).
func (b *Breaker) trip() {
	b.setState(StateOpen)
	b.cooldown = b.cfg.Cooldown
	if b.cfg.OnTrip != nil {
		b.cfg.OnTrip()
	}
}

// setState records a state change (callers hold b.mu).
func (b *Breaker) setState(s State) {
	if b.state == s {
		return
	}
	b.state = s
	if b.cfg.OnState != nil {
		b.cfg.OnState(s)
	}
}
