package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestHedgeFirstAttemptWins(t *testing.T) {
	v, out, err := Hedge(context.Background(), 3, HedgeOptions{Delay: time.Second},
		func(ctx context.Context, i int) (string, error) {
			return fmt.Sprintf("ans-%d", i), nil
		})
	if err != nil {
		t.Fatalf("Hedge: %v", err)
	}
	if v != "ans-0" || out.Winner != 0 {
		t.Fatalf("got %q winner %d, want ans-0 from 0", v, out.Winner)
	}
	if out.Attempts != 1 || out.Hedges != 0 || out.Failovers != 0 {
		t.Fatalf("outcome = %+v, want single attempt", out)
	}
}

func TestHedgeBackupWinsAndLoserCancelled(t *testing.T) {
	cancelled := make(chan struct{})
	v, out, err := Hedge(context.Background(), 2, HedgeOptions{Delay: 10 * time.Millisecond},
		func(ctx context.Context, i int) (string, error) {
			if i == 0 {
				// Slow replica: should lose to the hedge and then observe
				// cancellation.
				select {
				case <-ctx.Done():
					close(cancelled)
					return "", ctx.Err()
				case <-time.After(5 * time.Second):
					return "slow", nil
				}
			}
			return "fast", nil
		})
	if err != nil {
		t.Fatalf("Hedge: %v", err)
	}
	if v != "fast" || out.Winner != 1 {
		t.Fatalf("got %q winner %d, want fast from 1", v, out.Winner)
	}
	if out.Hedges != 1 || out.Attempts != 2 {
		t.Fatalf("outcome = %+v, want 1 hedge over 2 attempts", out)
	}
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("losing attempt was never cancelled")
	}
}

func TestHedgeFailsOverOnError(t *testing.T) {
	v, out, err := Hedge(context.Background(), 3, HedgeOptions{Delay: time.Second},
		func(ctx context.Context, i int) (string, error) {
			if i == 0 {
				return "", errors.New("connection refused")
			}
			return fmt.Sprintf("ans-%d", i), nil
		})
	if err != nil {
		t.Fatalf("Hedge: %v", err)
	}
	if v != "ans-1" || out.Winner != 1 {
		t.Fatalf("got %q winner %d, want ans-1 from 1", v, out.Winner)
	}
	if out.Failovers != 1 || out.Hedges != 0 {
		t.Fatalf("outcome = %+v, want 1 failover, 0 hedges", out)
	}
}

func TestHedgeAllFailReturnsLastError(t *testing.T) {
	wantErr := errors.New("backend 2 down")
	_, out, err := Hedge(context.Background(), 3, HedgeOptions{Delay: time.Second},
		func(ctx context.Context, i int) (string, error) {
			if i == 2 {
				return "", wantErr
			}
			return "", fmt.Errorf("backend %d down", i)
		})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want last error %v", err, wantErr)
	}
	if out.Attempts != 3 || out.Failovers != 2 || out.Winner != -1 {
		t.Fatalf("outcome = %+v, want 3 attempts, 2 failovers, no winner", out)
	}
}

func TestHedgeTerminalErrorShortCircuits(t *testing.T) {
	sentinel := errors.New("unknown key")
	var attempts atomic.Int32
	_, out, err := Hedge(context.Background(), 3, HedgeOptions{Delay: time.Second},
		func(ctx context.Context, i int) (string, error) {
			attempts.Add(1)
			return "", Terminal(fmt.Errorf("replica says: %w", sentinel))
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	if !IsTerminal(err) {
		t.Fatalf("err %v should still be marked terminal", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (terminal error must not fail over)", got)
	}
	if out.Failovers != 0 || out.Hedges != 0 {
		t.Fatalf("outcome = %+v, want no extra attempts", out)
	}
}

func TestHedgeRespectsAttemptCap(t *testing.T) {
	var attempts atomic.Int32
	_, out, err := Hedge(context.Background(), 2, HedgeOptions{Delay: time.Millisecond},
		func(ctx context.Context, i int) (string, error) {
			attempts.Add(1)
			return "", errors.New("down")
		})
	if err == nil {
		t.Fatal("want error when every replica fails")
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("attempts = %d, want exactly the cap of 2", got)
	}
	if out.Attempts != 2 {
		t.Fatalf("outcome = %+v, want Attempts=2", out)
	}
}

func TestHedgeParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, _, err := Hedge(ctx, 1, HedgeOptions{},
		func(ctx context.Context, i int) (string, error) {
			<-ctx.Done()
			return "", ctx.Err()
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestBreakerStandalone(t *testing.T) {
	var states []State
	trips := 0
	b := NewBreaker(BreakerConfig{
		Threshold: 2,
		Cooldown:  2,
		Probes:    1,
		OnState:   func(s State) { states = append(states, s) },
		OnTrip:    func() { trips++ },
	})
	if b.State() != StateClosed {
		t.Fatalf("initial state = %v, want closed", b.State())
	}
	// Two consecutive failures trip it.
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker rejected call %d: %v", i, err)
		}
		b.Failure()
	}
	if b.State() != StateOpen || trips != 1 {
		t.Fatalf("state = %v trips = %d, want open after threshold", b.State(), trips)
	}
	// Cooldown of 2: first call rejected, second admitted as probe.
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker admitted a call during cooldown: %v", err)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("cooled-down breaker rejected the probe: %v", err)
	}
	if b.State() != StateHalfOpen {
		t.Fatalf("state = %v, want half-open probe", b.State())
	}
	// One probe success closes it (Probes: 1).
	b.Success()
	if b.State() != StateClosed {
		t.Fatalf("state = %v, want closed after successful probe", b.State())
	}
	want := []State{StateOpen, StateHalfOpen, StateClosed}
	if len(states) != len(want) {
		t.Fatalf("state transitions = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("state transitions = %v, want %v", states, want)
		}
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: -1})
	for i := 0; i < 50; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("disabled breaker rejected call %d: %v", i, err)
		}
		b.Failure()
	}
	if b.State() != StateClosed {
		t.Fatalf("disabled breaker left closed state: %v", b.State())
	}
}
