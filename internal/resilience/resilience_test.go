package resilience

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/akb"
	"repro/internal/tasks"
)

// seqOracle fails according to a script: errs[i] is returned by call i
// (nil past the end of the script). It also meters fake tokens.
type seqOracle struct {
	errs   []error
	calls  int
	tokens int
}

type tempErr struct{ temp bool }

func (e *tempErr) Error() string   { return "scripted failure" }
func (e *tempErr) Temporary() bool { return e.temp }

func (o *seqOracle) next() error {
	i := o.calls
	o.calls++
	o.tokens += 10
	if i < len(o.errs) {
		return o.errs[i]
	}
	return nil
}

func (o *seqOracle) Generate(context.Context, akb.GenerateRequest) ([]*tasks.Knowledge, error) {
	if err := o.next(); err != nil {
		return nil, err
	}
	return []*tasks.Knowledge{{Text: "k"}}, nil
}

func (o *seqOracle) Feedback(context.Context, akb.FeedbackRequest) (string, error) {
	if err := o.next(); err != nil {
		return "", err
	}
	return "fb", nil
}

func (o *seqOracle) Refine(context.Context, akb.RefineRequest) ([]*tasks.Knowledge, error) {
	if err := o.next(); err != nil {
		return nil, err
	}
	return []*tasks.Knowledge{{Text: "r"}}, nil
}

func (o *seqOracle) TokenCount() (int, int) { return o.tokens, 0 }

func noSleep(time.Duration) {}

func policy() Policy { return Policy{Seed: 1, Sleep: noSleep} }

func TestRetryUntilSuccess(t *testing.T) {
	inner := &seqOracle{errs: []error{&tempErr{temp: true}, &tempErr{temp: true}}}
	r := New(inner, policy())
	ks, err := r.Generate(context.Background(), akb.GenerateRequest{})
	if err != nil || len(ks) != 1 {
		t.Fatalf("third attempt should succeed: ks=%v err=%v", ks, err)
	}
	if inner.calls != 3 {
		t.Fatalf("inner saw %d calls, want 3", inner.calls)
	}
}

func TestRetriesExhausted(t *testing.T) {
	inner := &seqOracle{errs: []error{
		&tempErr{temp: true}, &tempErr{temp: true}, &tempErr{temp: true},
	}}
	r := New(inner, policy())
	_, err := r.Feedback(context.Background(), akb.FeedbackRequest{})
	if err == nil {
		t.Fatal("three transient failures with MaxAttempts=3 should error")
	}
	var te *tempErr
	if !errors.As(err, &te) {
		t.Fatalf("final error should wrap the last attempt's: %v", err)
	}
	if inner.calls != 3 {
		t.Fatalf("inner saw %d calls, want exactly MaxAttempts", inner.calls)
	}
}

func TestNonTransientNotRetried(t *testing.T) {
	inner := &seqOracle{errs: []error{&tempErr{temp: false}}}
	r := New(inner, policy())
	_, err := r.Generate(context.Background(), akb.GenerateRequest{})
	if err == nil {
		t.Fatal("permanent failure should surface")
	}
	if inner.calls != 1 {
		t.Fatalf("permanent failure retried: %d calls", inner.calls)
	}
}

func TestContextCancelNotRetried(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	inner := &seqOracle{errs: []error{ctx.Err(), ctx.Err(), ctx.Err()}}
	r := New(inner, policy())
	if _, err := r.Refine(ctx, akb.RefineRequest{}); err == nil {
		t.Fatal("cancellation should surface")
	}
	if inner.calls != 1 {
		t.Fatalf("cancellation retried: %d calls", inner.calls)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	// Script: enough permanent failures to trip the breaker (threshold 2,
	// permanent so each do() counts exactly one failure), then successes.
	inner := &seqOracle{errs: []error{
		&tempErr{temp: false}, &tempErr{temp: false}, // trip at threshold 2
	}}
	p := policy()
	p.BreakerThreshold = 2
	p.BreakerCooldown = 2
	p.HalfOpenProbes = 2
	r := New(inner, p)
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		if _, err := r.Generate(ctx, akb.GenerateRequest{}); err == nil {
			t.Fatal("scripted failure lost")
		}
	}
	if r.State() != StateOpen {
		t.Fatalf("breaker should be open after %d consecutive failures, is %v", 2, r.State())
	}

	// While open, calls are rejected without touching the oracle.
	before := inner.calls
	_, err := r.Generate(ctx, akb.GenerateRequest{})
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker should short-circuit: %v", err)
	}
	if inner.calls != before {
		t.Fatal("open breaker still called the oracle")
	}

	// Cooldown=2: the first rejected call above consumed one; the next call
	// is admitted as a half-open probe and succeeds.
	if _, err := r.Generate(ctx, akb.GenerateRequest{}); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if r.State() != StateHalfOpen {
		t.Fatalf("one successful probe of two should leave half-open, is %v", r.State())
	}
	if _, err := r.Generate(ctx, akb.GenerateRequest{}); err != nil {
		t.Fatalf("second probe failed: %v", err)
	}
	if r.State() != StateClosed {
		t.Fatalf("two successful probes should close the breaker, is %v", r.State())
	}
}

func TestBreakerReopensOnFailedProbe(t *testing.T) {
	inner := &seqOracle{errs: []error{
		&tempErr{temp: false}, // trips (threshold 1)
		&tempErr{temp: false}, // the failed probe
	}}
	p := policy()
	p.BreakerThreshold = 1
	p.BreakerCooldown = 1
	r := New(inner, p)
	ctx := context.Background()

	r.Generate(ctx, akb.GenerateRequest{})
	if r.State() != StateOpen {
		t.Fatalf("state %v", r.State())
	}
	// Cooldown 1 → this call probes immediately, fails, reopens.
	if _, err := r.Generate(ctx, akb.GenerateRequest{}); err == nil {
		t.Fatal("failed probe lost")
	}
	if r.State() != StateOpen {
		t.Fatalf("failed probe should reopen the breaker, is %v", r.State())
	}
}

func TestCallBudget(t *testing.T) {
	inner := &seqOracle{}
	p := policy()
	p.MaxCalls = 2
	r := New(inner, p)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := r.Generate(ctx, akb.GenerateRequest{}); err != nil {
			t.Fatalf("call %d within budget failed: %v", i, err)
		}
	}
	_, err := r.Generate(ctx, akb.GenerateRequest{})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("budget exceeded should fail fast: %v", err)
	}
	if inner.calls != 2 {
		t.Fatalf("budget-rejected call reached the oracle: %d calls", inner.calls)
	}
}

func TestTokenBudget(t *testing.T) {
	inner := &seqOracle{} // 10 tokens per call
	p := policy()
	p.MaxTokens = 25
	r := New(inner, p)
	ctx := context.Background()
	var err error
	for i := 0; i < 5; i++ {
		if _, err = r.Generate(ctx, akb.GenerateRequest{}); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("token budget never enforced: %v", err)
	}
	if inner.calls != 3 { // 10, 20 < 25 admitted; 30 would exceed → 3rd call admitted at 20
		t.Fatalf("inner saw %d calls, want 3", inner.calls)
	}
}

func TestBackoffDeterministicAndCapped(t *testing.T) {
	schedule := func(seed int64) []time.Duration {
		var delays []time.Duration
		p := Policy{
			Seed:      seed,
			BaseDelay: 10 * time.Millisecond,
			MaxDelay:  40 * time.Millisecond,
			Sleep:     func(d time.Duration) { delays = append(delays, d) },
			// Never trip the breaker so every retry sleeps.
			BreakerThreshold: -1,
			MaxAttempts:      4,
		}
		inner := &seqOracle{errs: []error{
			&tempErr{temp: true}, &tempErr{temp: true}, &tempErr{temp: true},
			&tempErr{temp: true}, &tempErr{temp: true}, &tempErr{temp: true},
		}}
		r := New(inner, p)
		r.Generate(context.Background(), akb.GenerateRequest{})
		r.Feedback(context.Background(), akb.FeedbackRequest{})
		return delays
	}
	a, b := schedule(7), schedule(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different backoff:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("no backoff waits recorded")
	}
	for i, d := range a {
		if d < 10*time.Millisecond || d > 40*time.Millisecond {
			t.Fatalf("delay %d = %v outside [base, max]", i, d)
		}
	}
	if c := schedule(8); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical backoff schedules")
	}
}

func TestDisabledBreaker(t *testing.T) {
	inner := &seqOracle{errs: []error{
		&tempErr{temp: false}, &tempErr{temp: false}, &tempErr{temp: false},
		&tempErr{temp: false}, &tempErr{temp: false}, &tempErr{temp: false},
	}}
	p := policy()
	p.BreakerThreshold = -1
	r := New(inner, p)
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		r.Generate(ctx, akb.GenerateRequest{})
	}
	if r.State() != StateClosed {
		t.Fatalf("disabled breaker changed state: %v", r.State())
	}
	if inner.calls != 6 {
		t.Fatalf("disabled breaker rejected calls: %d of 6", inner.calls)
	}
}

func TestCallTimeoutApplied(t *testing.T) {
	p := policy()
	p.CallTimeout = time.Millisecond
	p.MaxAttempts = 2
	var sawDeadline bool
	slow := fallibleFunc(func(ctx context.Context) error {
		if _, ok := ctx.Deadline(); ok {
			sawDeadline = true
		}
		<-ctx.Done()
		return ctx.Err()
	})
	r := New(slow, p)
	_, err := r.Generate(context.Background(), akb.GenerateRequest{})
	if err == nil {
		t.Fatal("timing-out oracle should error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline expiry, got %v", err)
	}
	if !sawDeadline {
		t.Fatal("per-attempt deadline not set on the context")
	}
}

// fallibleFunc adapts one ctx-consuming function to all three oracle
// methods, for deadline tests.
type fallibleFunc func(context.Context) error

func (f fallibleFunc) Generate(ctx context.Context, _ akb.GenerateRequest) ([]*tasks.Knowledge, error) {
	return nil, f(ctx)
}

func (f fallibleFunc) Feedback(ctx context.Context, _ akb.FeedbackRequest) (string, error) {
	return "", f(ctx)
}

func (f fallibleFunc) Refine(ctx context.Context, _ akb.RefineRequest) ([]*tasks.Knowledge, error) {
	return nil, f(ctx)
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		StateClosed: "closed", StateHalfOpen: "half-open", StateOpen: "open",
	} {
		if s.String() != want {
			t.Fatalf("State(%d).String() = %q", s, s.String())
		}
	}
}
