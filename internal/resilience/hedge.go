package resilience

import (
	"context"
	"errors"
	"time"
)

// TerminalError marks an attempt error that must not be hedged or failed
// over: the request itself is bad (unknown key, malformed input), so every
// replica would answer the same way. errors.Is/As see through it.
type TerminalError struct{ Err error }

func (e *TerminalError) Error() string { return e.Err.Error() }
func (e *TerminalError) Unwrap() error { return e.Err }

// Terminal wraps err so Hedge stops immediately instead of trying the next
// replica. A nil err stays nil.
func Terminal(err error) error {
	if err == nil {
		return nil
	}
	return &TerminalError{Err: err}
}

// IsTerminal reports whether err was marked with Terminal.
func IsTerminal(err error) bool {
	var t *TerminalError
	return errors.As(err, &t)
}

// HedgeOptions parameterizes Hedge.
type HedgeOptions struct {
	// Delay is how long to wait on an in-flight attempt before issuing a
	// backup request to the next replica (<= 0 disables time-based hedging;
	// error-triggered failover still runs).
	Delay time.Duration
}

// HedgeOutcome reports what a Hedge call did: how many attempts launched,
// how many were time-triggered backups (Hedges) vs. error-triggered
// retries (Failovers), and which attempt index won (-1 on failure).
type HedgeOutcome struct {
	Attempts  int
	Hedges    int
	Failovers int
	Winner    int
}

// Hedge runs attempt(ctx, 0..n-1) with tail-latency hedging and failover:
// attempt 0 starts immediately; whenever the newest attempt has been
// in-flight for Delay, the next index is launched as a backup (a hedge);
// whenever an attempt fails transiently, the next index is launched at
// once (a failover). The first success wins and every other in-flight
// attempt is cancelled through its context. A TerminalError from any
// attempt aborts the whole call. When all n attempts fail, the last
// transient error is returned. Each attempt's context is derived from
// ctx, so cancelling ctx cancels everything.
func Hedge[T any](ctx context.Context, n int, opts HedgeOptions, attempt func(ctx context.Context, i int) (T, error)) (T, HedgeOutcome, error) {
	var zero T
	out := HedgeOutcome{Winner: -1}
	if n <= 0 {
		return zero, out, errors.New("resilience: hedge: no attempts available")
	}

	type result struct {
		i   int
		v   T
		err error
	}
	// Buffered to n so losers finishing after the winner never block.
	results := make(chan result, n)
	cancels := make([]context.CancelFunc, 0, n)
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	next := 0
	launch := func() {
		i := next
		next++
		out.Attempts++
		actx, cancel := context.WithCancel(ctx)
		cancels = append(cancels, cancel)
		go func() {
			v, err := attempt(actx, i)
			results <- result{i: i, v: v, err: err}
		}()
	}

	var timer *time.Timer
	var timerC <-chan time.Time
	arm := func() {
		if opts.Delay > 0 && next < n {
			timer = time.NewTimer(opts.Delay)
			timerC = timer.C
		}
	}
	disarm := func() {
		if timer != nil {
			timer.Stop()
			timer = nil
			timerC = nil
		}
	}
	defer disarm()

	launch()
	arm()
	pending := 1
	var lastErr error
	for {
		select {
		case <-ctx.Done():
			return zero, out, ctx.Err()
		case <-timerC:
			disarm()
			out.Hedges++
			launch()
			pending++
			arm()
		case res := <-results:
			if res.err == nil {
				out.Winner = res.i
				return res.v, out, nil
			}
			if ctx.Err() != nil {
				// The failure is our own cancellation, not a verdict on
				// the replica.
				return zero, out, ctx.Err()
			}
			if IsTerminal(res.err) {
				return zero, out, res.err
			}
			lastErr = res.err
			pending--
			if next < n {
				disarm()
				out.Failovers++
				launch()
				pending++
				arm()
			} else if pending == 0 {
				return zero, out, lastErr
			}
		}
	}
}
