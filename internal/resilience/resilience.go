// Package resilience hardens the oracle path of AKB against an unreliable
// backend. ResilientOracle wraps any akb.FallibleOracle — a remote-API
// client, or internal/faults' chaos injector — with the standard remote-
// dependency defenses:
//
//   - a context deadline per attempt (a hung call cannot wedge a search),
//   - capped exponential backoff with decorrelated jitter between retries
//     of transient failures,
//   - a three-state circuit breaker (closed → open on consecutive failures
//     → half-open probe calls → closed again) so a dead backend fails fast
//     instead of burning the retry budget on every round, and
//   - a per-client call and token budget, bounding what one AKB search may
//     spend on its oracle.
//
// Everything is deterministic given Policy.Seed and an injectable Sleep,
// which is how seeded chaos runs stay reproducible and wall-clock fast.
// All failures surface as errors to akb.SearchFallible, which degrades
// gracefully instead of aborting the search.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/akb"
	"repro/internal/obs"
	"repro/internal/tasks"
)

// State is the circuit breaker state. The numeric values are what the
// resilience.breaker_state gauge exports: 0 closed, 1 half-open, 2 open.
type State int32

const (
	StateClosed State = iota
	StateHalfOpen
	StateOpen
)

func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateHalfOpen:
		return "half-open"
	case StateOpen:
		return "open"
	}
	return fmt.Sprintf("State(%d)", int32(s))
}

// Sentinel errors. Both are terminal (never retried): an open breaker and
// an exhausted budget say "stop calling", not "try again".
var (
	ErrBreakerOpen     = errors.New("resilience: circuit breaker open")
	ErrBudgetExhausted = errors.New("resilience: oracle budget exhausted")
)

// TokenMeter is implemented by oracles that meter token usage (the
// simulated GPT does; internal/faults' injector forwards it). When the
// wrapped oracle implements it, Policy.MaxTokens is enforced.
type TokenMeter interface {
	TokenCount() (input, output int)
}

// Policy parameterizes a ResilientOracle. The zero value is usable: every
// unset field gets the default documented on it.
type Policy struct {
	// MaxAttempts bounds tries per logical call, first attempt included
	// (default 3).
	MaxAttempts int
	// BaseDelay seeds the backoff (default 50ms); MaxDelay caps it
	// (default 2s). Delays are decorrelated-jitter: each delay is drawn
	// uniformly from [BaseDelay, 3×previous], then capped.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// CallTimeout is the context deadline applied to each attempt
	// (default 10s; <0 disables).
	CallTimeout time.Duration
	// BreakerThreshold is the run of consecutive failures that trips the
	// breaker open (default 5; <0 disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how many short-circuited calls the open breaker
	// rejects before letting a half-open probe through (default 3). Cooling
	// down by call count instead of wall time keeps seeded runs
	// deterministic at any speed.
	BreakerCooldown int
	// HalfOpenProbes is the run of consecutive probe successes that closes
	// a half-open breaker (default 2). Any probe failure reopens it.
	HalfOpenProbes int
	// MaxCalls bounds oracle attempts (retries included) per client, i.e.
	// per AKB search in the intended one-client-per-search deployment
	// (default 0 = unlimited).
	MaxCalls int
	// MaxTokens bounds input+output tokens when the wrapped oracle meters
	// them (default 0 = unlimited).
	MaxTokens int
	// Seed drives the jitter; same seed, same backoff schedule.
	Seed int64
	// Sleep, when non-nil, replaces time.Sleep for backoff waits. Chaos
	// harnesses pass a no-op so seeded grids run at full speed.
	Sleep func(time.Duration)
	// Rec, when non-nil, records retry/failure/breaker counters, the
	// resilience.breaker_state gauge, per-attempt latency, and one
	// akb.oracle_retry span per backoff.
	Rec *obs.Recorder
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.CallTimeout == 0 {
		p.CallTimeout = 10 * time.Second
	}
	if p.BreakerThreshold == 0 {
		p.BreakerThreshold = 5
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = 3
	}
	if p.HalfOpenProbes <= 0 {
		p.HalfOpenProbes = 2
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// ResilientOracle implements akb.FallibleOracle over an inner oracle with
// retries, breaker, and budgets. Safe for concurrent use; the intended
// deployment is one client per AKB search so budgets and breaker state are
// per-search.
type ResilientOracle struct {
	inner akb.FallibleOracle
	p     Policy
	br    *Breaker

	mu        sync.Mutex
	rng       *rand.Rand
	calls     int
	prevDelay time.Duration
}

// New returns a resilient client around inner with the given policy.
func New(inner akb.FallibleOracle, p Policy) *ResilientOracle {
	p = p.withDefaults()
	r := &ResilientOracle{inner: inner, p: p, rng: rand.New(rand.NewSource(p.Seed))}
	r.br = NewBreaker(BreakerConfig{
		Threshold: p.BreakerThreshold,
		Cooldown:  p.BreakerCooldown,
		Probes:    p.HalfOpenProbes,
		OnState: func(s State) {
			p.Rec.SetGauge("resilience.breaker_state", float64(s))
			p.Rec.Event("resilience.breaker", "state", s.String())
		},
		OnTrip: func() {
			p.Rec.Count("resilience.breaker_trips", 1)
		},
	})
	p.Rec.SetGauge("resilience.breaker_state", float64(StateClosed))
	return r
}

var _ akb.FallibleOracle = (*ResilientOracle)(nil)

// State returns the breaker's current state.
func (r *ResilientOracle) State() State {
	return r.br.State()
}

// Calls returns the number of attempts issued to the inner oracle.
func (r *ResilientOracle) Calls() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.calls
}

// Generate implements akb.FallibleOracle.
func (r *ResilientOracle) Generate(ctx context.Context, req akb.GenerateRequest) ([]*tasks.Knowledge, error) {
	var out []*tasks.Knowledge
	err := r.do(ctx, "generate", func(cctx context.Context) error {
		ks, err := r.inner.Generate(cctx, req)
		out = ks
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Feedback implements akb.FallibleOracle.
func (r *ResilientOracle) Feedback(ctx context.Context, req akb.FeedbackRequest) (string, error) {
	var out string
	err := r.do(ctx, "feedback", func(cctx context.Context) error {
		fb, err := r.inner.Feedback(cctx, req)
		out = fb
		return err
	})
	if err != nil {
		return "", err
	}
	return out, nil
}

// Refine implements akb.FallibleOracle.
func (r *ResilientOracle) Refine(ctx context.Context, req akb.RefineRequest) ([]*tasks.Knowledge, error) {
	var out []*tasks.Knowledge
	err := r.do(ctx, "refine", func(cctx context.Context) error {
		ks, err := r.inner.Refine(cctx, req)
		out = ks
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// do runs one logical oracle call through admission control, the retry
// loop, and state accounting.
func (r *ResilientOracle) do(ctx context.Context, op string, call func(context.Context) error) error {
	rec, span := r.p.Rec.StartSpan("akb.oracle_call")
	defer span.End()
	span.SetAttr("op", op)

	var lastErr error
	for attempt := 0; attempt < r.p.MaxAttempts; attempt++ {
		if err := r.admit(rec); err != nil {
			span.SetAttr("err", err.Error())
			if lastErr != nil {
				return fmt.Errorf("%w (after %v)", err, lastErr)
			}
			return err
		}
		if attempt > 0 {
			rec.Count("resilience.retries", 1)
			_, rspan := rec.StartSpan("akb.oracle_retry")
			rspan.SetAttr("op", op)
			rspan.SetAttr("attempt", attempt)
			d := r.nextDelay()
			rspan.SetAttr("backoff_us", d.Microseconds())
			r.p.Sleep(d)
			rspan.End()
		}
		cctx, cancel := r.attemptCtx(ctx)
		start := rec.Now()
		err := call(cctx)
		cancel()
		rec.ObserveSince("resilience.attempt_us", start)
		if err == nil {
			r.onSuccess(rec)
			span.SetAttr("attempts", attempt+1)
			return nil
		}
		lastErr = err
		r.onFailure(rec)
		rec.Count("resilience.failures", 1)
		rec.Event("resilience.error", "op", op, "attempt", attempt, "err", err.Error())
		if !transient(err) {
			break
		}
	}
	rec.Count("resilience.exhausted", 1)
	span.SetAttr("err", lastErr.Error())
	return fmt.Errorf("resilience: %s gave up: %w", op, lastErr)
}

func (r *ResilientOracle) attemptCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if r.p.CallTimeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, r.p.CallTimeout)
}

// admit gates one attempt on the budgets and the breaker, and counts it.
func (r *ResilientOracle) admit(rec *obs.Recorder) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.p.MaxCalls > 0 && r.calls >= r.p.MaxCalls {
		rec.Count("resilience.budget_rejected", 1)
		return fmt.Errorf("%w: %d calls", ErrBudgetExhausted, r.calls)
	}
	if r.p.MaxTokens > 0 {
		if m, ok := r.inner.(TokenMeter); ok {
			in, out := m.TokenCount()
			if in+out >= r.p.MaxTokens {
				rec.Count("resilience.budget_rejected", 1)
				return fmt.Errorf("%w: %d tokens", ErrBudgetExhausted, in+out)
			}
		}
	}
	if err := r.br.Allow(); err != nil {
		rec.Count("resilience.breaker_rejected", 1)
		return err
	}
	r.calls++
	return nil
}

func (r *ResilientOracle) onSuccess(rec *obs.Recorder) {
	r.br.Success()
}

func (r *ResilientOracle) onFailure(rec *obs.Recorder) {
	r.br.Failure()
}

// nextDelay draws the decorrelated-jitter backoff: uniform in
// [BaseDelay, 3×previous], capped at MaxDelay.
func (r *ResilientOracle) nextDelay() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	lo := r.p.BaseDelay
	hi := 3 * r.prevDelay
	if hi < lo {
		hi = lo
	}
	d := lo + time.Duration(r.rng.Int63n(int64(hi-lo)+1))
	if d > r.p.MaxDelay {
		d = r.p.MaxDelay
	}
	r.prevDelay = d
	return d
}

// temporary matches the convention of net.Error and internal/faults.Error.
type temporary interface{ Temporary() bool }

// transient reports whether a failed attempt is worth retrying. Errors
// that say so themselves (Temporary) are believed; deadline expiries are
// retried; cancellation and the client's own terminal sentinels are not.
// Unknown errors default to retryable — for a remote dependency, a blip is
// the common case and the attempt cap bounds the damage.
func transient(err error) bool {
	if errors.Is(err, context.Canceled) ||
		errors.Is(err, ErrBreakerOpen) ||
		errors.Is(err, ErrBudgetExhausted) {
		return false
	}
	var t temporary
	if errors.As(err, &t) {
		return t.Temporary()
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	return true
}
