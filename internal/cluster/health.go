package cluster

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"time"

	"repro/internal/serve"
)

// probeLoop is one backend's health checker: GET /readyz every
// ProbeInterval (with seeded jitter so a fleet of probes never beats in
// lockstep), exponential backoff while the backend is failing, ejection
// after FailThreshold consecutive failures, rejoin on the first success.
// Probing /readyz — not /healthz — is what makes a drain graceful: a
// draining backend flips to 503 and leaves the rotation while the process
// stays alive to finish its in-flight batches.
func (r *Router) probeLoop(b *backendState, seed int64) {
	defer r.wg.Done()
	rng := rand.New(rand.NewSource(seed))
	for {
		r.probe(b)
		iv := r.opts.ProbeInterval
		if b.probeFails > 0 {
			// Exponential backoff while failing, capped at 8× the base: a
			// dead backend gets probed often enough to rejoin promptly
			// without being hammered.
			shift := b.probeFails
			if shift > 3 {
				shift = 3
			}
			iv <<= shift
		}
		// Seeded jitter in [iv/2, 3iv/2): deterministic per (Seed, backend).
		d := iv/2 + time.Duration(rng.Int63n(int64(iv)))
		select {
		case <-time.After(d):
		case <-r.stopc:
			return
		}
	}
}

// probe runs one /readyz round trip and applies the verdict.
func (r *Router) probe(b *backendState) {
	ctx, cancel := context.WithTimeout(context.Background(), r.opts.ProbeTimeout)
	defer cancel()
	ok := false
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/readyz", nil)
	if err == nil {
		resp, derr := r.client.Do(req)
		if derr == nil {
			var rr serve.ReadyResponse
			if resp.StatusCode == http.StatusOK && json.NewDecoder(resp.Body).Decode(&rr) == nil && rr.OK {
				ok = true
				b.resident.Store(int64(rr.Resident))
			}
			resp.Body.Close()
		}
	}
	if ok {
		b.probeFails = 0
		if !b.healthy.Swap(true) {
			r.rejoins.Add(1)
			r.rec.Count("cluster.rejoins", 1)
			r.rec.SetGauge("cluster.backend_healthy/"+b.url, 1)
			r.rec.Event("cluster.rejoin", "backend", b.url)
		}
	} else {
		b.probeFails++
		if b.probeFails >= r.opts.FailThreshold && b.healthy.Swap(false) {
			b.ejections.Add(1)
			r.ejections.Add(1)
			r.rec.Count("cluster.ejections", 1)
			r.rec.SetGauge("cluster.backend_healthy/"+b.url, 0)
			r.rec.Event("cluster.eject", "backend", b.url, "probe_fails", b.probeFails)
		}
	}
	healthy := 0
	for _, bb := range r.order {
		if bb.healthy.Load() {
			healthy++
		}
	}
	r.rec.SetGauge("cluster.backends_healthy", float64(healthy))
}
