package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/serve"
)

// echoAdapter answers key:id, like serve's test stub — deterministic, so
// any replica gives byte-identical answers.
type echoAdapter struct{ key string }

func (a *echoAdapter) Predict(_ context.Context, in *data.Instance) string {
	return a.key + ":" + in.ID
}

// newBackend spins up a full serve stack (registry + HTTP server) like a
// real `knowtrans serve` process.
func newBackend(t *testing.T) (*httptest.Server, *serve.Registry) {
	t.Helper()
	opts := serve.Options{MaxWait: 100 * time.Microsecond}
	reg := serve.NewRegistry(func(_ context.Context, key string) (serve.Adapter, error) {
		return &echoAdapter{key: key}, nil
	}, opts)
	srv := httptest.NewServer(serve.NewServer(reg, opts))
	t.Cleanup(srv.Close)
	return srv, reg
}

func testOptions(backends []string) Options {
	return Options{
		Backends:      backends,
		Replication:   2,
		ProbeInterval: 50 * time.Millisecond,
		ProbeTimeout:  time.Second,
		HedgeDelay:    -1, // hedging off by default; tests opt in
		Seed:          1,
	}
}

func newTestRouter(t *testing.T, opts Options) *Router {
	t.Helper()
	r, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

// keyOwnedBy finds a key whose primary owner is the given backend.
func keyOwnedBy(t *testing.T, r *Router, url string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("EM/dataset-%d", i)
		if r.Owners(key)[0] == url {
			return key
		}
	}
	t.Fatalf("no key with primary %s in 10000 tries", url)
	return ""
}

func TestRouterRoutesAndMerges(t *testing.T) {
	var urls []string
	var regs []*serve.Registry
	for i := 0; i < 3; i++ {
		srv, reg := newBackend(t)
		urls = append(urls, srv.URL)
		regs = append(regs, reg)
	}
	r := newTestRouter(t, testOptions(urls))

	keys := []string{"EM/A", "EM/B", "ED/C", "ED/D"}
	for i, key := range keys {
		in := &data.Instance{ID: fmt.Sprint(i), Candidates: []string{"yes", "no"}, Gold: -1}
		ans, _, err := r.Predict(context.Background(), key, in)
		if err != nil {
			t.Fatalf("Predict(%s): %v", key, err)
		}
		if want := key + ":" + fmt.Sprint(i); ans != want {
			t.Fatalf("Predict(%s) = %q, want %q", key, ans, want)
		}
	}
	st := r.Stats()
	if st.Requests != int64(len(keys)) || st.Hedges != 0 || st.Failovers != 0 {
		t.Fatalf("stats = %+v, want %d clean requests", st, len(keys))
	}

	// Warm fans out to every owner, so replicas are hot for failover.
	if _, err := r.Warm(context.Background(), "EM/warmed"); err != nil {
		t.Fatalf("Warm: %v", err)
	}
	residentOn := 0
	for _, reg := range regs {
		for _, ks := range reg.Snapshot() {
			if ks.Key == "EM/warmed" && ks.Resident {
				residentOn++
			}
		}
	}
	if residentOn != 2 {
		t.Fatalf("warmed key resident on %d backends, want Replication=2", residentOn)
	}

	// Snapshot merges per-key stats across the fleet.
	snap := r.Snapshot()
	byKey := map[string]serve.KeyStats{}
	for _, ks := range snap {
		byKey[ks.Key] = ks
	}
	if ks, ok := byKey["EM/warmed"]; !ok || ks.Transfers != 2 {
		t.Fatalf("merged snapshot for warmed key = %+v (present=%v), want 2 transfers", byKey["EM/warmed"], ok)
	}
	if ks, ok := byKey["EM/A"]; !ok || ks.Requests == 0 {
		t.Fatalf("merged snapshot missing request counts: %+v", byKey["EM/A"])
	}
}

func TestRouterValidatesKeys(t *testing.T) {
	srv, _ := newBackend(t)
	r := newTestRouter(t, testOptions([]string{srv.URL}))
	in := &data.Instance{ID: "1", Candidates: []string{"y"}, Gold: -1}
	if _, _, err := r.Predict(context.Background(), "no-slash", in); !errors.Is(err, serve.ErrBadKey) {
		t.Fatalf("Predict(bad key) = %v, want ErrBadKey", err)
	}
	if _, err := r.Warm(context.Background(), ""); !errors.Is(err, serve.ErrBadKey) {
		t.Fatalf("Warm(empty key) = %v, want ErrBadKey", err)
	}
}

// TestRouterFailsOverOnDeadBackend: requests whose primary is dead succeed
// on the replica via failover; the probe loop then ejects the corpse and
// later traffic goes straight to the replica.
func TestRouterFailsOverOnDeadBackend(t *testing.T) {
	srvA, _ := newBackend(t)
	srvB, _ := newBackend(t)
	r := newTestRouter(t, testOptions([]string{srvA.URL, srvB.URL}))

	key := keyOwnedBy(t, r, srvA.URL)
	srvA.Close() // SIGKILL stand-in: connections refused from here on

	in := &data.Instance{ID: "1", Candidates: []string{"yes", "no"}, Gold: -1}
	ans, _, err := r.Predict(context.Background(), key, in)
	if err != nil {
		t.Fatalf("Predict over dead primary: %v", err)
	}
	if want := key + ":1"; ans != want {
		t.Fatalf("failover answer = %q, want %q", ans, want)
	}
	if st := r.Stats(); st.Failovers == 0 {
		t.Fatalf("stats = %+v, want a recorded failover", st)
	}

	// The probe loop ejects the dead backend...
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := r.Stats()
		if st.Ejections > 0 && !statFor(st, srvA.URL).Healthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dead backend never ejected: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// ...the router stays ready on the survivor...
	if err := r.Ready(); err != nil {
		t.Fatalf("Ready() = %v with one healthy backend", err)
	}
	// ...and rebalanced traffic reaches the replica first: no new failover.
	before := r.Stats().Failovers
	for i := 2; i < 6; i++ {
		in := &data.Instance{ID: fmt.Sprint(i), Candidates: []string{"yes", "no"}, Gold: -1}
		if _, _, err := r.Predict(context.Background(), key, in); err != nil {
			t.Fatalf("Predict after ejection: %v", err)
		}
	}
	if after := r.Stats().Failovers; after != before {
		t.Fatalf("ejected backend still receives first attempts (%d new failovers)", after-before)
	}
}

func statFor(st RouterStats, url string) BackendStat {
	for _, b := range st.Backends {
		if b.URL == url {
			return b
		}
	}
	return BackendStat{}
}

// TestRouterHedgesSlowBackend: a wedged-but-listening primary is out-raced
// by a hedge to the replica after the fixed delay; the slow attempt is
// cancelled.
func TestRouterHedgesSlowBackend(t *testing.T) {
	var slowCancelled atomic.Bool
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch req.URL.Path {
		case "/readyz":
			json.NewEncoder(w).Encode(serve.ReadyResponse{OK: true})
		case "/v1/predict":
			// Drain the body: the server only watches the connection for a
			// client disconnect (cancelling req.Context()) once the request
			// body is consumed — exactly what the real serve handler does by
			// decoding it up front.
			io.Copy(io.Discard, req.Body)
			select {
			case <-req.Context().Done():
				slowCancelled.Store(true)
				return
			case <-time.After(10 * time.Second):
			}
			json.NewEncoder(w).Encode(serve.PredictResponse{Answer: "slow"})
		}
	}))
	t.Cleanup(slow.Close)
	fast, _ := newBackend(t)

	opts := testOptions([]string{slow.URL, fast.URL})
	opts.HedgeDelay = 20 * time.Millisecond
	r := newTestRouter(t, opts)

	key := keyOwnedBy(t, r, slow.URL)
	in := &data.Instance{ID: "9", Candidates: []string{"yes", "no"}, Gold: -1}
	t0 := time.Now()
	ans, _, err := r.Predict(context.Background(), key, in)
	if err != nil {
		t.Fatalf("hedged Predict: %v", err)
	}
	if want := key + ":9"; ans != want {
		t.Fatalf("hedged answer = %q, want %q (from the fast replica)", ans, want)
	}
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Fatalf("hedged request took %v — waited out the wedged primary", elapsed)
	}
	if st := r.Stats(); st.Hedges == 0 {
		t.Fatalf("stats = %+v, want a recorded hedge", st)
	}
	// The losing attempt gets cancelled, not abandoned.
	deadline := time.Now().Add(5 * time.Second)
	for !slowCancelled.Load() {
		if time.Now().After(deadline) {
			t.Fatal("slow attempt never saw cancellation")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRouterTerminalErrorsDoNotFailOver: a 404 means the key is unknown
// fleet-wide; retrying it on a replica would just double the damage of a
// bad client loop.
func TestRouterTerminalErrorsDoNotFailOver(t *testing.T) {
	var hits atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch req.URL.Path {
		case "/readyz":
			json.NewEncoder(w).Encode(serve.ReadyResponse{OK: true})
		case "/v1/predict":
			hits.Add(1)
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(map[string]string{"error": "unknown adapter key"})
		}
	}))
	t.Cleanup(backend.Close)
	other, _ := newBackend(t)

	r := newTestRouter(t, testOptions([]string{backend.URL, other.URL}))
	key := keyOwnedBy(t, r, backend.URL)
	in := &data.Instance{ID: "1", Candidates: []string{"y"}, Gold: -1}
	_, _, err := r.Predict(context.Background(), key, in)
	if !errors.Is(err, serve.ErrUnknownKey) {
		t.Fatalf("Predict = %v, want ErrUnknownKey", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("404 hit the backend %d times, want exactly 1 (no failover)", got)
	}
	if st := r.Stats(); st.Failovers != 0 {
		t.Fatalf("stats = %+v, want no failover on terminal error", st)
	}
}

// TestRouterReadyRequiresABackend: with the whole fleet dead the router
// reports unready (its own /readyz turns 503) instead of accepting
// requests it cannot serve.
func TestRouterReadyRequiresABackend(t *testing.T) {
	srv, _ := newBackend(t)
	opts := testOptions([]string{srv.URL})
	opts.ProbeInterval = 20 * time.Millisecond
	r := newTestRouter(t, opts)
	srv.Close()
	deadline := time.Now().Add(10 * time.Second)
	for r.Ready() == nil {
		if time.Now().After(deadline) {
			t.Fatal("router still ready with every backend dead")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := r.Stats(); st.Ejections == 0 {
		t.Fatalf("stats = %+v, want an ejection", st)
	}
}

// TestRouterDrainEjectsViaReadyz: a draining backend (healthy process,
// /readyz 503) leaves the rotation — the graceful-restart path.
func TestRouterDrainEjectsViaReadyz(t *testing.T) {
	reg := serve.NewRegistry(func(_ context.Context, key string) (serve.Adapter, error) {
		return &echoAdapter{key: key}, nil
	}, serve.Options{})
	s := serve.NewServer(reg, serve.Options{})
	draining := httptest.NewServer(s)
	t.Cleanup(draining.Close)
	other, _ := newBackend(t)

	opts := testOptions([]string{draining.URL, other.URL})
	opts.ProbeInterval = 20 * time.Millisecond
	r := newTestRouter(t, opts)

	s.StartDrain()
	deadline := time.Now().Add(10 * time.Second)
	for statFor(r.Stats(), draining.URL).Healthy {
		if time.Now().After(deadline) {
			t.Fatal("draining backend never left the rotation")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Its keys are served by the survivor without failover noise.
	key := keyOwnedBy(t, r, draining.URL)
	before := r.Stats().Failovers
	in := &data.Instance{ID: "1", Candidates: []string{"y", "n"}, Gold: -1}
	if _, _, err := r.Predict(context.Background(), key, in); err != nil {
		t.Fatalf("Predict during drain: %v", err)
	}
	if after := r.Stats().Failovers; after != before {
		t.Fatalf("drained backend still fielding first attempts (%d new failovers)", after-before)
	}
}

// residentCount counts the backends on which key is resident right now.
func residentCount(regs []*serve.Registry, key string) int {
	n := 0
	for _, reg := range regs {
		for _, ks := range reg.Snapshot() {
			if ks.Key == key && ks.Resident {
				n++
			}
		}
	}
	return n
}

// TestWarmReplicasBudget is the regression test for the unbounded-warm fix:
// Warm must fan to exactly WarmReplicas owners, not all of them, and a
// negative budget restores the warm-everything behavior.
func TestWarmReplicasBudget(t *testing.T) {
	var urls []string
	var regs []*serve.Registry
	for i := 0; i < 4; i++ {
		srv, reg := newBackend(t)
		urls = append(urls, srv.URL)
		regs = append(regs, reg)
	}

	cases := []struct {
		name         string
		warmReplicas int
		want         int
	}{
		{"budget below replication", 2, 2},
		{"default budget", 0, 2}, // withDefaults: 2
		{"unbounded", -1, 3},     // every owner
		{"budget above replication clamps", 5, 3},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := testOptions(urls)
			opts.Replication = 3
			opts.WarmReplicas = tc.warmReplicas
			r := newTestRouter(t, opts)
			key := fmt.Sprintf("EM/warm-budget-%d", i)
			if _, err := r.Warm(context.Background(), key); err != nil {
				t.Fatalf("Warm: %v", err)
			}
			if got := residentCount(regs, key); got != tc.want {
				t.Fatalf("key resident on %d backends, want %d (WarmReplicas=%d, Replication=3)",
					got, tc.want, tc.warmReplicas)
			}
		})
	}
}

// TestRouterEvictFansToOwners: eviction through the router drops the key on
// every owner (no budget — stale replicas must not survive), and an unknown
// key is ErrUnknownKey.
func TestRouterEvictFansToOwners(t *testing.T) {
	var urls []string
	var regs []*serve.Registry
	for i := 0; i < 3; i++ {
		srv, reg := newBackend(t)
		urls = append(urls, srv.URL)
		regs = append(regs, reg)
	}
	opts := testOptions(urls)
	opts.Replication = 3
	opts.WarmReplicas = -1 // warm all owners so the evict has work everywhere
	r := newTestRouter(t, opts)

	const key = "EM/evict-me"
	if _, err := r.Warm(context.Background(), key); err != nil {
		t.Fatal(err)
	}
	if got := residentCount(regs, key); got != 3 {
		t.Fatalf("warm landed on %d backends, want 3", got)
	}
	evicted, err := r.Evict(context.Background(), key)
	if err != nil || !evicted {
		t.Fatalf("Evict = %v, %v; want true, nil", evicted, err)
	}
	if got := residentCount(regs, key); got != 0 {
		t.Fatalf("key still resident on %d backends after evict", got)
	}
	// Known-but-not-resident: second evict succeeds with evicted=false.
	evicted, err = r.Evict(context.Background(), key)
	if err != nil || evicted {
		t.Fatalf("re-Evict = %v, %v; want false, nil", evicted, err)
	}
	if _, err := r.Evict(context.Background(), "EM/never-seen"); !errors.Is(err, serve.ErrUnknownKey) {
		t.Fatalf("Evict(unknown) = %v, want ErrUnknownKey", err)
	}
}
