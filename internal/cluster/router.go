package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/serve"
)

// Options configures a Router. The zero value is unusable (no backends);
// every other unset field takes the default documented on it.
type Options struct {
	// Backends are the base URLs of the `knowtrans serve` fleet
	// ("http://10.0.0.7:8080"). Required.
	Backends []string
	// Replication is how many distinct backends own each key (primary +
	// replicas, default 2, clamped to len(Backends)). Replicas are the
	// hedging/failover targets and the takeover set when the primary dies.
	Replication int
	// WarmReplicas budgets how many owners one Warm call fans to, in
	// attempt order (healthy first): enough pre-warmed replicas to survive
	// a primary death without paying every owner's Transfer up front.
	// Default 2, clamped to Replication; negative warms every owner (the
	// old unbounded behavior).
	WarmReplicas int
	// VNodes is the virtual-node count per backend on the ring (default 64).
	VNodes int
	// ProbeInterval is the base period between /readyz probes per backend
	// (default 500ms); ProbeTimeout bounds one probe (default 2s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// FailThreshold is how many consecutive probe failures eject a backend
	// (default 2). An ejected backend keeps being probed (with backoff) and
	// rejoins on its first success.
	FailThreshold int
	// HedgeDelay fixes the backup-request delay. Default 0: derive it per
	// request from the observed p95 router latency, clamped to
	// [HedgeMin, HedgeMax] (defaults 1ms, 1s). Negative disables hedging.
	HedgeDelay time.Duration
	HedgeMin   time.Duration
	HedgeMax   time.Duration
	// RetryBudget caps extra attempts (hedges + failovers) per request
	// beyond the first (default 2; <0 unlimited up to the owner set).
	// Together with Replication it bounds retry amplification during an
	// outage: one request costs at most 1+RetryBudget backend calls.
	RetryBudget int
	// AttemptTimeout bounds one backend HTTP call (default 60s).
	AttemptTimeout time.Duration
	// BreakerThreshold/BreakerCooldown trip and cool the per-backend
	// breaker (defaults 5 and 8 calls; threshold <0 disables).
	BreakerThreshold int
	BreakerCooldown  int
	// Seed drives probe jitter; same seed, same probe schedule.
	Seed int64
	// Rec threads observability through the router. Nil disables it.
	Rec *obs.Recorder
	// Client, when non-nil, overrides the backend HTTP client (tests).
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if o.Replication <= 0 {
		o.Replication = 2
	}
	if len(o.Backends) > 0 && o.Replication > len(o.Backends) {
		o.Replication = len(o.Backends)
	}
	if o.WarmReplicas == 0 {
		o.WarmReplicas = 2
	}
	if o.WarmReplicas > o.Replication {
		o.WarmReplicas = o.Replication
	}
	if o.VNodes <= 0 {
		o.VNodes = 64
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 500 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 2
	}
	if o.HedgeMin <= 0 {
		o.HedgeMin = time.Millisecond
	}
	if o.HedgeMax <= 0 {
		o.HedgeMax = time.Second
	}
	if o.RetryBudget == 0 {
		o.RetryBudget = 2
	}
	if o.AttemptTimeout <= 0 {
		o.AttemptTimeout = 60 * time.Second
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 8
	}
	return o
}

// backendState is everything the router tracks per backend: membership
// (healthy flag driven by the probe loop), a circuit breaker fed by real
// request outcomes, and counters for the per-backend QPS/gauge surface.
type backendState struct {
	url     string
	breaker *resilience.Breaker

	healthy    atomic.Bool
	probeFails int // owned by the probe loop goroutine

	requests  atomic.Int64
	failures  atomic.Int64
	inflight  atomic.Int64
	resident  atomic.Int64 // last /readyz resident reading
	ejections atomic.Int64
}

// Router consistent-hashes adapter keys onto the backend fleet and speaks
// the serve HTTP API to the owners, with hedging and failover. It
// implements serve.Resolver, so serve.NewServer(router, opts) exposes the
// exact same endpoints a single backend does.
type Router struct {
	opts   Options
	rec    *obs.Recorder
	ring   *Ring
	byURL  map[string]*backendState
	order  []*backendState
	client *http.Client
	stopc  chan struct{}
	wg     sync.WaitGroup

	lat latWindow

	hedges    atomic.Int64
	failovers atomic.Int64
	ejections atomic.Int64
	rejoins   atomic.Int64
	requests  atomic.Int64
}

var _ serve.Resolver = (*Router)(nil)
var _ serve.ReadyChecker = (*Router)(nil)

// New builds a router over opts.Backends and starts one health-probe loop
// per backend. Backends start optimistically healthy (requests fail over
// on contact anyway); the first probe round corrects the picture within
// ProbeInterval. Call Close to stop probing.
func New(opts Options) (*Router, error) {
	opts = opts.withDefaults()
	if len(opts.Backends) == 0 {
		return nil, fmt.Errorf("cluster: no backends")
	}
	seen := map[string]bool{}
	for _, u := range opts.Backends {
		if u == "" || seen[u] {
			return nil, fmt.Errorf("cluster: empty or duplicate backend %q", u)
		}
		seen[u] = true
	}
	r := &Router{
		opts:   opts,
		rec:    opts.Rec,
		ring:   NewRing(opts.Backends, opts.VNodes),
		byURL:  make(map[string]*backendState, len(opts.Backends)),
		client: opts.Client,
		stopc:  make(chan struct{}),
	}
	if r.client == nil {
		r.client = &http.Client{Timeout: opts.AttemptTimeout}
	}
	for i, u := range opts.Backends {
		b := &backendState{url: u}
		u := u
		b.breaker = resilience.NewBreaker(resilience.BreakerConfig{
			Threshold: opts.BreakerThreshold,
			Cooldown:  opts.BreakerCooldown,
			OnState: func(s resilience.State) {
				r.rec.SetGauge("cluster.breaker_state/"+u, float64(s))
			},
			OnTrip: func() { r.rec.Count("cluster.breaker_trips", 1) },
		})
		b.healthy.Store(true)
		r.rec.SetGauge("cluster.backend_healthy/"+u, 1)
		r.byURL[u] = b
		r.order = append(r.order, b)
		r.wg.Add(1)
		go r.probeLoop(b, opts.Seed+int64(i))
	}
	r.rec.SetGauge("cluster.backends", float64(len(r.order)))
	r.rec.SetGauge("cluster.backends_healthy", float64(len(r.order)))
	return r, nil
}

// Close stops the probe loops. In-flight requests finish normally.
func (r *Router) Close() {
	close(r.stopc)
	r.wg.Wait()
}

// Ready implements serve.ReadyChecker: the router is ready while at least
// one backend is healthy.
func (r *Router) Ready() error {
	for _, b := range r.order {
		if b.healthy.Load() {
			return nil
		}
	}
	return fmt.Errorf("cluster: no healthy backends (%d total)", len(r.order))
}

// Owners returns key's owner set in ring order (primary first), health
// ignored — the static placement.
func (r *Router) Owners(key string) []string {
	return r.ring.Owners(key, r.opts.Replication)
}

// candidates returns key's owners in attempt order: healthy backends whose
// breaker isn't open first (ring order preserved), then the rest as last
// resorts — when every owner looks down, trying one beats failing without
// trying, and a success heals the breaker.
func (r *Router) candidates(key string) []*backendState {
	owners := r.ring.Owners(key, r.opts.Replication)
	var live, rest []*backendState
	for _, u := range owners {
		b := r.byURL[u]
		if b.healthy.Load() && b.breaker.State() != resilience.StateOpen {
			live = append(live, b)
		} else {
			rest = append(rest, b)
		}
	}
	return append(live, rest...)
}

// predictResult is one backend's answer.
type predictResult struct {
	answer string
	cold   bool
}

// Predict implements serve.Resolver over the owner set: attempt the first
// candidate, hedge to the next after the p95-derived delay, fail over on
// transient errors, first success wins, losers are cancelled. Terminal
// errors (unknown key, bad key) abort immediately — every replica would
// say the same thing.
func (r *Router) Predict(ctx context.Context, key string, in *data.Instance) (string, bool, error) {
	if err := serve.ValidateKey(key); err != nil {
		return "", false, err
	}
	cands := r.candidates(key)
	if len(cands) == 0 {
		return "", false, fmt.Errorf("cluster: no backends own %q", key)
	}
	n := len(cands)
	if r.opts.RetryBudget >= 0 && n > 1+r.opts.RetryBudget {
		n = 1 + r.opts.RetryBudget
	}
	delay := r.hedgeDelay()
	r.requests.Add(1)
	r.rec.Count("cluster.requests", 1)
	start := time.Now()
	res, out, err := resilience.Hedge(ctx, n, resilience.HedgeOptions{Delay: delay},
		func(actx context.Context, i int) (predictResult, error) {
			return r.predictOn(actx, cands[i], key, in)
		})
	r.lat.add(float64(time.Since(start).Microseconds()))
	if out.Hedges > 0 {
		r.hedges.Add(int64(out.Hedges))
		r.rec.Count("cluster.hedges", int64(out.Hedges))
	}
	if out.Failovers > 0 {
		r.failovers.Add(int64(out.Failovers))
		r.rec.Count("cluster.failovers", int64(out.Failovers))
	}
	if err != nil {
		r.rec.Count("cluster.request_errors", 1)
		return "", false, err
	}
	if out.Winner > 0 {
		r.rec.Count("cluster.secondary_wins", 1)
	}
	return res.answer, res.cold, nil
}

// predictOn runs one attempt against one backend. Every attempt gets a
// cluster.attempt child span of the caller's request span and forwards its
// traceparent, so a hedged request renders as one trace with both
// attempts. Cancellation of a losing attempt is not held against the
// backend's breaker — only real outcomes are.
func (r *Router) predictOn(ctx context.Context, b *backendState, key string, in *data.Instance) (predictResult, error) {
	var zero predictResult
	if err := b.breaker.Allow(); err != nil {
		r.rec.Count("cluster.breaker_rejected", 1)
		return zero, fmt.Errorf("cluster: backend %s: %w", b.url, err)
	}
	var span *obs.Span
	if parent := obs.SpanFromContext(ctx); parent != nil {
		span = parent.StartChild("cluster.attempt")
		span.SetAttr("backend", b.url)
		span.SetAttr("key", key)
		defer span.End()
	}

	body, err := json.Marshal(serve.PredictRequest{Adapter: key, Instance: serve.WireFrom(in)})
	if err != nil {
		return zero, resilience.Terminal(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+"/v1/predict", bytes.NewReader(body))
	if err != nil {
		return zero, resilience.Terminal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if span != nil {
		req.Header.Set(obs.TraceparentHeader, obs.FormatTraceparent(span.Context()))
	}

	b.requests.Add(1)
	r.rec.Count("cluster.backend_requests/"+b.url, 1)
	r.rec.SetGauge("cluster.backend_inflight/"+b.url, float64(b.inflight.Add(1)))
	t0 := time.Now()
	resp, err := r.client.Do(req)
	r.rec.SetGauge("cluster.backend_inflight/"+b.url, float64(b.inflight.Add(-1)))
	r.rec.Observe("cluster.attempt_us", float64(time.Since(t0).Microseconds()), nil)
	if err != nil {
		if ctx.Err() != nil {
			// Our own cancellation (hedge loser or caller gone): no verdict
			// on the backend.
			return zero, ctx.Err()
		}
		r.noteFailure(b, span)
		return zero, fmt.Errorf("cluster: backend %s: %w", b.url, err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if span != nil {
		span.SetAttr("status", resp.StatusCode)
	}

	switch {
	case resp.StatusCode/100 == 2:
		b.breaker.Success()
		var pr serve.PredictResponse
		if err := json.Unmarshal(payload, &pr); err != nil {
			r.noteFailure(b, span)
			return zero, fmt.Errorf("cluster: backend %s: bad response body: %w", b.url, err)
		}
		return predictResult{answer: pr.Answer, cold: pr.Cold}, nil
	case resp.StatusCode == http.StatusNotFound:
		// The backend is fine; the key is unknown everywhere. Terminal.
		b.breaker.Success()
		return zero, resilience.Terminal(fmt.Errorf("%w: backend %s: %s", serve.ErrUnknownKey, b.url, trimBody(payload)))
	case resp.StatusCode == http.StatusTooManyRequests:
		// Shed load: the backend is alive but saturated. Retryable on a
		// replica; counts against the breaker so a saturated backend sheds
		// router traffic too.
		r.noteFailure(b, span)
		return zero, fmt.Errorf("%w: backend %s: %s", serve.ErrOverloaded, b.url, trimBody(payload))
	case resp.StatusCode == http.StatusServiceUnavailable:
		// Draining for restart: retry on a replica.
		r.noteFailure(b, span)
		return zero, fmt.Errorf("%w: backend %s: %s", serve.ErrDraining, b.url, trimBody(payload))
	case resp.StatusCode/100 == 4:
		// Other 4xx (bad key, malformed body): the request is at fault, no
		// replica will disagree. Terminal.
		b.breaker.Success()
		err := fmt.Errorf("cluster: backend %s: HTTP %d: %s", b.url, resp.StatusCode, trimBody(payload))
		if resp.StatusCode == http.StatusBadRequest {
			err = fmt.Errorf("%w: backend %s: %s", serve.ErrBadKey, b.url, trimBody(payload))
		}
		return zero, resilience.Terminal(err)
	default:
		// 5xx: backend trouble. Retryable on a replica.
		r.noteFailure(b, span)
		return zero, fmt.Errorf("cluster: backend %s: HTTP %d: %s", b.url, resp.StatusCode, trimBody(payload))
	}
}

func (r *Router) noteFailure(b *backendState, span *obs.Span) {
	b.breaker.Failure()
	b.failures.Add(1)
	r.rec.Count("cluster.backend_failures/"+b.url, 1)
	if span != nil {
		span.SetAttr("error", true)
	}
}

// trimBody compacts an error payload for wrapping into an error message.
func trimBody(payload []byte) string {
	s := string(bytes.TrimSpace(payload))
	if len(s) > 200 {
		s = s[:200] + "…"
	}
	return s
}

// Warm implements serve.Resolver by fanning the warm out to the key's
// owners under the WarmReplicas budget — replicas must be warm too, or the
// first hedge/failover after a primary death pays a cold start at the
// worst possible moment, but warming *every* owner of a wide replication
// factor just multiplies Transfer cost for owners that may never be
// contacted. Candidates are attempt-ordered (healthy first), so the budget
// lands on the backends that will actually field the traffic. Cold is
// reported if any warmed owner was cold; the first error is returned only
// when no owner succeeded.
func (r *Router) Warm(ctx context.Context, key string) (bool, error) {
	if err := serve.ValidateKey(key); err != nil {
		return false, err
	}
	cands := r.candidates(key)
	if len(cands) == 0 {
		return false, fmt.Errorf("cluster: no backends own %q", key)
	}
	if budget := r.opts.WarmReplicas; budget > 0 && budget < len(cands) {
		cands = cands[:budget]
	}
	var cold bool
	var firstErr error
	ok := 0
	for _, b := range cands {
		c, err := r.warmOn(ctx, b, key)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ok++
		cold = cold || c
	}
	if ok == 0 {
		return false, firstErr
	}
	return cold, nil
}

func (r *Router) warmOn(ctx context.Context, b *backendState, key string) (bool, error) {
	body, _ := json.Marshal(serve.WarmRequest{Key: key})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url+"/v1/adapters", bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/json")
	b.requests.Add(1)
	resp, err := r.client.Do(req)
	if err != nil {
		r.noteFailure(b, nil)
		return false, fmt.Errorf("cluster: backend %s: %w", b.url, err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		if resp.StatusCode/100 == 5 {
			r.noteFailure(b, nil)
		} else {
			b.breaker.Success()
		}
		err := fmt.Errorf("cluster: backend %s: HTTP %d: %s", b.url, resp.StatusCode, trimBody(payload))
		if resp.StatusCode == http.StatusNotFound {
			err = fmt.Errorf("%w: backend %s", serve.ErrUnknownKey, b.url)
		}
		return false, err
	}
	b.breaker.Success()
	var wr serve.WarmResponse
	if err := json.Unmarshal(payload, &wr); err != nil {
		return false, fmt.Errorf("cluster: backend %s: bad response body: %w", b.url, err)
	}
	return wr.Cold, nil
}

var _ serve.Evicter = (*Router)(nil)

// Evict implements serve.Evicter by fanning DELETE /v1/adapters/{key} to
// every owner (no budget here: a partial eviction would leave stale
// replicas serving a key an operator asked to drop). Evicted is true if
// any owner dropped a resident adapter; ErrUnknownKey only when every
// reachable owner reported the key unseen.
func (r *Router) Evict(ctx context.Context, key string) (bool, error) {
	if err := serve.ValidateKey(key); err != nil {
		return false, err
	}
	cands := r.candidates(key)
	if len(cands) == 0 {
		return false, fmt.Errorf("cluster: no backends own %q", key)
	}
	var (
		evicted  bool
		ok       int
		unknown  int
		firstErr error
	)
	for _, b := range cands {
		req, err := http.NewRequestWithContext(ctx, http.MethodDelete, b.url+"/v1/adapters/"+key, nil)
		if err != nil {
			return false, err
		}
		b.requests.Add(1)
		resp, err := r.client.Do(req)
		if err != nil {
			r.noteFailure(b, nil)
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: backend %s: %w", b.url, err)
			}
			continue
		}
		payload, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode/100 == 2:
			b.breaker.Success()
			var er serve.EvictResponse
			if err := json.Unmarshal(payload, &er); err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("cluster: backend %s: bad response body: %w", b.url, err)
				}
				continue
			}
			ok++
			evicted = evicted || er.Evicted
		case resp.StatusCode == http.StatusNotFound:
			b.breaker.Success()
			unknown++
		default:
			if resp.StatusCode/100 == 5 {
				r.noteFailure(b, nil)
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: backend %s: HTTP %d: %s", b.url, resp.StatusCode, trimBody(payload))
			}
		}
	}
	if ok == 0 {
		if unknown > 0 && firstErr == nil {
			return false, fmt.Errorf("%w: no owner has state for %q", serve.ErrUnknownKey, key)
		}
		return false, firstErr
	}
	return evicted, nil
}

// Snapshot implements serve.Resolver: the union of every healthy backend's
// snapshot, counters summed per key (a key resident on two replicas counts
// both backends' traffic).
func (r *Router) Snapshot() []serve.KeyStats {
	ctx, cancel := context.WithTimeout(context.Background(), r.opts.ProbeTimeout)
	defer cancel()
	merged := map[string]*serve.KeyStats{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, b := range r.order {
		if !b.healthy.Load() {
			continue
		}
		wg.Add(1)
		go func(b *backendState) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/v1/adapters", nil)
			if err != nil {
				return
			}
			resp, err := r.client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			var ar serve.AdaptersResponse
			if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			for _, st := range ar.Adapters {
				m, ok := merged[st.Key]
				if !ok {
					c := st
					merged[st.Key] = &c
					continue
				}
				m.Resident = m.Resident || st.Resident
				m.Loading = m.Loading || st.Loading
				m.Transfers += st.Transfers
				m.Requests += st.Requests
				m.Hits += st.Hits
				m.Misses += st.Misses
				m.Errors += st.Errors
			}
		}(b)
	}
	wg.Wait()
	out := make([]serve.KeyStats, 0, len(merged))
	for _, st := range merged {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Resident implements serve.Resolver: the fleet-wide resident count, from
// each backend's last /readyz probe reading (cheap, no fan-out).
func (r *Router) Resident() int {
	total := 0
	for _, b := range r.order {
		if b.healthy.Load() {
			total += int(b.resident.Load())
		}
	}
	return total
}

// BackendStat is one backend's live view in Stats.
type BackendStat struct {
	URL      string `json:"url"`
	Healthy  bool   `json:"healthy"`
	Requests int64  `json:"requests"`
	Failures int64  `json:"failures"`
	Resident int64  `json:"resident"`
	Breaker  string `json:"breaker"`
}

// RouterStats is the router's own counters — the selftest's evidence that
// hedging and failover actually happened.
type RouterStats struct {
	Requests  int64         `json:"requests"`
	Hedges    int64         `json:"hedges"`
	Failovers int64         `json:"failovers"`
	Ejections int64         `json:"ejections"`
	Rejoins   int64         `json:"rejoins"`
	Backends  []BackendStat `json:"backends"`
}

// Stats returns a snapshot of the router's counters and per-backend state.
func (r *Router) Stats() RouterStats {
	s := RouterStats{
		Requests:  r.requests.Load(),
		Hedges:    r.hedges.Load(),
		Failovers: r.failovers.Load(),
		Ejections: r.ejections.Load(),
		Rejoins:   r.rejoins.Load(),
	}
	for _, b := range r.order {
		s.Backends = append(s.Backends, BackendStat{
			URL:      b.url,
			Healthy:  b.healthy.Load(),
			Requests: b.requests.Load(),
			Failures: b.failures.Load(),
			Resident: b.resident.Load(),
			Breaker:  b.breaker.State().String(),
		})
	}
	return s
}

// latWindow is a fixed-size ring of recent request latencies with a
// cached p95, recomputed every refreshEvery inserts — cheap enough for the
// hot path, fresh enough to track load shifts.
type latWindow struct {
	mu     sync.Mutex
	buf    [512]float64
	n      int // total inserts
	cached float64
}

const latRefreshEvery = 32

// add records one latency (µs) and occasionally recomputes the p95.
func (w *latWindow) add(us float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf[w.n%len(w.buf)] = us
	w.n++
	if w.n%latRefreshEvery == 0 {
		w.cached = w.percentileLocked(0.95)
	}
}

// p95 returns the cached p95 in µs, or 0 while the window is too empty to
// trust (fewer than 2×refresh samples).
func (w *latWindow) p95() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n < 2*latRefreshEvery {
		return 0
	}
	return w.cached
}

func (w *latWindow) percentileLocked(p float64) float64 {
	n := w.n
	if n > len(w.buf) {
		n = len(w.buf)
	}
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), w.buf[:n]...)
	sort.Float64s(sorted)
	return sorted[int(p*float64(n-1))]
}

// hedgeDelay is the backup-request delay for one predict: the fixed
// HedgeDelay if set, else the observed p95 clamped to [HedgeMin, HedgeMax]
// — and HedgeMax while the window is still warming up (hedge late rather
// than double traffic on a cold estimate).
func (r *Router) hedgeDelay() time.Duration {
	if r.opts.HedgeDelay != 0 {
		if r.opts.HedgeDelay < 0 {
			return 0 // hedging disabled; failover still works
		}
		return r.opts.HedgeDelay
	}
	p95 := r.lat.p95()
	if p95 <= 0 {
		return r.opts.HedgeMax
	}
	d := time.Duration(p95) * time.Microsecond
	if d < r.opts.HedgeMin {
		d = r.opts.HedgeMin
	}
	if d > r.opts.HedgeMax {
		d = r.opts.HedgeMax
	}
	r.rec.SetGauge("cluster.hedge_delay_us", float64(d.Microseconds()))
	return d
}
