// Package cluster is the sharded serving tier: a router that consistent-
// hashes adapter keys ("task/dataset") onto a ring of `knowtrans serve`
// backends, with bounded replication, health-checked membership, request
// hedging, and retry-with-failover. The Router implements serve.Resolver,
// so the same HTTP surface (serve.Server) fronts one local registry or a
// whole fleet — local and remote resolution are one code path.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring with virtual nodes: each backend owns
// VNodes points on a 64-bit circle, and a key's owners are the first N
// distinct backends clockwise from the key's hash. Adding or removing one
// backend only moves the keys that hashed to its points — everyone else's
// placement is undisturbed, which is what keeps a backend death from
// stampeding every adapter cache in the fleet.
type Ring struct {
	points   []ringPoint
	backends []string
}

type ringPoint struct {
	hash    uint64
	backend int // index into backends
}

// NewRing builds a ring over backends with vnodes points each (default 64
// when vnodes <= 0). Backend order is irrelevant: placement depends only
// on the backend strings themselves.
func NewRing(backends []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &Ring{backends: append([]string(nil), backends...)}
	r.points = make([]ringPoint, 0, len(backends)*vnodes)
	for i, b := range r.backends {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", b, v)), backend: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].backend < r.points[b].backend
	})
	return r
}

// Owners returns the first n distinct backends clockwise from key's hash —
// the primary first, then its replicas in takeover order. n is clamped to
// the backend count.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.backends) {
		n = len(r.backends)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; i < len(r.points) && len(owners) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			owners = append(owners, r.backends[p.backend])
		}
	}
	return owners
}

// Backends returns the ring's member list in construction order.
func (r *Ring) Backends() []string { return append([]string(nil), r.backends...) }

// hash64 is FNV-1a finished with murmur3's 64-bit mixer: fast,
// dependency-free, and stable across processes — router restarts and every
// router replica agree on placement. The finalizer matters: bare FNV-1a
// barely avalanches the last input bytes into the high bits, so the
// near-sequential keys real datasets produce ("EM/dataset-17", "-18", ...)
// would cluster on one arc of the circle instead of spreading.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
