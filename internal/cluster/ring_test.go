package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingOwnersDistinctAndDeterministic(t *testing.T) {
	backends := []string{"http://a", "http://b", "http://c"}
	r1 := NewRing(backends, 64)
	r2 := NewRing([]string{"http://c", "http://a", "http://b"}, 64) // order must not matter
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("EM/dataset-%d", i)
		owners := r1.Owners(key, 2)
		if len(owners) != 2 || owners[0] == owners[1] {
			t.Fatalf("Owners(%q) = %v, want 2 distinct", key, owners)
		}
		if got := r2.Owners(key, 2); !reflect.DeepEqual(got, owners) {
			t.Fatalf("placement depends on construction order: %v vs %v", owners, got)
		}
		if got := r1.Owners(key, 2); !reflect.DeepEqual(got, owners) {
			t.Fatalf("Owners not deterministic: %v vs %v", owners, got)
		}
	}
	// Replication clamps to the backend count.
	if got := r1.Owners("EM/x", 99); len(got) != 3 {
		t.Fatalf("Owners clamp: %v, want all 3", got)
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	backends := []string{"http://a", "http://b", "http://c"}
	r := NewRing(backends, 64)
	counts := map[string]int{}
	const n = 1000
	for i := 0; i < n; i++ {
		counts[r.Owners(fmt.Sprintf("EM/dataset-%d", i), 1)[0]]++
	}
	for _, b := range backends {
		if counts[b] < n/10 {
			t.Fatalf("backend %s owns only %d/%d keys — ring badly unbalanced: %v", b, counts[b], n, counts)
		}
	}
}

// TestRingMinimalDisruption: removing one backend only moves keys it
// owned — the consistent-hashing contract that keeps a death from
// invalidating the whole fleet's caches.
func TestRingMinimalDisruption(t *testing.T) {
	full := NewRing([]string{"http://a", "http://b", "http://c"}, 64)
	without := NewRing([]string{"http://a", "http://c"}, 64)
	moved, kept := 0, 0
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("EM/dataset-%d", i)
		before := full.Owners(key, 1)[0]
		after := without.Owners(key, 1)[0]
		if before == "http://b" {
			moved++
			continue // had to move somewhere
		}
		if before != after {
			t.Fatalf("key %q moved from %s to %s though its owner survived", key, before, after)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}
