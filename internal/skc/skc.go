// Package skc implements Selective Knowledge Concentration (Section V,
// Algorithm 1): the training-time component of KnowTrans.
//
// Stage 1 — Upstream knowledge patch extraction: for every upstream dataset,
// fine-tune a LoRA patch on the *base* model (not the upstream DP-LLM, which
// has already absorbed the data — Section V-A's cross-model low-rank
// parameterization, Eq. 2–3) with the backbone frozen.
//
// Stage 2 — Dynamic knowledge patch fusion: attach the extracted patches to
// the upstream DP-LLM weighted by trainable interpolation weights λ, plus a
// fresh shared patch ΔW_{N+1} at weight 1 (Eq. 4).
//
// Stage 3 — Few-shot fine-tuning: with the backbone fixed, train only the
// patch factors and λ on the few-shot downstream data (Eq. 5).
package skc

import (
	"fmt"
	"math/rand"

	"repro/internal/lora"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/obs"
)

// Source is one upstream dataset prepared for patch extraction.
type Source struct {
	Name     string
	Examples []model.TrainExample
}

// NamedSnapshot is an extracted, serializable knowledge patch.
type NamedSnapshot struct {
	Name string
	Snap *lora.Snapshot
}

// Options configures the SKC pipeline. Zero values take defaults mirroring
// Section VII-A (LoRA rank scaled to the substrate, 3 epochs, lr 6e-5 scaled
// up for the small model).
type Options struct {
	Patch      lora.Config
	PatchTrain model.TrainConfig
	FewShot    model.TrainConfig
	Strategy   lora.WeightStrategy
	Seed       int64
	// Rec, when non-nil, receives per-stage spans, per-epoch loss gauges,
	// and the final λ weight of every fused patch (skc.lambda/<name>).
	Rec *obs.Recorder
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Patch.Rank == 0 {
		o.Patch = lora.DefaultConfig()
	}
	if o.PatchTrain.Epochs == 0 {
		o.PatchTrain = model.TrainConfig{Epochs: 2, LR: 0.02, Clip: 5, Seed: o.Seed + 1}
	}
	if o.FewShot.Epochs == 0 {
		// Gentle few-shot fine-tuning: even rank-constrained patches can
		// memorize 20 examples if trained long, which trades upstream
		// calibration for training-set fit.
		o.FewShot = model.TrainConfig{Epochs: 6, LR: 0.01, Clip: 5, Seed: o.Seed + 2, WeightDecay: 3e-4, BatchSize: 4}
	}
	// Strategy's zero value is StrategyAdaptive — SKC proper.
	return o
}

// ExtractPatches runs Stage 1: one LoRA patch per upstream source, trained
// on a clone of the base model with the backbone and trust frozen. The base
// model is left untouched.
func ExtractPatches(base *model.Model, sources []Source, opts Options) []*NamedSnapshot {
	opts = opts.withDefaults()
	rec, span := opts.Rec.StartSpan("skc.extract")
	defer span.End()
	span.SetAttr("sources", len(sources))
	out := make([]*NamedSnapshot, 0, len(sources))
	for i, src := range sources {
		_, ps2 := rec.StartSpan("skc.extract.patch")
		ps2.SetAttr("source", src.Name)
		ps2.SetAttr("examples", len(src.Examples))
		host := base.Clone()
		host.SetBaseFrozen(true)
		host.Trust.Frozen = true
		rng := rand.New(rand.NewSource(opts.Seed + int64(i)*31 + 17))
		coef := &nn.Scalar{Name: "extract", Val: 1, Frozen: true}
		patch := lora.Attach(src.Name, host.LoraLayers(), opts.Patch, coef, rng)
		var ps nn.ParamSet
		ps.Add(patch.Params()...)
		tc := opts.PatchTrain
		tc.Seed = opts.Seed + int64(i)*131
		if tc.MetricTag == "" {
			tc.MetricTag = "skc.extract"
		}
		loss := model.Train(host, src.Examples, tc, &ps)
		ps2.SetAttr("final_loss", loss)
		ps2.End()
		out = append(out, &NamedSnapshot{Name: src.Name, Snap: patch.Export()})
	}
	return out
}

// Transferred is the outcome of SKC: the adapted model and its fusion
// module (for inspecting λ).
type Transferred struct {
	Model  *model.Model
	Fusion *lora.Fusion
}

// BuildFusion runs Stage 2: it clones the upstream model, attaches every
// extracted patch under the configured weight strategy plus the fresh shared
// patch, and returns the fused model ready for few-shot fine-tuning.
func BuildFusion(upstream *model.Model, snaps []*NamedSnapshot, opts Options) (*Transferred, error) {
	opts = opts.withDefaults()
	_, span := opts.Rec.StartSpan("skc.fuse")
	defer span.End()
	span.SetAttr("patches", len(snaps))
	span.SetAttr("strategy", opts.Strategy.String())
	m := upstream.Clone()
	m.SetBaseFrozen(true)
	m.Trust.Frozen = true
	rng := rand.New(rand.NewSource(opts.Seed + 911))
	fusion := &lora.Fusion{}

	if opts.Strategy != lora.StrategySingle {
		n := len(snaps)
		for _, ns := range snaps {
			coef := &nn.Scalar{Name: "λ/" + ns.Name, Val: 1 / float64(n)}
			if opts.Strategy == lora.StrategyUniform {
				coef.Frozen = true
			}
			p := lora.Attach(ns.Name, m.LoraLayers(), opts.Patch, coef, rng)
			if err := p.Load(ns.Snap); err != nil {
				return nil, fmt.Errorf("skc: loading patch %q: %w", ns.Name, err)
			}
			fusion.Upstream = append(fusion.Upstream, p)
			fusion.Lambdas = append(fusion.Lambdas, coef)
		}
	}
	shared := lora.Attach("shared", m.LoraLayers(), opts.Patch,
		&nn.Scalar{Name: "λ/shared", Val: 1, Frozen: true}, rng)
	fusion.Shared = shared
	return &Transferred{Model: m, Fusion: fusion}, nil
}

// FewShotFineTune runs Stage 3 on a fused model: only patch factors and
// (for the adaptive strategy) λ are trainable; the backbone stays fixed.
// It returns the final mean loss.
func FewShotFineTune(tr *Transferred, examples []model.TrainExample, opts Options) float64 {
	opts = opts.withDefaults()
	_, span := opts.Rec.StartSpan("skc.fewshot_ft")
	defer span.End()
	span.SetAttr("examples", len(examples))
	ps := tr.Fusion.TrainableParams()
	if opts.FewShot.MetricTag == "" {
		opts.FewShot.MetricTag = "skc.fewshot"
	}
	loss := model.Train(tr.Model, examples, opts.FewShot, &ps)
	span.SetAttr("final_loss", loss)
	opts.Rec.SetGauge("skc.fewshot.final_loss", loss)
	recordLambdas(opts.Rec, tr.Fusion)
	return loss
}

// recordLambdas exports the fusion's current interpolation weights, one
// gauge per upstream patch — the quantity Table VI's strategies differ on.
func recordLambdas(rec *obs.Recorder, f *lora.Fusion) {
	if rec == nil || f == nil {
		return
	}
	for i, p := range f.Upstream {
		rec.SetGauge("skc.lambda/"+p.Name, f.Lambdas[i].Val)
	}
}

// Transfer is the one-call SKC pipeline of Algorithm 1: extract (or reuse
// pre-extracted) patches, fuse, and few-shot fine-tune. snaps may come from
// a previous ExtractPatches run — extraction is independent of the
// downstream dataset and is meant to be done once and reused, exactly like
// the paper's patch library.
func Transfer(upstream *model.Model, snaps []*NamedSnapshot, fewshot []model.TrainExample, opts Options) (*Transferred, error) {
	rec, span := opts.Rec.StartSpan("skc.transfer")
	defer span.End()
	opts.Rec = rec
	tr, err := BuildFusion(upstream, snaps, opts)
	if err != nil {
		return nil, err
	}
	FewShotFineTune(tr, fewshot, opts)
	return tr, nil
}
