package skc

import (
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/lora"
	"repro/internal/model"
	"repro/internal/tasks"
)

// The toy transfer scenario: binary ED-style datasets keyed by which marker
// token implies an error. The "relevant" upstream dataset shares the
// downstream rule (marker "%"), the "conflicting" one uses the OPPOSITE rule
// (marker "%" is fine, marker "#" is the error) — the gradient-conflict
// setup of Fig. 1.
func markerDataset(rng *rand.Rand, n int, errMarker, okMarker string) []*data.Instance {
	var out []*data.Instance
	for i := 0; i < n; i++ {
		marker, gold := okMarker, 1
		if rng.Intn(2) == 0 {
			marker, gold = errMarker, 0
		}
		val := "0.05" + marker
		out = append(out, &data.Instance{
			Fields:     []data.Field{{Name: "val", Value: val}, {Name: "ctx", Value: "row " + string(rune('a'+rng.Intn(26)))}},
			Target:     "val",
			Candidates: []string{tasks.AnswerYes, tasks.AnswerNo},
			Gold:       gold,
		})
	}
	return out
}

func tinyModel(seed int64) *model.Model {
	return model.New(model.Config{Name: "tiny", Dim: 1 << 9, Hidden: 12, Seed: seed})
}

func testOptions() Options {
	return Options{
		Patch:      lora.Config{Rank: 2, Alpha: 1},
		PatchTrain: model.TrainConfig{Epochs: 4, LR: 0.05, Clip: 5, Seed: 11},
		FewShot:    model.TrainConfig{Epochs: 10, LR: 0.05, Clip: 5, Seed: 12},
		Seed:       5,
	}
}

func TestExtractPatchesLeavesBaseUntouched(t *testing.T) {
	base := tinyModel(1)
	before := base.Export()
	rng := rand.New(rand.NewSource(2))
	sources := []Source{
		{Name: "rel", Examples: model.ExamplesFrom(tasks.ED, markerDataset(rng, 40, "%", ""), nil)},
		{Name: "conf", Examples: model.ExamplesFrom(tasks.ED, markerDataset(rng, 40, "#", "%"), nil)},
	}
	snaps := ExtractPatches(base, sources, testOptions())
	if len(snaps) != 2 {
		t.Fatalf("expected 2 snapshots, got %d", len(snaps))
	}
	after := base.Export()
	for name, w := range before.Mats {
		for i := range w {
			if after.Mats[name][i] != w[i] {
				t.Fatal("ExtractPatches mutated the base model")
			}
		}
	}
	// Patches must actually contain knowledge (non-zero A after training).
	for _, ns := range snaps {
		var nonzero bool
		for _, a := range ns.Snap.A {
			for _, v := range a.Data {
				if v != 0 {
					nonzero = true
				}
			}
		}
		if !nonzero {
			t.Fatalf("patch %s learned nothing", ns.Name)
		}
	}
}

func TestTransferImprovesOverZeroShot(t *testing.T) {
	base := tinyModel(1)
	rng := rand.New(rand.NewSource(3))
	// Upstream model: multi-task FT on both conflicting datasets.
	upstream := base.Clone()
	// The conflicting dataset carries the EXACT opposite rule ("%" is fine,
	// plain is the error), so shared-parameter multi-task training cannot
	// satisfy both — the tug-of-war of Fig. 1.
	mixed := append(
		model.ExamplesFrom(tasks.ED, markerDataset(rng, 60, "%", ""), nil),
		model.ExamplesFrom(tasks.ED, markerDataset(rng, 60, "", "%"), nil)...)
	ps := upstream.Params()
	model.Train(upstream, mixed, model.TrainConfig{Epochs: 3, LR: 0.03, Clip: 5, Seed: 4}, &ps)

	sources := []Source{
		{Name: "rel", Examples: model.ExamplesFrom(tasks.ED, markerDataset(rng, 60, "%", ""), nil)},
		{Name: "conf", Examples: model.ExamplesFrom(tasks.ED, markerDataset(rng, 60, "", "%"), nil)},
	}
	snaps := ExtractPatches(base, sources, testOptions())

	// Two downstream targets, one per upstream rule. Because the upstream
	// rules are exact opposites, the shared-parameter upstream model cannot
	// score high on both — that is the knowledge-distraction symptom. SKC
	// transfer must solve each side from 20 examples.
	spec := tasks.SpecFor(tasks.ED)
	relTest := markerDataset(rng, 80, "%", "")
	confTest := markerDataset(rng, 80, "", "%")
	zeroRel := upstream.Evaluate(spec, relTest, nil)
	zeroConf := upstream.Evaluate(spec, confTest, nil)
	minZero := zeroRel
	if zeroConf < minZero {
		minZero = zeroConf
	}
	if minZero > 75 {
		t.Fatalf("conflicting upstream rules should leave the shared model degraded on one side, got %v and %v", zeroRel, zeroConf)
	}
	for i, target := range []struct {
		fewshot, test []*data.Instance
	}{
		{markerDataset(rng, 20, "%", ""), relTest},
		{markerDataset(rng, 20, "", "%"), confTest},
	} {
		tr, err := Transfer(upstream, snaps, model.ExamplesFrom(tasks.ED, target.fewshot, nil), testOptions())
		if err != nil {
			t.Fatal(err)
		}
		if after := tr.Model.Evaluate(spec, target.test, nil); after < 90 {
			t.Fatalf("transfer %d should nearly solve the toy task, got %v", i, after)
		}
	}
}

func TestAdaptiveLambdaPrefersRelevantPatch(t *testing.T) {
	base := tinyModel(1)
	rng := rand.New(rand.NewSource(7))
	upstream := base.Clone()
	sources := []Source{
		{Name: "relevant", Examples: model.ExamplesFrom(tasks.ED, markerDataset(rng, 80, "%", ""), nil)},
		{Name: "conflicting", Examples: model.ExamplesFrom(tasks.ED, markerDataset(rng, 80, "#", "%"), nil)},
	}
	snaps := ExtractPatches(base, sources, testOptions())
	fewshot := markerDataset(rng, 20, "%", "")
	opts := testOptions()
	opts.FewShot.Epochs = 20
	tr, err := Transfer(upstream, snaps, model.ExamplesFrom(tasks.ED, fewshot, nil), opts)
	if err != nil {
		t.Fatal(err)
	}
	w := tr.Fusion.Weights()
	if len(w) != 2 {
		t.Fatalf("expected 2 λ, got %v", w)
	}
	if w[0] <= w[1] {
		t.Fatalf("λ(relevant)=%v should exceed λ(conflicting)=%v", w[0], w[1])
	}
}

func TestUniformStrategyFreezesLambda(t *testing.T) {
	base := tinyModel(1)
	rng := rand.New(rand.NewSource(8))
	sources := []Source{
		{Name: "a", Examples: model.ExamplesFrom(tasks.ED, markerDataset(rng, 30, "%", ""), nil)},
		{Name: "b", Examples: model.ExamplesFrom(tasks.ED, markerDataset(rng, 30, "#", "%"), nil)},
	}
	snaps := ExtractPatches(base, sources, testOptions())
	opts := testOptions()
	opts.Strategy = lora.StrategyUniform
	tr, err := Transfer(base, snaps, model.ExamplesFrom(tasks.ED, markerDataset(rng, 20, "%", ""), nil), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range tr.Fusion.Weights() {
		if w != 0.5 {
			t.Fatalf("uniform λ should remain 1/N = 0.5, got %v", tr.Fusion.Weights())
		}
	}
}

func TestSingleStrategyHasNoUpstreamPatches(t *testing.T) {
	base := tinyModel(1)
	rng := rand.New(rand.NewSource(9))
	sources := []Source{{Name: "a", Examples: model.ExamplesFrom(tasks.ED, markerDataset(rng, 30, "%", ""), nil)}}
	snaps := ExtractPatches(base, sources, testOptions())
	opts := testOptions()
	opts.Strategy = lora.StrategySingle
	tr, err := BuildFusion(base, snaps, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Fusion.Upstream) != 0 || len(tr.Fusion.Lambdas) != 0 {
		t.Fatal("single strategy must not attach upstream patches")
	}
	if tr.Fusion.Shared == nil {
		t.Fatal("single strategy still needs the fresh shared patch")
	}
}

func TestFewShotKeepsBackboneFixed(t *testing.T) {
	base := tinyModel(1)
	rng := rand.New(rand.NewSource(10))
	sources := []Source{{Name: "a", Examples: model.ExamplesFrom(tasks.ED, markerDataset(rng, 30, "%", ""), nil)}}
	snaps := ExtractPatches(base, sources, testOptions())
	tr, err := BuildFusion(base, snaps, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	before := tr.Model.Export()
	FewShotFineTune(tr, model.ExamplesFrom(tasks.ED, markerDataset(rng, 20, "%", ""), nil), testOptions())
	after := tr.Model.Export()
	for name, w := range before.Mats {
		for i := range w {
			if after.Mats[name][i] != w[i] {
				t.Fatalf("backbone weight %s changed during few-shot fine-tuning", name)
			}
		}
	}
	if after.Trust != before.Trust {
		t.Fatal("trust must stay fixed during SKC few-shot fine-tuning")
	}
}
