package obs

import (
	"bytes"
	"context"
	"io"
	"strings"
	"sync"
	"testing"
)

func TestIDSourceDeterminism(t *testing.T) {
	a, b := NewIDSource(42), NewIDSource(42)
	for i := 0; i < 10; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("mint %d diverged: %s vs %s", i, x, y)
		}
	}
	if NewIDSource(42).At(3) != a.At(3) {
		t.Fatal("At is not mint-order independent")
	}
	if NewIDSource(1).At(1) == NewIDSource(2).At(1) {
		t.Fatal("different seeds minted the same trace id")
	}
	if id := NewIDSource(7).Next(); id.IsZero() || len(id.String()) != 32 {
		t.Fatalf("bad trace id %q", id.String())
	}
	if NewIDSource(7).SpanIDAt(1) == 0 {
		t.Fatal("SpanIDAt minted zero")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: NewIDSource(9).At(1), Span: 0xDEADBEEF}
	tp := FormatTraceparent(sc)
	if !strings.HasPrefix(tp, "00-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("traceparent %q not W3C-shaped", tp)
	}
	got, err := ParseTraceparent(tp)
	if err != nil {
		t.Fatal(err)
	}
	if got != sc {
		t.Fatalf("round trip = %+v, want %+v", got, sc)
	}
	if FormatTraceparent(SpanContext{}) != "" {
		t.Fatal("zero context should format to empty")
	}
	for _, bad := range []string{
		"",
		"00-abc-def-01",
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
		"00-0af7651916cd43dd8448eb211c80319X-b7ad6b7169203331-01",
	} {
		if _, err := ParseTraceparent(bad); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted garbage", bad)
		}
	}
	// Future version with extra fields parses (per spec).
	if _, err := ParseTraceparent("42-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra"); err != nil {
		t.Errorf("future traceparent version rejected: %v", err)
	}
}

func TestSpanTracePropagation(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.SeedTraceIDs(7)

	root := tr.StartSpan("root")
	child := root.StartChild("child")
	child.End()
	other := tr.StartSpan("other")
	other.End()
	root.End()

	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if byName["root"].Trace == "" || byName["root"].Trace != byName["child"].Trace {
		t.Fatalf("child trace %q != root trace %q", byName["child"].Trace, byName["root"].Trace)
	}
	if byName["other"].Trace == byName["root"].Trace {
		t.Fatal("separate roots share a trace id")
	}

	// Same seed, same mint order → same ids.
	var buf2 bytes.Buffer
	tr2 := NewTracer(&buf2)
	tr2.SeedTraceIDs(7)
	r2 := tr2.StartSpan("root")
	r2.StartChild("child").End()
	tr2.StartSpan("other").End()
	r2.End()
	recs2, _ := ReadTrace(&buf2)
	for i := range recs {
		if recs[i].Trace != recs2[i].Trace {
			t.Fatalf("seeded trace ids not reproducible: %q vs %q", recs[i].Trace, recs2[i].Trace)
		}
	}
}

func TestStartSpanInAdoptsRemoteTrace(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	remote := SpanContext{Trace: NewIDSource(3).At(1), Span: 0xABCD}

	rec := NewRecorder(NewRegistry(), tr)
	reqRec, span := rec.StartSpanIn("serve.request", remote)
	if got := span.Context().Trace; got != remote.Trace {
		t.Fatalf("span adopted trace %s, want %s", got, remote.Trace)
	}
	reqRec.Event("decision", "k", 1)
	span.End()

	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want event+span", len(recs))
	}
	evt, sp := recs[0], recs[1]
	if sp.Parent != 0xABCD || sp.Trace != remote.Trace.String() {
		t.Fatalf("span record = %+v", sp)
	}
	if evt.Trace != remote.Trace.String() || evt.Parent != sp.Span {
		t.Fatalf("event did not inherit the trace: %+v", evt)
	}
}

func TestSpanLinksSerialized(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	a := tr.StartSpan("request")
	batch := tr.StartSpan("batch")
	batch.Link(a.Context())
	batch.Link(SpanContext{}) // dropped
	batch.End()
	a.End()

	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs[0].Links) != 1 {
		t.Fatalf("batch links = %+v, want exactly the request link", recs[0].Links)
	}
	l := recs[0].Links[0]
	if l.Span != a.Context().Span || l.Trace != a.Context().Trace.String() {
		t.Fatalf("link %+v does not identify the request span %+v", l, a.Context())
	}
}

// TestSpanCrossGoroutineAnnotation is the race gate for the serve path
// shape: one goroutine owns the span (and may End it at any moment, as a
// handler whose client vanished does) while another annotates and links
// it. Run under -race.
func TestSpanCrossGoroutineAnnotation(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	for i := 0; i < 200; i++ {
		s := tr.StartSpan("req")
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			s.SetAttr("queue_us", int64(5))
			s.Link(SpanContext{Trace: NewIDSource(1).At(1), Span: 9})
		}()
		go func() {
			defer wg.Done()
			s.SetAttr("status", 200)
			s.End()
		}()
		wg.Wait()
		s.End() // idempotent: no duplicate record
	}
	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 200 {
		t.Fatalf("got %d records, want 200 (End must be idempotent)", len(recs))
	}
}

func TestContextSpanPlumbing(t *testing.T) {
	if s := SpanFromContext(context.Background()); s != nil {
		t.Fatal("empty context returned a span")
	}
	ctx := ContextWithSpan(context.Background(), nil)
	if SpanFromContext(ctx) != nil {
		t.Fatal("nil span should not be stored")
	}
	tr := NewTracer(&bytes.Buffer{})
	s := tr.StartSpan("op")
	ctx = ContextWithSpan(context.Background(), s)
	if got := SpanFromContext(ctx); got != s {
		t.Fatalf("got %v, want the stored span", got)
	}
}

func TestHistogramExemplars(t *testing.T) {
	h := newHistogram([]float64{10, 100})
	h.ObserveExemplar(5, "trace-a")
	h.ObserveExemplar(50, "trace-b")
	h.ObserveExemplar(7, "trace-c") // overwrites bucket 0
	h.ObserveExemplar(5000, "")     // counted, no exemplar
	snap := h.Snapshot()
	if snap.Count != 4 {
		t.Fatalf("count = %d", snap.Count)
	}
	want := []string{"trace-c", "trace-b", ""}
	if len(snap.Exemplars) != 3 {
		t.Fatalf("exemplars = %v", snap.Exemplars)
	}
	for i, w := range want {
		if snap.Exemplars[i] != w {
			t.Fatalf("exemplars = %v, want %v", snap.Exemplars, want)
		}
	}
	// Without any stamped exemplar the field stays absent.
	if s := newHistogram(nil); s.Snapshot().Exemplars != nil {
		t.Fatal("empty histogram grew exemplars")
	}
}

// TestSeededTracerAvoidsClientStream pins the domain separation between a
// seeded tracer's local roots and a client ID source with the same seed: a
// server and a load generator sharing one -seed must never collide on trace
// IDs, or locally-rooted batch/transfer spans would graft themselves into
// some request's trace.
func TestSeededTracerAvoidsClientStream(t *testing.T) {
	client := NewIDSource(7)
	clientIDs := map[string]bool{}
	for n := uint64(1); n <= 512; n++ {
		clientIDs[client.At(n).String()] = true
	}
	tr := NewTracer(io.Discard)
	tr.SeedTraceIDs(7)
	for i := 0; i < 512; i++ {
		s := tr.StartSpan("local.root")
		if id := s.Context().Trace.String(); clientIDs[id] {
			t.Fatalf("tracer root %d minted trace %s, which a client with the same seed also mints", i, id)
		}
		s.End()
	}
}
