package obs

import (
	"bytes"
	"errors"
	"log/slog"
	"strings"
	"testing"
)

func TestTracerEvent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	rec := NewRecorder(NewRegistry(), tr)

	r2, sp := rec.StartSpan("akb.iteration")
	r2.Event("akb.candidate", "score", 91.5, "accepted", true, slog.Int("iter", 2))
	sp.End()

	recs, err := ReadTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want event + span", len(recs))
	}
	ev := recs[0] // events flush immediately, before the span's end record
	if !ev.IsEvent() || ev.Kind != KindEvent {
		t.Fatalf("first record is not an event: %+v", ev)
	}
	if ev.Name != "akb.candidate" || ev.Parent != recs[1].Span {
		t.Errorf("event name/parent = %q/%d, span id %d", ev.Name, ev.Parent, recs[1].Span)
	}
	if ev.DurUS != 0 {
		t.Errorf("event has duration %d", ev.DurUS)
	}
	if ev.Attrs["score"] != 91.5 || ev.Attrs["accepted"] != true || ev.Attrs["iter"] != float64(2) {
		t.Errorf("event attrs = %v", ev.Attrs)
	}
	if recs[1].IsEvent() {
		t.Error("span record misflagged as event")
	}
}

func TestEventNilSafety(t *testing.T) {
	var rec *Recorder
	rec.Event("ghost", "k", 1) // must not panic
	var tr *Tracer
	tr.Event(0, "ghost")
	metricsOnly := NewRecorder(NewRegistry(), nil)
	metricsOnly.Event("ghost", "k", 1)
}

func TestTracerLoggerSlogHandler(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	log := tr.Logger().With("run", "t1").WithGroup("akb")
	log.Info("candidate", "score", 88.0)

	recs, err := ReadTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || !recs[0].IsEvent() {
		t.Fatalf("records = %+v", recs)
	}
	ev := recs[0]
	if ev.Name != "candidate" {
		t.Errorf("event name = %q", ev.Name)
	}
	// With-attrs are unprefixed (added before the group); record attrs take
	// the group prefix.
	if ev.Attrs["run"] != "t1" || ev.Attrs["akb.score"] != 88.0 {
		t.Errorf("attrs = %v", ev.Attrs)
	}
}

func TestEventGroupFlattening(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Event(0, "e", slog.Group("g", slog.Int("x", 1), slog.Group("h", slog.Int("y", 2))))
	recs, err := ReadTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	attrs := recs[0].Attrs
	if attrs["g.x"] != float64(1) || attrs["g.h.y"] != float64(2) {
		t.Errorf("flattened attrs = %v", attrs)
	}
}

// errCloser fails on Close, to exercise error propagation.
type errCloser struct {
	bytes.Buffer
	err error
}

func (e *errCloser) Close() error { return e.err }

func TestTracerClose(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.StartSpan("a").End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	// Writes after Close are dropped, not errors.
	tr.StartSpan("late").End()
	tr.Event(0, "late-event")
	if buf.Len() != n {
		t.Error("write after Close reached the buffer")
	}
	if err := tr.Close(); err != nil {
		t.Errorf("second Close = %v", err)
	}

	// Close closes an underlying io.Closer and surfaces its error once.
	ec := &errCloser{err: errors.New("disk full")}
	tr2 := NewTracer(ec)
	tr2.StartSpan("b").End()
	if err := tr2.Close(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Errorf("Close error = %v", err)
	}

	// Nil tracer Close is a no-op.
	var nilTr *Tracer
	if err := nilTr.Close(); err != nil {
		t.Errorf("nil Close = %v", err)
	}
}

func TestDefaultBoundsAliases(t *testing.T) {
	if len(DefaultLatencyBounds) == 0 || len(DefaultScoreBounds) == 0 {
		t.Fatal("default bounds empty")
	}
	if &TimeBuckets[0] != &DefaultLatencyBounds[0] {
		t.Error("TimeBuckets is not an alias of DefaultLatencyBounds")
	}
	if &ScoreBuckets[0] != &DefaultScoreBounds[0] {
		t.Error("ScoreBuckets is not an alias of DefaultScoreBounds")
	}
	// Registry nil-bounds fallback uses the latency defaults.
	reg := NewRegistry()
	h := reg.Histogram("h", nil)
	h.Observe(3)
	snap := h.Snapshot()
	if len(snap.Le) != len(DefaultLatencyBounds) {
		t.Errorf("nil-bounds histogram has %d bounds, want %d", len(snap.Le), len(DefaultLatencyBounds))
	}
}
