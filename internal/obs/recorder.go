package obs

import "time"

// Recorder bundles a metrics registry and a tracer and is what the
// pipeline threads through model → skc/akb → core → eval. Every method is
// safe on a nil *Recorder and costs exactly one pointer check there, so
// instrumented hot paths (model.Predict, train steps) add zero allocations
// and no clock reads when observability is disabled — the uninstrumented
// default of every library entry point.
//
// Span parentage is carried by the recorder itself: StartSpan returns a
// derived recorder whose subsequent spans nest under the new span, which is
// how Transfer → SKC stages → AKB iterations form one tree without any
// global (goroutine-local) state.
type Recorder struct {
	Metrics *Registry
	Tracer  *Tracer
	parent  *Span
}

// NewRecorder returns a recorder over the given registry and tracer.
// Either may be nil to enable only the other half.
func NewRecorder(reg *Registry, tr *Tracer) *Recorder {
	return &Recorder{Metrics: reg, Tracer: tr}
}

// StartSpan opens a span nested under the recorder's current span and
// returns it with a derived recorder for the enclosed work. On a nil
// recorder (or one without a tracer) both results are nil — and every
// Span/Recorder method tolerates that.
func (r *Recorder) StartSpan(name string) (*Recorder, *Span) {
	if r == nil || r.Tracer == nil {
		return r, nil
	}
	var s *Span
	if r.parent != nil {
		s = r.parent.StartChild(name)
	} else {
		s = r.Tracer.StartSpan(name)
	}
	return &Recorder{Metrics: r.Metrics, Tracer: r.Tracer, parent: s}, s
}

// StartSpanIn opens a span inside an existing trace under a remote parent
// (the span context a `traceparent` header carried) and returns it with a
// derived recorder, ignoring the recorder's own parent span. A zero remote
// behaves like StartSpan on a parentless recorder: fresh root, fresh trace.
func (r *Recorder) StartSpanIn(name string, remote SpanContext) (*Recorder, *Span) {
	if r == nil || r.Tracer == nil {
		return r, nil
	}
	s := r.Tracer.StartSpanIn(name, remote)
	return &Recorder{Metrics: r.Metrics, Tracer: r.Tracer, parent: s}, s
}

// SeedTraceIDs makes the tracer's trace IDs deterministic in the seed; a
// recorder without a tracer ignores it.
func (r *Recorder) SeedTraceIDs(seed int64) {
	if r == nil {
		return
	}
	r.Tracer.SeedTraceIDs(seed)
}

// Count adds d to the named counter.
func (r *Recorder) Count(name string, d int64) {
	if r == nil || r.Metrics == nil {
		return
	}
	r.Metrics.Counter(name).Add(d)
}

// SetGauge stores v in the named gauge.
func (r *Recorder) SetGauge(name string, v float64) {
	if r == nil || r.Metrics == nil {
		return
	}
	r.Metrics.Gauge(name).Set(v)
}

// DeleteGauge retires the named gauge from the registry (see
// Registry.DeleteGauge). Nil-safe like every Recorder method.
func (r *Recorder) DeleteGauge(name string) {
	if r == nil || r.Metrics == nil {
		return
	}
	r.Metrics.DeleteGauge(name)
}

// Event emits a structured event into the trace stream, parented to the
// recorder's current span. args are slog-style attributes (alternating
// key/value pairs or slog.Attr values). Events are how the pipeline records
// point-in-time decisions — AKB candidate accept/reject, feedback text —
// that have no duration but belong on the span timeline.
func (r *Recorder) Event(name string, args ...any) {
	if r == nil || r.Tracer == nil {
		return
	}
	r.Tracer.EventIn(r.parent.Context(), name, args...)
}

// Observe records v in the named histogram (created with the given bounds,
// DefaultLatencyBounds when nil).
func (r *Recorder) Observe(name string, v float64, bounds []float64) {
	if r == nil || r.Metrics == nil {
		return
	}
	r.Metrics.Histogram(name, bounds).Observe(v)
}

// ObserveEx records v in the named histogram like Observe and, when
// exemplar is non-empty, stamps it as the bucket's exemplar — the "last
// trace ID seen in this latency bucket" breadcrumb /metrics.json exposes,
// which turns a fat tail bucket into a concrete trace to pull.
func (r *Recorder) ObserveEx(name string, v float64, bounds []float64, exemplar string) {
	if r == nil || r.Metrics == nil {
		return
	}
	r.Metrics.Histogram(name, bounds).ObserveExemplar(v, exemplar)
}

// Now returns the wall clock when the recorder is live and the zero time
// otherwise, so disabled instrumentation skips the clock read entirely:
//
//	start := rec.Now()
//	... work ...
//	rec.ObserveSince("stage_us", start)
func (r *Recorder) Now() time.Time {
	if r == nil || r.Metrics == nil {
		return time.Time{}
	}
	return time.Now()
}

// ObserveSince records the elapsed microseconds since start (obtained from
// Now) in the named duration histogram.
func (r *Recorder) ObserveSince(name string, start time.Time) {
	if r == nil || r.Metrics == nil || start.IsZero() {
		return
	}
	r.Metrics.Histogram(name, DefaultLatencyBounds).Observe(float64(time.Since(start).Microseconds()))
}
