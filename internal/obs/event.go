package obs

import (
	"context"
	"log/slog"
	"time"
)

// Structured events ride in the same JSONL stream as spans: one SpanRecord
// with Kind == KindEvent, a zero duration, and the enclosing span as
// parent. Attribute normalization is delegated to log/slog — Event accepts
// the same alternating key/value (or slog.Attr) argument forms as
// slog.Logger, and a Tracer is itself usable as a slog.Handler via Logger()
// for code that already speaks slog.

// Event writes one structured event under the given parent span id (0 for a
// top-level event). args are slog-style attributes: alternating key/value
// pairs, slog.Attr values, or slog groups. The event carries no trace id;
// use EventIn when the enclosing span's trace should be attributable.
func (t *Tracer) Event(parent uint64, name string, args ...any) {
	t.EventIn(SpanContext{Span: parent}, name, args...)
}

// EventIn writes one structured event under a parent span context, stamping
// the parent's trace id on the record so trace-id filtering picks the event
// up alongside its span.
func (t *Tracer) EventIn(parent SpanContext, name string, args ...any) {
	if t == nil {
		return
	}
	rec := slog.NewRecord(time.Now(), slog.LevelInfo, name, 0)
	rec.Add(args...)
	t.writeEvent(parent, rec)
}

func (t *Tracer) writeEvent(parent SpanContext, rec slog.Record) {
	out := SpanRecord{
		Span:    t.nextID.Add(1),
		Parent:  parent.Span,
		Trace:   parent.Trace.String(),
		Kind:    KindEvent,
		Name:    rec.Message,
		StartUS: rec.Time.Sub(t.epoch).Microseconds(),
	}
	if rec.NumAttrs() > 0 {
		out.Attrs = make(map[string]any, rec.NumAttrs())
		rec.Attrs(func(a slog.Attr) bool {
			flattenAttr(out.Attrs, "", a)
			return true
		})
	}
	t.write(&out)
}

// flattenAttr resolves one slog attribute into the flat Attrs map, joining
// group members with "." so events stay one JSON object deep.
func flattenAttr(dst map[string]any, prefix string, a slog.Attr) {
	v := a.Value.Resolve()
	key := a.Key
	if prefix != "" {
		key = prefix + "." + key
	}
	if v.Kind() == slog.KindGroup {
		for _, ga := range v.Group() {
			flattenAttr(dst, key, ga)
		}
		return
	}
	if key == "" {
		return
	}
	dst[key] = v.Any()
}

// Logger returns a *slog.Logger whose records become event lines in the
// trace (top-level: no parent span). The handler ignores levels — a trace
// is opt-in debugging output, so everything written to it is kept.
func (t *Tracer) Logger() *slog.Logger {
	return slog.New(&traceHandler{t: t})
}

// traceHandler adapts a Tracer to slog.Handler.
type traceHandler struct {
	t      *Tracer
	attrs  []slog.Attr
	groups []string
}

func (h *traceHandler) Enabled(context.Context, slog.Level) bool { return h.t != nil }

func (h *traceHandler) Handle(_ context.Context, rec slog.Record) error {
	out := slog.NewRecord(rec.Time, rec.Level, rec.Message, rec.PC)
	out.AddAttrs(h.attrs...)
	prefix := ""
	for _, g := range h.groups {
		prefix += g + "."
	}
	rec.Attrs(func(a slog.Attr) bool {
		if prefix != "" {
			a.Key = prefix + a.Key
		}
		out.AddAttrs(a)
		return true
	})
	h.t.writeEvent(SpanContext{}, out)
	return h.t.Err()
}

func (h *traceHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := &traceHandler{t: h.t, groups: h.groups}
	nh.attrs = append([]slog.Attr(nil), h.attrs...)
	for _, a := range attrs {
		for i := len(h.groups) - 1; i >= 0; i-- {
			a.Key = h.groups[i] + "." + a.Key
		}
		nh.attrs = append(nh.attrs, a)
	}
	return nh
}

func (h *traceHandler) WithGroup(name string) slog.Handler {
	nh := &traceHandler{t: h.t, attrs: h.attrs}
	nh.groups = append(append([]string(nil), h.groups...), name)
	return nh
}
