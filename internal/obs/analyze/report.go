package analyze

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Report is the complete analysis of one trace, the JSON document behind
// `knowtrans obs trace -json` and the source of the text rendering.
type Report struct {
	Spans     int     `json:"spans"`
	Events    int     `json:"events"`
	Roots     int     `json:"roots"`
	Orphans   int     `json:"orphans,omitempty"`
	Truncated bool    `json:"truncated,omitempty"`
	RootUS    int64   `json:"root_us"`
	Coverage  float64 `json:"self_time_coverage"` // Σ self time / root duration

	Stats        []NameStat  `json:"stats"`
	CriticalPath []PathStep  `json:"critical_path"`
	Slowest      []SlowSpan  `json:"slowest"`
	EventStats   []EventStat `json:"event_stats,omitempty"`
}

// NewReport analyzes the trace. topN bounds the slowest-spans section
// (10 when <= 0).
func NewReport(t *Trace, topN int) *Report {
	if topN <= 0 {
		topN = 10
	}
	r := &Report{
		Spans:        t.Spans,
		Events:       len(t.Events),
		Roots:        len(t.Roots),
		Orphans:      t.Orphans,
		Truncated:    t.Truncated,
		RootUS:       t.RootUS(),
		Stats:        t.Aggregate(),
		CriticalPath: t.CriticalPath(),
		Slowest:      t.Slowest(topN),
		EventStats:   t.EventStats(),
	}
	var self int64
	for _, s := range r.Stats {
		self += s.SelfUS
	}
	if r.RootUS > 0 {
		r.Coverage = float64(self) / float64(r.RootUS)
	}
	return r
}

// WriteJSON emits the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// fmtUS renders microseconds in a human scale (µs/ms/s).
func fmtUS(us int64) string {
	return fmtUSf(float64(us))
}

func fmtUSf(us float64) string {
	switch {
	case us >= 1e6:
		return fmt.Sprintf("%.2fs", us/1e6)
	case us >= 1e3:
		return fmt.Sprintf("%.2fms", us/1e3)
	default:
		return fmt.Sprintf("%.0fµs", us)
	}
}

// WriteText renders the report as aligned plain-text tables: header,
// per-name aggregates, the critical path, the slowest spans, and the event
// summary.
func (r *Report) WriteText(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace: %d spans, %d events, %d roots, wall %s\n",
		r.Spans, r.Events, r.Roots, fmtUS(r.RootUS))
	if r.Truncated {
		sb.WriteString("note: final line truncated (run aborted mid-write); analyzed the loadable prefix\n")
	}
	if r.Orphans > 0 {
		fmt.Fprintf(&sb, "note: %d orphan span(s) promoted to roots (parents never flushed)\n", r.Orphans)
	}
	fmt.Fprintf(&sb, "self-time coverage: %.1f%% of root duration\n\n", 100*r.Coverage)

	sb.WriteString("per-span aggregates (by self time):\n")
	rows := [][]string{{"NAME", "COUNT", "TOTAL", "SELF", "SELF%", "P50", "P95", "MAX"}}
	for _, s := range r.Stats {
		pct := 0.0
		if r.RootUS > 0 {
			pct = 100 * float64(s.SelfUS) / float64(r.RootUS)
		}
		rows = append(rows, []string{
			s.Name, fmt.Sprintf("%d", s.Count), fmtUS(s.TotalUS), fmtUS(s.SelfUS),
			fmt.Sprintf("%.1f", pct), fmtUSf(s.P50US), fmtUSf(s.P95US), fmtUS(s.MaxUS),
		})
	}
	writeAligned(&sb, rows)

	sb.WriteString("\ncritical path:\n")
	for _, p := range r.CriticalPath {
		fmt.Fprintf(&sb, "  %s%s  %s (self %s)\n",
			strings.Repeat("  ", p.Depth), p.Name, fmtUS(p.DurUS), fmtUS(p.SelfUS))
	}

	fmt.Fprintf(&sb, "\nslowest spans (top %d):\n", len(r.Slowest))
	rows = [][]string{{"NAME", "DUR", "SELF", "START", "TRACE", "ATTRS"}}
	for _, s := range r.Slowest {
		rows = append(rows, []string{
			s.Name, fmtUS(s.DurUS), fmtUS(s.SelfUS), fmtUS(s.StartUS), s.Trace, attrString(s.Attrs),
		})
	}
	writeAligned(&sb, rows)

	if len(r.EventStats) > 0 {
		sb.WriteString("\nevents:\n")
		rows = [][]string{{"NAME", "COUNT"}}
		for _, e := range r.EventStats {
			rows = append(rows, []string{e.Name, fmt.Sprintf("%d", e.Count)})
		}
		writeAligned(&sb, rows)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// attrString renders span attributes compactly and deterministically.
func attrString(attrs map[string]any) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%v", k, attrs[k]))
	}
	s := strings.Join(parts, " ")
	if len(s) > 60 {
		s = s[:57] + "..."
	}
	return s
}

// writeAligned prints rows with columns padded to their widest cell; the
// last column is left unpadded.
func writeAligned(sb *strings.Builder, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		sb.WriteString("  ")
		for i, cell := range row {
			if i == len(row)-1 {
				sb.WriteString(cell)
			} else {
				fmt.Fprintf(sb, "%-*s  ", widths[i], cell)
			}
		}
		sb.WriteString("\n")
	}
}
