package analyze

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/obs"
)

// KeyDepth is one adapter key's live queue depth.
type KeyDepth struct {
	Key   string  `json:"key"`
	Depth float64 `json:"depth"`
}

// TopStats is one refresh of the live operator view: what `knowtrans obs
// top` renders from consecutive /metrics.json snapshots. Quantiles are
// *rolling* — estimated from the bucket-count deltas between the two
// snapshots, so they describe the interval, not the process lifetime.
type TopStats struct {
	Inflight   int64      `json:"inflight"`
	Requests   int64      `json:"requests"`             // total served so far
	Delta      int64      `json:"delta"`                // served during the interval
	P50US      float64    `json:"p50_us"`               // rolling, from bucket deltas
	P95US      float64    `json:"p95_us"`               // rolling, from bucket deltas
	SlowTrace  string     `json:"slow_trace,omitempty"` // exemplar from the slowest active bucket
	QueueDepth []KeyDepth `json:"queue_depth,omitempty"`
}

// ServeLatencyMetric is the serve-layer request latency histogram BuildTop
// reads, and ServeInflightMetric the live request gauge. ServeQueuePrefix
// prefixes the per-adapter-key queue depth gauges.
const (
	ServeLatencyMetric  = "serve.request_us"
	ServeInflightMetric = "serve.inflight"
	ServeQueuePrefix    = "serve.queue_depth/"
)

// BuildTop derives one refresh from two registry snapshots (prev may be the
// zero value on the first poll, making the "interval" the whole lifetime).
func BuildTop(prev, cur obs.RegistrySnapshot) TopStats {
	s := TopStats{Inflight: int64(cur.Gauges[ServeInflightMetric])}
	for name, v := range cur.Gauges {
		if key, ok := strings.CutPrefix(name, ServeQueuePrefix); ok {
			s.QueueDepth = append(s.QueueDepth, KeyDepth{Key: key, Depth: v})
		}
	}
	sort.Slice(s.QueueDepth, func(i, j int) bool {
		if s.QueueDepth[i].Depth != s.QueueDepth[j].Depth {
			return s.QueueDepth[i].Depth > s.QueueDepth[j].Depth
		}
		return s.QueueDepth[i].Key < s.QueueDepth[j].Key
	})

	h, ok := cur.Histograms[ServeLatencyMetric]
	if !ok {
		return s
	}
	s.Requests = h.Count
	ph := prev.Histograms[ServeLatencyMetric]
	s.Delta = h.Count - ph.Count
	deltas := make([]int64, len(h.Bkt))
	var total int64
	for i := range h.Bkt {
		d := h.Bkt[i]
		if i < len(ph.Bkt) {
			d -= ph.Bkt[i]
		}
		if d < 0 { // server restarted between polls
			d = h.Bkt[i]
		}
		deltas[i] = d
		total += d
	}
	s.P50US = bucketQuantile(h.Le, deltas, total, 0.50)
	s.P95US = bucketQuantile(h.Le, deltas, total, 0.95)
	// Exemplar: the last trace ID stamped in the slowest bucket that saw
	// traffic this interval (falling back to lifetime buckets when the
	// interval was quiet).
	for i := len(deltas) - 1; i >= 0; i-- {
		if i < len(h.Exemplars) && h.Exemplars[i] != "" && (deltas[i] > 0 || total == 0) {
			s.SlowTrace = h.Exemplars[i]
			break
		}
	}
	return s
}

// bucketQuantile estimates a quantile from per-bucket counts over upper
// bounds le (one overflow bucket at the end), interpolating linearly within
// the crossing bucket.
func bucketQuantile(le []float64, counts []int64, total int64, q float64) float64 {
	if total <= 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		n := float64(c)
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			var lo, hi float64
			if i == 0 {
				lo = 0
			} else {
				lo = le[i-1]
			}
			if i < len(le) {
				hi = le[i]
			} else {
				hi = le[len(le)-1] // overflow: clamp at the last bound
				lo = hi
			}
			frac := (rank - cum) / n
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	return 0
}

// WriteText renders one refresh as the compact live view.
func (s TopStats) WriteText(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "inflight %d  served %d (+%d)  p50 %s  p95 %s",
		s.Inflight, s.Requests, s.Delta, fmtUSf(s.P50US), fmtUSf(s.P95US))
	if s.SlowTrace != "" {
		fmt.Fprintf(&sb, "  slow-trace %s", s.SlowTrace)
	}
	sb.WriteString("\n")
	if len(s.QueueDepth) > 0 {
		sb.WriteString("  queue depth by key:\n")
		for _, kd := range s.QueueDepth {
			fmt.Fprintf(&sb, "    %-24s %.0f\n", kd.Key, kd.Depth)
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
