// Package analyze is the consumption side of the observability layer: it
// loads the JSONL span traces and BENCH_run.json documents that
// internal/obs and `knowtrans experiment` produce, rebuilds the span tree,
// and answers the questions the raw records cannot — which stage dominates
// wall time, what the critical path through a run was, and whether a bench
// document regressed against a baseline.
//
// The package is pure analysis: it never writes telemetry, so it can be
// linked into tooling (the `knowtrans obs` subcommands, CI gates) without
// dragging the recording machinery along.
package analyze

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/obs"
)

// Node is one span in the reconstructed trace tree. Children are ordered
// by start time. SelfUS is the span's duration minus the duration of its
// children (clamped at zero when children overlap the parent's tail, which
// clock skew can produce).
type Node struct {
	Rec      obs.SpanRecord
	Children []*Node
	SelfUS   int64
}

// Trace is a parsed and reassembled trace: the span forest (multiple roots
// when a run traced several top-level operations), the structured events,
// and parse bookkeeping.
type Trace struct {
	Roots  []*Node
	Events []obs.SpanRecord
	Spans  int
	// Records holds every parsed record in file order (spans and events),
	// retained for record-level consumers — trace-ID filtering, follow mode —
	// that need more than the reassembled tree.
	Records []obs.SpanRecord
	// Truncated reports that the final line of the stream did not parse —
	// the signature of a run that aborted mid-write. The loadable prefix is
	// analyzed anyway.
	Truncated bool
	// Orphans counts spans whose parent never flushed (an aborted run's
	// open spans); they are promoted to roots so their subtrees stay
	// visible.
	Orphans int
}

// Load reads a JSONL trace stream leniently: a final line that fails to
// parse (truncated by an aborted run) is skipped and flagged, while a
// malformed line in the middle of the stream is a hard error.
func Load(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var recs []obs.SpanRecord
	var badLine int // 1-based index of first unparsable line, 0 = none
	line := 0
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		line++
		if len(raw) == 0 {
			continue
		}
		if badLine != 0 {
			return nil, fmt.Errorf("analyze: trace line %d is malformed (not a truncated tail: line %d follows)", badLine, line)
		}
		var rec obs.SpanRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			badLine = line
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("analyze: read trace: %w", err)
	}
	t := build(recs)
	t.Truncated = badLine != 0
	return t, nil
}

// LoadFile reads a trace file with Load.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("analyze: %w", err)
	}
	defer f.Close()
	t, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("analyze: %s: %w", path, err)
	}
	return t, nil
}

// build reassembles the span forest from flat records (file order = span
// end order, children before parents).
func build(recs []obs.SpanRecord) *Trace {
	t := &Trace{Records: recs}
	nodes := map[uint64]*Node{}
	var spans []*Node
	for _, rec := range recs {
		if rec.IsEvent() {
			t.Events = append(t.Events, rec)
			continue
		}
		n := &Node{Rec: rec}
		nodes[rec.Span] = n
		spans = append(spans, n)
	}
	t.Spans = len(spans)
	for _, n := range spans {
		p := n.Rec.Parent
		if p == 0 {
			t.Roots = append(t.Roots, n)
			continue
		}
		parent, ok := nodes[p]
		// A parent id only attaches within the same trace: a serve.request
		// span's parent is the *remote* span behind the traceparent header,
		// whose id lives in the client's process and must not collide with a
		// local span that happens to share the number. Remote-parented spans
		// become clean roots of their trace; a missing *local* parent is the
		// debris of an aborted run and still counts as an orphan.
		if ok && parent != n && parent.Rec.Trace == n.Rec.Trace {
			parent.Children = append(parent.Children, n)
			continue
		}
		if !n.Rec.Remote {
			t.Orphans++
		}
		t.Roots = append(t.Roots, n)
	}
	var finish func(n *Node)
	finish = func(n *Node) {
		sort.Slice(n.Children, func(i, j int) bool {
			return n.Children[i].Rec.StartUS < n.Children[j].Rec.StartUS
		})
		var childUS int64
		for _, c := range n.Children {
			childUS += c.Rec.DurUS
			finish(c)
		}
		n.SelfUS = n.Rec.DurUS - childUS
		if n.SelfUS < 0 {
			n.SelfUS = 0
		}
	}
	sort.Slice(t.Roots, func(i, j int) bool { return t.Roots[i].Rec.StartUS < t.Roots[j].Rec.StartUS })
	for _, r := range t.Roots {
		finish(r)
	}
	return t
}

// RootUS returns the summed duration of all root spans — the traced wall
// time of the run.
func (t *Trace) RootUS() int64 {
	var total int64
	for _, r := range t.Roots {
		total += r.Rec.DurUS
	}
	return total
}

// Walk visits every span depth-first (parents before children).
func (t *Trace) Walk(f func(n *Node, depth int)) {
	var rec func(n *Node, d int)
	rec = func(n *Node, d int) {
		f(n, d)
		for _, c := range n.Children {
			rec(c, d+1)
		}
	}
	for _, r := range t.Roots {
		rec(r, 0)
	}
}

// NameStat aggregates every span sharing one name: how often the stage
// ran, its total and self (exclusive) time, and the distribution of
// per-span durations.
type NameStat struct {
	Name    string  `json:"name"`
	Count   int     `json:"count"`
	TotalUS int64   `json:"total_us"`
	SelfUS  int64   `json:"self_us"`
	P50US   float64 `json:"p50_us"`
	P95US   float64 `json:"p95_us"`
	MaxUS   int64   `json:"max_us"`
}

// Aggregate computes per-span-name statistics, sorted by self time
// descending (the stages that themselves burn the clock come first).
// Because every span's self time is its duration minus its children's,
// summing SelfUS over all stats reproduces the root spans' total duration
// exactly on a complete trace — the invariant the `obs trace` coverage
// line reports.
func (t *Trace) Aggregate() []NameStat {
	byName := map[string]*NameStat{}
	durs := map[string][]int64{}
	t.Walk(func(n *Node, _ int) {
		s := byName[n.Rec.Name]
		if s == nil {
			s = &NameStat{Name: n.Rec.Name}
			byName[n.Rec.Name] = s
		}
		s.Count++
		s.TotalUS += n.Rec.DurUS
		s.SelfUS += n.SelfUS
		if n.Rec.DurUS > s.MaxUS {
			s.MaxUS = n.Rec.DurUS
		}
		durs[n.Rec.Name] = append(durs[n.Rec.Name], n.Rec.DurUS)
	})
	out := make([]NameStat, 0, len(byName))
	for name, s := range byName {
		ds := durs[name]
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		s.P50US = quantile(ds, 0.50)
		s.P95US = quantile(ds, 0.95)
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SelfUS != out[j].SelfUS {
			return out[i].SelfUS > out[j].SelfUS
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// quantile returns the q-quantile of sorted durations by linear
// interpolation between order statistics.
func quantile(sorted []int64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return float64(sorted[0])
	}
	pos := q * float64(n-1)
	i := int(pos)
	if i >= n-1 {
		return float64(sorted[n-1])
	}
	frac := pos - float64(i)
	return float64(sorted[i]) + frac*float64(sorted[i+1]-sorted[i])
}

// PathStep is one hop of the critical path.
type PathStep struct {
	Name   string `json:"name"`
	DurUS  int64  `json:"dur_us"`
	SelfUS int64  `json:"self_us"`
	Depth  int    `json:"depth"`
}

// CriticalPath descends from the longest root span into the longest child
// at every level — the chain of spans that bounded the run's wall time.
func (t *Trace) CriticalPath() []PathStep {
	if len(t.Roots) == 0 {
		return nil
	}
	cur := t.Roots[0]
	for _, r := range t.Roots[1:] {
		if r.Rec.DurUS > cur.Rec.DurUS {
			cur = r
		}
	}
	var path []PathStep
	depth := 0
	for cur != nil {
		path = append(path, PathStep{Name: cur.Rec.Name, DurUS: cur.Rec.DurUS, SelfUS: cur.SelfUS, Depth: depth})
		var next *Node
		for _, c := range cur.Children {
			if next == nil || c.Rec.DurUS > next.Rec.DurUS {
				next = c
			}
		}
		cur = next
		depth++
	}
	return path
}

// SlowSpan is one entry of the top-N slowest report. Trace carries the
// span's trace ID so a slow entry can be pulled whole with
// `obs trace -trace-id`.
type SlowSpan struct {
	Name    string         `json:"name"`
	Trace   string         `json:"trace,omitempty"`
	DurUS   int64          `json:"dur_us"`
	SelfUS  int64          `json:"self_us"`
	StartUS int64          `json:"start_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Slowest returns the n spans with the largest durations.
func (t *Trace) Slowest(n int) []SlowSpan {
	var all []SlowSpan
	t.Walk(func(nd *Node, _ int) {
		all = append(all, SlowSpan{
			Name: nd.Rec.Name, Trace: nd.Rec.Trace, DurUS: nd.Rec.DurUS, SelfUS: nd.SelfUS,
			StartUS: nd.Rec.StartUS, Attrs: nd.Rec.Attrs,
		})
	})
	sort.Slice(all, func(i, j int) bool {
		if all[i].DurUS != all[j].DurUS {
			return all[i].DurUS > all[j].DurUS
		}
		return all[i].StartUS < all[j].StartUS
	})
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	return all
}

// EventStat summarizes the structured events sharing one name.
type EventStat struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
}

// EventStats counts events per name, sorted by count descending.
func (t *Trace) EventStats() []EventStat {
	byName := map[string]int{}
	for _, e := range t.Events {
		byName[e.Name]++
	}
	out := make([]EventStat, 0, len(byName))
	for name, c := range byName {
		out = append(out, EventStat{Name: name, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Name < out[j].Name
	})
	return out
}
