package analyze

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/obs"
)

// PathReport is the end-to-end reconstruction of one request's journey: the
// spans of the requested trace itself, plus the shared-work spans from
// *other* traces that declared a link into it (a `serve.batch` span links
// every member request, so the batch that actually executed the model call
// — and its children — belong in the request's story even though batching
// hoisted them into their own trace).
type PathReport struct {
	TraceID string `json:"trace_id"`
	// Spans and Events count the records belonging to the trace itself.
	Spans  int `json:"spans"`
	Events int `json:"events"`
	// LinkedSpans counts the spans pulled in via links (shared work).
	LinkedSpans int `json:"linked_spans"`

	// Direct is the span forest of the trace itself, in start order.
	Direct []*Node `json:"-"`
	// DirectEvents are the trace's structured events, in file order.
	DirectEvents []obs.SpanRecord `json:"-"`
	// Linked holds the subtree roots of spans in other traces that link
	// into this one, in start order.
	Linked []*Node `json:"-"`
}

// FilterTrace reconstructs the path of one trace ID through the loaded
// stream. The result is empty (Spans == 0, LinkedSpans == 0) when the ID
// matches nothing — callers decide whether that is an error or a
// keep-polling signal (follow mode).
func (t *Trace) FilterTrace(id string) *PathReport {
	rep := &PathReport{TraceID: id}
	if id == "" {
		return rep
	}
	direct := map[uint64]bool{}
	t.Walk(func(n *Node, _ int) {
		if n.Rec.Trace == id {
			direct[n.Rec.Span] = true
		}
	})
	// Direct forest: spans of the trace whose tree parent is not also in
	// the trace (the build tree nests same-trace children already).
	var collectDirect func(n *Node)
	collectDirect = func(n *Node) {
		if n.Rec.Trace == id {
			rep.Direct = append(rep.Direct, n)
			countSpans(n, &rep.Spans)
			return
		}
		for _, c := range n.Children {
			collectDirect(c)
		}
	}
	for _, r := range t.Roots {
		collectDirect(r)
	}
	// Linked shared work: any span (in any trace) holding a link that names
	// this trace and one of its spans.
	t.Walk(func(n *Node, _ int) {
		for _, l := range n.Rec.Links {
			if l.Trace == id && direct[l.Span] {
				rep.Linked = append(rep.Linked, n)
				countSpans(n, &rep.LinkedSpans)
				break
			}
		}
	})
	sort.Slice(rep.Direct, func(i, j int) bool { return rep.Direct[i].Rec.StartUS < rep.Direct[j].Rec.StartUS })
	sort.Slice(rep.Linked, func(i, j int) bool { return rep.Linked[i].Rec.StartUS < rep.Linked[j].Rec.StartUS })
	for _, e := range t.Events {
		if e.Trace == id {
			rep.DirectEvents = append(rep.DirectEvents, e)
			rep.Events++
		}
	}
	return rep
}

func countSpans(n *Node, total *int) {
	*total++
	for _, c := range n.Children {
		countSpans(c, total)
	}
}

// Empty reports whether the filter matched nothing at all.
func (p *PathReport) Empty() bool {
	return p.Spans == 0 && p.LinkedSpans == 0 && p.Events == 0
}

// WriteText renders the path: the trace's own spans as an indented tree
// (events inlined under their parent span), then each linked shared-work
// subtree annotated with the link that pulled it in.
func (p *PathReport) WriteText(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace %s: %d span(s), %d event(s), %d linked span(s)\n",
		p.TraceID, p.Spans, p.Events, p.LinkedSpans)
	if p.Empty() {
		sb.WriteString("  (no records match)\n")
		_, err := io.WriteString(w, sb.String())
		return err
	}
	eventsByParent := map[uint64][]obs.SpanRecord{}
	for _, e := range p.DirectEvents {
		eventsByParent[e.Parent] = append(eventsByParent[e.Parent], e)
	}
	var render func(n *Node, depth int)
	render = func(n *Node, depth int) {
		pad := strings.Repeat("  ", depth)
		fmt.Fprintf(&sb, "  %s%s  %s (self %s)", pad, n.Rec.Name, fmtUS(n.Rec.DurUS), fmtUS(n.SelfUS))
		if a := attrString(n.Rec.Attrs); a != "" {
			fmt.Fprintf(&sb, "  %s", a)
		}
		sb.WriteString("\n")
		for _, e := range eventsByParent[n.Rec.Span] {
			fmt.Fprintf(&sb, "  %s  • %s", pad, e.Name)
			if a := attrString(e.Attrs); a != "" {
				fmt.Fprintf(&sb, "  %s", a)
			}
			sb.WriteString("\n")
		}
		for _, c := range n.Children {
			render(c, depth+1)
		}
	}
	for _, n := range p.Direct {
		render(n, 0)
	}
	for _, n := range p.Linked {
		fmt.Fprintf(&sb, "  ↳ shared work (trace %s links this request):\n", short(n.Rec.Trace))
		render(n, 1)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// short abbreviates a 32-hex trace ID for display.
func short(id string) string {
	if len(id) > 8 {
		return id[:8] + "…"
	}
	return id
}
