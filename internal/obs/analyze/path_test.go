package analyze

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
)

// serveLikeTrace writes the shape the serving layer produces: two
// remote-parented request spans in their own traces, one batch span in a
// third trace linking both, with a model-call child, plus an event inside
// one request.
func serveLikeTrace(t *testing.T) *Trace {
	t.Helper()
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	tr.SeedTraceIDs(11)
	ids := obs.NewIDSource(99)

	reqA := tr.StartSpanIn("serve.request", obs.SpanContext{Trace: ids.At(1), Span: ids.SpanIDAt(1)})
	reqB := tr.StartSpanIn("serve.request", obs.SpanContext{Trace: ids.At(2), Span: ids.SpanIDAt(2)})
	tr.EventIn(reqA.Context(), "serve.enqueue", "key", "em/abt")

	batch := tr.StartSpan("serve.batch")
	batch.Link(reqA.Context())
	batch.Link(reqB.Context())
	batch.SetAttr("size", 2)
	pred := batch.StartChild("serve.predict")
	pred.End()
	batch.End()
	reqA.End()
	reqB.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	trace, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

func TestRemoteParentsAreCleanRoots(t *testing.T) {
	tr := serveLikeTrace(t)
	// Two requests + one batch (predict nests under batch) = 3 roots, and
	// none of them are orphans: the request parents are remote by design.
	if len(tr.Roots) != 3 || tr.Orphans != 0 {
		t.Fatalf("roots = %d orphans = %d, want 3 and 0", len(tr.Roots), tr.Orphans)
	}
	for _, r := range tr.Roots {
		if r.Rec.Name == "serve.batch" && len(r.Children) != 1 {
			t.Fatalf("batch children = %d, want the predict span", len(r.Children))
		}
	}
}

// TestBuildDoesNotAttachAcrossTraces pins the span-id collision hazard: a
// remote parent id that happens to equal a local span id must not graft the
// request under an unrelated span.
func TestBuildDoesNotAttachAcrossTraces(t *testing.T) {
	recs := []obs.SpanRecord{
		{Span: 7, Name: "local.root", Trace: "aaaa", DurUS: 10},
		{Span: 8, Parent: 7, Name: "serve.request", Trace: "bbbb", Remote: true, DurUS: 5},
	}
	tr := build(recs)
	if len(tr.Roots) != 2 || tr.Orphans != 0 {
		t.Fatalf("roots = %d orphans = %d, want 2 clean roots", len(tr.Roots), tr.Orphans)
	}
	if len(tr.Roots[0].Children)+len(tr.Roots[1].Children) != 0 {
		t.Fatal("cross-trace parent id was attached")
	}
}

func TestFilterTraceReassemblesPath(t *testing.T) {
	tr := serveLikeTrace(t)
	var reqTrace string
	for _, r := range tr.Roots {
		if r.Rec.Name == "serve.request" {
			reqTrace = r.Rec.Trace
			break
		}
	}
	if reqTrace == "" {
		t.Fatal("no serve.request root found")
	}
	// The event was parented to reqA; pick that trace specifically.
	for _, e := range tr.Events {
		reqTrace = e.Trace
	}

	p := tr.FilterTrace(reqTrace)
	if p.Empty() {
		t.Fatal("filter matched nothing")
	}
	if p.Spans != 1 || p.Events != 1 {
		t.Fatalf("spans = %d events = %d, want 1 and 1", p.Spans, p.Events)
	}
	// The batch and its predict child ride in via the link.
	if p.LinkedSpans != 2 || len(p.Linked) != 1 || p.Linked[0].Rec.Name != "serve.batch" {
		t.Fatalf("linked = %d (%d roots), want the batch subtree", p.LinkedSpans, len(p.Linked))
	}

	var out bytes.Buffer
	if err := p.WriteText(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"serve.request", "serve.batch", "serve.predict", "serve.enqueue", "shared work"} {
		if !strings.Contains(text, want) {
			t.Errorf("path text missing %q:\n%s", want, text)
		}
	}

	if !tr.FilterTrace("feedfacefeedfacefeedfacefeedface").Empty() {
		t.Error("unknown trace id should filter to empty")
	}
}

func TestBuildTopRollingStats(t *testing.T) {
	le := []float64{10, 100, 1000}
	prev := obs.RegistrySnapshot{
		Histograms: map[string]obs.HistogramSnapshot{
			ServeLatencyMetric: {Count: 4, Le: le, Bkt: []int64{2, 2, 0, 0}},
		},
	}
	cur := obs.RegistrySnapshot{
		Gauges: map[string]float64{
			ServeInflightMetric:      3,
			ServeQueuePrefix + "em":  5,
			ServeQueuePrefix + "dcr": 1,
		},
		Histograms: map[string]obs.HistogramSnapshot{
			ServeLatencyMetric: {
				Count: 8, Le: le, Bkt: []int64{2, 2, 4, 0},
				Exemplars: []string{"", "old-trace", "slow-trace", ""},
			},
		},
	}
	s := BuildTop(prev, cur)
	if s.Inflight != 3 || s.Requests != 8 || s.Delta != 4 {
		t.Fatalf("stats = %+v", s)
	}
	// All 4 interval observations landed in (100, 1000]: quantiles must sit
	// inside that bucket, not the lifetime distribution.
	if s.P50US <= 100 || s.P50US > 1000 || s.P95US <= s.P50US {
		t.Fatalf("rolling quantiles p50=%g p95=%g not in the interval bucket", s.P50US, s.P95US)
	}
	if s.SlowTrace != "slow-trace" {
		t.Fatalf("slow trace = %q", s.SlowTrace)
	}
	if len(s.QueueDepth) != 2 || s.QueueDepth[0].Key != "em" || s.QueueDepth[0].Depth != 5 {
		t.Fatalf("queue depth = %+v", s.QueueDepth)
	}

	// First poll: zero prev, quantiles over the lifetime.
	s0 := BuildTop(obs.RegistrySnapshot{}, cur)
	if s0.Delta != 8 || s0.Requests != 8 {
		t.Fatalf("first poll = %+v", s0)
	}
	var out bytes.Buffer
	if err := s.WriteText(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "inflight 3") || !strings.Contains(out.String(), "slow-trace") {
		t.Fatalf("top text = %q", out.String())
	}
}
