package analyze

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/obs/profile"
)

// Resource-timeline analysis: the consumption side of the runtime sampler
// (internal/obs/profile). LoadTimeline reads the JSONL resource record a
// sampled run leaves behind; NewProfReport summarizes it (heap growth
// slope, GC pauses, goroutine-leak detection, alloc rates per window);
// DiffProf gates one run's report against a baseline's under budgets —
// the perf-regression sentinel `knowtrans obs prof -diff` exposes.

// LoadTimeline reads one runtime-metrics timeline file.
func LoadTimeline(path string) ([]profile.Sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("analyze: %w", err)
	}
	defer f.Close()
	rows, err := profile.ReadTimeline(f)
	if err != nil {
		return nil, fmt.Errorf("analyze: %s: %w", path, err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("analyze: %s: empty timeline", path)
	}
	return rows, nil
}

// ProfWindow summarizes one of the report's equal-duration windows; the
// windowed view is what monotonic-growth (leak) detection reads.
type ProfWindow struct {
	StartMS       int64   `json:"start_ms"`
	EndMS         int64   `json:"end_ms"`
	Samples       int     `json:"samples"`
	GoroutineMin  int64   `json:"goroutine_min"`
	GoroutineMax  int64   `json:"goroutine_max"`
	HeapMinBytes  uint64  `json:"heap_min_bytes"`
	HeapMaxBytes  uint64  `json:"heap_max_bytes"`
	AllocRateBPS  float64 `json:"alloc_rate_bps"`
	GCCyclesDelta uint64  `json:"gc_cycles_delta"`
}

// ProfReport is the summary of one runtime timeline.
type ProfReport struct {
	Samples   int     `json:"samples"`
	DurationS float64 `json:"duration_s"`

	HeapStartBytes uint64 `json:"heap_start_bytes"`
	HeapEndBytes   uint64 `json:"heap_end_bytes"`
	HeapMaxBytes   uint64 `json:"heap_max_bytes"`
	// HeapSlopeBPS is the least-squares slope of live heap bytes over
	// time: the headline "is this process growing" number.
	HeapSlopeBPS float64 `json:"heap_slope_bps"`
	// HeapGrowth flags monotonic per-window growth of the heap floor —
	// every window's minimum live heap above the previous window's, with
	// total growth beyond noise. The shape of a leak, as opposed to a
	// sawtooth that the slope of a short capture can misread.
	HeapGrowth bool `json:"heap_growth"`

	GoroutineStart int64 `json:"goroutine_start"`
	GoroutineEnd   int64 `json:"goroutine_end"`
	GoroutineMax   int64 `json:"goroutine_max"`
	// GoroutineLeak flags monotonic per-window growth of the goroutine
	// floor: the count's minimum rises window over window, which steady
	// traffic does not do but an accumulating leak must.
	GoroutineLeak bool `json:"goroutine_leak"`

	AllocTotalBytes uint64  `json:"alloc_total_bytes"`
	AllocRateBPS    float64 `json:"alloc_rate_bps"`
	GCCycles        uint64  `json:"gc_cycles"`
	GCPauseP50US    float64 `json:"gc_pause_p50_us"`
	GCPauseP95US    float64 `json:"gc_pause_p95_us"`
	SchedLatP95US   float64 `json:"sched_lat_p95_us"`

	Windows []ProfWindow `json:"windows,omitempty"`
}

// NewProfReport summarizes a timeline over the given number of analysis
// windows (default 4; clamped so every window holds at least two
// samples when possible).
func NewProfReport(rows []profile.Sample, windows int) *ProfReport {
	r := &ProfReport{Samples: len(rows)}
	if len(rows) == 0 {
		return r
	}
	first, last := rows[0], rows[len(rows)-1]
	r.DurationS = float64(last.TMS-first.TMS) / 1e3
	r.HeapStartBytes = first.HeapLiveBytes
	r.HeapEndBytes = last.HeapLiveBytes
	r.GoroutineStart = first.Goroutines
	r.GoroutineEnd = last.Goroutines
	r.GCCycles = last.GCCycles - first.GCCycles
	r.GCPauseP50US = last.GCPauseP50US
	r.GCPauseP95US = last.GCPauseP95US
	r.SchedLatP95US = last.SchedLatP95US
	r.AllocTotalBytes = last.TotalAllocBytes - first.TotalAllocBytes
	if r.DurationS > 0 {
		r.AllocRateBPS = float64(r.AllocTotalBytes) / r.DurationS
	}
	for _, s := range rows {
		if s.HeapLiveBytes > r.HeapMaxBytes {
			r.HeapMaxBytes = s.HeapLiveBytes
		}
		if s.Goroutines > r.GoroutineMax {
			r.GoroutineMax = s.Goroutines
		}
	}
	r.HeapSlopeBPS = heapSlope(rows)
	r.Windows = profWindows(rows, windows)
	r.GoroutineLeak = monotonicWindows(r.Windows,
		func(w ProfWindow) float64 { return float64(w.GoroutineMin) },
		func(w ProfWindow) float64 { return float64(w.GoroutineMax) }, 8, 0.10)
	r.HeapGrowth = monotonicWindows(r.Windows,
		func(w ProfWindow) float64 { return float64(w.HeapMinBytes) },
		func(w ProfWindow) float64 { return float64(w.HeapMaxBytes) }, 1<<20, 0.10)
	return r
}

// heapSlope fits live-heap bytes against time by least squares and
// returns bytes/second (0 for degenerate timelines).
func heapSlope(rows []profile.Sample) float64 {
	if len(rows) < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(rows))
	for _, s := range rows {
		x := float64(s.TMS) / 1e3
		y := float64(s.HeapLiveBytes)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// profWindows splits the timeline into up to n equal-duration windows.
func profWindows(rows []profile.Sample, n int) []ProfWindow {
	if n <= 0 {
		n = 4
	}
	for n > 1 && len(rows)/n < 2 {
		n--
	}
	span := rows[len(rows)-1].TMS - rows[0].TMS
	if span <= 0 {
		n = 1
	}
	out := make([]ProfWindow, 0, n)
	width := span/int64(n) + 1
	i := 0
	for w := 0; w < n && i < len(rows); w++ {
		lo := rows[0].TMS + int64(w)*width
		hi := lo + width
		win := ProfWindow{StartMS: lo, EndMS: hi}
		firstIdx := i
		for ; i < len(rows) && (rows[i].TMS < hi || w == n-1); i++ {
			s := rows[i]
			if win.Samples == 0 || s.Goroutines < win.GoroutineMin {
				win.GoroutineMin = s.Goroutines
			}
			if s.Goroutines > win.GoroutineMax {
				win.GoroutineMax = s.Goroutines
			}
			if win.Samples == 0 || s.HeapLiveBytes < win.HeapMinBytes {
				win.HeapMinBytes = s.HeapLiveBytes
			}
			if s.HeapLiveBytes > win.HeapMaxBytes {
				win.HeapMaxBytes = s.HeapLiveBytes
			}
			win.Samples++
		}
		if win.Samples == 0 {
			continue
		}
		firstS, lastS := rows[firstIdx], rows[i-1]
		win.GCCyclesDelta = lastS.GCCycles - firstS.GCCycles
		if dt := float64(lastS.TMS-firstS.TMS) / 1e3; dt > 0 {
			win.AllocRateBPS = float64(lastS.TotalAllocBytes-firstS.TotalAllocBytes) / dt
		}
		out = append(out, win)
	}
	return out
}

// monotonicWindows reports whether a metric's per-window floor AND
// ceiling both rise strictly across every consecutive window pair, with
// the total floor rise clearing an absolute slack and a relative
// fraction of the starting value — the monotonic-growth shape of a
// leak, with noise guards. Requiring the ceiling too is what separates
// a leak from a warmup phase: building retained state raises floors
// until retention plateaus, but its ceilings subside once the transient
// build garbage is collected, while a leak lifts both forever.
func monotonicWindows(ws []ProfWindow, lo, hi func(ProfWindow) float64, absSlack, relSlack float64) bool {
	if len(ws) < 3 {
		return false
	}
	for i := 1; i < len(ws); i++ {
		if lo(ws[i]) <= lo(ws[i-1]) || hi(ws[i]) <= hi(ws[i-1]) {
			return false
		}
	}
	first, last := lo(ws[0]), lo(ws[len(ws)-1])
	growth := last - first
	return growth > absSlack && (first == 0 || growth/first > relSlack)
}

// WriteJSON emits the report as indented JSON.
func (r *ProfReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

func fmtBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}

// WriteText renders the report for operators.
func (r *ProfReport) WriteText(w io.Writer) error {
	var out []byte
	add := func(format string, args ...any) { out = append(out, fmt.Sprintf(format, args...)...) }
	add("runtime timeline: %d samples over %.2fs\n", r.Samples, r.DurationS)
	add("heap live: start %s, end %s, max %s, slope %s/s\n",
		fmtBytes(float64(r.HeapStartBytes)), fmtBytes(float64(r.HeapEndBytes)),
		fmtBytes(float64(r.HeapMaxBytes)), fmtBytes(r.HeapSlopeBPS))
	add("goroutines: start %d, end %d, max %d\n", r.GoroutineStart, r.GoroutineEnd, r.GoroutineMax)
	add("alloc: %s total, %s/s\n", fmtBytes(float64(r.AllocTotalBytes)), fmtBytes(r.AllocRateBPS))
	add("gc: %d cycles, pause p50 %s p95 %s; sched latency p95 %s\n",
		r.GCCycles, fmtUSf(r.GCPauseP50US), fmtUSf(r.GCPauseP95US), fmtUSf(r.SchedLatP95US))
	if r.GoroutineLeak {
		add("WARNING: goroutine leak suspected — per-window goroutine floor grows monotonically\n")
	}
	if r.HeapGrowth {
		add("WARNING: unbounded heap growth suspected — per-window heap floor grows monotonically\n")
	}
	if len(r.Windows) > 1 {
		add("windows:\n")
		for i, win := range r.Windows {
			add("  [%d] %5.1fs-%5.1fs  goroutines %d-%d  heap %s-%s  alloc %s/s  gc +%d\n",
				i, float64(win.StartMS)/1e3, float64(win.EndMS)/1e3,
				win.GoroutineMin, win.GoroutineMax,
				fmtBytes(float64(win.HeapMinBytes)), fmtBytes(float64(win.HeapMaxBytes)),
				fmtBytes(win.AllocRateBPS), win.GCCyclesDelta)
		}
	}
	// Gate verdict summary, mirrored by the -gate exit code.
	if r.Unhealthy() {
		add("verdict: UNHEALTHY\n")
	} else {
		add("verdict: ok\n")
	}
	_, err := w.Write(out)
	return err
}

// Unhealthy reports whether the standalone gate (-gate) should fail: a
// suspected goroutine leak or unbounded heap growth.
func (r *ProfReport) Unhealthy() bool { return r.GoroutineLeak || r.HeapGrowth }

// ProfBudget tunes DiffProf's regression thresholds. A metric regresses
// when candidate > baseline*(1+RelTol) + slack; the absolute slacks keep
// tiny baselines (an idle 2MB heap, 20 goroutines) from flagging noise.
type ProfBudget struct {
	RelTol          float64 `json:"rel_tol"`
	GoroutineSlack  float64 `json:"goroutine_slack"`
	HeapSlackBytes  float64 `json:"heap_slack_bytes"`
	AllocSlackBPS   float64 `json:"alloc_slack_bps"`
	GCPauseSlackUS  float64 `json:"gc_pause_slack_us"`
	GCCyclesSlack   float64 `json:"gc_cycles_slack"`
	SchedLatSlackUS float64 `json:"sched_lat_slack_us"`
}

// DefaultProfBudget is the stock sentinel configuration: 25% relative
// headroom plus small absolute slacks.
func DefaultProfBudget() ProfBudget {
	return ProfBudget{
		RelTol:          0.25,
		GoroutineSlack:  16,
		HeapSlackBytes:  16 << 20,
		AllocSlackBPS:   16 << 20,
		GCPauseSlackUS:  2000,
		GCCyclesSlack:   8,
		SchedLatSlackUS: 2000,
	}
}

// ProfDelta is one gated metric's comparison.
type ProfDelta struct {
	Metric    string  `json:"metric"`
	A         float64 `json:"a"`
	B         float64 `json:"b"`
	Rel       float64 `json:"rel"`
	Budget    float64 `json:"budget"` // the threshold B had to stay under
	Regressed bool    `json:"regressed"`
}

// ProfDiff compares a candidate timeline report against a baseline's.
type ProfDiff struct {
	Deltas      []ProfDelta `json:"deltas"`
	Regressions int         `json:"regressions"`
	// LeakAppeared flags a leak/growth verdict present in the candidate
	// but not the baseline — always a regression regardless of budgets.
	LeakAppeared bool `json:"leak_appeared,omitempty"`
}

// HasRegressions reports whether the diff should fail a gate.
func (d *ProfDiff) HasRegressions() bool { return d.Regressions > 0 }

// DiffProf gates candidate b against baseline a. All gated metrics are
// lower-is-better resource costs; improvements never gate.
func DiffProf(a, b *ProfReport, bud ProfBudget) *ProfDiff {
	d := &ProfDiff{}
	check := func(metric string, av, bv, slack float64) {
		budget := av*(1+bud.RelTol) + slack
		pd := ProfDelta{Metric: metric, A: av, B: bv, Budget: budget, Regressed: bv > budget}
		if av != 0 {
			pd.Rel = (bv - av) / av
		}
		if pd.Regressed {
			d.Regressions++
		}
		d.Deltas = append(d.Deltas, pd)
	}
	check("goroutine_max", float64(a.GoroutineMax), float64(b.GoroutineMax), bud.GoroutineSlack)
	check("goroutine_end", float64(a.GoroutineEnd), float64(b.GoroutineEnd), bud.GoroutineSlack)
	check("heap_max_bytes", float64(a.HeapMaxBytes), float64(b.HeapMaxBytes), bud.HeapSlackBytes)
	check("heap_end_bytes", float64(a.HeapEndBytes), float64(b.HeapEndBytes), bud.HeapSlackBytes)
	check("alloc_rate_bps", a.AllocRateBPS, b.AllocRateBPS, bud.AllocSlackBPS)
	check("gc_pause_p95_us", a.GCPauseP95US, b.GCPauseP95US, bud.GCPauseSlackUS)
	check("gc_cycles", float64(a.GCCycles), float64(b.GCCycles), bud.GCCyclesSlack)
	check("sched_lat_p95_us", a.SchedLatP95US, b.SchedLatP95US, bud.SchedLatSlackUS)
	if (b.GoroutineLeak && !a.GoroutineLeak) || (b.HeapGrowth && !a.HeapGrowth) {
		d.LeakAppeared = true
		d.Regressions++
	}
	return d
}

// WriteJSON emits the diff as indented JSON.
func (d *ProfDiff) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteText renders the diff as an aligned table plus a verdict line.
func (d *ProfDiff) WriteText(w io.Writer) error {
	rows := [][]string{{"METRIC", "BASELINE", "CANDIDATE", "REL", "BUDGET", "VERDICT"}}
	for _, md := range d.Deltas {
		verdict := "ok"
		if md.Regressed {
			verdict = "REGRESSED"
		}
		rows = append(rows, []string{
			md.Metric,
			fmt.Sprintf("%.4g", md.A), fmt.Sprintf("%.4g", md.B),
			fmt.Sprintf("%+.1f%%", 100*md.Rel), fmt.Sprintf("%.4g", md.Budget),
			verdict,
		})
	}
	var sb strings.Builder
	writeAligned(&sb, rows)
	if d.LeakAppeared {
		sb.WriteString("leak verdict: candidate flags a goroutine/heap leak the baseline did not\n")
	}
	fmt.Fprintf(&sb, "%d regressed of %d gated metrics\n", d.Regressions, len(d.Deltas))
	_, err := io.WriteString(w, sb.String())
	return err
}
