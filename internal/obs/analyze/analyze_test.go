package analyze

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/obs"
)

// span builds one JSONL trace line with explicit timings so the tree
// arithmetic is deterministic.
func span(id, parent uint64, name string, startUS, durUS int64) string {
	if parent == 0 {
		return fmt.Sprintf(`{"span":%d,"name":%q,"start_us":%d,"dur_us":%d}`, id, name, startUS, durUS)
	}
	return fmt.Sprintf(`{"span":%d,"parent":%d,"name":%q,"start_us":%d,"dur_us":%d}`, id, parent, name, startUS, durUS)
}

// testTrace is a two-level run: root(1s) -> a(600ms){leaf(200ms)}, b(300ms).
// File order is span-end order (children before parents), as the Tracer
// writes it.
func testTrace() string {
	return strings.Join([]string{
		span(4, 2, "leaf", 100_000, 200_000),
		span(2, 1, "stage.a", 0, 600_000),
		span(3, 1, "stage.b", 600_000, 300_000),
		span(1, 0, "experiment", 0, 1_000_000),
	}, "\n") + "\n"
}

func TestBuildTreeAndSelfTime(t *testing.T) {
	tr, err := Load(strings.NewReader(testTrace()))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Spans != 4 || len(tr.Roots) != 1 || tr.Truncated || tr.Orphans != 0 {
		t.Fatalf("trace shape = %d spans, %d roots, trunc=%v orphans=%d",
			tr.Spans, len(tr.Roots), tr.Truncated, tr.Orphans)
	}
	root := tr.Roots[0]
	if root.Rec.Name != "experiment" || len(root.Children) != 2 {
		t.Fatalf("root = %q with %d children", root.Rec.Name, len(root.Children))
	}
	// Children ordered by start time.
	if root.Children[0].Rec.Name != "stage.a" || root.Children[1].Rec.Name != "stage.b" {
		t.Fatalf("child order = %q, %q", root.Children[0].Rec.Name, root.Children[1].Rec.Name)
	}
	// Self time = dur - children.
	if root.SelfUS != 100_000 {
		t.Errorf("root self = %d, want 100000", root.SelfUS)
	}
	if a := root.Children[0]; a.SelfUS != 400_000 {
		t.Errorf("stage.a self = %d, want 400000", a.SelfUS)
	}
}

// TestSelfTimeCoverage pins the acceptance invariant: summed self time
// across all aggregates equals the root span's duration on a complete
// trace (coverage 100%, comfortably within the 5% bound).
func TestSelfTimeCoverage(t *testing.T) {
	tr, err := Load(strings.NewReader(testTrace()))
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReport(tr, 10)
	if rep.RootUS != 1_000_000 {
		t.Fatalf("root us = %d", rep.RootUS)
	}
	var self int64
	for _, s := range rep.Stats {
		self += s.SelfUS
	}
	if self != rep.RootUS {
		t.Errorf("Σ self = %d, want %d", self, rep.RootUS)
	}
	if rep.Coverage < 0.95 || rep.Coverage > 1.05 {
		t.Errorf("coverage = %g, want within 5%% of 1", rep.Coverage)
	}
}

func TestAggregate(t *testing.T) {
	tr, err := Load(strings.NewReader(testTrace()))
	if err != nil {
		t.Fatal(err)
	}
	stats := tr.Aggregate()
	byName := map[string]NameStat{}
	for _, s := range stats {
		byName[s.Name] = s
	}
	a := byName["stage.a"]
	if a.Count != 1 || a.TotalUS != 600_000 || a.SelfUS != 400_000 || a.MaxUS != 600_000 {
		t.Errorf("stage.a stat = %+v", a)
	}
	if a.P50US != 600_000 || a.P95US != 600_000 {
		t.Errorf("stage.a quantiles = %g/%g", a.P50US, a.P95US)
	}
	// Sorted by self time: stage.a (400k) first.
	if stats[0].Name != "stage.a" {
		t.Errorf("stats[0] = %q, want stage.a", stats[0].Name)
	}
}

func TestCriticalPath(t *testing.T) {
	tr, err := Load(strings.NewReader(testTrace()))
	if err != nil {
		t.Fatal(err)
	}
	path := tr.CriticalPath()
	want := []string{"experiment", "stage.a", "leaf"}
	if len(path) != len(want) {
		t.Fatalf("path length = %d, want %d", len(path), len(want))
	}
	for i, p := range path {
		if p.Name != want[i] || p.Depth != i {
			t.Errorf("path[%d] = %q depth %d, want %q depth %d", i, p.Name, p.Depth, want[i], i)
		}
	}
}

func TestSlowest(t *testing.T) {
	tr, err := Load(strings.NewReader(testTrace()))
	if err != nil {
		t.Fatal(err)
	}
	slow := tr.Slowest(2)
	if len(slow) != 2 || slow[0].Name != "experiment" || slow[1].Name != "stage.a" {
		t.Fatalf("slowest = %+v", slow)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	ds := []int64{100, 200, 300, 400}
	if q := quantile(ds, 0.5); q != 250 {
		t.Errorf("p50 = %g, want 250", q)
	}
	if q := quantile(ds, 0); q != 100 {
		t.Errorf("p0 = %g, want 100", q)
	}
	if q := quantile(ds, 1); q != 400 {
		t.Errorf("p100 = %g, want 400", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Errorf("empty = %g, want 0", q)
	}
}

// TestTruncatedFinalLine is the aborted-run contract: a trace whose final
// line was cut mid-write still loads (skipping the tail), while a
// malformed line in the middle is a hard error.
func TestTruncatedFinalLine(t *testing.T) {
	full := testTrace()
	cut := full[:len(full)-20] // chop into the last record's JSON
	tr, err := Load(strings.NewReader(cut))
	if err != nil {
		t.Fatalf("truncated trace should load, got %v", err)
	}
	if !tr.Truncated {
		t.Error("Truncated flag not set")
	}
	if tr.Spans != 3 {
		t.Errorf("spans = %d, want 3 (the loadable prefix)", tr.Spans)
	}
	// The root never flushed, so its children surface as orphan roots.
	if tr.Orphans != 2 || len(tr.Roots) != 2 {
		t.Errorf("orphans = %d roots = %d, want 2 and 2", tr.Orphans, len(tr.Roots))
	}

	bad := "{\"span\":1,\"name\":\"x\",\"start_us\":0,\"dur_us\":1}\n{garbage\n" + testTrace()
	if _, err := Load(strings.NewReader(bad)); err == nil {
		t.Error("mid-stream garbage should be a hard error")
	}
}

// TestRealTracerRoundTrip drives the actual Tracer/Recorder (spans plus
// events) and checks the analyzer reassembles what it wrote, including the
// truncated-tail path on the same bytes.
func TestRealTracerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tracer := obs.NewTracer(&buf)
	rec := obs.NewRecorder(obs.NewRegistry(), tracer)

	recRoot, root := rec.StartSpan("experiment")
	for i := 0; i < 3; i++ {
		recIter, iter := recRoot.StartSpan("akb.iteration")
		recIter.Event("akb.candidate", "iter", i, "score", 90.0+float64(i), "accepted", i == 2)
		iter.End()
	}
	root.End()
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}

	tr, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Spans != 4 || len(tr.Events) != 3 || len(tr.Roots) != 1 {
		t.Fatalf("spans=%d events=%d roots=%d", tr.Spans, len(tr.Events), len(tr.Roots))
	}
	ev := tr.Events[0]
	if !ev.IsEvent() || ev.Name != "akb.candidate" || ev.Parent == 0 {
		t.Fatalf("event = %+v", ev)
	}
	if ev.Attrs["score"] != 90.0 || ev.Attrs["accepted"] != false {
		t.Errorf("event attrs = %v", ev.Attrs)
	}
	es := tr.EventStats()
	if len(es) != 1 || es[0].Count != 3 {
		t.Errorf("event stats = %+v", es)
	}

	// Same bytes, truncated mid-final-line: still loads, flagged.
	cut := buf.Bytes()[:buf.Len()-10]
	tr2, err := Load(bytes.NewReader(cut))
	if err != nil {
		t.Fatalf("truncated real trace should load: %v", err)
	}
	if !tr2.Truncated {
		t.Error("Truncated flag not set on cut real trace")
	}
}

func TestReportRendering(t *testing.T) {
	tr, err := Load(strings.NewReader(testTrace()))
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReport(tr, 3)
	var text bytes.Buffer
	if err := rep.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	out := text.String()
	for _, want := range []string{"experiment", "stage.a", "critical path", "self-time coverage: 100.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q in:\n%s", want, out)
		}
	}
	var js bytes.Buffer
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"self_time_coverage": 1`) {
		t.Errorf("json report missing coverage:\n%s", js.String())
	}
}
