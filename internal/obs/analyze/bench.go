package analyze

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

// BenchExperiment is the machine-readable record of one experiment run,
// the unit of the repository's bench trajectory (BENCH_run.json). The
// writer lives in cmd/knowtrans; the type lives here so analysis tooling
// and CI gates can load the documents without importing the CLI.
type BenchExperiment struct {
	ID          string  `json:"id"`
	Title       string  `json:"title"`
	WallSeconds float64 `json:"wall_seconds"`
	Scale       float64 `json:"scale"`
	Reps        int     `json:"reps"`
	Seed        int64   `json:"seed"`
	Rows        int     `json:"rows"`
	// Metrics holds the per-column averages of the rendered table — the
	// headline numbers (method scores, costs, round curves) in a form a
	// tracking script can diff across runs without parsing tables.
	Metrics map[string]float64 `json:"metrics"`
}

// BenchRun is the top-level BENCH_run.json document.
type BenchRun struct {
	SchemaVersion int               `json:"schema_version"`
	GeneratedAt   string            `json:"generated_at"`
	Experiments   []BenchExperiment `json:"experiments"`
	TotalSeconds  float64           `json:"total_wall_seconds"`
}

// LoadBenchRun reads one BENCH_run.json document. A BENCH_serve.json
// document (recognized by the absence of experiments and the presence of
// a report section) is accepted too: its numeric report and resources
// fields are flattened into a synthetic one-experiment run, so `obs diff`
// gates serving latency and allocation cost with the same machinery as
// experiment metrics.
func LoadBenchRun(path string) (*BenchRun, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("analyze: %w", err)
	}
	var run BenchRun
	if err := json.Unmarshal(blob, &run); err != nil {
		return nil, fmt.Errorf("analyze: %s: %w", path, err)
	}
	if len(run.Experiments) == 0 {
		if srun, ok := benchRunFromServeDoc(blob); ok {
			srun.SchemaVersion = run.SchemaVersion
			srun.GeneratedAt = run.GeneratedAt
			return srun, nil
		}
	}
	return &run, nil
}

// benchRunFromServeDoc flattens a BENCH_serve.json document into a
// synthetic one-experiment BenchRun. Numeric leaves of "report" and
// "resources" become metrics under the experiment id "serve"; wall time
// maps onto WallSeconds so it stays informational unless -wall-tol gates
// it. Non-numeric fields (sample trace IDs, timestamps) are skipped.
func benchRunFromServeDoc(blob []byte) (*BenchRun, bool) {
	var doc struct {
		Report    map[string]any `json:"report"`
		Resources map[string]any `json:"resources"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil || doc.Report == nil {
		return nil, false
	}
	exp := BenchExperiment{ID: "serve", Title: "serve selftest", Metrics: map[string]float64{}}
	flatten := func(prefix string, m map[string]any) {
		for k, v := range m {
			f, ok := v.(float64)
			if !ok {
				continue
			}
			if prefix == "" && k == "wall_s" {
				exp.WallSeconds = f
				continue
			}
			name := k
			if prefix != "" {
				name = prefix + "." + k
			}
			exp.Metrics[name] = f
		}
	}
	flatten("", doc.Report)
	flatten("resources", doc.Resources)
	if len(exp.Metrics) == 0 {
		return nil, false
	}
	return &BenchRun{Experiments: []BenchExperiment{exp}, TotalSeconds: exp.WallSeconds}, true
}

// DeltaClass classifies one metric comparison.
type DeltaClass string

const (
	DeltaUnchanged DeltaClass = "unchanged"
	DeltaImproved  DeltaClass = "improved"
	DeltaRegressed DeltaClass = "regressed"
	DeltaOnlyInA   DeltaClass = "only_in_a"
	DeltaOnlyInB   DeltaClass = "only_in_b"
)

// MetricDelta is the comparison of one metric across two bench documents.
type MetricDelta struct {
	Experiment string     `json:"experiment"`
	Metric     string     `json:"metric"`
	A          float64    `json:"a"`
	B          float64    `json:"b"`
	Rel        float64    `json:"rel"` // (b-a)/max(|a|,eps), signed
	Class      DeltaClass `json:"class"`
}

// DiffOptions tunes the bench comparison.
type DiffOptions struct {
	// RelTol is the relative change below which a metric counts as
	// unchanged. Zero means any change is significant — the determinism
	// gate's setting.
	RelTol float64
	// WallTol, when > 0, additionally gates per-experiment wall time: a
	// relative increase beyond it is a regression. Zero ignores wall time
	// (it is noisy and reported informationally only).
	WallTol float64
	// Strict escalates improvements and structural changes (experiments or
	// metrics present on one side only) to regressions, turning the diff
	// into an any-change gate.
	Strict bool
	// LowerIsBetter marks metric-name substrings (case-insensitive) whose
	// direction is inverted: a decrease is an improvement. Defaults to
	// cost/latency/seconds/time/_us when nil.
	LowerIsBetter []string
}

// DefaultLowerIsBetter are the metric-name substrings treated as
// lower-is-better by default: the cost and latency columns of Table III,
// plus the serve-doc failure counters and resource costs (allocations,
// GC work, goroutines, heap) the perf sentinel gates, and the jobs-doc
// loss counters (row failures, duplicated transfers).
var DefaultLowerIsBetter = []string{
	"cost", "latency", "seconds", "time", "_us", "price", "token",
	"alloc", "bytes", "gc_", "goroutine", "heap",
	"non_2xx", "mismatch", "miss", "shed", "cold",
	"fail", "duplicate",
}

func (o DiffOptions) lowerIsBetter(metric string) bool {
	subs := o.LowerIsBetter
	if subs == nil {
		subs = DefaultLowerIsBetter
	}
	m := strings.ToLower(metric)
	for _, s := range subs {
		if strings.Contains(m, strings.ToLower(s)) {
			return true
		}
	}
	return false
}

// BenchDiff is the outcome of comparing two bench documents.
type BenchDiff struct {
	Deltas      []MetricDelta `json:"deltas"`
	Regressions int           `json:"regressions"`
	Improved    int           `json:"improved"`
	Unchanged   int           `json:"unchanged"`
	// WallDeltas reports per-experiment wall-time changes (always
	// informational unless WallTol gated them).
	WallDeltas []MetricDelta `json:"wall_deltas,omitempty"`
}

// HasRegressions reports whether the diff should fail a gate.
func (d *BenchDiff) HasRegressions() bool { return d.Regressions > 0 }

// DiffBenchRuns compares two bench documents metric-by-metric. Experiments
// are matched by id; within an experiment, metrics by column name. The
// regression direction respects DiffOptions.LowerIsBetter.
func DiffBenchRuns(a, b *BenchRun, opt DiffOptions) *BenchDiff {
	d := &BenchDiff{}
	byID := func(run *BenchRun) map[string]BenchExperiment {
		m := make(map[string]BenchExperiment, len(run.Experiments))
		for _, e := range run.Experiments {
			m[e.ID] = e
		}
		return m
	}
	am, bm := byID(a), byID(b)
	ids := make([]string, 0, len(am)+len(bm))
	for id := range am {
		ids = append(ids, id)
	}
	for id := range bm {
		if _, ok := am[id]; !ok {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)

	for _, id := range ids {
		ae, aok := am[id]
		be, bok := bm[id]
		switch {
		case !bok:
			d.addStructural(opt, MetricDelta{Experiment: id, Metric: "*", Class: DeltaOnlyInA})
			continue
		case !aok:
			d.addStructural(opt, MetricDelta{Experiment: id, Metric: "*", Class: DeltaOnlyInB})
			continue
		}
		names := make([]string, 0, len(ae.Metrics)+len(be.Metrics))
		for n := range ae.Metrics {
			names = append(names, n)
		}
		for n := range be.Metrics {
			if _, ok := ae.Metrics[n]; !ok {
				names = append(names, n)
			}
		}
		sort.Strings(names)
		for _, n := range names {
			av, aok := ae.Metrics[n]
			bv, bok := be.Metrics[n]
			switch {
			case !bok:
				d.addStructural(opt, MetricDelta{Experiment: id, Metric: n, A: av, Class: DeltaOnlyInA})
				continue
			case !aok:
				d.addStructural(opt, MetricDelta{Experiment: id, Metric: n, B: bv, Class: DeltaOnlyInB})
				continue
			}
			md := classify(id, n, av, bv, opt.RelTol, opt.lowerIsBetter(n))
			if opt.Strict && md.Class == DeltaImproved {
				md.Class = DeltaRegressed
			}
			switch md.Class {
			case DeltaRegressed:
				d.Regressions++
			case DeltaImproved:
				d.Improved++
			default:
				d.Unchanged++
			}
			d.Deltas = append(d.Deltas, md)
		}
		// Wall time: informational, gated only by WallTol.
		wd := classify(id, "wall_seconds", ae.WallSeconds, be.WallSeconds, opt.WallTol, true)
		if opt.WallTol <= 0 {
			if wd.Class == DeltaRegressed || wd.Class == DeltaImproved {
				wd.Class = DeltaUnchanged
			}
		} else if wd.Class == DeltaRegressed {
			d.Regressions++
		}
		d.WallDeltas = append(d.WallDeltas, wd)
	}
	return d
}

// addStructural records a one-sided experiment or metric. Disappearing data
// always gates (a metric you stopped measuring cannot prove it didn't
// regress); data that is new on the B side gates only under Strict.
func (d *BenchDiff) addStructural(opt DiffOptions, md MetricDelta) {
	if md.Class == DeltaOnlyInA || opt.Strict {
		d.Regressions++
	}
	d.Deltas = append(d.Deltas, md)
}

func classify(exp, metric string, a, b, tol float64, lowerBetter bool) MetricDelta {
	md := MetricDelta{Experiment: exp, Metric: metric, A: a, B: b}
	den := math.Abs(a)
	if den < 1e-12 {
		den = 1e-12
	}
	md.Rel = (b - a) / den
	switch {
	case math.Abs(md.Rel) <= tol || a == b:
		md.Class = DeltaUnchanged
	case (md.Rel < 0) == lowerBetter:
		md.Class = DeltaImproved
	default:
		md.Class = DeltaRegressed
	}
	return md
}

// WriteJSON emits the diff as indented JSON.
func (d *BenchDiff) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteText renders the diff as an aligned table: every changed metric,
// then a summary line. Unchanged metrics are elided unless verbose.
func (d *BenchDiff) WriteText(w io.Writer, verbose bool) error {
	var sb strings.Builder
	rows := [][]string{{"EXPERIMENT", "METRIC", "A", "B", "REL", "CLASS"}}
	emit := func(md MetricDelta) {
		rows = append(rows, []string{
			md.Experiment, md.Metric,
			fmt.Sprintf("%.4g", md.A), fmt.Sprintf("%.4g", md.B),
			fmt.Sprintf("%+.2f%%", 100*md.Rel), string(md.Class),
		})
	}
	for _, md := range d.Deltas {
		if verbose || md.Class != DeltaUnchanged {
			emit(md)
		}
	}
	for _, md := range d.WallDeltas {
		if verbose {
			emit(md)
		}
	}
	if len(rows) > 1 {
		writeAligned(&sb, rows)
	} else {
		sb.WriteString("  (no metric changes)\n")
	}
	fmt.Fprintf(&sb, "\n%d regressed, %d improved, %d unchanged\n",
		d.Regressions, d.Improved, d.Unchanged)
	_, err := io.WriteString(w, sb.String())
	return err
}
