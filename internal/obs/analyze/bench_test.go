package analyze

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func benchRun(exps ...BenchExperiment) *BenchRun {
	return &BenchRun{SchemaVersion: 1, Experiments: exps}
}

func exp(id string, wall float64, metrics map[string]float64) BenchExperiment {
	return BenchExperiment{ID: id, WallSeconds: wall, Metrics: metrics}
}

func TestDiffIdenticalRuns(t *testing.T) {
	a := benchRun(exp("table2", 10, map[string]float64{"KnowTrans-7B": 85.5, "Jellyfish-7B": 80.1}))
	b := benchRun(exp("table2", 12, map[string]float64{"KnowTrans-7B": 85.5, "Jellyfish-7B": 80.1}))
	d := DiffBenchRuns(a, b, DiffOptions{Strict: true})
	if d.HasRegressions() {
		t.Fatalf("identical metrics flagged: %+v", d)
	}
	if d.Unchanged != 2 {
		t.Errorf("unchanged = %d, want 2", d.Unchanged)
	}
	// Wall time differs but is informational by default.
	if len(d.WallDeltas) != 1 || d.WallDeltas[0].Class != DeltaUnchanged {
		t.Errorf("wall deltas = %+v", d.WallDeltas)
	}
}

func TestDiffScoreRegression(t *testing.T) {
	a := benchRun(exp("table2", 10, map[string]float64{"KnowTrans-7B": 85.5}))
	b := benchRun(exp("table2", 10, map[string]float64{"KnowTrans-7B": 80.0}))
	d := DiffBenchRuns(a, b, DiffOptions{})
	if !d.HasRegressions() || d.Regressions != 1 {
		t.Fatalf("score drop not flagged: %+v", d)
	}
	if d.Deltas[0].Class != DeltaRegressed || d.Deltas[0].Rel >= 0 {
		t.Errorf("delta = %+v", d.Deltas[0])
	}
}

func TestDiffImprovementAndStrict(t *testing.T) {
	a := benchRun(exp("table2", 10, map[string]float64{"KnowTrans-7B": 80.0}))
	b := benchRun(exp("table2", 10, map[string]float64{"KnowTrans-7B": 85.5}))
	if d := DiffBenchRuns(a, b, DiffOptions{}); d.HasRegressions() || d.Improved != 1 {
		t.Fatalf("improvement misclassified: %+v", d)
	}
	// Under -strict any change gates.
	if d := DiffBenchRuns(a, b, DiffOptions{Strict: true}); !d.HasRegressions() {
		t.Fatal("strict should flag improvements too")
	}
}

func TestDiffLowerIsBetter(t *testing.T) {
	a := benchRun(exp("table3", 10, map[string]float64{"Cost/query ($)": 0.004, "Latency (s)": 2.0}))
	b := benchRun(exp("table3", 10, map[string]float64{"Cost/query ($)": 0.002, "Latency (s)": 3.0}))
	d := DiffBenchRuns(a, b, DiffOptions{})
	byMetric := map[string]DeltaClass{}
	for _, md := range d.Deltas {
		byMetric[md.Metric] = md.Class
	}
	if byMetric["Cost/query ($)"] != DeltaImproved {
		t.Errorf("cost drop = %v, want improved", byMetric["Cost/query ($)"])
	}
	if byMetric["Latency (s)"] != DeltaRegressed {
		t.Errorf("latency rise = %v, want regressed", byMetric["Latency (s)"])
	}
}

func TestDiffRelTolMasksNoise(t *testing.T) {
	a := benchRun(exp("table2", 10, map[string]float64{"KnowTrans-7B": 85.0}))
	b := benchRun(exp("table2", 10, map[string]float64{"KnowTrans-7B": 84.9}))
	if d := DiffBenchRuns(a, b, DiffOptions{RelTol: 0.01}); d.HasRegressions() {
		t.Fatalf("sub-tolerance change flagged: %+v", d)
	}
	if d := DiffBenchRuns(a, b, DiffOptions{RelTol: 0.0001}); !d.HasRegressions() {
		t.Fatal("super-tolerance change not flagged")
	}
}

func TestDiffStructuralChanges(t *testing.T) {
	a := benchRun(
		exp("table2", 10, map[string]float64{"KnowTrans-7B": 85, "Gone": 1}),
		exp("fig4", 5, map[string]float64{"KnowTrans-7B": 80}),
	)
	b := benchRun(exp("table2", 10, map[string]float64{"KnowTrans-7B": 85, "New": 2}))
	d := DiffBenchRuns(a, b, DiffOptions{})
	// Disappearing metric and disappearing experiment both gate; the new
	// metric is informational without -strict.
	if d.Regressions != 2 {
		t.Fatalf("regressions = %d, want 2 (missing metric + missing experiment): %+v", d.Regressions, d.Deltas)
	}
	ds := DiffBenchRuns(a, b, DiffOptions{Strict: true})
	if ds.Regressions != 3 {
		t.Fatalf("strict regressions = %d, want 3: %+v", ds.Regressions, ds.Deltas)
	}
}

func TestDiffWallTolGate(t *testing.T) {
	a := benchRun(exp("table2", 10, map[string]float64{"M": 1}))
	b := benchRun(exp("table2", 15, map[string]float64{"M": 1}))
	if d := DiffBenchRuns(a, b, DiffOptions{}); d.HasRegressions() {
		t.Fatal("wall time gated without WallTol")
	}
	if d := DiffBenchRuns(a, b, DiffOptions{WallTol: 0.2}); !d.HasRegressions() {
		t.Fatal("50% wall increase not gated at WallTol=0.2")
	}
}

func TestDiffRendering(t *testing.T) {
	a := benchRun(exp("table2", 10, map[string]float64{"KnowTrans-7B": 85.5}))
	b := benchRun(exp("table2", 10, map[string]float64{"KnowTrans-7B": 80.0}))
	d := DiffBenchRuns(a, b, DiffOptions{})
	var buf bytes.Buffer
	if err := d.WriteText(&buf, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"table2", "KnowTrans-7B", "regressed", "1 regressed"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff text missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"class": "regressed"`) {
		t.Errorf("diff json missing class:\n%s", buf.String())
	}
}

func TestLoadBenchRun(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_run.json")
	doc := `{"schema_version":1,"experiments":[{"id":"table2","wall_seconds":1.5,"metrics":{"M":42}}],"total_wall_seconds":1.5}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	run, err := LoadBenchRun(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Experiments) != 1 || run.Experiments[0].Metrics["M"] != 42 {
		t.Fatalf("loaded run = %+v", run)
	}
	if _, err := LoadBenchRun(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should error")
	}
}

// TestLoadBenchRunServeDoc pins the serve-doc fallback: a BENCH_serve.json
// document loads as a synthetic one-experiment run whose metrics carry the
// report and resources numbers, and diffing two of them gates resource
// regressions with lower-is-better direction.
func TestLoadBenchRunServeDoc(t *testing.T) {
	dir := t.TempDir()
	write := func(name, doc string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	baseDoc := `{"schema_version":3,"generated_at":"x",
		"report":{"requests":256,"non_2xx":0,"wall_s":1.2,"throughput_rps":210,"p95_us":9000,"sample_trace":"abc"},
		"resources":{"bytes_per_op":50000,"allocs_per_op":400,"gc_cycles":12,"goroutines_end":20}}`
	a, err := LoadBenchRun(write("a.json", baseDoc))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Experiments) != 1 || a.Experiments[0].ID != "serve" {
		t.Fatalf("serve doc experiments = %+v", a.Experiments)
	}
	m := a.Experiments[0].Metrics
	if m["p95_us"] != 9000 || m["resources.bytes_per_op"] != 50000 || m["throughput_rps"] != 210 {
		t.Fatalf("flattened metrics = %v", m)
	}
	if _, ok := m["sample_trace"]; ok {
		t.Error("non-numeric field leaked into metrics")
	}
	if a.Experiments[0].WallSeconds != 1.2 {
		t.Errorf("wall_s not mapped: %g", a.Experiments[0].WallSeconds)
	}

	// Identical docs: clean under any tolerance.
	b, err := LoadBenchRun(write("b.json", baseDoc))
	if err != nil {
		t.Fatal(err)
	}
	if d := DiffBenchRuns(a, b, DiffOptions{RelTol: 0.25}); d.HasRegressions() {
		t.Fatalf("self serve-diff regressed: %+v", d.Deltas)
	}

	// Doctored candidate: bytes/op and allocs/op ballooned — must gate.
	worseDoc := `{"schema_version":3,
		"report":{"requests":256,"non_2xx":0,"wall_s":1.2,"throughput_rps":208,"p95_us":9100},
		"resources":{"bytes_per_op":500000,"allocs_per_op":4000,"gc_cycles":12,"goroutines_end":20}}`
	w, err := LoadBenchRun(write("w.json", worseDoc))
	if err != nil {
		t.Fatal(err)
	}
	d := DiffBenchRuns(a, w, DiffOptions{RelTol: 0.25})
	if !d.HasRegressions() {
		t.Fatal("10x bytes_per_op not flagged")
	}
	var names []string
	for _, md := range d.Deltas {
		if md.Class == DeltaRegressed {
			names = append(names, md.Metric)
		}
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "resources.bytes_per_op") || !strings.Contains(joined, "resources.allocs_per_op") {
		t.Errorf("regressed metrics = %v", names)
	}
}
