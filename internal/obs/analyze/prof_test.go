package analyze

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs/profile"
)

// steadyTimeline fabricates a healthy run: flat goroutine count, sawtooth
// heap around a stable floor, steady allocation.
func steadyTimeline(n int) []profile.Sample {
	rows := make([]profile.Sample, n)
	for i := range rows {
		heap := uint64(8 << 20)
		if i%4 == 1 {
			heap += 2 << 20 // sawtooth peak, floor unchanged
		}
		rows[i] = profile.Sample{
			TMS:             int64(i * 100),
			Seq:             int64(i + 1),
			Goroutines:      20 + int64(i%3),
			HeapLiveBytes:   heap,
			HeapObjects:     10000,
			TotalAllocBytes: uint64(1<<20) * uint64(i+1),
			GCCycles:        uint64(i / 4),
			GCPauseP50US:    50,
			GCPauseP95US:    200,
			SchedLatP50US:   10,
			SchedLatP95US:   80,
		}
	}
	return rows
}

// leakyTimeline fabricates a leak: goroutines and heap floor both grow
// monotonically and substantially.
func leakyTimeline(n int) []profile.Sample {
	rows := steadyTimeline(n)
	for i := range rows {
		rows[i].Goroutines = 20 + int64(i*8)
		rows[i].HeapLiveBytes = uint64(8<<20) + uint64(i)*(1<<20)
		rows[i].TotalAllocBytes = uint64(4<<20) * uint64(i+1)
	}
	return rows
}

func TestProfReportSteady(t *testing.T) {
	r := NewProfReport(steadyTimeline(40), 4)
	if r.Samples != 40 {
		t.Fatalf("Samples = %d", r.Samples)
	}
	if r.GoroutineLeak {
		t.Error("steady run flagged as goroutine leak")
	}
	if r.HeapGrowth {
		t.Error("steady run flagged as heap growth")
	}
	if r.Unhealthy() {
		t.Error("steady run unhealthy")
	}
	if r.DurationS <= 0 || r.AllocRateBPS <= 0 {
		t.Errorf("duration %g rate %g", r.DurationS, r.AllocRateBPS)
	}
	if len(r.Windows) != 4 {
		t.Errorf("windows = %d, want 4", len(r.Windows))
	}
	// Slope of a flat-floor sawtooth should be near zero relative to heap size.
	if r.HeapSlopeBPS > 1<<20 || r.HeapSlopeBPS < -(1<<20) {
		t.Errorf("steady slope = %g B/s", r.HeapSlopeBPS)
	}
	var text bytes.Buffer
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "verdict: ok") {
		t.Errorf("text missing ok verdict:\n%s", text.String())
	}
}

// warmupTimeline fabricates a warmup-then-plateau run: building retained
// state (adapters, artifact zoo) raises the heap floor early, then
// retention plateaus and the ceilings subside as the transient build
// garbage is collected. Not a leak.
func warmupTimeline(n int) []profile.Sample {
	rows := steadyTimeline(n)
	for i := range rows {
		switch {
		case i < n/2: // warmup: floor climbs, churn spikes the ceiling
			rows[i].HeapLiveBytes = uint64(8<<20) + uint64(i)*(8<<20)
			if i%3 == 1 {
				rows[i].HeapLiveBytes += 64 << 20
			}
		default: // plateau: retention drifts up mildly, ceilings subside
			rows[i].HeapLiveBytes = uint64(8<<20) + uint64(n/2)*(8<<20) +
				uint64(i)*(1<<17) + uint64(i%4)<<20
		}
	}
	return rows
}

func TestProfReportWarmupIsNotALeak(t *testing.T) {
	r := NewProfReport(warmupTimeline(40), 4)
	if r.HeapGrowth {
		t.Error("warmup-then-plateau run flagged as heap growth")
	}
	if r.Unhealthy() {
		t.Error("warmup-then-plateau run unhealthy")
	}
}

func TestProfReportDetectsLeaks(t *testing.T) {
	r := NewProfReport(leakyTimeline(40), 4)
	if !r.GoroutineLeak {
		t.Error("goroutine leak not detected")
	}
	if !r.HeapGrowth {
		t.Error("heap growth not detected")
	}
	if !r.Unhealthy() {
		t.Error("leaky run reported healthy")
	}
	if r.HeapSlopeBPS <= 0 {
		t.Errorf("leaky slope = %g, want > 0", r.HeapSlopeBPS)
	}
	var text bytes.Buffer
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	out := text.String()
	if !strings.Contains(out, "goroutine leak suspected") || !strings.Contains(out, "UNHEALTHY") {
		t.Errorf("text missing leak warnings:\n%s", out)
	}
}

func TestProfReportDegenerate(t *testing.T) {
	if r := NewProfReport(nil, 4); r.Samples != 0 || r.Unhealthy() {
		t.Errorf("empty timeline report: %+v", r)
	}
	one := steadyTimeline(1)
	if r := NewProfReport(one, 4); r.Unhealthy() || r.Samples != 1 {
		t.Errorf("single-sample report: %+v", r)
	}
	// Few samples: windows clamp rather than divide by zero.
	r := NewProfReport(steadyTimeline(3), 8)
	if len(r.Windows) == 0 {
		t.Error("no windows for short timeline")
	}
}

func TestDiffProfSelfIsClean(t *testing.T) {
	r := NewProfReport(steadyTimeline(40), 4)
	d := DiffProf(r, r, DefaultProfBudget())
	if d.HasRegressions() {
		var b bytes.Buffer
		d.WriteText(&b)
		t.Fatalf("self-diff regressed:\n%s", b.String())
	}
}

func TestDiffProfCatchesRegression(t *testing.T) {
	base := NewProfReport(steadyTimeline(40), 4)
	cand := NewProfReport(leakyTimeline(40), 4)
	d := DiffProf(base, cand, DefaultProfBudget())
	if !d.HasRegressions() {
		t.Fatal("leaky candidate passed diff")
	}
	if !d.LeakAppeared {
		t.Error("LeakAppeared not set")
	}
	var regressed []string
	for _, md := range d.Deltas {
		if md.Regressed {
			regressed = append(regressed, md.Metric)
		}
	}
	joined := strings.Join(regressed, ",")
	if !strings.Contains(joined, "goroutine_max") || !strings.Contains(joined, "heap_max_bytes") {
		t.Errorf("regressed metrics = %v", regressed)
	}
	var text bytes.Buffer
	if err := d.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "REGRESSED") {
		t.Errorf("diff text missing REGRESSED:\n%s", text.String())
	}
	// Improvements never gate: leaky as baseline, steady as candidate.
	if d := DiffProf(cand, base, DefaultProfBudget()); d.HasRegressions() {
		t.Error("improvement flagged as regression")
	}
}

func TestDiffProfJSONRoundTrip(t *testing.T) {
	d := DiffProf(NewProfReport(steadyTimeline(20), 4), NewProfReport(leakyTimeline(20), 4), DefaultProfBudget())
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back ProfDiff
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Regressions != d.Regressions {
		t.Errorf("round trip regressions %d != %d", back.Regressions, d.Regressions)
	}
}

func TestLoadTimeline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "runtime.jsonl")
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, s := range steadyTimeline(5) {
		if err := enc.Encode(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	rows, err := LoadTimeline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	if _, err := LoadTimeline(filepath.Join(dir, "missing.jsonl")); err == nil {
		t.Error("missing file did not error")
	}
	empty := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTimeline(empty); err == nil {
		t.Error("empty timeline did not error")
	}
}
