// Package obs is the stdlib-only observability layer of the reproduction:
// a concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms with quantile summaries), hierarchical span tracing serialized
// to JSONL, and a nil-safe Recorder that threads both through the
// SKC/AKB pipeline at zero cost when disabled.
//
// Everything the paper's evaluation reasons about — AKB's per-iteration
// candidate scores (Fig. 5/7), SKC's learned λ interpolation weights
// (Table VI), per-method latency and oracle cost (Table III) — is exposed
// here as named metrics and spans, so `knowtrans experiment ... -trace
// t.jsonl -metrics m.json` yields a machine-readable run record.
package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing (well, signed-delta) counter safe
// for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-write-wins float64 value safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value (zero if never set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram safe for concurrent use. Bucket i
// counts observations v <= bounds[i]; one overflow bucket counts the rest.
// Quantiles are estimated by linear interpolation within the bucket that
// crosses the requested rank, which is exact enough for latency summaries.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last = overflow
	exemp  []atomic.Pointer[string]

	count atomic.Int64
	sum   atomic.Uint64 // float64 bits, CAS-accumulated
	min   atomic.Uint64 // float64 bits
	max   atomic.Uint64 // float64 bits
	init  atomic.Bool   // min/max seeded
}

// newHistogram builds a histogram over sorted upper bounds.
func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{
		bounds: bs,
		counts: make([]atomic.Int64, len(bs)+1),
		exemp:  make([]atomic.Pointer[string], len(bs)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	atomicAddFloat(&h.sum, v)
	h.updateMinMax(v)
}

// ObserveExemplar records one value like Observe and, when exemplar is
// non-empty, remembers it as the last exemplar of the bucket the value
// landed in. The serving layer stamps trace IDs here, so a latency bucket
// in /metrics.json always names a concrete recent trace to pull with
// `knowtrans obs trace -trace-id`.
func (h *Histogram) ObserveExemplar(v float64, exemplar string) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	atomicAddFloat(&h.sum, v)
	h.updateMinMax(v)
	if exemplar != "" {
		h.exemp[i].Store(&exemplar)
	}
}

func (h *Histogram) updateMinMax(v float64) {
	if h.init.CompareAndSwap(false, true) {
		h.min.Store(math.Float64bits(v))
		h.max.Store(math.Float64bits(v))
		return
	}
	for {
		old := h.min.Load()
		if v >= math.Float64frombits(old) || h.min.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= math.Float64frombits(old) || h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

func atomicAddFloat(a *atomic.Uint64, d float64) {
	for {
		old := a.Load()
		if a.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (q in [0,1]) from the buckets. It
// returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo, hi := h.bucketRange(i)
			frac := (rank - cum) / n
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	return math.Float64frombits(h.max.Load())
}

// bucketRange returns the [lo, hi] value range of bucket i, clamped to the
// observed min/max so interpolation never invents values outside the data.
func (h *Histogram) bucketRange(i int) (lo, hi float64) {
	min := math.Float64frombits(h.min.Load())
	max := math.Float64frombits(h.max.Load())
	if i == 0 {
		lo = min
	} else {
		lo = h.bounds[i-1]
	}
	if i == len(h.bounds) {
		hi = max
	} else {
		hi = h.bounds[i]
	}
	if lo < min {
		lo = min
	}
	if hi > max {
		hi = max
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// HistogramSnapshot is the serialized summary of one histogram.
type HistogramSnapshot struct {
	Count int64     `json:"count"`
	Sum   float64   `json:"sum"`
	Mean  float64   `json:"mean"`
	Min   float64   `json:"min"`
	Max   float64   `json:"max"`
	P50   float64   `json:"p50"`
	P95   float64   `json:"p95"`
	P99   float64   `json:"p99"`
	Le    []float64 `json:"le,omitempty"`     // bucket upper bounds
	Bkt   []int64   `json:"counts,omitempty"` // per-bucket counts incl. overflow
	// Exemplars holds the last exemplar (a trace ID, on the serve path)
	// recorded per bucket, aligned with Bkt; absent when none were stamped.
	Exemplars []string `json:"exemplars,omitempty"`
}

// Snapshot summarizes the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
		s.Min = math.Float64frombits(h.min.Load())
		s.Max = math.Float64frombits(h.max.Load())
	}
	s.Le = append([]float64(nil), h.bounds...)
	s.Bkt = make([]int64, len(h.counts))
	for i := range h.counts {
		s.Bkt[i] = h.counts[i].Load()
	}
	var stamped bool
	ex := make([]string, len(h.exemp))
	for i := range h.exemp {
		if p := h.exemp[i].Load(); p != nil {
			ex[i] = *p
			stamped = true
		}
	}
	if stamped {
		s.Exemplars = ex
	}
	return s
}

// DefaultLatencyBounds are the default histogram bounds for durations in
// microseconds: 1-2-5 decades from 1µs to 100s. Call sites recording a
// latency share this one slice instead of building ad-hoc bounds per
// Observe call; Registry.Histogram also falls back to it when given nil
// bounds.
var DefaultLatencyBounds = func() []float64 {
	var out []float64
	for base := 1.0; base <= 1e8; base *= 10 {
		out = append(out, base, 2*base, 5*base)
	}
	return out
}()

// DefaultScoreBounds are the default bounds for metric scores on the
// 100-point scale used throughout the evaluation (AKB candidate scores,
// method accuracies).
var DefaultScoreBounds = []float64{0, 10, 20, 30, 40, 50, 60, 65, 70, 75, 80, 85, 90, 92.5, 95, 97.5, 99, 100}

// TimeBuckets and ScoreBuckets are the pre-rename aliases of the default
// bound slices, kept so existing call sites and external users keep
// compiling.
var (
	TimeBuckets  = DefaultLatencyBounds
	ScoreBuckets = DefaultScoreBounds
)

// Registry is a named collection of metrics. Lookups are get-or-create and
// safe for concurrent use; metric instances are safe to retain and update
// without further locking.
type Registry struct {
	mu    sync.RWMutex
	ctrs  map[string]*Counter
	gaug  map[string]*Gauge
	hists map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:  map[string]*Counter{},
		gaug:  map[string]*Gauge{},
		hists: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.ctrs[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.ctrs[name]; !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gaug[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gaug[name]; !ok {
		g = &Gauge{}
		r.gaug[name] = g
	}
	return g
}

// DeleteGauge removes the named gauge so it no longer appears in snapshots
// or /metrics output. Use it to retire per-key series whose key was evicted;
// a gauge that merely reads zero still occupies a line in /metrics forever,
// and a long-running server churning through keys accumulates stale series
// without bound. Deleting a missing gauge is a no-op. Callers must not hold
// on to the *Gauge across deletion: a later Gauge(name) call creates a fresh
// series.
func (r *Registry) DeleteGauge(name string) {
	r.mu.Lock()
	delete(r.gaug, name)
	r.mu.Unlock()
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (DefaultLatencyBounds when bounds is nil). Bounds of an
// existing histogram are not changed.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; !ok {
		if bounds == nil {
			bounds = DefaultLatencyBounds
		}
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// RegistrySnapshot is the JSON-serializable state of a registry.
type RegistrySnapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every metric's current value.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := RegistrySnapshot{
		Counters:   make(map[string]int64, len(r.ctrs)),
		Gauges:     make(map[string]float64, len(r.gaug)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.ctrs {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gaug {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteJSON serializes a snapshot of the registry as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
