package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentCounters hammers one counter, one gauge, and one histogram
// from many goroutines; run under -race this doubles as the data-race gate
// for the atomic implementations.
func TestConcurrentCounters(t *testing.T) {
	reg := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				reg.Counter("c").Add(1)
				reg.Gauge("g").Set(float64(w))
				reg.Histogram("h", []float64{10, 100, 1000}).Observe(float64(i))
			}
		}(w)
	}
	wg.Wait()

	if got := reg.Counter("c").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	h := reg.Histogram("h", nil)
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	wantSum := float64(workers) * float64(perWorker*(perWorker-1)) / 2
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6 {
		t.Errorf("histogram sum = %g, want %g", got, wantSum)
	}
	g := reg.Gauge("g").Value()
	if g < 0 || g >= workers {
		t.Errorf("gauge = %g, want a worker id in [0,%d)", g, workers)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram(TimeBuckets)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	snap := h.Snapshot()
	if snap.Count != 1000 || snap.Min != 1 || snap.Max != 1000 {
		t.Fatalf("snapshot count/min/max = %d/%g/%g", snap.Count, snap.Min, snap.Max)
	}
	// Bucket interpolation is approximate; quantiles must land in the right
	// decade and be ordered.
	if snap.P50 < 300 || snap.P50 > 700 {
		t.Errorf("p50 = %g, want ~500", snap.P50)
	}
	if snap.P99 < 900 || snap.P99 > 1000 {
		t.Errorf("p99 = %g, want ~990", snap.P99)
	}
	if !(snap.P50 <= snap.P95 && snap.P95 <= snap.P99) {
		t.Errorf("quantiles unordered: p50=%g p95=%g p99=%g", snap.P50, snap.P95, snap.P99)
	}
	if snap.Mean < 499 || snap.Mean > 502 {
		t.Errorf("mean = %g, want 500.5", snap.Mean)
	}
}

func TestHistogramEmptyAndOverflow(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %g, want 0", q)
	}
	h.Observe(50) // overflow bucket
	if q := h.Quantile(0.99); q != 50 {
		t.Errorf("overflow quantile = %g, want 50", q)
	}
}

// TestSpanNesting builds a small tree and checks ids, parentage, and the
// end-order serialization contract (children flush before parents).
func TestSpanNesting(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(NewRegistry(), NewTracer(&buf))

	rec1, root := rec.StartSpan("root")
	root.SetAttr("kind", "EM")
	rec2, stage := rec1.StartSpan("stage")
	_, leaf := rec2.StartSpan("leaf")
	leaf.SetAttr("i", 1)
	leaf.End()
	stage.End()
	root.End()

	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if byName["root"].Parent != 0 {
		t.Errorf("root has parent %d", byName["root"].Parent)
	}
	if byName["stage"].Parent != byName["root"].Span {
		t.Errorf("stage parent = %d, want root id %d", byName["stage"].Parent, byName["root"].Span)
	}
	if byName["leaf"].Parent != byName["stage"].Span {
		t.Errorf("leaf parent = %d, want stage id %d", byName["leaf"].Parent, byName["stage"].Span)
	}
	// End order: leaf, stage, root.
	if recs[0].Name != "leaf" || recs[1].Name != "stage" || recs[2].Name != "root" {
		t.Errorf("record order = %q,%q,%q", recs[0].Name, recs[1].Name, recs[2].Name)
	}
	if got := byName["root"].Attrs["kind"]; got != "EM" {
		t.Errorf("root attr kind = %v", got)
	}
	// Durations nest: the parent spans at least as long as each child.
	if byName["root"].DurUS < byName["stage"].DurUS || byName["stage"].DurUS < byName["leaf"].DurUS {
		t.Errorf("durations do not nest: root=%d stage=%d leaf=%d",
			byName["root"].DurUS, byName["stage"].DurUS, byName["leaf"].DurUS)
	}
}

// TestTraceRoundTrip serializes spans and asserts the parsed records carry
// every field through the JSONL encoding unchanged.
func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	s := tr.StartSpan("op")
	s.SetAttr("score", 87.5)
	s.SetAttr("dataset", "EM/Abt-Buy")
	s.End()

	if tr.Err() != nil {
		t.Fatal(tr.Err())
	}
	if n := strings.Count(buf.String(), "\n"); n != 1 {
		t.Fatalf("got %d lines, want 1", n)
	}
	recs, err := ReadTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	r := recs[0]
	if r.Name != "op" || r.Span == 0 || r.Parent != 0 {
		t.Errorf("record = %+v", r)
	}
	if r.Attrs["score"] != 87.5 || r.Attrs["dataset"] != "EM/Abt-Buy" {
		t.Errorf("attrs = %v", r.Attrs)
	}
	if r.DurUS < 0 || r.StartUS < 0 {
		t.Errorf("negative timing: start=%d dur=%d", r.StartUS, r.DurUS)
	}
}

func TestRegistryJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("akb.oracle_calls").Add(7)
	reg.Gauge("skc.lambda/EM/iTunes-Amazon").Set(0.21)
	reg.Histogram("model.train_step_us", nil).Observe(42)

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"akb.oracle_calls": 7`, `"skc.lambda/EM/iTunes-Amazon": 0.21`, `"model.train_step_us"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %q in:\n%s", want, out)
		}
	}
}

// TestNilRecorderZeroAlloc is the zero-cost-when-disabled contract: every
// instrumentation call the pipeline makes on the Predict/train hot paths
// must be allocation-free (and clock-read-free) through a nil recorder.
func TestNilRecorderZeroAlloc(t *testing.T) {
	var rec *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		rec.Count("model.predict", 1)
		rec.SetGauge("loss", 1.0)
		rec.Observe("score", 1.0, nil)
		start := rec.Now()
		rec.ObserveSince("step_us", start)
		r2, sp := rec.StartSpan("span")
		sp.SetAttr("k", 1)
		r2.Count("x", 1)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil recorder allocates: %v allocs/op", allocs)
	}
	if !rec.Now().IsZero() {
		t.Fatal("nil recorder should not read the clock")
	}
}

// TestMetricsOnlyRecorder checks a recorder without a tracer still counts,
// and its spans are nil-safe.
func TestMetricsOnlyRecorder(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(reg, nil)
	r2, sp := rec.StartSpan("ghost")
	if sp != nil {
		t.Fatal("expected nil span without a tracer")
	}
	r2.Count("c", 3)
	sp.End()
	if got := reg.Counter("c").Value(); got != 3 {
		t.Fatalf("counter through span-less recorder = %d, want 3", got)
	}
}
