// Package profile is the resource-accounting half of the observability
// layer: where internal/obs answers "where does wall time go", this
// package answers "where do CPU, allocations, and GC time go" — the
// questions every hot-path optimization PR must answer before and after.
//
// It provides three instruments:
//
//   - Sampler: a background poller over runtime/metrics (heap live bytes
//     and objects, cumulative allocations, GC pause distribution,
//     goroutine count, scheduler latency) that feeds the obs metrics
//     registry live and appends a JSONL timeline — the machine-readable
//     resource record `knowtrans obs prof` analyzes and diffs.
//   - pprof label plumbing (Do): the serve path runs request handling,
//     batches, and cold-start Transfers under pprof labels (route, key,
//     batch, phase) and eval labels its worker cells, so a captured CPU
//     profile segments by adapter and pipeline stage instead of melting
//     into one anonymous flame.
//   - Capture: on-demand CPU/heap profile writes plus a slow-request
//     Trigger that snapshots the process when latency crosses the
//     operator's threshold.
//
// Everything is stdlib-only (runtime/metrics, runtime/pprof) and follows
// the obs conventions: nil-safe methods, zero cost when disabled.
package profile

import (
	"context"
	"runtime/pprof"
)

// Registry metric names the Sampler maintains. Exported so consumers
// (obs top, the Prometheus exposition help text, dashboards) reference
// one spelling.
const (
	MetricGoroutines    = "runtime.goroutines"
	MetricHeapLiveBytes = "runtime.heap_live_bytes"
	MetricHeapObjects   = "runtime.heap_objects"
	MetricGCCycles      = "runtime.gc_cycles"
	MetricGCPauseP50US  = "runtime.gc_pause_p50_us"
	MetricGCPauseP95US  = "runtime.gc_pause_p95_us"
	MetricSchedLatP50US = "runtime.sched_lat_p50_us"
	MetricSchedLatP95US = "runtime.sched_lat_p95_us"
	MetricAllocBytes    = "runtime.alloc_bytes_total"
	MetricGCPauseHist   = "runtime.gc_pause_us"
	MetricSamples       = "runtime.samples"
)

// Label keys of the serving and eval paths. A CPU profile captured during
// a load (`-cpuprofile`, /debug/pprof/profile, or a slow-request capture)
// can be cut along these with `go tool pprof -tags`:
//
//	route  HTTP route handling the request (predict, warm, adapters, healthz)
//	key    adapter registry key ("EM/Walmart-Amazon") — per-adapter cost
//	batch  micro-batch size the prediction rode in
//	phase  serve lifecycle phase (transfer = cold-start adaptation)
//	cell   experiment cell label in eval worker pools
const (
	LabelRoute = "route"
	LabelKey   = "key"
	LabelBatch = "batch"
	LabelPhase = "phase"
	LabelCell  = "cell"
)

// Do runs fn with the given pprof labels (alternating key/value pairs)
// applied to both the derived context and the current goroutine, so CPU
// samples taken while fn runs are attributable. It is a thin veneer over
// runtime/pprof.Do that keeps call sites to one line and one import.
func Do(ctx context.Context, fn func(ctx context.Context), kv ...string) {
	pprof.Do(ctx, pprof.Labels(kv...), fn)
}
