package profile

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestWriteHeapAndCaptureCPU(t *testing.T) {
	var heap bytes.Buffer
	if err := WriteHeap(&heap); err != nil {
		t.Fatalf("WriteHeap: %v", err)
	}
	if heap.Len() == 0 {
		t.Fatal("empty heap profile")
	}
	var cpu bytes.Buffer
	if err := CaptureCPU(&cpu, 10*time.Millisecond); err != nil {
		t.Fatalf("CaptureCPU: %v", err)
	}
	if cpu.Len() == 0 {
		t.Fatal("empty cpu profile")
	}
}

func TestTriggerCapturesOnceWithCooldown(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	tr := &Trigger{
		Dir:         dir,
		CPUDuration: 5 * time.Millisecond,
		Cooldown:    time.Hour,
		Rec:         obs.NewRecorder(reg, nil),
	}
	if !tr.Capture("predict") {
		t.Fatal("first capture refused")
	}
	// Cooldown: immediate retriggers are refused without blocking.
	if tr.Capture("predict") {
		t.Error("capture inside cooldown accepted")
	}
	// Wait for the async capture to land.
	deadline := time.Now().Add(2 * time.Second)
	var files []string
	for time.Now().Before(deadline) {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		files = files[:0]
		for _, e := range ents {
			files = append(files, e.Name())
		}
		if reg.Counter("profile.captures").Value() > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if reg.Counter("profile.captures").Value() != 1 {
		t.Fatalf("captures counter = %d (errors %d), files %v",
			reg.Counter("profile.captures").Value(),
			reg.Counter("profile.capture_errors").Value(), files)
	}
	var haveHeap, haveCPU bool
	for _, f := range files {
		full := filepath.Join(dir, f)
		fi, err := os.Stat(full)
		if err != nil || fi.Size() == 0 {
			t.Errorf("capture file %s missing or empty", f)
		}
		if len(f) > 4 && f[:4] == "heap" {
			haveHeap = true
		}
		if len(f) > 3 && f[:3] == "cpu" {
			haveCPU = true
		}
	}
	if !haveHeap || !haveCPU {
		t.Errorf("capture files = %v, want heap-* and cpu-*", files)
	}
}

func TestTriggerNilAndUnconfigured(t *testing.T) {
	var tr *Trigger
	if tr.Capture("x") {
		t.Error("nil trigger captured")
	}
	if (&Trigger{}).Capture("x") {
		t.Error("dirless trigger captured")
	}
}

func TestSanitizeReason(t *testing.T) {
	if got := sanitizeReason("EM/Walmart-Amazon"); got != "EM_Walmart-Amazon" {
		t.Errorf("sanitizeReason = %q", got)
	}
	if got := sanitizeReason(""); got != "manual" {
		t.Errorf("empty reason = %q", got)
	}
}
