package profile

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrCaptureActive reports that a CPU capture was requested while another
// one (this package's or the process-wide -cpuprofile) is running; the Go
// runtime supports exactly one CPU profile at a time.
var ErrCaptureActive = errors.New("profile: a CPU capture is already active")

var cpuMu sync.Mutex

// CaptureCPU records a CPU profile of duration d to w. It serializes
// against other CaptureCPU calls and fails fast with ErrCaptureActive
// when the runtime already has a CPU profile running (e.g. a whole-run
// -cpuprofile).
func CaptureCPU(w io.Writer, d time.Duration) error {
	cpuMu.Lock()
	defer cpuMu.Unlock()
	if err := pprof.StartCPUProfile(w); err != nil {
		return fmt.Errorf("%w: %v", ErrCaptureActive, err)
	}
	time.Sleep(d)
	pprof.StopCPUProfile()
	return nil
}

// WriteHeap writes the current heap profile to w, after a forced GC so
// the profile reflects live objects rather than garbage awaiting
// collection.
func WriteHeap(w io.Writer) error {
	runtime.GC()
	return pprof.Lookup("heap").WriteTo(w, 0)
}

// Trigger captures CPU and heap profiles to files when poked — the
// serving layer pokes it when a request crosses the slow threshold, so
// "why was that slow" arrives with the profile of the moment it happened.
// Captures are one-at-a-time with a cooldown, so a burst of slow requests
// costs one capture, not a capture per request.
type Trigger struct {
	// Dir receives the profile files (cpu-<n>-<reason>.pprof,
	// heap-<n>-<reason>.pprof). Required.
	Dir string
	// CPUDuration is how long the triggered CPU capture runs. Default 1s.
	CPUDuration time.Duration
	// Cooldown is the minimum time between captures. Default 30s.
	Cooldown time.Duration
	// Rec counts captures (profile.captures / profile.capture_errors) and
	// records a capture event naming the files. Optional.
	Rec *obs.Recorder

	seq    atomic.Int64
	active atomic.Bool
	lastNS atomic.Int64
}

// Capture requests a capture attributed to reason (e.g. the route of the
// slow request). It returns immediately; the capture runs on its own
// goroutine. The return reports whether a capture was started (false:
// another is active, the cooldown has not elapsed, or the trigger is
// nil/unconfigured).
func (t *Trigger) Capture(reason string) bool {
	if t == nil || t.Dir == "" {
		return false
	}
	cooldown := t.Cooldown
	if cooldown <= 0 {
		cooldown = 30 * time.Second
	}
	now := time.Now().UnixNano()
	last := t.lastNS.Load()
	if last != 0 && time.Duration(now-last) < cooldown {
		return false
	}
	if !t.active.CompareAndSwap(false, true) {
		return false
	}
	t.lastNS.Store(now)
	n := t.seq.Add(1)
	go t.run(n, reason)
	return true
}

func (t *Trigger) run(n int64, reason string) {
	defer t.active.Store(false)
	dur := t.CPUDuration
	if dur <= 0 {
		dur = time.Second
	}
	base := fmt.Sprintf("%d-%s", n, sanitizeReason(reason))
	heapPath := filepath.Join(t.Dir, "heap-"+base+".pprof")
	cpuPath := filepath.Join(t.Dir, "cpu-"+base+".pprof")

	fail := func(err error) {
		t.Rec.Count("profile.capture_errors", 1)
		t.Rec.Event("profile.capture_failed", "reason", reason, "error", err.Error())
	}
	hf, err := os.Create(heapPath)
	if err != nil {
		fail(err)
		return
	}
	if err := WriteHeap(hf); err != nil {
		hf.Close()
		fail(err)
		return
	}
	if err := hf.Close(); err != nil {
		fail(err)
		return
	}
	cf, err := os.Create(cpuPath)
	if err != nil {
		fail(err)
		return
	}
	cerr := CaptureCPU(cf, dur)
	if err := cf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		// A whole-run -cpuprofile already owns the CPU profiler; the heap
		// snapshot above still landed, so count the partial capture.
		if !errors.Is(err, ErrCaptureActive) {
			fail(err)
			return
		}
		os.Remove(cpuPath)
		cpuPath = ""
	}
	t.Rec.Count("profile.captures", 1)
	t.Rec.Event("profile.captured", "reason", reason, "heap", heapPath, "cpu", cpuPath)
}

// sanitizeReason keeps capture file names shell- and filesystem-safe.
func sanitizeReason(reason string) string {
	if reason == "" {
		return "manual"
	}
	out := make([]byte, 0, len(reason))
	for i := 0; i < len(reason) && len(out) < 32; i++ {
		c := reason[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
