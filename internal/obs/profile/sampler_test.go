package profile

import (
	"bytes"
	"context"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// syncBuffer lets the test read the timeline while the sampler goroutine
// may still be writing — the race detector keeps us honest.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSamplerTimelineAndRegistry runs the sampler over a busy interval
// and checks the two outputs agree: a parseable monotonic JSONL timeline
// and live runtime gauges in the registry.
func TestSamplerTimelineAndRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewRecorder(reg, nil)
	var buf syncBuffer
	s := Start(Config{Interval: 2 * time.Millisecond, Rec: rec, W: &buf})

	// Generate allocation traffic so the deltas are non-trivial.
	sink := make([][]byte, 0, 256)
	deadline := time.Now().Add(30 * time.Millisecond)
	for time.Now().Before(deadline) {
		sink = append(sink, make([]byte, 4096))
		if len(sink) > 128 {
			sink = sink[:0]
		}
	}
	_ = sink
	s.Stop()
	s.Stop() // idempotent
	if err := s.Err(); err != nil {
		t.Fatalf("sampler error: %v", err)
	}

	rows, err := ReadTimeline(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ReadTimeline: %v", err)
	}
	if len(rows) < 2 {
		t.Fatalf("want >= 2 samples, got %d", len(rows))
	}
	if int64(len(rows)) != s.Samples() {
		t.Errorf("timeline rows %d != Samples() %d", len(rows), s.Samples())
	}
	for i, r := range rows {
		if r.Seq != int64(i+1) {
			t.Fatalf("row %d: seq %d", i, r.Seq)
		}
		if i > 0 && r.TMS < rows[i-1].TMS {
			t.Errorf("row %d: t_ms went backwards (%d < %d)", i, r.TMS, rows[i-1].TMS)
		}
		if r.Goroutines <= 0 || r.HeapLiveBytes == 0 || r.TotalAllocBytes == 0 {
			t.Errorf("row %d: implausible reading %+v", i, r)
		}
		if i > 0 && r.TotalAllocBytes < rows[i-1].TotalAllocBytes {
			t.Errorf("row %d: cumulative allocs shrank", i)
		}
	}

	snap := reg.Snapshot()
	for _, g := range []string{MetricGoroutines, MetricHeapLiveBytes, MetricHeapObjects, MetricSamples} {
		if snap.Gauges[g] <= 0 {
			t.Errorf("gauge %s = %g, want > 0", g, snap.Gauges[g])
		}
	}
	if snap.Counters[MetricAllocBytes] <= 0 {
		t.Errorf("counter %s = %d, want > 0", MetricAllocBytes, snap.Counters[MetricAllocBytes])
	}
}

// TestSamplerStopLeavesNoGoroutine pins the clean start/stop contract:
// after Stop returns, the sampling goroutine is gone.
func TestSamplerStopLeavesNoGoroutine(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		s := Start(Config{Interval: time.Millisecond})
		time.Sleep(3 * time.Millisecond)
		s.Stop()
	}
	// Allow the runtime a beat to retire exited goroutines.
	var after int
	for i := 0; i < 50; i++ {
		after = runtime.NumGoroutine()
		if after <= before {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if after > before {
		t.Errorf("goroutines grew across 8 start/stop cycles: %d -> %d", before, after)
	}
}

func TestSamplerNilSafety(t *testing.T) {
	var s *Sampler
	s.Stop()
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if n := s.Samples(); n != 0 {
		t.Fatalf("nil Samples = %d", n)
	}
	st := s.Status()
	if st.Enabled {
		t.Error("nil sampler reports Enabled")
	}
	if st.Goroutines <= 0 || st.HeapLiveBytes == 0 {
		t.Errorf("nil Status should carry live readings, got %+v", st)
	}
}

func TestSamplerStatus(t *testing.T) {
	s := Start(Config{Interval: 2 * time.Millisecond})
	defer s.Stop()
	time.Sleep(10 * time.Millisecond)
	st := s.Status()
	if !st.Enabled || st.Samples < 1 || st.Goroutines <= 0 || st.HeapLiveBytes == 0 {
		t.Errorf("live status implausible: %+v", st)
	}
	if st.IntervalS != 0.002 {
		t.Errorf("IntervalS = %g", st.IntervalS)
	}
}

func TestReadStats(t *testing.T) {
	st := ReadStats()
	if st.Goroutines <= 0 {
		t.Errorf("Goroutines = %d", st.Goroutines)
	}
	if st.HeapLiveBytes == 0 || st.TotalAllocBytes == 0 || st.TotalAllocObjects == 0 {
		t.Errorf("zero memory readings: %+v", st)
	}
	// Allocate, read again: cumulative counters move forward.
	waste := make([]byte, 1<<20)
	_ = waste
	st2 := ReadStats()
	d := st2.Delta(st)
	if d.AllocBytes == 0 {
		t.Error("no alloc delta after allocating 1MB")
	}
	g, h := QuickReadings()
	if g <= 0 || h == 0 {
		t.Errorf("QuickReadings = %d, %d", g, h)
	}
}

func TestReadTimelineTruncatedTail(t *testing.T) {
	whole := `{"t_ms":1,"seq":1,"goroutines":5}` + "\n" + `{"t_ms":2,"seq":2,"gorou`
	rows, err := ReadTimeline(strings.NewReader(whole))
	if err != nil {
		t.Fatalf("truncated tail should be tolerated: %v", err)
	}
	if len(rows) != 1 || rows[0].Goroutines != 5 {
		t.Fatalf("rows = %+v", rows)
	}
	if _, err := ReadTimeline(strings.NewReader("not json")); err == nil {
		t.Error("fully malformed timeline should error")
	}
}

// TestDoAppliesLabels checks the pprof label helper attaches labels to
// the derived context (what call sites and CPU samples see).
func TestDoAppliesLabels(t *testing.T) {
	var route, key string
	Do(context.Background(), func(ctx context.Context) {
		route, _ = pprof.Label(ctx, LabelRoute)
		Do(ctx, func(ctx context.Context) {
			key, _ = pprof.Label(ctx, LabelKey)
			route, _ = pprof.Label(ctx, LabelRoute) // outer label survives nesting
		}, LabelKey, "EM/Walmart-Amazon")
	}, LabelRoute, "predict")
	if route != "predict" || key != "EM/Walmart-Amazon" {
		t.Errorf("labels = route %q key %q", route, key)
	}
}
