package profile

import (
	"math"
	"runtime/metrics"
)

// runtime/metrics names the package reads. All of them have been stable
// since Go 1.17, so there is no per-version probing: a missing metric
// reads as KindBad and is reported as zero.
const (
	rmGoroutines = "/sched/goroutines:goroutines"
	rmHeapLive   = "/memory/classes/heap/objects:bytes"
	rmHeapObjs   = "/gc/heap/objects:objects"
	rmAllocBytes = "/gc/heap/allocs:bytes"
	rmAllocObjs  = "/gc/heap/allocs:objects"
	rmGCCycles   = "/gc/cycles/total:gc-cycles"
	rmGCPauses   = "/gc/pauses:seconds"
	rmSchedLat   = "/sched/latencies:seconds"
)

// Stats is one point-in-time reading of the process's resource state.
// Total* fields are cumulative since process start, so rates come from
// deltas between two readings (Delta). Pause and latency quantiles are
// over the cumulative runtime-maintained distributions.
type Stats struct {
	Goroutines        int64
	HeapLiveBytes     uint64
	HeapObjects       uint64
	TotalAllocBytes   uint64
	TotalAllocObjects uint64
	GCCycles          uint64
	GCPauseTotalUS    float64 // approximate: Σ bucket-count × bucket midpoint
	GCPauseP50US      float64
	GCPauseP95US      float64
	SchedLatP50US     float64
	SchedLatP95US     float64

	// gcPauseCounts keeps the raw cumulative pause bucket counts so a
	// Sampler can feed per-interval pause observations into an obs
	// histogram; buckets are the shared boundary slice.
	gcPauseCounts []uint64
	gcPauseBounds []float64
}

// ReadStats takes one reading of every metric the package tracks. It is
// cheap (one metrics.Read over a fixed sample set) and safe to call from
// any goroutine.
func ReadStats() Stats {
	samples := []metrics.Sample{
		{Name: rmGoroutines},
		{Name: rmHeapLive},
		{Name: rmHeapObjs},
		{Name: rmAllocBytes},
		{Name: rmAllocObjs},
		{Name: rmGCCycles},
		{Name: rmGCPauses},
		{Name: rmSchedLat},
	}
	metrics.Read(samples)
	var st Stats
	st.Goroutines = int64(sampleUint64(&samples[0]))
	st.HeapLiveBytes = sampleUint64(&samples[1])
	st.HeapObjects = sampleUint64(&samples[2])
	st.TotalAllocBytes = sampleUint64(&samples[3])
	st.TotalAllocObjects = sampleUint64(&samples[4])
	st.GCCycles = sampleUint64(&samples[5])
	if h := sampleHist(&samples[6]); h != nil {
		st.GCPauseTotalUS = histSumSeconds(h) * 1e6
		st.GCPauseP50US = histQuantileSeconds(h, 0.50) * 1e6
		st.GCPauseP95US = histQuantileSeconds(h, 0.95) * 1e6
		st.gcPauseCounts = append([]uint64(nil), h.Counts...)
		st.gcPauseBounds = h.Buckets
	}
	if h := sampleHist(&samples[7]); h != nil {
		st.SchedLatP50US = histQuantileSeconds(h, 0.50) * 1e6
		st.SchedLatP95US = histQuantileSeconds(h, 0.95) * 1e6
	}
	return st
}

// QuickReadings returns just the goroutine count and live heap bytes —
// the two numbers /healthz reports on every scrape, read without the
// histogram decoding cost of a full ReadStats.
func QuickReadings() (goroutines int64, heapLiveBytes uint64) {
	samples := []metrics.Sample{{Name: rmGoroutines}, {Name: rmHeapLive}}
	metrics.Read(samples)
	return int64(sampleUint64(&samples[0])), sampleUint64(&samples[1])
}

func sampleUint64(s *metrics.Sample) uint64 {
	if s.Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s.Value.Uint64()
}

func sampleHist(s *metrics.Sample) *metrics.Float64Histogram {
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return nil
	}
	return s.Value.Float64Histogram()
}

// bucketMid returns a finite representative value for bucket i of a
// runtime histogram (Counts[i] covers [Buckets[i], Buckets[i+1])). The
// outermost buckets may be unbounded; they are clamped to their finite
// edge.
func bucketMid(buckets []float64, i int) float64 {
	lo, hi := buckets[i], buckets[i+1]
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, +1):
		return 0
	case math.IsInf(lo, -1):
		return hi
	case math.IsInf(hi, +1):
		return lo
	default:
		return (lo + hi) / 2
	}
}

// histSumSeconds approximates the distribution's total as Σ count × bucket
// midpoint — exact enough for "total GC pause milliseconds" reporting,
// which only needs to be stable across runs, not nanosecond-true.
func histSumSeconds(h *metrics.Float64Histogram) float64 {
	var sum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		sum += float64(c) * bucketMid(h.Buckets, i)
	}
	return sum
}

// histQuantileSeconds estimates the q-quantile of a runtime histogram by
// linear interpolation within the crossing bucket.
func histQuantileSeconds(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range h.Counts {
		n := float64(c)
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo, hi := h.Buckets[i], h.Buckets[i+1]
			if math.IsInf(lo, -1) {
				lo = 0
			}
			if math.IsInf(hi, +1) {
				hi = lo
			}
			frac := (rank - cum) / n
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	return bucketMid(h.Buckets, len(h.Counts)-1)
}

// Delta returns the cumulative-counter movement from prev to st. Callers
// divide by an op count or a duration to get per-op or per-second rates.
type StatsDelta struct {
	AllocBytes   uint64
	AllocObjects uint64
	GCCycles     uint64
	GCPauseUS    float64
}

// Delta computes st - prev over the cumulative fields, clamping at zero
// (a counter can only appear to shrink across a process restart, which
// two readings from one process never see).
func (st Stats) Delta(prev Stats) StatsDelta {
	sub := func(a, b uint64) uint64 {
		if a < b {
			return 0
		}
		return a - b
	}
	d := StatsDelta{
		AllocBytes:   sub(st.TotalAllocBytes, prev.TotalAllocBytes),
		AllocObjects: sub(st.TotalAllocObjects, prev.TotalAllocObjects),
		GCCycles:     sub(st.GCCycles, prev.GCCycles),
	}
	if st.GCPauseTotalUS > prev.GCPauseTotalUS {
		d.GCPauseUS = st.GCPauseTotalUS - prev.GCPauseTotalUS
	}
	return d
}
