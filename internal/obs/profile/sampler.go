package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Sample is one line of the runtime-metrics timeline: a point-in-time
// resource reading plus the deltas since the previous sample. The JSONL
// stream of these is what `knowtrans obs prof` loads, summarizes, and
// diffs against a baseline.
type Sample struct {
	// TMS is milliseconds since the sampler started.
	TMS int64 `json:"t_ms"`
	// Seq is the 1-based sample index; readers use it to detect truncation.
	Seq             int64   `json:"seq"`
	Goroutines      int64   `json:"goroutines"`
	HeapLiveBytes   uint64  `json:"heap_live_bytes"`
	HeapObjects     uint64  `json:"heap_objects"`
	TotalAllocBytes uint64  `json:"total_alloc_bytes"`
	AllocDeltaBytes uint64  `json:"alloc_delta_bytes"`
	GCCycles        uint64  `json:"gc_cycles"`
	GCPauseTotalUS  float64 `json:"gc_pause_total_us"`
	GCPauseP50US    float64 `json:"gc_pause_p50_us"`
	GCPauseP95US    float64 `json:"gc_pause_p95_us"`
	SchedLatP50US   float64 `json:"sched_lat_p50_us"`
	SchedLatP95US   float64 `json:"sched_lat_p95_us"`
}

// Config configures a Sampler. The zero value is usable: a 100ms
// interval, no registry feed, no timeline.
type Config struct {
	// Interval between samples. Default 100ms; the floor is 1ms.
	Interval time.Duration
	// Rec receives the live gauge/counter/histogram feed (nil disables;
	// the obs recorder is nil-safe anyway).
	Rec *obs.Recorder
	// W receives the JSONL timeline (nil disables). The sampler is the
	// only writer; callers own closing it after Stop returns.
	W io.Writer
}

// SamplerStatus is the sampler's health summary: what /healthz embeds so
// operators see resource state and sampling liveness from one curl. A nil
// sampler reports Enabled false with live readings still filled in.
type SamplerStatus struct {
	Enabled       bool    `json:"enabled"`
	IntervalS     float64 `json:"interval_s,omitempty"`
	Samples       int64   `json:"samples"`
	Goroutines    int64   `json:"goroutines"`
	HeapLiveBytes uint64  `json:"heap_live_bytes"`
}

// Sampler polls runtime/metrics on a fixed interval, feeding the obs
// registry and appending the JSONL timeline. Start it with Start; Stop
// takes a final sample, waits for the loop goroutine to exit, and is
// idempotent — the clean start/stop contract the race tests pin.
type Sampler struct {
	cfg   Config
	start time.Time

	samples    atomic.Int64
	lastGoro   atomic.Int64
	lastHeap   atomic.Uint64
	writeErrMu sync.Mutex
	writeErr   error

	stopOnce sync.Once
	stopc    chan struct{}
	done     chan struct{}
}

// Start begins sampling and returns the running sampler. The first sample
// is taken immediately (so even a short-lived run has a baseline row),
// then one per interval until Stop.
func Start(cfg Config) *Sampler {
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	if cfg.Interval < time.Millisecond {
		cfg.Interval = time.Millisecond
	}
	s := &Sampler{
		cfg:   cfg,
		start: time.Now(),
		stopc: make(chan struct{}),
		done:  make(chan struct{}),
	}
	go s.run()
	return s
}

// Stop takes a final sample and waits for the sampling goroutine to exit.
// Safe to call more than once and on a nil sampler.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.stopOnce.Do(func() { close(s.stopc) })
	<-s.done
}

// Err returns the first timeline write error, if any (sampling itself
// cannot fail).
func (s *Sampler) Err() error {
	if s == nil {
		return nil
	}
	s.writeErrMu.Lock()
	defer s.writeErrMu.Unlock()
	return s.writeErr
}

// Samples returns how many samples have been taken so far.
func (s *Sampler) Samples() int64 {
	if s == nil {
		return 0
	}
	return s.samples.Load()
}

// Status reports the sampler's state plus current resource readings. On a
// nil sampler the readings are taken fresh so /healthz stays informative
// even when sampling is off.
func (s *Sampler) Status() SamplerStatus {
	if s == nil {
		g, h := QuickReadings()
		return SamplerStatus{Goroutines: g, HeapLiveBytes: h}
	}
	return SamplerStatus{
		Enabled:       true,
		IntervalS:     s.cfg.Interval.Seconds(),
		Samples:       s.samples.Load(),
		Goroutines:    s.lastGoro.Load(),
		HeapLiveBytes: s.lastHeap.Load(),
	}
}

func (s *Sampler) run() {
	defer close(s.done)
	ticker := time.NewTicker(s.cfg.Interval)
	defer ticker.Stop()
	var prev Stats
	prev = s.take(prev, true)
	for {
		select {
		case <-ticker.C:
			prev = s.take(prev, false)
		case <-s.stopc:
			// Final sample so the timeline's last row reflects the state at
			// shutdown — the row leak detection and end-state diffs read.
			s.take(prev, false)
			return
		}
	}
}

// take reads one Stats, emits the timeline row and registry updates, and
// returns the reading for the next delta.
func (s *Sampler) take(prev Stats, first bool) Stats {
	st := ReadStats()
	seq := s.samples.Add(1)
	s.lastGoro.Store(st.Goroutines)
	s.lastHeap.Store(st.HeapLiveBytes)

	var d StatsDelta
	if !first {
		d = st.Delta(prev)
	}

	rec := s.cfg.Rec
	rec.SetGauge(MetricGoroutines, float64(st.Goroutines))
	rec.SetGauge(MetricHeapLiveBytes, float64(st.HeapLiveBytes))
	rec.SetGauge(MetricHeapObjects, float64(st.HeapObjects))
	rec.SetGauge(MetricGCCycles, float64(st.GCCycles))
	rec.SetGauge(MetricGCPauseP50US, st.GCPauseP50US)
	rec.SetGauge(MetricGCPauseP95US, st.GCPauseP95US)
	rec.SetGauge(MetricSchedLatP50US, st.SchedLatP50US)
	rec.SetGauge(MetricSchedLatP95US, st.SchedLatP95US)
	rec.SetGauge(MetricSamples, float64(seq))
	if !first {
		rec.Count(MetricAllocBytes, int64(d.AllocBytes))
		s.feedPauseHist(prev, st)
	}

	if s.cfg.W != nil {
		row := Sample{
			TMS:             time.Since(s.start).Milliseconds(),
			Seq:             seq,
			Goroutines:      st.Goroutines,
			HeapLiveBytes:   st.HeapLiveBytes,
			HeapObjects:     st.HeapObjects,
			TotalAllocBytes: st.TotalAllocBytes,
			AllocDeltaBytes: d.AllocBytes,
			GCCycles:        st.GCCycles,
			GCPauseTotalUS:  st.GCPauseTotalUS,
			GCPauseP50US:    st.GCPauseP50US,
			GCPauseP95US:    st.GCPauseP95US,
			SchedLatP50US:   st.SchedLatP50US,
			SchedLatP95US:   st.SchedLatP95US,
		}
		if line, err := json.Marshal(row); err == nil {
			if _, werr := s.cfg.W.Write(append(line, '\n')); werr != nil {
				s.setErr(fmt.Errorf("profile: write timeline: %w", werr))
			}
		} else {
			s.setErr(fmt.Errorf("profile: marshal sample: %w", err))
		}
	}
	return st
}

// feedPauseHist turns the interval's new GC pauses (cumulative bucket
// count deltas) into observations on the obs pause histogram, so the
// /metrics exposition carries a real pause distribution, not just
// quantile gauges. GC cycles are rare relative to sampling intervals, so
// the per-bucket replay is bounded; a paranoid cap keeps a pathological
// interval from stalling the loop.
func (s *Sampler) feedPauseHist(prev, cur Stats) {
	if s.cfg.Rec == nil || len(cur.gcPauseCounts) == 0 || len(prev.gcPauseCounts) != len(cur.gcPauseCounts) {
		return
	}
	const maxReplay = 1024
	replayed := 0
	for i, c := range cur.gcPauseCounts {
		dc := int64(c) - int64(prev.gcPauseCounts[i])
		if dc <= 0 {
			continue
		}
		mid := bucketMid(cur.gcPauseBounds, i) * 1e6 // seconds → µs
		for j := int64(0); j < dc && replayed < maxReplay; j++ {
			s.cfg.Rec.Observe(MetricGCPauseHist, mid, nil)
			replayed++
		}
	}
}

func (s *Sampler) setErr(err error) {
	s.writeErrMu.Lock()
	if s.writeErr == nil {
		s.writeErr = err
	}
	s.writeErrMu.Unlock()
}

// ReadTimeline parses a JSONL timeline back into samples, in file order.
// A truncated tail (the process was killed mid-write) is tolerated: the
// complete prefix is returned with a nil error, matching the trace
// loader's contract.
func ReadTimeline(r io.Reader) ([]Sample, error) {
	dec := json.NewDecoder(r)
	var out []Sample
	for {
		var row Sample
		if err := dec.Decode(&row); err == io.EOF {
			return out, nil
		} else if err != nil {
			if len(out) > 0 {
				return out, nil // truncated tail
			}
			return out, fmt.Errorf("profile: parse timeline line %d: %w", len(out)+1, err)
		}
		out = append(out, row)
	}
}
