package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer serializes completed spans and structured events to an io.Writer
// as JSONL: one SpanRecord per line, spans written when they end (so
// children appear before their parents in the stream — readers reassemble
// the tree via the parent ids), events written immediately. A Tracer is
// safe for concurrent use.
type Tracer struct {
	mu     sync.Mutex
	w      io.Writer
	err    error
	closed bool
	nextID atomic.Uint64
	epoch  time.Time
}

// NewTracer returns a tracer writing JSONL records to w. Timestamps in the
// records are microsecond offsets from the tracer's creation.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w, epoch: time.Now()}
}

// Err returns the first write error encountered, if any.
func (t *Tracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// KindEvent marks a point-in-time event record in the trace stream; span
// records leave Kind empty, which keeps pre-event traces parseable.
const KindEvent = "event"

// SpanRecord is the JSONL wire format of one completed span, and — with
// Kind set to KindEvent and a zero duration — of one structured event.
type SpanRecord struct {
	Span    uint64         `json:"span"`
	Parent  uint64         `json:"parent,omitempty"`
	Kind    string         `json:"kind,omitempty"`
	Name    string         `json:"name"`
	StartUS int64          `json:"start_us"`
	DurUS   int64          `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// IsEvent reports whether the record is a structured event rather than a
// span.
func (r *SpanRecord) IsEvent() bool { return r.Kind == KindEvent }

// Span is one timed operation in the trace tree. A Span is intended for a
// single goroutine (matching the pipeline, which transfers one dataset per
// goroutine); the tracer-side write on End is mutex-guarded. All methods
// are nil-safe so disabled tracing costs a pointer check.
type Span struct {
	t      *Tracer
	name   string
	id     uint64
	parent uint64
	start  time.Time
	attrs  map[string]any
}

// StartSpan opens a root span.
func (t *Tracer) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, id: t.nextID.Add(1), start: time.Now()}
}

// StartChild opens a child span of s.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := s.t.StartSpan(name)
	c.parent = s.id
	return c
}

// SetAttr attaches a key/value attribute to the span, overwriting any
// previous value for the key.
func (s *Span) SetAttr(key string, val any) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = val
}

// End closes the span and writes its record. End is idempotent-enough for
// defer use: a second call writes a duplicate record, so call it once.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	rec := SpanRecord{
		Span:    s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartUS: s.start.Sub(s.t.epoch).Microseconds(),
		DurUS:   now.Sub(s.start).Microseconds(),
		Attrs:   s.attrs,
	}
	s.t.write(&rec)
}

func (t *Tracer) write(rec *SpanRecord) {
	line, err := json.Marshal(rec)
	t.mu.Lock()
	defer t.mu.Unlock()
	if err != nil {
		if t.err == nil {
			t.err = fmt.Errorf("obs: marshal span %q: %w", rec.Name, err)
		}
		return
	}
	if t.err != nil || t.closed {
		return
	}
	line = append(line, '\n')
	if _, err := t.w.Write(line); err != nil {
		t.err = fmt.Errorf("obs: write span %q: %w", rec.Name, err)
	}
}

// Close flushes and closes the tracer. When the underlying writer is an
// io.Closer (the trace file) it is closed too, so an aborting CLI path can
// call Close once and know the JSONL tail reached disk. Records written
// after Close are dropped; Close is idempotent and returns the first error
// the tracer encountered (write, marshal, or close).
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return t.err
	}
	t.closed = true
	if c, ok := t.w.(io.Closer); ok {
		if err := c.Close(); err != nil && t.err == nil {
			t.err = fmt.Errorf("obs: close trace: %w", err)
		}
	}
	return t.err
}

// CanonicalTrace rewrites trace records into a timing-free canonical form
// for byte-comparison across runs: StartUS and DurUS are zeroed and
// wall-clock-valued attributes (key suffix "_us" or "_s") are dropped. Span
// ids, parentage, names, and the remaining attributes are untouched — for a
// seeded serial workload they are deterministic, so two runs produce
// byte-identical canonical traces even though every raw timestamp differs.
// This is what the chaos tests pin fault-schedule reproducibility with. The
// input is not mutated.
func CanonicalTrace(recs []SpanRecord) []SpanRecord {
	out := make([]SpanRecord, len(recs))
	for i, r := range recs {
		r.StartUS, r.DurUS = 0, 0
		if len(r.Attrs) > 0 {
			attrs := make(map[string]any, len(r.Attrs))
			for k, v := range r.Attrs {
				if strings.HasSuffix(k, "_us") || strings.HasSuffix(k, "_s") {
					continue
				}
				attrs[k] = v
			}
			if len(attrs) == 0 {
				attrs = nil
			}
			r.Attrs = attrs
		}
		out[i] = r
	}
	return out
}

// ReadTrace parses a JSONL trace stream back into records, in file order
// (i.e. span-end order). It is the inverse of the Tracer's serialization
// and the basis of the round-trip tests and any offline analysis tooling.
func ReadTrace(r io.Reader) ([]SpanRecord, error) {
	dec := json.NewDecoder(r)
	var out []SpanRecord
	for {
		var rec SpanRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("obs: parse trace line %d: %w", len(out)+1, err)
		}
		out = append(out, rec)
	}
}
