package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer serializes completed spans to an io.Writer as JSONL: one
// SpanRecord per line, written when the span ends (so children appear
// before their parents in the stream — readers reassemble the tree via the
// parent ids). A Tracer is safe for concurrent use.
type Tracer struct {
	mu     sync.Mutex
	w      io.Writer
	err    error
	nextID atomic.Uint64
	epoch  time.Time
}

// NewTracer returns a tracer writing JSONL records to w. Timestamps in the
// records are microsecond offsets from the tracer's creation.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w, epoch: time.Now()}
}

// Err returns the first write error encountered, if any.
func (t *Tracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// SpanRecord is the JSONL wire format of one completed span.
type SpanRecord struct {
	Span    uint64         `json:"span"`
	Parent  uint64         `json:"parent,omitempty"`
	Name    string         `json:"name"`
	StartUS int64          `json:"start_us"`
	DurUS   int64          `json:"dur_us"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Span is one timed operation in the trace tree. A Span is intended for a
// single goroutine (matching the pipeline, which transfers one dataset per
// goroutine); the tracer-side write on End is mutex-guarded. All methods
// are nil-safe so disabled tracing costs a pointer check.
type Span struct {
	t      *Tracer
	name   string
	id     uint64
	parent uint64
	start  time.Time
	attrs  map[string]any
}

// StartSpan opens a root span.
func (t *Tracer) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, id: t.nextID.Add(1), start: time.Now()}
}

// StartChild opens a child span of s.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := s.t.StartSpan(name)
	c.parent = s.id
	return c
}

// SetAttr attaches a key/value attribute to the span, overwriting any
// previous value for the key.
func (s *Span) SetAttr(key string, val any) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = val
}

// End closes the span and writes its record. End is idempotent-enough for
// defer use: a second call writes a duplicate record, so call it once.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	rec := SpanRecord{
		Span:    s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartUS: s.start.Sub(s.t.epoch).Microseconds(),
		DurUS:   now.Sub(s.start).Microseconds(),
		Attrs:   s.attrs,
	}
	s.t.write(&rec)
}

func (t *Tracer) write(rec *SpanRecord) {
	line, err := json.Marshal(rec)
	t.mu.Lock()
	defer t.mu.Unlock()
	if err != nil {
		if t.err == nil {
			t.err = fmt.Errorf("obs: marshal span %q: %w", rec.Name, err)
		}
		return
	}
	if t.err != nil {
		return
	}
	line = append(line, '\n')
	if _, err := t.w.Write(line); err != nil {
		t.err = fmt.Errorf("obs: write span %q: %w", rec.Name, err)
	}
}

// ReadTrace parses a JSONL trace stream back into records, in file order
// (i.e. span-end order). It is the inverse of the Tracer's serialization
// and the basis of the round-trip tests and any offline analysis tooling.
func ReadTrace(r io.Reader) ([]SpanRecord, error) {
	dec := json.NewDecoder(r)
	var out []SpanRecord
	for {
		var rec SpanRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("obs: parse trace line %d: %w", len(out)+1, err)
		}
		out = append(out, rec)
	}
}
