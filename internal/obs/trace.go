package obs

import (
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer serializes completed spans and structured events to an io.Writer
// as JSONL: one SpanRecord per line, spans written when they end (so
// children appear before their parents in the stream — readers reassemble
// the tree via the parent ids), events written immediately. A Tracer is
// safe for concurrent use.
type Tracer struct {
	mu     sync.Mutex
	w      io.Writer
	err    error
	closed bool
	nextID atomic.Uint64
	epoch  time.Time
	ids    atomic.Pointer[IDSource]
}

// NewTracer returns a tracer writing JSONL records to w. Timestamps in the
// records are microsecond offsets from the tracer's creation. Trace IDs
// are minted from a clock-seeded source; call SeedTraceIDs to make them
// reproducible (the determinism gates do).
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{w: w, epoch: time.Now()}
	t.ids.Store(NewIDSource(time.Now().UnixNano()))
	return t
}

// tracerSeedSalt domain-separates a seeded tracer's mint stream from a
// plain NewIDSource(seed) stream. Clients (the load generator) mint their
// request trace IDs from NewIDSource(seed).At(n); the server's tracer mints
// local roots from Next(), which walks the same At sequence — without the
// salt, a server and its clients seeded alike would collide on trace IDs
// and locally-rooted spans (batches, transfers) would appear to live inside
// some request's trace.
const tracerSeedSalt = 0x7C1A5E21D0B5F3E9

// SeedTraceIDs replaces the tracer's trace-ID source with a deterministic
// one: same seed + same mint order = same IDs. Serial seeded runs become
// byte-reproducible up to CanonicalTrace; concurrent runs still need the
// canonical remapping because mint order races. The stream is
// domain-separated from NewIDSource(seed) so equally-seeded clients never
// mint a colliding trace ID.
func (t *Tracer) SeedTraceIDs(seed int64) {
	if t == nil {
		return
	}
	t.ids.Store(NewIDSource(seed ^ tracerSeedSalt))
}

func (t *Tracer) mintTraceID() TraceID {
	src := t.ids.Load()
	if src == nil {
		// Zero-value Tracer (not built by NewTracer): seed from the clock once.
		src = NewIDSource(time.Now().UnixNano())
		if !t.ids.CompareAndSwap(nil, src) {
			src = t.ids.Load()
		}
	}
	return src.Next()
}

// Err returns the first write error encountered, if any.
func (t *Tracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// TraceID is a W3C-shaped 16-byte trace identifier: every root span mints
// one and its whole subtree inherits it, so spans from different requests
// stay distinguishable even when they interleave in one JSONL stream.
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero value (which the
// W3C spec also forbids on the wire).
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the ID as 32 lowercase hex characters; the zero ID
// renders as "" so omitempty JSON fields stay absent.
func (id TraceID) String() string {
	if id.IsZero() {
		return ""
	}
	return hex.EncodeToString(id[:])
}

// ParseTraceID parses a 32-hex-character trace ID.
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	if len(s) != 32 {
		return id, fmt.Errorf("obs: trace id %q: want 32 hex chars", s)
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return TraceID{}, fmt.Errorf("obs: trace id %q: %w", s, err)
	}
	copy(id[:], b)
	if id.IsZero() {
		return TraceID{}, fmt.Errorf("obs: trace id %q: all-zero is invalid", s)
	}
	return id, nil
}

// IDSource mints deterministic trace IDs from a seed: a splitmix64 stream,
// so the n-th ID of two sources with the same seed is identical. Safe for
// concurrent use.
type IDSource struct {
	seed uint64
	seq  atomic.Uint64
}

// NewIDSource returns an ID source for the seed.
func NewIDSource(seed int64) *IDSource {
	return &IDSource{seed: splitmix64(uint64(seed) ^ 0x9E3779B97F4A7C15)}
}

// Next mints the next trace ID of the stream.
func (s *IDSource) Next() TraceID { return s.At(s.seq.Add(1)) }

// At returns the n-th trace ID of the stream (n >= 1) independent of mint
// order — the per-index form concurrent load generators need.
func (s *IDSource) At(n uint64) TraceID {
	var id TraceID
	binary.BigEndian.PutUint64(id[:8], splitmix64(s.seed+2*n))
	binary.BigEndian.PutUint64(id[8:], splitmix64(s.seed+2*n+1))
	if id.IsZero() {
		id[15] = 1
	}
	return id
}

// SpanIDAt returns a deterministic nonzero span ID for the n-th remote
// parent of the stream. The high-entropy value cannot collide with the
// small sequential IDs a local Tracer assigns.
func (s *IDSource) SpanIDAt(n uint64) uint64 {
	v := splitmix64((s.seed ^ 0xD1B54A32D192ED03) + n)
	if v == 0 {
		v = 1
	}
	return v
}

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap,
// high-quality 64-bit mix.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// SpanContext identifies one span for cross-boundary propagation: what a
// `traceparent` header carries, what a span link points at.
type SpanContext struct {
	Trace TraceID
	Span  uint64
}

// IsZero reports whether the context identifies nothing.
func (sc SpanContext) IsZero() bool { return sc.Trace.IsZero() || sc.Span == 0 }

// TraceparentHeader is the W3C Trace Context header name.
const TraceparentHeader = "traceparent"

// FormatTraceparent renders a span context as a W3C `traceparent` value:
// version 00, sampled flag set. A zero context renders as "".
func FormatTraceparent(sc SpanContext) string {
	if sc.IsZero() {
		return ""
	}
	return fmt.Sprintf("00-%s-%016x-01", sc.Trace.String(), sc.Span)
}

// ParseTraceparent parses a W3C `traceparent` header value. Unknown future
// versions are accepted as long as the leading fields parse (per spec);
// version ff, zero IDs, and malformed fields are errors.
func ParseTraceparent(s string) (SpanContext, error) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) < 4 {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: want version-traceid-parentid-flags", s)
	}
	if len(parts[0]) != 2 || parts[0] == "ff" {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: bad version %q", s, parts[0])
	}
	trace, err := ParseTraceID(parts[1])
	if err != nil {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: %w", s, err)
	}
	if len(parts[2]) != 16 {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: parent id wants 16 hex chars", s)
	}
	var span uint64
	if _, err := fmt.Sscanf(parts[2], "%016x", &span); err != nil {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: parent id: %w", s, err)
	}
	if span == 0 {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q: all-zero parent id is invalid", s)
	}
	return SpanContext{Trace: trace, Span: span}, nil
}

// KindEvent marks a point-in-time event record in the trace stream; span
// records leave Kind empty, which keeps pre-event traces parseable.
const KindEvent = "event"

// SpanLink points from one span at another span — possibly in a different
// trace. The serving layer uses links to make shared work attributable:
// one `serve.batch` span links every member request's span, so a request's
// trace and the batch that actually served it stay connected.
type SpanLink struct {
	Trace string `json:"trace"`
	Span  uint64 `json:"span"`
}

// SpanRecord is the JSONL wire format of one completed span, and — with
// Kind set to KindEvent and a zero duration — of one structured event.
// Trace and Links are omitted when empty, so pre-tracing streams and
// readers stay compatible.
type SpanRecord struct {
	Span   uint64 `json:"span"`
	Parent uint64 `json:"parent,omitempty"`
	Trace  string `json:"trace,omitempty"`
	// Remote marks a span whose parent lives in another process (it was
	// adopted from a traceparent header), so readers know the parent id will
	// never appear in this stream — it's a clean trace root here, not the
	// debris of an aborted run.
	Remote  bool           `json:"remote,omitempty"`
	Kind    string         `json:"kind,omitempty"`
	Name    string         `json:"name"`
	StartUS int64          `json:"start_us"`
	DurUS   int64          `json:"dur_us"`
	Links   []SpanLink     `json:"links,omitempty"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// IsEvent reports whether the record is a structured event rather than a
// span.
func (r *SpanRecord) IsEvent() bool { return r.Kind == KindEvent }

// Span is one timed operation in the trace tree. Identity (id, trace,
// parent) is immutable after creation and safe to read from any goroutine
// via Context(); mutation (SetAttr, Link, End) is mutex-guarded, so a
// batching goroutine can annotate a request span that another goroutine
// owns. All methods are nil-safe so disabled tracing costs a pointer
// check.
type Span struct {
	t      *Tracer
	name   string
	id     uint64
	trace  TraceID
	parent uint64
	remote bool
	start  time.Time

	mu    sync.Mutex
	ended bool
	attrs map[string]any
	links []SpanLink
}

// StartSpan opens a root span in a freshly minted trace.
func (t *Tracer) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, id: t.nextID.Add(1), trace: t.mintTraceID(), start: time.Now()}
}

// StartSpanIn opens a span inside an existing trace under a remote parent
// — the server-side half of `traceparent` propagation. A zero remote falls
// back to StartSpan (fresh root, fresh trace).
func (t *Tracer) StartSpanIn(name string, remote SpanContext) *Span {
	if t == nil {
		return nil
	}
	if remote.IsZero() {
		return t.StartSpan(name)
	}
	return &Span{t: t, name: name, id: t.nextID.Add(1), trace: remote.Trace, parent: remote.Span, remote: true, start: time.Now()}
}

// StartChild opens a child span of s in the same trace.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{t: s.t, name: name, id: s.t.nextID.Add(1), trace: s.trace, parent: s.id, start: time.Now()}
}

// Context returns the span's propagation identity (zero on a nil span).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.trace, Span: s.id}
}

// SetAttr attaches a key/value attribute to the span, overwriting any
// previous value for the key. Attributes set after End are dropped.
func (s *Span) SetAttr(key string, val any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		if s.attrs == nil {
			s.attrs = make(map[string]any, 4)
		}
		s.attrs[key] = val
	}
	s.mu.Unlock()
}

// Link records that this span is causally connected to another span
// without being its child — e.g. a batch span links every request span it
// served. Zero contexts and links added after End are dropped.
func (s *Span) Link(sc SpanContext) {
	if s == nil || sc.IsZero() {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.links = append(s.links, SpanLink{Trace: sc.Trace.String(), Span: sc.Span})
	}
	s.mu.Unlock()
}

// End closes the span and writes its record. End is idempotent: the first
// call wins, later calls (and attribute writes racing with the first) are
// dropped.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs, links := s.attrs, s.links
	s.attrs, s.links = nil, nil
	s.mu.Unlock()
	rec := SpanRecord{
		Span:    s.id,
		Parent:  s.parent,
		Trace:   s.trace.String(),
		Remote:  s.remote,
		Name:    s.name,
		StartUS: s.start.Sub(s.t.epoch).Microseconds(),
		DurUS:   now.Sub(s.start).Microseconds(),
		Links:   links,
		Attrs:   attrs,
	}
	s.t.write(&rec)
}

func (t *Tracer) write(rec *SpanRecord) {
	line, err := json.Marshal(rec)
	t.mu.Lock()
	defer t.mu.Unlock()
	if err != nil {
		if t.err == nil {
			t.err = fmt.Errorf("obs: marshal span %q: %w", rec.Name, err)
		}
		return
	}
	if t.err != nil || t.closed {
		return
	}
	line = append(line, '\n')
	if _, err := t.w.Write(line); err != nil {
		t.err = fmt.Errorf("obs: write span %q: %w", rec.Name, err)
	}
}

// Close flushes and closes the tracer. When the underlying writer is an
// io.Closer (the trace file) it is closed too, so an aborting CLI path can
// call Close once and know the JSONL tail reached disk. Records written
// after Close are dropped; Close is idempotent and returns the first error
// the tracer encountered (write, marshal, or close).
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return t.err
	}
	t.closed = true
	if c, ok := t.w.(io.Closer); ok {
		if err := c.Close(); err != nil && t.err == nil {
			t.err = fmt.Errorf("obs: close trace: %w", err)
		}
	}
	return t.err
}

// CanonicalTrace rewrites trace records into a timing-free canonical form
// for byte-comparison across runs: StartUS and DurUS are zeroed,
// wall-clock-valued attributes (key suffix "_us" or "_s") are dropped, and
// trace IDs — whose raw values depend on the mint seed and order — are
// remapped to "t1", "t2", ... in order of first appearance, both on the
// records and inside their links (links are also sorted, since batch
// membership order races under concurrency). Span ids, parentage, names,
// and the remaining attributes are untouched — for a seeded serial
// workload they are deterministic, so two runs produce byte-identical
// canonical traces even though every raw timestamp and trace ID differs.
// This is what the chaos tests pin fault-schedule reproducibility with.
// The input is not mutated.
func CanonicalTrace(recs []SpanRecord) []SpanRecord {
	out := make([]SpanRecord, len(recs))
	canon := map[string]string{}
	canonID := func(tr string) string {
		if tr == "" {
			return ""
		}
		c, ok := canon[tr]
		if !ok {
			c = fmt.Sprintf("t%d", len(canon)+1)
			canon[tr] = c
		}
		return c
	}
	for i, r := range recs {
		r.StartUS, r.DurUS = 0, 0
		r.Trace = canonID(r.Trace)
		if len(r.Links) > 0 {
			links := make([]SpanLink, len(r.Links))
			for j, l := range r.Links {
				l.Trace = canonID(l.Trace)
				links[j] = l
			}
			sort.Slice(links, func(a, b int) bool {
				if links[a].Trace != links[b].Trace {
					return links[a].Trace < links[b].Trace
				}
				return links[a].Span < links[b].Span
			})
			r.Links = links
		}
		if len(r.Attrs) > 0 {
			attrs := make(map[string]any, len(r.Attrs))
			for k, v := range r.Attrs {
				if strings.HasSuffix(k, "_us") || strings.HasSuffix(k, "_s") {
					continue
				}
				attrs[k] = v
			}
			if len(attrs) == 0 {
				attrs = nil
			}
			r.Attrs = attrs
		}
		out[i] = r
	}
	return out
}

// ReadTrace parses a JSONL trace stream back into records, in file order
// (i.e. span-end order). It is the inverse of the Tracer's serialization
// and the basis of the round-trip tests and any offline analysis tooling.
func ReadTrace(r io.Reader) ([]SpanRecord, error) {
	dec := json.NewDecoder(r)
	var out []SpanRecord
	for {
		var rec SpanRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("obs: parse trace line %d: %w", len(out)+1, err)
		}
		out = append(out, rec)
	}
}
