package obs

import "testing"

func TestDeleteGaugeRetiresSeries(t *testing.T) {
	reg := NewRegistry()
	rec := &Recorder{Metrics: reg}
	rec.SetGauge("serve.queue_depth/em/beer", 3)
	rec.SetGauge("serve.queue_depth/di/buy", 1)
	reg.DeleteGauge("serve.queue_depth/em/beer")
	snap := reg.Snapshot()
	if _, ok := snap.Gauges["serve.queue_depth/em/beer"]; ok {
		t.Fatal("deleted gauge still present in snapshot")
	}
	if v, ok := snap.Gauges["serve.queue_depth/di/buy"]; !ok || v != 1 {
		t.Fatalf("unrelated gauge disturbed: %v %v", v, ok)
	}
	// Idempotent on missing names, nil-safe on nil recorders.
	reg.DeleteGauge("serve.queue_depth/em/beer")
	var nilRec *Recorder
	nilRec.DeleteGauge("anything")
	// Re-creating after deletion starts a fresh series.
	rec.SetGauge("serve.queue_depth/em/beer", 7)
	if v := reg.Snapshot().Gauges["serve.queue_depth/em/beer"]; v != 7 {
		t.Fatalf("recreated gauge = %v, want 7", v)
	}
}
