package obs

import "context"

// Context plumbing carries the current span across API boundaries that a
// *Recorder cannot cross — most importantly the serve path, where the HTTP
// handler's request span must reach the per-adapter batching goroutine so
// the batch span can link it. The span travels by pointer: the downstream
// side reads its identity via Span.Context() and annotates it via the
// mutex-guarded SetAttr, both safe across goroutines.

type spanCtxKey struct{}

// ContextWithSpan returns a context carrying the span. A nil span returns
// ctx unchanged, so untraced paths pay nothing.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil. The nil result
// is safe for every Span method.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}
