package obs

import (
	"reflect"
	"testing"
)

func TestCanonicalTraceZeroesTiming(t *testing.T) {
	in := []SpanRecord{
		{Span: 1, Name: "root", StartUS: 100, DurUS: 5000,
			Attrs: map[string]any{"kind": "ED", "wall_s": 1.5, "backoff_us": int64(300), "attempts": 2}},
		{Span: 2, Parent: 1, Kind: KindEvent, Name: "evt", StartUS: 7, DurUS: 0,
			Attrs: map[string]any{"step_us": 9}},
		{Span: 3, Parent: 1, Name: "bare", StartUS: 42, DurUS: 1},
	}
	// Deep-copy to verify the input survives untouched.
	orig := make([]SpanRecord, len(in))
	for i, r := range in {
		orig[i] = r
		if r.Attrs != nil {
			orig[i].Attrs = map[string]any{}
			for k, v := range r.Attrs {
				orig[i].Attrs[k] = v
			}
		}
	}

	out := CanonicalTrace(in)
	want := []SpanRecord{
		{Span: 1, Name: "root", Attrs: map[string]any{"kind": "ED", "attempts": 2}},
		{Span: 2, Parent: 1, Kind: KindEvent, Name: "evt"},
		{Span: 3, Parent: 1, Name: "bare"},
	}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("canonical form wrong:\n got %+v\nwant %+v", out, want)
	}
	if !reflect.DeepEqual(in, orig) {
		t.Fatalf("CanonicalTrace mutated its input: %+v", in)
	}
}
