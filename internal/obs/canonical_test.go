package obs

import (
	"reflect"
	"testing"
)

func TestCanonicalTraceZeroesTiming(t *testing.T) {
	in := []SpanRecord{
		{Span: 1, Name: "root", StartUS: 100, DurUS: 5000,
			Attrs: map[string]any{"kind": "ED", "wall_s": 1.5, "backoff_us": int64(300), "attempts": 2}},
		{Span: 2, Parent: 1, Kind: KindEvent, Name: "evt", StartUS: 7, DurUS: 0,
			Attrs: map[string]any{"step_us": 9}},
		{Span: 3, Parent: 1, Name: "bare", StartUS: 42, DurUS: 1},
	}
	// Deep-copy to verify the input survives untouched.
	orig := make([]SpanRecord, len(in))
	for i, r := range in {
		orig[i] = r
		if r.Attrs != nil {
			orig[i].Attrs = map[string]any{}
			for k, v := range r.Attrs {
				orig[i].Attrs[k] = v
			}
		}
	}

	out := CanonicalTrace(in)
	want := []SpanRecord{
		{Span: 1, Name: "root", Attrs: map[string]any{"kind": "ED", "attempts": 2}},
		{Span: 2, Parent: 1, Kind: KindEvent, Name: "evt"},
		{Span: 3, Parent: 1, Name: "bare"},
	}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("canonical form wrong:\n got %+v\nwant %+v", out, want)
	}
	if !reflect.DeepEqual(in, orig) {
		t.Fatalf("CanonicalTrace mutated its input: %+v", in)
	}
}

// TestCanonicalTraceRemapsTraceIDsAndLinks is the regression gate for the
// request-tracing fields: raw trace IDs (seed- and mint-order-dependent)
// must remap to stable placeholders in first-appearance order, links must
// follow the same remapping and come out sorted, and the input must not be
// mutated — otherwise the same-seed byte-identity gates in check.sh would
// break the moment a trace carries serving spans.
func TestCanonicalTraceRemapsTraceIDsAndLinks(t *testing.T) {
	in := []SpanRecord{
		{Span: 10, Name: "serve.request", Trace: "aaaa0000aaaa0000aaaa0000aaaa0000", StartUS: 5, DurUS: 90},
		{Span: 11, Name: "serve.request", Trace: "bbbb0000bbbb0000bbbb0000bbbb0000", StartUS: 6, DurUS: 80},
		{Span: 12, Name: "serve.batch", Trace: "cccc0000cccc0000cccc0000cccc0000", DurUS: 40,
			Links: []SpanLink{
				{Trace: "bbbb0000bbbb0000bbbb0000bbbb0000", Span: 11},
				{Trace: "aaaa0000aaaa0000aaaa0000aaaa0000", Span: 10},
			},
			Attrs: map[string]any{"size": 2, "batch_us": 40}},
	}
	orig := make([]SpanRecord, len(in))
	copy(orig, in)
	origLinks := append([]SpanLink(nil), in[2].Links...)

	out := CanonicalTrace(in)
	want := []SpanRecord{
		{Span: 10, Name: "serve.request", Trace: "t1"},
		{Span: 11, Name: "serve.request", Trace: "t2"},
		{Span: 12, Name: "serve.batch", Trace: "t3",
			Links: []SpanLink{{Trace: "t1", Span: 10}, {Trace: "t2", Span: 11}},
			Attrs: map[string]any{"size": 2}},
	}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("canonical form wrong:\n got %+v\nwant %+v", out, want)
	}
	if !reflect.DeepEqual(in[2].Links, origLinks) || in[0].Trace != orig[0].Trace {
		t.Fatalf("CanonicalTrace mutated its input: %+v", in)
	}

	// Same records, different raw IDs (another seed): identical canonical form.
	re := make([]SpanRecord, len(in))
	copy(re, in)
	for i := range re {
		re[i].Trace = "ffff" + re[i].Trace[4:]
	}
	re[2].Links = []SpanLink{
		{Trace: "ffff0000bbbb0000bbbb0000bbbb0000", Span: 11},
		{Trace: "ffff0000aaaa0000aaaa0000aaaa0000", Span: 10},
	}
	if got := CanonicalTrace(re); !reflect.DeepEqual(got, want) {
		t.Fatalf("reseeded trace canonicalized differently:\n got %+v\nwant %+v", got, want)
	}
}
