package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) rendered from a
// RegistrySnapshot, so a long run served behind -pprof can be scraped live.
//
// Metric names in this repository are dotted with an optional "/"-separated
// series suffix ("eval.cell_us/KnowTrans-7B", "skc.lambda/EM/iTunes-Amazon").
// The exposition maps that convention onto Prometheus idiom: dots become
// underscores and the suffix becomes a `series` label, so the family
// `eval_cell_us` carries one time series per method instead of one metric
// family per method.

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName splits a registry metric name into a valid Prometheus metric
// name and an optional series label value.
func promName(name string) (metric, series string) {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		name, series = name[:i], name[i+1:]
	}
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String(), series
}

// promLabel renders a label set: empty, {series="x"}, or with an extra
// le pair for histogram buckets.
func promLabel(series string, extra ...string) string {
	var parts []string
	if series != "" {
		parts = append(parts, `series="`+escapeLabel(series)+`"`)
	}
	for i := 0; i+1 < len(extra); i += 2 {
		parts = append(parts, extra[i]+`="`+escapeLabel(extra[i+1])+`"`)
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promHelp carries HELP text for well-known metric families (keyed by the
// exposition family name, after promName mapping). Families without an
// entry render with a TYPE line only — HELP is optional under the text
// format grammar.
var promHelp = map[string]string{
	"runtime_goroutines":        "Live goroutine count sampled from runtime/metrics.",
	"runtime_heap_live_bytes":   "Live heap bytes (reachable plus unswept) at the last runtime sample.",
	"runtime_heap_objects":      "Live heap object count at the last runtime sample.",
	"runtime_gc_cycles":         "Completed GC cycles since process start.",
	"runtime_gc_pause_p50_us":   "Median stop-the-world GC pause, microseconds, cumulative distribution.",
	"runtime_gc_pause_p95_us":   "95th-percentile stop-the-world GC pause, microseconds, cumulative distribution.",
	"runtime_gc_pause_us":       "Stop-the-world GC pauses observed between runtime samples, microseconds.",
	"runtime_sched_lat_p50_us":  "Median goroutine scheduling latency, microseconds, cumulative distribution.",
	"runtime_sched_lat_p95_us":  "95th-percentile goroutine scheduling latency, microseconds, cumulative distribution.",
	"runtime_alloc_bytes_total": "Heap bytes allocated since sampling started.",
	"runtime_samples":           "Runtime samples taken by the profiler sampler.",
	"profile_captures":          "Triggered CPU/heap profile captures completed.",
	"profile_capture_errors":    "Triggered profile captures that failed.",
	"serve_requests":            "HTTP requests served.",
	"serve_request_us":          "HTTP request latency, microseconds.",
	"serve_inflight":            "Requests currently in flight.",
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format: counters and gauges as single samples, histograms as cumulative
// le buckets plus _sum and _count. Families are emitted in sorted order and
// each family's HELP line (for known families) and TYPE line appear exactly
// once, so the output parses under the text-format grammar regardless of
// how names interleave.
func WritePrometheus(w io.Writer, s RegistrySnapshot) error {
	// One entry per registry metric: its sample lines stay contiguous and in
	// emission order (histogram buckets must remain ascending), while
	// entries within a family are sorted by series for a stable exposition.
	type entry struct {
		series string
		lines  []string
	}
	families := map[string]string{} // family -> prom type
	entries := map[string][]entry{} // family -> per-series sample blocks
	add := func(family, typ, series string, lines ...string) {
		if _, ok := families[family]; !ok {
			families[family] = typ
		}
		entries[family] = append(entries[family], entry{series: series, lines: lines})
	}

	for name, v := range s.Counters {
		fam, series := promName(name)
		add(fam, "counter", series, fmt.Sprintf("%s%s %d", fam, promLabel(series), v))
	}
	for name, v := range s.Gauges {
		fam, series := promName(name)
		add(fam, "gauge", series, fmt.Sprintf("%s%s %s", fam, promLabel(series), promFloat(v)))
	}
	for name, h := range s.Histograms {
		fam, series := promName(name)
		var lines []string
		var cum int64
		for i, le := range h.Le {
			if i < len(h.Bkt) {
				cum += h.Bkt[i]
			}
			lines = append(lines, fmt.Sprintf("%s_bucket%s %d",
				fam, promLabel(series, "le", promFloat(le)), cum))
		}
		lines = append(lines,
			fmt.Sprintf("%s_bucket%s %d", fam, promLabel(series, "le", "+Inf"), h.Count),
			fmt.Sprintf("%s_sum%s %s", fam, promLabel(series), promFloat(h.Sum)),
			fmt.Sprintf("%s_count%s %d", fam, promLabel(series), h.Count))
		add(fam, "histogram", series, lines...)
	}

	names := make([]string, 0, len(families))
	for fam := range families {
		names = append(names, fam)
	}
	sort.Strings(names)
	for _, fam := range names {
		if help, ok := promHelp[fam]; ok {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam, help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, families[fam]); err != nil {
			return err
		}
		es := entries[fam]
		sort.Slice(es, func(i, j int) bool { return es[i].series < es[j].series })
		for _, e := range es {
			for _, l := range e.lines {
				if _, err := fmt.Fprintln(w, l); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
