package obs

import (
	"bytes"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// --- minimal Prometheus text-format (0.0.4) parser --------------------------
//
// Enough of the grammar to act as a conformance check for WritePrometheus:
// TYPE comments, sample lines `name{label="value",...} value`, label escape
// sequences, float values (incl. +Inf), and the histogram invariants
// (cumulative buckets non-decreasing, +Inf bucket == _count).

var (
	promMetricRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

type promDoc struct {
	types   map[string]string // family -> counter|gauge|histogram|...
	samples []promSample
}

func parseProm(t *testing.T, text string) *promDoc {
	t.Helper()
	doc := &promDoc{types: map[string]string{}}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, " ")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					t.Fatalf("line %d: malformed TYPE comment %q", ln+1, line)
				}
				name, typ := fields[2], fields[3]
				if !promMetricRe.MatchString(name) {
					t.Fatalf("line %d: invalid family name %q", ln+1, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					t.Fatalf("line %d: invalid type %q", ln+1, typ)
				}
				if _, dup := doc.types[name]; dup {
					t.Fatalf("line %d: duplicate TYPE for %q", ln+1, name)
				}
				doc.types[name] = typ
			}
			continue
		}
		doc.samples = append(doc.samples, parsePromSample(t, ln+1, line))
	}
	return doc
}

func parsePromSample(t *testing.T, ln int, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		t.Fatalf("line %d: no value separator in %q", ln, line)
	} else {
		s.name = rest[:i]
		rest = rest[i:]
	}
	if !promMetricRe.MatchString(s.name) {
		t.Fatalf("line %d: invalid metric name %q", ln, s.name)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			t.Fatalf("line %d: unterminated label set in %q", ln, line)
		}
		for _, pair := range splitPromLabels(t, ln, rest[1:end]) {
			eq := strings.Index(pair, "=")
			if eq < 0 {
				t.Fatalf("line %d: malformed label %q", ln, pair)
			}
			key, val := pair[:eq], pair[eq+1:]
			if !promLabelRe.MatchString(key) {
				t.Fatalf("line %d: invalid label name %q", ln, key)
			}
			if len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
				t.Fatalf("line %d: unquoted label value %q", ln, val)
			}
			unescaped, err := unescapePromLabel(val[1 : len(val)-1])
			if err != nil {
				t.Fatalf("line %d: %v", ln, err)
			}
			s.labels[key] = unescaped
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	// One value, optional timestamp (we never emit one).
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		t.Fatalf("line %d: want `value [timestamp]`, got %q", ln, rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		t.Fatalf("line %d: bad value %q: %v", ln, fields[0], err)
	}
	s.value = v
	return s
}

// splitPromLabels splits on commas outside quotes.
func splitPromLabels(t *testing.T, ln int, s string) []string {
	t.Helper()
	var out []string
	var cur strings.Builder
	inQuote, escaped := false, false
	for _, r := range s {
		switch {
		case escaped:
			cur.WriteRune(r)
			escaped = false
		case r == '\\':
			cur.WriteRune(r)
			escaped = true
		case r == '"':
			cur.WriteRune(r)
			inQuote = !inQuote
		case r == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	if inQuote {
		t.Fatalf("line %d: unterminated quote in label set %q", ln, s)
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

func unescapePromLabel(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("dangling backslash in label value %q", s)
		}
		switch s[i] {
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case 'n':
			b.WriteByte('\n')
		default:
			return "", fmt.Errorf("invalid escape \\%c in label value %q", s[i], s)
		}
	}
	return b.String(), nil
}

// --- tests -------------------------------------------------------------------

func testSnapshot() RegistrySnapshot {
	reg := NewRegistry()
	reg.Counter("akb.oracle_calls").Add(7)
	reg.Counter("model.predict").Add(123)
	reg.Gauge("skc.lambda/EM/iTunes-Amazon").Set(0.21)
	reg.Gauge("akb.best_score").Set(92.5)
	h := reg.Histogram("eval.cell_us/KnowTrans-7B", []float64{10, 100, 1000})
	for _, v := range []float64{5, 50, 500, 5000} {
		h.Observe(v)
	}
	reg.Histogram("eval.cell_us/Jellyfish-7B", []float64{10, 100, 1000}).Observe(42)
	return reg.Snapshot()
}

// TestPrometheusGrammar renders a realistic snapshot and runs it through
// the minimal parser: every line must be well-formed, every sample must
// belong to a declared family, and histogram invariants must hold.
func TestPrometheusGrammar(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, testSnapshot()); err != nil {
		t.Fatal(err)
	}
	doc := parseProm(t, buf.String())

	if len(doc.samples) == 0 {
		t.Fatal("no samples emitted")
	}
	for _, s := range doc.samples {
		fam := s.name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(fam, suffix); base != fam && doc.types[base] == "histogram" {
				fam = base
				break
			}
		}
		if _, ok := doc.types[fam]; !ok {
			t.Errorf("sample %q has no TYPE declaration", s.name)
		}
	}
}

func TestPrometheusValues(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, testSnapshot()); err != nil {
		t.Fatal(err)
	}
	doc := parseProm(t, buf.String())
	find := func(name, series, le string) (float64, bool) {
		for _, s := range doc.samples {
			if s.name == name && s.labels["series"] == series && s.labels["le"] == le {
				return s.value, true
			}
		}
		return 0, false
	}
	if v, ok := find("akb_oracle_calls", "", ""); !ok || v != 7 {
		t.Errorf("akb_oracle_calls = %g, %v", v, ok)
	}
	if v, ok := find("skc_lambda", "EM/iTunes-Amazon", ""); !ok || v != 0.21 {
		t.Errorf("skc_lambda{series=EM/iTunes-Amazon} = %g, %v", v, ok)
	}
	if v, ok := find("eval_cell_us_count", "KnowTrans-7B", ""); !ok || v != 4 {
		t.Errorf("histogram _count = %g, %v", v, ok)
	}
	if v, ok := find("eval_cell_us_sum", "KnowTrans-7B", ""); !ok || v != 5555 {
		t.Errorf("histogram _sum = %g, %v", v, ok)
	}
}

// TestPrometheusHistogramInvariants checks cumulative bucket monotonicity
// and that the +Inf bucket equals _count for every series.
func TestPrometheusHistogramInvariants(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, testSnapshot()); err != nil {
		t.Fatal(err)
	}
	doc := parseProm(t, buf.String())
	type key struct{ name, series string }
	buckets := map[key][]float64{} // in emission order
	counts := map[key]float64{}
	infs := map[key]float64{}
	for _, s := range doc.samples {
		k := key{strings.TrimSuffix(s.name, "_bucket"), s.labels["series"]}
		switch {
		case strings.HasSuffix(s.name, "_bucket") && s.labels["le"] == "+Inf":
			infs[k] = s.value
		case strings.HasSuffix(s.name, "_bucket"):
			buckets[k] = append(buckets[k], s.value)
		case strings.HasSuffix(s.name, "_count"):
			counts[key{strings.TrimSuffix(s.name, "_count"), s.labels["series"]}] = s.value
		}
	}
	if len(buckets) == 0 {
		t.Fatal("no histogram buckets found")
	}
	for k, bs := range buckets {
		for i := 1; i < len(bs); i++ {
			if bs[i] < bs[i-1] {
				t.Errorf("%v: buckets not cumulative: %v", k, bs)
			}
		}
		if infs[k] != counts[k] {
			t.Errorf("%v: +Inf bucket %g != _count %g", k, infs[k], counts[k])
		}
		if len(bs) > 0 && bs[len(bs)-1] > infs[k] {
			t.Errorf("%v: finite bucket %g exceeds +Inf %g", k, bs[len(bs)-1], infs[k])
		}
	}
}

func TestPromNameSanitization(t *testing.T) {
	cases := []struct{ in, metric, series string }{
		{"akb.oracle_calls", "akb_oracle_calls", ""},
		{"eval.cell_us/KnowTrans-7B", "eval_cell_us", "KnowTrans-7B"},
		{"skc.lambda/EM/iTunes-Amazon", "skc_lambda", "EM/iTunes-Amazon"},
		{"7weird name", "_7weird_name", ""},
	}
	for _, c := range cases {
		m, s := promName(c.in)
		if m != c.metric || s != c.series {
			t.Errorf("promName(%q) = %q,%q want %q,%q", c.in, m, s, c.metric, c.series)
		}
		if !promMetricRe.MatchString(m) {
			t.Errorf("promName(%q) metric %q not grammar-valid", c.in, m)
		}
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge(`g/quote"back\slash`).Set(1)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	doc := parseProm(t, buf.String())
	if len(doc.samples) != 1 {
		t.Fatalf("samples = %+v", doc.samples)
	}
	if got := doc.samples[0].labels["series"]; got != `quote"back\slash` {
		t.Errorf("escaped label round-trip = %q", got)
	}
}

// TestPrometheusRuntimeMetrics renders the families the runtime sampler
// feeds (hand-fed here; the sampler's own tests cover the feeding) and
// checks the exposition: family names, HELP before TYPE for known
// families, and gauge/histogram shape.
func TestPrometheusRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	// Mirror of the profile package's metric names (it imports obs, so the
	// literals are repeated here rather than imported).
	reg.Gauge("runtime.goroutines").Set(42)
	reg.Gauge("runtime.heap_live_bytes").Set(8 << 20)
	reg.Gauge("runtime.heap_objects").Set(10000)
	reg.Gauge("runtime.gc_pause_p95_us").Set(250)
	reg.Counter("runtime.alloc_bytes_total").Add(1 << 20)
	h := reg.Histogram("runtime.gc_pause_us", []float64{10, 100, 1000, 10000})
	for _, v := range []float64{30, 300, 250} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	doc := parseProm(t, text)

	wantTypes := map[string]string{
		"runtime_goroutines":        "gauge",
		"runtime_heap_live_bytes":   "gauge",
		"runtime_heap_objects":      "gauge",
		"runtime_gc_pause_p95_us":   "gauge",
		"runtime_alloc_bytes_total": "counter",
		"runtime_gc_pause_us":       "histogram",
	}
	for fam, typ := range wantTypes {
		if doc.types[fam] != typ {
			t.Errorf("family %s type = %q, want %q", fam, doc.types[fam], typ)
		}
	}
	find := func(name string) (float64, bool) {
		for _, s := range doc.samples {
			if s.name == name && s.labels["le"] == "" {
				return s.value, true
			}
		}
		return 0, false
	}
	if v, ok := find("runtime_goroutines"); !ok || v != 42 {
		t.Errorf("runtime_goroutines = %g, %v", v, ok)
	}
	if v, ok := find("runtime_gc_pause_us_count"); !ok || v != 3 {
		t.Errorf("runtime_gc_pause_us_count = %g, %v", v, ok)
	}
}

// TestPrometheusHelpLines checks HELP rendering: known families get one
// HELP line immediately preceding their TYPE line; unknown families get
// TYPE only.
func TestPrometheusHelpLines(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("runtime.goroutines").Set(1)
	reg.Counter("serve.requests").Add(2)
	reg.Counter("custom.unknown_family").Add(3)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(buf.String(), "\n")
	helpFor := map[string]int{}
	typeFor := map[string]int{}
	for i, line := range lines {
		fields := strings.Fields(line)
		if len(fields) >= 3 && fields[0] == "#" {
			switch fields[1] {
			case "HELP":
				if _, dup := helpFor[fields[2]]; dup {
					t.Errorf("duplicate HELP for %s", fields[2])
				}
				helpFor[fields[2]] = i
			case "TYPE":
				typeFor[fields[2]] = i
			}
		}
	}
	for _, fam := range []string{"runtime_goroutines", "serve_requests"} {
		hi, ok := helpFor[fam]
		if !ok {
			t.Errorf("no HELP line for %s", fam)
			continue
		}
		if ti := typeFor[fam]; ti != hi+1 {
			t.Errorf("%s: HELP at line %d not immediately before TYPE at %d", fam, hi, ti)
		}
	}
	if _, ok := helpFor["custom_unknown_family"]; ok {
		t.Error("unknown family got a HELP line")
	}
	// The parser accepts the full document (HELP comments don't break it).
	parseProm(t, buf.String())
}

// TestPrometheusOmitsExemplars pins that exemplars recorded on histograms
// stay out of the 0.0.4 text exposition — they are OpenMetrics syntax and
// would break 0.0.4 parsers.
func TestPrometheusOmitsExemplars(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(reg, nil)
	rec.ObserveEx("runtime.gc_pause_us", 123, []float64{10, 100, 1000}, "deadbeefdeadbeefdeadbeefdeadbeef")
	snap := reg.Snapshot()
	if len(snap.Histograms["runtime.gc_pause_us"].Exemplars) == 0 {
		t.Fatal("exemplar was not recorded in the snapshot")
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, snap); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if strings.Contains(text, "deadbeef") || strings.Contains(text, "# {") {
		t.Errorf("exemplar leaked into text exposition:\n%s", text)
	}
	parseProm(t, text)
}
