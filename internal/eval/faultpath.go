package eval

import (
	"context"

	"repro/internal/akb"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/obs"
	"repro/internal/tasks"
)

// fallibleOracle builds the oracle chain one experiment cell drives its AKB
// search through — core.OracleChain over the zoo's armed fault spec (nil
// spec: the plain infallible adapter, byte-for-byte the pre-chaos path).
// The chain's seeds are content-addressed per cell, so chaos runs reproduce
// exactly at any -workers count.
func (z *Zoo) fallibleOracle(g akb.Oracle, cellSeed int64, rec *obs.Recorder) akb.FallibleOracle {
	return core.OracleChain(g, z.Faults, cellSeed, rec)
}

// searchAKB runs akb.SearchFallible through the zoo's oracle chain. Direct
// search sites (Fig. 7's round sweep, the oracle ablation) go through here
// so an armed fault spec covers them the same way it covers full transfers.
func (z *Zoo) searchAKB(pred akb.Predictor, g akb.Oracle, kind tasks.Kind, valid, probe []*data.Instance, cfg akb.Config, cellSeed int64, rec *obs.Recorder) *akb.Result {
	return akb.SearchFallible(context.Background(), pred, z.fallibleOracle(g, cellSeed, rec), kind, valid, probe, cfg)
}
