package eval

import (
	"context"
	"time"

	"repro/internal/akb"
	"repro/internal/data"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/tasks"
)

// fallibleOracle builds the oracle chain one experiment cell drives its AKB
// search through. Without an armed fault spec it is the plain infallible
// adapter — byte-for-byte the pre-chaos path. With one, the chain is
//
//	simulated GPT → faults.Injector → resilience.ResilientOracle
//
// with the injector's schedule and the client's backoff jitter seeded per
// cell (content-addressed, like every other seed in the harness), so chaos
// runs reproduce exactly at any -workers count. Backoff waits are elided:
// the injected faults are instantaneous, so sleeping between retries would
// only slow the grid without changing any decision the chain makes.
func (z *Zoo) fallibleOracle(g akb.Oracle, cellSeed int64, rec *obs.Recorder) akb.FallibleOracle {
	if z.Faults == nil {
		return akb.AsFallible(g)
	}
	fcfg := *z.Faults
	fcfg.Seed = faults.DeriveSeed(z.Faults.Seed, cellSeed)
	fcfg.Rec = rec
	return resilience.New(faults.Wrap(g, fcfg), resilience.Policy{
		Seed:        faults.DeriveSeed(z.Faults.Seed+1, cellSeed),
		Sleep:       func(time.Duration) {},
		CallTimeout: -1, // the simulated oracle cannot hang; timeouts arrive as injected errors
		Rec:         rec,
	})
}

// searchAKB runs akb.SearchFallible through the zoo's oracle chain. Direct
// search sites (Fig. 7's round sweep, the oracle ablation) go through here
// so an armed fault spec covers them the same way it covers full transfers.
func (z *Zoo) searchAKB(pred akb.Predictor, g akb.Oracle, kind tasks.Kind, valid, probe []*data.Instance, cfg akb.Config, cellSeed int64, rec *obs.Recorder) *akb.Result {
	return akb.SearchFallible(context.Background(), pred, z.fallibleOracle(g, cellSeed, rec), kind, valid, probe, cfg)
}
