package eval

import (
	"fmt"
	"math"
	"strings"
)

// Table is a rendered experiment result: named columns, one row per
// dataset (or series point), with optional per-task and overall averages —
// the same layout as the paper's result tables.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    []Row
}

// Row is one result line. Score cells may be NaN-free floats or absent
// (rendered as "-").
type Row struct {
	Task    string
	Dataset string
	Cells   map[string]float64
	// IsAverage marks synthesized average rows.
	IsAverage bool
}

// AddRow appends a result row.
func (t *Table) AddRow(task, dataset string, cells map[string]float64) {
	t.Rows = append(t.Rows, Row{Task: task, Dataset: dataset, Cells: cells})
}

// WithAverages returns a copy of the table with per-task average rows (for
// tasks having more than one dataset) and a final overall average row,
// mirroring the paper's table layout.
func (t *Table) WithAverages() *Table {
	out := &Table{ID: t.ID, Title: t.Title, Columns: t.Columns}
	byTask := map[string][]Row{}
	var taskOrder []string
	for _, r := range t.Rows {
		if _, ok := byTask[r.Task]; !ok {
			taskOrder = append(taskOrder, r.Task)
		}
		byTask[r.Task] = append(byTask[r.Task], r)
	}
	avgOf := func(rows []Row) map[string]float64 {
		cells := map[string]float64{}
		for _, c := range t.Columns {
			var sum float64
			var n int
			for _, r := range rows {
				if v, ok := r.Cells[c]; ok {
					sum += v
					n++
				}
			}
			if n > 0 {
				cells[c] = sum / float64(n)
			}
		}
		return cells
	}
	for _, task := range taskOrder {
		rows := byTask[task]
		out.Rows = append(out.Rows, rows...)
		if len(rows) > 1 {
			out.Rows = append(out.Rows, Row{Task: task, Dataset: "Average", Cells: avgOf(rows), IsAverage: true})
		}
	}
	out.Rows = append(out.Rows, Row{Task: "", Dataset: "Average (all)", Cells: avgOf(t.Rows), IsAverage: true})
	return out
}

// Render produces an aligned plain-text table.
func (t *Table) Render() string {
	headers := append([]string{"Task", "Dataset"}, t.Columns...)
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	cells := make([][]string, 0, len(t.Rows))
	for _, r := range t.Rows {
		row := []string{r.Task, r.Dataset}
		for _, c := range t.Columns {
			v, ok := r.Cells[c]
			switch {
			case !ok:
				row = append(row, "-")
			case v == math.Trunc(v):
				row = append(row, fmt.Sprintf("%.0f", v))
			case math.Abs(v) < 0.05:
				// Sub-cent costs (Table III) need more precision.
				row = append(row, fmt.Sprintf("%.4g", v))
			default:
				row = append(row, fmt.Sprintf("%.2f", v))
			}
		}
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
		cells = append(cells, row)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	writeRow := func(row []string) {
		for i, cell := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteString("\n")
	}
	writeRow(headers)
	total := len(headers) - 1
	for _, w := range widths {
		total += w + 1
	}
	sb.WriteString(strings.Repeat("-", total) + "\n")
	for i, row := range cells {
		if t.Rows[i].IsAverage {
			sb.WriteString(strings.Repeat("-", total) + "\n")
		}
		writeRow(row)
	}
	return sb.String()
}

// CellAt returns the cell at (task, dataset, column), skipping synthesized
// average rows (0 and false when absent). Dataset names repeat across tasks
// — Rayyan appears under both ED and DC, Beer under ED and DC — so lookups
// must be task-qualified to read the right task's score.
func (t *Table) CellAt(task, dataset, column string) (float64, bool) {
	for _, r := range t.Rows {
		if r.IsAverage || r.Task != task || r.Dataset != dataset {
			continue
		}
		v, ok := r.Cells[column]
		return v, ok
	}
	return 0, false
}

// Average returns the mean of a column across non-average rows.
func (t *Table) Average(column string) float64 {
	var sum float64
	var n int
	for _, r := range t.Rows {
		if r.IsAverage {
			continue
		}
		if v, ok := r.Cells[column]; ok {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
