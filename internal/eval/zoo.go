// Package eval is the experiment harness: it builds and caches the model
// artifacts (bases, upstream DP-LLMs, patch libraries), wires every method
// of Section VII-A, and reproduces each table and figure of the paper's
// evaluation as a runnable experiment. See the registry in experiments.go.
package eval

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/baselines"
	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/faults"
	"repro/internal/lora"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/skc"
	"repro/internal/tasks"
)

// Size names the model tiers of the paper.
type Size string

// The model tiers. The 7B/8B/13B tiers correspond to Jellyfish backbones;
// the GPT tiers are wider generalists without upstream DP fine-tuning;
// Table is the TableLLaMA-style generalist.
const (
	Size7B    Size = "7B"
	Size8B    Size = "8B"
	Size13B   Size = "13B"
	SizeGPT35 Size = "GPT-3.5"
	SizeGPT4  Size = "GPT-4"
	SizeGPT4o Size = "GPT-4o"
	SizeTable Size = "Table"
)

func (s Size) hidden() int {
	switch s {
	case Size7B, SizeTable:
		return model.Hidden7B
	case Size8B:
		return model.Hidden8B
	case Size13B:
		return model.Hidden13B
	case SizeGPT35:
		return model.HiddenGPT35
	case SizeGPT4:
		return model.HiddenGPT4
	case SizeGPT4o:
		return model.HiddenGPT4o
	default:
		panic(fmt.Sprintf("eval: unknown size %q", s))
	}
}

// pretrainSamples returns the general-corpus size for a tier: the knob that
// orders general capability GPT-4 ≈ GPT-4o > GPT-3.5 > base > TableLLaMA.
func (s Size) pretrainSamples() int {
	switch s {
	case SizeGPT4, SizeGPT4o:
		return 9000
	case SizeGPT35:
		return 6000
	case SizeTable:
		return 1200
	default:
		return 4000
	}
}

// Zoo builds and caches every artifact the experiments share: generated
// datasets, pretrained bases, upstream-SFT'd DP-LLMs, extracted patch
// libraries, and MELD centroids. All artifacts are deterministic in
// (Seed, Scale) and immutable once built (methods clone models before
// training them), so the cache is safe to hit from many experiment cells
// at once: concurrent requests for an artifact being built sleep on a
// condition variable until the builder publishes it.
type Zoo struct {
	Seed  int64
	Scale float64

	// Workers is the fan-out of the experiment cell pool (see runCells):
	// grids of independent (dataset × method) cells are evaluated by this
	// many goroutines. Values <= 1 keep today's serial path, running every
	// cell inline on the calling goroutine. Results are identical at any
	// worker count — cells derive their seeds from content-addressed keys,
	// not from execution order.
	Workers int

	// Rec, when set before the first artifact is built, threads
	// observability through every model the zoo constructs and every
	// KnowTrans transfer it runs; experiment runners additionally record a
	// per-cell wall-time histogram (eval.cell_us and eval.cell_us/<method>).
	// Leave nil for uninstrumented runs.
	Rec *obs.Recorder

	// Faults, when non-nil, arms chaos injection on the oracle path: every
	// AKB search runs against the simulated oracle wrapped in a seeded
	// faults.Injector and a resilience.ResilientOracle (see fallibleOracle).
	// The spec's Seed is a base that each cell folds its own seed into, so
	// fault schedules are reproducible and worker-order independent. Nil —
	// the default — is the unwrapped, byte-identical production path.
	Faults *faults.Config

	mu       sync.Mutex
	cond     sync.Cond // lazily bound to mu; broadcast when a build finishes
	cache    map[string]interface{}
	building map[string]bool // keys whose build is in flight
}

// NewZoo returns a Zoo generating datasets at the given scale of the
// paper's row counts (1.0 = full Table I sizes).
func NewZoo(seed int64, scale float64) *Zoo {
	if scale <= 0 || scale > 1 {
		panic("eval: scale must be in (0, 1]")
	}
	return &Zoo{Seed: seed, Scale: scale, cache: map[string]interface{}{}}
}

// memo caches build results by key. The lock is NOT held while build runs —
// builders recursively request other artifacts (Upstream needs Base), and a
// held mutex would self-deadlock. Duplicate concurrent builds are prevented
// by a per-key building marker; waiters block on the condition variable
// instead of sleep-polling and are woken by the broadcast every finished
// build sends. The marker is cleared under defer so a builder that panics
// releases the slot and wakes its waiters — one of them retries the build —
// rather than leaking a marker nobody owns and wedging every later request
// for the key.
func (z *Zoo) memo(key string, build func() interface{}) interface{} {
	z.mu.Lock()
	if z.cond.L == nil {
		z.cond.L = &z.mu
	}
	if z.cache == nil {
		z.cache = map[string]interface{}{}
	}
	if z.building == nil {
		z.building = map[string]bool{}
	}
	for {
		if v, ok := z.cache[key]; ok {
			z.mu.Unlock()
			return v
		}
		if !z.building[key] {
			break
		}
		z.cond.Wait()
	}
	z.building[key] = true
	z.mu.Unlock()

	var v interface{}
	built := false
	defer func() {
		z.mu.Lock()
		delete(z.building, key)
		if built {
			z.cache[key] = v
		}
		z.cond.Broadcast()
		z.mu.Unlock()
	}()
	v = build()
	built = true
	return v
}

// Downstream returns the 13 novel datasets of Table I.
func (z *Zoo) Downstream() []*datagen.Bundle {
	return z.memo("downstream", func() interface{} {
		return datagen.Downstream(z.Seed, z.Scale)
	}).([]*datagen.Bundle)
}

// DownstreamByKey returns one downstream dataset, panicking on an unknown
// key (experiment code passes literal keys). CLI paths that accept
// user-supplied keys should use FindDownstream instead.
func (z *Zoo) DownstreamByKey(key string) *datagen.Bundle {
	b, ok := z.FindDownstream(key)
	if !ok {
		panic(fmt.Sprintf("eval: unknown downstream dataset %q", key))
	}
	return b
}

// FindDownstream returns the downstream dataset with the given key, or
// false when no such dataset exists.
func (z *Zoo) FindDownstream(key string) (*datagen.Bundle, bool) {
	for _, b := range z.Downstream() {
		if b.Key() == key {
			return b, true
		}
	}
	return nil, false
}

// DownstreamKeys lists every downstream dataset key (for usage messages).
func (z *Zoo) DownstreamKeys() []string {
	var keys []string
	for _, b := range z.Downstream() {
		keys = append(keys, b.Key())
	}
	return keys
}

// UpstreamBundles returns the 12 upstream datasets of Table VII. Upstream
// data is the abundant resource of the setting (the paper's 36k labeled
// samples), so it is generated at a floor scale even when the downstream
// evaluation is shrunk.
func (z *Zoo) UpstreamBundles() []*datagen.Bundle {
	return z.memo("upstream", func() interface{} {
		scale := z.Scale
		if scale < 0.3 {
			scale = 0.3
		}
		return datagen.Upstream(z.Seed, scale)
	}).([]*datagen.Bundle)
}

// Base returns the pretrained base model of a tier (the Mistral-7B /
// Llama-3-8B / GPT analogue): general-corpus pretraining only, no DP
// upstream SFT.
func (z *Zoo) Base(size Size) *model.Model {
	return z.memo("base/"+string(size), func() interface{} {
		m := model.New(model.Config{
			Name:   "base-" + string(size),
			Hidden: size.hidden(),
			Seed:   z.Seed + int64(size.hidden()),
		})
		m.Rec = z.Rec
		// GPT tiers get the rich instruction-tuning mixture (error spotting,
		// repair priors); raw base models get the lean one; the
		// TableLLaMA-style generalist gets table tasks with no instruction
		// tuning at all — the capability ordering of Section VII-A.
		var corpus []datagen.LabeledExample
		switch size {
		case SizeGPT35, SizeGPT4, SizeGPT4o:
			corpus = datagen.GeneralCorpus(z.Seed+101, size.pretrainSamples(), true)
		case SizeTable:
			corpus = datagen.TableCorpus(z.Seed+101, size.pretrainSamples())
		default:
			corpus = datagen.GeneralCorpus(z.Seed+101, size.pretrainSamples(), false)
		}
		var exs []model.TrainExample
		for _, ex := range corpus {
			exs = append(exs, model.TrainExample{
				Spec:      ex.Kind.Spec(),
				Instance:  ex.Instance,
				Knowledge: ex.Knowledge,
			})
		}
		ps := m.Params()
		model.Train(m, exs, model.TrainConfig{Epochs: 2, LR: 0.02, Clip: 5, Seed: z.Seed + 7}, &ps)
		return m
	}).(*model.Model)
}

// Upstream returns the upstream DP-LLM of a tier (the Jellyfish analogue):
// the base model fully fine-tuned on the 12 upstream datasets in one shared
// parameter space — the multi-task SFT whose gradient conflicts cause the
// knowledge-distraction problem.
func (z *Zoo) Upstream(size Size) *model.Model {
	return z.memo("upstream-model/"+string(size), func() interface{} {
		m := z.Base(size).Clone()
		m.Cfg.Name = "jellyfish-" + string(size)
		var exs []model.TrainExample
		for _, b := range z.UpstreamBundles() {
			exs = append(exs, model.ExamplesFrom(b.Kind, rebalance(b, z.Seed), nil)...)
		}
		ps := m.Params()
		model.Train(m, exs, model.TrainConfig{Epochs: 3, LR: 0.015, Clip: 5, Seed: z.Seed + 13}, &ps)
		return m
	}).(*model.Model)
}

// rebalance caps the negative:positive ratio of binary upstream datasets at
// 4:1 for SFT, the standard DP-LLM training practice (the Jellyfish recipe
// rebalances its heavily skewed sources): without it the 1–6% positive
// rates of Table VII entrench an extreme "no" prior that few-shot
// fine-tuning cannot undo downstream.
func rebalance(b *datagen.Bundle, seed int64) []*data.Instance {
	if !b.Kind.IsBinary() {
		return b.DS.Train
	}
	var pos, neg []*data.Instance
	for _, in := range b.DS.Train {
		if in.GoldText() == tasks.AnswerYes {
			pos = append(pos, in)
		} else {
			neg = append(neg, in)
		}
	}
	maxNeg := 4 * len(pos)
	if len(pos) == 0 || len(neg) <= maxNeg {
		return b.DS.Train
	}
	rng := rand.New(rand.NewSource(seed + int64(len(b.DS.Train))))
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	out := append(append([]*data.Instance{}, pos...), neg[:maxNeg]...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Patches returns the SKC knowledge-patch library of a tier: one LoRA patch
// per upstream dataset, extracted on the tier's base model (Section V-A's
// cross-model parameterization). Extraction happens once and is shared by
// every downstream transfer, like the paper's patch library.
func (z *Zoo) Patches(size Size) []*skc.NamedSnapshot {
	return z.memo("patches/"+string(size), func() interface{} {
		var sources []skc.Source
		for _, b := range z.UpstreamBundles() {
			sources = append(sources, skc.Source{
				Name:     b.Key(),
				Examples: model.ExamplesFrom(b.Kind, rebalance(b, z.Seed+1), nil),
			})
		}
		return skc.ExtractPatches(z.Base(size), sources, skc.Options{
			Patch: lora.DefaultConfig(),
			Seed:  z.Seed + 29,
			Rec:   z.Rec,
		})
	}).([]*skc.NamedSnapshot)
}

// Centroids returns the per-upstream-dataset record centroids MELD's
// instance-level gate routes with, aligned with Patches order.
func (z *Zoo) Centroids(size Size) []baselines.Centroid {
	return z.memo("centroids/"+string(size), func() interface{} {
		m := z.Base(size)
		var cents []baselines.Centroid
		for _, b := range z.UpstreamBundles() {
			ins := b.DS.Train
			if len(ins) > 200 {
				ins = ins[:200]
			}
			cents = append(cents, baselines.CentroidOf(m, b.Key(), ins))
		}
		return cents
	}).([]baselines.Centroid)
}
