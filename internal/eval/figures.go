package eval

import (
	"fmt"
	"strconv"

	"repro/internal/akb"
	"repro/internal/baselines"
	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/lora"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/tasks"
)

// --- Fig. 4: scalability --------------------------------------------------------

var fig4Datasets = []string{"DC/Rayyan", "SM/CMS", "EM/Walmart-Amazon", "AVE/AE-110k"}

// fig4Counts are the labeled-instance budgets of Fig. 4.
var fig4Counts = []int{20, 50, 100, 200, 1000, 2000}

func runFig4(z *Zoo, reps int) *Table {
	t := &Table{ID: "fig4", Title: "Scalability: Jellyfish-7B vs KnowTrans-7B as labeled instances grow",
		Columns: []string{"Instances", "Jellyfish-7B", "KnowTrans-7B"}}
	type point struct {
		b *datagen.Bundle
		n int
	}
	var points []point
	for _, key := range fig4Datasets {
		b := z.DownstreamByKey(key)
		prev := -1
		for _, n := range fig4Counts {
			if n > len(b.DS.Train) {
				// At reduced generation scale the pool may be smaller than
				// the paper's largest budgets; use what exists.
				n = len(b.DS.Train)
			}
			if n == prev {
				continue
			}
			prev = n
			points = append(points, point{b, n})
		}
	}
	methods := []string{MethodJellyfish, MethodKnowTrans}
	var jobs []cellJob[float64]
	for _, pt := range points {
		for _, name := range methods {
			jobs = append(jobs, methodCell(z, pt.b, cellKey(pt.b.Key(), name, strconv.Itoa(pt.n)), name, reps, pt.n,
				func() baselines.Method { return z.Method(name) }))
		}
	}
	scores := runCells(z, jobs)
	for i, pt := range points {
		t.AddRow(string(pt.b.Kind), fmt.Sprintf("%s@%d", pt.b.DS.Name, pt.n), map[string]float64{
			"Instances":    float64(pt.n),
			"Jellyfish-7B": scores[2*i],
			"KnowTrans-7B": scores[2*i+1],
		})
	}
	return t
}

// --- Fig. 5 / Fig. 6: backbones ---------------------------------------------------

// backboneVariants pairs each backbone with its KnowTrans-boosted version.
func backboneVariants(z *Zoo) []struct {
	column string
	method baselines.Method
} {
	return []struct {
		column string
		method baselines.Method
	}{
		{"Mistral-7B", z.Method(MethodMistral)},
		{"Mistral-7B+KT", z.KnowTransOnBase(Size7B)},
		{"Jellyfish-7B", z.Method(MethodJellyfish)},
		{"Jellyfish-7B+KT", z.KnowTransMethod(Size7B, true, true, lora.StrategyAdaptive)},
		{"Jellyfish-8B", &baselines.FineTuned{MethodName: "Jellyfish-8B", Backbone: upstreamClone(z, Size8B)}},
		{"Jellyfish-8B+KT", z.KnowTransMethod(Size8B, true, true, lora.StrategyAdaptive)},
		{"Jellyfish-13B", &baselines.FineTuned{MethodName: "Jellyfish-13B", Backbone: upstreamClone(z, Size13B)}},
		{"Jellyfish-13B+KT", z.KnowTransMethod(Size13B, true, true, lora.StrategyAdaptive)},
	}
}

func upstreamClone(z *Zoo, size Size) func() *model.Model {
	return func() *model.Model { return z.Upstream(size).Clone() }
}

func runBackboneFigure(z *Zoo, reps int, id, title string, keys []string) *Table {
	variants := backboneVariants(z)
	columns := make([]string, 0, len(variants))
	for _, v := range variants {
		columns = append(columns, v.column)
	}
	t := &Table{ID: id, Title: title, Columns: columns}
	bundles := bundlesByKey(z, keys)
	var jobs []cellJob[float64]
	for _, b := range bundles {
		for _, v := range variants {
			jobs = append(jobs, methodCell(z, b, cellKey(b.Key(), v.column), v.column, reps, FewShotN,
				func() baselines.Method { return v.method }))
		}
	}
	assembleRows(t, bundles, columns, runCells(z, jobs))
	return t.WithAverages()
}

func runFig5(z *Zoo, reps int) *Table {
	// Novel datasets: the ED/DI/SM/EM downstream sets.
	keys := []string{
		"ED/Flights", "ED/Rayyan", "ED/Beer",
		"DI/Flipkart", "DI/Phone", "SM/CMS",
		"EM/Abt-Buy", "EM/Walmart-Amazon",
	}
	return runBackboneFigure(z, reps, "fig5", "Backbones ± KnowTrans on novel datasets", keys)
}

func runFig6(z *Zoo, reps int) *Table {
	// Novel tasks: CTA, AVE, DC.
	keys := []string{"CTA/SOTAB", "AVE/AE-110k", "AVE/OA-mine", "DC/Rayyan", "DC/Beer"}
	return runBackboneFigure(z, reps, "fig6", "Backbones ± KnowTrans on novel tasks", keys)
}

// --- Fig. 7: refinement rounds -----------------------------------------------------

var fig7Datasets = []string{"ED/Rayyan", "AVE/AE-110k"}

func runFig7(z *Zoo, reps int) *Table {
	t := &Table{ID: "fig7", Title: "Effect of refinement rounds on eval and test scores (KnowTrans-7B)",
		Columns: []string{"Round", "Eval", "Test"}}
	const rounds = 7
	type series struct {
		evalAvg [rounds]float64
		testAvg [rounds]float64
	}
	bundles := bundlesByKey(z, fig7Datasets)
	var jobs []cellJob[series]
	for _, b := range bundles {
		key := cellKey(b.Key(), "fig7")
		jobs = append(jobs, cellJob[series]{
			Label: key,
			Run: func(rec *obs.Recorder) series {
				var s series
				for rep := 0; rep < reps; rep++ {
					// A larger labeled pool split into disjoint fine-tuning and
					// validation halves (the paper's Section VII-A train/validation
					// split): a validation set the model did not memorize is what
					// lets the eval curve climb across refinement rounds.
					pool := b.DS.FewShot(fewShotRNG(z, key, rep), 2*FewShotN)
					half := len(pool) / 2
					ftHalf, valHalf := pool[:half], pool[half:]
					ctx := &baselines.AdaptContext{Bundle: b, FewShot: ftHalf, Seed: repSeed(z, key, rep), Rec: rec}
					// Fine-tune with SKC but defer AKB: the search is run manually
					// with a test probe and an extended round budget.
					ad, err := z.AdaptKnowTrans(ctx, Size7B, true, false, lora.StrategyAdaptive, akb.Config{})
					if err != nil {
						panic(err)
					}
					probe := b.DS.Test
					if len(probe) > 300 {
						probe = probe[:300]
					}
					cfg := akb.DefaultConfig(ctx.Seed)
					cfg.Iterations = rounds
					res := z.searchAKB(ad.Model, oracle.New(ctx.Seed+771), b.Kind, valHalf, probe, cfg, ctx.Seed, rec)
					last := akb.Step{TestScore: -1}
					for r := 0; r < rounds; r++ {
						step := last
						for _, st := range res.Steps {
							if st.Iter == r {
								step = st
							}
						}
						// After convergence the curve stays flat at the last value.
						if step.TestScore >= 0 || r == 0 {
							last = step
						}
						s.evalAvg[r] += last.EvalScore
						s.testAvg[r] += last.TestScore
					}
				}
				for r := 0; r < rounds; r++ {
					s.evalAvg[r] /= float64(reps)
					s.testAvg[r] /= float64(reps)
				}
				return s
			},
		})
	}
	results := runCells(z, jobs)
	for i, b := range bundles {
		for r := 0; r < rounds; r++ {
			t.AddRow(string(b.Kind), fmt.Sprintf("%s@round%d", b.DS.Name, r), map[string]float64{
				"Round": float64(r),
				"Eval":  results[i].evalAvg[r],
				"Test":  results[i].testAvg[r],
			})
		}
	}
	return t
}

// evaluateAdapted scores an Adapted on instances (helper for tests). Like
// baselines.Evaluate it prefers the batched face when the predictor has one.
func evaluateAdapted(a interface {
	Predict(in *data.Instance) string
}, kind tasks.Kind, test []*data.Instance) float64 {
	spec := tasks.SpecFor(kind)
	metric := tasks.NewMetric(spec.Metric)
	if bp, ok := a.(interface {
		PredictBatch(ins []*data.Instance) []string
	}); ok {
		if got := bp.PredictBatch(test); len(got) == len(test) {
			for i, g := range got {
				metric.Add(g, test[i].GoldText())
			}
			return metric.Score()
		}
	}
	for _, in := range test {
		metric.Add(a.Predict(in), in.GoldText())
	}
	return metric.Score()
}
