package eval

import "testing"

func BenchmarkBuildBase7B(b *testing.B) {
	for i := 0; i < b.N; i++ {
		z := NewZoo(int64(i)+100, 0.06)
		z.Base(Size7B)
	}
}
