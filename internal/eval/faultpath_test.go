package eval

import (
	"testing"

	"repro/internal/faults"
)

// withFaults arms a fault spec on the shared test zoo for one test and
// restores the unwrapped path afterwards (the zoo caches only models and
// patches, never AKB results, so arming faults cannot poison other tests).
func withFaults(t *testing.T, z *Zoo, cfg *faults.Config) {
	t.Helper()
	prev := z.Faults
	z.Faults = cfg
	t.Cleanup(func() { z.Faults = prev })
}

// TestFaultsRateZeroByteIdentical is the in-process version of the check.sh
// tier-2 chaos gate: arming a rate-0 fault spec threads every AKB search
// through the full injector → resilient-client chain, and the rendered
// table must still be byte-identical to the unwrapped run.
func TestFaultsRateZeroByteIdentical(t *testing.T) {
	z := zooForTest()
	keys := []string{"ED/Flights", "EM/Abt-Buy"}

	plain := runTable6On(z, 1, keys).Render()
	withFaults(t, z, &faults.Config{Rate: 0, Seed: 9})
	wrapped := runTable6On(z, 1, keys).Render()

	if plain != wrapped {
		t.Fatalf("rate-0 fault chain changed the table:\n--- plain ---\n%s--- rate 0 ---\n%s", plain, wrapped)
	}
}

// TestFaultsChaosGridCompletes runs a small grid at a 30% fault rate, in
// parallel, twice: it must complete without panicking and reproduce
// byte-identically — fault schedules are content-addressed per cell, so
// worker interleaving cannot perturb them.
func TestFaultsChaosGridCompletes(t *testing.T) {
	z := zooForTest()
	keys := []string{"ED/Flights", "EM/Abt-Buy"}
	withFaults(t, z, &faults.Config{Rate: 0.3, Seed: 9})
	prev := z.Workers
	defer func() { z.Workers = prev }()

	z.Workers = 4
	first := runTable6On(z, 1, keys).Render()
	if first == "" {
		t.Fatal("chaos grid rendered nothing")
	}
	z.Workers = 1
	second := runTable6On(z, 1, keys).Render()
	if first != second {
		t.Fatalf("chaos grid not reproducible across worker counts:\n--- 4 workers ---\n%s--- serial ---\n%s", first, second)
	}
}
