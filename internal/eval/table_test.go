package eval

import (
	"strings"
	"testing"
)

// TestCellAtDisambiguatesTasks covers the Rayyan case: the same dataset
// name under two tasks must resolve by task, and synthesized average rows
// must never satisfy a lookup.
func TestCellAtDisambiguatesTasks(t *testing.T) {
	tb := &Table{ID: "t", Title: "x", Columns: []string{"A"}}
	tb.AddRow("ED", "Rayyan", map[string]float64{"A": 10})
	tb.AddRow("ED", "Flights", map[string]float64{"A": 20})
	tb.AddRow("DC", "Rayyan", map[string]float64{"A": 70})
	avg := tb.WithAverages()

	if v, ok := avg.CellAt("DC", "Rayyan", "A"); !ok || v != 70 {
		t.Fatalf("CellAt(DC, Rayyan) = %v/%v, want 70", v, ok)
	}
	if v, ok := avg.CellAt("ED", "Rayyan", "A"); !ok || v != 10 {
		t.Fatalf("CellAt(ED, Rayyan) = %v/%v, want 10", v, ok)
	}
	if _, ok := avg.CellAt("SM", "Rayyan", "A"); ok {
		t.Fatal("CellAt must miss on a task with no such dataset")
	}
	if _, ok := avg.CellAt("ED", "Average", "A"); ok {
		t.Fatal("CellAt must not match synthesized average rows")
	}
	if _, ok := avg.CellAt("", "Average (all)", "A"); ok {
		t.Fatal("CellAt must not match the overall average row")
	}
}

// TestWithAveragesSparseCells checks that a column missing from some rows
// averages over only the rows that have it, instead of being dragged toward
// zero by absentees.
func TestWithAveragesSparseCells(t *testing.T) {
	tb := &Table{ID: "t", Title: "x", Columns: []string{"A", "B"}}
	tb.AddRow("ED", "d1", map[string]float64{"A": 10, "B": 100})
	tb.AddRow("ED", "d2", map[string]float64{"A": 30}) // no B
	avg := tb.WithAverages()
	var taskRow Row
	for _, r := range avg.Rows {
		if r.IsAverage && r.Task == "ED" {
			taskRow = r
		}
	}
	if taskRow.Cells == nil {
		t.Fatal("no ED average row synthesized")
	}
	if v := taskRow.Cells["A"]; v != 20 {
		t.Fatalf("sparse average A = %v, want 20", v)
	}
	if v := taskRow.Cells["B"]; v != 100 {
		t.Fatalf("sparse average B = %v, want 100 (only d1 has B)", v)
	}
}

// TestWithAveragesSingleDatasetTask checks no per-task average row is
// synthesized for a task with one dataset (the paper's CTA/SM layout),
// while the overall average still appears.
func TestWithAveragesSingleDatasetTask(t *testing.T) {
	tb := &Table{ID: "t", Title: "x", Columns: []string{"A"}}
	tb.AddRow("CTA", "SOTAB", map[string]float64{"A": 40})
	tb.AddRow("ED", "d1", map[string]float64{"A": 10})
	tb.AddRow("ED", "d2", map[string]float64{"A": 20})
	avg := tb.WithAverages()
	for _, r := range avg.Rows {
		if r.IsAverage && r.Task == "CTA" {
			t.Fatal("single-dataset task must not get a per-task average row")
		}
	}
	var overall, got bool
	for _, r := range avg.Rows {
		if r.IsAverage && r.Dataset == "Average (all)" {
			overall = true
			got = r.Cells["A"] == (40.0+10+20)/3
		}
	}
	if !overall || !got {
		t.Fatalf("overall average row missing or wrong: %+v", avg.Rows)
	}
}

// TestRenderAlignsMissingCells checks that "-" cells keep the column grid
// aligned: every rendered row must have the same width.
func TestRenderAlignsMissingCells(t *testing.T) {
	tb := &Table{ID: "t", Title: "x", Columns: []string{"Alpha", "B"}}
	tb.AddRow("ED", "long-dataset-name", map[string]float64{"Alpha": 123.45, "B": 6})
	tb.AddRow("ED", "short", map[string]float64{"B": 7}) // Alpha rendered "-"
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	header := lines[1]
	alphaCol := strings.Index(header, "Alpha")
	bCol := strings.Index(header, "B")
	if alphaCol < 0 || bCol < 0 {
		t.Fatalf("header missing columns: %q", header)
	}
	var full, sparse string
	for _, line := range lines {
		if strings.Contains(line, "long-dataset-name") {
			full = line
		}
		if strings.Contains(line, "short") {
			sparse = line
		}
	}
	// The numeric value and the "-" placeholder must start in the same
	// column slot the header reserves, keeping the grid aligned.
	if got := strings.Index(full, "123.45"); got != alphaCol {
		t.Fatalf("value starts at col %d, header Alpha at %d:\n%s", got, alphaCol, out)
	}
	if got := strings.Index(sparse, "-"); got != alphaCol {
		t.Fatalf("dash starts at col %d, header Alpha at %d:\n%s", got, alphaCol, out)
	}
	if full[bCol] != '6' || sparse[bCol] != '7' {
		t.Fatalf("B column misaligned after dash cell:\n%s", out)
	}
}
