package eval

import (
	"testing"

	"repro/internal/akb"
	"repro/internal/baselines"
	"repro/internal/lora"
	"repro/internal/tasks"
)

// TestDiagnoseComponents splits KnowTrans into SKC and AKB contributions on
// the datasets where the quick sweep showed regressions (verbose-only).
func TestDiagnoseComponents(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic; run with -v")
	}
	z := zooForTest()
	for _, key := range []string{"SM/CMS", "AVE/AE-110k", "ED/Beer", "AVE/OA-mine"} {
		b := z.DownstreamByKey(key)
		fewshot := b.DS.FewShot(fewShotRNG(z, b.Key()+"shape", 0), FewShotN)
		seed := repSeed(z, b.Key()+"shape", 0)
		ctx := &baselines.AdaptContext{Bundle: b, FewShot: fewshot, Seed: seed}
		spec := tasks.SpecFor(b.Kind)

		jelly := z.Method(MethodJellyfish).Adapt(ctx)
		jScore := baselines.Evaluate(jelly, b.Kind, b.DS.Test)

		skcOnly, err := z.AdaptKnowTrans(ctx, Size7B, true, false, lora.StrategyAdaptive, akb.Config{})
		if err != nil {
			t.Fatal(err)
		}
		sScore := skcOnly.Evaluate(b.DS.Test)

		full, err := z.AdaptKnowTrans(ctx, Size7B, true, true, lora.StrategyAdaptive, akb.Config{})
		if err != nil {
			t.Fatal(err)
		}
		fScore := full.Evaluate(b.DS.Test)
		noK := akb.Evaluate(full.Model, spec, b.DS.Test, nil)
		t.Logf("%-14s jelly=%6.2f skc=%6.2f skc-no-k=%6.2f full=%6.2f  akbEval=%.1f knowledge=%v",
			key, jScore, sScore, noK, fScore, full.AKBResult.BestScore, full.Knowledge != nil)
		if full.Knowledge != nil {
			txt := tasks.RenderKnowledgeText(full.Knowledge)
			if len(txt) > 300 {
				txt = txt[:300] + "..."
			}
			t.Logf("   knowledge: %s", txt)
		}
	}
}
