package eval

import (
	"testing"

	"repro/internal/akb"
	"repro/internal/baselines"
	"repro/internal/lora"
	"repro/internal/oracle"
	"repro/internal/tasks"
)

// TestDiagnoseBeerED is a diagnostic harness (verbose-only) that breaks the
// KnowTrans pipeline into stages on ED/Beer and prints each stage's score,
// including an ideal-knowledge ceiling.
func TestDiagnoseBeerED(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic; run with -v")
	}
	z := zooForTest()
	b := z.DownstreamByKey("ED/Beer")
	fewshot := b.DS.FewShot(fewShotRNG(z, "diag", 0), FewShotN)
	seed := repSeed(z, "diag", 0)
	spec := tasks.SpecFor(b.Kind)
	test := b.DS.Test

	upstream := z.Upstream(Size7B)
	t.Logf("trust scalar after pretraining+SFT: %.3f", upstream.Trust.Val)
	t.Logf("upstream zero-shot:          %6.2f", upstream.Evaluate(spec, test, nil))

	// Plain few-shot FT (the Jellyfish row).
	jelly := z.Method(MethodJellyfish).Adapt(&baselines.AdaptContext{Bundle: b, FewShot: fewshot, Seed: seed})
	t.Logf("jellyfish few-shot FT:       %6.2f", baselines.Evaluate(jelly, b.Kind, test))

	// SKC only.
	ctx := &baselines.AdaptContext{Bundle: b, FewShot: fewshot, Seed: seed}
	skcOnly, err := z.AdaptKnowTrans(ctx, Size7B, true, false, lora.StrategyAdaptive, akb.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("SKC only:                    %6.2f", skcOnly.Evaluate(test))

	// Ideal knowledge ceiling: the planted Beer rules, hand-written.
	ideal := &tasks.Knowledge{
		Text: "ABV must be a decimal between 0 and 1 without a % symbol; IBU must be numeric; nan is an error; misspelled cities are errors.",
		Rules: []tasks.Rule{
			{Target: "abv", Cond: tasks.Condition{Pred: tasks.PredFormat, Arg: tasks.FormatPercent}, Answer: tasks.Answer{Literal: "yes"}, Weight: 1},
			{Target: "abv", Cond: tasks.Condition{Pred: tasks.PredNotInRange, Arg: "0..1"}, Answer: tasks.Answer{Literal: "yes"}, Weight: 1},
			{Target: "ibu", Cond: tasks.Condition{Pred: tasks.PredMissing}, Answer: tasks.Answer{Literal: "yes"}, Weight: 1},
			{Target: "ibu", Cond: tasks.Condition{Pred: tasks.PredNotFormat, Arg: tasks.FormatInteger}, Answer: tasks.Answer{Literal: "yes"}, Weight: 1},
			{Target: "style", Cond: tasks.Condition{Pred: tasks.PredMissing}, Answer: tasks.Answer{Literal: "yes"}, Weight: 1},
		},
	}
	t.Logf("SKC + ideal knowledge:       %6.2f (trust=%.3f)", akb.Evaluate(skcOnly.Model, spec, test, ideal), skcOnly.Model.Trust.Val)

	// AKB on the SKC model with the real oracle.
	res := akb.Search(skcOnly.Model, oracle.New(seed+771), b.Kind, fewshot, nil, akb.DefaultConfig(seed))
	t.Logf("AKB searched (eval=%.2f):    %6.2f", res.BestScore, akb.Evaluate(skcOnly.Model, spec, test, res.Best))
	t.Logf("searched knowledge: %s", tasks.RenderKnowledgeText(res.Best))

	// Per-error-type accuracy of the SKC model without/with knowledge,
	// plus how often rules fire on clean records.
	byType := map[string][3]int{}
	cleanFires := 0
	for _, in := range test {
		key := in.Meta["error_type"]
		c := byType[key]
		c[2]++
		if skcOnly.Model.PredictWith(spec, in, nil) == in.GoldText() {
			c[0]++
		}
		if skcOnly.Model.PredictWith(spec, in, res.Best) == in.GoldText() {
			c[1]++
		}
		byType[key] = c
		if key == "clean" {
			for _, h := range res.Best.Hints(in) {
				if h > 0 {
					cleanFires++
					break
				}
			}
		}
	}
	for k, c := range byType {
		t.Logf("  %-16s plain %3d/%3d  with-k %3d/%3d", k, c[0], c[2], c[1], c[2])
	}
	t.Logf("rules fire on %d clean records", cleanFires)
}
