package eval

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/obs/profile"
)

// cellJob is one independent unit of experiment work — typically a
// (dataset × method) cell of a result table, averaged over its repetitions
// inside Run so the floating-point summation order never depends on the
// schedule. Label names the cell in worker spans; Run receives the recorder
// its telemetry should attach to: the cell's own derived recorder under a
// worker span in parallel runs, the zoo's recorder in serial ones.
type cellJob[T any] struct {
	Label string
	Run   func(rec *obs.Recorder) T
}

// cellPanic carries a worker goroutine's panic back to the caller.
type cellPanic struct {
	val   interface{}
	stack []byte
}

// runCells evaluates jobs on z.Workers goroutines and returns the results
// in declaration order. Determinism does not depend on scheduling: every
// job derives its randomness from content-addressed keys (fewShotRNG /
// repSeed over cellKey strings), reads only immutable zoo artifacts, and
// writes only its own output slot — so tables assembled from the returned
// slice are byte-identical at any worker count. With z.Workers <= 1 (the
// default) jobs run inline on the calling goroutine, preserving the serial
// path exactly: same recorder, same panic propagation, no pool overhead.
//
// Parallel runs are instrumented through the obs layer: an eval.workers
// gauge, an eval.cell_queue_us histogram (delay from pool start to each
// cell's dispatch), one eval.worker span per goroutine with eval.cell child
// spans per job. A panicking job does not wedge the pool — the remaining
// workers drain and the first panic is re-raised on the calling goroutine
// with the worker's stack.
func runCells[T any](z *Zoo, jobs []cellJob[T]) []T {
	out := make([]T, len(jobs))
	workers := z.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i, j := range jobs {
			// Same pprof cell label as the parallel path below, so serial
			// profiles segment by cell too.
			profile.Do(context.Background(), func(context.Context) {
				out[i] = j.Run(z.Rec)
			}, profile.LabelCell, j.Label)
		}
		return out
	}

	z.Rec.SetGauge("eval.workers", float64(workers))
	start := z.Rec.Now()
	var next atomic.Int64
	panics := make(chan cellPanic, 1)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					select {
					case panics <- cellPanic{val: r, stack: debug.Stack()}:
					default: // another worker's panic is already pending
					}
				}
			}()
			wrec, wspan := z.Rec.StartSpan("eval.worker")
			wspan.SetAttr("worker", wi)
			defer wspan.End()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				z.Rec.ObserveSince("eval.cell_queue_us", start)
				crec, cspan := wrec.StartSpan("eval.cell")
				cspan.SetAttr("cell", jobs[i].Label)
				// The cell runs under a pprof label so CPU profiles of a
				// parallel table build attribute samples to the (dataset ×
				// method) cell that burned them.
				profile.Do(context.Background(), func(context.Context) {
					out[i] = jobs[i].Run(crec)
				}, profile.LabelCell, jobs[i].Label)
				cspan.End()
			}
		}()
	}
	wg.Wait()
	select {
	case p := <-panics:
		panic(fmt.Sprintf("eval: experiment cell panicked: %v\n%s", p.val, p.stack))
	default:
	}
	return out
}
