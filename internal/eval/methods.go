package eval

import (
	"context"

	"repro/internal/akb"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/lora"
	"repro/internal/model"
	"repro/internal/oracle"
	"repro/internal/skc"
)

// Method names as they appear in the paper's tables.
const (
	MethodNonLLM       = "Non-LLM"
	MethodMistral      = "Mistral"
	MethodTableLLaMA   = "TableLLaMA"
	MethodMELD         = "MELD"
	MethodJellyfish    = "Jellyfish"
	MethodJellyfishICL = "Jellyfish-ICL"
	MethodKnowTrans    = "KnowTrans"
	MethodGPT35        = "GPT-3.5"
	MethodGPT4         = "GPT-4"
	MethodGPT4o        = "GPT-4o"
)

// Method builds a baselines.Method from the zoo's artifacts.
func (z *Zoo) Method(name string) baselines.Method {
	switch name {
	case MethodNonLLM:
		return baselines.NonLLM{}
	case MethodMistral:
		// The paper fine-tunes raw Mistral-7B on the few-shot data.
		return &baselines.FineTuned{MethodName: name, Backbone: func() *model.Model { return z.Base(Size7B).Clone() }}
	case MethodTableLLaMA:
		return &baselines.FineTuned{MethodName: name, Backbone: func() *model.Model { return z.Base(SizeTable).Clone() }}
	case MethodMELD:
		return &baselines.MELD{
			Backbone:  func() *model.Model { return z.Upstream(Size7B).Clone() },
			Snaps:     z.Patches(Size7B),
			Centroids: z.Centroids(Size7B),
		}
	case MethodJellyfish:
		return &baselines.FineTuned{MethodName: name, Backbone: func() *model.Model { return z.Upstream(Size7B).Clone() }}
	case MethodJellyfishICL:
		return &baselines.ICL{MethodName: name, Backbone: func() *model.Model { return z.Upstream(Size7B).Clone() }, K: 10, VoteWeight: 0.6}
	case MethodKnowTrans:
		return z.KnowTransMethod(Size7B, true, true, lora.StrategyAdaptive)
	case MethodGPT35:
		return &baselines.ICL{MethodName: name, Backbone: func() *model.Model { return z.Base(SizeGPT35).Clone() }, K: 10, VoteWeight: 1.0}
	case MethodGPT4:
		return &baselines.ICL{MethodName: name, Backbone: func() *model.Model { return z.Base(SizeGPT4).Clone() }, K: 10, VoteWeight: 1.2}
	case MethodGPT4o:
		return &baselines.ICL{MethodName: name, Backbone: func() *model.Model { return z.Base(SizeGPT4o).Clone() }, K: 10, VoteWeight: 1.2}
	default:
		panic("eval: unknown method " + name)
	}
}

// ktMethod adapts core.KnowTrans to the baselines.Method interface, with
// ablation and weight-strategy switches for Tables V and VI.
type ktMethod struct {
	name     string
	z        *Zoo
	size     Size
	upstream bool // false: run on the raw base backbone (Fig. 5/6 Mistral row)
	useSKC   bool
	useAKB   bool
	strategy lora.WeightStrategy
}

// KnowTransMethod returns the full framework on a Jellyfish backbone of the
// given size, with ablation switches.
func (z *Zoo) KnowTransMethod(size Size, useSKC, useAKB bool, strategy lora.WeightStrategy) baselines.Method {
	name := MethodKnowTrans + "-" + string(size)
	switch {
	case useSKC && !useAKB:
		name += " (w/o AKB)"
	case !useSKC && useAKB:
		name += " (w/o SKC)"
	case !useSKC && !useAKB:
		name += " (w/o SKC & AKB)"
	}
	if strategy != lora.StrategyAdaptive {
		name += " [" + strategy.String() + "]"
	}
	return &ktMethod{name: name, z: z, size: size, upstream: true, useSKC: useSKC, useAKB: useAKB, strategy: strategy}
}

// KnowTransOnBase returns KnowTrans applied to a base (non-upstream-trained)
// backbone — the Mistral-7B + KnowTrans configuration of Fig. 5/6.
func (z *Zoo) KnowTransOnBase(size Size) baselines.Method {
	return &ktMethod{name: MethodKnowTrans + "-base-" + string(size), z: z, size: size, upstream: false, useSKC: true, useAKB: true}
}

func (k *ktMethod) Name() string { return k.name }

func (k *ktMethod) Adapt(ctx *baselines.AdaptContext) baselines.Predictor {
	backbone := k.z.Base(k.size)
	if k.upstream {
		backbone = k.z.Upstream(k.size)
	}
	rec := ctx.Rec
	if rec == nil {
		rec = k.z.Rec
	}
	kt := core.NewKnowTrans(backbone, k.z.Patches(k.size),
		core.WithPlainOracle(oracle.New(ctx.Seed+771)),
		core.WithFaults(k.z.Faults),
		core.WithSKC(k.useSKC),
		core.WithAKB(k.useAKB),
		core.WithSKCOptions(skc.Options{Strategy: k.strategy}),
		core.WithRecorder(rec),
	)
	ad, err := kt.Transfer(context.Background(), ctx.Bundle.Kind, ctx.FewShot, ctx.Seed)
	if err != nil {
		panic(err)
	}
	return ad.Detached()
}

// AdaptKnowTrans exposes the full Adapted artifact (fusion weights, searched
// knowledge) for experiments that inspect internals (Table VI, Fig. 7).
func (z *Zoo) AdaptKnowTrans(ctx *baselines.AdaptContext, size Size, useSKC, useAKB bool, strategy lora.WeightStrategy, akbCfg akb.Config) (*core.Adapted, error) {
	backbone := z.Upstream(size)
	rec := ctx.Rec
	if rec == nil {
		rec = z.Rec
	}
	kt := core.NewKnowTrans(backbone, z.Patches(size),
		core.WithPlainOracle(oracle.New(ctx.Seed+771)),
		core.WithFaults(z.Faults),
		core.WithSKC(useSKC),
		core.WithAKB(useAKB),
		core.WithSKCOptions(skc.Options{Strategy: strategy}),
		core.WithAKBConfig(akbCfg),
		core.WithRecorder(rec),
	)
	return kt.Transfer(context.Background(), ctx.Bundle.Kind, ctx.FewShot, ctx.Seed)
}
