package eval

import (
	"repro/internal/baselines"
	"repro/internal/data"
	"repro/internal/lora"
	"repro/internal/tasks"
	"repro/internal/text"
)

// pricing is per-1K-token API cost at the paper's model versions (OpenAI
// list prices at the time of the paper's experiments): gpt-3.5-turbo-1106,
// gpt-4-0613, gpt-4o-2024-08-06. KnowTrans runs self-hosted; its entry
// models amortized A40 serving cost per 1K tokens.
type pricing struct {
	inPer1K  float64
	outPer1K float64
}

var apiPrices = map[string]pricing{
	MethodGPT35:     {0.001, 0.002},
	MethodGPT4:      {0.03, 0.06},
	MethodGPT4o:     {0.0025, 0.010},
	MethodKnowTrans: {0.0015, 0.0015}, // modeled local serving cost
}

// costSampleN caps the number of test instances used to estimate per-
// instance token counts.
const costSampleN = 40

// promptTokenCounter is satisfied by the ICL predictor.
type promptTokenCounter interface {
	PromptTokens(in *data.Instance) (input, output int)
}

// runTable3 measures the real prompts each method builds on a
// representative dataset (EM/Walmart-Amazon, a mid-length record task) and
// prices them. The GPT tiers pay for 10 in-context demonstrations per
// instance; KnowTrans carries its few-shot examples in parameters and only
// pays for the record plus the searched knowledge text.
func runTable3(z *Zoo, _ int) *Table {
	t := &Table{ID: "table3", Title: "Input tokens, output tokens and cost per instance",
		Columns: []string{"Input Tokens", "Output Tokens", "Price ($/instance)"}}
	b := z.DownstreamByKey("EM/Walmart-Amazon")
	sample := b.DS.Test
	if len(sample) > costSampleN {
		sample = sample[:costSampleN]
	}
	fewshot := b.DS.FewShot(fewShotRNG(z, cellKey(b.Key(), "cost"), 0), FewShotN)
	seed := repSeed(z, cellKey(b.Key(), "cost"), 0)

	for _, name := range []string{MethodGPT35, MethodGPT4o, MethodGPT4} {
		m := z.Method(name)
		pred := m.Adapt(&baselines.AdaptContext{Bundle: b, FewShot: fewshot, Seed: seed})
		icl := pred.(promptTokenCounter)
		var inSum, outSum int
		for _, in := range sample {
			i, o := icl.PromptTokens(in)
			inSum += i
			outSum += o
		}
		addCostRow(t, name, inSum, outSum, len(sample))
	}

	// KnowTrans: the transferred model's real prompt (record + searched
	// knowledge), answers as output.
	kt := z.KnowTransMethod(Size7B, true, true, lora.StrategyAdaptive)
	pred := kt.Adapt(&baselines.AdaptContext{Bundle: b, FewShot: fewshot, Seed: seed})
	ktPred := pred.(interface{ SearchedKnowledge() *tasks.Knowledge })
	spec := tasks.SpecFor(b.Kind)
	var inSum, outSum int
	for _, in := range sample {
		ex := tasks.BuildExample(spec, in, ktPred.SearchedKnowledge())
		inSum += text.CountTokens(ex.Prompt)
		outSum += text.CountTokens(pred.Predict(in))
	}
	addCostRow(t, MethodKnowTrans, inSum, outSum, len(sample))
	return t
}

func addCostRow(t *Table, name string, inSum, outSum, n int) {
	p := apiPrices[name]
	inAvg := float64(inSum) / float64(n)
	outAvg := float64(outSum) / float64(n)
	t.AddRow("", name, map[string]float64{
		"Input Tokens":       inAvg,
		"Output Tokens":      outAvg,
		"Price ($/instance)": (inAvg*p.inPer1K + outAvg*p.outPer1K) / 1000,
	})
}
