package eval

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/lora"
	"repro/internal/oracle"
	"repro/internal/skc"
)

// ErrUnknownDataset marks a downstream-dataset key the zoo does not serve;
// the HTTP layer maps it to 404.
var ErrUnknownDataset = errors.New("eval: unknown downstream dataset")

// TransferDataset adapts the tier's upstream DP-LLM to one downstream
// dataset by key: the entry point the serving layer's adapter registry
// builds cold adapters through (`internal/serve`). It runs the same
// KnowTrans pipeline as the experiment grid — upstream backbone, patch
// library, adaptive fusion, the simulated oracle behind the zoo's fault
// chain — seeded entirely from (Zoo.Seed, key), so repeated transfers of
// one key produce byte-identical adapters and predictions match the direct
// `knowtrans transfer` path at the same seed.
func (z *Zoo) TransferDataset(ctx context.Context, key string, size Size) (*core.Adapted, error) {
	b, ok := z.FindDownstream(key)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, key)
	}
	fewshot := b.DS.FewShot(rand.New(rand.NewSource(z.Seed)), FewShotN)
	kt := core.NewKnowTrans(z.Upstream(size), z.Patches(size),
		core.WithPlainOracle(oracle.New(z.Seed+771)),
		core.WithFaults(z.Faults),
		core.WithSKCOptions(skc.Options{Strategy: lora.StrategyAdaptive}),
		core.WithRecorder(z.Rec),
	)
	return kt.Transfer(ctx, b.Kind, fewshot, z.Seed)
}
