package eval

import (
	"testing"

	"repro/internal/baselines"
	"repro/internal/lora"
)

// TestShapeAllDatasets is a diagnostic sweep (verbose-only): Jellyfish
// few-shot FT vs KnowTrans across all 13 downstream datasets at small
// scale, 1 repetition — the quick view of Table II's decisive columns.
func TestShapeAllDatasets(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic; run with -v")
	}
	z := zooForTest()
	var jSum, kSum float64
	for _, b := range z.Downstream() {
		fewshot := b.DS.FewShot(fewShotRNG(z, b.Key()+"shape", 0), FewShotN)
		seed := repSeed(z, b.Key()+"shape", 0)
		jelly := z.Method(MethodJellyfish).Adapt(&baselines.AdaptContext{Bundle: b, FewShot: fewshot, Seed: seed})
		jScore := baselines.Evaluate(jelly, b.Kind, b.DS.Test)
		kt := z.KnowTransMethod(Size7B, true, true, lora.StrategyAdaptive).
			Adapt(&baselines.AdaptContext{Bundle: b, FewShot: fewshot, Seed: seed})
		kScore := baselines.Evaluate(kt, b.Kind, b.DS.Test)
		jSum += jScore
		kSum += kScore
		t.Logf("%-20s jellyfish=%6.2f knowtrans=%6.2f  Δ=%+6.2f", b.Key(), jScore, kScore, kScore-jScore)
	}
	t.Logf("%-20s jellyfish=%6.2f knowtrans=%6.2f  Δ=%+6.2f", "AVERAGE", jSum/13, kSum/13, (kSum-jSum)/13)
}
