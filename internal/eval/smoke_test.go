package eval

import (
	"testing"

	"repro/internal/baselines"
	"repro/internal/lora"
)

// testZoo builds artifacts at a small scale shared by the eval tests.
var sharedZoo *Zoo

func zooForTest() *Zoo {
	if sharedZoo == nil {
		sharedZoo = NewZoo(1, 0.06)
	}
	return sharedZoo
}

// TestKnowTransBeatsJellyfishOnBeerED checks the headline effect on the
// dataset with the strongest planted knowledge gap: ED/Beer.
func TestKnowTransBeatsJellyfishOnBeerED(t *testing.T) {
	z := zooForTest()
	b := z.DownstreamByKey("ED/Beer")
	fewshot := b.DS.FewShot(fewShotRNG(z, "smoke", 0), FewShotN)
	seed := repSeed(z, "smoke", 0)

	jelly := z.Method(MethodJellyfish).Adapt(&baselines.AdaptContext{Bundle: b, FewShot: fewshot, Seed: seed})
	jellyScore := baselines.Evaluate(jelly, b.Kind, b.DS.Test)

	kt := z.KnowTransMethod(Size7B, true, true, lora.StrategyAdaptive).
		Adapt(&baselines.AdaptContext{Bundle: b, FewShot: fewshot, Seed: seed})
	ktScore := baselines.Evaluate(kt, b.Kind, b.DS.Test)

	t.Logf("Jellyfish=%.2f KnowTrans=%.2f", jellyScore, ktScore)
	if ktScore <= jellyScore {
		t.Fatalf("KnowTrans (%.2f) should beat plain few-shot Jellyfish (%.2f) on ED/Beer", ktScore, jellyScore)
	}
}
