package eval

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// --- Zoo.memo concurrency -----------------------------------------------------

func TestMemoPanicDoesNotWedgeLaterCalls(t *testing.T) {
	z := NewZoo(1, 0.5)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("builder panic must propagate to the memo caller")
			}
		}()
		z.memo("k", func() interface{} { panic("boom") })
	}()
	// The in-flight marker must have been cleared: a retry on another
	// goroutine must run its builder instead of waiting forever.
	done := make(chan interface{}, 1)
	go func() { done <- z.memo("k", func() interface{} { return 42 }) }()
	select {
	case v := <-done:
		if v != 42 {
			t.Fatalf("retry returned %v, want 42", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("memo wedged after a builder panic (leaked in-flight marker)")
	}
}

func TestMemoPanicWakesConcurrentWaiter(t *testing.T) {
	z := NewZoo(1, 0.5)
	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		defer func() { recover() }()
		z.memo("k", func() interface{} {
			close(entered)
			<-release
			panic("boom")
		})
	}()
	<-entered
	done := make(chan interface{}, 1)
	go func() { done <- z.memo("k", func() interface{} { return "rebuilt" }) }()
	// Let the second goroutine reach the wait on the in-flight marker, then
	// panic the first builder; the broadcast must wake the waiter, which
	// retries the build itself.
	time.Sleep(20 * time.Millisecond)
	close(release)
	select {
	case v := <-done:
		if v != "rebuilt" {
			t.Fatalf("waiter got %v, want rebuilt", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter wedged after the in-flight builder panicked")
	}
}

func TestMemoBuildsOnceUnderContention(t *testing.T) {
	z := NewZoo(1, 0.5)
	var builds atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := z.memo("k", func() interface{} {
				builds.Add(1)
				time.Sleep(5 * time.Millisecond)
				return "v"
			})
			if v != "v" {
				t.Errorf("memo returned %v", v)
			}
		}()
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("builder ran %d times under contention, want 1", n)
	}
}

// --- runCells ------------------------------------------------------------------

func TestRunCellsPreservesDeclarationOrder(t *testing.T) {
	z := NewZoo(1, 0.5)
	z.Workers = 4
	var jobs []cellJob[int]
	for i := 0; i < 32; i++ {
		jobs = append(jobs, cellJob[int]{
			Label: "j",
			Run: func(_ *obs.Recorder) int {
				// Stagger finish times so a schedule-dependent assembly
				// would scramble the slice.
				time.Sleep(time.Duration(i%5) * time.Millisecond)
				return i
			},
		})
	}
	out := runCells(z, jobs)
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d: results not in declaration order", i, v)
		}
	}
}

func TestRunCellsSerialPathUsesCallingGoroutine(t *testing.T) {
	z := NewZoo(1, 0.5) // Workers zero value: serial
	ran := 0
	out := runCells(z, []cellJob[int]{{Label: "a", Run: func(_ *obs.Recorder) int { ran++; return 7 }}})
	if ran != 1 || out[0] != 7 {
		t.Fatalf("serial path ran=%d out=%v", ran, out)
	}
}

func TestRunCellsPropagatesWorkerPanic(t *testing.T) {
	z := NewZoo(1, 0.5)
	z.Workers = 2
	jobs := []cellJob[int]{
		{Label: "ok", Run: func(_ *obs.Recorder) int { return 1 }},
		{Label: "bad", Run: func(_ *obs.Recorder) int { panic("cell exploded") }},
		{Label: "ok2", Run: func(_ *obs.Recorder) int { return 3 }},
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("runCells swallowed a worker panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "cell exploded") {
			t.Fatalf("panic %v does not carry the cell's message", r)
		}
	}()
	runCells(z, jobs)
}

func TestRunCellsRecordsWorkerTelemetry(t *testing.T) {
	z := NewZoo(1, 0.5)
	z.Workers = 3
	var buf strings.Builder
	tracer := obs.NewTracer(&buf)
	reg := obs.NewRegistry()
	z.Rec = obs.NewRecorder(reg, tracer)
	jobs := make([]cellJob[int], 6)
	for i := range jobs {
		jobs[i] = cellJob[int]{Label: "cell", Run: func(_ *obs.Recorder) int { return i }}
	}
	runCells(z, jobs)
	if err := tracer.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	workers, cells := 0, 0
	workerIDs := map[uint64]bool{}
	for _, r := range recs {
		switch r.Name {
		case "eval.worker":
			workers++
			workerIDs[r.Span] = true
		case "eval.cell":
			cells++
		}
	}
	if workers != 3 {
		t.Fatalf("trace has %d eval.worker spans, want 3", workers)
	}
	if cells != len(jobs) {
		t.Fatalf("trace has %d eval.cell spans, want %d", cells, len(jobs))
	}
	// Every cell span must be parented to a worker span so obs trace
	// self-time accounting attributes cell work to its worker.
	for _, r := range recs {
		if r.Name == "eval.cell" && !workerIDs[r.Parent] {
			t.Fatalf("eval.cell span %d has non-worker parent %d", r.Span, r.Parent)
		}
	}
	snap := reg.Snapshot()
	if v, ok := snap.Gauges["eval.workers"]; !ok || v != 3 {
		t.Fatalf("eval.workers gauge = %v (present=%v), want 3", v, ok)
	}
	if h, ok := snap.Histograms["eval.cell_queue_us"]; !ok || h.Count != int64(len(jobs)) {
		t.Fatalf("eval.cell_queue_us count = %d (present=%v), want %d", h.Count, ok, len(jobs))
	}
}

// TestTable6SerialParallelDeterminism renders a small Table VI grid at one
// worker and at four and requires byte-identical output — the in-process
// version of the check.sh tier-2 gate. The shared test zoo keeps artifact
// builds amortized across the eval test suite.
func TestTable6SerialParallelDeterminism(t *testing.T) {
	z := zooForTest()
	keys := []string{"ED/Flights", "EM/Abt-Buy"}
	prev := z.Workers
	defer func() { z.Workers = prev }()

	z.Workers = 1
	serial := runTable6On(z, 1, keys).Render()
	z.Workers = 4
	parallel := runTable6On(z, 1, keys).Render()

	if serial != parallel {
		t.Fatalf("parallel table6 differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", serial, parallel)
	}
}
