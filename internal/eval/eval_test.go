package eval

import (
	"strings"
	"testing"
)

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	want := []string{"table1", "table2", "table3", "table4", "table5", "table6", "table7",
		"fig4", "fig5", "fig6", "fig7"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Fatalf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
		if reg[i].Title == "" || reg[i].Run == nil {
			t.Fatalf("experiment %s incomplete", id)
		}
	}
	if _, ok := ByID("table2"); !ok {
		t.Fatal("ByID lookup failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID should reject unknown ids")
	}
}

func TestFullRegistryIncludesAblations(t *testing.T) {
	full := FullRegistry()
	if len(full) != len(Registry())+2 {
		t.Fatalf("full registry has %d entries", len(full))
	}
	for _, id := range []string{"ablate-substrate", "ablate-oracle"} {
		e, ok := ExperimentByID(id)
		if !ok || e.Run == nil {
			t.Fatalf("missing ablation experiment %s", id)
		}
	}
	// The paper-only registry must not leak the ablations (experiment
	// `all` reproduces exactly the paper's artifact list).
	if _, ok := ByID("ablate-substrate"); ok {
		t.Fatal("paper registry should not include reproduction ablations")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{ID: "t", Title: "demo", Columns: []string{"A", "B"}}
	tb.AddRow("ED", "Beer", map[string]float64{"A": 12.345, "B": 7})
	tb.AddRow("ED", "Rayyan", map[string]float64{"A": 50})
	out := tb.Render()
	for _, want := range []string{"t — demo", "Beer", "12.35", "7", "Rayyan", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableSmallValuesKeepPrecision(t *testing.T) {
	tb := &Table{ID: "t", Title: "cost", Columns: []string{"Price"}}
	tb.AddRow("", "KnowTrans", map[string]float64{"Price": 0.000391})
	if out := tb.Render(); !strings.Contains(out, "0.000391") {
		t.Fatalf("sub-cent value lost precision:\n%s", out)
	}
}

func TestTableWithAverages(t *testing.T) {
	tb := &Table{ID: "t", Title: "x", Columns: []string{"A"}}
	tb.AddRow("ED", "d1", map[string]float64{"A": 10})
	tb.AddRow("ED", "d2", map[string]float64{"A": 30})
	tb.AddRow("DI", "d3", map[string]float64{"A": 50})
	avg := tb.WithAverages()
	// Per-task average only for multi-dataset tasks, plus overall.
	var taskAvg, overall float64
	for _, r := range avg.Rows {
		if r.IsAverage && r.Task == "ED" {
			taskAvg = r.Cells["A"]
		}
		if r.IsAverage && r.Dataset == "Average (all)" {
			overall = r.Cells["A"]
		}
	}
	if taskAvg != 20 {
		t.Fatalf("ED average = %v, want 20", taskAvg)
	}
	if overall != 30 {
		t.Fatalf("overall average = %v, want 30 (mean of datasets, not tasks)", overall)
	}
	if got := avg.Average("A"); got != 30 {
		t.Fatalf("Average() = %v", got)
	}
	if v, ok := avg.CellAt("ED", "d2", "A"); !ok || v != 30 {
		t.Fatalf("CellAt lookup = %v/%v", v, ok)
	}
}

func TestZooDeterministicArtifacts(t *testing.T) {
	z1 := NewZoo(9, 0.05)
	z2 := NewZoo(9, 0.05)
	m1 := z1.Base(Size7B)
	m2 := z2.Base(Size7B)
	s1, s2 := m1.Export(), m2.Export()
	for name, w := range s1.Mats {
		for i := range w {
			if s2.Mats[name][i] != w[i] {
				t.Fatalf("base model differs across zoos with same seed at %s[%d]", name, i)
			}
		}
	}
	if s1.Trust != s2.Trust {
		t.Fatal("trust differs across zoos with same seed")
	}
}

func TestZooCachesArtifacts(t *testing.T) {
	z := NewZoo(10, 0.05)
	a := z.Base(Size7B)
	b := z.Base(Size7B)
	if a != b {
		t.Fatal("Base should be cached")
	}
	if len(z.Patches(Size7B)) != 12 {
		t.Fatalf("expected 12 upstream patches, got %d", len(z.Patches(Size7B)))
	}
	if len(z.Centroids(Size7B)) != 12 {
		t.Fatalf("expected 12 centroids")
	}
}

func TestZooRejectsBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on scale 0")
		}
	}()
	NewZoo(1, 0)
}

func TestRebalanceCapsNegatives(t *testing.T) {
	z := NewZoo(11, 0.05)
	for _, b := range z.UpstreamBundles() {
		if !b.Kind.IsBinary() {
			continue
		}
		out := rebalance(b, 1)
		pos, neg := 0, 0
		for _, in := range out {
			if in.GoldText() == "yes" {
				pos++
			} else {
				neg++
			}
		}
		if pos > 0 && neg > 4*pos {
			t.Fatalf("%s: rebalance failed, %d neg vs %d pos", b.Key(), neg, pos)
		}
	}
}

func TestMethodRegistryConstructsAll(t *testing.T) {
	z := NewZoo(12, 0.05)
	for _, name := range []string{
		MethodNonLLM, MethodMistral, MethodTableLLaMA, MethodMELD,
		MethodJellyfish, MethodJellyfishICL, MethodKnowTrans,
		MethodGPT35, MethodGPT4, MethodGPT4o,
	} {
		m := z.Method(name)
		if m == nil {
			t.Fatalf("method %s not constructed", name)
		}
		// MELD/GPT names differ from the internal KnowTrans naming; just
		// require non-empty.
		if m.Name() == "" {
			t.Fatalf("method %s has empty name", name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown method must panic")
		}
	}()
	z.Method("bogus")
}

func TestFewShotRNGStability(t *testing.T) {
	z := NewZoo(13, 0.05)
	a := fewShotRNG(z, "k", 0).Int63()
	b := fewShotRNG(z, "k", 0).Int63()
	c := fewShotRNG(z, "k", 1).Int63()
	if a != b {
		t.Fatal("fewShotRNG must be deterministic")
	}
	if a == c {
		t.Fatal("different repetitions must differ")
	}
}
