package eval

import (
	"repro/internal/akb"
	"repro/internal/baselines"
	"repro/internal/lora"
	"repro/internal/obs"
	"repro/internal/oracle"
	"repro/internal/tasks"
)

// Substrate ablations: experiments beyond the paper's own tables that
// isolate the design choices DESIGN.md documents for this reproduction.
// They answer "which of the substrate's mechanisms carry the KnowTrans
// effects?" and run as `knowtrans experiment ablate-substrate` or
// BenchmarkAblateSubstrate.

// ablationDatasets is a representative slice: one knowledge-gap-heavy ED
// set, one pair task, one extraction task.
var ablationDatasets = []string{"ED/Beer", "EM/Walmart-Amazon", "DI/Flipkart"}

func init() {
	extra := []Experiment{
		{"ablate-substrate", "Substrate ablations: trust head, rule channel, text channel (reproduction-specific)", runAblateSubstrate},
		{"ablate-oracle", "Oracle ablations: temperature and world lexicon (reproduction-specific)", runAblateOracle},
	}
	extraExperiments = append(extraExperiments, extra...)
}

// extraExperiments holds reproduction-specific experiments appended to the
// registry (kept separate from the paper's own artifact list).
var extraExperiments []Experiment

// FullRegistry returns the paper experiments plus the substrate ablations.
func FullRegistry() []Experiment {
	return append(Registry(), extraExperiments...)
}

// ExperimentByID searches the full registry.
func ExperimentByID(id string) (Experiment, bool) {
	for _, e := range FullRegistry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// runAblateSubstrate transfers KnowTrans to each ablation dataset and then
// re-scores the same adapted model with pieces of the knowledge channel
// disabled:
//
//   - "full": searched knowledge as-is,
//   - "no-rules": rules stripped (text + serialization directives remain) —
//     isolates the executable-rule channel,
//   - "no-text": prose stripped (rules + directives remain) — isolates the
//     prompt-text channel,
//   - "trust-off": the model's rule-trust scalar forced to 0 — shows that
//     hints act only through the learned instruction-following pathway,
//   - "none": no knowledge at all.
func runAblateSubstrate(z *Zoo, reps int) *Table {
	columns := []string{"none", "trust-off", "no-rules", "no-text", "full"}
	t := &Table{ID: "ablate-substrate", Title: "Knowledge-channel ablations on the adapted model", Columns: columns}
	bundles := bundlesByKey(z, ablationDatasets)
	var jobs []cellJob[map[string]float64]
	for _, b := range bundles {
		key := cellKey(b.Key(), "ablate")
		jobs = append(jobs, cellJob[map[string]float64]{
			Label: key,
			Run: func(rec *obs.Recorder) map[string]float64 {
				cells := map[string]float64{}
				for rep := 0; rep < reps; rep++ {
					fewshot := b.DS.FewShot(fewShotRNG(z, key, rep), FewShotN)
					ctx := &baselines.AdaptContext{Bundle: b, FewShot: fewshot, Seed: repSeed(z, key, rep), Rec: rec}
					ad, err := z.AdaptKnowTrans(ctx, Size7B, true, true, lora.StrategyAdaptive, akb.Config{})
					if err != nil {
						panic(err)
					}
					spec := tasks.SpecFor(b.Kind)
					k := ad.Knowledge
					score := func(k *tasks.Knowledge) float64 {
						return akb.Evaluate(ad.Model, spec, b.DS.Test, k)
					}
					cells["none"] += score(nil)
					cells["full"] += score(k)
					if k != nil {
						noRules := k.Clone()
						noRules.Rules = nil
						cells["no-rules"] += score(noRules)
						noText := k.Clone()
						noText.Text = ""
						cells["no-text"] += score(noText)
					} else {
						cells["no-rules"] += score(nil)
						cells["no-text"] += score(nil)
					}
					// ad.Model is this cell's private adapted clone, so the
					// trust toggle never races with other cells.
					trust := ad.Model.Trust.Val
					ad.Model.Trust.Val = 0
					cells["trust-off"] += score(k)
					ad.Model.Trust.Val = trust
				}
				for _, c := range columns {
					cells[c] /= float64(reps)
				}
				return cells
			},
		})
	}
	results := runCells(z, jobs)
	for i, b := range bundles {
		t.AddRow(string(b.Kind), b.DS.Name, results[i])
	}
	return t.WithAverages()
}

// runAblateOracle compares AKB outcomes under oracle variants: the default
// temperature-0.9 oracle, a temperature-0 (deterministic best-effort)
// oracle, and an oracle stripped of its world lexicon (approximated by an
// empty-dictionary environment: the lexicon rules simply never widen, so we
// emulate it by clamping generation to error-only induction via temperature
// 0 plus rule filtering).
func runAblateOracle(z *Zoo, reps int) *Table {
	columns := []string{"no-AKB", "temp-0", "temp-0.9"}
	t := &Table{ID: "ablate-oracle", Title: "AKB oracle ablations (KnowTrans-7B)", Columns: columns}
	bundles := bundlesByKey(z, ablationDatasets)
	var jobs []cellJob[map[string]float64]
	for _, b := range bundles {
		key := cellKey(b.Key(), "ablateo")
		jobs = append(jobs, cellJob[map[string]float64]{
			Label: key,
			Run: func(rec *obs.Recorder) map[string]float64 {
				cells := map[string]float64{}
				for rep := 0; rep < reps; rep++ {
					fewshot := b.DS.FewShot(fewShotRNG(z, key, rep), FewShotN)
					ctx := &baselines.AdaptContext{Bundle: b, FewShot: fewshot, Seed: repSeed(z, key, rep), Rec: rec}
					// One SKC fine-tune shared by all oracle variants.
					ad, err := z.AdaptKnowTrans(ctx, Size7B, true, false, lora.StrategyAdaptive, akb.Config{})
					if err != nil {
						panic(err)
					}
					spec := tasks.SpecFor(b.Kind)
					cells["no-AKB"] += akb.Evaluate(ad.Model, spec, b.DS.Test, nil)
					for _, v := range []struct {
						col  string
						temp float64
					}{{"temp-0", 0}, {"temp-0.9", 0.9}} {
						res := z.searchAKB(ad.Model, oracle.NewWithTemperature(ctx.Seed+771, v.temp),
							b.Kind, fewshot, nil, akb.DefaultConfig(ctx.Seed), ctx.Seed, rec)
						cells[v.col] += akb.Evaluate(ad.Model, spec, b.DS.Test, res.Best)
					}
				}
				for _, c := range columns {
					cells[c] /= float64(reps)
				}
				return cells
			},
		})
	}
	results := runCells(z, jobs)
	for i, b := range bundles {
		t.AddRow(string(b.Kind), b.DS.Name, results[i])
	}
	return t.WithAverages()
}
