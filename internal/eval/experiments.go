package eval

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"time"

	"repro/internal/baselines"
	"repro/internal/datagen"
	"repro/internal/lora"
	"repro/internal/obs"
)

// FewShotN is the paper's labeled budget per novel dataset (Table I).
const FewShotN = 20

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(z *Zoo, reps int) *Table
}

// Registry lists every experiment in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"table1", "Statistics of downstream datasets (Table I)", runTable1},
		{"table2", "7B open-source DP-LLMs and non-LLM methods on 13 datasets (Table II)", runTable2},
		{"table3", "Token and cost analysis per instance (Table III)", runTable3},
		{"table4", "Closed-source LLMs vs KnowTrans-7B/8B/13B (Table IV)", runTable4},
		{"table5", "Ablation study: SKC and AKB components (Table V)", runTable5},
		{"table6", "Weight strategies: single / uniform / adaptive (Table VI)", runTable6},
		{"table7", "Statistics of upstream datasets (Table VII)", runTable7},
		{"fig4", "Scalability: score vs labeled instances (Fig. 4)", runFig4},
		{"fig5", "Backbones with KnowTrans on novel datasets (Fig. 5)", runFig5},
		{"fig6", "Backbones with KnowTrans on novel tasks (Fig. 6)", runFig6},
		{"fig7", "Refinement rounds: eval/test score per round (Fig. 7)", runFig7},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// cellKey joins the components of a cell's seed-stream key with an explicit
// separator. Bare concatenation (the former b.Key()+name scheme) could
// alias distinct (dataset, method) pairs into one seed stream; the
// separator keeps keys collision-free as long as components contain no "|",
// which dataset keys and column names don't.
func cellKey(parts ...string) string { return strings.Join(parts, "|") }

// fewShotRNG derives the deterministic sampler for a (dataset, repetition)
// pair; every method sees the same few-shot sample within a repetition.
func fewShotRNG(z *Zoo, key string, rep int) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d", key, rep, z.Seed)
	return rand.New(rand.NewSource(int64(h.Sum64() & 0x7fffffffffffffff)))
}

func repSeed(z *Zoo, key string, rep int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "seed|%s|%d|%d", key, rep, z.Seed)
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// observeCell records the wall time of one experiment cell repetition (one
// method adapted and evaluated on one dataset) in the shared histogram and
// a per-method one, the raw data of Table III's latency column.
func observeCell(rec *obs.Recorder, method string, start time.Time) {
	rec.ObserveSince("eval.cell_us", start)
	rec.ObserveSince("eval.cell_us/"+method, start)
}

// methodCell builds the pool job for one (dataset, column) table cell:
// construct the method, adapt and score it reps times on per-repetition
// few-shot samples, return the mean. key is the cell's content-addressed
// seed-stream key (see cellKey) — derived from names, never from execution
// order, which is what makes the worker schedule irrelevant to the result.
// obsName labels the per-method latency histogram (usually the column name;
// Fig. 4 uses the method name across budget columns).
func methodCell(z *Zoo, b *datagen.Bundle, key, obsName string, reps, fewshotN int, build func() baselines.Method) cellJob[float64] {
	return cellJob[float64]{
		Label: key,
		Run: func(rec *obs.Recorder) float64 {
			m := build()
			var sum float64
			for rep := 0; rep < reps; rep++ {
				fewshot := b.DS.FewShot(fewShotRNG(z, key, rep), fewshotN)
				start := rec.Now()
				pred := m.Adapt(&baselines.AdaptContext{
					Bundle:  b,
					FewShot: fewshot,
					Seed:    repSeed(z, key, rep),
					Rec:     rec,
				})
				sum += baselines.Evaluate(pred, b.Kind, b.DS.Test)
				observeCell(rec, obsName, start)
			}
			return sum / float64(reps)
		},
	}
}

// bundlesByKey resolves dataset keys to bundles, in order.
func bundlesByKey(z *Zoo, keys []string) []*datagen.Bundle {
	out := make([]*datagen.Bundle, len(keys))
	for i, k := range keys {
		out[i] = z.DownstreamByKey(k)
	}
	return out
}

// assembleRows fills t with one row per bundle from the flat scores slice,
// which runCells produced in the same bundle-major, column-minor order the
// jobs were declared in.
func assembleRows(t *Table, bundles []*datagen.Bundle, columns []string, scores []float64) {
	i := 0
	for _, b := range bundles {
		cells := map[string]float64{}
		for _, c := range columns {
			cells[c] = scores[i]
			i++
		}
		t.AddRow(string(b.Kind), b.DS.Name, cells)
	}
}

// runMethodsOn evaluates the named methods on the bundles, averaging scores
// over reps repetitions with per-repetition few-shot samples.
func runMethodsOn(z *Zoo, bundles []*datagen.Bundle, methodNames []string, reps int, fewshotN int) *Table {
	t := &Table{Columns: methodNames}
	jobs := make([]cellJob[float64], 0, len(bundles)*len(methodNames))
	for _, b := range bundles {
		for _, name := range methodNames {
			jobs = append(jobs, methodCell(z, b, cellKey(b.Key(), name), name, reps, fewshotN,
				func() baselines.Method { return z.Method(name) }))
		}
	}
	assembleRows(t, bundles, methodNames, runCells(z, jobs))
	return t
}

// --- Table I / Table VII: dataset statistics ---------------------------------

func runTable1(z *Zoo, _ int) *Table {
	t := &Table{ID: "table1", Title: "Statistic of Datasets (paper sizes; generated at scale shown)",
		Columns: []string{"Training Set", "Few-shot", "Test Set", "Generated Train", "Generated Test"}}
	for _, b := range z.Downstream() {
		train, test, _ := datagen.PaperSizes(b.Key())
		t.AddRow(string(b.Kind), b.DS.Name, map[string]float64{
			"Training Set":    float64(train),
			"Few-shot":        FewShotN,
			"Test Set":        float64(test),
			"Generated Train": float64(len(b.DS.Train)),
			"Generated Test":  float64(len(b.DS.Test)),
		})
	}
	return t
}

func runTable7(z *Zoo, _ int) *Table {
	t := &Table{ID: "table7", Title: "Statistic of Upstream Datasets",
		Columns: []string{"#Samples", "#Positives", "Generated", "Generated Positives"}}
	for _, b := range z.UpstreamBundles() {
		samples, positives, _ := datagen.PaperUpstreamSize(b.Key())
		genPos := 0
		for _, in := range b.DS.Train {
			if in.GoldText() == "yes" {
				genPos++
			}
		}
		cells := map[string]float64{
			"#Samples":  float64(samples),
			"Generated": float64(len(b.DS.Train)),
		}
		if positives > 0 {
			cells["#Positives"] = float64(positives)
			cells["Generated Positives"] = float64(genPos)
		}
		t.AddRow(string(b.Kind), b.DS.Name, cells)
	}
	return t
}

// --- Table II: open-source DP-LLMs + non-LLM ---------------------------------

func runTable2(z *Zoo, reps int) *Table {
	methods := []string{
		MethodNonLLM, MethodMistral, MethodTableLLaMA, MethodMELD,
		MethodJellyfish, MethodJellyfishICL, MethodKnowTrans,
	}
	t := runMethodsOn(z, z.Downstream(), methods, reps, FewShotN)
	t.ID, t.Title = "table2", "Comparison of 7B open-source DP-LLMs and non-LLM methods (few-shot)"
	return t.WithAverages()
}

// --- Table IV: closed-source LLMs vs KnowTrans sizes --------------------------

func runTable4(z *Zoo, reps int) *Table {
	columns := []string{MethodGPT35, MethodGPT4, MethodGPT4o, "KnowTrans-7B", "KnowTrans-8B", "KnowTrans-13B"}
	t := &Table{ID: "table4", Title: "Comparison with closed-source LLMs (few-shot)", Columns: columns}
	sizes := map[string]Size{"KnowTrans-7B": Size7B, "KnowTrans-8B": Size8B, "KnowTrans-13B": Size13B}
	bundles := z.Downstream()
	var jobs []cellJob[float64]
	for _, b := range bundles {
		for _, name := range columns {
			jobs = append(jobs, methodCell(z, b, cellKey(b.Key(), name), name, reps, FewShotN,
				func() baselines.Method {
					if size, ok := sizes[name]; ok {
						return z.KnowTransMethod(size, true, true, lora.StrategyAdaptive)
					}
					return z.Method(name)
				}))
		}
	}
	assembleRows(t, bundles, columns, runCells(z, jobs))
	return t.WithAverages()
}

// --- Table V: ablation ---------------------------------------------------------

// table5Datasets are the seven datasets of the paper's ablation.
var table5Datasets = []string{
	"DI/Flipkart", "DI/Phone", "CTA/SOTAB", "AVE/AE-110k", "AVE/OA-mine", "DC/Rayyan", "DC/Beer",
}

func runTable5(z *Zoo, reps int) *Table {
	columns := []string{"w/o SKC & AKB", "w/o SKC", "w/o AKB", "KnowTrans"}
	configs := map[string][2]bool{ // {useSKC, useAKB}
		"w/o SKC & AKB": {false, false},
		"w/o SKC":       {false, true},
		"w/o AKB":       {true, false},
		"KnowTrans":     {true, true},
	}
	t := &Table{ID: "table5", Title: "Ablation study of SKC and AKB (KnowTrans-7B)", Columns: columns}
	bundles := bundlesByKey(z, table5Datasets)
	var jobs []cellJob[float64]
	for _, b := range bundles {
		for _, name := range columns {
			cfg := configs[name]
			jobs = append(jobs, methodCell(z, b, cellKey(b.Key(), name), name, reps, FewShotN,
				func() baselines.Method { return z.KnowTransMethod(Size7B, cfg[0], cfg[1], lora.StrategyAdaptive) }))
		}
	}
	assembleRows(t, bundles, columns, runCells(z, jobs))
	return t.WithAverages()
}

// --- Table VI: weight strategies -----------------------------------------------

var table6Datasets = []string{"ED/Flights", "ED/Rayyan", "EM/Abt-Buy", "AVE/AE-110k"}

func runTable6(z *Zoo, reps int) *Table { return runTable6On(z, reps, table6Datasets) }

// runTable6On runs the weight-strategy comparison over the given dataset
// keys: the full Table VI list normally, a smaller grid in the
// serial-vs-parallel determinism test.
func runTable6On(z *Zoo, reps int, keys []string) *Table {
	columns := []string{"Single", "Uniform", "Adaptive", "KnowTrans"}
	t := &Table{ID: "table6", Title: "Weight strategies for upstream knowledge patches (KnowTrans-7B)", Columns: columns}
	bundles := bundlesByKey(z, keys)
	var jobs []cellJob[float64]
	for _, b := range bundles {
		for _, name := range columns {
			jobs = append(jobs, methodCell(z, b, cellKey(b.Key(), name), name, reps, FewShotN,
				func() baselines.Method {
					switch name {
					case "Single":
						// No upstream patches, no AKB: the bare shared-patch model.
						return z.KnowTransMethod(Size7B, true, false, lora.StrategySingle)
					case "Uniform":
						return z.KnowTransMethod(Size7B, true, false, lora.StrategyUniform)
					case "Adaptive":
						return z.KnowTransMethod(Size7B, true, false, lora.StrategyAdaptive)
					default: // KnowTrans = adaptive + AKB
						return z.KnowTransMethod(Size7B, true, true, lora.StrategyAdaptive)
					}
				}))
		}
	}
	assembleRows(t, bundles, columns, runCells(z, jobs))
	return t.WithAverages()
}
