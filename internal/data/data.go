// Package data defines the common data model of the reproduction: relational
// tables, supervised instances for the seven DP tasks, datasets with
// deterministic splits, and the stratified few-shot sampling the paper's
// experimental protocol uses (20 labeled examples per novel dataset).
package data

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Table is a named relational table with an ordered schema, the raw material
// of every data preparation task (Section III).
type Table struct {
	Name  string
	Attrs []string
	Rows  [][]string
}

// NewTable allocates an empty table with the given schema.
func NewTable(name string, attrs ...string) *Table {
	return &Table{Name: name, Attrs: attrs}
}

// Append adds a row; it panics if the arity does not match the schema.
func (t *Table) Append(row ...string) {
	if len(row) != len(t.Attrs) {
		panic(fmt.Sprintf("data: row arity %d does not match schema %d of %q", len(row), len(t.Attrs), t.Name))
	}
	t.Rows = append(t.Rows, row)
}

// Cell returns the value at (row, attr); it panics on an unknown attribute.
func (t *Table) Cell(row int, attr string) string {
	for j, a := range t.Attrs {
		if a == attr {
			return t.Rows[row][j]
		}
	}
	panic(fmt.Sprintf("data: unknown attribute %q in table %q", attr, t.Name))
}

// Field is one (attribute, value) pair of an instance's record context.
// Entity distinguishes the two sides of a matching pair ("A"/"B"); it is
// empty for single-record tasks.
type Field struct {
	Entity string
	Name   string
	Value  string
}

// Instance is one supervised example of any DP task, already lifted out of
// its table: the record context, the question, the candidate answer set, and
// the gold answer. Open-domain generation tasks (DI, DC, AVE) are realized
// as ranking over task-enumerated candidates; see DESIGN.md.
type Instance struct {
	ID         string
	Fields     []Field
	Target     string   // attribute under consideration (ED/DC/DI/AVE), if any
	Candidates []string // answer options; Gold indexes into it
	Gold       int
	Meta       map[string]string // free-form extras (e.g. latent error type)
}

// GoldText returns the gold answer string.
func (in *Instance) GoldText() string {
	if in.Gold < 0 || in.Gold >= len(in.Candidates) {
		return ""
	}
	return in.Candidates[in.Gold]
}

// FieldValue returns the value of the first field with the given name, or ""
// if absent.
func (in *Instance) FieldValue(name string) string {
	for _, f := range in.Fields {
		if f.Name == name {
			return f.Value
		}
	}
	return ""
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	out := *in
	out.Fields = append([]Field(nil), in.Fields...)
	out.Candidates = append([]string(nil), in.Candidates...)
	if in.Meta != nil {
		out.Meta = make(map[string]string, len(in.Meta))
		for k, v := range in.Meta {
			out.Meta[k] = v
		}
	}
	return &out
}

// Dataset is a named collection of instances for one task with the paper's
// train / few-shot / test protocol (Table I).
type Dataset struct {
	Name string
	Task string // task code: EM, DI, SM, ED, DC, CTA, AVE
	// Train is the full labeled pool; the experiments draw few-shot subsets
	// from it. Test is held out.
	Train []*Instance
	Test  []*Instance
}

// Key returns the task-qualified dataset identifier used in result tables.
func (d *Dataset) Key() string { return d.Task + "/" + d.Name }

// FewShot draws n instances from Train, stratified by gold answer so binary
// tasks keep both classes represented (the paper uses 20 samples and its
// upstream sets are heavily imbalanced). Sampling is deterministic in rng.
func (d *Dataset) FewShot(rng *rand.Rand, n int) []*Instance {
	if n >= len(d.Train) {
		out := append([]*Instance(nil), d.Train...)
		shuffle(rng, out)
		return out
	}
	byClass := map[string][]*Instance{}
	var classes []string
	for _, in := range d.Train {
		c := in.GoldText()
		if _, ok := byClass[c]; !ok {
			classes = append(classes, c)
		}
		byClass[c] = append(byClass[c], in)
	}
	sort.Strings(classes)
	for _, c := range classes {
		shuffle(rng, byClass[c])
	}
	// For tasks with many "classes" (open generation), stratification
	// degenerates to uniform sampling, which is what we want there.
	var out []*Instance
	for len(out) < n {
		progress := false
		for _, c := range classes {
			if len(out) >= n {
				break
			}
			if pool := byClass[c]; len(pool) > 0 {
				out = append(out, pool[len(pool)-1])
				byClass[c] = pool[:len(pool)-1]
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	shuffle(rng, out)
	return out
}

// TrainValidSplit splits instances 9:1 (the paper's Section VII-A ratio)
// deterministically in rng. With fewer than 10 instances the validation side
// still receives at least one.
func TrainValidSplit(rng *rand.Rand, ins []*Instance) (train, valid []*Instance) {
	cp := append([]*Instance(nil), ins...)
	shuffle(rng, cp)
	nv := len(cp) / 10
	if nv == 0 && len(cp) > 1 {
		nv = 1
	}
	return cp[nv:], cp[:nv]
}

func shuffle(rng *rand.Rand, ins []*Instance) {
	rng.Shuffle(len(ins), func(i, j int) { ins[i], ins[j] = ins[j], ins[i] })
}

// Subset returns the first n instances (or all if fewer); used by the
// scalability analysis of Fig. 4 where the labeled pool grows.
func Subset(ins []*Instance, n int) []*Instance {
	if n >= len(ins) {
		return ins
	}
	return ins[:n]
}

// RenderRecord serializes an instance's fields in the Jellyfish prompt style
// of Listing 1: `Record [attr: value, ...]`, grouping by entity for pair
// tasks. It is the canonical human-readable form (the model input is built
// by internal/tasks, which may apply knowledge directives first).
func RenderRecord(fields []Field) string {
	byEntity := map[string][]Field{}
	var order []string
	for _, f := range fields {
		if _, ok := byEntity[f.Entity]; !ok {
			order = append(order, f.Entity)
		}
		byEntity[f.Entity] = append(byEntity[f.Entity], f)
	}
	var sb strings.Builder
	for i, e := range order {
		if i > 0 {
			sb.WriteString(" ")
		}
		if e != "" {
			sb.WriteString(e)
			sb.WriteString(": ")
		}
		sb.WriteString("[")
		for j, f := range byEntity[e] {
			if j > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(f.Name)
			sb.WriteString(": ")
			sb.WriteString(f.Value)
		}
		sb.WriteString("]")
	}
	return sb.String()
}
