package data

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func binaryInstances(n, posEvery int) []*Instance {
	var out []*Instance
	for i := 0; i < n; i++ {
		gold := 1
		if i%posEvery == 0 {
			gold = 0
		}
		out = append(out, &Instance{
			ID:         "i",
			Fields:     []Field{{Name: "v", Value: strings.Repeat("x", i%7+1)}},
			Candidates: []string{"yes", "no"},
			Gold:       gold,
		})
	}
	return out
}

func TestTableAppendAndCell(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.Append("1", "2")
	if tb.Cell(0, "b") != "2" {
		t.Fatalf("cell = %q", tb.Cell(0, "b"))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch must panic")
		}
	}()
	tb.Append("only-one")
}

func TestTableUnknownAttrPanics(t *testing.T) {
	tb := NewTable("t", "a")
	tb.Append("1")
	defer func() {
		if recover() == nil {
			t.Fatal("unknown attribute must panic")
		}
	}()
	tb.Cell(0, "zz")
}

func TestInstanceGoldText(t *testing.T) {
	in := &Instance{Candidates: []string{"a", "b"}, Gold: 1}
	if in.GoldText() != "b" {
		t.Fatalf("gold = %q", in.GoldText())
	}
	in.Gold = 5
	if in.GoldText() != "" {
		t.Fatal("out-of-range gold should give empty text")
	}
}

func TestInstanceClone(t *testing.T) {
	in := &Instance{
		Fields:     []Field{{Name: "a", Value: "1"}},
		Candidates: []string{"x", "y"},
		Meta:       map[string]string{"k": "v"},
	}
	c := in.Clone()
	c.Fields[0].Value = "changed"
	c.Candidates[0] = "changed"
	c.Meta["k"] = "changed"
	if in.Fields[0].Value != "1" || in.Candidates[0] != "x" || in.Meta["k"] != "v" {
		t.Fatal("Clone must deep-copy")
	}
}

func TestFewShotStratified(t *testing.T) {
	ds := &Dataset{Name: "d", Task: "ED", Train: binaryInstances(200, 10)}
	got := ds.FewShot(rand.New(rand.NewSource(1)), 20)
	if len(got) != 20 {
		t.Fatalf("got %d samples", len(got))
	}
	pos := 0
	for _, in := range got {
		if in.GoldText() == "yes" {
			pos++
		}
	}
	// Round-robin stratification on a 10%-positive pool should yield a
	// balanced few-shot sample.
	if pos != 10 {
		t.Fatalf("stratification broken: %d positives of 20", pos)
	}
}

func TestFewShotDeterministic(t *testing.T) {
	ds := &Dataset{Name: "d", Task: "ED", Train: binaryInstances(100, 4)}
	a := ds.FewShot(rand.New(rand.NewSource(7)), 20)
	b := ds.FewShot(rand.New(rand.NewSource(7)), 20)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("few-shot sampling must be deterministic in the rng")
		}
	}
}

func TestFewShotWholePool(t *testing.T) {
	ds := &Dataset{Name: "d", Task: "ED", Train: binaryInstances(10, 2)}
	got := ds.FewShot(rand.New(rand.NewSource(1)), 50)
	if len(got) != 10 {
		t.Fatalf("asking for more than the pool should return the pool, got %d", len(got))
	}
}

func TestTrainValidSplit(t *testing.T) {
	ins := binaryInstances(100, 3)
	train, valid := TrainValidSplit(rand.New(rand.NewSource(2)), ins)
	if len(train) != 90 || len(valid) != 10 {
		t.Fatalf("split = %d/%d, want 90/10", len(train), len(valid))
	}
	// Tiny input still yields a validation instance.
	train, valid = TrainValidSplit(rand.New(rand.NewSource(2)), binaryInstances(3, 2))
	if len(valid) != 1 || len(train) != 2 {
		t.Fatalf("tiny split = %d/%d", len(train), len(valid))
	}
}

// Property: split partitions the input (no loss, no duplication).
func TestTrainValidSplitPartition(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%50 + 2
		ins := binaryInstances(n, 3)
		train, valid := TrainValidSplit(rand.New(rand.NewSource(seed)), ins)
		if len(train)+len(valid) != n {
			return false
		}
		seen := map[*Instance]bool{}
		for _, in := range append(append([]*Instance{}, train...), valid...) {
			if seen[in] {
				return false
			}
			seen[in] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSubset(t *testing.T) {
	ins := binaryInstances(10, 2)
	if got := Subset(ins, 3); len(got) != 3 {
		t.Fatalf("subset = %d", len(got))
	}
	if got := Subset(ins, 99); len(got) != 10 {
		t.Fatalf("oversized subset = %d", len(got))
	}
}

func TestRenderRecord(t *testing.T) {
	fields := []Field{
		{Entity: "A", Name: "x", Value: "1"},
		{Entity: "A", Name: "y", Value: "2"},
		{Entity: "B", Name: "x", Value: "3"},
	}
	got := RenderRecord(fields)
	want := "A: [x: 1, y: 2] B: [x: 3]"
	if got != want {
		t.Fatalf("render = %q, want %q", got, want)
	}
	single := RenderRecord([]Field{{Name: "x", Value: "1"}})
	if single != "[x: 1]" {
		t.Fatalf("single-entity render = %q", single)
	}
}

func TestDatasetKey(t *testing.T) {
	ds := &Dataset{Name: "Beer", Task: "ED"}
	if ds.Key() != "ED/Beer" {
		t.Fatalf("key = %q", ds.Key())
	}
}

func TestFieldValue(t *testing.T) {
	in := &Instance{Fields: []Field{{Name: "a", Value: "1"}, {Name: "b", Value: "2"}}}
	if in.FieldValue("b") != "2" || in.FieldValue("zz") != "" {
		t.Fatal("FieldValue lookup broken")
	}
}
