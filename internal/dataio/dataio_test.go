package dataio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/tasks"
)

const beerCSV = `beer_name,abv,city,label
Hop Storm,0.05,Springfield,no
Iron Haze,0.07%,Riverside,yes
Cloud Fox,nan,Dover,yes
`

func TestReadCSV(t *testing.T) {
	tb, err := ReadCSV("beer", strings.NewReader(beerCSV))
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Attrs) != 4 || len(tb.Rows) != 3 {
		t.Fatalf("shape = %d cols x %d rows", len(tb.Attrs), len(tb.Rows))
	}
	if tb.Cell(1, "abv") != "0.07%" {
		t.Fatalf("cell = %q", tb.Cell(1, "abv"))
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("x", strings.NewReader("")); err == nil {
		t.Fatal("empty stream should error")
	}
	ragged := "a,b\n1\n"
	if _, err := ReadCSV("x", strings.NewReader(ragged)); err == nil {
		t.Fatal("ragged rows should error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb, err := ReadCSV("beer", strings.NewReader(beerCSV))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(tb, &buf); err != nil {
		t.Fatal(err)
	}
	tb2, err := ReadCSV("beer", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb2.Rows) != len(tb.Rows) {
		t.Fatal("round trip lost rows")
	}
	for i := range tb.Rows {
		for j := range tb.Rows[i] {
			if tb.Rows[i][j] != tb2.Rows[i][j] {
				t.Fatalf("cell (%d,%d) changed", i, j)
			}
		}
	}
}

func TestEDInstances(t *testing.T) {
	tb, _ := ReadCSV("beer", strings.NewReader(beerCSV))
	ins, err := EDInstances(tb, "abv", "label")
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 3 {
		t.Fatalf("got %d instances", len(ins))
	}
	if ins[0].GoldText() != tasks.AnswerNo || ins[1].GoldText() != tasks.AnswerYes {
		t.Fatalf("labels wrong: %s, %s", ins[0].GoldText(), ins[1].GoldText())
	}
	if ins[0].Target != "abv" {
		t.Fatalf("target = %q", ins[0].Target)
	}
	// The label column must not leak into the record fields.
	for _, f := range ins[0].Fields {
		if f.Name == "label" {
			t.Fatal("label column leaked into the record")
		}
	}
	if _, err := EDInstances(tb, "nope", "label"); err == nil {
		t.Fatal("unknown target must error")
	}
	if _, err := EDInstances(tb, "abv", "nope"); err == nil {
		t.Fatal("unknown label column must error")
	}
}

const pairCSV = `left_title,left_price,right_title,right_price,match
acme blender bx-1,9.99,acme bx-1 blender,10.99,1
acme blender bx-1,9.99,zuma toaster tk-2,8.99,0
`

func TestEMInstances(t *testing.T) {
	tb, _ := ReadCSV("pairs", strings.NewReader(pairCSV))
	ins, err := EMInstances(tb, "match")
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 2 {
		t.Fatalf("got %d instances", len(ins))
	}
	if ins[0].GoldText() != tasks.AnswerYes || ins[1].GoldText() != tasks.AnswerNo {
		t.Fatal("labels wrong")
	}
	var a, b int
	for _, f := range ins[0].Fields {
		switch f.Entity {
		case "A":
			a++
		case "B":
			b++
		}
	}
	if a != 2 || b != 2 {
		t.Fatalf("entity split wrong: %d/%d", a, b)
	}
	// Missing left_/right_ prefixes must error.
	flat, _ := ReadCSV("flat", strings.NewReader("x,match\n1,1\n"))
	if _, err := EMInstances(flat, "match"); err == nil {
		t.Fatal("non-pair table must error")
	}
}

func TestDIInstances(t *testing.T) {
	csv := "name,brand\nphone one,Acme\nphone two,Zuma\nphone three,Acme\n"
	tb, _ := ReadCSV("phones", strings.NewReader(csv))
	ins, err := DIInstances(tb, "brand")
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 3 {
		t.Fatalf("got %d instances", len(ins))
	}
	for _, in := range ins {
		if in.FieldValue("brand") != "nan" {
			t.Fatal("target must be masked")
		}
		if in.Gold < 0 {
			t.Fatal("gold missing")
		}
	}
	// Candidates = distinct brands + n/a.
	if len(ins[0].Candidates) != 3 {
		t.Fatalf("candidates = %v", ins[0].Candidates)
	}
}

func TestParseBinaryLabel(t *testing.T) {
	for _, v := range []string{"yes", "1", "TRUE", "match"} {
		if g, err := parseBinaryLabel(v); err != nil || g != 0 {
			t.Fatalf("parse(%q) = %d, %v", v, g, err)
		}
	}
	for _, v := range []string{"no", "0", "False"} {
		if g, err := parseBinaryLabel(v); err != nil || g != 1 {
			t.Fatalf("parse(%q) = %d, %v", v, g, err)
		}
	}
	if _, err := parseBinaryLabel("maybe"); err == nil {
		t.Fatal("bad label should error")
	}
}

// JSON round trip against the real generated datasets.
func TestJSONRoundTripGeneratedDataset(t *testing.T) {
	b := datagen.ByKey("ED/Beer", 1, 0.05)
	var buf bytes.Buffer
	if err := EncodeJSON(b.DS, tasks.RenderKnowledgeText(b.Seed), &buf); err != nil {
		t.Fatal(err)
	}
	ds, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != b.DS.Name || ds.Task != b.DS.Task {
		t.Fatal("metadata lost")
	}
	if len(ds.Train) != len(b.DS.Train) || len(ds.Test) != len(b.DS.Test) {
		t.Fatal("split sizes changed")
	}
	for i := range ds.Train {
		if ds.Train[i].GoldText() != b.DS.Train[i].GoldText() {
			t.Fatalf("gold changed at %d", i)
		}
		if len(ds.Train[i].Fields) != len(b.DS.Train[i].Fields) {
			t.Fatalf("fields changed at %d", i)
		}
	}
}

func TestDecodeJSONRejectsBadGold(t *testing.T) {
	bad := `{"name":"x","task":"ED","train":[{"id":"1","fields":[],"candidates":["yes"],"gold":5}],"test":[]}`
	if _, err := DecodeJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("out-of-range gold must be rejected")
	}
}
