// Package dataio moves datasets across the process boundary: CSV tables in,
// JSON datasets in/out. It is what lets a downstream user run KnowTrans on
// their own data instead of the synthetic suite — load a CSV, declare the
// task, and get data.Instances the rest of the pipeline consumes.
package dataio

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/data"
	"repro/internal/tasks"
)

// ReadCSV parses a CSV stream (first row = header) into a Table.
func ReadCSV(name string, r io.Reader) (*data.Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataio: reading header of %q: %w", name, err)
	}
	t := data.NewTable(name, header...)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataio: reading %q line %d: %w", name, line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("dataio: %q line %d has %d fields, header has %d", name, line, len(rec), len(header))
		}
		t.Append(rec...)
	}
	return t, nil
}

// WriteCSV renders a Table as CSV.
func WriteCSV(t *data.Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Attrs); err != nil {
		return fmt.Errorf("dataio: writing header: %w", err)
	}
	for i, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataio: writing row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// EDInstances lifts a labeled error-detection table into instances. The
// label column must hold yes/no (case-insensitive; 1/0 and true/false are
// accepted); target names the attribute under verification.
func EDInstances(t *data.Table, target, labelCol string) ([]*data.Instance, error) {
	li, err := colIndex(t, labelCol)
	if err != nil {
		return nil, err
	}
	if _, err := colIndex(t, target); err != nil {
		return nil, err
	}
	var out []*data.Instance
	for i, row := range t.Rows {
		gold, err := parseBinaryLabel(row[li])
		if err != nil {
			return nil, fmt.Errorf("dataio: %s row %d: %w", t.Name, i, err)
		}
		in := &data.Instance{
			ID:         fmt.Sprintf("%s-%d", t.Name, i),
			Target:     target,
			Candidates: []string{tasks.AnswerYes, tasks.AnswerNo},
			Gold:       gold,
		}
		for j, attr := range t.Attrs {
			if j == li {
				continue
			}
			in.Fields = append(in.Fields, data.Field{Name: attr, Value: row[j]})
		}
		out = append(out, in)
	}
	return out, nil
}

// EMInstances lifts a labeled pair table into entity-matching instances.
// Columns prefixed "left_" and "right_" form the two entities; the label
// column holds the match flag.
func EMInstances(t *data.Table, labelCol string) ([]*data.Instance, error) {
	li, err := colIndex(t, labelCol)
	if err != nil {
		return nil, err
	}
	var sawLeft, sawRight bool
	for _, a := range t.Attrs {
		if strings.HasPrefix(a, "left_") {
			sawLeft = true
		}
		if strings.HasPrefix(a, "right_") {
			sawRight = true
		}
	}
	if !sawLeft || !sawRight {
		return nil, fmt.Errorf("dataio: %s: EM tables need left_*/right_* columns", t.Name)
	}
	var out []*data.Instance
	for i, row := range t.Rows {
		gold, err := parseBinaryLabel(row[li])
		if err != nil {
			return nil, fmt.Errorf("dataio: %s row %d: %w", t.Name, i, err)
		}
		in := &data.Instance{
			ID:         fmt.Sprintf("%s-%d", t.Name, i),
			Candidates: []string{tasks.AnswerYes, tasks.AnswerNo},
			Gold:       gold,
		}
		for j, attr := range t.Attrs {
			if j == li {
				continue
			}
			switch {
			case strings.HasPrefix(attr, "left_"):
				in.Fields = append(in.Fields, data.Field{Entity: "A", Name: strings.TrimPrefix(attr, "left_"), Value: row[j]})
			case strings.HasPrefix(attr, "right_"):
				in.Fields = append(in.Fields, data.Field{Entity: "B", Name: strings.TrimPrefix(attr, "right_"), Value: row[j]})
			default:
				in.Fields = append(in.Fields, data.Field{Name: attr, Value: row[j]})
			}
		}
		out = append(out, in)
	}
	return out, nil
}

// DIInstances lifts a table into data-imputation instances: target is the
// column to impute; every row's target value becomes the gold answer and
// candidates are the distinct values of the target column (closed-world
// imputation) plus n/a.
func DIInstances(t *data.Table, target string) ([]*data.Instance, error) {
	ti, err := colIndex(t, target)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var vocab []string
	for _, row := range t.Rows {
		v := strings.TrimSpace(row[ti])
		if v == "" || seen[strings.ToLower(v)] {
			continue
		}
		seen[strings.ToLower(v)] = true
		vocab = append(vocab, v)
	}
	vocab = append(vocab, tasks.AnswerNA)
	var out []*data.Instance
	for i, row := range t.Rows {
		gold := -1
		for k, v := range vocab {
			if strings.EqualFold(v, row[ti]) {
				gold = k
			}
		}
		if gold < 0 {
			continue
		}
		in := &data.Instance{
			ID:         fmt.Sprintf("%s-%d", t.Name, i),
			Target:     target,
			Candidates: vocab,
			Gold:       gold,
		}
		for j, attr := range t.Attrs {
			v := row[j]
			if j == ti {
				v = "nan"
			}
			in.Fields = append(in.Fields, data.Field{Name: attr, Value: v})
		}
		out = append(out, in)
	}
	return out, nil
}

func colIndex(t *data.Table, name string) (int, error) {
	for i, a := range t.Attrs {
		if strings.EqualFold(a, name) {
			return i, nil
		}
	}
	return -1, fmt.Errorf("dataio: %s: no column %q (have %v)", t.Name, name, t.Attrs)
}

func parseBinaryLabel(v string) (gold int, err error) {
	switch strings.ToLower(strings.TrimSpace(v)) {
	case "yes", "1", "true", "match":
		return 0, nil
	case "no", "0", "false", "non-match", "nonmatch":
		return 1, nil
	default:
		return 0, fmt.Errorf("unparseable binary label %q", v)
	}
}

// JSONDataset is the on-disk dataset layout shared with cmd/dpgen.
type JSONDataset struct {
	Name          string         `json:"name"`
	Task          string         `json:"task"`
	SeedKnowledge string         `json:"seed_knowledge,omitempty"`
	Train         []JSONInstance `json:"train"`
	Test          []JSONInstance `json:"test"`
}

// JSONInstance is the serialized instance form.
type JSONInstance struct {
	ID         string            `json:"id"`
	Fields     []data.Field      `json:"fields"`
	Target     string            `json:"target,omitempty"`
	Candidates []string          `json:"candidates"`
	Gold       int               `json:"gold"`
	GoldText   string            `json:"gold_text"`
	Meta       map[string]string `json:"meta,omitempty"`
}

// EncodeJSON serializes a dataset.
func EncodeJSON(ds *data.Dataset, seedKnowledge string, w io.Writer) error {
	out := JSONDataset{
		Name:          ds.Name,
		Task:          ds.Task,
		SeedKnowledge: seedKnowledge,
		Train:         toJSON(ds.Train),
		Test:          toJSON(ds.Test),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// DecodeJSON parses a dataset previously written by EncodeJSON / dpgen.
func DecodeJSON(r io.Reader) (*data.Dataset, error) {
	var in JSONDataset
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("dataio: decoding dataset: %w", err)
	}
	ds := &data.Dataset{Name: in.Name, Task: in.Task}
	var err error
	if ds.Train, err = fromJSON(in.Train); err != nil {
		return nil, fmt.Errorf("dataio: %s train: %w", in.Name, err)
	}
	if ds.Test, err = fromJSON(in.Test); err != nil {
		return nil, fmt.Errorf("dataio: %s test: %w", in.Name, err)
	}
	return ds, nil
}

func toJSON(ins []*data.Instance) []JSONInstance {
	out := make([]JSONInstance, 0, len(ins))
	for _, in := range ins {
		out = append(out, JSONInstance{
			ID: in.ID, Fields: in.Fields, Target: in.Target,
			Candidates: in.Candidates, Gold: in.Gold, GoldText: in.GoldText(), Meta: in.Meta,
		})
	}
	return out
}

func fromJSON(ins []JSONInstance) ([]*data.Instance, error) {
	out := make([]*data.Instance, 0, len(ins))
	for _, ji := range ins {
		if ji.Gold < 0 || ji.Gold >= len(ji.Candidates) {
			return nil, fmt.Errorf("instance %s: gold %d out of range (%d candidates)", ji.ID, ji.Gold, len(ji.Candidates))
		}
		out = append(out, &data.Instance{
			ID: ji.ID, Fields: ji.Fields, Target: ji.Target,
			Candidates: ji.Candidates, Gold: ji.Gold, Meta: ji.Meta,
		})
	}
	return out, nil
}
