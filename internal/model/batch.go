package model

import (
	"fmt"
	"math"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/tasks"
	"repro/internal/tensor"
	"repro/internal/text"
)

// This file is the batched inference path: one forward pass over a whole
// micro-batch of examples, with the union of candidate strings encoded once
// and all per-layer matmuls fused into single batched kernels. The batched
// path is an optimization ONLY — it performs bit-identical arithmetic to
// Scores/Predict example by example (pinned by the equivalence suite and the
// serve selftest), so the serial path remains the oracle.

// evalBatch bounds the internal batch size of PredictBatchWith so scratch
// matrices stay small regardless of dataset size.
const evalBatch = 64

// batchScratch owns every reusable buffer of the batched path. A Model is
// not safe for concurrent use — on the serve path the per-adapter batcher is
// the serialization point — so single ownership is enough.
type batchScratch struct {
	pool  tensor.Pool
	enc   *text.Encoder
	encs  []*tensor.Sparse // per-slot input encodings
	uniq  map[string]int   // candidate string -> column in G
	cands []*tensor.Sparse // unique candidate encodings, first-seen order

	flat   tensor.Vec  // backing store for per-example score rows
	scores [][]float64 // views into flat, one per example

	idxs    []int           // PredictBatch result scratch
	exs     []tasks.Example // PredictBatchWith example scratch
	exptrs  []*tasks.Example
	answers []string
}

func (m *Model) batchScratch() *batchScratch {
	if m.batch == nil {
		m.batch = &batchScratch{
			enc:  text.NewEncoder(m.Hasher),
			uniq: make(map[string]int),
		}
	}
	return m.batch
}

// nanSafeArgmax returns the index of the maximum score, skipping NaNs, with
// ties broken deterministically toward the lower index (matching the
// historical argmax). It also reports how many scores were NaN; when every
// score is NaN it falls back to candidate 0.
func nanSafeArgmax(scores []float64) (best, nans int) {
	best = -1
	for k, s := range scores {
		if math.IsNaN(s) {
			nans++
			continue
		}
		if best < 0 || s > scores[best] {
			best = k
		}
	}
	if best < 0 {
		best = 0
	}
	return best, nans
}

// ScoresBatch runs one batched forward pass over exs and returns one score
// slice per example, bit-identical to calling Scores on each example in
// turn. The returned slices are scratch reused across calls. Candidate
// strings repeated across the batch are encoded and forwarded once.
func (m *Model) ScoresBatch(exs []*tasks.Example) [][]float64 {
	n := len(exs)
	if n == 0 {
		return nil
	}
	m.Rec.Count("model.forward", int64(n))
	m.Rec.Count("model.batch_forward", 1)
	b := m.batchScratch()
	h := m.Cfg.Hidden

	// Encode every input through the zero-alloc serializer (bit-identical to
	// Hasher.Encode) into reused per-slot sparse vectors.
	for len(b.encs) < n {
		b.encs = append(b.encs, &tensor.Sparse{})
	}
	for i, ex := range exs {
		if len(ex.Candidates) == 0 {
			panic(fmt.Sprintf("model: example %q has no candidates", ex.Prompt))
		}
		b.enc.EncodeTo(b.encs[i], ex.Segments)
	}

	// Input tower, one matmul per layer for the whole batch.
	H := b.pool.GetMat(n, h)
	m.inEmb.ForwardBatch(b.encs[:n], H, &b.pool)
	nn.TanhMat(H)
	F := b.pool.GetMat(n, h)
	m.inDense.ForwardBatch(H, F, &b.pool)
	nn.TanhMat(F)
	b.pool.PutMat(H)

	// Deduplicate the union of candidate strings across the batch and encode
	// each unique candidate once (through the shared candidate cache, like
	// the serial path).
	clear(b.uniq)
	b.cands = b.cands[:0]
	total := 0
	for _, ex := range exs {
		total += len(ex.Candidates)
		for _, c := range ex.Candidates {
			if _, ok := b.uniq[c]; !ok {
				b.uniq[c] = len(b.cands)
				b.cands = append(b.cands, m.encodeCand(c))
			}
		}
	}
	u := len(b.cands)
	CH := b.pool.GetMat(u, h)
	m.candEmb.ForwardBatch(b.cands, CH, &b.pool)
	nn.TanhMat(CH)
	G := b.pool.GetMat(u, h)
	m.candDense.ForwardBatch(CH, G, &b.pool)
	nn.TanhMat(G)
	b.pool.PutMat(CH)

	// One Gram product scores every (input, unique candidate) pair; each
	// entry is the same register-accumulated dot the serial path computes.
	S := b.pool.GetMat(n, u)
	tensor.MatMulNT(F, G, S)
	b.pool.PutMat(F)
	b.pool.PutMat(G)

	// Gather per-example rows with the serial op order: dot, then *inv, then
	// + trust·hint.
	inv := 1 / math.Sqrt(float64(m.Cfg.Hidden))
	if cap(b.flat) < total {
		b.flat = tensor.NewVec(total)
	}
	b.scores = b.scores[:0]
	flat := b.flat[:0]
	for i, ex := range exs {
		row := S.Row(i)
		lo := len(flat)
		for k, c := range ex.Candidates {
			s := row[b.uniq[c]] * inv
			if ex.Hints != nil {
				s += m.Trust.Val * ex.Hints[k]
			}
			flat = append(flat, s)
		}
		b.scores = append(b.scores, flat[lo:len(flat):len(flat)])
	}
	b.pool.PutMat(S)
	return b.scores
}

// PredictBatch returns the argmax candidate index for each example via one
// batched forward pass. NaN scores are skipped exactly as in Predict, and
// counted in model.nan_scores.
func (m *Model) PredictBatch(exs []*tasks.Example) []int {
	scores := m.ScoresBatch(exs)
	m.Rec.Count("model.predict", int64(len(exs)))
	b := m.batchScratch()
	b.idxs = b.idxs[:0]
	nans := 0
	for _, sc := range scores {
		best, bad := nanSafeArgmax(sc)
		nans += bad
		b.idxs = append(b.idxs, best)
	}
	if nans > 0 {
		m.Rec.Count("model.nan_scores", int64(nans))
	}
	return b.idxs
}

// PredictBatchWith serializes instances under the given knowledge (without
// rendering prompts — the serve-path serializer) and predicts them in
// batches of evalBatch. The returned slice is scratch reused across calls.
func (m *Model) PredictBatchWith(spec tasks.Spec, ins []*data.Instance, k *tasks.Knowledge) []string {
	b := m.batchScratch()
	if cap(b.answers) < len(ins) {
		b.answers = make([]string, 0, len(ins))
	}
	b.answers = b.answers[:0]
	for lo := 0; lo < len(ins); lo += evalBatch {
		hi := lo + evalBatch
		if hi > len(ins) {
			hi = len(ins)
		}
		chunk := ins[lo:hi]
		for len(b.exs) < len(chunk) {
			b.exs = append(b.exs, tasks.Example{})
			b.exptrs = append(b.exptrs, nil)
		}
		exptrs := b.exptrs[:len(chunk)]
		for i, in := range chunk {
			tasks.BuildExampleInto(&b.exs[i], spec, in, k)
			exptrs[i] = &b.exs[i]
		}
		for i, best := range m.PredictBatch(exptrs) {
			b.answers = append(b.answers, exptrs[i].Candidates[best])
		}
	}
	return b.answers
}
