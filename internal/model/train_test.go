package model

import (
	"testing"

	"repro/internal/tasks"
)

func TestTrainEmptyExamples(t *testing.T) {
	m := New(tinyConfig())
	ps := m.Params()
	if loss := Train(m, nil, DefaultTrain(1), &ps); loss != 0 {
		t.Fatalf("empty training should be a no-op, loss %v", loss)
	}
}

func TestTrainBatchSizesEquivalentDirection(t *testing.T) {
	// Different batch sizes take different optimization paths but both must
	// learn the separable toy task.
	for _, batch := range []int{1, 4, 16} {
		m := New(tinyConfig())
		tc := TrainConfig{Epochs: 6, LR: 0.05, Clip: 5, Seed: 7, BatchSize: batch}
		ps := m.Params()
		Train(m, ExamplesFrom(tasks.ED, toyED(60, 3), nil), tc, &ps)
		score := m.Evaluate(tasks.SpecFor(tasks.ED), toyED(40, 4), nil)
		if score < 90 {
			t.Fatalf("batch=%d failed to learn: %v", batch, score)
		}
	}
}

func TestTrainDeterministicGivenSeed(t *testing.T) {
	run := func() *Snapshot {
		m := New(tinyConfig())
		tc := TrainConfig{Epochs: 3, LR: 0.02, Clip: 5, Seed: 11, BatchSize: 4}
		ps := m.Params()
		Train(m, ExamplesFrom(tasks.ED, toyED(50, 5), nil), tc, &ps)
		return m.Export()
	}
	a, b := run(), run()
	for name, w := range a.Mats {
		for i := range w {
			if b.Mats[name][i] != w[i] {
				t.Fatalf("training nondeterministic at %s[%d]", name, i)
			}
		}
	}
	if a.Trust != b.Trust {
		t.Fatal("trust nondeterministic")
	}
}

func TestTrainReportsDecreasingLoss(t *testing.T) {
	m := New(tinyConfig())
	examples := ExamplesFrom(tasks.ED, toyED(60, 6), nil)
	ps := m.Params()
	first := Train(m, examples, TrainConfig{Epochs: 1, LR: 0.03, Clip: 5, Seed: 2, BatchSize: 4}, &ps)
	later := Train(m, examples, TrainConfig{Epochs: 4, LR: 0.03, Clip: 5, Seed: 3, BatchSize: 4}, &ps)
	if later >= first {
		t.Fatalf("continued training should reduce loss: %v -> %v", first, later)
	}
}
