package model

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/lora"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/tasks"
)

// patchedModel returns a model carrying a live LoRA patch on every layer, so
// the equivalence suite exercises the batched patch kernels too.
func patchedModel(t *testing.T) *Model {
	t.Helper()
	m := New(tinyConfig())
	rng := rand.New(rand.NewSource(21))
	coef := &nn.Scalar{Name: "lam", Val: 0.6}
	p := lora.Attach("test-patch", m.LoraLayers(), lora.Config{Rank: 3, Alpha: 1.5}, coef, rng)
	for _, at := range p.Attachments {
		at.A.W.FillGaussian(rng, 0.4)
	}
	m.Trust.Val = 0.3
	return m
}

// hintKnowledge compiles to non-zero hints on toyED instances with "%".
func hintKnowledge() *tasks.Knowledge {
	return &tasks.Knowledge{Rules: []tasks.Rule{{
		Cond:   tasks.Condition{Pred: tasks.PredFormat, Arg: tasks.FormatPercent},
		Answer: tasks.Answer{Literal: tasks.AnswerYes},
		Weight: 0.8,
	}}}
}

// disjointCandidates rewrites each instance to its own candidate set, so the
// batch-level dedup map sees no sharing.
func disjointCandidates(ins []*data.Instance) {
	for i, in := range ins {
		suffix := string(rune('a' + i%26))
		in.Candidates = []string{"value " + suffix, "other " + suffix}
	}
}

// TestScoresBatchMatchesScores is the table-driven equivalence suite from
// the issue: batch sizes {1, 7, MaxBatch(=64)}, shared vs disjoint candidate
// sets, with and without hint-carrying knowledge — every score bit-identical
// to the serial oracle, every argmax identical.
func TestScoresBatchMatchesScores(t *testing.T) {
	spec := tasks.SpecFor(tasks.ED)
	cases := []struct {
		name     string
		size     int
		disjoint bool
		know     *tasks.Knowledge
	}{
		{"batch1-shared", 1, false, nil},
		{"batch7-shared", 7, false, nil},
		{"batch64-shared", 64, false, nil},
		{"batch7-disjoint", 7, true, nil},
		{"batch64-disjoint", 64, true, nil},
		{"batch7-hints", 7, false, hintKnowledge()},
		{"batch64-hints", 64, false, hintKnowledge()},
		{"batch1-hints", 1, false, hintKnowledge()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := patchedModel(t)
			ins := toyED(tc.size, int64(100+tc.size))
			if tc.disjoint {
				disjointCandidates(ins)
			}
			exs := make([]*tasks.Example, len(ins))
			for i, in := range ins {
				exs[i] = tasks.BuildExample(spec, in, tc.know)
			}
			// Serial oracle first (Scores returns scratch; copy out).
			want := make([][]float64, len(exs))
			wantIdx := make([]int, len(exs))
			for i, ex := range exs {
				sc := m.Scores(ex)
				want[i] = append([]float64(nil), sc...)
				wantIdx[i], _ = nanSafeArgmax(sc)
			}
			got := m.ScoresBatch(exs)
			if len(got) != len(want) {
				t.Fatalf("batch returned %d rows, want %d", len(got), len(want))
			}
			for i := range want {
				if len(got[i]) != len(want[i]) {
					t.Fatalf("row %d: %d scores, want %d", i, len(got[i]), len(want[i]))
				}
				for k := range want[i] {
					if math.Float64bits(got[i][k]) != math.Float64bits(want[i][k]) {
						t.Fatalf("%s row %d cand %d: batched %x serial %x", tc.name, i, k,
							math.Float64bits(got[i][k]), math.Float64bits(want[i][k]))
					}
				}
			}
			for i, best := range m.PredictBatch(exs) {
				if best != wantIdx[i] {
					t.Fatalf("row %d: batched argmax %d, serial %d", i, best, wantIdx[i])
				}
			}
		})
	}
}

// TestPredictBatchWithMatchesPredictWith pins the full serve-path chain
// (BuildExampleInto + batched forward) against the serial PredictWith,
// across a chunk boundary (evalBatch+5 instances).
func TestPredictBatchWithMatchesPredictWith(t *testing.T) {
	m := patchedModel(t)
	spec := tasks.SpecFor(tasks.ED)
	ins := toyED(evalBatch+5, 77)
	k := hintKnowledge()
	got := m.PredictBatchWith(spec, ins, k)
	if len(got) != len(ins) {
		t.Fatalf("got %d answers for %d instances", len(got), len(ins))
	}
	for i, in := range ins {
		if want := m.PredictWith(spec, in, k); got[i] != want {
			t.Fatalf("instance %d: batched %q, serial %q", i, got[i], want)
		}
	}
}

// TestPredictNaNSafe is the regression test for the NaN-blind argmax: a NaN
// in slot 0 used to make every comparison false and silently elect
// candidate 0.
func TestPredictNaNSafe(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name   string
		scores []float64
		want   int
		nans   int
	}{
		{"nan-first", []float64{nan, 0.2, 0.9}, 2, 1},
		{"nan-middle", []float64{0.1, nan, 0.05}, 0, 1},
		{"all-nan", []float64{nan, nan}, 0, 2},
		{"no-nan-ties-low", []float64{0.5, 0.5, 0.1}, 0, 0},
		{"negatives", []float64{nan, -3, -1}, 2, 1},
	}
	for _, tc := range cases {
		best, nans := nanSafeArgmax(tc.scores)
		if best != tc.want || nans != tc.nans {
			t.Fatalf("%s: nanSafeArgmax = (%d, %d), want (%d, %d)", tc.name, best, nans, tc.want, tc.nans)
		}
	}
}

// TestPredictCountsNaNScores drives a real NaN through Predict and
// PredictBatch (via a poisoned hint on one candidate) and checks the
// model.nan_scores counter and that both argmaxes skip the NaN.
func TestPredictCountsNaNScores(t *testing.T) {
	reg := obs.NewRegistry()
	m := New(tinyConfig())
	m.Rec = &obs.Recorder{Metrics: reg}
	m.Trust.Val = 1
	in := toyED(1, 5)[0]
	in.Fields[0].Value = "0.07%"
	ex := tasks.BuildExample(tasks.SpecFor(tasks.ED), in, nil)
	ex.Hints = []float64{math.NaN(), 0} // poisons candidate 0 only
	best := m.Predict(ex)
	if best != 1 {
		t.Fatalf("Predict returned the NaN-scored candidate: %d", best)
	}
	if got := reg.Counter("model.nan_scores").Value(); got != 1 {
		t.Fatalf("model.nan_scores = %d after Predict, want 1", got)
	}
	batch := m.PredictBatch([]*tasks.Example{ex})
	if batch[0] != 1 {
		t.Fatalf("PredictBatch returned the NaN-scored candidate: %d", batch[0])
	}
	if got := reg.Counter("model.nan_scores").Value(); got != 2 {
		t.Fatalf("model.nan_scores = %d after PredictBatch, want 2", got)
	}
}
