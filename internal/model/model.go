// Package model implements the DP-LM substrate that stands in for the
// paper's DP-LLMs (Jellyfish, Mistral, TableLLaMA, the GPT tiers): a sparse
// feature-hashing dual-encoder scorer trained with softmax cross-entropy
// over candidate answers (the ranking realization of Eq. 3's conditional
// language modeling — see DESIGN.md).
//
// The model scores a prompt x against each candidate answer c_k as
//
//	s_k = f(x)·g(c_k)/√h + trust·hint_k
//
// where f and g are two-layer tanh encoders over hashed prompt/candidate
// features and hint_k is the knowledge-rule support computed by
// tasks.Knowledge.Hints. The trust scalar is trainable and starts at zero:
// the model only "follows instructions" to the degree upstream instruction
// tuning taught it to, which is the substrate's analog of an
// instruction-tuned LLM acting on stated knowledge.
//
// Every linear layer accepts LoRA attachments, so SKC's knowledge patches
// (internal/lora, internal/skc) apply to the full model.
package model

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/data"
	"repro/internal/lora"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/tasks"
	"repro/internal/tensor"
	"repro/internal/text"
)

// Config fixes a model's architecture. Name is a human-readable identity
// used in experiment output ("Jellyfish-7B", "GPT-4o", ...).
type Config struct {
	Name   string
	Dim    int // hashed feature dimensionality
	Hidden int // encoder width; the analog of parameter count
	Seed   int64
}

// Preset widths: the paper's model sizes map to encoder widths, preserving
// the capacity ordering 7B < 8B < 13B < GPT-3.5 < GPT-4o ≤ GPT-4.
const (
	Hidden7B    = 48
	Hidden8B    = 56
	Hidden13B   = 80
	HiddenGPT35 = 96
	HiddenGPT4o = 128
	HiddenGPT4  = 128
)

// DefaultDim is the default feature dimensionality.
const DefaultDim = text.DefaultDim

// Model is one DP-LM instance. A Model is not safe for concurrent use; the
// experiment harness runs models sequentially.
type Model struct {
	Cfg    Config
	Hasher *text.Hasher

	inEmb   *nn.Embedding
	inAct1  *nn.Tanh
	inDense *nn.Dense
	inAct2  *nn.Tanh

	candEmb   *nn.Embedding
	candAct1  *nn.Tanh
	candDense *nn.Dense
	candAct2  *nn.Tanh

	// Trust is the learned weight on knowledge-rule hints.
	Trust *nn.Scalar

	// Rec, when non-nil, receives forward/predict counters and train-step
	// timings. All instrumentation is nil-safe, so the zero value stays
	// observability-free at zero cost (see internal/obs).
	Rec *obs.Recorder

	candCache map[string]*tensor.Sparse
	scratch   scratch
	batch     *batchScratch
}

type scratch struct {
	scores  tensor.Vec
	dscores tensor.Vec
	gs      []tensor.Vec
	df      tensor.Vec
}

// New constructs a randomly initialized model.
func New(cfg Config) *Model {
	if cfg.Dim == 0 {
		cfg.Dim = DefaultDim
	}
	if cfg.Hidden == 0 {
		cfg.Hidden = Hidden7B
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{
		Cfg:       cfg,
		Hasher:    text.NewHasher(cfg.Dim),
		inAct1:    &nn.Tanh{},
		inAct2:    &nn.Tanh{},
		candAct1:  &nn.Tanh{},
		candAct2:  &nn.Tanh{},
		Trust:     &nn.Scalar{Name: "trust"},
		candCache: make(map[string]*tensor.Sparse),
	}
	m.inEmb = nn.NewEmbedding("in.emb", cfg.Dim, cfg.Hidden, rng)
	m.inDense = nn.NewDense("in.dense", cfg.Hidden, cfg.Hidden, rng)
	m.candEmb = nn.NewEmbedding("cand.emb", cfg.Dim, cfg.Hidden, rng)
	m.candDense = nn.NewDense("cand.dense", cfg.Hidden, cfg.Hidden, rng)
	return m
}

// Params returns the base parameters including every attached patch factor
// and the trust scalar. Frozen flags are respected by the optimizer.
func (m *Model) Params() nn.ParamSet {
	var ps nn.ParamSet
	ps.Add(m.inEmb.Params()...)
	ps.Add(m.inDense.Params()...)
	ps.Add(m.candEmb.Params()...)
	ps.Add(m.candDense.Params()...)
	ps.AddScalar(m.Trust)
	return ps
}

// BaseParams returns only the backbone matrices (no patches), used for
// freezing and for snapshotting.
func (m *Model) BaseParams() []*nn.Param {
	return []*nn.Param{m.inEmb.E, m.inDense.W, m.inDense.B, m.candEmb.E, m.candDense.W, m.candDense.B}
}

// SetBaseFrozen freezes or unfreezes the backbone (not patches, not trust).
func (m *Model) SetBaseFrozen(frozen bool) {
	for _, p := range m.BaseParams() {
		p.Frozen = frozen
	}
}

// LoraLayers exposes the adaptable layers for lora.Attach, keyed by stable
// names so patches extracted on one instance load into another.
func (m *Model) LoraLayers() map[string]lora.Layer {
	return map[string]lora.Layer{
		"in.emb":     m.inEmb,
		"in.dense":   m.inDense,
		"cand.emb":   m.candEmb,
		"cand.dense": m.candDense,
	}
}

// EncodeInput hashes prompt segments into the input feature space.
func (m *Model) EncodeInput(segs []text.Segment) *tensor.Sparse {
	return m.Hasher.Encode(segs...)
}

func (m *Model) encodeCand(c string) *tensor.Sparse {
	if v, ok := m.candCache[c]; ok {
		return v
	}
	v := m.Hasher.Encode(text.Segment{Text: c, Weight: 1})
	if len(m.candCache) > 1<<16 {
		m.candCache = make(map[string]*tensor.Sparse)
	}
	m.candCache[c] = v
	return v
}

func (m *Model) forwardInput(x *tensor.Sparse) tensor.Vec {
	h := m.inEmb.Forward(x)
	h = m.inAct1.Forward(h)
	h = m.inDense.Forward(h)
	return m.inAct2.Forward(h)
}

func (m *Model) backwardInput(df tensor.Vec) {
	d := m.inAct2.Backward(df)
	d = m.inDense.Backward(d)
	d = m.inAct1.Backward(d)
	m.inEmb.Backward(d)
}

func (m *Model) forwardCand(c *tensor.Sparse) tensor.Vec {
	h := m.candEmb.Forward(c)
	h = m.candAct1.Forward(h)
	h = m.candDense.Forward(h)
	return m.candAct2.Forward(h)
}

func (m *Model) backwardCand(dg tensor.Vec) {
	d := m.candAct2.Backward(dg)
	d = m.candDense.Backward(d)
	d = m.candAct1.Backward(d)
	m.candEmb.Backward(d)
}

// Scores runs the forward pass on an example and returns raw candidate
// scores. The returned slice is scratch reused across calls.
func (m *Model) Scores(ex *tasks.Example) tensor.Vec {
	m.Rec.Count("model.forward", 1)
	n := len(ex.Candidates)
	if n == 0 {
		panic(fmt.Sprintf("model: example %q has no candidates", ex.Prompt))
	}
	if cap(m.scratch.scores) < n {
		m.scratch.scores = tensor.NewVec(n)
		m.scratch.dscores = tensor.NewVec(n)
	}
	scores := m.scratch.scores[:n]
	x := m.EncodeInput(ex.Segments)
	f := m.forwardInput(x)
	inv := 1 / math.Sqrt(float64(m.Cfg.Hidden))
	for k, c := range ex.Candidates {
		g := m.forwardCand(m.encodeCand(c))
		s := f.Dot(g) * inv
		if ex.Hints != nil {
			s += m.Trust.Val * ex.Hints[k]
		}
		scores[k] = s
	}
	return scores
}

// Predict returns the index of the highest-scoring candidate; ties break
// deterministically toward the lower index. NaN scores are skipped (a NaN in
// slot 0 used to poison every comparison and silently elect candidate 0) and
// surface in the model.nan_scores counter; an all-NaN row falls back to 0.
func (m *Model) Predict(ex *tasks.Example) int {
	m.Rec.Count("model.predict", 1)
	scores := m.Scores(ex)
	best, nans := nanSafeArgmax(scores)
	if nans > 0 {
		m.Rec.Count("model.nan_scores", int64(nans))
	}
	return best
}

// PredictText returns the predicted candidate string.
func (m *Model) PredictText(ex *tasks.Example) string {
	return ex.Candidates[m.Predict(ex)]
}

// Loss computes the softmax cross-entropy of an example without touching
// gradients.
func (m *Model) Loss(ex *tasks.Example) float64 {
	scores := m.Scores(ex)
	d := m.scratch.dscores[:len(scores)]
	return nn.SoftmaxCE(scores, ex.Gold, d)
}

// Step runs forward + backward on one example, accumulating gradients into
// whatever parameters are unfrozen (backbone, patches, λ, trust), and
// returns the loss. The caller owns ZeroGrad and the optimizer step.
func (m *Model) Step(ex *tasks.Example) float64 {
	m.Rec.Count("model.train_step", 1)
	n := len(ex.Candidates)
	x := m.EncodeInput(ex.Segments)
	f := m.forwardInput(x).Clone()
	inv := 1 / math.Sqrt(float64(m.Cfg.Hidden))

	if cap(m.scratch.scores) < n {
		m.scratch.scores = tensor.NewVec(n)
		m.scratch.dscores = tensor.NewVec(n)
	}
	scores := m.scratch.scores[:n]
	for len(m.scratch.gs) < n {
		m.scratch.gs = append(m.scratch.gs, nil)
	}
	gs := m.scratch.gs[:n]
	for k, c := range ex.Candidates {
		g := m.forwardCand(m.encodeCand(c))
		if gs[k] == nil || len(gs[k]) != len(g) {
			gs[k] = g.Clone()
		} else {
			copy(gs[k], g)
		}
		s := f.Dot(g) * inv
		if ex.Hints != nil {
			s += m.Trust.Val * ex.Hints[k]
		}
		scores[k] = s
	}
	d := m.scratch.dscores[:n]
	loss := nn.SoftmaxCE(scores, ex.Gold, d)

	// Input-side gradient: df = Σ_k d_k · g_k · inv.
	if cap(m.scratch.df) < m.Cfg.Hidden {
		m.scratch.df = tensor.NewVec(m.Cfg.Hidden)
	}
	df := m.scratch.df[:m.Cfg.Hidden]
	df.Zero()
	for k := range gs {
		df.Axpy(d[k]*inv, gs[k])
	}
	// Candidate-side gradients: re-run each candidate forward so the layer
	// caches hold candidate k's activations, then backprop d_k·f·inv.
	dg := tensor.NewVec(m.Cfg.Hidden)
	for k, c := range ex.Candidates {
		if d[k] == 0 {
			continue
		}
		m.forwardCand(m.encodeCand(c))
		copy(dg, f)
		dg.Scale(d[k] * inv)
		m.backwardCand(dg)
		if ex.Hints != nil && !m.Trust.Frozen {
			m.Trust.Grad += d[k] * ex.Hints[k]
		}
	}
	// Trust gradient for candidates whose d_k was zero is zero; nothing to add.
	// Input side last (layer caches still hold the input activations? No —
	// forwardCand overwrote only candidate layers; input layers still cache x).
	m.backwardInput(df)
	return loss
}

// PredictWith serializes an instance under the given knowledge and returns
// the model's answer. It satisfies akb.Predictor.
func (m *Model) PredictWith(spec tasks.Spec, in *data.Instance, k *tasks.Knowledge) string {
	ex := tasks.BuildExample(spec, in, k)
	return ex.Candidates[m.Predict(ex)]
}

// Evaluate scores the model on instances with the given knowledge and
// returns the task metric on the 100-point scale. It runs the batched
// forward path (bit-identical to the serial per-instance loop).
func (m *Model) Evaluate(spec tasks.Spec, ins []*data.Instance, k *tasks.Knowledge) float64 {
	metric := tasks.NewMetric(spec.Metric)
	for i, ans := range m.PredictBatchWith(spec, ins, k) {
		metric.Add(ans, ins[i].GoldText())
	}
	return metric.Score()
}
