package model

import (
	"math/rand"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/tasks"
)

// TrainConfig fixes a fine-tuning run. The defaults mirror the paper's
// Section VII-A recipe scaled to the substrate: 3 epochs, small learning
// rate, gradient clipping.
type TrainConfig struct {
	Epochs int
	LR     float64
	Clip   float64
	Seed   int64
	// WeightDecay regularizes few-shot runs against overfitting 20 samples.
	WeightDecay float64
	// BatchSize is the gradient-accumulation batch (default 8, echoing the
	// paper's batch 4 × accumulation 4). Besides matching the recipe, the
	// batched optimizer step is what keeps dense-parameter training fast.
	BatchSize int
	// MetricTag names this run's metrics in the model's recorder (e.g.
	// "skc.fewshot" → gauge skc.fewshot.epoch_loss, histogram
	// skc.fewshot.step_us). Empty means "train".
	MetricTag string
}

// DefaultTrain returns the standard fine-tuning configuration.
func DefaultTrain(seed int64) TrainConfig {
	return TrainConfig{Epochs: 3, LR: 0.02, Clip: 5, Seed: seed, WeightDecay: 1e-4}
}

// TrainExample pairs an instance with the knowledge active when it is
// serialized, letting one training stream mix datasets with different
// (or no) knowledge — exactly how upstream multi-task SFT mixes tasks.
type TrainExample struct {
	Spec      tasks.Spec
	Instance  *data.Instance
	Knowledge *tasks.Knowledge
}

// Train runs sample-level SGD (Adam) over the examples for the configured
// epochs, shuffling each epoch, updating exactly the unfrozen parameters in
// ps. It returns the mean loss of the final epoch.
func Train(m *Model, examples []TrainExample, tc TrainConfig, ps *nn.ParamSet) float64 {
	if len(examples) == 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(tc.Seed))
	opt := nn.NewAdam(tc.LR)
	opt.WeightDecay = tc.WeightDecay
	batch := tc.BatchSize
	if batch <= 0 {
		batch = 8
	}
	order := make([]int, len(examples))
	for i := range order {
		order[i] = i
	}
	tag := tc.MetricTag
	if tag == "" {
		tag = "train"
	}
	stepMetric, lossMetric := tag+".step_us", tag+".epoch_loss"
	var lastEpochLoss float64
	for epoch := 0; epoch < tc.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var total float64
		ps.ZeroGrad()
		pending := 0
		for _, idx := range order {
			te := examples[idx]
			ex := tasks.BuildExample(te.Spec, te.Instance, te.Knowledge)
			stepStart := m.Rec.Now()
			total += m.Step(ex)
			m.Rec.ObserveSince(stepMetric, stepStart)
			pending++
			if pending == batch {
				if tc.Clip > 0 {
					ps.ClipGradNorm(tc.Clip)
				}
				opt.Step(ps)
				ps.ZeroGrad()
				pending = 0
			}
		}
		if pending > 0 {
			if tc.Clip > 0 {
				ps.ClipGradNorm(tc.Clip)
			}
			opt.Step(ps)
			ps.ZeroGrad()
		}
		lastEpochLoss = total / float64(len(examples))
		m.Rec.SetGauge(lossMetric, lastEpochLoss)
	}
	return lastEpochLoss
}

// ExamplesFrom builds TrainExamples for a dataset's instances under one
// knowledge value.
func ExamplesFrom(kind tasks.Kind, ins []*data.Instance, k *tasks.Knowledge) []TrainExample {
	spec := tasks.SpecFor(kind)
	out := make([]TrainExample, 0, len(ins))
	for _, in := range ins {
		out = append(out, TrainExample{Spec: spec, Instance: in, Knowledge: k})
	}
	return out
}
