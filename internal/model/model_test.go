package model

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/lora"
	"repro/internal/nn"
	"repro/internal/tasks"
)

func tinyConfig() Config {
	return Config{Name: "test", Dim: 1 << 9, Hidden: 12, Seed: 1}
}

// toyED builds a separable ED-style dataset: values containing "%" are
// errors, plain decimals are not.
func toyED(n int, seed int64) []*data.Instance {
	rng := rand.New(rand.NewSource(seed))
	var out []*data.Instance
	for i := 0; i < n; i++ {
		v := "0.05"
		gold := 1 // no
		if rng.Intn(2) == 0 {
			v = "0.05%"
			gold = 0 // yes
		}
		out = append(out, &data.Instance{
			Fields:     []data.Field{{Name: "abv", Value: v}, {Name: "name", Value: "beer " + string(rune('a'+rng.Intn(26)))}},
			Target:     "abv",
			Candidates: []string{tasks.AnswerYes, tasks.AnswerNo},
			Gold:       gold,
		})
	}
	return out
}

func TestTrainLearnsSeparableTask(t *testing.T) {
	m := New(tinyConfig())
	train := toyED(60, 3)
	test := toyED(40, 4)
	spec := tasks.SpecFor(tasks.ED)
	before := m.Evaluate(spec, test, nil)
	ps := m.Params()
	Train(m, ExamplesFrom(tasks.ED, train, nil), TrainConfig{Epochs: 6, LR: 0.05, Clip: 5, Seed: 7}, &ps)
	after := m.Evaluate(spec, test, nil)
	if after < 95 {
		t.Fatalf("model failed to learn separable task: before=%v after=%v", before, after)
	}
}

// Gradient check through the full model including the trust scalar and
// knowledge hints.
func TestModelStepGradientCheck(t *testing.T) {
	m := New(tinyConfig())
	m.Trust.Val = 0.4
	k := &tasks.Knowledge{Rules: []tasks.Rule{{
		Cond:   tasks.Condition{Pred: tasks.PredFormat, Arg: tasks.FormatPercent},
		Answer: tasks.Answer{Literal: tasks.AnswerYes},
		Weight: 1,
	}}}
	in := toyED(1, 9)[0]
	in.Fields[0].Value = "0.07%"
	in.Gold = 0
	ex := tasks.BuildExample(tasks.SpecFor(tasks.ED), in, k)
	if ex.Hints[0] == 0 {
		t.Fatal("test setup: rule should fire")
	}
	ps := m.Params()
	ps.ZeroGrad()
	m.Step(ex)

	const eps = 1e-5
	// Spot-check a sample of weights in each matrix plus the trust scalar.
	for _, p := range ps.Mats {
		idxs := []int{0, len(p.W.Data) / 2, len(p.W.Data) - 1}
		for _, i := range idxs {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			lp := m.Loss(ex)
			p.W.Data[i] = orig - eps
			lm := m.Loss(ex)
			p.W.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			ana := p.G.Data[i]
			if math.Abs(num-ana) > 1e-5*(1+math.Abs(num)) {
				t.Fatalf("%s[%d]: analytic %g vs numeric %g", p.Name, i, ana, num)
			}
		}
	}
	orig := m.Trust.Val
	m.Trust.Val = orig + eps
	lp := m.Loss(ex)
	m.Trust.Val = orig - eps
	lm := m.Loss(ex)
	m.Trust.Val = orig
	num := (lp - lm) / (2 * eps)
	if math.Abs(num-m.Trust.Grad) > 1e-6*(1+math.Abs(num)) {
		t.Fatalf("trust: analytic %g vs numeric %g", m.Trust.Grad, num)
	}
}

func TestTrustLearnsToFollowRules(t *testing.T) {
	// Instances where content features are useless (identical) and only the
	// rule hint separates classes: trust must grow positive.
	m := New(tinyConfig())
	k := &tasks.Knowledge{Rules: []tasks.Rule{{
		Cond:   tasks.Condition{Pred: tasks.PredFormat, Arg: tasks.FormatPercent},
		Answer: tasks.Answer{Literal: tasks.AnswerYes},
		Weight: 1,
	}}}
	var exs []TrainExample
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 40; i++ {
		v, gold := "0.05", 1
		if rng.Intn(2) == 0 {
			v, gold = "0.05%", 0
		}
		in := &data.Instance{
			Fields:     []data.Field{{Name: "x", Value: v}},
			Target:     "x",
			Candidates: []string{tasks.AnswerYes, tasks.AnswerNo},
			Gold:       gold,
		}
		exs = append(exs, TrainExample{Spec: tasks.SpecFor(tasks.ED), Instance: in, Knowledge: k})
	}
	ps := m.Params()
	Train(m, exs, TrainConfig{Epochs: 5, LR: 0.05, Clip: 5, Seed: 3}, &ps)
	if m.Trust.Val <= 0 {
		t.Fatalf("trust should become positive when rules are reliable, got %v", m.Trust.Val)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := New(tinyConfig())
	c := m.Clone()
	// Same weights initially.
	ex := tasks.BuildExample(tasks.SpecFor(tasks.ED), toyED(1, 5)[0], nil)
	s1 := m.Scores(ex).Clone()
	s2 := c.Scores(ex).Clone()
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("clone must score identically before training")
		}
	}
	// Training the clone must not affect the original.
	ps := c.Params()
	Train(c, ExamplesFrom(tasks.ED, toyED(30, 6), nil), DefaultTrain(1), &ps)
	s3 := m.Scores(ex).Clone()
	for i := range s1 {
		if s1[i] != s3[i] {
			t.Fatal("training a clone mutated the original")
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	m := New(tinyConfig())
	ps := m.Params()
	Train(m, ExamplesFrom(tasks.ED, toyED(20, 8), nil), DefaultTrain(2), &ps)
	blob, err := m.Export().Encode()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := DecodeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	m2 := New(tinyConfig())
	if err := m2.LoadSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	test := toyED(20, 9)
	spec := tasks.SpecFor(tasks.ED)
	for _, in := range test {
		ex := tasks.BuildExample(spec, in, nil)
		if m.Predict(ex) != m2.Predict(ex) {
			t.Fatal("snapshot round trip changed predictions")
		}
	}
}

func TestLoadSnapshotShapeMismatch(t *testing.T) {
	m := New(tinyConfig())
	other := New(Config{Dim: 1 << 8, Hidden: 10, Seed: 1})
	if err := other.LoadSnapshot(m.Export()); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

// LoRA patch fine-tuning with frozen base must change predictions without
// changing base weights — the mechanics SKC stage 1 relies on.
func TestPatchOnlyFineTune(t *testing.T) {
	m := New(tinyConfig())
	base := m.Export()
	m.SetBaseFrozen(true)
	m.Trust.Frozen = true
	rng := rand.New(rand.NewSource(4))
	coef := &nn.Scalar{Name: "λ", Val: 1, Frozen: true}
	patch := lora.Attach("patch", m.LoraLayers(), lora.Config{Rank: 2, Alpha: 1}, coef, rng)

	var ps nn.ParamSet
	ps.Add(patch.Params()...)
	train := toyED(60, 11)
	Train(m, ExamplesFrom(tasks.ED, train, nil), TrainConfig{Epochs: 6, LR: 0.05, Clip: 5, Seed: 12}, &ps)

	spec := tasks.SpecFor(tasks.ED)
	score := m.Evaluate(spec, toyED(40, 13), nil)
	if score < 90 {
		t.Fatalf("patch-only fine-tune failed to learn: %v", score)
	}
	// Base weights untouched.
	after := m.Export()
	for name, w := range base.Mats {
		for i := range w {
			if after.Mats[name][i] != w[i] {
				t.Fatalf("frozen base weight %s[%d] changed", name, i)
			}
		}
	}
	if after.Trust != base.Trust {
		t.Fatal("frozen trust changed")
	}
}

func TestPredictDeterministic(t *testing.T) {
	m := New(tinyConfig())
	in := toyED(1, 20)[0]
	ex := tasks.BuildExample(tasks.SpecFor(tasks.ED), in, nil)
	p1 := m.Predict(ex)
	for i := 0; i < 5; i++ {
		if m.Predict(ex) != p1 {
			t.Fatal("Predict must be deterministic")
		}
	}
}

func TestScoresPanicsWithoutCandidates(t *testing.T) {
	m := New(tinyConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty candidates")
		}
	}()
	m.Scores(&tasks.Example{})
}
