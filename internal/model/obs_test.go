package model

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/tasks"
)

// TestPredictNilRecorderAddsNoAllocs is the zero-cost-when-disabled gate
// for the Predict hot path: the nil-recorder instrumentation calls Predict
// makes must contribute zero allocations. We measure Predict as-is (its
// hooks run against the nil recorder) and Predict plus an extra copy of
// every hook it contains — identical counts mean the hooks are free.
func TestPredictNilRecorderAddsNoAllocs(t *testing.T) {
	m := New(tinyConfig())
	ins := toyED(1, 9)
	ex := tasks.BuildExample(tasks.SpecFor(tasks.ED), ins[0], nil)
	m.Predict(ex) // warm caches (candidate encodings, scratch)

	if m.Rec != nil {
		t.Fatal("fresh model should have a nil recorder")
	}
	base := testing.AllocsPerRun(500, func() {
		m.Predict(ex)
	})
	withHooks := testing.AllocsPerRun(500, func() {
		m.Rec.Count("model.predict", 1)
		m.Rec.Count("model.forward", 1)
		m.Predict(ex)
	})
	if withHooks != base {
		t.Fatalf("nil-recorder hooks allocate: %v allocs/op with extra hooks vs %v base", withHooks, base)
	}
}

// TestPredictCountsWithRecorder checks the counters actually move when a
// recorder is attached, and that clones inherit it.
func TestPredictCountsWithRecorder(t *testing.T) {
	m := New(tinyConfig())
	reg := obs.NewRegistry()
	m.Rec = obs.NewRecorder(reg, nil)
	ins := toyED(4, 11)
	spec := tasks.SpecFor(tasks.ED)
	for _, in := range ins {
		m.Predict(tasks.BuildExample(spec, in, nil))
	}
	if got := reg.Counter("model.predict").Value(); got != 4 {
		t.Fatalf("model.predict = %d, want 4", got)
	}
	if got := reg.Counter("model.forward").Value(); got != 4 {
		t.Fatalf("model.forward = %d, want 4", got)
	}

	c := m.Clone()
	if c.Rec != m.Rec {
		t.Fatal("clone should inherit the recorder")
	}
	c.Predict(tasks.BuildExample(spec, ins[0], nil))
	if got := reg.Counter("model.predict").Value(); got != 5 {
		t.Fatalf("clone predict not counted: %d", got)
	}
}

// TestTrainEmitsTelemetry checks step counters, step-time histograms, and
// the per-epoch loss gauge under a custom metric tag.
func TestTrainEmitsTelemetry(t *testing.T) {
	m := New(tinyConfig())
	reg := obs.NewRegistry()
	m.Rec = obs.NewRecorder(reg, nil)
	train := toyED(30, 13)
	ps := m.Params()
	loss := Train(m, ExamplesFrom(tasks.ED, train, nil), TrainConfig{Epochs: 2, LR: 0.05, Clip: 5, Seed: 7, MetricTag: "skc.fewshot"}, &ps)

	if got := reg.Counter("model.train_step").Value(); got != int64(2*len(train)) {
		t.Fatalf("model.train_step = %d, want %d", got, 2*len(train))
	}
	h := reg.Histogram("skc.fewshot.step_us", nil)
	if h.Count() != int64(2*len(train)) {
		t.Fatalf("step_us observations = %d, want %d", h.Count(), 2*len(train))
	}
	if g := reg.Gauge("skc.fewshot.epoch_loss").Value(); g != loss {
		t.Fatalf("epoch_loss gauge = %v, want final loss %v", g, loss)
	}
}
