package model

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Snapshot is the serializable state of a model's backbone: configuration,
// base matrices, and the trust scalar. Patches are serialized separately by
// internal/lora; a snapshot deliberately excludes them so "upstream model"
// artifacts stay patch-free.
type Snapshot struct {
	Cfg   Config
	Mats  map[string][]float64
	Trust float64
}

// Export captures the backbone state.
func (m *Model) Export() *Snapshot {
	s := &Snapshot{Cfg: m.Cfg, Trust: m.Trust.Val, Mats: map[string][]float64{}}
	for _, p := range m.BaseParams() {
		s.Mats[p.Name] = append([]float64(nil), p.W.Data...)
	}
	return s
}

// LoadSnapshot overwrites the backbone from a snapshot; shapes must match.
func (m *Model) LoadSnapshot(s *Snapshot) error {
	if s.Cfg.Dim != m.Cfg.Dim || s.Cfg.Hidden != m.Cfg.Hidden {
		return fmt.Errorf("model: snapshot shape %d/%d does not match model %d/%d",
			s.Cfg.Dim, s.Cfg.Hidden, m.Cfg.Dim, m.Cfg.Hidden)
	}
	for _, p := range m.BaseParams() {
		src, ok := s.Mats[p.Name]
		if !ok {
			return fmt.Errorf("model: snapshot missing %q", p.Name)
		}
		if len(src) != len(p.W.Data) {
			return fmt.Errorf("model: snapshot %q has %d values, want %d", p.Name, len(src), len(p.W.Data))
		}
		copy(p.W.Data, src)
	}
	m.Trust.Val = s.Trust
	return nil
}

// Clone returns a fresh model with identical backbone weights and no
// patches. The clone has its own scratch and candidate cache, so the
// original and the clone can be trained independently (but each remains
// single-goroutine). The clone inherits the recorder: observability follows
// the model through the pipeline's clone-then-fine-tune pattern.
func (m *Model) Clone() *Model {
	c := New(m.Cfg)
	if err := c.LoadSnapshot(m.Export()); err != nil {
		// Same config by construction; a failure here is a programming error.
		panic(err)
	}
	c.Rec = m.Rec
	return c
}

// EncodeSnapshot serializes a snapshot with gob.
func (s *Snapshot) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("model: encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeSnapshot deserializes a snapshot.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s); err != nil {
		return nil, fmt.Errorf("model: decode snapshot: %w", err)
	}
	return &s, nil
}
