// Package lora manages whole-model LoRA "knowledge patches" (Section V-A of
// the paper): named collections of low-rank factor pairs, one per adaptable
// layer, that can be attached to a model, trained in isolation, serialized,
// and fused with learned interpolation weights λ (Eq. 4).
//
// The per-layer mathematics lives in internal/nn (Attachment); this package
// provides the model-level bookkeeping: a Patch spans every adaptable layer
// of a model and is what SKC extracts per upstream dataset and re-uses
// downstream.
package lora

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Layer is any layer that accepts LoRA attachments. Both nn.Embedding and
// nn.Dense satisfy it.
type Layer interface {
	Attach(name string, rank int, alpha float64, coef *nn.Scalar, rng *rand.Rand) *nn.Attachment
}

// Config fixes the hyper-parameters of a patch, mirroring the paper's
// Section VII-A defaults (rank 32 at 7B scale; our substrate default is
// smaller in proportion to its width).
type Config struct {
	Rank  int
	Alpha float64
}

// DefaultConfig is the patch configuration used across the reproduction.
func DefaultConfig() Config { return Config{Rank: 4, Alpha: 1.0} }

// Patch is one knowledge patch: per-layer low-rank factors sharing a single
// fusion coefficient. A freshly attached patch is an exact no-op (A = 0).
type Patch struct {
	Name        string
	Cfg         Config
	Coef        *nn.Scalar
	Attachments map[string]*nn.Attachment
}

// Attach creates a patch across the given layers with coefficient coef.
// Layer map keys become attachment names, so patches extracted from one
// model instance can later be loaded into another with the same topology.
func Attach(name string, layers map[string]Layer, cfg Config, coef *nn.Scalar, rng *rand.Rand) *Patch {
	p := &Patch{Name: name, Cfg: cfg, Coef: coef, Attachments: make(map[string]*nn.Attachment, len(layers))}
	for _, key := range sortedKeys(layers) {
		p.Attachments[key] = layers[key].Attach(name+"/"+key, cfg.Rank, cfg.Alpha, coef, rng)
	}
	return p
}

// Params returns the patch's factor matrices in deterministic order.
func (p *Patch) Params() []*nn.Param {
	var out []*nn.Param
	for _, key := range sortedKeys(p.Attachments) {
		out = append(out, p.Attachments[key].Params()...)
	}
	return out
}

// SetFrozen freezes or unfreezes every factor matrix of the patch.
func (p *Patch) SetFrozen(frozen bool) {
	for _, at := range p.Attachments {
		at.B.Frozen = frozen
		at.A.Frozen = frozen
	}
}

// Norm returns the Frobenius norm of the patch's implied ΔW across layers,
// a cheap diagnostic for how much knowledge a patch encodes.
func (p *Patch) Norm() float64 {
	var t float64
	for _, at := range p.Attachments {
		// ‖BA‖_F ≤ ‖B‖_F·‖A‖_F; the bound is monotone enough for diagnostics
		// and avoids materializing ΔW.
		t += at.B.W.FrobeniusNorm() * at.A.W.FrobeniusNorm()
	}
	return t
}

// Snapshot is the serializable form of a patch: factor matrices keyed by
// layer name plus the configuration.
type Snapshot struct {
	Name string
	Cfg  Config
	B    map[string]matSnap
	A    map[string]matSnap
}

type matSnap struct {
	Rows, Cols int
	Data       []float64
}

func snapOf(m *tensor.Mat) matSnap {
	return matSnap{Rows: m.Rows, Cols: m.Cols, Data: append([]float64(nil), m.Data...)}
}

// Export captures the patch's current factors.
func (p *Patch) Export() *Snapshot {
	s := &Snapshot{Name: p.Name, Cfg: p.Cfg, B: map[string]matSnap{}, A: map[string]matSnap{}}
	for key, at := range p.Attachments {
		s.B[key] = snapOf(at.B.W)
		s.A[key] = snapOf(at.A.W)
	}
	return s
}

// Load overwrites the patch's factors from a snapshot. The snapshot must
// cover exactly the patch's layers with matching shapes.
func (p *Patch) Load(s *Snapshot) error {
	if len(s.B) != len(p.Attachments) {
		return fmt.Errorf("lora: snapshot covers %d layers, patch has %d", len(s.B), len(p.Attachments))
	}
	for key, at := range p.Attachments {
		bs, ok := s.B[key]
		as, ok2 := s.A[key]
		if !ok || !ok2 {
			return fmt.Errorf("lora: snapshot missing layer %q", key)
		}
		if bs.Rows != at.B.W.Rows || bs.Cols != at.B.W.Cols || as.Rows != at.A.W.Rows || as.Cols != at.A.W.Cols {
			return fmt.Errorf("lora: shape mismatch for layer %q", key)
		}
		copy(at.B.W.Data, bs.Data)
		copy(at.A.W.Data, as.Data)
	}
	return nil
}

// Encode serializes a snapshot with gob.
func (s *Snapshot) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("lora: encode %q: %w", s.Name, err)
	}
	return buf.Bytes(), nil
}

// DecodeSnapshot deserializes a snapshot.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s); err != nil {
		return nil, fmt.Errorf("lora: decode: %w", err)
	}
	return &s, nil
}

// Fusion is the dynamic knowledge patch fusion module of Eq. 4: N upstream
// patches weighted by trainable λ plus one fresh shared patch ΔW_{N+1} with
// coefficient fixed at 1.
type Fusion struct {
	Upstream []*Patch
	Shared   *Patch
	Lambdas  []*nn.Scalar
}

// WeightStrategy selects how upstream patch weights behave during few-shot
// fine-tuning (Table VI of the paper).
type WeightStrategy int

const (
	// StrategyAdaptive trains the λᵢ jointly with the patches (SKC proper).
	// It is the zero value: an unconfigured fusion is full SKC.
	StrategyAdaptive WeightStrategy = iota
	// StrategyUniform fixes every λᵢ = 1/N and does not train them.
	StrategyUniform
	// StrategySingle attaches no upstream patches at all: only the fresh
	// shared patch is trained ("single" column of Table VI).
	StrategySingle
)

// String implements fmt.Stringer.
func (s WeightStrategy) String() string {
	switch s {
	case StrategySingle:
		return "single"
	case StrategyUniform:
		return "uniform"
	case StrategyAdaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("WeightStrategy(%d)", int(s))
	}
}

// Weights returns the current λ values in upstream-patch order.
func (f *Fusion) Weights() []float64 {
	out := make([]float64, len(f.Lambdas))
	for i, s := range f.Lambdas {
		out[i] = s.Val
	}
	return out
}

// TrainableParams returns everything few-shot fine-tuning updates per
// Algorithm 1 line 13: all patch factors plus (for the adaptive strategy)
// the fusion weights. The backbone is never included.
func (f *Fusion) TrainableParams() nn.ParamSet {
	var ps nn.ParamSet
	for _, p := range f.Upstream {
		ps.Add(p.Params()...)
	}
	if f.Shared != nil {
		ps.Add(f.Shared.Params()...)
	}
	for _, s := range f.Lambdas {
		if !s.Frozen {
			ps.AddScalar(s)
		}
	}
	return ps
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
