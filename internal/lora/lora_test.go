package lora

import (
	"math/rand"
	"testing"

	"repro/internal/nn"
)

// hostLayers builds a tiny pair of adaptable layers.
func hostLayers(rng *rand.Rand) (map[string]Layer, *nn.Dense, *nn.Embedding) {
	d := nn.NewDense("d", 4, 6, rng)
	e := nn.NewEmbedding("e", 32, 6, rng)
	return map[string]Layer{"dense": d, "emb": e}, d, e
}

func TestAttachCoversAllLayers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	layers, d, e := hostLayers(rng)
	coef := &nn.Scalar{Val: 1}
	p := Attach("p1", layers, Config{Rank: 2, Alpha: 1}, coef, rng)
	if len(p.Attachments) != 2 {
		t.Fatalf("patch should span 2 layers, got %d", len(p.Attachments))
	}
	if len(d.Patches) != 1 || len(e.Patches) != 1 {
		t.Fatal("layers did not receive attachments")
	}
	if got := len(p.Params()); got != 4 {
		t.Fatalf("expected 4 factor matrices, got %d", got)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	layers, _, _ := hostLayers(rng)
	p := Attach("p", layers, Config{Rank: 2, Alpha: 1}, &nn.Scalar{Val: 1}, rng)
	// Give the factors distinctive values.
	for _, at := range p.Attachments {
		at.A.W.FillGaussian(rng, 0.5)
		at.B.W.FillGaussian(rng, 0.5)
	}
	blob, err := p.Export().Encode()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := DecodeSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	// Load into a second host with the same topology.
	rng2 := rand.New(rand.NewSource(3))
	layers2, _, _ := hostLayers(rng2)
	p2 := Attach("p", layers2, Config{Rank: 2, Alpha: 1}, &nn.Scalar{Val: 1}, rng2)
	if err := p2.Load(snap); err != nil {
		t.Fatal(err)
	}
	for key, at := range p.Attachments {
		at2 := p2.Attachments[key]
		for i := range at.A.W.Data {
			if at.A.W.Data[i] != at2.A.W.Data[i] {
				t.Fatal("A factors differ after round trip")
			}
		}
		for i := range at.B.W.Data {
			if at.B.W.Data[i] != at2.B.W.Data[i] {
				t.Fatal("B factors differ after round trip")
			}
		}
	}
}

func TestLoadRejectsWrongShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	layers, _, _ := hostLayers(rng)
	p := Attach("p", layers, Config{Rank: 2, Alpha: 1}, &nn.Scalar{Val: 1}, rng)
	snap := p.Export()
	// Different rank host.
	layers2, _, _ := hostLayers(rand.New(rand.NewSource(5)))
	p2 := Attach("p", layers2, Config{Rank: 3, Alpha: 1}, &nn.Scalar{Val: 1}, rng)
	if err := p2.Load(snap); err == nil {
		t.Fatal("expected shape mismatch error")
	}
	// Missing layer.
	delete(snap.B, "dense")
	delete(snap.A, "dense")
	if err := p.Load(snap); err == nil {
		t.Fatal("expected missing-layer error")
	}
}

func TestSetFrozen(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	layers, _, _ := hostLayers(rng)
	p := Attach("p", layers, Config{Rank: 2, Alpha: 1}, &nn.Scalar{Val: 1}, rng)
	p.SetFrozen(true)
	for _, at := range p.Attachments {
		if !at.A.Frozen || !at.B.Frozen {
			t.Fatal("SetFrozen(true) did not freeze factors")
		}
	}
	p.SetFrozen(false)
	for _, at := range p.Attachments {
		if at.A.Frozen || at.B.Frozen {
			t.Fatal("SetFrozen(false) did not unfreeze factors")
		}
	}
}

func TestFusionTrainableParams(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	layers, _, _ := hostLayers(rng)
	l1 := &nn.Scalar{Name: "λ1", Val: 0.5}
	l2 := &nn.Scalar{Name: "λ2", Val: 0.5, Frozen: true}
	f := &Fusion{
		Upstream: []*Patch{
			Attach("u1", layers, Config{Rank: 2, Alpha: 1}, l1, rng),
			Attach("u2", layers, Config{Rank: 2, Alpha: 1}, l2, rng),
		},
		Shared:  Attach("shared", layers, Config{Rank: 2, Alpha: 1}, &nn.Scalar{Val: 1, Frozen: true}, rng),
		Lambdas: []*nn.Scalar{l1, l2},
	}
	ps := f.TrainableParams()
	// 3 patches × 2 layers × 2 factors = 12 matrices; 1 unfrozen λ.
	if len(ps.Mats) != 12 {
		t.Fatalf("expected 12 factor matrices, got %d", len(ps.Mats))
	}
	if len(ps.Scalars) != 1 || ps.Scalars[0] != l1 {
		t.Fatalf("expected only the unfrozen λ, got %d scalars", len(ps.Scalars))
	}
	w := f.Weights()
	if len(w) != 2 || w[0] != 0.5 {
		t.Fatalf("weights = %v", w)
	}
}

func TestWeightStrategyString(t *testing.T) {
	if StrategyAdaptive.String() != "adaptive" || StrategyUniform.String() != "uniform" || StrategySingle.String() != "single" {
		t.Fatal("strategy names wrong")
	}
	if WeightStrategy(9).String() == "" {
		t.Fatal("unknown strategy should still render")
	}
}

func TestPatchNormGrowsWithTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	layers, _, _ := hostLayers(rng)
	p := Attach("p", layers, Config{Rank: 2, Alpha: 1}, &nn.Scalar{Val: 1}, rng)
	if p.Norm() != 0 {
		t.Fatalf("fresh patch norm should be 0 (A=0), got %v", p.Norm())
	}
	for _, at := range p.Attachments {
		at.A.W.FillGaussian(rng, 0.5)
	}
	if p.Norm() == 0 {
		t.Fatal("non-zero factors should give non-zero norm")
	}
}
