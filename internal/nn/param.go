// Package nn is the neural substrate of the reproduction: parameters,
// layers with explicit Forward/Backward passes, LoRA attachments, and
// optimizers. It replaces the PyTorch + PEFT stack the paper uses.
//
// Design notes:
//
//   - Layers are stateful: Forward caches the activations Backward needs, so
//     a layer instance must be used by one goroutine at a time.
//   - LoRA patches are never materialized; ΔW·x is computed as B(Ax), which
//     is what makes dozens of per-dataset patches affordable (Section V-A).
//   - Fusion coefficients λ (Eq. 4) are Scalars shared across layers: every
//     layer carrying patch i contributes to the same λᵢ gradient, exactly as
//     a single interpolation weight per upstream patch in the paper.
package nn

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
)

// Param is a trainable matrix with its gradient and Adam moments.
//
// Parameters whose gradients touch only a few rows per step (embedding
// tables and their LoRA B factors — the rows of the active input features)
// opt into sparse-row tracking via TrackRows: Backward records touched rows
// with TouchRow, and ZeroGrad / gradient norms / Adam then visit only those
// rows. This is the standard "sparse Adam" approximation (moments of
// untouched rows do not decay on steps that skip them).
type Param struct {
	Name   string
	W      *tensor.Mat
	G      *tensor.Mat
	Frozen bool

	m, v *tensor.Mat // Adam first/second moments, allocated lazily

	rows map[int32]struct{} // touched-row set; nil = dense gradients
}

// NewParam allocates a zero-initialized parameter.
func NewParam(name string, rows, cols int) *Param {
	return &Param{
		Name: name,
		W:    tensor.NewMat(rows, cols),
		G:    tensor.NewMat(rows, cols),
	}
}

// TrackRows switches the parameter to sparse-row gradient tracking.
func (p *Param) TrackRows() {
	if p.rows == nil {
		p.rows = make(map[int32]struct{})
	}
}

// TouchRow records that row r received gradient this step. It is a no-op
// for dense parameters.
func (p *Param) TouchRow(r int) {
	if p.rows != nil {
		p.rows[int32(r)] = struct{}{}
	}
}

// ZeroGrad clears the accumulated gradient (only the touched rows for
// sparse-tracked parameters).
func (p *Param) ZeroGrad() {
	if p.rows != nil {
		for r := range p.rows {
			p.G.Row(int(r)).Zero()
		}
		clear(p.rows)
		return
	}
	p.G.Zero()
}

// touchedRows returns the touched-row indices in sorted order. Sorted
// iteration keeps floating-point reductions (gradient norms) bit-identical
// across runs; map order would make training non-reproducible.
func (p *Param) touchedRows() []int32 {
	rows := make([]int32, 0, len(p.rows))
	for r := range p.rows {
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	return rows
}

// gradRows invokes f on every row slice of G that may hold gradient, in a
// deterministic order.
func (p *Param) gradRows(f func(row tensor.Vec)) {
	if p.rows != nil {
		for _, r := range p.touchedRows() {
			f(p.G.Row(int(r)))
		}
		return
	}
	f(tensor.Vec(p.G.Data))
}

// NumParams returns the number of scalar parameters in p.
func (p *Param) NumParams() int { return len(p.W.Data) }

// Scalar is a single trainable value, used for the fusion weights λ.
type Scalar struct {
	Name   string
	Val    float64
	Grad   float64
	Frozen bool

	m, v float64 // Adam moments
}

// ZeroGrad clears the scalar gradient.
func (s *Scalar) ZeroGrad() { s.Grad = 0 }

// ParamSet is the collection of everything an optimizer updates.
type ParamSet struct {
	Mats    []*Param
	Scalars []*Scalar
}

// Add appends matrix parameters.
func (ps *ParamSet) Add(params ...*Param) { ps.Mats = append(ps.Mats, params...) }

// AddScalar appends scalar parameters.
func (ps *ParamSet) AddScalar(scalars ...*Scalar) { ps.Scalars = append(ps.Scalars, scalars...) }

// Merge appends everything in other.
func (ps *ParamSet) Merge(other ParamSet) {
	ps.Mats = append(ps.Mats, other.Mats...)
	ps.Scalars = append(ps.Scalars, other.Scalars...)
}

// ZeroGrad clears all gradients.
func (ps *ParamSet) ZeroGrad() {
	for _, p := range ps.Mats {
		p.ZeroGrad()
	}
	for _, s := range ps.Scalars {
		s.ZeroGrad()
	}
}

// GradNorm returns the global Euclidean norm of all non-frozen gradients.
func (ps *ParamSet) GradNorm() float64 {
	var t float64
	for _, p := range ps.Mats {
		if p.Frozen {
			continue
		}
		p.gradRows(func(row tensor.Vec) {
			for _, g := range row {
				t += g * g
			}
		})
	}
	for _, s := range ps.Scalars {
		if s.Frozen {
			continue
		}
		t += s.Grad * s.Grad
	}
	return math.Sqrt(t)
}

// ClipGradNorm rescales all gradients so the global norm is at most max.
// It returns the pre-clip norm.
func (ps *ParamSet) ClipGradNorm(max float64) float64 {
	n := ps.GradNorm()
	if n <= max || n == 0 {
		return n
	}
	scale := max / n
	for _, p := range ps.Mats {
		if p.Frozen {
			continue
		}
		p.gradRows(func(row tensor.Vec) {
			for i := range row {
				row[i] *= scale
			}
		})
	}
	for _, s := range ps.Scalars {
		if !s.Frozen {
			s.Grad *= scale
		}
	}
	return n
}

// NumParams returns the total number of trainable scalars (frozen excluded).
func (ps *ParamSet) NumParams() int {
	n := 0
	for _, p := range ps.Mats {
		if !p.Frozen {
			n += p.NumParams()
		}
	}
	for _, s := range ps.Scalars {
		if !s.Frozen {
			n++
		}
	}
	return n
}

// Adam is the Adam optimizer (Kingma & Ba) with optional weight decay,
// matching the fine-tuning recipe in Section VII-A.
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	step int
}

// NewAdam returns an Adam optimizer with standard betas.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one update to every non-frozen parameter and clears nothing;
// call ParamSet.ZeroGrad before the next backward pass.
func (a *Adam) Step(ps *ParamSet) {
	a.step++
	b1c := 1 - math.Pow(a.Beta1, float64(a.step))
	b2c := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, p := range ps.Mats {
		if p.Frozen {
			continue
		}
		if p.m == nil {
			p.m = tensor.NewMat(p.W.Rows, p.W.Cols)
			p.v = tensor.NewMat(p.W.Rows, p.W.Cols)
		}
		update := func(g, w, m, v []float64) {
			for i := range g {
				gi := g[i]
				if a.WeightDecay != 0 {
					gi += a.WeightDecay * w[i]
				}
				m[i] = a.Beta1*m[i] + (1-a.Beta1)*gi
				v[i] = a.Beta2*v[i] + (1-a.Beta2)*gi*gi
				mh := m[i] / b1c
				vh := v[i] / b2c
				w[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
			}
		}
		if p.rows != nil {
			// Sparse-Adam: only rows touched since the last ZeroGrad carry
			// gradient; untouched rows are skipped (their moments freeze).
			cols := p.W.Cols
			for _, r := range p.touchedRows() {
				off := int(r) * cols
				update(p.G.Data[off:off+cols], p.W.Data[off:off+cols],
					p.m.Data[off:off+cols], p.v.Data[off:off+cols])
			}
			continue
		}
		update(p.G.Data, p.W.Data, p.m.Data, p.v.Data)
	}
	for _, s := range ps.Scalars {
		if s.Frozen {
			continue
		}
		g := s.Grad
		s.m = a.Beta1*s.m + (1-a.Beta1)*g
		s.v = a.Beta2*s.v + (1-a.Beta2)*g*g
		mh := s.m / b1c
		vh := s.v / b2c
		s.Val -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
	}
}

// Reset clears the optimizer step counter and is used when the same
// parameters go through a second training phase.
func (a *Adam) Reset() { a.step = 0 }

func checkLen(what string, got, want int) {
	if got != want {
		panic(fmt.Sprintf("nn: %s length %d, want %d", what, got, want))
	}
}
