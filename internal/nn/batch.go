package nn

import (
	"math"

	"repro/internal/tensor"
)

// Batched inference-only forward passes. These are stateless with respect to
// the layer (no input/output caches are written, so they never disturb an
// in-flight training step's Backward) and draw scratch from a caller-owned
// tensor.Pool. Per row they perform exactly the arithmetic of the serial
// Forward methods in the same order — the batched serve path is gated
// byte-for-byte against the serial oracle, so any reordering here is a bug,
// not an optimization.

// ForwardBatch computes y.Row(i) = Embedding.Forward(xs[i]) for all i with
// the patch projections batched: the rank-sized projections of the whole
// batch are packed into one matrix and lifted back with a single
// MatMulNN per patch. y must be len(xs) x Hidden.
func (l *Embedding) ForwardBatch(xs []*tensor.Sparse, y *tensor.Mat, pool *tensor.Pool) {
	n := len(xs)
	if y.Rows != n || y.Cols != l.Hidden() {
		panic("nn: embedding ForwardBatch shape mismatch")
	}
	for b, x := range xs {
		row := y.Row(b)
		row.Zero()
		for i, idx := range x.Idx {
			row.Axpy(x.Val[i], l.E.W.Row(int(idx)))
		}
	}
	for _, at := range l.Patches {
		if at.Coef.Val == 0 && at.Coef.Frozen {
			continue
		}
		r := at.Rank()
		u := pool.GetMat(n, r)
		for b, x := range xs {
			urow := u.Row(b)
			urow.Zero()
			for i, idx := range x.Idx {
				urow.Axpy(x.Val[i], at.B.W.Row(int(idx)))
			}
		}
		// One matmul lifts every row's rank projection back to hidden space;
		// row i equals at.A.W.MulVecT(u.Row(i), ·) bit for bit.
		ua := pool.GetMat(n, l.Hidden())
		tensor.MatMulNN(u, at.A.W, ua)
		scale := at.Alpha * at.Coef.Val
		for b := 0; b < n; b++ {
			y.Row(b).Axpy(scale, ua.Row(b))
		}
		pool.PutMat(ua)
		pool.PutMat(u)
	}
}

// ForwardBatch computes y.Row(i) = Dense.Forward(u.Row(i)) for all i with one
// matmul per weight matrix: y = u·Wᵀ + b, plus per-patch z = u·Aᵀ, y += α·λ·z·Bᵀ.
// u must be n x In, y n x Out.
func (l *Dense) ForwardBatch(u, y *tensor.Mat, pool *tensor.Pool) {
	if u.Cols != l.In() || y.Rows != u.Rows || y.Cols != l.Out() {
		panic("nn: dense ForwardBatch shape mismatch")
	}
	n := u.Rows
	tensor.MatMulNT(u, l.W.W, y)
	bias := l.B.W.Row(0)
	for b := 0; b < n; b++ {
		y.Row(b).Axpy(1, bias)
	}
	for _, at := range l.Patches {
		if at.Coef.Val == 0 && at.Coef.Frozen {
			continue
		}
		r := at.Rank()
		z := pool.GetMat(n, r)
		tensor.MatMulNT(u, at.A.W, z)
		bz := pool.GetMat(n, l.Out())
		tensor.MatMulNT(z, at.B.W, bz)
		scale := at.Alpha * at.Coef.Val
		for b := 0; b < n; b++ {
			y.Row(b).Axpy(scale, bz.Row(b))
		}
		pool.PutMat(bz)
		pool.PutMat(z)
	}
}

// TanhMat applies tanh elementwise in place — the batched form of
// Tanh.Forward (which reads one buffer and writes another; elementwise the
// arithmetic is identical, so in-place is safe for bit-equality).
func TanhMat(m *tensor.Mat) {
	for i, v := range m.Data {
		m.Data[i] = math.Tanh(v)
	}
}
