package nn

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Attachment is one LoRA knowledge patch attached to a layer: the low-rank
// factors B and A (Eq. 2, ΔW = B·A), the scaling α, and the fusion
// coefficient λ (Eq. 4). Coef is shared across every layer carrying the same
// logical patch, so its gradient accumulates model-wide.
type Attachment struct {
	B, A  *Param
	Coef  *Scalar
	Alpha float64

	// Scratch reused across Forward/Backward of one example.
	z  tensor.Vec // A·u (rank-sized)
	bz tensor.Vec // B·z (output-sized), cached for dλ
}

// Rank returns the LoRA rank of the attachment.
func (at *Attachment) Rank() int { return at.A.W.Rows }

// NewAttachment builds a patch for a layer with the given input/output
// sizes. Following the paper's Section V-A, B is initialized from a random
// Gaussian and A with zeros so ΔW starts at zero. (The paper swaps the
// convention of the original LoRA paper; we follow the paper's text — the
// product still starts at zero, which is the property that matters.)
func NewAttachment(name string, out, in, rank int, alpha float64, coef *Scalar, rng *rand.Rand) *Attachment {
	b := NewParam(name+".B", out, rank)
	b.W.FillGaussian(rng, 1/math.Sqrt(float64(rank)))
	a := NewParam(name+".A", rank, in)
	return &Attachment{B: b, A: a, Coef: coef, Alpha: alpha}
}

// Params returns the patch's trainable matrices. The coefficient is owned by
// the fusion module and registered separately.
func (at *Attachment) Params() []*Param { return []*Param{at.B, at.A} }

// Embedding maps a sparse feature vector to a dense hidden vector:
// y = Eᵀx (+ LoRA patches). E has one row per feature bucket, so a row is an
// embedding and sparse input makes the pass O(nnz·h).
type Embedding struct {
	E       *Param // Dim x Hidden
	Patches []*Attachment

	in  *tensor.Sparse // cached input
	out tensor.Vec
}

// NewEmbedding allocates a dim x hidden embedding with scaled Gaussian init.
// Embedding gradients touch only the rows of active input features, so the
// parameter uses sparse-row tracking (see Param.TrackRows).
func NewEmbedding(name string, dim, hidden int, rng *rand.Rand) *Embedding {
	e := NewParam(name+".E", dim, hidden)
	e.W.FillGaussian(rng, 1/math.Sqrt(float64(hidden)))
	e.TrackRows()
	return &Embedding{E: e, out: tensor.NewVec(hidden)}
}

// Hidden returns the output dimensionality.
func (l *Embedding) Hidden() int { return l.E.W.Cols }

// Dim returns the input (feature-space) dimensionality.
func (l *Embedding) Dim() int { return l.E.W.Rows }

// Attach adds a LoRA patch with the given rank. For an embedding the factor
// shapes are B: Dim x r and A: r x Hidden, so ΔE = B·A matches E's shape.
func (l *Embedding) Attach(name string, rank int, alpha float64, coef *Scalar, rng *rand.Rand) *Attachment {
	b := NewParam(name+".B", l.Dim(), rank)
	b.W.FillGaussian(rng, 1/math.Sqrt(float64(rank)))
	b.TrackRows()
	a := NewParam(name+".A", rank, l.Hidden())
	at := &Attachment{B: b, A: a, Coef: coef, Alpha: alpha}
	l.Patches = append(l.Patches, at)
	return at
}

// Forward computes y = Σⱼ xⱼ·E[j,:] + α Σₚ λₚ (Σⱼ xⱼ·Bₚ[j,:])·Aₚ.
func (l *Embedding) Forward(x *tensor.Sparse) tensor.Vec {
	l.in = x
	y := l.out
	y.Zero()
	for i, idx := range x.Idx {
		y.Axpy(x.Val[i], l.E.W.Row(int(idx)))
	}
	for _, at := range l.Patches {
		if at.Coef.Val == 0 && at.Coef.Frozen {
			continue
		}
		r := at.Rank()
		if cap(at.z) < r {
			at.z = tensor.NewVec(r)
		}
		u := at.z[:r]
		u.Zero()
		for i, idx := range x.Idx {
			u.Axpy(x.Val[i], at.B.W.Row(int(idx)))
		}
		if cap(at.bz) < len(y) {
			at.bz = tensor.NewVec(len(y))
		}
		ua := at.bz[:len(y)]
		at.A.W.MulVecT(u, ua) // ua = Aᵀ… wait: u (r) times A (r x h) → uᵀA, i.e. Aᵀu
		y.Axpy(at.Alpha*at.Coef.Val, ua)
	}
	return y
}

// Backward accumulates gradients given dL/dy. The sparse input has no
// gradient (features are data, not parameters).
func (l *Embedding) Backward(dy tensor.Vec) {
	checkLen("embedding dy", len(dy), l.Hidden())
	x := l.in
	if !l.E.Frozen {
		for i, idx := range x.Idx {
			l.E.G.Row(int(idx)).Axpy(x.Val[i], dy)
			l.E.TouchRow(int(idx))
		}
	}
	for _, at := range l.Patches {
		// Skip exactly the patches Forward skipped: with λ frozen at zero no
		// gradient reaches the patch and the scratch buffers are stale.
		if at.Coef.Val == 0 && at.Coef.Frozen {
			continue
		}
		r := at.Rank()
		u := at.z[:r] // cached Σⱼ xⱼ Bₚ[j,:]
		ua := at.bz[:len(dy)]
		scale := at.Alpha * at.Coef.Val
		if !at.Coef.Frozen {
			// dλ = α · dy·(uᵀA)  — ua holds uᵀA from Forward.
			at.Coef.Grad += at.Alpha * dy.Dot(ua)
		}
		if !at.A.Frozen {
			// dA += scale · outer(u, dy)
			at.A.G.RankOne(scale, u, dy)
		}
		if !at.B.Frozen {
			// du = scale · A·dy ; dB[j,:] += xⱼ·du
			du := tensor.NewVec(r)
			at.A.W.MulVec(dy, du)
			du.Scale(scale)
			for i, idx := range x.Idx {
				at.B.G.Row(int(idx)).Axpy(x.Val[i], du)
				at.B.TouchRow(int(idx))
			}
		}
	}
}

// Params returns the layer's own parameters plus all patch factors.
func (l *Embedding) Params() []*Param {
	out := []*Param{l.E}
	for _, at := range l.Patches {
		out = append(out, at.Params()...)
	}
	return out
}

// Dense is a fully connected layer y = W·u + b (+ LoRA patches).
type Dense struct {
	W, B    *Param // W: out x in, B: 1 x out
	Patches []*Attachment

	in  tensor.Vec
	out tensor.Vec
	din tensor.Vec
}

// NewDense allocates an out x in layer with Xavier-style init.
func NewDense(name string, out, in int, rng *rand.Rand) *Dense {
	w := NewParam(name+".W", out, in)
	w.W.FillGaussian(rng, math.Sqrt(2/float64(in+out)))
	b := NewParam(name+".b", 1, out)
	return &Dense{W: w, B: b, out: tensor.NewVec(out), din: tensor.NewVec(in)}
}

// In returns the input size; Out the output size.
func (l *Dense) In() int  { return l.W.W.Cols }
func (l *Dense) Out() int { return l.W.W.Rows }

// Attach adds a LoRA patch: B: out x r, A: r x in.
func (l *Dense) Attach(name string, rank int, alpha float64, coef *Scalar, rng *rand.Rand) *Attachment {
	at := NewAttachment(name, l.Out(), l.In(), rank, alpha, coef, rng)
	l.Patches = append(l.Patches, at)
	return at
}

// Forward computes y = W·u + b + α Σₚ λₚ Bₚ(Aₚu).
func (l *Dense) Forward(u tensor.Vec) tensor.Vec {
	checkLen("dense input", len(u), l.In())
	l.in = u
	y := l.out
	l.W.W.MulVec(u, y)
	y.Axpy(1, l.B.W.Row(0))
	for _, at := range l.Patches {
		if at.Coef.Val == 0 && at.Coef.Frozen {
			continue
		}
		r := at.Rank()
		if cap(at.z) < r {
			at.z = tensor.NewVec(r)
		}
		z := at.z[:r]
		at.A.W.MulVec(u, z)
		if cap(at.bz) < len(y) {
			at.bz = tensor.NewVec(len(y))
		}
		bz := at.bz[:len(y)]
		at.B.W.MulVec(z, bz)
		y.Axpy(at.Alpha*at.Coef.Val, bz)
	}
	return y
}

// Backward accumulates parameter gradients and returns dL/du. The returned
// slice is reused between calls; callers must not retain it.
func (l *Dense) Backward(dy tensor.Vec) tensor.Vec {
	checkLen("dense dy", len(dy), l.Out())
	du := l.din
	l.W.W.MulVecT(dy, du)
	if !l.W.Frozen {
		l.W.G.RankOne(1, dy, l.in)
	}
	if !l.B.Frozen {
		l.B.G.Row(0).Axpy(1, dy)
	}
	for _, at := range l.Patches {
		// Match Forward's skip condition; see Embedding.Backward.
		if at.Coef.Val == 0 && at.Coef.Frozen {
			continue
		}
		r := at.Rank()
		z := at.z[:r]
		bz := at.bz[:l.Out()]
		scale := at.Alpha * at.Coef.Val
		if !at.Coef.Frozen {
			at.Coef.Grad += at.Alpha * dy.Dot(bz)
		}
		// dz = scale·Bᵀdy (needed for both dA and du)
		dz := tensor.NewVec(r)
		at.B.W.MulVecT(dy, dz)
		dz.Scale(scale)
		if !at.B.Frozen {
			at.B.G.RankOne(scale, dy, z)
		}
		if !at.A.Frozen {
			at.A.G.RankOne(1, dz, l.in)
		}
		// du += Aᵀdz
		tmp := tensor.NewVec(l.In())
		at.A.W.MulVecT(dz, tmp)
		du.Axpy(1, tmp)
	}
	return du
}

// Params returns the layer's own parameters plus all patch factors.
func (l *Dense) Params() []*Param {
	out := []*Param{l.W, l.B}
	for _, at := range l.Patches {
		out = append(out, at.Params()...)
	}
	return out
}

// Tanh is an elementwise tanh activation.
type Tanh struct {
	out tensor.Vec
	din tensor.Vec
}

// Forward applies tanh elementwise.
func (l *Tanh) Forward(u tensor.Vec) tensor.Vec {
	if cap(l.out) < len(u) {
		l.out = tensor.NewVec(len(u))
		l.din = tensor.NewVec(len(u))
	}
	y := l.out[:len(u)]
	for i, v := range u {
		y[i] = math.Tanh(v)
	}
	return y
}

// Backward returns dL/du given dL/dy using the cached output.
func (l *Tanh) Backward(dy tensor.Vec) tensor.Vec {
	y := l.out[:len(dy)]
	du := l.din[:len(dy)]
	for i, g := range dy {
		du[i] = g * (1 - y[i]*y[i])
	}
	return du
}

// SoftmaxCE computes softmax cross-entropy over a score vector and the
// gradient dL/dscores. It returns the loss and writes the gradient into
// dscores (which must have the same length as scores).
func SoftmaxCE(scores tensor.Vec, gold int, dscores tensor.Vec) float64 {
	checkLen("softmaxce dscores", len(dscores), len(scores))
	if gold < 0 || gold >= len(scores) {
		panic("nn: gold index out of range")
	}
	max := scores[0]
	for _, s := range scores[1:] {
		if s > max {
			max = s
		}
	}
	var z float64
	for i, s := range scores {
		e := math.Exp(s - max)
		dscores[i] = e
		z += e
	}
	for i := range dscores {
		dscores[i] /= z
	}
	loss := -math.Log(dscores[gold] + 1e-12)
	dscores[gold] -= 1
	return loss
}

// Softmax converts scores to probabilities in place.
func Softmax(scores tensor.Vec) {
	max := scores[0]
	for _, s := range scores[1:] {
		if s > max {
			max = s
		}
	}
	var z float64
	for i, s := range scores {
		scores[i] = math.Exp(s - max)
		z += scores[i]
	}
	for i := range scores {
		scores[i] /= z
	}
}
