package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// tinyNet is a minimal Embedding→Tanh→Dense network used for gradient
// checking, with one trainable LoRA patch on each layer.
type tinyNet struct {
	emb   *Embedding
	tanh  *Tanh
	dense *Dense
	coef  *Scalar
	ps    ParamSet
}

func newTinyNet(rng *rand.Rand) *tinyNet {
	n := &tinyNet{
		emb:  NewEmbedding("emb", 16, 5, rng),
		tanh: &Tanh{},
		coef: &Scalar{Name: "lambda", Val: 0.7},
	}
	n.dense = NewDense("dense", 4, 5, rng)
	ea := n.emb.Attach("emb.p", 2, 1.5, n.coef, rng)
	da := n.dense.Attach("dense.p", 2, 1.5, n.coef, rng)
	// Give A non-zero values so its gradient path is exercised (the standard
	// zero init would make some gradients trivially correct).
	ea.A.W.FillGaussian(rng, 0.3)
	da.A.W.FillGaussian(rng, 0.3)
	n.ps.Add(n.emb.Params()...)
	n.ps.Add(n.dense.Params()...)
	n.ps.AddScalar(n.coef)
	return n
}

func (n *tinyNet) loss(x *tensor.Sparse, gold int) float64 {
	h := n.emb.Forward(x)
	h = n.tanh.Forward(h)
	y := n.dense.Forward(h)
	d := tensor.NewVec(len(y))
	return SoftmaxCE(y, gold, d)
}

func (n *tinyNet) lossAndBackward(x *tensor.Sparse, gold int) float64 {
	h := n.emb.Forward(x)
	h = n.tanh.Forward(h)
	y := n.dense.Forward(h)
	d := tensor.NewVec(len(y))
	loss := SoftmaxCE(y, gold, d)
	dh := n.dense.Backward(d)
	dh = n.tanh.Backward(dh)
	n.emb.Backward(dh)
	return loss
}

func testInput() *tensor.Sparse {
	b := tensor.NewSparseBuilder()
	b.Add(1, 0.5)
	b.Add(3, -0.8)
	b.Add(7, 1.2)
	b.Add(15, 0.3)
	s := b.Build()
	s.Normalize()
	return s
}

// TestGradientCheck verifies every analytic gradient (embedding, dense,
// both LoRA factor pairs, and the shared fusion coefficient λ) against
// central finite differences.
func TestGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := newTinyNet(rng)
	x := testInput()
	const gold = 2
	net.ps.ZeroGrad()
	net.lossAndBackward(x, gold)

	const eps = 1e-5
	checkMat := func(p *Param) {
		for i := range p.W.Data {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			lp := net.loss(x, gold)
			p.W.Data[i] = orig - eps
			lm := net.loss(x, gold)
			p.W.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			ana := p.G.Data[i]
			if math.Abs(num-ana) > 1e-6*(1+math.Abs(num)) {
				t.Fatalf("%s[%d]: analytic %g vs numeric %g", p.Name, i, ana, num)
			}
		}
	}
	for _, p := range net.ps.Mats {
		checkMat(p)
	}
	// λ gradient.
	orig := net.coef.Val
	net.coef.Val = orig + eps
	lp := net.loss(x, gold)
	net.coef.Val = orig - eps
	lm := net.loss(x, gold)
	net.coef.Val = orig
	num := (lp - lm) / (2 * eps)
	if math.Abs(num-net.coef.Grad) > 1e-6*(1+math.Abs(num)) {
		t.Fatalf("lambda: analytic %g vs numeric %g", net.coef.Grad, num)
	}
}

// TestFrozenParamsGetNoUpdate checks that frozen parameters are untouched by
// Adam and that frozen patch coefficients block patch computation.
func TestFrozenParamsGetNoUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := newTinyNet(rng)
	net.emb.E.Frozen = true
	net.dense.W.Frozen = true
	before := net.emb.E.W.Clone()
	x := testInput()
	opt := NewAdam(0.01)
	for i := 0; i < 5; i++ {
		net.ps.ZeroGrad()
		net.lossAndBackward(x, 1)
		opt.Step(&net.ps)
	}
	for i := range before.Data {
		if net.emb.E.W.Data[i] != before.Data[i] {
			t.Fatal("frozen embedding changed under Adam")
		}
	}
}

// TestZeroFrozenCoefIsIdentity checks the defining LoRA-fusion property:
// a patch whose λ is frozen at 0 must not change the forward pass at all.
func TestZeroFrozenCoefIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dense := NewDense("d", 3, 4, rng)
	u := tensor.Vec{0.1, -0.2, 0.3, 0.4}
	base := dense.Forward(u).Clone()
	coef := &Scalar{Val: 0, Frozen: true}
	at := dense.Attach("p", 2, 2, coef, rng)
	at.A.W.FillGaussian(rng, 1)
	got := dense.Forward(u)
	for i := range base {
		if got[i] != base[i] {
			t.Fatalf("frozen zero-λ patch changed output: %v vs %v", got, base)
		}
	}
	// Backward must not panic even though Forward skipped the patch.
	dense.Backward(tensor.Vec{1, 1, 1})
}

// TestZeroInitPatchIsIdentity: per Eq. 2, a freshly attached patch has A = 0
// so ΔW = B·A = 0 and the model output is unchanged even with λ = 1.
func TestZeroInitPatchIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	dense := NewDense("d", 3, 4, rng)
	u := tensor.Vec{0.5, 0.5, -0.5, 1}
	base := dense.Forward(u).Clone()
	coef := &Scalar{Val: 1}
	dense.Attach("p", 2, 2, coef, rng) // A stays zero
	got := dense.Forward(u)
	for i := range base {
		if math.Abs(got[i]-base[i]) > 1e-15 {
			t.Fatalf("zero-init patch changed output: %v vs %v", got, base)
		}
	}
}

// TestPatchEquivalentToMaterializedDelta: B(Ax) must equal (BA)x.
func TestPatchEquivalentToMaterializedDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const out, in, rank = 5, 7, 3
	dense := NewDense("d", out, in, rng)
	coef := &Scalar{Val: 0.9}
	at := dense.Attach("p", rank, 1.3, coef, rng)
	at.A.W.FillGaussian(rng, 0.5)
	u := tensor.NewVec(in)
	for i := range u {
		u[i] = rng.NormFloat64()
	}
	got := dense.Forward(u).Clone()

	// Materialize W + α·λ·B·A and compare.
	eff := dense.W.W.Clone()
	for i := 0; i < out; i++ {
		for j := 0; j < in; j++ {
			var d float64
			for k := 0; k < rank; k++ {
				d += at.B.W.At(i, k) * at.A.W.At(k, j)
			}
			eff.Set(i, j, eff.At(i, j)+1.3*0.9*d)
		}
	}
	want := tensor.NewVec(out)
	eff.MulVec(u, want)
	want.Axpy(1, dense.B.W.Row(0))
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("factored patch disagrees with materialized ΔW at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

// TestSharedCoefAccumulatesAcrossLayers: λ shared by two layers must receive
// the sum of both layers' contributions.
func TestSharedCoefAccumulatesAcrossLayers(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	net := newTinyNet(rng)
	x := testInput()
	net.ps.ZeroGrad()
	net.lossAndBackward(x, 0)
	shared := net.coef.Grad

	// Rebuild the same network but give each layer its own coefficient; the
	// shared gradient must equal the sum of the two separate ones.
	rng2 := rand.New(rand.NewSource(12))
	net2 := newTinyNet(rng2)
	// Detach: give dense patch a separate scalar with same value.
	sep := &Scalar{Val: net2.coef.Val}
	net2.dense.Patches[0].Coef = sep
	net2.ps.ZeroGrad()
	sep.Grad = 0
	net2.lossAndBackward(x, 0)
	sum := net2.coef.Grad + sep.Grad
	if math.Abs(shared-sum) > 1e-10 {
		t.Fatalf("shared λ grad %g != sum of separate grads %g", shared, sum)
	}
}

func TestSoftmaxCE(t *testing.T) {
	scores := tensor.Vec{1, 2, 3}
	d := tensor.NewVec(3)
	loss := SoftmaxCE(scores, 2, d)
	if loss < 0 {
		t.Fatalf("loss must be non-negative, got %v", loss)
	}
	// Gradient sums to zero (softmax minus one-hot).
	var s float64
	for _, g := range d {
		s += g
	}
	if math.Abs(s) > 1e-12 {
		t.Fatalf("CE gradient should sum to 0, got %v", s)
	}
	// Gold gradient is negative, others positive.
	if d[2] >= 0 || d[0] <= 0 || d[1] <= 0 {
		t.Fatalf("unexpected gradient signs: %v", d)
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	scores := tensor.Vec{1000, 999, 998}
	Softmax(scores)
	var s float64
	for _, p := range scores {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("softmax overflow: %v", scores)
		}
		s += p
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("softmax sums to %v", s)
	}
}

// TestAdamConvergesOnToyProblem: Adam must drive a simple regression loss
// near zero, smoke-testing the whole train loop machinery.
func TestAdamConvergesOnToyProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dense := NewDense("d", 2, 3, rng)
	var ps ParamSet
	ps.Add(dense.Params()...)
	opt := NewAdam(0.05)
	target := tensor.Vec{1.0, -2.0}
	u := tensor.Vec{0.3, 0.6, -0.2}
	var loss float64
	for i := 0; i < 400; i++ {
		ps.ZeroGrad()
		y := dense.Forward(u)
		dy := tensor.NewVec(2)
		loss = 0
		for j := range y {
			diff := y[j] - target[j]
			loss += 0.5 * diff * diff
			dy[j] = diff
		}
		dense.Backward(dy)
		opt.Step(&ps)
	}
	if loss > 1e-4 {
		t.Fatalf("Adam failed to converge, final loss %v", loss)
	}
}

func TestClipGradNorm(t *testing.T) {
	p := NewParam("p", 1, 3)
	copy(p.G.Data, []float64{3, 4, 0})
	var ps ParamSet
	ps.Add(p)
	pre := ps.ClipGradNorm(1)
	if math.Abs(pre-5) > 1e-12 {
		t.Fatalf("pre-clip norm = %v, want 5", pre)
	}
	if post := ps.GradNorm(); math.Abs(post-1) > 1e-12 {
		t.Fatalf("post-clip norm = %v, want 1", post)
	}
	// No-op when under the limit.
	ps.ClipGradNorm(10)
	if post := ps.GradNorm(); math.Abs(post-1) > 1e-12 {
		t.Fatalf("clip should be no-op under limit, norm = %v", post)
	}
}

func TestParamSetNumParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense("d", 2, 3, rng)
	var ps ParamSet
	ps.Add(d.Params()...)
	ps.AddScalar(&Scalar{}, &Scalar{Frozen: true})
	if got := ps.NumParams(); got != 2*3+2+1 {
		t.Fatalf("NumParams = %d, want %d", got, 2*3+2+1)
	}
	d.W.Frozen = true
	if got := ps.NumParams(); got != 2+1 {
		t.Fatalf("NumParams with frozen W = %d, want 3", got)
	}
}
