package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// sparseFrom builds a sorted sparse vector from (idx, val) pairs.
func sparseFrom(pairs map[int32]float64) *tensor.Sparse {
	b := tensor.NewSparseBuilder()
	for idx, v := range pairs {
		b.Add(idx, v)
	}
	return b.Build()
}

// TestForwardBatchMatchesSerial pins the batched tower against the serial
// one bit for bit, patches included (one live, one frozen-at-zero that must
// be skipped by both paths).
func TestForwardBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const dim, hidden, out = 64, 10, 7
	emb := NewEmbedding("e", dim, hidden, rng)
	live := &Scalar{Name: "lam", Val: 0.7}
	frozen := &Scalar{Name: "lam0"}
	frozen.Frozen = true
	emb.Attach("e.p", 3, 2, live, rng)
	emb.Attach("e.p0", 3, 2, frozen, rng)
	den := NewDense("d", out, hidden, rng)
	den.Attach("d.p", 2, 1.5, live, rng)
	den.Attach("d.p0", 2, 1.5, frozen, rng)
	// Give the live patches nonzero A so ΔW ≠ 0.
	for _, at := range append(emb.Patches, den.Patches...) {
		at.A.W.FillGaussian(rng, 0.3)
	}

	xs := []*tensor.Sparse{
		sparseFrom(map[int32]float64{1: 0.5, 7: -1.2, 33: 2}),
		sparseFrom(map[int32]float64{0: 1}),
		sparseFrom(map[int32]float64{5: 0.1, 6: 0.2, 7: 0.3, 60: -0.4}),
	}
	n := len(xs)
	var pool tensor.Pool
	H := tensor.NewMat(n, hidden)
	emb.ForwardBatch(xs, H, &pool)
	Y := tensor.NewMat(n, out)
	// Serial reference must run BEFORE TanhMat mutates H in place.
	serialH := make([]tensor.Vec, n)
	serialY := make([]tensor.Vec, n)
	for i, x := range xs {
		serialH[i] = emb.Forward(x).Clone()
		for j := range serialH[i] {
			if math.Float64bits(serialH[i][j]) != math.Float64bits(H.At(i, j)) {
				t.Fatalf("embedding row %d col %d: %v vs %v", i, j, serialH[i][j], H.At(i, j))
			}
		}
	}
	den.ForwardBatch(H, Y, &pool)
	for i := range xs {
		serialY[i] = den.Forward(serialH[i]).Clone()
		for j := range serialY[i] {
			if math.Float64bits(serialY[i][j]) != math.Float64bits(Y.At(i, j)) {
				t.Fatalf("dense row %d col %d: %v vs %v", i, j, serialY[i][j], Y.At(i, j))
			}
		}
	}
	var act Tanh
	TanhMat(Y)
	for i := range xs {
		want := act.Forward(serialY[i])
		for j := range want {
			if math.Float64bits(want[j]) != math.Float64bits(Y.At(i, j)) {
				t.Fatalf("tanh row %d col %d: %v vs %v", i, j, want[j], Y.At(i, j))
			}
		}
	}
}

// TestForwardBatchLeavesTrainingCachesAlone: the batched pass must not
// disturb the serial layers' cached activations (Backward depends on them).
func TestForwardBatchLeavesTrainingCachesAlone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	den := NewDense("d", 4, 6, rng)
	u := tensor.NewVec(6)
	for i := range u {
		u[i] = rng.NormFloat64()
	}
	serial := den.Forward(u).Clone()
	cached := den.out.Clone()

	var pool tensor.Pool
	U := tensor.NewMat(2, 6)
	U.Row(0).Axpy(1, u)
	for i := range u {
		U.Set(1, i, rng.NormFloat64())
	}
	Y := tensor.NewMat(2, 4)
	den.ForwardBatch(U, Y, &pool)
	for i := range cached {
		if den.out[i] != cached[i] {
			t.Fatal("ForwardBatch overwrote the serial output cache")
		}
	}
	for j := range serial {
		if math.Float64bits(serial[j]) != math.Float64bits(Y.At(0, j)) {
			t.Fatalf("row 0 mismatch at %d", j)
		}
	}
}
