// Package baselines implements every comparison method of the paper's
// Section VII-A: the non-LLM per-task methods (Raha-, IPM-, SMAT-, Ditto-,
// Doduo-, MAVE-, Baran-style), the open-source DP-LLM tiers (Mistral,
// TableLLaMA, MELD, Jellyfish, Jellyfish-ICL), and the closed-source GPT
// tiers used with in-context learning. Each method adapts to a downstream
// dataset from the same few-shot budget KnowTrans gets.
package baselines

import (
	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/tasks"
)

// Predictor answers instances of one downstream dataset.
type Predictor interface {
	Predict(in *data.Instance) string
}

// BatchPredictor is the optional batched face of a Predictor: one call
// answers a whole instance slice through the backbone's batched forward
// pass. Answers must be identical to calling Predict per instance; the
// returned slice may be scratch reused across calls.
type BatchPredictor interface {
	PredictBatch(ins []*data.Instance) []string
}

// AdaptContext is everything a method may use to adapt: the dataset bundle
// (for its task kind and seed knowledge — never its test labels), the
// few-shot labeled sample, and a seed.
type AdaptContext struct {
	Bundle  *datagen.Bundle
	FewShot []*data.Instance
	Seed    int64
	// Rec, when non-nil, is the recorder of the enclosing experiment cell;
	// methods thread it into the backbone clones they train so telemetry
	// nests under the cell's span (the parallel harness derives one
	// recorder per cell). Nil leaves each clone's inherited recorder alone.
	Rec *obs.Recorder
}

// Method is one comparison system.
type Method interface {
	Name() string
	Adapt(ctx *AdaptContext) Predictor
}

// Evaluate runs a predictor over a test set with the task's metric. A
// predictor that also implements BatchPredictor is scored through one
// batched call (bit-identical answers, one forward per micro-batch instead
// of one per instance); a wrong-length batch falls back to the serial loop.
func Evaluate(p Predictor, kind tasks.Kind, test []*data.Instance) float64 {
	spec := tasks.SpecFor(kind)
	metric := tasks.NewMetric(spec.Metric)
	if bp, ok := p.(BatchPredictor); ok {
		if got := bp.PredictBatch(test); len(got) == len(test) {
			for i, g := range got {
				metric.Add(g, test[i].GoldText())
			}
			return metric.Score()
		}
	}
	for _, in := range test {
		metric.Add(p.Predict(in), in.GoldText())
	}
	return metric.Score()
}

// modelPredictor wraps a DP-LM (optionally with fixed knowledge) as a
// Predictor.
type modelPredictor struct {
	m    *model.Model
	spec tasks.Spec
	k    *tasks.Knowledge
}

func (p *modelPredictor) Predict(in *data.Instance) string {
	return p.m.PredictWith(p.spec, in, p.k)
}

// PredictBatch answers the slice through the model's batched forward —
// the BatchPredictor face Evaluate prefers.
func (p *modelPredictor) PredictBatch(ins []*data.Instance) []string {
	return p.m.PredictBatchWith(p.spec, ins, p.k)
}

// FineTuned is the standard "fine-tune the whole model on the few-shot
// data" method applied to any backbone: the paper's Mistral, TableLLaMA and
// Jellyfish rows all follow this protocol.
type FineTuned struct {
	MethodName string
	// Backbone returns a fresh clone of the backbone to fine-tune.
	Backbone func() *model.Model
	Train    model.TrainConfig
}

// Name implements Method.
func (f *FineTuned) Name() string { return f.MethodName }

// Adapt implements Method: full fine-tuning of the clone on the few-shot
// examples.
func (f *FineTuned) Adapt(ctx *AdaptContext) Predictor {
	m := f.Backbone()
	if ctx.Rec != nil {
		m.Rec = ctx.Rec
	}
	tc := f.Train
	if tc.Epochs == 0 {
		tc = model.DefaultTrain(ctx.Seed)
		tc.Epochs = 6
		tc.LR = 0.01
		tc.WeightDecay = 3e-4
		tc.BatchSize = 4
	}
	tc.Seed = ctx.Seed
	ps := m.Params()
	model.Train(m, model.ExamplesFrom(ctx.Bundle.Kind, ctx.FewShot, nil), tc, &ps)
	return &modelPredictor{m: m, spec: ctx.Bundle.Spec()}
}
