package baselines

import (
	"sort"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/tasks"
	"repro/internal/tensor"
	"repro/internal/text"
)

// ICL adapts a frozen backbone with in-context learning: the k most similar
// few-shot demonstrations are serialized into the prompt, and their labels
// vote on the candidates with similarity weights — the retrieval-augmented
// realization of demonstration conditioning in a bag-of-features substrate.
// This is the protocol behind Jellyfish-ICL and the GPT tiers.
type ICL struct {
	MethodName string
	Backbone   func() *model.Model
	K          int
	// VoteWeight scales the neighbor-vote score bonus. Wider models rely on
	// demonstrations more effectively; the zoo sets this per tier.
	VoteWeight float64
}

// Name implements Method.
func (c *ICL) Name() string { return c.MethodName }

// Adapt implements Method. No gradient updates happen: the model is used
// frozen, exactly like an API model.
func (c *ICL) Adapt(ctx *AdaptContext) Predictor {
	m := c.Backbone()
	if ctx.Rec != nil {
		m.Rec = ctx.Rec
	}
	k := c.K
	if k == 0 {
		k = 10
	}
	p := &iclPredictor{
		m:      m,
		spec:   ctx.Bundle.Spec(),
		k:      k,
		weight: c.VoteWeight,
	}
	if p.weight == 0 {
		p.weight = 0.5
	}
	for _, in := range ctx.FewShot {
		p.demos = append(p.demos, demo{
			in:  in,
			vec: demoVec(m, in),
			ans: in.GoldText(),
		})
	}
	return p
}

type demo struct {
	in  *data.Instance
	vec *tensor.Sparse
	ans string
}

type iclPredictor struct {
	m      *model.Model
	spec   tasks.Spec
	k      int
	weight float64
	demos  []demo
}

// demoVec hashes an instance's record content for retrieval.
func demoVec(m *model.Model, in *data.Instance) *tensor.Sparse {
	segs := make([]text.Segment, 0, len(in.Fields))
	for _, f := range in.Fields {
		segs = append(segs, text.Segment{Field: f.Name, Text: f.Value, Weight: 1})
	}
	return m.Hasher.Encode(segs...)
}

// Predict builds the demonstration-augmented prompt and combines model
// scores with similarity-weighted neighbor votes.
func (p *iclPredictor) Predict(in *data.Instance) string {
	q := demoVec(p.m, in)
	type scored struct {
		d   demo
		sim float64
	}
	neighbors := make([]scored, 0, len(p.demos))
	for _, d := range p.demos {
		neighbors = append(neighbors, scored{d, q.Dot(d.vec)})
	}
	sort.SliceStable(neighbors, func(i, j int) bool { return neighbors[i].sim > neighbors[j].sim })
	if len(neighbors) > p.k {
		neighbors = neighbors[:p.k]
	}

	ex := tasks.BuildExample(p.spec, in, nil)
	// Serialize demonstrations into the prompt. They are hashed into an
	// isolated namespace at low weight: in a transformer the demonstrations
	// occupy context without overwriting the query representation, and the
	// bag encoder must not let ten demo records drown the actual record.
	for _, n := range neighbors {
		ex.Segments = append(ex.Segments, text.Segment{
			Field:    "demo",
			Text:     data.RenderRecord(n.d.in.Fields) + " -> " + n.d.ans,
			Weight:   0.04,
			Isolated: true,
		})
		ex.Prompt += "\nExample: " + data.RenderRecord(n.d.in.Fields) + " -> " + n.d.ans
	}
	scores := p.m.Scores(ex).Clone()
	// ... and vote on candidates.
	for _, n := range neighbors {
		if n.sim <= 0 {
			continue
		}
		for i, c := range ex.Candidates {
			if equalFold(c, n.d.ans) {
				scores[i] += p.weight * n.sim
			}
		}
	}
	best := 0
	for i, s := range scores {
		if s > scores[best] {
			best = i
		}
	}
	return ex.Candidates[best]
}

// PromptTokens reports the token count of one demonstration-augmented
// prompt, used by the Table III cost analysis.
func (p *iclPredictor) PromptTokens(in *data.Instance) (input, output int) {
	q := demoVec(p.m, in)
	type scored struct {
		d   demo
		sim float64
	}
	neighbors := make([]scored, 0, len(p.demos))
	for _, d := range p.demos {
		neighbors = append(neighbors, scored{d, q.Dot(d.vec)})
	}
	sort.SliceStable(neighbors, func(i, j int) bool { return neighbors[i].sim > neighbors[j].sim })
	if len(neighbors) > p.k {
		neighbors = neighbors[:p.k]
	}
	ex := tasks.BuildExample(p.spec, in, nil)
	prompt := ex.Prompt
	for _, n := range neighbors {
		prompt += "\nExample: " + data.RenderRecord(n.d.in.Fields) + " -> " + n.d.ans
	}
	return text.CountTokens(prompt), text.CountTokens(p.Predict(in))
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
