package baselines

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/data"
	"repro/internal/lora"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/skc"
	"repro/internal/tasks"
)

// MELD reimplements the Mixture-of-Experts baseline [Yan et al., KDD 2024]
// in this substrate: the upstream per-dataset knowledge patches act as
// experts, combined per instance by a similarity gate over dataset
// centroids (top-k routing). Its defining limitation versus SKC — the one
// the paper calls out — is the *instance-level* expert combination: routing
// is recomputed per record and never learns a dataset-level weighting from
// the few-shot data. Only a small shared adapter is fine-tuned.
type MELD struct {
	Backbone  func() *model.Model
	Snaps     []*skc.NamedSnapshot
	Centroids []Centroid
	TopK      int
	Train     model.TrainConfig
}

// Centroid is the mean hashed-record vector of one upstream dataset.
type Centroid struct {
	Name string
	Vec  []float64
}

// CentroidOf computes a dataset centroid from sample instances.
func CentroidOf(m *model.Model, name string, ins []*data.Instance) Centroid {
	vec := make([]float64, m.Cfg.Dim)
	for _, in := range ins {
		v := demoVec(m, in)
		for i, idx := range v.Idx {
			vec[idx] += v.Val[i]
		}
	}
	var norm float64
	for _, x := range vec {
		norm += x * x
	}
	if norm > 0 {
		inv := 1 / math.Sqrt(norm)
		for i := range vec {
			vec[i] *= inv
		}
	}
	return Centroid{Name: name, Vec: vec}
}

// Name implements Method.
func (m *MELD) Name() string { return "MELD" }

// Adapt implements Method: attach the expert patches with gate-controlled
// coefficients, fine-tune only a fresh shared adapter on the few-shot data.
func (m *MELD) Adapt(ctx *AdaptContext) Predictor {
	host := m.Backbone()
	if ctx.Rec != nil {
		host.Rec = ctx.Rec
	}
	host.SetBaseFrozen(true)
	host.Trust.Frozen = true
	rng := rand.New(rand.NewSource(ctx.Seed + 333))
	cfg := lora.DefaultConfig()

	p := &meldPredictor{
		m:     host,
		spec:  ctx.Bundle.Spec(),
		topK:  m.TopK,
		cents: m.Centroids,
	}
	if p.topK == 0 {
		p.topK = 2
	}
	for _, ns := range m.Snaps {
		coef := &nn.Scalar{Name: "gate/" + ns.Name, Val: 0, Frozen: true}
		patch := lora.Attach(ns.Name, host.LoraLayers(), cfg, coef, rng)
		if err := patch.Load(ns.Snap); err != nil {
			// Snapshots come from the same architecture; failure is a
			// programming error, surface it loudly.
			panic(err)
		}
		patch.SetFrozen(true)
		p.experts = append(p.experts, expert{name: ns.Name, coef: coef})
	}
	shared := lora.Attach("meld-shared", host.LoraLayers(), cfg,
		&nn.Scalar{Name: "gate/shared", Val: 1, Frozen: true}, rng)

	// Fine-tune the shared adapter with the gate active (experts routed per
	// training instance too).
	tc := m.Train
	if tc.Epochs == 0 {
		tc = model.TrainConfig{Epochs: 10, LR: 0.02, Clip: 5, WeightDecay: 1e-4, BatchSize: 4}
	}
	tc.Seed = ctx.Seed
	var ps nn.ParamSet
	ps.Add(shared.Params()...)
	examples := model.ExamplesFrom(ctx.Bundle.Kind, ctx.FewShot, nil)
	// Route per example during training: the gate must be set before each
	// step, so the loop is manual (gradient-accumulated like model.Train).
	opt := nn.NewAdam(tc.LR)
	opt.WeightDecay = tc.WeightDecay
	order := rand.New(rand.NewSource(tc.Seed))
	batch := tc.BatchSize
	if batch <= 0 {
		batch = 4
	}
	for epoch := 0; epoch < tc.Epochs; epoch++ {
		perm := order.Perm(len(examples))
		ps.ZeroGrad()
		pending := 0
		for _, idx := range perm {
			te := examples[idx]
			p.route(te.Instance)
			ex := tasks.BuildExample(te.Spec, te.Instance, te.Knowledge)
			host.Step(ex)
			if pending++; pending == batch {
				ps.ClipGradNorm(tc.Clip)
				opt.Step(&ps)
				ps.ZeroGrad()
				pending = 0
			}
		}
		if pending > 0 {
			ps.ClipGradNorm(tc.Clip)
			opt.Step(&ps)
			ps.ZeroGrad()
		}
	}
	return p
}

type expert struct {
	name string
	coef *nn.Scalar
}

type meldPredictor struct {
	m       *model.Model
	spec    tasks.Spec
	topK    int
	experts []expert
	cents   []Centroid
}

// route sets the expert gate coefficients for one instance: softmax over
// centroid similarities, truncated to the top-k experts.
func (p *meldPredictor) route(in *data.Instance) {
	v := demoVec(p.m, in)
	sims := make([]float64, len(p.experts))
	for i := range p.experts {
		var s float64
		if i < len(p.cents) {
			for j, idx := range v.Idx {
				s += v.Val[j] * p.cents[i].Vec[idx]
			}
		}
		sims[i] = s
	}
	idx := make([]int, len(sims))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return sims[idx[a]] > sims[idx[b]] })
	// Softmax over the selected top-k, zero elsewhere.
	var z float64
	k := p.topK
	if k > len(idx) {
		k = len(idx)
	}
	for _, i := range idx[:k] {
		z += math.Exp(4 * sims[i])
	}
	for i := range p.experts {
		p.experts[i].coef.Val = 0
	}
	if z > 0 {
		for _, i := range idx[:k] {
			p.experts[i].coef.Val = math.Exp(4*sims[i]) / z
		}
	}
}

// Predict implements Predictor.
func (p *meldPredictor) Predict(in *data.Instance) string {
	p.route(in)
	return p.m.PredictWith(p.spec, in, nil)
}
