package baselines

import (
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/data"
	"repro/internal/tasks"
	"repro/internal/tensor"
	"repro/internal/text"
)

// NonLLM dispatches to the per-task classical method of Section VII-A's
// baseline list: Raha (ED), IPM (DI), SMAT (SM), Ditto (EM), Doduo (CTA),
// MAVE (AVE), Baran (DC). All of them are feature- or memory-based learners
// fitted to the 20 few-shot examples only — which is exactly why they
// overfit in this regime (Section VII-B).
type NonLLM struct{}

// Name implements Method.
func (NonLLM) Name() string { return "Non-LLM" }

// Adapt implements Method.
func (NonLLM) Adapt(ctx *AdaptContext) Predictor {
	switch ctx.Bundle.Kind {
	case tasks.ED:
		return newProfileDetector(ctx.FewShot)
	case tasks.DC:
		return newMemoCorrector(ctx.FewShot)
	case tasks.EM, tasks.SM:
		return newLogReg(ctx.Bundle.Kind, ctx.FewShot, ctx.Seed)
	case tasks.DI:
		return newKNNImputer(ctx.FewShot)
	case tasks.CTA:
		return newCentroidTyper(ctx.FewShot)
	case tasks.AVE:
		return newVocabTagger(ctx.FewShot)
	default:
		return constPredictor{tasks.AnswerNo}
	}
}

type constPredictor struct{ ans string }

func (c constPredictor) Predict(*data.Instance) string { return c.ans }

// --- ED: Raha-style profile detector -----------------------------------------

// profileDetector learns per-attribute clean-value profiles (dictionary +
// dominant format) from the few-shot negatives and flags deviations.
type profileDetector struct {
	dicts   map[string]map[string]bool
	formats map[string]string
}

func newProfileDetector(fewshot []*data.Instance) *profileDetector {
	d := &profileDetector{dicts: map[string]map[string]bool{}, formats: map[string]string{}}
	byAttr := map[string][]string{}
	for _, in := range fewshot {
		if in.GoldText() != tasks.AnswerNo {
			continue
		}
		v := in.FieldValue(in.Target)
		byAttr[in.Target] = append(byAttr[in.Target], v)
		if d.dicts[in.Target] == nil {
			d.dicts[in.Target] = map[string]bool{}
		}
		d.dicts[in.Target][strings.ToLower(v)] = true
	}
	for attr, vals := range byAttr {
		counts := map[string]int{}
		for _, v := range vals {
			counts[formatOf(v)]++
		}
		best, bestC := "", 0
		for f, c := range counts {
			if c > bestC {
				best, bestC = f, c
			}
		}
		if bestC*2 >= len(vals) {
			d.formats[attr] = best
		}
	}
	return d
}

func formatOf(v string) string {
	switch {
	case tasks.IsMissingValue(v):
		return "missing"
	case tasks.MatchesFormat(tasks.FormatPercent, v):
		return "percent"
	case tasks.MatchesFormat(tasks.FormatDateISO, v):
		return "iso"
	case tasks.MatchesFormat(tasks.FormatTimeAMPM, v):
		return "ampm"
	case tasks.MatchesFormat(tasks.FormatISSN, v):
		return "issn"
	case tasks.MatchesFormat(tasks.FormatInteger, v):
		return "int"
	case tasks.MatchesFormat(tasks.FormatDecimal, v):
		return "dec"
	default:
		return "text"
	}
}

func (d *profileDetector) Predict(in *data.Instance) string {
	v := in.FieldValue(in.Target)
	if tasks.IsMissingValue(v) {
		return tasks.AnswerYes
	}
	if f, ok := d.formats[in.Target]; ok && formatOf(v) != f {
		return tasks.AnswerYes
	}
	// Unknown value close to a known one looks like a typo.
	if dict := d.dicts[in.Target]; len(dict) >= 3 && !dict[strings.ToLower(v)] {
		for w := range dict {
			if dist := leven(strings.ToLower(v), w); dist > 0 && dist <= 2 {
				return tasks.AnswerYes
			}
		}
	}
	return tasks.AnswerNo
}

// --- DC: Baran-style memorized corrections ------------------------------------

// memoCorrector memorizes (error pattern → correction kind) from few-shot
// pairs and otherwise picks the candidate closest to the dirty value.
type memoCorrector struct {
	missingGold map[string]string // attr → gold used for missing values
}

func newMemoCorrector(fewshot []*data.Instance) *memoCorrector {
	m := &memoCorrector{missingGold: map[string]string{}}
	for _, in := range fewshot {
		if tasks.IsMissingValue(in.FieldValue(in.Target)) {
			m.missingGold[in.Target] = in.GoldText()
		}
	}
	return m
}

func (m *memoCorrector) Predict(in *data.Instance) string {
	dirty := in.FieldValue(in.Target)
	if tasks.IsMissingValue(dirty) {
		if g, ok := m.missingGold[in.Target]; ok {
			return g
		}
		return tasks.AnswerNA
	}
	best, bestDist := "", 1<<30
	for _, c := range in.Candidates {
		if c == tasks.AnswerNA || c == "-1" {
			continue
		}
		if d := leven(strings.ToLower(c), strings.ToLower(dirty)); d < bestDist {
			best, bestDist = c, d
		}
	}
	if best == "" {
		return tasks.AnswerNA
	}
	return best
}

// --- EM/SM: Ditto/SMAT-style logistic regression -------------------------------

// logReg is an L2-regularized logistic regression over the hashed example
// segments (the same features the DP-LM sees) trained on the few-shot pairs.
type logReg struct {
	spec tasks.Spec
	h    *text.Hasher
	w    []float64
	b    float64
}

func newLogReg(kind tasks.Kind, fewshot []*data.Instance, seed int64) *logReg {
	lr := &logReg{spec: tasks.SpecFor(kind), h: text.NewHasher(text.DefaultDim), w: make([]float64, text.DefaultDim)}
	type sample struct {
		x *tensor.Sparse
		y float64
	}
	var samples []sample
	for _, in := range fewshot {
		y := 0.0
		if in.GoldText() == tasks.AnswerYes {
			y = 1
		}
		samples = append(samples, sample{lr.encode(in), y})
	}
	rng := rand.New(rand.NewSource(seed))
	const epochs, eta, l2 = 60, 0.5, 1e-3
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
		for _, s := range samples {
			p := lr.prob(s.x)
			g := p - s.y
			for i, idx := range s.x.Idx {
				lr.w[idx] -= eta * (g*s.x.Val[i] + l2*lr.w[idx])
			}
			lr.b -= eta * g
		}
	}
	return lr
}

func (lr *logReg) encode(in *data.Instance) *tensor.Sparse {
	// Raw bag-of-tokens features only: classical matchers trained from
	// scratch on 20 pairs see surface text, not the task-aware alignment
	// features a pretrained sequence model derives — which is exactly why
	// they overfit in the few-shot regime (Section VII-B).
	segs := make([]text.Segment, 0, len(in.Fields))
	for _, f := range in.Fields {
		segs = append(segs, text.Segment{Field: f.Entity + "." + f.Name, Text: f.Value, Weight: 1})
	}
	return lr.h.Encode(segs...)
}

func (lr *logReg) prob(x *tensor.Sparse) float64 {
	s := lr.b
	for i, idx := range x.Idx {
		s += lr.w[idx] * x.Val[i]
	}
	return 1 / (1 + math.Exp(-s))
}

func (lr *logReg) Predict(in *data.Instance) string {
	if lr.prob(lr.encode(in)) >= 0.5 {
		return tasks.AnswerYes
	}
	return tasks.AnswerNo
}

// --- DI: IPM-style nearest-neighbor imputer ------------------------------------

type knnImputer struct {
	h     *text.Hasher
	memo  []*tensor.Sparse
	golds []string
}

func newKNNImputer(fewshot []*data.Instance) *knnImputer {
	k := &knnImputer{h: text.NewHasher(text.DefaultDim)}
	for _, in := range fewshot {
		k.memo = append(k.memo, recordVec(k.h, in))
		k.golds = append(k.golds, in.GoldText())
	}
	return k
}

func recordVec(h *text.Hasher, in *data.Instance) *tensor.Sparse {
	segs := make([]text.Segment, 0, len(in.Fields))
	for _, f := range in.Fields {
		segs = append(segs, text.Segment{Field: f.Name, Text: f.Value, Weight: 1})
	}
	return h.Encode(segs...)
}

func (k *knnImputer) Predict(in *data.Instance) string {
	q := recordVec(k.h, in)
	best, bestSim := -1, -1.0
	for i, v := range k.memo {
		if s := q.Dot(v); s > bestSim {
			best, bestSim = i, s
		}
	}
	if best < 0 {
		return tasks.AnswerNA
	}
	ans := k.golds[best]
	// The memorized answer is only usable if it is admissible here.
	for _, c := range in.Candidates {
		if strings.EqualFold(c, ans) {
			return c
		}
	}
	return tasks.AnswerNA
}

// --- CTA: Doduo-style nearest-centroid typer -----------------------------------

type centroidTyper struct {
	h      *text.Hasher
	labels []string
	cents  [][]float64
}

func newCentroidTyper(fewshot []*data.Instance) *centroidTyper {
	c := &centroidTyper{h: text.NewHasher(text.DefaultDim)}
	byLabel := map[string][]*data.Instance{}
	for _, in := range fewshot {
		byLabel[in.GoldText()] = append(byLabel[in.GoldText()], in)
	}
	var labels []string
	for l := range byLabel {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		vec := make([]float64, text.DefaultDim)
		for _, in := range byLabel[l] {
			v := recordVec(c.h, in)
			for i, idx := range v.Idx {
				vec[idx] += v.Val[i]
			}
		}
		var n float64
		for _, x := range vec {
			n += x * x
		}
		if n > 0 {
			inv := 1 / math.Sqrt(n)
			for i := range vec {
				vec[i] *= inv
			}
		}
		c.labels = append(c.labels, l)
		c.cents = append(c.cents, vec)
	}
	return c
}

func (c *centroidTyper) Predict(in *data.Instance) string {
	q := recordVec(c.h, in)
	best, bestSim := "", -1.0
	for i, cent := range c.cents {
		var s float64
		for j, idx := range q.Idx {
			s += q.Val[j] * cent[idx]
		}
		if s > bestSim {
			best, bestSim = c.labels[i], s
		}
	}
	if best == "" && len(in.Candidates) > 0 {
		return in.Candidates[0]
	}
	return best
}

// --- AVE: MAVE-style vocabulary tagger -------------------------------------------

type vocabTagger struct {
	vocab map[string]map[string]bool // target attribute → known values
}

func newVocabTagger(fewshot []*data.Instance) *vocabTagger {
	v := &vocabTagger{vocab: map[string]map[string]bool{}}
	for _, in := range fewshot {
		g := in.GoldText()
		if g == tasks.AnswerNA {
			continue
		}
		if v.vocab[in.Target] == nil {
			v.vocab[in.Target] = map[string]bool{}
		}
		v.vocab[in.Target][strings.ToLower(g)] = true
	}
	return v
}

func (v *vocabTagger) Predict(in *data.Instance) string {
	known := v.vocab[in.Target]
	for _, c := range in.Candidates {
		if known[strings.ToLower(c)] {
			return c
		}
	}
	return tasks.AnswerNA
}

// leven is a budgeted Levenshtein distance.
func leven(a, b string) int {
	if len(a) > 32 || len(b) > 32 {
		if a == b {
			return 0
		}
		return 33
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1
			if cur[j-1]+1 < m {
				m = cur[j-1] + 1
			}
			if prev[j-1]+cost < m {
				m = prev[j-1] + cost
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
